// PicoBlaze AIM: the embedded side of the paper. The Artificial Intelligence
// Module is "uploaded program code" on a PicoBlaze microcontroller at every
// router; this example assembles the Network Interaction pathway, steps the
// raw 8-bit core against a synthetic stimulus, then runs the full 128-node
// platform with the instruction-level engine in every router and compares it
// with the behavioural implementation.
package main

import (
	"fmt"

	"centurion"
	"centurion/internal/picoblaze"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func main() {
	// 1. Assemble and inspect the pathway.
	prog := picoblaze.MustAssemble(picoblaze.NIProgram)
	fmt.Printf("NI threshold pathway: %d instructions\n", len(prog))
	fmt.Println(picoblaze.Disassemble(prog[:8]) + "        ...")

	// 2. Drive one raw engine by hand: an idle sink node watching worker
	// traffic accumulate past its threshold.
	g := taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	engine, err := picoblaze.NewNIEngine(g, picoblaze.NIEngineParams{
		Threshold:      6,
		InternalWeight: 3,
		PinSources:     true,
	})
	if err != nil {
		panic(err)
	}
	engine.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 10; i++ {
		engine.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
		if task, ok := engine.Decide(sim.Tick(i)); ok {
			fmt.Printf("after %d routed worker packets the node switches to task %d "+
				"(in %d executed instructions)\n\n", i+1, task, engine.Steps())
			break
		}
	}

	// 3. The full platform with an emulated 8-bit core in every router.
	pb := centurion.NewSystem(
		centurion.WithModel(centurion.ModelNI),
		centurion.WithEmbeddedAIM(),
		centurion.WithSeed(3),
	)
	go_ := centurion.NewSystem(
		centurion.WithModel(centurion.ModelNI),
		centurion.WithSeed(3),
	)
	pb.RunMs(1000)
	go_.RunMs(1000)

	fmt.Printf("full platform, 1000 ms, seed 3:\n")
	fmt.Printf("  embedded PicoBlaze NI: %5d instances, %d switches\n",
		pb.Throughput(), pb.Counters().TaskSwitches)
	fmt.Printf("  behavioural Go NI:     %5d instances, %d switches\n",
		go_.Throughput(), go_.Counters().TaskSwitches)
	if pb.Counters() == go_.Counters() {
		fmt.Println("  -> bit-identical dynamics: the embedded pathway IS the model")
	} else {
		fmt.Println("  -> dynamics diverged (unexpected; see TestEmbeddedAIMOption)")
	}
}
