// Custom intelligence: plug a new decision engine into every router of the
// platform. This example implements a "deficit scheduler" — a deliberately
// non-biological engine that tracks which task's packets wait longest and
// greedily adopts it — and races it against Foraging for Work on the same
// seeds.
//
// The point of the exercise is the paper's architectural claim: the AIM slot
// at each router accepts *any* stimulus-to-knob pathway; the social-insect
// models are one family among many.
package main

import (
	"fmt"

	"centurion"
	"centurion/internal/aim"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// deficit is a custom aim.Engine: every deadline lapse scores a deficit for
// the late packet's task; once a task's deficit leads by a margin and the
// node has been idle for a grace period, the node adopts it.
type deficit struct {
	graph   *taskgraph.Graph
	current taskgraph.TaskID
	scores  []int
	margin  int
	grace   sim.Tick
	lastIn  sim.Tick
}

func newDeficit(g *taskgraph.Graph) aim.Engine {
	return &deficit{
		graph:  g,
		scores: make([]int, int(g.MaxTaskID())+1),
		margin: 6,
		grace:  sim.Ms(10),
	}
}

func (d *deficit) Name() string { return "deficit-scheduler" }

func (d *deficit) OnRouted(task taskgraph.TaskID, now sim.Tick) {}

func (d *deficit) OnInternal(task taskgraph.TaskID, now sim.Tick) {
	d.lastIn = now
	// Serving our own task pays down its deficit.
	if int(task) < len(d.scores) && d.scores[task] > 0 {
		d.scores[task]--
	}
}

func (d *deficit) OnGenerated(now sim.Tick) { d.lastIn = now }

func (d *deficit) OnDeadlineLapse(task taskgraph.TaskID, now sim.Tick) {
	if int(task) < len(d.scores) {
		d.scores[task] += 2
	}
}

func (d *deficit) OnNeighborSignal(task taskgraph.TaskID, now sim.Tick) {}

func (d *deficit) Decide(now sim.Tick) (taskgraph.TaskID, bool) {
	if d.graph.IsSource(d.current) || now-d.lastIn < d.grace {
		return taskgraph.None, false
	}
	best, bestScore := taskgraph.None, d.margin-1
	for t := 1; t < len(d.scores); t++ {
		if d.scores[t] > bestScore && taskgraph.TaskID(t) != d.current {
			best, bestScore = taskgraph.TaskID(t), d.scores[t]
		}
	}
	if best == taskgraph.None {
		return taskgraph.None, false
	}
	for t := range d.scores {
		d.scores[t] = 0
	}
	return best, true
}

func (d *deficit) NoteTask(task taskgraph.TaskID) { d.current = task }
func (d *deficit) SetParam(param, value int)      {}
func (d *deficit) Reset() {
	for t := range d.scores {
		d.scores[t] = 0
	}
}

func main() {
	fmt.Printf("%-6s %-20s %-20s\n", "seed", "deficit (inst/ms)", "ffw (inst/ms)")
	var dTotal, fTotal float64
	for seed := uint64(1); seed <= 5; seed++ {
		custom := centurion.NewSystem(
			centurion.WithEngineFactory(newDeficit),
			centurion.WithSeed(seed),
		)
		custom.RunMs(1000)
		dRate := float64(custom.Throughput()) / 1000

		ffw := centurion.NewSystem(
			centurion.WithModel(centurion.ModelFFW),
			centurion.WithSeed(seed),
		)
		ffw.RunMs(1000)
		fRate := float64(ffw.Throughput()) / 1000

		dTotal += dRate
		fTotal += fRate
		fmt.Printf("%-6d %-20.2f %-20.2f\n", seed, dRate, fRate)
	}
	fmt.Printf("\nmean over 5 seeds: deficit %.2f vs FFW %.2f inst/ms\n", dTotal/5, fTotal/5)
	fmt.Println("(both start from the same random mappings; FFW is the paper's model)")
}
