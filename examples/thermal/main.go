// Thermal management: the remaining monitors and knobs of the paper's AIM
// interface — "local temperature sensing" and "node-level frequency scaling
// (10MHz - 300MHz)" — closing the loop the paper envisions for autonomous
// adaptation.
//
// A hot process technology (aggressive HeatPerWork) makes the busiest nodes
// exceed the safe die temperature. With the DVFS governor enabled, those
// nodes are halved in frequency until they cool; combined with Foraging for
// Work, the colony shifts work away from throttled nodes.
package main

import (
	"fmt"

	"centurion"
	"centurion/internal/thermal"
)

func main() {
	// A deliberately hot calibration so the default workload stresses it.
	hot := thermal.DefaultParams()
	hot.HeatPerWork = 16
	hot.MaxSafe = 80

	run := func(name string, opts ...centurion.Option) {
		opts = append(opts,
			centurion.WithModel(centurion.ModelFFW),
			centurion.WithSeed(5),
			centurion.WithThermal(hot),
		)
		sys := centurion.NewSystem(opts...)
		fmt.Printf("%-14s", name)
		for step := 0; step < 5; step++ {
			before := sys.Throughput()
			sys.RunMs(200)
			_, peak := sys.Thermal().Hottest()
			fmt.Printf("  [%3.0fms %4.2fi/ms %5.1f°C]",
				sys.NowMs(), float64(sys.Throughput()-before)/200, peak)
		}
		_, peak := sys.Thermal().Hottest()
		fmt.Printf("\n%14sfinal: mean %.1f°C, hottest %.1f°C, %d completions\n\n",
			"", sys.Thermal().Mean(), peak, sys.Throughput())
	}

	fmt.Println("workload on a hot process, per-200ms [time, throughput, peak temp]:")
	run("no governor")
	run("DVFS governor", centurion.WithThermalDVFS())

	fmt.Println("The governor trades throughput for a bounded die temperature;")
	fmt.Println("task allocation then routes work around the throttled hot")
	fmt.Println("spots — the paper's envisioned closed loop.")
}
