// Quickstart: assemble the Centurion platform with the Foraging-for-Work
// intelligence, run it for one simulated second from a random task mapping,
// and watch the colony organise itself.
package main

import (
	"fmt"

	"centurion"
)

func main() {
	sys := centurion.NewSystem(
		centurion.WithModel(centurion.ModelFFW),
		centurion.WithSeed(1),
	)

	fmt.Println("initial task mapping (1=source, 2=worker, 3=sink):")
	fmt.Print(sys.MapASCII())

	for step := 0; step < 5; step++ {
		before := sys.Throughput()
		sys.RunMs(200)
		counts := sys.TaskCounts()
		fmt.Printf("t=%4.0fms  throughput %.2f inst/ms  populations 1:%d 2:%d 3:%d  switches %d\n",
			sys.NowMs(),
			float64(sys.Throughput()-before)/200,
			counts[1], counts[2], counts[3],
			sys.Counters().TaskSwitches)
	}

	fmt.Println("\nfinal task mapping:")
	fmt.Print(sys.MapASCII())

	c := sys.Counters()
	fmt.Printf("\ncompleted %d of %d started instances (%.1f%%)\n",
		c.InstancesCompleted, c.InstancesStarted,
		100*float64(c.InstancesCompleted)/float64(c.InstancesStarted))
}
