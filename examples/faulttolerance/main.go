// Fault tolerance: the paper's headline scenario. A third of the 128 nodes
// fail at t=500 ms — the scale of a failed global clock buffer — and the
// three runtime-management schemes ride it out side by side.
//
// Expected shape (paper Figure 4 / Table II): the static baseline loses
// throughput in proportion to the dead nodes; the social-insect models
// re-organise the surviving nodes' task topology and claw performance back,
// with Foraging for Work recovering best.
package main

import (
	"fmt"

	"centurion"
)

func main() {
	const (
		faultCount = 42 // one third of Centurion
		faultAtMs  = 500
		totalMs    = 1500
	)

	fmt.Printf("injecting %d random node faults at t=%dms\n\n", faultCount, faultAtMs)
	fmt.Printf("%-22s %12s %12s %10s %9s\n",
		"model", "pre (i/ms)", "post (i/ms)", "retained", "switches")

	for _, m := range []centurion.Model{
		centurion.ModelNone, centurion.ModelNI, centurion.ModelFFW,
	} {
		sys := centurion.NewSystem(centurion.WithModel(m), centurion.WithSeed(7))

		sys.RunMs(faultAtMs)
		preInstances := sys.Throughput()
		preRate := float64(preInstances) / faultAtMs

		sys.InjectRandomFaults(faultCount, 1234)

		// Let the colony re-settle, then measure the recovered tail.
		sys.RunMs(500)
		settled := sys.Throughput()
		sys.RunMs(totalMs - faultAtMs - 500)
		postRate := float64(sys.Throughput()-settled) / float64(totalMs-faultAtMs-500)

		fmt.Printf("%-22s %12.2f %12.2f %9.0f%% %9d\n",
			m, preRate, postRate, 100*postRate/preRate,
			sys.Counters().TaskSwitches)
	}

	fmt.Println("\nFinal task map of the FFW run (x = dead node):")
	sys := centurion.NewSystem(centurion.WithModel(centurion.ModelFFW), centurion.WithSeed(7))
	sys.RunMs(faultAtMs)
	sys.InjectRandomFaults(faultCount, 1234)
	sys.RunMs(totalMs - faultAtMs)
	fmt.Print(sys.MapASCII())
}
