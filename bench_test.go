package centurion

// Benchmark harness regenerating the paper's evaluation. One benchmark per
// table/figure (reduced run counts — use cmd/centurion for the full 100-run
// sweeps) plus ablations for the design decisions in DESIGN.md §5 and
// micro-benchmarks of the hot substrate paths.
//
// Custom metrics reported:
//   rel_..._%      relative performance versus the No-Intelligence reference
//   settle_..._ms  settling / recovery times
//   inst/ms        absolute throughput

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"centurion/internal/aim"
	platform "centurion/internal/centurion"
	"centurion/internal/experiments"
	"centurion/internal/noc"
	"centurion/internal/node"
	"centurion/internal/picoblaze"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// --- Table I ---

// BenchmarkTable1 regenerates Table I (settling time and relative
// performance without faults) with a reduced run count per iteration.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1 := experiments.Table1(5, 1)
		for _, row := range t1.Rows {
			switch row.Model {
			case experiments.ModelNI:
				b.ReportMetric(row.RelativePct.Q2, "rel_ni_%")
				b.ReportMetric(row.Settling.Q2, "settle_ni_ms")
			case experiments.ModelFFW:
				b.ReportMetric(row.RelativePct.Q2, "rel_ffw_%")
				b.ReportMetric(row.Settling.Q2, "settle_ffw_ms")
			case experiments.ModelNone:
				b.ReportMetric(row.Settling.Q2, "settle_none_ms")
			}
		}
	}
}

// --- Table II ---

// BenchmarkTable2 regenerates Table II (recovery time and relative
// performance after fault injection at 500 ms) for the paper's extreme
// fault counts.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := experiments.Table2(3, 1, []int{0, 8, 32})
		for _, row := range t2.Rows {
			if row.Faults != 32 {
				continue
			}
			switch row.Model {
			case experiments.ModelNone:
				b.ReportMetric(row.RelativePct.Q2, "rel32_none_%")
			case experiments.ModelNI:
				b.ReportMetric(row.RelativePct.Q2, "rel32_ni_%")
			case experiments.ModelFFW:
				b.ReportMetric(row.RelativePct.Q2, "rel32_ffw_%")
				b.ReportMetric(row.Recovery.Q2, "recover32_ffw_ms")
			}
		}
	}
}

// --- Figure 4 ---

func benchmarkFig4(b *testing.B, faults int) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig4(faults, 1)
		if err := f.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		for _, c := range f.Cases {
			pre := c.Result.Throughput.MeanRange(400, 500)
			post := c.Result.Throughput.MeanRange(900, 1000)
			switch c.Model {
			case experiments.ModelNone:
				b.ReportMetric(post/max1(pre), "none_retained")
			case experiments.ModelFFW:
				b.ReportMetric(post/max1(pre), "ffw_retained")
			}
		}
		f.Release() // series reduced to metrics; recycle the panel buffers
	}
}

func max1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// BenchmarkFig4FiveFaults regenerates the paper's 5-fault Figure 4 column.
func BenchmarkFig4FiveFaults(b *testing.B) { benchmarkFig4(b, 5) }

// BenchmarkFig4FortyTwoFaults regenerates the 42-fault column (one third of
// the 128 nodes).
func BenchmarkFig4FortyTwoFaults(b *testing.B) { benchmarkFig4(b, 42) }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationUnpinnedSources shows why source tasks are pinned: with
// PinSources disabled the task-1 population decays and throughput collapses.
func BenchmarkAblationUnpinnedSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pinned := aim.DefaultFFWParams()
		unpinned := pinned
		unpinned.PinSources = false
		rPin := runFFWVariant(pinned, 1)
		rUnpin := runFFWVariant(unpinned, 1)
		b.ReportMetric(rPin, "pinned_inst/ms")
		b.ReportMetric(rUnpin, "unpinned_inst/ms")
	}
}

func runFFWVariant(par aim.FFWParams, seed uint64) float64 {
	spec := experiments.DefaultSpec(experiments.ModelFFW, seed)
	spec.DurationMs = 600
	spec.FFW = &par
	return experiments.Run(spec).PostFaultRate
}

// BenchmarkAblationFFWNoLapseArming compares the paper's deadline-armed FFW
// with the naive pure-idleness timeout, which churns under load.
func BenchmarkAblationFFWNoLapseArming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		armed := aim.DefaultFFWParams()
		naive := armed
		naive.ArmOnLapse = false
		b.ReportMetric(runFFWVariant(armed, 2), "armed_inst/ms")
		b.ReportMetric(runFFWVariant(naive, 2), "naive_inst/ms")
	}
}

// BenchmarkAblationRoutingUnderFaults compares fault-aware next-hop tables
// with pure XY routing when a third of the mesh dies: XY keeps steering
// packets into dead routers.
func BenchmarkAblationRoutingUnderFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mode := range []noc.RoutingMode{noc.RouteAuto, noc.RouteXY} {
			cfg := platform.DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 5)
			cfg.NoC.Mode = mode
			p := platform.New(cfg)
			p.RunFor(sim.Ms(300), nil)
			pre := p.Counters().InstancesCompleted
			p.InjectFaults(faultSample(p, 42))
			p.RunFor(sim.Ms(300), nil)
			post := p.Counters().InstancesCompleted - pre
			name := "tables_inst/ms"
			if mode == noc.RouteXY {
				name = "xy_inst/ms"
			}
			b.ReportMetric(float64(post)/300, name)
		}
	}
}

func faultSample(p *platform.Platform, n int) []noc.NodeID {
	rng := sim.NewRNG(77)
	out := make([]noc.NodeID, 0, n)
	for _, idx := range rng.Perm(p.Topo.Nodes())[:n] {
		out = append(out, noc.NodeID(idx))
	}
	return out
}

// BenchmarkAblationMappingLocality separates the value of the heuristic's
// task ratio from the value of its Manhattan locality by comparing it with
// the same ratio at random positions.
func BenchmarkAblationMappingLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []taskgraph.Mapper{taskgraph.HeuristicMapper{}, taskgraph.ProportionalMapper{}} {
			spec := experiments.DefaultSpec(experiments.ModelNone, 3)
			spec.DurationMs = 400
			spec.Mapper = m
			r := experiments.Run(spec)
			if m.Name() == "heuristic-manhattan" {
				b.ReportMetric(r.PostFaultRate, "clustered_inst/ms")
			} else {
				b.ReportMetric(r.PostFaultRate, "scattered_inst/ms")
			}
		}
	}
}

// BenchmarkAblationEmbeddedAIMCost measures the wall-clock cost of hosting
// the NI pathway on the emulated PicoBlaze versus the behavioural engine.
func BenchmarkAblationEmbeddedAIMCost(b *testing.B) {
	b.Run("behavioural", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := NewSystem(WithModel(ModelNI), WithSeed(4))
			sys.RunMs(100)
		}
	})
	b.Run("picoblaze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := NewSystem(WithModel(ModelNI), WithEmbeddedAIM(), WithSeed(4))
			sys.RunMs(100)
		}
	})
}

// --- Substrate micro-benchmarks ---

// BenchmarkPlatformStep measures one full platform tick (routers + PEs + AIM
// decisions) at steady state. The torus and cmesh variants run the FFW model
// on the non-mesh fabrics; the parallel-w* variants run the 64×64 fabric
// through the four-tile tick kernel across the worker axis (w1 is the serial
// tiled reference — on a single-core runner the higher worker counts measure
// coordination overhead, not speedup). The allocs/op guard in CI holds every
// sub-benchmark to the zero-allocation contract.
func BenchmarkPlatformStep(b *testing.B) {
	for _, tc := range []struct {
		name          string
		topology      string
		width, height int
		workers       int
		warmMs        float64
		factory       aim.Factory
		mapper        taskgraph.Mapper
	}{
		{"none", "", 0, 0, 0, 100, aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", "", 0, 0, 0, 100, aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", "", 0, 0, 0, 100, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
		{"torus", "torus", 0, 0, 0, 100, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
		{"cmesh", "cmesh", 0, 0, 0, 100, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
		{"parallel-w1", "", 64, 64, 1, 400, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
		{"parallel-w2", "", 64, 64, 2, 400, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
		{"parallel-w4", "", 64, 64, 4, 400, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := platform.DefaultConfig(tc.factory, tc.mapper, 1)
			cfg.Topology = tc.topology
			if tc.width > 0 {
				cfg.Width, cfg.Height = tc.width, tc.height
				cfg.NoC.Tiles = 4
				cfg.NoC.Workers = tc.workers
			}
			p := platform.New(cfg)
			p.RunFor(sim.Ms(tc.warmMs), nil) // reach steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
		})
	}
}

// BenchmarkMegaFabric measures the 256×256 (65,536-node) fabric — the tiled
// kernel's Table-I-style scale point — at steady state, across the worker
// axis, and reports the platform's resident heap so BENCH_platform.json
// tracks a per-scale memory budget alongside the tick cost.
func BenchmarkMegaFabric(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			cfg := platform.DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 1)
			cfg.Width, cfg.Height = 256, 256
			cfg.NoC.Workers = workers
			p := platform.New(cfg)
			p.RunFor(sim.Ms(5), nil) // settle: populate caches and staging scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Step()
			}
			b.StopTimer()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap_MB")
		})
	}
}

// BenchmarkSnapshotRestore measures the fork primitive sweep warm-starting
// is built on: deep-capturing a settled platform into a reused checkpoint
// and restoring it back. bytes/checkpoint is the CENCKPT1 encoding size of
// one snapshot — the unit the warm cache's byte budget is spent in.
func BenchmarkSnapshotRestore(b *testing.B) {
	for _, tc := range []struct {
		name          string
		width, height int
	}{
		{"16x8", 16, 8},
		{"64x64", 64, 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := platform.DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 1)
			cfg.Width, cfg.Height = tc.width, tc.height
			p := platform.New(cfg)
			p.RunFor(sim.Ms(50), nil) // settle so the snapshot carries live state
			cp := p.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SnapshotInto(cp)
				p.Restore(cp)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(platform.EncodeCheckpoint(cp))), "bytes/checkpoint")
		})
	}
}

// BenchmarkRunManyParallel measures full-sweep throughput through the pooled
// experiment runner: a batch of independently seeded FFW runs executed in
// parallel across CPUs, the unit of work the serving layer dispatches per
// sweep cell. Reported as runs per second of wall time.
func BenchmarkRunManyParallel(b *testing.B) {
	spec := experiments.DefaultSpec(experiments.ModelFFW, 1)
	spec.DurationMs = 250
	const runs = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunMany(spec, runs, 1)
		if len(res) != runs {
			b.Fatalf("got %d results", len(res))
		}
	}
	b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkRouterTickLoaded measures the router datapath under traffic.
// Packets cycle through the fabric's arena (delivered packets recycle on
// the spot), so the loaded path is allocation-free at steady state.
func BenchmarkRouterTickLoaded(b *testing.B) {
	net := noc.NewNetwork(noc.NewTopology(16, 8), noc.DefaultConfig())
	pool := net.Pool()
	sinkAll := recycleSink{pool}
	for id := 0; id < net.Topo.Nodes(); id++ {
		net.Router(noc.NodeID(id)).SetSink(sinkAll)
	}
	rng := sim.NewRNG(1)
	var clk sim.Clock
	id := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4 == 0 {
			src := noc.NodeID(rng.Intn(net.Topo.Nodes()))
			dst := noc.NodeID(rng.Intn(net.Topo.Nodes()))
			id++
			p := pool.Get()
			p.ID = id
			p.Kind = noc.Data
			p.Src, p.Dst = src, dst
			p.Task = 2
			p.Flits = 2
			if !net.Inject(src, p, clk.Now()) {
				pool.Put(p) // back-pressured: recycle instead of leaking
			}
		}
		net.Tick(clk.Now())
		clk.Step()
	}
}

// recycleSink consumes delivered packets straight back into the pool.
type recycleSink struct{ pool *noc.PacketPool }

func (s recycleSink) Accept(p *noc.Packet, _ sim.Tick) bool {
	s.pool.Put(p)
	return true
}

// BenchmarkPicoblazeDecide measures one embedded decision pass.
func BenchmarkPicoblazeDecide(b *testing.B) {
	g := taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	e, err := picoblaze.NewNIEngine(g, picoblaze.DefaultNIEngineParams())
	if err != nil {
		b.Fatal(err)
	}
	e.NoteTask(taskgraph.ForkSink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
		e.Decide(sim.Tick(i))
	}
}

// BenchmarkAssemble measures assembling the NI pathway.
func BenchmarkAssemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := picoblaze.Assemble(picoblaze.NIProgram); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectoryNearest measures the task-directory lookup on the hot
// path of packet retargeting.
func BenchmarkDirectoryNearest(b *testing.B) {
	topo := noc.NewTopology(16, 8)
	g := taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	m := taskgraph.RandomMapper{}.Map(g, 16, 8, sim.NewRNG(1))
	d := node.NewDirectory(topo, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Nearest(taskgraph.ForkWorker, noc.NodeID(i%128))
	}
}
