package centurion

import (
	"strings"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
	"centurion/internal/trace"
)

func heuristicPlatform(seed uint64) *Platform {
	return New(DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, seed))
}

func TestBaselineThroughput(t *testing.T) {
	p := heuristicPlatform(1)
	p.RunFor(sim.Ms(300), nil)
	c := p.Counters()
	// 26 sources at one instance per 12 ms ≈ 2.17/ms; expect at least 80%
	// of that after pipe fill.
	if c.InstancesCompleted < 500 {
		t.Fatalf("completed %d instances in 300 ms, want >= 500", c.InstancesCompleted)
	}
	if c.TaskSwitches != 0 {
		t.Errorf("no-intelligence platform switched tasks %d times", c.TaskSwitches)
	}
	if c.PacketsDropped > c.InstancesCompleted/20 {
		t.Errorf("excessive drops: %d", c.PacketsDropped)
	}
}

func TestDeterminism(t *testing.T) {
	for _, factory := range []aim.Factory{
		aim.NewNone,
		aim.NewNIFactory(aim.DefaultNIParams()),
		aim.NewFFWFactory(aim.DefaultFFWParams()),
	} {
		a := New(DefaultConfig(factory, taskgraph.RandomMapper{}, 42))
		b := New(DefaultConfig(factory, taskgraph.RandomMapper{}, 42))
		a.RunFor(sim.Ms(200), nil)
		b.RunFor(sim.Ms(200), nil)
		ca, cb := a.Counters(), b.Counters()
		if ca != cb {
			t.Errorf("same-seed runs diverged: %+v vs %+v", ca, cb)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 1))
	b := New(DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 2))
	a.RunFor(sim.Ms(200), nil)
	b.RunFor(sim.Ms(200), nil)
	if a.Counters() == b.Counters() {
		t.Error("different seeds produced identical counters (suspicious)")
	}
}

func TestFaultInjectionReducesCapacity(t *testing.T) {
	p := heuristicPlatform(3)
	p.RunFor(sim.Ms(300), nil)
	pre := p.Counters().InstancesCompleted

	nodes := faults.RandomNodes(p.Topo, 32, sim.NewRNG(99))
	p.InjectFaults(nodes)
	for _, id := range nodes {
		if p.Net.Alive(id) {
			t.Fatalf("node %d alive after fault injection", id)
		}
		if p.PEs()[id].Alive() {
			t.Fatalf("PE %d alive after fault injection", id)
		}
	}

	p.RunFor(sim.Ms(300), nil)
	post := p.Counters().InstancesCompleted - pre
	if post == 0 {
		t.Fatal("no throughput at all after 32 faults")
	}
	if float64(post) > 0.9*float64(pre) {
		t.Errorf("static mapping lost 1/4 of nodes but throughput only dropped from %d to %d", pre, post)
	}
}

func TestFFWAdaptsAfterFaults(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5)
	p := New(cfg)
	p.RunFor(sim.Ms(400), nil)
	preSwitches := p.Counters().TaskSwitches
	p.InjectFaults(faults.RandomNodes(p.Topo, 32, sim.NewRNG(7)))
	p.RunFor(sim.Ms(400), nil)
	if p.Counters().TaskSwitches == preSwitches {
		t.Error("FFW made no adaptation switches after 32 faults")
	}
	if got := p.Counters().InstancesCompleted; got == 0 {
		t.Error("no throughput after faults")
	}
}

func TestScheduledFaultsViaController(t *testing.T) {
	p := heuristicPlatform(9)
	ctl := NewController(p)
	ctl.ScheduleFaults(sim.Ms(50), []noc.NodeID{0, 1, 2})
	p.RunFor(sim.Ms(49), nil)
	if !p.Net.Alive(0) {
		t.Fatal("fault fired early")
	}
	p.RunFor(sim.Ms(2), nil)
	if p.Net.Alive(0) || p.Net.Alive(1) || p.Net.Alive(2) {
		t.Fatal("scheduled faults did not fire")
	}
}

func TestControllerRCAPRoundTrip(t *testing.T) {
	cfg := DefaultConfig(aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}, 11)
	p := New(cfg)
	ctl := NewController(p)

	target := noc.NodeID(77)
	if err := ctl.SendConfig(target, noc.OpAIMParam, aim.ParamThreshold, 3); err != nil {
		t.Fatal(err)
	}
	p.RunFor(sim.Ms(20), nil)
	ni, ok := p.Engine(target).(*aim.NI)
	if !ok {
		t.Fatal("engine is not NI")
	}
	// Threshold 3 now: three routed impulses for a non-current task fire it.
	ni.NoteTask(taskgraph.ForkSink)
	ni.Reset()
	for i := 0; i < 3; i++ {
		ni.OnRouted(taskgraph.ForkWorker, p.Now())
	}
	if _, fired := ni.Decide(p.Now()); !fired {
		t.Error("RCAP threshold write did not reach the AIM")
	}
}

func TestControllerNodeKnobs(t *testing.T) {
	p := heuristicPlatform(13)
	ctl := NewController(p)
	target := noc.NodeID(40)

	if err := ctl.SendConfig(target, noc.OpNodeFrequency, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.SendConfig(target, noc.OpNodeClockEnable, 0, 0); err != nil {
		t.Fatal(err)
	}
	p.RunFor(sim.Ms(20), nil)
	pe := p.PEs()[target]
	before := pe.Stats.Processed + pe.Stats.Generated
	p.RunFor(sim.Ms(50), nil)
	after := pe.Stats.Processed + pe.Stats.Generated
	if after != before {
		t.Errorf("clock-gated node did work: %d -> %d", before, after)
	}
}

func TestControllerReadAll(t *testing.T) {
	p := heuristicPlatform(17)
	ctl := NewController(p)
	p.RunFor(sim.Ms(100), nil)
	reports := ctl.ReadAll()
	if len(reports) != 128 {
		t.Fatalf("ReadAll returned %d reports", len(reports))
	}
	busy := 0
	for _, r := range reports {
		if !r.Alive {
			t.Errorf("node %d reported dead on a healthy platform", r.Node)
		}
		if r.Generated+r.Processed > 0 {
			busy++
		}
	}
	if busy < 64 {
		t.Errorf("only %d/128 nodes did any work in 100 ms", busy)
	}
}

func TestControllerBroadcast(t *testing.T) {
	p := heuristicPlatform(19)
	ctl := NewController(p)
	sent, err := ctl.BroadcastConfig(noc.OpSetDeadlockLimit, 333, 0)
	if err != nil {
		t.Fatalf("broadcast error: %v (sent %d)", err, sent)
	}
	if sent != 128 {
		t.Fatalf("broadcast reached %d nodes", sent)
	}
}

func TestNeighborSignalsWiring(t *testing.T) {
	cfg := DefaultConfig(aim.NewNIFactory(aim.NIParams{
		Threshold: 2, NeighborWeight: 2, InternalWeight: 1, PinSources: true,
	}), taskgraph.RandomMapper{}, 23)
	cfg.NeighborSignals = true
	p := New(cfg)
	// Force a switch at a node and check the neighbour AIM felt it.
	center := p.Topo.ID(noc.Coord{X: 8, Y: 4})
	nb, _ := p.Topo.Neighbor(center, noc.East)
	pe := p.PEs()[center]
	from := pe.Task()
	to := taskgraph.ForkWorker
	if from == to {
		to = taskgraph.ForkSink
	}
	pe.SwitchTask(to, p.Now())
	ni := p.Engine(nb).(*aim.NI)
	if got := ni.Counts()[to]; got == 0 {
		t.Error("neighbour AIM did not receive the switch signal")
	}
}

func TestInstanceAccounting(t *testing.T) {
	p := heuristicPlatform(29)
	p.RunFor(sim.Ms(500), nil)
	c := p.Counters()
	if c.InstancesCompleted > c.InstancesStarted {
		t.Errorf("completed %d > started %d", c.InstancesCompleted, c.InstancesStarted)
	}
	// On a healthy static platform nearly everything completes (the rest is
	// in flight).
	if float64(c.InstancesCompleted) < 0.9*float64(c.InstancesStarted) {
		t.Errorf("completion ratio %d/%d too low for a healthy platform",
			c.InstancesCompleted, c.InstancesStarted)
	}
}

func TestSmallMeshWorks(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 31)
	cfg.Width, cfg.Height = 4, 4
	p := New(cfg)
	p.RunFor(sim.Ms(300), nil)
	if p.Counters().InstancesCompleted == 0 {
		t.Error("4x4 mesh completed nothing")
	}
}

func TestPipelineGraphOnPlatform(t *testing.T) {
	cfg := DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 37)
	cfg.Graph = taskgraph.Pipeline(4, 120, 24)
	p := New(cfg)
	p.RunFor(sim.Ms(300), nil)
	if p.Counters().InstancesCompleted == 0 {
		t.Error("pipeline workload completed nothing")
	}
}

func TestDiamondGraphOnPlatform(t *testing.T) {
	cfg := DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 41)
	cfg.Graph = taskgraph.Diamond(120, 24)
	p := New(cfg)
	p.RunFor(sim.Ms(300), nil)
	if p.Counters().InstancesCompleted == 0 {
		t.Error("diamond workload completed nothing")
	}
}

func TestTraceRecording(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 43)
	log := trace.NewLog(0)
	cfg.Trace = log
	p := New(cfg)
	p.RunFor(sim.Ms(300), nil)
	p.InjectFaults([]noc.NodeID{1, 2})
	p.RunFor(sim.Ms(100), nil)

	counts := log.CountByKind()
	if counts[trace.KindComplete] == 0 {
		t.Error("no completion events traced")
	}
	if counts[trace.KindFault] != 2 {
		t.Errorf("fault events = %d, want 2", counts[trace.KindFault])
	}
	if counts[trace.KindSwitch] == 0 {
		t.Error("no switch events traced for FFW from a random mapping")
	}
	if int(p.Counters().InstancesCompleted) != counts[trace.KindComplete] {
		t.Errorf("trace completions %d != counter %d",
			counts[trace.KindComplete], p.Counters().InstancesCompleted)
	}
	var b strings.Builder
	if err := log.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(b.String(), "\n")) < log.Len() {
		t.Error("CSV shorter than event count")
	}
}

func TestThermalDVFSGovernor(t *testing.T) {
	hot := thermal.DefaultParams()
	hot.HeatPerWork = 16
	hot.MaxSafe = 80

	build := func(dvfs bool) *Platform {
		cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5)
		cfg.Thermal = &hot
		cfg.ThermalDVFS = dvfs
		return New(cfg)
	}

	// Peak temperature is noisy instant by instant; compare the maximum
	// over time and the final mean.
	maxPeak := func(p *Platform) float64 {
		peak := 0.0
		for i := 0; i < 12; i++ {
			p.RunFor(sim.Ms(50), nil)
			if _, v := p.Thermal().Hottest(); v > peak {
				peak = v
			}
		}
		return peak
	}
	free := build(false)
	governed := build(true)
	freePeak := maxPeak(free)
	govPeak := maxPeak(governed)
	if freePeak <= hot.MaxSafe {
		t.Skipf("workload never exceeded MaxSafe (peak %.1f); governor untestable", freePeak)
	}
	if govPeak > freePeak*1.05 {
		t.Errorf("governor raised peak temperature: %.1f vs %.1f", govPeak, freePeak)
	}
	if governed.Thermal().Mean() >= free.Thermal().Mean() {
		t.Errorf("governor did not reduce mean temperature: %.1f vs %.1f",
			governed.Thermal().Mean(), free.Thermal().Mean())
	}
	if governed.Counters().InstancesCompleted >= free.Counters().InstancesCompleted {
		t.Error("throttling was free (expected a throughput cost)")
	}
	if governed.Counters().InstancesCompleted == 0 {
		t.Error("governed platform completed nothing")
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	p := heuristicPlatform(49)
	if p.Thermal() != nil {
		t.Error("thermal model enabled without config")
	}
	p.RunFor(sim.Ms(50), nil) // must not panic
}
