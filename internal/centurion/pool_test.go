package centurion

// Packet-lifecycle tests for the recycling pool (ISSUE 3): conservation
// (every acquired packet is either in flight or back in the pool — no leaks,
// no double-recycles — across faults, retargets and deadlock recovery) and
// per-run ID uniqueness. Double-recycling itself panics inside the pool, so
// every test in this package doubles as a use-after-free canary.

import (
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// inFlightPackets counts every packet the platform currently owns outside
// the pool: router buffers plus PE queues, in-progress slots and outboxes.
func inFlightPackets(p *Platform) int {
	n := p.Net.InFlight()
	for _, pe := range p.PEs() {
		n += pe.PendingPackets()
	}
	return n
}

// acquired returns how many packets the platform has taken from its pool so
// far (recycled or fresh), cumulative across runs.
func acquired(p *Platform) uint64 {
	st := p.PacketPool().Stats()
	return uint64(st.Live) + st.Recycled
}

// checkConservation asserts the pool's books balance against the platform:
// live (acquired, not yet recycled) packets must equal the packets in
// flight, and the ID counter must have stamped exactly one fresh ID per
// acquisition since baseAcquired (the pool's watermark when the current run
// began) — IDs are unique within a run by monotonicity.
func checkConservation(t *testing.T, p *Platform, baseAcquired uint64) {
	t.Helper()
	st := p.PacketPool().Stats()
	if inflight := inFlightPackets(p); st.Live != inflight {
		t.Errorf("pool books unbalanced: %d live packets vs %d in flight (leak or double-recycle)",
			st.Live, inflight)
	}
	if got := acquired(p) - baseAcquired; got != p.nextPkt {
		t.Errorf("acquired %d packets this run but stamped %d IDs", got, p.nextPkt)
	}
}

func TestPacketConservation(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			p := New(DefaultConfig(m.factory, m.mapper, 11))
			// Heavy faults drive drops, retargets, join GC and deadlock
			// recovery — the lifecycle's hard paths.
			NewController(p).ScheduleFaults(sim.Ms(50),
				faults.RandomNodes(p.Topo, 32, sim.NewRNG(0xbeef)))
			p.RunFor(sim.Ms(200), nil)

			if p.Counters().PacketsDropped == 0 {
				t.Error("scenario exercised no drops; conservation check is vacuous")
			}
			checkConservation(t, p, 0)
		})
	}
}

func TestPacketConservationAcrossReset(t *testing.T) {
	p := New(DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 3))
	NewController(p).ScheduleFaults(sim.Ms(30),
		faults.RandomNodes(p.Topo, 16, sim.NewRNG(1)))
	p.RunFor(sim.Ms(120), nil)
	checkConservation(t, p, 0)

	// Reset reclaims every in-flight packet: the books must close fully.
	p.Reset(4)
	if st := p.PacketPool().Stats(); st.Live != 0 {
		t.Fatalf("%d packets leaked across Reset", st.Live)
	}
	if got := inFlightPackets(p); got != 0 {
		t.Fatalf("%d packets in flight on a freshly reset platform", got)
	}

	// And the next run starts a fresh unique ID space on recycled storage.
	base := acquired(p)
	p.RunFor(sim.Ms(120), nil)
	checkConservation(t, p, base)
	if p.Counters().InstancesCompleted == 0 {
		t.Error("reset platform completed nothing")
	}
}

// TestArenaBooksAcrossResetAllTopologies drives every fabric shape through
// a faulted run and a Platform.Reset, asserting the packet arena's books
// match the in-flight census at every stage: live packets equal packets held
// by routers/PEs while running, and after Reset every arena slot is back on
// the free list (the whole arena is parked, nothing leaked to a stale
// handle).
func TestArenaBooksAcrossResetAllTopologies(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		t.Run(topo, func(t *testing.T) {
			cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 9)
			cfg.Topology = topo
			p := New(cfg)
			NewController(p).ScheduleFaults(sim.Ms(30),
				faults.RandomNodes(p.Topo, 16, sim.NewRNG(0xfee1)))
			p.RunFor(sim.Ms(120), nil)
			if p.Counters().PacketsDropped == 0 {
				t.Error("faulted run dropped nothing; the books check is vacuous")
			}
			checkConservation(t, p, 0)

			p.Reset(10)
			st := p.PacketPool().Stats()
			if st.Live != 0 {
				t.Fatalf("%d packets leaked across Reset", st.Live)
			}
			if st.FreeListLen != st.Slots {
				t.Fatalf("arena books unbalanced after Reset: %d free of %d slots",
					st.FreeListLen, st.Slots)
			}
			if got := inFlightPackets(p); got != 0 {
				t.Fatalf("%d packets in flight on a freshly reset platform", got)
			}

			// The reset platform re-runs (with fresh faults) on recycled
			// storage and the books still balance.
			base := acquired(p)
			NewController(p).ScheduleFaults(sim.Ms(20),
				faults.RandomNodes(p.Topo, 8, sim.NewRNG(0xfee2)))
			p.RunFor(sim.Ms(100), nil)
			checkConservation(t, p, base)
		})
	}
}

func TestPacketConservationRCAPAndDebug(t *testing.T) {
	// Config packets are consumed by routers, debug packets on the spot by
	// PEs; both must return to the pool. Node resets and clock gates drop
	// held packets through the PE-side accounting path.
	p := New(DefaultConfig(aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}, 7))
	ctl := NewController(p)
	p.RunFor(sim.Ms(50), nil)
	if _, err := ctl.BroadcastConfig(noc.OpSetDeadlockLimit, 500, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.SendConfig(40, noc.OpNodeReset, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.SendConfig(41, noc.OpNodeClockEnable, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Run until the config traffic (and any controller retries) drains.
	p.RunFor(sim.Ms(150), nil)
	checkConservation(t, p, 0)
}

// TestPlatformStepSteadyStateAllocFree is the allocation regression guard
// behind the CI bench-smoke threshold: at steady state a platform tick must
// not allocate (averaged over many ticks — rare task switches may refill the
// directory's memoized lookups).
func TestPlatformStepSteadyStateAllocFree(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		t.Run(m.name, func(t *testing.T) {
			p := New(DefaultConfig(m.factory, m.mapper, 1))
			p.RunFor(sim.Ms(400), nil) // grow capacities and caches, fill the pool
			allocs := testing.AllocsPerRun(2000, func() { p.Step() })
			if allocs > 0.05 {
				t.Errorf("steady-state Step allocates %.3f objects/tick, want ~0", allocs)
			}
		})
	}
}

func TestControllerRetryReclaimedOnReset(t *testing.T) {
	p := New(DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 21))
	ctl := NewController(p)
	tap := ctl.Taps()[0]
	// Disable the tap's Local input channel so subsequent controller uploads
	// back-pressure forever and live as retry events holding their packet.
	if err := ctl.SendConfig(tap, noc.OpDisablePort, int(noc.Local), 0); err != nil {
		t.Fatal(err)
	}
	p.RunFor(sim.Ms(5), nil)
	if err := ctl.SendConfig(tap, noc.OpSetDeadlockLimit, 100, 0); err != nil {
		t.Fatal(err)
	}
	p.RunFor(sim.Ms(5), nil)
	st := p.PacketPool().Stats()
	if want := inFlightPackets(p) + 1; st.Live != want {
		t.Fatalf("live = %d, want %d (in flight + 1 retry-held config packet)", st.Live, want)
	}
	// Reset clears the retry event; the held packet must return to the pool.
	p.Reset(22)
	if st := p.PacketPool().Stats(); st.Live != 0 {
		t.Errorf("%d packets leaked across Reset (controller retry not reclaimed)", st.Live)
	}
}
