package centurion

// The bit-identity contract of checkpoint/fork snapshots (ISSUE 9):
// Restore(Snapshot(t)) followed by stepping to T must be indistinguishable —
// counters, fabric stats, per-window series, per-node state, and the encoded
// checkpoint bytes themselves — from the uncheckpointed run, for every
// model × topology × fault timeline × stepping core, whether the fork lands
// on a fresh platform or one leased back dirty from a sync.Pool, and whether
// the fabric ticks serially or on the parallel tiled kernel. The encoded
// checkpoint is canonical (identical state → identical bytes), which makes
// byte comparison the strongest available oracle: it covers the packet
// arena's books, ring slots, router records, RNG streams and timers that the
// observable-state comparison cannot see.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// ckptModels is the model matrix shared by the checkpoint suites.
var ckptModels = []struct {
	name    string
	factory aim.Factory
	mapper  taskgraph.Mapper
}{
	{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
	{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
	{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
}

// ckptWindows advances p window by window (1 ms each), appending each
// window's completions to *series.
func ckptWindows(p *Platform, windows int, series *[]uint64, last *uint64) {
	for w := 0; w < windows; w++ {
		p.RunFor(sim.Ms(1), nil)
		c := p.Counters()
		*series = append(*series, c.InstancesCompleted-*last)
		*last = c.InstancesCompleted
	}
}

// ckptObserve captures the equivalence suite's observable set with the given
// per-window series.
func ckptObserve(p *Platform, series []uint64) steppingSnapshot {
	snap := steppingSnapshot{
		series:   series,
		counters: p.Counters(),
		net:      p.Net.Stats(),
		now:      p.Now(),
	}
	for _, pe := range p.PEs() {
		snap.tasks = append(snap.tasks, pe.Task())
		snap.work = append(snap.work, [3]uint64{pe.Stats.Generated, pe.Stats.Processed, pe.Stats.Switches})
	}
	return snap
}

// applySched arms the fault timeline (no-op for an empty schedule).
func applySched(p *Platform, sched faults.Schedule) {
	if !sched.Empty() {
		NewController(p).ApplySchedule(sched)
	}
}

// forkCheck runs the snapshot/fork protocol for one configuration:
//
//  1. Reference: an uncheckpointed run over the full horizon.
//  2. Source: the same run snapshotted at snapMs, then continued — proving
//     Snapshot is non-perturbing.
//  3. Fork: the checkpoint restored into whatever platform fork() supplies
//     (fresh, pool-leased, different worker count), the timeline re-armed,
//     and the remaining horizon run.
//
// All three must agree on every observable and on the final encoded
// checkpoint bytes.
func forkCheck(t *testing.T, cfg Config, sched faults.Schedule, snapMs, totalMs int, fork func(*Checkpoint) *Platform) {
	t.Helper()

	ref := New(cfg)
	applySched(ref, sched)
	var refSeries []uint64
	var refLast uint64
	ckptWindows(ref, totalMs, &refSeries, &refLast)
	refObs := ckptObserve(ref, refSeries[snapMs:])
	refBytes := EncodeCheckpoint(ref.Snapshot())

	src := New(cfg)
	applySched(src, sched)
	var srcSeries []uint64
	var srcLast uint64
	ckptWindows(src, snapMs, &srcSeries, &srcLast)
	cp := src.Snapshot()

	forked := fork(cp)
	forked.Restore(cp)
	applySched(forked, sched)
	var fSeries []uint64
	fLast := forked.Counters().InstancesCompleted
	ckptWindows(forked, totalMs-snapMs, &fSeries, &fLast)
	forkObs := ckptObserve(forked, fSeries)
	forkBytes := EncodeCheckpoint(forked.Snapshot())

	ckptWindows(src, totalMs-snapMs, &srcSeries, &srcLast)
	contObs := ckptObserve(src, srcSeries[snapMs:])
	contBytes := EncodeCheckpoint(src.Snapshot())

	compareSnapshots(t, refObs, forkObs)
	compareSnapshots(t, refObs, contObs)
	if !bytes.Equal(refBytes, forkBytes) {
		t.Errorf("forked run's final checkpoint differs from the uncheckpointed reference (%d vs %d bytes)",
			len(forkBytes), len(refBytes))
	}
	if !bytes.Equal(refBytes, contBytes) {
		t.Errorf("taking a snapshot perturbed the source run: final checkpoints differ")
	}
}

// TestCheckpointForkBitIdentity is the core matrix: every model on every
// fabric under both stepping cores, checkpointed at 60 ms — after a 12-node
// kill wave at 50 ms has left dead routers, rerouted tables and in-flight
// recovery state for the snapshot to capture.
func TestCheckpointForkBitIdentity(t *testing.T) {
	for _, m := range ckptModels {
		for _, topo := range []string{"mesh", "torus", "cmesh"} {
			for _, dense := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/dense=%v", m.name, topo, dense), func(t *testing.T) {
					cfg := DefaultConfig(m.factory, m.mapper, 7)
					cfg.Topology = topo
					cfg.DenseStepping = dense
					probe := New(cfg)
					sched := buildHostile(t, probe, faults.Profile{Kind: faults.KindDeath, AtMs: 50, Nodes: 12}, 7)
					forkCheck(t, cfg, sched, 60, 120, func(*Checkpoint) *Platform { return New(cfg) })
				})
			}
		}
	}
}

// TestCheckpointHostileTimelines forks before (30 ms) and inside (60 ms)
// each hostile timeline: churn revivals, flaky link flaps, cascade waves and
// byzantine routers all have pending events that ApplySchedule must re-arm
// on the fork — and already-fired events whose effects (including advanced
// per-router byzantine RNG streams) ride in the checkpoint.
func TestCheckpointHostileTimelines(t *testing.T) {
	for _, prof := range hostileProfiles {
		for _, snapMs := range []int{30, 60} {
			t.Run(fmt.Sprintf("%s/snap=%dms", prof.Kind, snapMs), func(t *testing.T) {
				cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5)
				probe := New(cfg)
				sched := buildHostile(t, probe, prof, 5)
				forkCheck(t, cfg, sched, snapMs, 150, func(*Checkpoint) *Platform { return New(cfg) })
			})
		}
	}
}

// TestCheckpointRestoreIntoPooledPlatform restores into a platform leased
// back from a sync.Pool still dirty from a byzantine run — leftover faults,
// buffered packets, armed routers and queued events must all be overwritten
// by Restore alone, with no Reset in between.
func TestCheckpointRestoreIntoPooledPlatform(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 11)
	pool := sync.Pool{New: func() any { return New(cfg) }}

	dirty := pool.Get().(*Platform)
	driveHostile(dirty, buildHostile(t, dirty, hostileProfiles[3], 0xbada))
	pool.Put(dirty)

	probe := New(cfg)
	sched := buildHostile(t, probe, hostileProfiles[0], 11)
	forkCheck(t, cfg, sched, 60, 120, func(*Checkpoint) *Platform {
		return pool.Get().(*Platform)
	})
}

// TestCheckpointParallelTick covers the tiled tick kernel: snapshots taken
// while the fabric steps in parallel epochs, restored into platforms
// sweeping the same four tiles serially (W=1), in parallel (W=4), and
// across the two — a W=1 checkpoint forked onto a W=4 platform must still
// be bit-identical, since worker count is execution strategy, not state.
func TestCheckpointParallelTick(t *testing.T) {
	mk := func(workers int) Config {
		return tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 13, workers)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := mk(workers)
			probe := New(cfg)
			sched := buildHostile(t, probe, hostileProfiles[2], 13)
			forkCheck(t, cfg, sched, 60, 120, func(*Checkpoint) *Platform { return New(cfg) })
		})
	}
	t.Run("cross-worker-fork", func(t *testing.T) {
		serial := mk(1)
		probe := New(serial)
		sched := buildHostile(t, probe, hostileProfiles[2], 13)
		forkCheck(t, serial, sched, 60, 120, func(*Checkpoint) *Platform { return New(mk(4)) })
	})
}

// TestCheckpointMegaFabric exercises the 64×64 grid (auto-tiled, parallel
// workers, XY routing as large fabrics run it) on a short horizon: 4096
// nodes of arena, ring and router state through the snapshot/fork/
// byte-compare protocol, with a kill wave landing before the snapshot.
func TestCheckpointMegaFabric(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 21)
	cfg.Width, cfg.Height = 64, 64
	cfg.NoC.Workers = 4
	cfg.NoC.Mode = noc.RouteXY
	probe := New(cfg)
	sched := buildHostile(t, probe, faults.Profile{Kind: faults.KindDeath, AtMs: 3, Nodes: 12}, 21)
	forkCheck(t, cfg, sched, 5, 10, func(*Checkpoint) *Platform { return New(cfg) })
}

// TestCheckpointCodecRoundTrip is the cross-process determinism proof:
// encode → decode → restore → step must match the in-memory restore bit for
// bit, the encoding must be canonical under decode → re-encode, and the
// file writer/reader must round-trip exactly.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 17)
	src := New(cfg)
	sched := buildHostile(t, src, hostileProfiles[0], 17)
	applySched(src, sched)
	var series []uint64
	var last uint64
	ckptWindows(src, 60, &series, &last)
	cp := src.Snapshot()
	data := EncodeCheckpoint(cp)

	dec, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decoding checkpoint: %v", err)
	}
	if !bytes.Equal(EncodeCheckpoint(dec), data) {
		t.Errorf("decode → re-encode is not byte-identical")
	}

	path := filepath.Join(t.TempDir(), "prefix.ckpt")
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatalf("writing checkpoint file: %v", err)
	}
	fromFile, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("reading checkpoint file: %v", err)
	}
	if !bytes.Equal(EncodeCheckpoint(fromFile), data) {
		t.Errorf("file round-trip is not byte-identical")
	}

	run := func(c *Checkpoint) ([]uint64, steppingSnapshot, []byte) {
		p := New(cfg)
		p.Restore(c)
		applySched(p, sched)
		var s []uint64
		l := p.Counters().InstancesCompleted
		ckptWindows(p, 60, &s, &l)
		return s, ckptObserve(p, s), EncodeCheckpoint(p.Snapshot())
	}
	_, memObs, memBytes := run(cp)
	_, decObs, decBytes := run(dec)
	_, fileObs, fileBytes := run(fromFile)
	compareSnapshots(t, memObs, decObs)
	compareSnapshots(t, memObs, fileObs)
	if !bytes.Equal(memBytes, decBytes) || !bytes.Equal(memBytes, fileBytes) {
		t.Errorf("decoded-checkpoint forks diverged from the in-memory fork")
	}
}

// TestCheckpointCodecRejectsDamage proves truncated, corrupted and misframed
// checkpoint files fail loudly with descriptive errors instead of restoring
// garbage.
func TestCheckpointCodecRejectsDamage(t *testing.T) {
	cfg := DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 1)
	p := New(cfg)
	p.RunFor(sim.Ms(5), nil)
	data := EncodeCheckpoint(p.Snapshot())

	for _, n := range []int{0, 4, ckptHeaderLen - 1, ckptHeaderLen + 16, len(data) - 1} {
		if _, err := DecodeCheckpoint(data[:n]); !errors.Is(err, ErrCheckpointTruncated) {
			t.Errorf("truncated to %d bytes: got %v, want ErrCheckpointTruncated", n, err)
		}
	}

	badMagic := bytes.Clone(data)
	badMagic[0] ^= 0xff
	if _, err := DecodeCheckpoint(badMagic); err == nil {
		t.Errorf("bad magic accepted")
	}

	badVersion := bytes.Clone(data)
	badVersion[8] ^= 0xff
	if _, err := DecodeCheckpoint(badVersion); err == nil {
		t.Errorf("unknown version accepted")
	}

	corrupt := bytes.Clone(data)
	corrupt[len(corrupt)/2] ^= 0x01
	if _, err := DecodeCheckpoint(corrupt); !errors.Is(err, ErrCheckpointChecksum) {
		t.Errorf("corrupted payload: got %v, want ErrCheckpointChecksum", err)
	}

	trailing := append(bytes.Clone(data), 0xEE)
	if _, err := DecodeCheckpoint(trailing); err == nil {
		t.Errorf("trailing bytes accepted")
	}
}

// TestCheckpointShapeMismatchPanics: restoring into a platform of a
// different geometry is a programming error and must fail fast.
func TestCheckpointShapeMismatchPanics(t *testing.T) {
	cp := New(DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 1)).Snapshot()
	small := DefaultConfig(aim.NewNone, taskgraph.HeuristicMapper{}, 1)
	small.Width, small.Height = 8, 8
	other := New(small)
	defer func() {
		if recover() == nil {
			t.Errorf("restore into a differently shaped platform did not panic")
		}
	}()
	other.Restore(cp)
}
