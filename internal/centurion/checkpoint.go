package centurion

import (
	"fmt"

	"centurion/internal/aim"
	"centurion/internal/noc"
	"centurion/internal/node"
	"centurion/internal/sim"
	"centurion/internal/thermal"
)

// Checkpoint is a deep, self-contained capture of one platform's mutable
// simulation state at a between-step boundary (DESIGN.md §15): the packet
// arena, ring slots and router records, PE/engine/directory/thermal state,
// every RNG stream, the activity sets and the pending wake/retry timers.
// Everything construction-derived — topology, task graph, routing rows,
// wiring closures, tile layout — stays with the platform, so restoring a
// checkpoint into a same-shape platform is a handful of bulk copies, and the
// fault-aware route tables are shared by reference across every fork.
//
// What is deliberately NOT captured is the event queue itself (it holds
// closures): Restore rebuilds the pending wake and controller-retry events
// from the recorded timers, and fault schedules must be re-applied by the
// caller (Controller.ApplySchedule skips the events that already fired
// before the checkpoint). One checkpoint may be restored into many
// platforms — it is read-only during Restore — which is what makes
// fork-per-variant sweeps cheap.
type Checkpoint struct {
	// Shape identity: a checkpoint restores only into a platform built for
	// the same geometry.
	width, height int
	topology      string

	now  sim.Tick
	seed uint64
	rng  uint64

	nextPkt  uint64
	nextInst uint64
	counters Counters

	net     noc.NetworkState
	dir     node.DirectoryState
	pes     []node.PEState
	engines []aim.EngineState

	hasHeat   bool
	heat      thermal.State
	nextHeat  sim.Tick
	throttled []bool

	peActive  sim.ActiveSetState
	engActive sim.ActiveSetState
	peWakeAt  []sim.Tick
	engWakeAt []sim.Tick

	retries []retryRec
}

// retryRec is one pending controller-retry in checkpoint form: the held
// packet as an arena slot, the tap, and the scheduled attempt tick.
type retryRec struct {
	slot int32
	tap  noc.NodeID
	at   sim.Tick
}

// Now returns the simulation tick the checkpoint was taken at.
func (cp *Checkpoint) Now() sim.Tick { return cp.now }

// grow returns s resized to n elements, reallocating only when needed (the
// retained elements keep their backing slices, so repeated snapshots into
// the same Checkpoint stop allocating once warm).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Snapshot captures the platform's full mutable state into a fresh
// Checkpoint. Use SnapshotInto to reuse a checkpoint's allocations.
func (p *Platform) Snapshot() *Checkpoint {
	cp := &Checkpoint{}
	p.SnapshotInto(cp)
	return cp
}

// SnapshotInto captures the platform's state into cp, reusing its backing
// storage. The platform must be at a between-step boundary (which is the
// only externally observable state — Step never returns mid-tick).
func (p *Platform) SnapshotInto(cp *Checkpoint) {
	cp.width, cp.height = p.Cfg.Width, p.Cfg.Height
	cp.topology = p.Cfg.Topology
	cp.now = p.clock.Now()
	cp.seed = p.Cfg.Seed
	cp.rng = p.rng.State()
	cp.nextPkt, cp.nextInst = p.nextPkt, p.nextInst
	cp.counters = p.counters

	p.Net.SaveState(&cp.net)
	p.Dir.SaveState(&cp.dir)

	cp.pes = grow(cp.pes, len(p.pes))
	for i, pe := range p.pes {
		pe.SaveState(&cp.pes[i], p.pool)
	}
	cp.engines = grow(cp.engines, len(p.engines))
	for i, e := range p.engines {
		s, ok := e.(aim.StateSnapshotter)
		if !ok {
			panic(fmt.Sprintf("centurion: engine %q does not support checkpointing", e.Name()))
		}
		s.SaveState(&cp.engines[i])
	}

	cp.hasHeat = p.heat != nil
	if p.heat != nil {
		p.heat.SaveState(&cp.heat)
		cp.nextHeat = p.nextHeat
		cp.throttled = append(cp.throttled[:0], p.throttled...)
	} else {
		cp.heat.Temp = cp.heat.Temp[:0]
		cp.heat.Last = cp.heat.Last[:0]
		cp.nextHeat = 0
		cp.throttled = cp.throttled[:0]
	}

	p.peSet.SaveState(&cp.peActive)
	p.engSet.SaveState(&cp.engActive)
	cp.peWakeAt = append(cp.peWakeAt[:0], p.peWake.at...)
	cp.engWakeAt = append(cp.engWakeAt[:0], p.engWake.at...)

	cp.retries = grow(cp.retries, len(p.ctlRetry))
	for i := range p.ctlRetry {
		rec := &p.ctlRetry[i]
		idx, ok := p.pool.ArenaIndex(rec.pkt)
		if !ok {
			panic("centurion: retry packet not bound to the platform pool")
		}
		cp.retries[i] = retryRec{slot: idx, tap: rec.tap, at: rec.at}
	}
}

// Restore rewinds the platform to the checkpointed state. The platform must
// have been built for the same shape (dimensions, topology, engine kinds,
// thermal configuration); everything else about its current state — fresh,
// mid-run, or leased back from a pool — is overwritten. Pending fault
// schedules are NOT part of a checkpoint: re-apply them after Restore
// (Controller.ApplySchedule skips already-fired events).
//
// Restoring is allocation-free at steady state: bulk copies into retained
// backing, plus one event-queue entry per pending wake or retry.
func (p *Platform) Restore(cp *Checkpoint) {
	if cp.width != p.Cfg.Width || cp.height != p.Cfg.Height || cp.topology != p.Cfg.Topology ||
		len(cp.pes) != len(p.pes) {
		panic(fmt.Sprintf("centurion: checkpoint shape mismatch: checkpoint is %dx%d %q (%d nodes), platform is %dx%d %q (%d nodes)",
			cp.width, cp.height, cp.topology, len(cp.pes), p.Cfg.Width, p.Cfg.Height, p.Cfg.Topology, len(p.pes)))
	}
	if cp.hasHeat != (p.heat != nil) {
		panic("centurion: checkpoint thermal-model mismatch")
	}

	p.Cfg.Seed = cp.seed
	p.clock.SetNow(cp.now)
	p.events.Clear()
	// Drop the previous run's retry records — the arena restore below
	// rewrites every packet wholesale, so the held pointers must not be
	// reclaimed through Put.
	for i := range p.ctlRetry {
		p.ctlRetry[i] = ctlRetryRec{}
	}
	p.ctlRetry = p.ctlRetry[:0]
	p.rng.SetState(cp.rng)
	p.nextPkt, p.nextInst = cp.nextPkt, cp.nextInst
	p.counters = cp.counters
	p.netPar = false

	// The arena first: every packet reference restored below resolves
	// against it.
	p.Net.LoadState(&cp.net)
	p.Dir.LoadState(&cp.dir)
	for i, pe := range p.pes {
		pe.LoadState(&cp.pes[i], p.pool)
	}
	for i, e := range p.engines {
		s, ok := e.(aim.StateSnapshotter)
		if !ok {
			panic(fmt.Sprintf("centurion: engine %q does not support checkpointing", e.Name()))
		}
		s.LoadState(&cp.engines[i])
	}

	if p.heat != nil {
		p.heat.LoadState(&cp.heat)
		p.nextHeat = cp.nextHeat
		copy(p.throttled, cp.throttled)
	}

	p.peSet.LoadState(&cp.peActive)
	p.engSet.LoadState(&cp.engActive)
	// Rebuild the pending wake events from the recorded timers, using the
	// target's own bound closures. Only the earliest pending wake per member
	// is recorded; superseded later events the source queue may still hold
	// are spurious by the stepping core's contract (an extra tick on a
	// parked component is observation-free), so dropping them preserves
	// bit-identity of every counter and series.
	p.peWake.restore(cp.peWakeAt)
	p.engWake.restore(cp.engWakeAt)

	// Re-arm the pending controller retries in record order — the slice
	// order mirrors the retry events' seq order in the source queue.
	for i := range cp.retries {
		rec := cp.retries[i]
		pkt := p.pool.ArenaPacket(rec.slot)
		p.ctlRetry = append(p.ctlRetry, ctlRetryRec{pkt: pkt, tap: rec.tap, at: rec.at})
		tap := rec.tap
		p.events.Schedule(rec.at, func(later sim.Tick) { p.injectConfig(tap, pkt, later) })
	}
}

// restore rebuilds a wake table from a recorded timer array: the pending
// tick per member plus one freshly scheduled event bound to the target's
// own closure.
func (w *wakeTable) restore(at []sim.Tick) {
	for id := range w.at {
		w.at[id] = at[id]
		if at[id] >= 0 {
			w.events.Schedule(at[id], w.fn[id])
		}
	}
}
