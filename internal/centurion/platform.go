// Package centurion assembles the full experimentation platform of the
// paper: an 8×16 (by default) mesh of {wormhole router + processing element
// + embedded intelligence module}, a shared task directory, and the
// experiment controller used for parameter upload, runtime data readout and
// fault injection.
//
// One Platform value is one independent experiment run; the experiment
// harness (internal/experiments) creates hundreds of them with different
// seeds.
package centurion

import (
	"fmt"

	"centurion/internal/aim"
	"centurion/internal/noc"
	"centurion/internal/node"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
	"centurion/internal/trace"
)

// Config assembles a platform.
type Config struct {
	// Width, Height set the node-grid dimensions (default 16×8 = 128 nodes,
	// Centurion-V6).
	Width, Height int
	// Topology selects the fabric shape: "mesh" (default), "torus" or
	// "cmesh" (concentrated mesh, 2×2 clusters sharing a router; requires
	// even dimensions). New panics on an unknown or invalid shape — the spec
	// and CLI layers validate before construction.
	Topology string
	// Graph is the application task graph (default: the paper's fork–join).
	Graph *taskgraph.Graph
	// Mapper produces the initial task mapping (default: random — the
	// adaptive models' starting point; use taskgraph.HeuristicMapper for
	// the no-intelligence baseline).
	Mapper taskgraph.Mapper
	// Engines builds one AIM per node (default: aim.NewNone).
	Engines aim.Factory
	// Seed drives all randomness of the run.
	Seed uint64
	// NoC are the fabric parameters.
	NoC noc.Params
	// PE are the processing-element parameters.
	PE node.Params
	// MaxGenPhase staggers source generators uniformly in [0, MaxGenPhase)
	// ticks (defaults to the source task's generation period).
	MaxGenPhase sim.Tick
	// NeighborSignals, when true, broadcasts each node's task switches to
	// the four mesh neighbours' AIMs (the information-transfer extension).
	NeighborSignals bool
	// Trace, when non-nil, records switch/fault/completion/loss/drop events
	// (the runtime data the experiment controller streams to the host).
	Trace *trace.Log
	// Thermal, when non-nil, enables the per-node temperature model (the
	// AIM's temperature monitor).
	Thermal *thermal.Params
	// ThermalDVFS enables the frequency-scaling governor: nodes above the
	// safe temperature are halved in frequency until they cool below the
	// hysteresis threshold (the paper's frequency knob, 10–300 MHz on the
	// real platform).
	ThermalDVFS bool
	// DenseStepping selects the reference stepping core: every PE, router
	// and AIM is touched on every tick, as the original implementation did.
	// The default (false) is the activity-tracked core — idle PEs park in
	// the event queue, only routers holding traffic are serviced, and only
	// stimulated engines are polled — which is bit-identical by contract
	// (enforced by TestSteppingEquivalence) but orders of magnitude cheaper
	// at steady state.
	DenseStepping bool
}

// DefaultConfig returns the paper's experiment configuration with the given
// model factory and seed.
func DefaultConfig(engines aim.Factory, mapper taskgraph.Mapper, seed uint64) Config {
	return Config{
		Width:   16,
		Height:  8,
		Graph:   taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams()),
		Mapper:  mapper,
		Engines: engines,
		Seed:    seed,
		NoC:     noc.DefaultConfig(),
		PE:      node.DefaultParams(),
	}
}

// Counters aggregate platform-wide accounting for one run.
type Counters struct {
	InstancesStarted   uint64
	InstancesCompleted uint64
	InstancesLost      uint64 // lost reports may repeat per instance (see DESIGN.md)
	TaskSwitches       uint64
	PacketsDropped     uint64
	PacketsRescued     uint64
}

// peParkHorizon is the shortest park worth an event-queue round trip, in
// ticks. A PE whose next self-driven wake is at most this close stays in the
// active sweep and idles there — e.g. the default sink task (6-tick
// processing) never touches the heap, while workers (48) and sources (120)
// park.
const peParkHorizon = 8

// Platform is one assembled many-core system.
type Platform struct {
	Cfg   Config
	Topo  noc.Topology
	Net   *noc.Network
	Dir   *node.Directory
	Graph *taskgraph.Graph

	pes     []*node.PE
	engines []aim.Engine
	clock   sim.Clock
	rng     *sim.RNG
	events  sim.EventQueue

	// pool recycles every packet of this platform (DESIGN.md §9): PEs and the
	// controller acquire through it, and delivery/drop/config-consumption
	// return packets to it, so the steady-state hot loop never allocates.
	// It is the fabric's packet arena (DESIGN.md §11) — the network owns it,
	// and every in-fabric packet is addressed by an arena handle.
	pool *noc.PacketPool
	// ctlRetry tracks config packets a back-pressured controller tap is
	// retrying through the event queue; Reset reclaims them (their retry
	// events are cleared with the queue, which would otherwise leak them)
	// and Snapshot records them so a restore can rebuild the retry events.
	// Removal is order-preserving: the slice order mirrors the retry
	// events' seq order in the queue, which a restore must reproduce.
	ctlRetry []ctlRetryRec
	// maxPhase is the generation-stagger bound derived at construction; Reset
	// replays the same per-node phase draws with it.
	maxPhase sim.Tick

	// Activity tracking for the event-driven stepping core. peSet and
	// engSet hold the PEs that must be ticked and the engines that must be
	// polled this tick; parked components are woken by stimuli or by the
	// wake tables' events in the shared event queue.
	peSet      *sim.ActiveSet
	engSet     *sim.ActiveSet
	peWake     *wakeTable
	engWake    *wakeTable
	engWaker   []aim.DecideWaker
	engPollAll bool // an engine lacks NextDecide: poll all, never fast-forward
	// netPar is true only while a parallel Net.Tick is in flight: fabric
	// callbacks (PE stirs on delivery, engine stimuli from router monitor
	// taps) then mark the activity sets through the atomic path, since they
	// fire from the tick kernel's worker goroutines. Set and cleared by
	// Step around Net.Tick — the tick barrier orders it against the workers.
	netPar bool

	nextPkt  uint64
	nextInst uint64

	heat      *thermal.Model
	nextHeat  sim.Tick
	throttled []bool
	workScan  []uint64

	counters Counters
}

// New assembles a platform from the configuration.
func New(cfg Config) *Platform {
	if cfg.Width <= 0 {
		cfg.Width = 16
	}
	if cfg.Height <= 0 {
		cfg.Height = 8
	}
	if cfg.Graph == nil {
		cfg.Graph = taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	}
	if cfg.Mapper == nil {
		cfg.Mapper = taskgraph.RandomMapper{}
	}
	if cfg.Engines == nil {
		cfg.Engines = aim.NewNone
	}
	if cfg.PE.QueueCap == 0 {
		cfg.PE = node.DefaultParams()
	}
	if cfg.NoC.BufferFlits == 0 {
		cfg.NoC = noc.DefaultConfig()
	}

	topo, err := noc.MakeTopology(cfg.Topology, cfg.Width, cfg.Height)
	if err != nil {
		panic("centurion: " + err.Error())
	}
	p := &Platform{
		Cfg:   cfg,
		Topo:  topo,
		Graph: cfg.Graph,
		rng:   sim.NewRNG(cfg.Seed),
	}
	p.Net = noc.NewNetwork(p.Topo, cfg.NoC)
	p.pool = p.Net.Pool()
	mapping := cfg.Mapper.Map(cfg.Graph, cfg.Width, cfg.Height, p.rng)
	p.Dir = node.NewDirectory(p.Topo, mapping)

	maxPhase := cfg.MaxGenPhase
	if maxPhase <= 0 {
		// Default: stagger within one generation period of the first source.
		for _, id := range cfg.Graph.Sources() {
			if gp := cfg.Graph.Task(id).GenPeriod; sim.Tick(gp) > maxPhase {
				maxPhase = sim.Tick(gp)
			}
		}
		if maxPhase <= 0 {
			maxPhase = 1
		}
	}
	p.maxPhase = maxPhase

	nodes := p.Topo.Nodes()
	p.pes = make([]*node.PE, nodes)
	p.engines = make([]aim.Engine, nodes)
	p.peSet = sim.NewActiveSet(nodes)
	p.engSet = sim.NewActiveSet(nodes)
	p.peWake = newWakeTable(nodes, &p.events, p.peSet)
	p.engWake = newWakeTable(nodes, &p.events, p.engSet)
	p.engWaker = make([]aim.DecideWaker, nodes)
	for id := 0; id < nodes; id++ {
		nid := noc.NodeID(id)
		phase := sim.Tick(p.rng.Intn(int(maxPhase)))
		pe := node.NewPE(nid, platformEnv{p}, cfg.PE, mapping[id], phase)
		p.pes[id] = pe

		engine := cfg.Engines(cfg.Graph)
		engine.NoteTask(mapping[id])
		p.engines[id] = engine
		if w, ok := engine.(aim.DecideWaker); ok {
			p.engWaker[id] = w
		} else {
			// Unknown engine (embedded PicoBlaze, user-supplied): fall back
			// to polling every engine every tick, exactly like the dense
			// scan, so custom Decide semantics are never skipped.
			p.engPollAll = true
		}

		// Everything starts active; components park themselves after their
		// first tick.
		pe.OnStir = func() { p.markPE(id) }
		p.peSet.Add(id)
		p.engSet.Add(id)

		p.wirePE(nid, pe, engine)
	}
	p.wireRouters()

	p.Net.DropHandler = func(at noc.NodeID, pkt *noc.Packet, reason noc.DropReason) {
		p.counters.PacketsDropped++
		if pkt.Kind == noc.Data {
			p.counters.InstancesLost++
			p.ack(pkt.Instance, pkt.Origin)
		}
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: p.clock.Now(), Kind: trace.KindDrop, Node: at, Task: pkt.Task, Info: pkt.ID})
		}
	}
	p.Net.RecoveryHandler = p.rescuePacket

	if cfg.Thermal != nil {
		p.heat = thermal.New(p.Topo, *cfg.Thermal)
		p.throttled = make([]bool, p.Topo.Nodes())
		p.workScan = make([]uint64, p.Topo.Nodes())
	}
	return p
}

// Thermal returns the temperature model, or nil when disabled.
func (p *Platform) Thermal() *thermal.Model { return p.heat }

// Reset rewinds the platform to the state New would construct for the same
// configuration with the given seed, reusing every allocation: topology,
// route tables, task graph and wiring closures are shared read-only, while
// routers, PEs, engines, the directory, the thermal field and all counters
// are cleared in place. Packets still held from the previous run are recycled
// into the pool. The replayed construction sequence (mapping draw, then one
// generation-phase draw per node) makes a reset platform bit-identical to a
// freshly built one for every seed — the contract the pooled runners rely on
// (see TestSteppingEquivalencePooledReuse).
func (p *Platform) Reset(seed uint64) {
	p.Cfg.Seed = seed
	p.rng.Reseed(seed)
	p.clock.Reset()
	p.events.Clear()
	// Clearing the queue discarded any pending controller-retry closures;
	// reclaim the packets they held.
	for i := range p.ctlRetry {
		p.pool.Put(p.ctlRetry[i].pkt)
		p.ctlRetry[i] = ctlRetryRec{}
	}
	p.ctlRetry = p.ctlRetry[:0]
	p.counters = Counters{}
	p.nextPkt, p.nextInst = 0, 0

	// The fabric first: its buffers hand their leftover packets back to the
	// pool before the PEs release theirs.
	p.Net.Reset()

	mapping := p.Cfg.Mapper.Map(p.Graph, p.Cfg.Width, p.Cfg.Height, p.rng)
	p.Dir.Reset(mapping)

	p.peSet.Clear()
	p.engSet.Clear()
	p.peWake.reset()
	p.engWake.reset()
	for id := range p.pes {
		phase := sim.Tick(p.rng.Intn(int(p.maxPhase)))
		p.pes[id].Restart(mapping[id], phase)
		engine := p.engines[id]
		if hr, ok := engine.(aim.HardResetter); ok {
			hr.HardReset()
		} else {
			engine.Reset()
		}
		engine.NoteTask(mapping[id])
		p.peSet.Add(id)
		p.engSet.Add(id)
	}

	if p.heat != nil {
		p.heat.Reset()
		p.nextHeat = 0
		for i := range p.throttled {
			p.throttled[i] = false
		}
	}
}

// stepThermal advances the temperature field and applies the DVFS governor.
func (p *Platform) stepThermal(now sim.Tick) {
	if p.heat == nil || now < p.nextHeat {
		return
	}
	p.nextHeat = now + p.heat.Params().StepTicks
	for i, pe := range p.pes {
		p.workScan[i] = pe.WorkCount()
	}
	p.heat.Step(p.workScan)
	if !p.Cfg.ThermalDVFS {
		return
	}
	for _, id := range p.heat.OverLimit() {
		if !p.throttled[id] {
			p.throttled[id] = true
			p.pes[id].SetFrequencyDivider(2)
		}
	}
	for id, on := range p.throttled {
		if on && p.heat.CoolEnough(noc.NodeID(id)) {
			p.throttled[id] = false
			p.pes[id].SetFrequencyDivider(1)
		}
	}
}

// markPE marks a PE for ticking. Fabric delivery callbacks run on the tick
// kernel's worker goroutines during a parallel Net.Tick, so marking goes
// through the atomic path while one is in flight.
func (p *Platform) markPE(id int) {
	if p.netPar {
		p.peSet.AddAtomic(id)
		return
	}
	p.peSet.Add(id)
}

// markEng marks an engine for polling; same concurrency contract as markPE
// (router monitor taps fire from the tile sweep workers).
func (p *Platform) markEng(id int) {
	if p.netPar {
		p.engSet.AddAtomic(id)
		return
	}
	p.engSet.Add(id)
}

// wirePE connects one node's PE-level hooks: the task-switch tap, the FFW
// queue peek against the node's (possibly shared) router, and the generation
// stimulus. Router-level taps are wired per physical router by wireRouters.
func (p *Platform) wirePE(id noc.NodeID, pe *node.PE, engine aim.Engine) {
	r := p.Net.Router(id)
	if _, isNone := engine.(aim.None); !isNone {
		eid := int(id)
		pe.OnGenerate = func(now sim.Tick) {
			engine.OnGenerated(now)
			p.engSet.Add(eid)
		}
	}
	if ffw, ok := engine.(*aim.FFW); ok {
		// FFW adoption is limited to packets this node could sink locally:
		// join-bound traffic belongs to its fork-time join node. On a
		// concentrated fabric every cluster member peeks the shared router's
		// queues — they all forage from the same stream.
		ffw.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) {
			return r.QueuedHeadTaskFunc(now, func(task taskgraph.TaskID) bool {
				return !(p.Graph.IsSink(task) && p.Graph.JoinWidth(task) > 1)
			})
		})
	}
	// Queue space freeing at this node can unblock its (possibly shared)
	// router's parked sink-delivery and absorption ports.
	pe.OnDequeue = func() { p.Net.Stir(id) }
	pe.OnSwitch = func(from, to taskgraph.TaskID, now sim.Tick) {
		p.counters.TaskSwitches++
		// The new task changes which passing packets this node absorbs;
		// parked heads at the serving router must re-evaluate.
		p.Net.Stir(id)
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindSwitch, Node: id, Task: to, Info: uint64(from)})
		}
		if p.Cfg.NeighborSignals {
			for port := noc.North; port <= noc.West; port++ {
				if nb, ok := p.Topo.Lateral(id, port); ok {
					p.engines[nb].OnNeighborSignal(to, now)
					p.engSet.Add(int(nb))
				}
			}
		}
	}
}

// wireRouters connects every physical router's sink, absorption, monitor
// taps and RCAP dispatch. On the mesh and torus each router serves exactly
// one node, so the wiring reduces to the classic one-to-one form; on a
// concentrated fabric the cluster's members share the router: deliveries
// demux on the packet's destination, absorption scans the members in
// ascending ID order, and monitor impulses stimulate every member's engine
// (they all observe the same router traffic).
func (p *Platform) wireRouters() {
	members := make([][]noc.NodeID, p.Topo.Nodes())
	for id := 0; id < p.Topo.Nodes(); id++ {
		rid := p.Topo.RouterOf(noc.NodeID(id))
		members[rid] = append(members[rid], noc.NodeID(id))
	}
	for _, r := range p.Net.UniqueRouters() {
		p.wireRouter(r, members[r.ID])
	}
}

// wireRouter wires one physical router for the given cluster members.
func (p *Platform) wireRouter(r *noc.Router, members []noc.NodeID) {
	if len(members) == 1 {
		r.SetSink(p.pes[members[0]])
	} else {
		r.SetSink(clusterSink{p})
	}
	// Task-addressed absorption: a member consumes any passing data packet
	// of its own task (join-bound sink packets stay bound to their fork-time
	// join node so branches converge). The handle is resolved only once a
	// member actually wants the packet — the common mismatch never touches
	// it.
	mems := members
	pool := p.pool
	r.Absorb = func(id noc.PacketID, task taskgraph.TaskID, now sim.Tick) bool {
		for _, m := range mems {
			pe := p.pes[m]
			if task != pe.Task() {
				continue
			}
			if p.Graph.IsSink(task) && p.Graph.JoinWidth(task) > 1 {
				return false
			}
			if pe.Accept(pool.Deref(id), now) {
				return true
			}
		}
		return false
	}
	// Monitor taps mark the member engines dirty so the stepping core polls
	// Decide on stimulated ticks only. The no-intelligence baseline ignores
	// every stimulus, so its taps stay nil and the router hot path skips the
	// calls entirely.
	smart := mems[:0:0]
	for _, m := range mems {
		if _, isNone := p.engines[m].(aim.None); !isNone {
			smart = append(smart, m)
		}
	}
	if len(smart) > 0 {
		r.Monitors.RoutedTask = func(task taskgraph.TaskID, now sim.Tick) {
			for _, m := range smart {
				p.engines[m].OnRouted(task, now)
				p.markEng(int(m))
			}
		}
		r.Monitors.InternalDelivery = func(task taskgraph.TaskID, now sim.Tick) {
			for _, m := range smart {
				p.engines[m].OnInternal(task, now)
				p.markEng(int(m))
			}
		}
		r.Monitors.DeadlineLapse = func(task taskgraph.TaskID, now sim.Tick) {
			for _, m := range smart {
				p.engines[m].OnDeadlineLapse(task, now)
				p.markEng(int(m))
			}
		}
	}
	r.SetConfigSink(platformConfig{p})
}

// clusterSink demuxes deliveries at a shared router onto the destination
// member's PE.
type clusterSink struct{ p *Platform }

// Accept implements noc.Sink.
func (s clusterSink) Accept(pkt *noc.Packet, now sim.Tick) bool {
	if uint(pkt.Dst) >= uint(len(s.p.pes)) {
		return false
	}
	return s.p.pes[pkt.Dst].Accept(pkt, now)
}

// platformConfig dispatches RCAP operations to their addressed node.
type platformConfig struct{ p *Platform }

// ApplyConfig implements noc.ConfigSink.
func (c platformConfig) ApplyConfig(dst noc.NodeID, op noc.ConfigOp, arg, arg2 int, now sim.Tick) {
	if uint(dst) >= uint(len(c.p.pes)) {
		return
	}
	pe := c.p.pes[dst]
	switch op {
	case noc.OpAIMParam:
		c.p.engines[dst].SetParam(arg, arg2)
		// A parameter write can change the engine's timing (FFW timeout, NI
		// thresholds): re-poll it so a fresh wake is scheduled.
		c.p.engSet.Add(int(dst))
	case noc.OpNodeReset:
		pe.Reset(now)
	case noc.OpNodeClockEnable:
		pe.SetClockEnable(arg != 0)
	case noc.OpNodeFrequency:
		pe.SetFrequencyDivider(arg)
	}
}

// platformEnv adapts Platform to node.Env without exporting the methods on
// Platform itself.
type platformEnv struct{ p *Platform }

// Inject implements node.Env.
func (e platformEnv) Inject(from noc.NodeID, pkt *noc.Packet, now sim.Tick) bool {
	return e.p.Net.Inject(from, pkt, now)
}

// Directory implements node.Env.
func (e platformEnv) Directory() *node.Directory { return e.p.Dir }

// Graph implements node.Env.
func (e platformEnv) Graph() *taskgraph.Graph { return e.p.Graph }

// allocPacket acquires a recycled (or fresh) zeroed packet stamped with the
// next fabric-unique ID.
func (p *Platform) allocPacket() *noc.Packet {
	pkt := p.pool.Get()
	p.nextPkt++
	pkt.ID = p.nextPkt
	return pkt
}

// PacketPool exposes the platform's packet recycler (stats, conservation
// checks). Callers must not Get/Put concurrently with a running platform.
func (p *Platform) PacketPool() *noc.PacketPool { return p.pool }

// ctlRetryRec is one pending controller-retry: the held config packet, the
// tap it keeps trying, and the tick its next attempt is scheduled for.
type ctlRetryRec struct {
	pkt *noc.Packet
	tap noc.NodeID
	at  sim.Tick
}

// injectConfig tries to enqueue a controller config packet at its tap,
// rescheduling next tick under back-pressure (the real controller paces its
// LVDS-fed uploads the same way). While a retry is pending the packet is
// tracked on the platform so Reset can reclaim it with the cleared events
// and Snapshot can record it.
func (p *Platform) injectConfig(tap noc.NodeID, pkt *noc.Packet, now sim.Tick) {
	if p.Net.Inject(tap, pkt, now) {
		p.untrackRetry(pkt)
		return
	}
	p.trackRetry(pkt, tap, now+1)
	p.Schedule(now+1, func(later sim.Tick) { p.injectConfig(tap, pkt, later) })
}

// trackRetry remembers a config packet held by a pending controller retry
// (a packet is tracked once however often the retry fires; repeats refresh
// the next-attempt tick).
func (p *Platform) trackRetry(pkt *noc.Packet, tap noc.NodeID, at sim.Tick) {
	for i := range p.ctlRetry {
		if p.ctlRetry[i].pkt == pkt {
			p.ctlRetry[i].at = at
			return
		}
	}
	p.ctlRetry = append(p.ctlRetry, ctlRetryRec{pkt: pkt, tap: tap, at: at})
}

// untrackRetry forgets a retry-held packet once its injection succeeded.
// Removal keeps the remaining records in order (see the field comment).
func (p *Platform) untrackRetry(pkt *noc.Packet) {
	for i := range p.ctlRetry {
		if p.ctlRetry[i].pkt == pkt {
			last := len(p.ctlRetry) - 1
			copy(p.ctlRetry[i:], p.ctlRetry[i+1:])
			p.ctlRetry[last] = ctlRetryRec{}
			p.ctlRetry = p.ctlRetry[:last]
			return
		}
	}
}

// NewPacket implements node.Env.
func (e platformEnv) NewPacket() *noc.Packet { return e.p.allocPacket() }

// FreePacket implements node.Env.
func (e platformEnv) FreePacket(pkt *noc.Packet) { e.p.pool.Put(pkt) }

// NextInstanceID implements node.Env.
func (e platformEnv) NextInstanceID() uint64 {
	e.p.nextInst++
	e.p.counters.InstancesStarted++
	return e.p.nextInst
}

// InstanceCompleted implements node.Env: count the throughput event and
// deliver the completion acknowledgement to the origin source (modelled as
// an out-of-band ack; see DESIGN.md §5).
func (e platformEnv) InstanceCompleted(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.p.counters.InstancesCompleted++
	e.p.ack(inst, origin)
	if e.p.Cfg.Trace != nil {
		e.p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindComplete, Node: at, Info: inst})
	}
}

// InstanceLost implements node.Env: a loss report also frees the origin's
// flow-control slot so sources do not stall on dead work.
func (e platformEnv) InstanceLost(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.p.counters.InstancesLost++
	e.p.ack(inst, origin)
	if e.p.Cfg.Trace != nil {
		e.p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindLost, Node: at, Info: inst})
	}
}

// ack frees the origin source's flow-control window slot.
func (p *Platform) ack(inst uint64, origin noc.NodeID) {
	if origin >= 0 && int(origin) < len(p.pes) {
		p.pes[origin].AckInstance(inst)
	}
}

// PacketDropped implements node.Env.
func (e platformEnv) PacketDropped(pkt *noc.Packet, at noc.NodeID, now sim.Tick) {
	e.p.counters.PacketsDropped++
}

// rescuePacket retargets a packet ejected by deadlock recovery or stranded
// by an unreachable destination, then re-injects it locally.
func (p *Platform) rescuePacket(at noc.NodeID, pkt *noc.Packet, now sim.Tick) bool {
	if pkt.Kind != noc.Data {
		return false
	}
	isJoin := pkt.JoinDst != noc.Invalid && p.Graph.IsSink(pkt.Task)
	if isJoin && p.Dir.Alive(pkt.JoinDst) && p.Dir.TaskOf(pkt.JoinDst) == pkt.Task &&
		p.Net.Reachable(at, pkt.JoinDst) {
		// The join binding is still valid: the packet was ejected by
		// congestion, not by a lost destination. Requeue it unchanged so
		// sibling branches still converge.
		pkt.Dst = pkt.JoinDst
	} else {
		anchor := at
		if isJoin {
			anchor = pkt.JoinDst
		}
		dst, ok := p.Dir.Nearest(pkt.Task, anchor)
		if !ok || !p.Net.Reachable(at, dst) {
			return false
		}
		pkt.Dst = dst
		if p.Graph.IsSink(pkt.Task) {
			pkt.JoinDst = dst
		}
		pkt.Retargets++
	}
	if !p.Net.Inject(at, pkt, now) {
		return false
	}
	p.counters.PacketsRescued++
	return true
}

// Now returns the current simulation tick.
func (p *Platform) Now() sim.Tick { return p.clock.Now() }

// Counters returns the run's cumulative accounting.
func (p *Platform) Counters() Counters { return p.counters }

// PEs returns the processing elements indexed by NodeID (do not mutate).
func (p *Platform) PEs() []*node.PE { return p.pes }

// Engine returns the AIM of one node.
func (p *Platform) Engine(id noc.NodeID) aim.Engine { return p.engines[id] }

// Schedule registers a callback at an absolute tick (used by the experiment
// controller for fault injection and runtime reconfiguration).
func (p *Platform) Schedule(at sim.Tick, fn func(now sim.Tick)) {
	p.events.Schedule(at, fn)
}

// InjectFaults kills the given nodes now: their routers stop forwarding,
// their PEs stop processing, and fault-aware routes are recomputed. On a
// concentrated fabric the failed node's router is the whole cluster's
// attachment point, so its sibling members go down with it — keeping the
// directory's aliveness consistent with the fabric's (a "live" sibling
// behind a dead router would keep winning nearest-owner ties at distance 0
// while being unreachable). This is the experiment controller's out-of-band
// debug interface, so it does not perturb NoC traffic.
func (p *Platform) InjectFaults(nodes []noc.NodeID) {
	now := p.clock.Now()
	for _, id := range nodes {
		p.pes[id].Fail(now)
		p.Net.Fail(id, now)
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindFault, Node: id})
		}
		rid := p.Topo.RouterOf(id)
		for m := noc.NodeID(0); int(m) < p.Topo.Nodes(); m++ {
			if m == id || p.Topo.RouterOf(m) != rid || !p.pes[m].Alive() {
				continue
			}
			p.pes[m].Fail(now)
			if p.Cfg.Trace != nil {
				p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindFault, Node: m})
			}
		}
	}
}

// ReviveNodes returns downed nodes to service now — the churn half of the
// fault engine. The node's router rejoins the fabric (routes recompute or
// collapse back to the healthy tables), and every dead PE behind it revives
// as an idle recruit: directory re-registered, intelligence engine told the
// node is unassigned and re-enrolled for polling. On a concentrated fabric
// the shared router is the cluster's attachment point, so reviving any
// member brings its dead siblings back too — the exact mirror of
// InjectFaults' cluster semantics. Reviving a healthy node is a no-op.
func (p *Platform) ReviveNodes(nodes []noc.NodeID) {
	now := p.clock.Now()
	for _, id := range nodes {
		p.Net.Revive(id, now)
		rid := p.Topo.RouterOf(id)
		for m := noc.NodeID(0); int(m) < p.Topo.Nodes(); m++ {
			if p.Topo.RouterOf(m) != rid || p.pes[m].Alive() {
				continue
			}
			p.pes[m].Revive(now)
			p.engines[m].NoteTask(taskgraph.None)
			p.engSet.Add(int(m))
			if p.Cfg.Trace != nil {
				p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindRevive, Node: m})
			}
		}
	}
}

// Step advances the platform one tick: scheduled events, processing
// elements, fabric, then intelligence decisions.
//
// The default core is activity-tracked: only enrolled PEs are ticked, only
// routers holding traffic are serviced, and only stimulated (or timer-due)
// engines are polled. Sweeps run in ascending node-ID order — the order the
// dense scan uses — so for the same seed the two cores produce bit-identical
// counters and series (TestSteppingEquivalence).
func (p *Platform) Step() {
	now := p.clock.Now()
	p.events.RunDue(now)
	p.stepThermal(now)
	if p.Cfg.DenseStepping {
		p.stepDense(now)
	} else {
		p.peSet.Sweep(func(id int) bool {
			pe := p.pes[id]
			pe.Tick(now)
			wake, has, parkable := pe.NextWake(now)
			if !parkable {
				return true
			}
			if has {
				// Near wakes stay enrolled: a few no-op ticks are cheaper
				// than two event-heap operations (and equally deterministic —
				// the dense scan ticks idle PEs every cycle anyway).
				if wake-now <= peParkHorizon {
					return true
				}
				p.peWake.schedule(id, wake)
			}
			return false
		})
		p.netPar = p.Net.ParallelTick()
		p.Net.Tick(now)
		p.netPar = false
		if p.engPollAll {
			for id := range p.engines {
				p.pollEngine(id, now)
			}
		} else {
			p.engSet.Sweep(func(id int) bool { return p.pollEngine(id, now) })
		}
	}
	p.clock.Step()
}

// stepDense is the reference full scan: every component, every tick.
func (p *Platform) stepDense(now sim.Tick) {
	for _, pe := range p.pes {
		pe.Tick(now)
	}
	p.netPar = p.Net.ParallelTick()
	p.Net.TickDense(now)
	p.netPar = false
	for id := range p.engines {
		p.pollEngine(id, now)
	}
}

// pollEngine runs one AIM decision pass and applies a fired switch. It
// returns whether a switch was applied (a fired engine stays enrolled one
// more tick so its post-switch state is re-polled). After the pass the
// engine's self-reported next decision tick is scheduled as a wake event.
func (p *Platform) pollEngine(id int, now sim.Tick) bool {
	engine := p.engines[id]
	task, ok := engine.Decide(now)
	fired := false
	if ok {
		pe := p.pes[id]
		if pe.Alive() {
			pe.SwitchTask(task, now)
			engine.NoteTask(pe.Task())
			fired = true
		}
	}
	if !p.Cfg.DenseStepping && !p.engPollAll {
		if w := p.engWaker[id]; w != nil {
			if at, has := w.NextDecide(now); has {
				p.engWake.schedule(id, at)
			}
		}
	}
	return fired
}

// wakeTable parks the members of one component class (PEs or engines): a
// scheduled wake re-enrolls the member in its active set, with wake events
// deduplicated against the earliest pending tick per member. The per-member
// event closures are bound once so parking never allocates.
type wakeTable struct {
	events *sim.EventQueue
	at     []sim.Tick // earliest pending wake per member, -1 when none
	fn     []func(sim.Tick)
}

func newWakeTable(n int, events *sim.EventQueue, set *sim.ActiveSet) *wakeTable {
	w := &wakeTable{events: events, at: make([]sim.Tick, n), fn: make([]func(sim.Tick), n)}
	for id := 0; id < n; id++ {
		w.at[id] = -1
		w.fn[id] = func(fired sim.Tick) {
			if w.at[id] == fired {
				w.at[id] = -1
			}
			set.Add(id)
		}
	}
	return w
}

// reset forgets all pending wakes (their queued events must have been
// cleared by the caller).
func (w *wakeTable) reset() {
	for id := range w.at {
		w.at[id] = -1
	}
}

// schedule arranges a wake at the given tick, deduplicating against an
// earlier-or-equal pending wake. Superseded later wakes still fire but are
// spurious by the stepping core's contract (an extra tick on a parked
// component is a no-op).
func (w *wakeTable) schedule(id int, at sim.Tick) {
	if p := w.at[id]; p >= 0 && p <= at {
		return
	}
	w.at[id] = at
	w.events.Schedule(at, w.fn[id])
}

// RunFor advances the platform by d ticks, invoking onTick (when non-nil)
// after each step with the tick that just executed. When the platform is
// fully idle — no active PEs, routers or engines — the clock fast-forwards
// to the next scheduled wake (bounded by thermal steps and the run end)
// instead of executing no-op ticks; per-tick observers disable the skip.
func (p *Platform) RunFor(d sim.Tick, onTick func(now sim.Tick)) {
	end := p.clock.Now() + d
	for p.clock.Now() < end {
		if onTick == nil {
			p.fastForward(end)
			if p.clock.Now() >= end {
				return
			}
		}
		start := p.clock.Now()
		p.Step()
		if onTick != nil {
			onTick(start)
		}
	}
}

// fastForward advances the clock to the next tick with any work pending,
// capped at end. It is a no-op unless the active stepping core is in use and
// every component is parked.
func (p *Platform) fastForward(end sim.Tick) {
	if p.Cfg.DenseStepping || p.engPollAll {
		return
	}
	if !p.peSet.Empty() || !p.engSet.Empty() || p.Net.ActiveRouters() > 0 {
		return
	}
	now := p.clock.Now()
	next := end
	if at, ok := p.events.PeekTick(); ok && at < next {
		next = at
	}
	if p.heat != nil && p.nextHeat < next {
		next = p.nextHeat
	}
	if next > now {
		p.clock.Advance(next - now)
	}
}

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("centurion %s seed=%d t=%s", p.Topo, p.Cfg.Seed, p.clock.Now())
}
