// Package centurion assembles the full experimentation platform of the
// paper: an 8×16 (by default) mesh of {wormhole router + processing element
// + embedded intelligence module}, a shared task directory, and the
// experiment controller used for parameter upload, runtime data readout and
// fault injection.
//
// One Platform value is one independent experiment run; the experiment
// harness (internal/experiments) creates hundreds of them with different
// seeds.
package centurion

import (
	"fmt"

	"centurion/internal/aim"
	"centurion/internal/noc"
	"centurion/internal/node"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
	"centurion/internal/trace"
)

// Config assembles a platform.
type Config struct {
	// Width, Height set the mesh dimensions (default 16×8 = 128 nodes,
	// Centurion-V6).
	Width, Height int
	// Graph is the application task graph (default: the paper's fork–join).
	Graph *taskgraph.Graph
	// Mapper produces the initial task mapping (default: random — the
	// adaptive models' starting point; use taskgraph.HeuristicMapper for
	// the no-intelligence baseline).
	Mapper taskgraph.Mapper
	// Engines builds one AIM per node (default: aim.NewNone).
	Engines aim.Factory
	// Seed drives all randomness of the run.
	Seed uint64
	// NoC are the fabric parameters.
	NoC noc.Params
	// PE are the processing-element parameters.
	PE node.Params
	// MaxGenPhase staggers source generators uniformly in [0, MaxGenPhase)
	// ticks (defaults to the source task's generation period).
	MaxGenPhase sim.Tick
	// NeighborSignals, when true, broadcasts each node's task switches to
	// the four mesh neighbours' AIMs (the information-transfer extension).
	NeighborSignals bool
	// Trace, when non-nil, records switch/fault/completion/loss/drop events
	// (the runtime data the experiment controller streams to the host).
	Trace *trace.Log
	// Thermal, when non-nil, enables the per-node temperature model (the
	// AIM's temperature monitor).
	Thermal *thermal.Params
	// ThermalDVFS enables the frequency-scaling governor: nodes above the
	// safe temperature are halved in frequency until they cool below the
	// hysteresis threshold (the paper's frequency knob, 10–300 MHz on the
	// real platform).
	ThermalDVFS bool
}

// DefaultConfig returns the paper's experiment configuration with the given
// model factory and seed.
func DefaultConfig(engines aim.Factory, mapper taskgraph.Mapper, seed uint64) Config {
	return Config{
		Width:   16,
		Height:  8,
		Graph:   taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams()),
		Mapper:  mapper,
		Engines: engines,
		Seed:    seed,
		NoC:     noc.DefaultConfig(),
		PE:      node.DefaultParams(),
	}
}

// Counters aggregate platform-wide accounting for one run.
type Counters struct {
	InstancesStarted   uint64
	InstancesCompleted uint64
	InstancesLost      uint64 // lost reports may repeat per instance (see DESIGN.md)
	TaskSwitches       uint64
	PacketsDropped     uint64
	PacketsRescued     uint64
}

// Platform is one assembled many-core system.
type Platform struct {
	Cfg   Config
	Topo  noc.Topology
	Net   *noc.Network
	Dir   *node.Directory
	Graph *taskgraph.Graph

	pes     []*node.PE
	engines []aim.Engine
	clock   sim.Clock
	rng     *sim.RNG
	events  sim.EventQueue

	nextPkt  uint64
	nextInst uint64

	heat      *thermal.Model
	nextHeat  sim.Tick
	throttled []bool
	workScan  []uint64

	counters Counters
}

// New assembles a platform from the configuration.
func New(cfg Config) *Platform {
	if cfg.Width <= 0 {
		cfg.Width = 16
	}
	if cfg.Height <= 0 {
		cfg.Height = 8
	}
	if cfg.Graph == nil {
		cfg.Graph = taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	}
	if cfg.Mapper == nil {
		cfg.Mapper = taskgraph.RandomMapper{}
	}
	if cfg.Engines == nil {
		cfg.Engines = aim.NewNone
	}
	if cfg.PE.QueueCap == 0 {
		cfg.PE = node.DefaultParams()
	}
	if cfg.NoC.BufferFlits == 0 {
		cfg.NoC = noc.DefaultConfig()
	}

	p := &Platform{
		Cfg:   cfg,
		Topo:  noc.NewTopology(cfg.Width, cfg.Height),
		Graph: cfg.Graph,
		rng:   sim.NewRNG(cfg.Seed),
	}
	p.Net = noc.NewNetwork(p.Topo, cfg.NoC)
	mapping := cfg.Mapper.Map(cfg.Graph, cfg.Width, cfg.Height, p.rng)
	p.Dir = node.NewDirectory(p.Topo, mapping)

	maxPhase := cfg.MaxGenPhase
	if maxPhase <= 0 {
		// Default: stagger within one generation period of the first source.
		for _, id := range cfg.Graph.Sources() {
			if gp := cfg.Graph.Task(id).GenPeriod; sim.Tick(gp) > maxPhase {
				maxPhase = sim.Tick(gp)
			}
		}
		if maxPhase <= 0 {
			maxPhase = 1
		}
	}

	p.pes = make([]*node.PE, p.Topo.Nodes())
	p.engines = make([]aim.Engine, p.Topo.Nodes())
	for id := 0; id < p.Topo.Nodes(); id++ {
		nid := noc.NodeID(id)
		phase := sim.Tick(p.rng.Intn(int(maxPhase)))
		pe := node.NewPE(nid, platformEnv{p}, cfg.PE, mapping[id], phase)
		p.pes[id] = pe

		engine := cfg.Engines(cfg.Graph)
		engine.NoteTask(mapping[id])
		p.engines[id] = engine

		p.wireNode(nid, pe, engine)
	}

	p.Net.DropHandler = func(at noc.NodeID, pkt *noc.Packet, reason noc.DropReason) {
		p.counters.PacketsDropped++
		if pkt.Kind == noc.Data {
			p.counters.InstancesLost++
			p.ack(pkt.Instance, pkt.Origin)
		}
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: p.clock.Now(), Kind: trace.KindDrop, Node: at, Task: pkt.Task, Info: pkt.ID})
		}
	}
	p.Net.RecoveryHandler = p.rescuePacket

	if cfg.Thermal != nil {
		p.heat = thermal.New(p.Topo, *cfg.Thermal)
		p.throttled = make([]bool, p.Topo.Nodes())
		p.workScan = make([]uint64, p.Topo.Nodes())
	}
	return p
}

// Thermal returns the temperature model, or nil when disabled.
func (p *Platform) Thermal() *thermal.Model { return p.heat }

// stepThermal advances the temperature field and applies the DVFS governor.
func (p *Platform) stepThermal(now sim.Tick) {
	if p.heat == nil || now < p.nextHeat {
		return
	}
	p.nextHeat = now + p.heat.Params().StepTicks
	for i, pe := range p.pes {
		p.workScan[i] = pe.WorkCount()
	}
	p.heat.Step(p.workScan)
	if !p.Cfg.ThermalDVFS {
		return
	}
	for _, id := range p.heat.OverLimit() {
		if !p.throttled[id] {
			p.throttled[id] = true
			p.pes[id].SetFrequencyDivider(2)
		}
	}
	for id, on := range p.throttled {
		if on && p.heat.CoolEnough(noc.NodeID(id)) {
			p.throttled[id] = false
			p.pes[id].SetFrequencyDivider(1)
		}
	}
}

// wireNode connects one node's router monitors and knobs to its AIM and PE.
func (p *Platform) wireNode(id noc.NodeID, pe *node.PE, engine aim.Engine) {
	r := p.Net.Router(id)
	r.SetSink(pe)
	// Task-addressed absorption: this node consumes any passing data packet
	// of its own task (join-bound sink packets stay bound to their fork-time
	// join node so branches converge).
	r.Absorb = func(pkt *noc.Packet, now sim.Tick) bool {
		if pkt.Task != pe.Task() {
			return false
		}
		if p.Graph.IsSink(pkt.Task) && p.Graph.JoinWidth(pkt.Task) > 1 {
			return false
		}
		return pe.Accept(pkt, now)
	}
	r.Monitors.RoutedTask = engine.OnRouted
	r.Monitors.InternalDelivery = engine.OnInternal
	r.Monitors.DeadlineLapse = engine.OnDeadlineLapse
	pe.OnGenerate = engine.OnGenerated
	if ffw, ok := engine.(*aim.FFW); ok {
		// FFW adoption is limited to packets this node could sink locally:
		// join-bound traffic belongs to its fork-time join node.
		ffw.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) {
			return r.QueuedHeadTaskFunc(now, func(pkt *noc.Packet) bool {
				return !(p.Graph.IsSink(pkt.Task) && p.Graph.JoinWidth(pkt.Task) > 1)
			})
		})
	}
	pe.OnSwitch = func(from, to taskgraph.TaskID, now sim.Tick) {
		p.counters.TaskSwitches++
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindSwitch, Node: id, Task: to, Info: uint64(from)})
		}
		if p.Cfg.NeighborSignals {
			for port := noc.North; port <= noc.West; port++ {
				if nb, ok := p.Topo.Neighbor(id, port); ok {
					p.engines[nb].OnNeighborSignal(to, now)
				}
			}
		}
	}
	r.SetConfigSink(&nodeConfig{p: p, id: id})
}

// nodeConfig dispatches RCAP operations addressed to one node.
type nodeConfig struct {
	p  *Platform
	id noc.NodeID
}

// ApplyConfig implements noc.ConfigSink.
func (c *nodeConfig) ApplyConfig(op noc.ConfigOp, arg, arg2 int, now sim.Tick) {
	pe := c.p.pes[c.id]
	switch op {
	case noc.OpAIMParam:
		c.p.engines[c.id].SetParam(arg, arg2)
	case noc.OpNodeReset:
		pe.Reset(now)
	case noc.OpNodeClockEnable:
		pe.SetClockEnable(arg != 0)
	case noc.OpNodeFrequency:
		pe.SetFrequencyDivider(arg)
	}
}

// platformEnv adapts Platform to node.Env without exporting the methods on
// Platform itself.
type platformEnv struct{ p *Platform }

// Inject implements node.Env.
func (e platformEnv) Inject(from noc.NodeID, pkt *noc.Packet, now sim.Tick) bool {
	return e.p.Net.Inject(from, pkt, now)
}

// Directory implements node.Env.
func (e platformEnv) Directory() *node.Directory { return e.p.Dir }

// Graph implements node.Env.
func (e platformEnv) Graph() *taskgraph.Graph { return e.p.Graph }

// NextPacketID implements node.Env.
func (e platformEnv) NextPacketID() uint64 { e.p.nextPkt++; return e.p.nextPkt }

// NextInstanceID implements node.Env.
func (e platformEnv) NextInstanceID() uint64 {
	e.p.nextInst++
	e.p.counters.InstancesStarted++
	return e.p.nextInst
}

// InstanceCompleted implements node.Env: count the throughput event and
// deliver the completion acknowledgement to the origin source (modelled as
// an out-of-band ack; see DESIGN.md §5).
func (e platformEnv) InstanceCompleted(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.p.counters.InstancesCompleted++
	e.p.ack(inst, origin)
	if e.p.Cfg.Trace != nil {
		e.p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindComplete, Node: at, Info: inst})
	}
}

// InstanceLost implements node.Env: a loss report also frees the origin's
// flow-control slot so sources do not stall on dead work.
func (e platformEnv) InstanceLost(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.p.counters.InstancesLost++
	e.p.ack(inst, origin)
	if e.p.Cfg.Trace != nil {
		e.p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindLost, Node: at, Info: inst})
	}
}

// ack frees the origin source's flow-control window slot.
func (p *Platform) ack(inst uint64, origin noc.NodeID) {
	if origin >= 0 && int(origin) < len(p.pes) {
		p.pes[origin].AckInstance(inst)
	}
}

// PacketDropped implements node.Env.
func (e platformEnv) PacketDropped(pkt *noc.Packet, at noc.NodeID, now sim.Tick) {
	e.p.counters.PacketsDropped++
}

// rescuePacket retargets a packet ejected by deadlock recovery or stranded
// by an unreachable destination, then re-injects it locally.
func (p *Platform) rescuePacket(at noc.NodeID, pkt *noc.Packet, now sim.Tick) bool {
	if pkt.Kind != noc.Data {
		return false
	}
	isJoin := pkt.JoinDst != noc.Invalid && p.Graph.IsSink(pkt.Task)
	if isJoin && p.Dir.Alive(pkt.JoinDst) && p.Dir.TaskOf(pkt.JoinDst) == pkt.Task &&
		p.Net.Reachable(at, pkt.JoinDst) {
		// The join binding is still valid: the packet was ejected by
		// congestion, not by a lost destination. Requeue it unchanged so
		// sibling branches still converge.
		pkt.Dst = pkt.JoinDst
	} else {
		anchor := at
		if isJoin {
			anchor = pkt.JoinDst
		}
		dst, ok := p.Dir.Nearest(pkt.Task, anchor)
		if !ok || !p.Net.Reachable(at, dst) {
			return false
		}
		pkt.Dst = dst
		if p.Graph.IsSink(pkt.Task) {
			pkt.JoinDst = dst
		}
		pkt.Retargets++
	}
	if !p.Net.Inject(at, pkt, now) {
		return false
	}
	p.counters.PacketsRescued++
	return true
}

// Now returns the current simulation tick.
func (p *Platform) Now() sim.Tick { return p.clock.Now() }

// Counters returns the run's cumulative accounting.
func (p *Platform) Counters() Counters { return p.counters }

// PEs returns the processing elements indexed by NodeID (do not mutate).
func (p *Platform) PEs() []*node.PE { return p.pes }

// Engine returns the AIM of one node.
func (p *Platform) Engine(id noc.NodeID) aim.Engine { return p.engines[id] }

// Schedule registers a callback at an absolute tick (used by the experiment
// controller for fault injection and runtime reconfiguration).
func (p *Platform) Schedule(at sim.Tick, fn func(now sim.Tick)) {
	p.events.Schedule(at, fn)
}

// InjectFaults kills the given nodes now: their routers stop forwarding,
// their PEs stop processing, and fault-aware routes are recomputed. This is
// the experiment controller's out-of-band debug interface, so it does not
// perturb NoC traffic.
func (p *Platform) InjectFaults(nodes []noc.NodeID) {
	now := p.clock.Now()
	for _, id := range nodes {
		p.pes[id].Fail(now)
		p.Net.Fail(id, now)
		if p.Cfg.Trace != nil {
			p.Cfg.Trace.Add(trace.Event{At: now, Kind: trace.KindFault, Node: id})
		}
	}
}

// Step advances the platform one tick: scheduled events, processing
// elements, fabric, then intelligence decisions.
func (p *Platform) Step() {
	now := p.clock.Now()
	p.events.RunDue(now)
	p.stepThermal(now)
	for _, pe := range p.pes {
		pe.Tick(now)
	}
	p.Net.Tick(now)
	for id, engine := range p.engines {
		task, ok := engine.Decide(now)
		if !ok {
			continue
		}
		pe := p.pes[id]
		if !pe.Alive() {
			continue
		}
		pe.SwitchTask(task, now)
		engine.NoteTask(pe.Task())
	}
	p.clock.Step()
}

// RunFor advances the platform by d ticks, invoking onTick (when non-nil)
// after each step with the tick that just executed.
func (p *Platform) RunFor(d sim.Tick, onTick func(now sim.Tick)) {
	for i := sim.Tick(0); i < d; i++ {
		start := p.clock.Now()
		p.Step()
		if onTick != nil {
			onTick(start)
		}
	}
}

// String summarises the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("centurion %s seed=%d t=%s", p.Topo, p.Cfg.Seed, p.clock.Now())
}
