package centurion

// Topology end-to-end coverage: the pluggable fabrics (torus, concentrated
// mesh) must run through the exact same stack as the reference mesh — the
// activity-tracked stepping core must stay bit-identical to the dense scan,
// Platform.Reset must stay bit-identical to fresh construction, the steady
// state must stay allocation-free, and faulted runs must keep completing
// work. The mesh itself is covered by the unmodified equivalence suite.

import (
	"fmt"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// topoConfig builds the default platform configuration on a given fabric.
func topoConfig(topology string, factory aim.Factory, mapper taskgraph.Mapper, seed uint64) Config {
	cfg := DefaultConfig(factory, mapper, seed)
	cfg.Topology = topology
	return cfg
}

// TestTopologyEquivalence extends the stepping-core determinism contract to
// the non-mesh fabrics: for every topology, active stepping must be
// bit-identical to the dense reference scan, fault-free and faulted.
func TestTopologyEquivalence(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, topology := range []string{"torus", "cmesh"} {
		for _, m := range models {
			for seed := uint64(1); seed <= 2; seed++ {
				for _, faulted := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/seed=%d/faulted=%v", topology, m.name, seed, faulted)
					t.Run(name, func(t *testing.T) {
						cfg := topoConfig(topology, m.factory, m.mapper, seed)
						var plan []noc.NodeID
						if faulted {
							topo, err := noc.MakeTopology(topology, cfg.Width, cfg.Height)
							if err != nil {
								t.Fatal(err)
							}
							plan = faults.RandomNodes(topo, 12, sim.NewRNG(seed^0xfa17))
						}
						dense := runStepping(cfg, true, plan)
						active := runStepping(cfg, false, plan)
						compareSnapshots(t, dense, active)
					})
				}
			}
		}
	}
}

// TestTopologyPooledReuse proves Platform.Reset's bit-identity contract on
// the non-mesh fabrics: a platform dirtied by a faulted torus/cmesh run and
// then Reset(seed) must replay exactly like a freshly built one.
func TestTopologyPooledReuse(t *testing.T) {
	for _, topology := range []string{"torus", "cmesh"} {
		t.Run(topology, func(t *testing.T) {
			cfg := topoConfig(topology, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 999)
			reused := New(cfg)
			driveStepping(reused, faults.RandomNodes(reused.Topo, 24, sim.NewRNG(0xd117)))

			for seed := uint64(1); seed <= 2; seed++ {
				plan := faults.RandomNodes(reused.Topo, 8, sim.NewRNG(seed^0xfa17))
				refCfg := topoConfig(topology, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, seed)
				dense := runStepping(refCfg, true, plan)
				reused.Reset(seed)
				pooled := driveStepping(reused, plan)
				compareSnapshots(t, dense, pooled)
			}
		})
	}
}

// TestTopologyEndToEndThroughput drives every fabric through a faulted run
// and checks the platform keeps doing useful work: instances complete before
// and after the damage, and on the concentrated mesh traffic genuinely
// contends for the shared routers (fewer physical routers than nodes).
func TestTopologyEndToEndThroughput(t *testing.T) {
	for _, topology := range []string{"mesh", "torus", "cmesh"} {
		t.Run(topology, func(t *testing.T) {
			cfg := topoConfig(topology, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5)
			p := New(cfg)
			if topology == "cmesh" {
				if got, want := len(p.Net.UniqueRouters()), p.Topo.Nodes()/noc.CMeshConcentration; got != want {
					t.Fatalf("cmesh has %d physical routers, want %d", got, want)
				}
			}
			p.RunFor(sim.Ms(200), nil)
			pre := p.Counters().InstancesCompleted
			if pre == 0 {
				t.Fatalf("%s completed nothing in 200 ms", topology)
			}
			p.InjectFaults(faults.RandomNodes(p.Topo, 12, sim.NewRNG(0xbeef)))
			p.RunFor(sim.Ms(200), nil)
			if post := p.Counters().InstancesCompleted; post == pre {
				t.Errorf("%s completed nothing after faults (stuck at %d)", topology, pre)
			}
		})
	}
}

// TestTopologyStepSteadyStateAllocFree extends the zero-allocation guard to
// the new fabrics: the steady-state hot loop must not allocate on a torus or
// a concentrated mesh either (the acceptance bar behind the CI bench-smoke
// variants).
func TestTopologyStepSteadyStateAllocFree(t *testing.T) {
	for _, topology := range []string{"torus", "cmesh"} {
		t.Run(topology, func(t *testing.T) {
			cfg := topoConfig(topology, aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 1)
			p := New(cfg)
			p.RunFor(sim.Ms(400), nil) // grow capacities and caches, fill the pool
			allocs := testing.AllocsPerRun(2000, func() { p.Step() })
			if allocs > 0.05 {
				t.Errorf("%s steady-state Step allocates %.3f objects/tick, want ~0", topology, allocs)
			}
		})
	}
}

// TestCMeshClusterFaultCoherence pins the concentrated fault model: killing
// one node takes its shared router down, and the sibling cluster members go
// with it — fabric aliveness, directory aliveness and PE state must agree,
// or nearest-owner queries would keep steering packets at unreachable
// "live" siblings (they win ties at topology distance 0).
func TestCMeshClusterFaultCoherence(t *testing.T) {
	cfg := topoConfig("cmesh", aim.NewNone, taskgraph.HeuristicMapper{}, 2)
	p := New(cfg)
	p.RunFor(sim.Ms(10), nil)
	leaf := p.Topo.ID(noc.Coord{X: 3, Y: 1}) // leaf of the hub at (2,0)
	p.InjectFaults([]noc.NodeID{leaf})
	hub := p.Topo.RouterOf(leaf)
	for m := noc.NodeID(0); int(m) < p.Topo.Nodes(); m++ {
		inCluster := p.Topo.RouterOf(m) == hub
		if got := p.Net.Alive(m); got != !inCluster {
			t.Errorf("Net.Alive(%d) = %v, want %v", m, got, !inCluster)
		}
		if got := p.Dir.Alive(m); got != !inCluster {
			t.Errorf("Dir.Alive(%d) = %v, want %v", m, got, !inCluster)
		}
		if got := p.PEs()[m].Alive(); got != !inCluster {
			t.Errorf("PE(%d).Alive = %v, want %v", m, got, !inCluster)
		}
	}
	// The rest of the fabric keeps completing work.
	pre := p.Counters().InstancesCompleted
	p.RunFor(sim.Ms(100), nil)
	if p.Counters().InstancesCompleted == pre {
		t.Error("platform stalled after a single cluster fault")
	}
}

// TestTopologyRCAPDelivery checks that RCAP configuration addressed to a
// cluster member (not the hub itself) is applied to that member on a
// concentrated mesh — the shared router demuxes on the packet destination.
func TestTopologyRCAPDelivery(t *testing.T) {
	cfg := topoConfig("cmesh", aim.NewNone, taskgraph.HeuristicMapper{}, 3)
	p := New(cfg)
	ctl := NewController(p)
	// Node (1,1) is a leaf of the hub at (0,0).
	leaf := p.Topo.ID(noc.Coord{X: 1, Y: 1})
	if p.Topo.RouterOf(leaf) == leaf {
		t.Fatal("test premise broken: (1,1) should not be a hub")
	}
	if err := ctl.SendConfig(leaf, noc.OpNodeClockEnable, 0, 0); err != nil {
		t.Fatal(err)
	}
	p.RunFor(sim.Ms(50), nil)
	before := p.PEs()[leaf].WorkCount()
	p.RunFor(sim.Ms(50), nil)
	if after := p.PEs()[leaf].WorkCount(); after != before {
		t.Errorf("clock-gated leaf kept working (%d -> %d)", before, after)
	}
	// Siblings sharing the router must be unaffected.
	hub := p.Topo.RouterOf(leaf)
	if p.PEs()[hub].WorkCount() == 0 {
		t.Error("hub PE never worked")
	}
}
