package centurion

// The determinism contract of the parallel tiled tick kernel (ISSUE 8): with
// the fabric partitioned into K tiles, a tick swept by W workers must be
// bit-identical to the same K-tile kernel swept serially — same counters,
// same fabric stats, same per-node state, same per-window series, tick for
// tick. The serial sweep (Workers=1) is the in-tree reference; this suite
// pits it against Workers=4 across models × seeds × topologies × fault
// timelines, through pooled Reset reuse, and under both stepping cores. CI
// drives it under -race and at GOMAXPROCS=1 and =4.

import (
	"fmt"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// tiledConfig is DefaultConfig with the fabric forced onto four tiles (the
// 16×8 default grid auto-sizes to one tile, which would bypass the staging
// machinery entirely) and the given worker count.
func tiledConfig(engines aim.Factory, mapper taskgraph.Mapper, seed uint64, workers int) Config {
	cfg := DefaultConfig(engines, mapper, seed)
	cfg.NoC.Tiles = 4
	cfg.NoC.Workers = workers
	return cfg
}

// TestParallelTickEquivalence is the core W=1 vs W=4 bit-identity matrix:
// every model, fault-free and faulted, on the four-tile 16×8 fabric.
func TestParallelTickEquivalence(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("%s/seed=%d/faulted=%v", m.name, seed, faulted)
				t.Run(name, func(t *testing.T) {
					var plan []noc.NodeID
					if faulted {
						plan = faults.RandomNodes(noc.NewTopology(16, 8), 12, sim.NewRNG(seed^0xfa17))
					}
					serial := runStepping(tiledConfig(m.factory, m.mapper, seed, 1), false, plan)
					parallel := runStepping(tiledConfig(m.factory, m.mapper, seed, 4), false, plan)
					compareSnapshots(t, serial, parallel)
				})
			}
		}
	}
}

// TestParallelTickTopologies extends the contract to the torus's wrap links
// (cross-tile forwards between the first and last row bands) and cmesh's
// 2×2 concentration clusters (which the tiler must never split).
func TestParallelTickTopologies(t *testing.T) {
	for _, topo := range []string{"torus", "cmesh"} {
		for _, faulted := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/faulted=%v", topo, faulted), func(t *testing.T) {
				run := func(workers int) steppingSnapshot {
					cfg := tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 7, workers)
					cfg.Topology = topo
					var plan []noc.NodeID
					if faulted {
						plan = faults.RandomNodes(noc.NewTopology(16, 8), 12, sim.NewRNG(0xfa17))
					}
					return runStepping(cfg, false, plan)
				}
				compareSnapshots(t, run(1), run(4))
			})
		}
	}
}

// TestParallelTickHostile runs every hostile timeline — churn revivals,
// flaky links, cascade waves and byzantine routers — through the tiled
// kernel at W=1 and W=4. The byzantine profile exercises the kernel's
// serial-fallback guard: once a byzantine schedule arms, the tick drops to
// the serial tiled sweep (the meddler's RNG draws are order-sensitive), and
// that downshift itself must be deterministic.
func TestParallelTickHostile(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		for _, prof := range hostileProfiles {
			t.Run(fmt.Sprintf("%s/%s", topo, prof.Kind), func(t *testing.T) {
				run := func(workers int) steppingSnapshot {
					cfg := tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5, workers)
					cfg.Topology = topo
					p := New(cfg)
					return driveHostile(p, buildHostile(t, p, prof, 5))
				}
				compareSnapshots(t, run(1), run(4))
			})
		}
	}
}

// TestParallelTickPooledReuse proves the staged-work scratch state resets
// with the platform: a parallel platform dirtied by a byzantine run, then
// Reset(seed), must replay each run bit-identically to a fresh serial-swept
// reference — staging buffers, per-tile active sets and worker bookkeeping
// carry nothing across the reset.
func TestParallelTickPooledReuse(t *testing.T) {
	cfg := tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 999, 4)
	reused := New(cfg)
	driveHostile(reused, buildHostile(t, reused, hostileProfiles[3], 0xbada))

	for seed := uint64(1); seed <= 2; seed++ {
		for _, faulted := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d/faulted=%v", seed, faulted), func(t *testing.T) {
				var plan []noc.NodeID
				if faulted {
					plan = faults.RandomNodes(noc.NewTopology(16, 8), 12, sim.NewRNG(seed^0xfa17))
				}
				want := runStepping(tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, seed, 1), false, plan)
				reused.Reset(seed)
				compareSnapshots(t, want, driveStepping(reused, plan))
			})
		}
	}
}

// TestParallelTickDenseEquivalence closes the triangle with the stepping
// cores: on the tiled fabric, dense full scans and activity-tracked sweeps
// must still agree — per-tile active sets stand in for the global set
// without changing a single observable — and the parallel dense scan must
// match both.
func TestParallelTickDenseEquivalence(t *testing.T) {
	plan := faults.RandomNodes(noc.NewTopology(16, 8), 12, sim.NewRNG(0xfa17))
	serialDense := runStepping(tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 3, 1), true, plan)
	parallelDense := runStepping(tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 3, 4), true, plan)
	parallelActive := runStepping(tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 3, 4), false, plan)
	compareSnapshots(t, serialDense, parallelDense)
	compareSnapshots(t, serialDense, parallelActive)
}

// TestParallelStepSteadyStateAllocFree extends the zero-alloc steady-state
// guard to the tiled kernel: once the staging scratch slices have grown to
// their working capacity, a tick must not allocate. Workers=1 keeps
// testing.AllocsPerRun honest — it counts mallocs process-wide, so worker
// goroutines scheduling on other Ps would add noise without changing what
// is being guarded (the staging path allocates identically under both).
func TestParallelStepSteadyStateAllocFree(t *testing.T) {
	p := New(tiledConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 1, 1))
	if !p.Net.ParallelTick() && p.Net.TileCount() != 4 {
		t.Fatalf("tile count = %d, want 4", p.Net.TileCount())
	}
	p.RunFor(sim.Ms(400), nil) // grow capacities, caches and staging scratch
	allocs := testing.AllocsPerRun(2000, func() { p.Step() })
	if allocs > 0.05 {
		t.Errorf("steady-state tiled Step allocates %.3f objects/tick, want ~0", allocs)
	}
}
