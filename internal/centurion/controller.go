package centurion

import (
	"fmt"

	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
)

// Controller models the paper's Experiment Controller: a larger processor
// attached to the North ports of four top-row routers, which uploads
// experiment parameters (RCAP config packets through the NoC), reads runtime
// data, and injects faults through a dedicated debug interface that does not
// disturb NoC traffic.
type Controller struct {
	p *Platform
	// injection points: the top-row nodes whose North channels connect to
	// the controller.
	taps []noc.NodeID
}

// NewController attaches a controller to the platform. As on Centurion-V6,
// four evenly spaced top-row routers act as injection taps.
func NewController(p *Platform) *Controller {
	c := &Controller{p: p}
	w := p.Topo.Width()
	n := 4
	if w < n {
		n = w
	}
	for i := 0; i < n; i++ {
		x := (w*i + w/2) / n
		c.taps = append(c.taps, p.Topo.ID(noc.Coord{X: x, Y: 0}))
	}
	return c
}

// Taps returns the controller's NoC injection points.
func (c *Controller) Taps() []noc.NodeID { return c.taps }

// tapFor picks the injection tap nearest to the destination.
func (c *Controller) tapFor(dst noc.NodeID) noc.NodeID {
	best := c.taps[0]
	bestDist := c.p.Topo.Distance(best, dst)
	for _, t := range c.taps[1:] {
		if d := c.p.Topo.Distance(t, dst); d < bestDist {
			best, bestDist = t, d
		}
	}
	return best
}

// SendConfig injects an RCAP configuration packet addressed to node dst.
// It travels the NoC like any other packet and is applied by the target
// router on arrival. When the injection tap is back-pressured, delivery is
// retried tick by tick through the platform's event queue (the real
// controller paces its LVDS-fed uploads the same way); an error is returned
// only when the destination is dead.
func (c *Controller) SendConfig(dst noc.NodeID, op noc.ConfigOp, arg, arg2 int) error {
	if !c.p.Net.Alive(dst) {
		return fmt.Errorf("centurion: config destination %d is dead", dst)
	}
	now := c.p.Now()
	tap := c.tapFor(dst)
	pkt := c.p.allocPacket()
	pkt.Kind = noc.Config
	pkt.Src = tap
	pkt.Dst = dst
	pkt.Flits = 1
	pkt.Created = now
	pkt.Op = op
	pkt.Arg = arg
	pkt.Arg2 = arg2
	c.p.injectConfig(tap, pkt, now)
	return nil
}

// BroadcastConfig sends the same RCAP operation to every alive node.
// Deliveries are paced automatically; sent reports how many were queued.
func (c *Controller) BroadcastConfig(op noc.ConfigOp, arg, arg2 int) (sent int, err error) {
	for id := noc.NodeID(0); int(id) < c.p.Topo.Nodes(); id++ {
		if !c.p.Net.Alive(id) {
			continue
		}
		if e := c.SendConfig(id, op, arg, arg2); e != nil {
			err = e
			continue
		}
		sent++
	}
	return sent, err
}

// ScheduleFaults arranges fault injection at an absolute tick through the
// debug interface (out-of-band, as on the real platform).
func (c *Controller) ScheduleFaults(at sim.Tick, nodes []noc.NodeID) {
	c.p.Schedule(at, func(now sim.Tick) { c.p.InjectFaults(nodes) })
}

// ApplySchedule arranges every event of a fault schedule on the simulation
// event queue. Each event is an ordinary scheduled callback, so idle
// fast-forward treats the whole hostile timeline as wake sources and the
// same-tick ordering of the schedule is the queue's insertion order — a
// single-event kill schedule goes through the exact code path
// ScheduleFaults uses. Call it once per run, after Reset (which clears the
// queue) — or after Restore, which also clears the queue: events whose tick
// already passed at the restore point are skipped (their effects are baked
// into the checkpoint), while events at or after the restore tick re-arm.
func (c *Controller) ApplySchedule(s faults.Schedule) {
	p := c.p
	now := p.Now()
	for i := range s.Events {
		ev := s.Events[i]
		if ev.At < now {
			// Already fired before the checkpoint was taken (Step runs due
			// events before advancing the clock, so at a between-step
			// boundary every event strictly before now has executed).
			continue
		}
		switch ev.Op {
		case faults.OpKill:
			p.Schedule(ev.At, func(now sim.Tick) { p.InjectFaults(ev.Nodes) })
		case faults.OpRevive:
			p.Schedule(ev.At, func(now sim.Tick) { p.ReviveNodes(ev.Nodes) })
		case faults.OpLinkDown:
			p.Schedule(ev.At, func(now sim.Tick) { p.Net.SetLinkHealth(ev.Node, ev.Port, false, now) })
		case faults.OpLinkUp:
			p.Schedule(ev.At, func(now sim.Tick) { p.Net.SetLinkHealth(ev.Node, ev.Port, true, now) })
		case faults.OpByzantine:
			p.Schedule(ev.At, func(now sim.Tick) { p.Net.SetByzantine(ev.Node, ev.Rate, ev.Modes, ev.Seed) })
		}
	}
}

// NodeReport is the runtime data the controller reads from one node over
// the debug interface.
type NodeReport struct {
	Node      noc.NodeID
	Alive     bool
	Task      int
	Router    noc.RouterStats
	Generated uint64
	Processed uint64
	Switches  uint64
	QueueLen  int
}

// ReadNode returns a node's runtime data without touching the NoC. The
// router stats are those of the router serving the node (shared by the
// whole cluster on concentrated fabrics).
func (c *Controller) ReadNode(id noc.NodeID) NodeReport {
	pe := c.p.pes[id]
	return NodeReport{
		Node:      id,
		Alive:     pe.Alive(),
		Task:      int(pe.Task()),
		Router:    c.p.Net.Router(id).Stats,
		Generated: pe.Stats.Generated,
		Processed: pe.Stats.Processed,
		Switches:  pe.Stats.Switches,
		QueueLen:  pe.QueueLen(),
	}
}

// ReadAll returns runtime data for every node.
func (c *Controller) ReadAll() []NodeReport {
	out := make([]NodeReport, c.p.Topo.Nodes())
	for id := range out {
		out[id] = c.ReadNode(noc.NodeID(id))
	}
	return out
}
