package centurion

// The fault engine's determinism contract at the platform level, in three
// parts (ISSUE 7):
//
//  1. An empty schedule is bit-identical to no schedule at all — arming the
//     engine costs nothing observable.
//  2. A single-instant death schedule is bit-identical to the legacy
//     ScheduleFaults path it replaces, fresh and across pooled Reset reuse.
//  3. Hostile timelines (churn, flaky links, cascades, byzantine routers)
//     are themselves deterministic: dense and activity-tracked stepping
//     agree tick for tick, and a dirtied, Reset platform replays the exact
//     run — on mesh, torus and cmesh. CI drives this suite under -race.

import (
	"fmt"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// hostileProfiles is one timeline per fault kind, shaped to land inside a
// 200 ms drive (churn revives at 100 ms, the cascade's last wave at 150 ms).
var hostileProfiles = []faults.Profile{
	{Kind: faults.KindChurn, AtMs: 40, Nodes: 10, ReviveAfterMs: 60},
	{Kind: faults.KindFlaky, AtMs: 20, Links: 8, PeriodMs: 30, DutyPct: 40},
	{Kind: faults.KindCascade, AtMs: 30, Nodes: 6, Waves: 4, WaveDelayMs: 30, WaveRadius: 3, WaveDecayPct: 60},
	{Kind: faults.KindByzantine, AtMs: 25, Routers: 6, RatePct: 35, Modes: "misroute,drop,dup"},
}

// driveHostile applies the schedule and runs the platform for 200 ms,
// snapshotting the same observables the stepping-equivalence suite checks.
func driveHostile(p *Platform, sched faults.Schedule) steppingSnapshot {
	if !sched.Empty() {
		NewController(p).ApplySchedule(sched)
	}
	return driveStepping(p, nil)
}

// buildHostile compiles a profile against a platform's own fabric.
func buildHostile(t *testing.T, p *Platform, prof faults.Profile, seed uint64) faults.Schedule {
	t.Helper()
	sched, err := faults.Build(p.Topo, seed, prof, 200)
	if err != nil {
		t.Fatalf("building %s schedule: %v", prof.Kind, err)
	}
	return sched
}

// TestFaultScheduleEmptyBitIdentical proves arming the fault engine with an
// empty timeline changes nothing: counters, fabric stats, per-window series
// and per-node state all match a run that never touched the engine, with
// both stepping cores.
func TestFaultScheduleEmptyBitIdentical(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		for _, dense := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/dense=%v", topo, dense), func(t *testing.T) {
				cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 3)
				cfg.Topology = topo
				cfg.DenseStepping = dense
				bare := driveStepping(New(cfg), nil)
				armed := driveHostile(New(cfg), faults.Schedule{})
				compareSnapshots(t, bare, armed)
			})
		}
	}
}

// TestFaultScheduleLegacyDeathBitIdentical proves the compatibility anchor:
// a death-profile schedule replays the historical single-instant injection
// bit for bit — same RNG salt, same node draw, same event-queue path —
// across models × seeds × topologies.
func TestFaultScheduleLegacyDeathBitIdentical(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		for seed := uint64(1); seed <= 2; seed++ {
			for _, topo := range []string{"mesh", "torus", "cmesh"} {
				t.Run(fmt.Sprintf("%s/seed=%d/%s", m.name, seed, topo), func(t *testing.T) {
					cfg := DefaultConfig(m.factory, m.mapper, seed)
					cfg.Topology = topo

					legacy := New(cfg)
					nodes := faults.RandomNodes(legacy.Topo, 12, sim.NewRNG(seed^0xfa17517e5eed))
					NewController(legacy).ScheduleFaults(sim.Ms(50), nodes)
					want := driveStepping(legacy, nil)

					engine := New(cfg)
					sched := buildHostile(t, engine, faults.Profile{Kind: faults.KindDeath, AtMs: 50, Nodes: 12}, seed)
					compareSnapshots(t, want, driveHostile(engine, sched))
				})
			}
		}
	}
}

// TestFaultScheduleLegacyDeathPooledReuse extends the anchor through the
// platform pool's lifecycle: a platform dirtied by a hostile cascade run,
// then Reset, must replay the death schedule identically to a fresh legacy
// reference.
func TestFaultScheduleLegacyDeathPooledReuse(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		t.Run(topo, func(t *testing.T) {
			cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 999)
			cfg.Topology = topo
			reused := New(cfg)
			driveHostile(reused, buildHostile(t, reused, hostileProfiles[2], 0xd117))

			for seed := uint64(1); seed <= 2; seed++ {
				refCfg := cfg
				refCfg.Seed = seed
				legacy := New(refCfg)
				nodes := faults.RandomNodes(legacy.Topo, 12, sim.NewRNG(seed^0xfa17517e5eed))
				NewController(legacy).ScheduleFaults(sim.Ms(50), nodes)
				want := driveStepping(legacy, nil)

				reused.Reset(seed)
				sched := buildHostile(t, reused, faults.Profile{Kind: faults.KindDeath, AtMs: 50, Nodes: 12}, seed)
				compareSnapshots(t, want, driveHostile(reused, sched))
			}
		})
	}
}

// TestHostileSteppingEquivalence runs every hostile timeline on every
// fabric under both stepping cores: revivals, link flaps, cascade waves and
// byzantine interference must not break the dense/active bit-identity
// contract.
func TestHostileSteppingEquivalence(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		for _, prof := range hostileProfiles {
			t.Run(fmt.Sprintf("%s/%s", topo, prof.Kind), func(t *testing.T) {
				cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 5)
				cfg.Topology = topo

				cfg.DenseStepping = true
				dp := New(cfg)
				dense := driveHostile(dp, buildHostile(t, dp, prof, 5))

				cfg.DenseStepping = false
				ap := New(cfg)
				active := driveHostile(ap, buildHostile(t, ap, prof, 5))
				compareSnapshots(t, dense, active)
			})
		}
	}
}

// TestHostilePooledReuse proves hostile runs replay exactly across Reset:
// one platform per fabric is dirtied by a byzantine run, then Reset and
// re-driven through every hostile timeline — each must match a fresh
// reference platform bit for bit.
func TestHostilePooledReuse(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "cmesh"} {
		t.Run(topo, func(t *testing.T) {
			cfg := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 999)
			cfg.Topology = topo
			reused := New(cfg)
			driveHostile(reused, buildHostile(t, reused, hostileProfiles[3], 0xbada))

			for _, prof := range hostileProfiles {
				refCfg := cfg
				refCfg.Seed = 6
				fresh := New(refCfg)
				want := driveHostile(fresh, buildHostile(t, fresh, prof, 6))

				reused.Reset(6)
				got := driveHostile(reused, buildHostile(t, reused, prof, 6))
				compareSnapshots(t, want, got)
			}
		})
	}
}
