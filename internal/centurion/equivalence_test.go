package centurion

// The determinism contract of the activity-tracked stepping core: for the
// same configuration and seed, parking idle PEs, sweeping only active
// routers and polling only stimulated engines must be bit-identical to the
// dense full scan — same counters, same fabric stats, same per-node state,
// same per-window throughput series, tick for tick. This suite runs both
// cores side by side across models × seeds, fault-free and faulted, and is
// the permanent regression guard for ISSUE 2.

import (
	"fmt"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// steppingSnapshot captures everything the equivalence check compares.
type steppingSnapshot struct {
	counters Counters
	net      noc.NetworkStats
	now      sim.Tick
	series   []uint64           // completed instances per 1 ms window
	tasks    []taskgraph.TaskID // final task of every node
	work     [][3]uint64        // per-node Generated, Processed, Switches
}

// driveStepping runs a (fresh or reset) platform for 200 ms and snapshots
// its observable state. The fault plan (nil = fault-free) is injected through
// the controller at 50 ms.
func driveStepping(p *Platform, faultNodes []noc.NodeID) steppingSnapshot {
	if len(faultNodes) > 0 {
		NewController(p).ScheduleFaults(sim.Ms(50), faultNodes)
	}
	const windows = 200 // 200 ms at 1 ms per window
	snap := steppingSnapshot{series: make([]uint64, windows)}
	var last uint64
	for w := 0; w < windows; w++ {
		p.RunFor(sim.Ms(1), nil)
		c := p.Counters()
		snap.series[w] = c.InstancesCompleted - last
		last = c.InstancesCompleted
	}
	snap.counters = p.Counters()
	snap.net = p.Net.Stats()
	snap.now = p.Now()
	for _, pe := range p.PEs() {
		snap.tasks = append(snap.tasks, pe.Task())
		snap.work = append(snap.work, [3]uint64{pe.Stats.Generated, pe.Stats.Processed, pe.Stats.Switches})
	}
	return snap
}

// runStepping executes one fresh-platform run and snapshots it.
func runStepping(cfg Config, dense bool, faultNodes []noc.NodeID) steppingSnapshot {
	cfg.DenseStepping = dense
	return driveStepping(New(cfg), faultNodes)
}

func compareSnapshots(t *testing.T, dense, active steppingSnapshot) {
	t.Helper()
	if dense.counters != active.counters {
		t.Errorf("counters diverged:\n dense:  %+v\n active: %+v", dense.counters, active.counters)
	}
	if dense.net != active.net {
		t.Errorf("network stats diverged:\n dense:  %+v\n active: %+v", dense.net, active.net)
	}
	if dense.now != active.now {
		t.Errorf("clocks diverged: dense %v, active %v", dense.now, active.now)
	}
	for w := range dense.series {
		if dense.series[w] != active.series[w] {
			t.Errorf("throughput series diverged at window %d: dense %d, active %d",
				w, dense.series[w], active.series[w])
			break
		}
	}
	for id := range dense.tasks {
		if dense.tasks[id] != active.tasks[id] {
			t.Errorf("node %d final task diverged: dense %d, active %d",
				id, dense.tasks[id], active.tasks[id])
			break
		}
	}
	for id := range dense.work {
		if dense.work[id] != active.work[id] {
			t.Errorf("node %d stats diverged: dense %v, active %v",
				id, dense.work[id], active.work[id])
			break
		}
	}
}

func TestSteppingEquivalence(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("%s/seed=%d/faulted=%v", m.name, seed, faulted)
				t.Run(name, func(t *testing.T) {
					cfg := DefaultConfig(m.factory, m.mapper, seed)
					var plan []noc.NodeID
					if faulted {
						plan = faults.RandomNodes(noc.NewTopology(cfg.Width, cfg.Height),
							12, sim.NewRNG(seed^0xfa17))
					}
					dense := runStepping(cfg, true, plan)
					active := runStepping(cfg, false, plan)
					compareSnapshots(t, dense, active)
				})
			}
		}
	}
}

// TestSteppingEquivalencePooledReuse is the determinism proof of platform
// pooling (ISSUE 3): one platform per model is constructed once, dirtied by a
// run under heavy faults, then Reset(seed) and re-run for every seed × fault
// plan — and each reused run must be bit-identical to a fresh dense-scan
// reference: same counters, fabric stats, per-window series, final tasks and
// per-node stats. This is what lets RunMany and the server lease recycled
// platforms instead of rebuilding them.
func TestSteppingEquivalencePooledReuse(t *testing.T) {
	models := []struct {
		name    string
		factory aim.Factory
		mapper  taskgraph.Mapper
	}{
		{"none", aim.NewNone, taskgraph.HeuristicMapper{}},
		{"ni", aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}},
		{"ffw", aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}},
	}
	for _, m := range models {
		cfg := DefaultConfig(m.factory, m.mapper, 999)
		reused := New(cfg)
		// Dirty the platform thoroughly: a faulted run leaves dead routers,
		// dead PEs, buffered packets, parked components and adapted engines.
		driveStepping(reused, faults.RandomNodes(reused.Topo, 24, sim.NewRNG(0xd117)))

		for seed := uint64(1); seed <= 3; seed++ {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("%s/seed=%d/faulted=%v", m.name, seed, faulted)
				t.Run(name, func(t *testing.T) {
					var plan []noc.NodeID
					if faulted {
						plan = faults.RandomNodes(noc.NewTopology(cfg.Width, cfg.Height),
							12, sim.NewRNG(seed^0xfa17))
					}
					refCfg := DefaultConfig(m.factory, m.mapper, seed)
					dense := runStepping(refCfg, true, plan)
					reused.Reset(seed)
					pooled := driveStepping(reused, plan)
					compareSnapshots(t, dense, pooled)
				})
			}
		}
	}
}

// TestSteppingEquivalenceExtensions covers the optional machinery the base
// matrix misses: neighbour signalling, adaptive NI thresholds, the FFW
// idleness ablation, the thermal DVFS governor, and a non-default graph.
func TestSteppingEquivalenceExtensions(t *testing.T) {
	adaptive := aim.DefaultNIParams()
	adaptive.AdaptStep = 8
	idleFFW := aim.DefaultFFWParams()
	idleFFW.ArmOnLapse = false

	cases := []struct {
		name string
		cfg  Config
	}{
		{"neighbor-signals", func() Config {
			c := DefaultConfig(aim.NewNIFactory(aim.DefaultNIParams()), taskgraph.RandomMapper{}, 7)
			c.NeighborSignals = true
			return c
		}()},
		{"adaptive-ni", DefaultConfig(aim.NewNIFactory(adaptive), taskgraph.RandomMapper{}, 8)},
		{"ffw-idle-ablation", DefaultConfig(aim.NewFFWFactory(idleFFW), taskgraph.RandomMapper{}, 9)},
		{"thermal-dvfs", func() Config {
			c := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 10)
			hot := thermal.DefaultParams()
			hot.HeatPerWork = 16
			hot.MaxSafe = 80
			c.Thermal = &hot
			c.ThermalDVFS = true
			return c
		}()},
		{"pipeline-graph", func() Config {
			c := DefaultConfig(aim.NewFFWFactory(aim.DefaultFFWParams()), taskgraph.RandomMapper{}, 11)
			c.Graph = taskgraph.Pipeline(4, 120, 24)
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.RandomNodes(noc.NewTopology(tc.cfg.Width, tc.cfg.Height),
				8, sim.NewRNG(0xc0ffee))
			dense := runStepping(tc.cfg, true, plan)
			active := runStepping(tc.cfg, false, plan)
			compareSnapshots(t, dense, active)
		})
	}
}
