package centurion

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"centurion/internal/aim"
	"centurion/internal/noc"
	"centurion/internal/node"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/wire"
)

// Checkpoint files use the same framing discipline as the result store's
// CENSTOR1 log: a magic, a version, an explicit payload length and a CRC32
// over the payload, so a truncated or bit-flipped file is rejected with a
// clear error instead of restoring garbage state.
//
//	"CENCKPT1" | u16 version | u32 payloadLen | u32 crc32(payload) | payload
//
// The payload is a fixed-order little-endian field dump (package wire); the
// encoding is canonical — two checkpoints of identical state encode to
// identical bytes — which is what lets the equivalence tests compare runs by
// comparing encoded checkpoints.
const (
	ckptMagic     = "CENCKPT1"
	ckptVersion   = 1
	ckptHeaderLen = 8 + 2 + 4 + 4
)

var (
	// ErrCheckpointTruncated reports a checkpoint file shorter than its
	// header claims.
	ErrCheckpointTruncated = errors.New("centurion: truncated checkpoint file")
	// ErrCheckpointChecksum reports payload corruption.
	ErrCheckpointChecksum = errors.New("centurion: checkpoint checksum mismatch")
)

// EncodeCheckpoint serializes cp into the versioned, checksummed binary
// checkpoint format.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	b := make([]byte, ckptHeaderLen, ckptHeaderLen+1024)
	copy(b, ckptMagic)
	binary.LittleEndian.PutUint16(b[8:10], ckptVersion)
	b = appendCheckpointPayload(b, cp)
	payload := b[ckptHeaderLen:]
	binary.LittleEndian.PutUint32(b[10:14], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[14:18], crc32.ChecksumIEEE(payload))
	return b
}

// DecodeCheckpoint parses data produced by EncodeCheckpoint. Truncated,
// misframed or corrupted inputs are rejected with a descriptive error.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < ckptHeaderLen {
		return nil, ErrCheckpointTruncated
	}
	if string(data[:8]) != ckptMagic {
		return nil, errors.New("centurion: not a checkpoint file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != ckptVersion {
		return nil, fmt.Errorf("centurion: unsupported checkpoint version %d (want %d)", v, ckptVersion)
	}
	n := int(binary.LittleEndian.Uint32(data[10:14]))
	sum := binary.LittleEndian.Uint32(data[14:18])
	payload := data[ckptHeaderLen:]
	if len(payload) < n {
		return nil, ErrCheckpointTruncated
	}
	if len(payload) > n {
		return nil, fmt.Errorf("centurion: checkpoint has %d trailing bytes", len(payload)-n)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrCheckpointChecksum
	}
	cp := &Checkpoint{}
	r := wire.NewReader(payload)
	decodeCheckpointPayload(r, cp)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("centurion: malformed checkpoint payload: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, errors.New("centurion: checkpoint payload has unread bytes")
	}
	return cp, nil
}

// WriteCheckpointFile atomically writes cp to path.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeCheckpoint(cp), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile reads and validates a checkpoint from path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cp, nil
}

func appendCheckpointPayload(b []byte, cp *Checkpoint) []byte {
	b = wire.AppendI64(b, int64(cp.width))
	b = wire.AppendI64(b, int64(cp.height))
	b = wire.AppendString(b, cp.topology)
	b = wire.AppendI64(b, int64(cp.now))
	b = wire.AppendU64(b, cp.seed)
	b = wire.AppendU64(b, cp.rng)
	b = wire.AppendU64(b, cp.nextPkt)
	b = wire.AppendU64(b, cp.nextInst)

	b = wire.AppendU64(b, cp.counters.InstancesStarted)
	b = wire.AppendU64(b, cp.counters.InstancesCompleted)
	b = wire.AppendU64(b, cp.counters.InstancesLost)
	b = wire.AppendU64(b, cp.counters.TaskSwitches)
	b = wire.AppendU64(b, cp.counters.PacketsDropped)
	b = wire.AppendU64(b, cp.counters.PacketsRescued)

	b = cp.net.AppendBinary(b)

	b = wire.AppendU32(b, uint32(len(cp.dir.TaskOf)))
	for _, t := range cp.dir.TaskOf {
		b = wire.AppendI64(b, int64(t))
	}
	b = wire.AppendU32(b, uint32(len(cp.dir.Alive)))
	for _, a := range cp.dir.Alive {
		b = wire.AppendBool(b, a)
	}
	b = wire.AppendU64(b, cp.dir.Version)

	b = wire.AppendU32(b, uint32(len(cp.pes)))
	for i := range cp.pes {
		b = appendPEState(b, &cp.pes[i])
	}
	b = wire.AppendU32(b, uint32(len(cp.engines)))
	for i := range cp.engines {
		b = appendEngineState(b, &cp.engines[i])
	}

	b = wire.AppendBool(b, cp.hasHeat)
	b = wire.AppendU32(b, uint32(len(cp.heat.Temp)))
	for _, t := range cp.heat.Temp {
		b = wire.AppendF64(b, t)
	}
	b = wire.AppendU32(b, uint32(len(cp.heat.Last)))
	for _, w := range cp.heat.Last {
		b = wire.AppendU64(b, w)
	}
	b = wire.AppendI64(b, int64(cp.nextHeat))
	b = wire.AppendU32(b, uint32(len(cp.throttled)))
	for _, t := range cp.throttled {
		b = wire.AppendBool(b, t)
	}

	b = appendActiveSetState(b, &cp.peActive)
	b = appendActiveSetState(b, &cp.engActive)
	b = appendTicks(b, cp.peWakeAt)
	b = appendTicks(b, cp.engWakeAt)

	b = wire.AppendU32(b, uint32(len(cp.retries)))
	for _, rec := range cp.retries {
		b = wire.AppendU32(b, uint32(rec.slot))
		b = wire.AppendI64(b, int64(rec.tap))
		b = wire.AppendI64(b, int64(rec.at))
	}
	return b
}

func decodeCheckpointPayload(r *wire.Reader, cp *Checkpoint) {
	cp.width = int(r.I64())
	cp.height = int(r.I64())
	cp.topology = r.String()
	cp.now = sim.Tick(r.I64())
	cp.seed = r.U64()
	cp.rng = r.U64()
	cp.nextPkt = r.U64()
	cp.nextInst = r.U64()

	cp.counters.InstancesStarted = r.U64()
	cp.counters.InstancesCompleted = r.U64()
	cp.counters.InstancesLost = r.U64()
	cp.counters.TaskSwitches = r.U64()
	cp.counters.PacketsDropped = r.U64()
	cp.counters.PacketsRescued = r.U64()

	if err := cp.net.DecodeBinary(r); err != nil {
		return
	}

	n := r.Count(8)
	cp.dir.TaskOf = make([]taskgraph.TaskID, n)
	for i := range cp.dir.TaskOf {
		cp.dir.TaskOf[i] = taskgraph.TaskID(r.I64())
	}
	n = r.Count(1)
	cp.dir.Alive = make([]bool, n)
	for i := range cp.dir.Alive {
		cp.dir.Alive[i] = r.Bool()
	}
	cp.dir.Version = r.U64()

	n = r.Count(peStateMinSize)
	cp.pes = make([]node.PEState, n)
	for i := range cp.pes {
		readPEState(r, &cp.pes[i])
	}
	n = r.Count(engineStateMinSize)
	cp.engines = make([]aim.EngineState, n)
	for i := range cp.engines {
		readEngineState(r, &cp.engines[i])
	}

	cp.hasHeat = r.Bool()
	n = r.Count(8)
	cp.heat.Temp = make([]float64, n)
	for i := range cp.heat.Temp {
		cp.heat.Temp[i] = r.F64()
	}
	n = r.Count(8)
	cp.heat.Last = make([]uint64, n)
	for i := range cp.heat.Last {
		cp.heat.Last[i] = r.U64()
	}
	cp.nextHeat = sim.Tick(r.I64())
	n = r.Count(1)
	cp.throttled = make([]bool, n)
	for i := range cp.throttled {
		cp.throttled[i] = r.Bool()
	}

	readActiveSetState(r, &cp.peActive)
	readActiveSetState(r, &cp.engActive)
	cp.peWakeAt = readTicks(r)
	cp.engWakeAt = readTicks(r)

	n = r.Count(16)
	cp.retries = make([]retryRec, n)
	for i := range cp.retries {
		cp.retries[i].slot = int32(r.U32())
		cp.retries[i].tap = noc.NodeID(r.I64())
		cp.retries[i].at = sim.Tick(r.I64())
	}
}

// peStateMinSize is the smallest possible encoded PEState (all slices
// empty), used to bound decode-side allocations against corrupt counts.
const peStateMinSize = 8 + 1 + 1 + 8 + 4 + 8 + 8 + 8 + 4 + 4 + 4 + 1 + 8 + 8 + 8*8

func appendPEState(b []byte, st *node.PEState) []byte {
	b = wire.AppendI64(b, int64(st.Task))
	b = wire.AppendBool(b, st.Alive)
	b = wire.AppendBool(b, st.ClockEn)
	b = wire.AppendI64(b, int64(st.FreqDiv))
	b = wire.AppendU32(b, uint32(len(st.Queue)))
	for _, s := range st.Queue {
		b = wire.AppendU32(b, uint32(s))
	}
	b = wire.AppendI64(b, int64(st.Current))
	b = wire.AppendI64(b, int64(st.BusyEnd))
	b = wire.AppendI64(b, int64(st.NextGen))
	b = wire.AppendU32(b, uint32(len(st.Outbox)))
	for _, s := range st.Outbox {
		b = wire.AppendU32(b, uint32(s))
	}
	b = wire.AppendU32(b, uint32(len(st.Joins)))
	for _, j := range st.Joins {
		b = wire.AppendU64(b, j.Inst)
		b = wire.AppendI64(b, int64(j.Seen))
		b = wire.AppendI64(b, int64(j.Origin))
		b = wire.AppendI64(b, int64(j.LastTouch))
	}
	b = wire.AppendU32(b, uint32(len(st.Outstanding)))
	for _, o := range st.Outstanding {
		b = wire.AppendU64(b, o.Inst)
		b = wire.AppendI64(b, int64(o.Born))
	}
	b = wire.AppendBool(b, st.AdmitRefused)
	b = wire.AppendI64(b, int64(st.NextJoin))
	b = wire.AppendU64(b, st.WorkCount)
	b = wire.AppendU64(b, st.Stats.Generated)
	b = wire.AppendU64(b, st.Stats.Processed)
	b = wire.AppendU64(b, st.Stats.Completions)
	b = wire.AppendU64(b, st.Stats.Switches)
	b = wire.AppendU64(b, st.Stats.Misrouted)
	b = wire.AppendU64(b, st.Stats.Dropped)
	b = wire.AppendU64(b, st.Stats.DebugSeen)
	b = wire.AppendU64(b, st.Stats.StallTicks)
	return b
}

func readPEState(r *wire.Reader, st *node.PEState) {
	st.Task = taskgraph.TaskID(r.I64())
	st.Alive = r.Bool()
	st.ClockEn = r.Bool()
	st.FreqDiv = int(r.I64())
	n := r.Count(4)
	st.Queue = make([]int32, n)
	for i := range st.Queue {
		st.Queue[i] = int32(r.U32())
	}
	st.Current = int32(r.I64())
	st.BusyEnd = sim.Tick(r.I64())
	st.NextGen = sim.Tick(r.I64())
	n = r.Count(4)
	st.Outbox = make([]int32, n)
	for i := range st.Outbox {
		st.Outbox[i] = int32(r.U32())
	}
	n = r.Count(32)
	st.Joins = make([]node.JoinEntry, n)
	for i := range st.Joins {
		st.Joins[i].Inst = r.U64()
		st.Joins[i].Seen = int(r.I64())
		st.Joins[i].Origin = noc.NodeID(r.I64())
		st.Joins[i].LastTouch = sim.Tick(r.I64())
	}
	n = r.Count(16)
	st.Outstanding = make([]node.OutstandingEntry, n)
	for i := range st.Outstanding {
		st.Outstanding[i].Inst = r.U64()
		st.Outstanding[i].Born = sim.Tick(r.I64())
	}
	st.AdmitRefused = r.Bool()
	st.NextJoin = sim.Tick(r.I64())
	st.WorkCount = r.U64()
	st.Stats.Generated = r.U64()
	st.Stats.Processed = r.U64()
	st.Stats.Completions = r.U64()
	st.Stats.Switches = r.U64()
	st.Stats.Misrouted = r.U64()
	st.Stats.Dropped = r.U64()
	st.Stats.DebugSeen = r.U64()
	st.Stats.StallTicks = r.U64()
}

// engineStateMinSize is the smallest possible encoded EngineState.
const engineStateMinSize = 1 + 8 + 7*8 + 1 + 4 + 4 + 8 + 8 + 8 + 1 + 1 + 1 + 8 + 8

func appendEngineState(b []byte, st *aim.EngineState) []byte {
	b = wire.AppendU8(b, st.Kind)
	b = wire.AppendI64(b, int64(st.Current))
	b = wire.AppendI64(b, int64(st.NIPar.Threshold))
	b = wire.AppendI64(b, int64(st.NIPar.InhibitWeight))
	b = wire.AppendI64(b, int64(st.NIPar.InternalWeight))
	b = wire.AppendI64(b, int64(st.NIPar.NeighborWeight))
	b = wire.AppendBool(b, st.NIPar.PinSources)
	b = wire.AppendI64(b, int64(st.NIPar.AdaptStep))
	b = wire.AppendI64(b, int64(st.NIPar.AdaptDecay))
	b = wire.AppendU32(b, uint32(len(st.Counts)))
	for _, c := range st.Counts {
		b = wire.AppendU32(b, uint32(c))
	}
	b = wire.AppendU32(b, uint32(len(st.Thresholds)))
	for _, t := range st.Thresholds {
		b = wire.AppendU32(b, uint32(t))
	}
	b = wire.AppendI64(b, int64(st.Level))
	b = wire.AppendI64(b, int64(st.LastDecay))
	b = wire.AppendI64(b, int64(st.FFWPar.Timeout))
	b = wire.AppendBool(b, st.FFWPar.ArmOnLapse)
	b = wire.AppendBool(b, st.FFWPar.PinSources)
	b = wire.AppendBool(b, st.Armed)
	b = wire.AppendI64(b, int64(st.ArmTime))
	b = wire.AppendI64(b, int64(st.LastWork))
	return b
}

func readEngineState(r *wire.Reader, st *aim.EngineState) {
	st.Kind = r.U8()
	st.Current = taskgraph.TaskID(r.I64())
	st.NIPar.Threshold = int(r.I64())
	st.NIPar.InhibitWeight = int(r.I64())
	st.NIPar.InternalWeight = int(r.I64())
	st.NIPar.NeighborWeight = int(r.I64())
	st.NIPar.PinSources = r.Bool()
	st.NIPar.AdaptStep = int(r.I64())
	st.NIPar.AdaptDecay = sim.Tick(r.I64())
	n := r.Count(4)
	st.Counts = make([]int32, n)
	for i := range st.Counts {
		st.Counts[i] = int32(r.U32())
	}
	n = r.Count(4)
	st.Thresholds = make([]int32, n)
	for i := range st.Thresholds {
		st.Thresholds[i] = int32(r.U32())
	}
	st.Level = int(r.I64())
	st.LastDecay = sim.Tick(r.I64())
	st.FFWPar.Timeout = sim.Tick(r.I64())
	st.FFWPar.ArmOnLapse = r.Bool()
	st.FFWPar.PinSources = r.Bool()
	st.Armed = r.Bool()
	st.ArmTime = sim.Tick(r.I64())
	st.LastWork = sim.Tick(r.I64())
}

func appendActiveSetState(b []byte, st *sim.ActiveSetState) []byte {
	b = wire.AppendU32(b, uint32(len(st.Words)))
	for _, w := range st.Words {
		b = wire.AppendU64(b, w)
	}
	return wire.AppendI64(b, st.N)
}

func readActiveSetState(r *wire.Reader, st *sim.ActiveSetState) {
	n := r.Count(8)
	st.Words = make([]uint64, n)
	for i := range st.Words {
		st.Words[i] = r.U64()
	}
	st.N = r.I64()
}

func appendTicks(b []byte, ts []sim.Tick) []byte {
	b = wire.AppendU32(b, uint32(len(ts)))
	for _, t := range ts {
		b = wire.AppendI64(b, int64(t))
	}
	return b
}

func readTicks(r *wire.Reader) []sim.Tick {
	n := r.Count(8)
	out := make([]sim.Tick, n)
	for i := range out {
		out[i] = sim.Tick(r.I64())
	}
	return out
}
