package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastConfig is a millisecond-scale lease clock so expiry paths run in
// test time.
func fastConfig() Config {
	return Config{
		LeaseTTL:    60 * time.Millisecond,
		PollWait:    50 * time.Millisecond,
		MaxAttempts: 3,
	}
}

// registerWorker registers a test worker and fails the test on error.
func registerWorker(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	id, _, _, err := c.Register(name, 4)
	if err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
	return id
}

// startExecute submits a job from a background goroutine and returns the
// channels its outcome lands on.
func startExecute(c *Coordinator, key string, payload []byte) (<-chan []byte, <-chan error) {
	resCh := make(chan []byte, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := c.Execute(context.Background(), key, payload, nil)
		resCh <- res
		errCh <- err
	}()
	return resCh, errCh
}

// leaseOne long-polls until a lease arrives or the deadline passes.
func leaseOne(t *testing.T, c *Coordinator, workerID string) Lease {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l, ok, err := c.Lease(context.Background(), workerID, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if ok {
			return l
		}
	}
	t.Fatal("no lease arrived within 2s")
	return Lease{}
}

func TestExecuteNoWorkersFailsFast(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Close()
	start := time.Now()
	_, err := c.Execute(context.Background(), "k", nil, nil)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("ErrNoWorkers was not fast")
	}
}

func TestLeaseCompleteRoundTrip(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Close()
	w := registerWorker(t, c, "w1")

	resCh, errCh := startExecute(c, "key-1", []byte("payload-1"))
	l := leaseOne(t, c, w)
	if l.Key != "key-1" || string(l.Payload) != "payload-1" || l.Attempt != 1 {
		t.Fatalf("lease = %+v", l)
	}
	if err := c.Complete(l.JobID, w, l.Attempt, []byte("result-1"), ""); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if res := <-resCh; string(res) != "result-1" {
		t.Fatalf("result = %q", res)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("Execute err = %v", err)
	}
	st := c.Stats()
	if st.Completed != 1 || st.LeasesGranted != 1 || st.Requeued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHeartbeatKeepsLeaseAlivePastTTL is the satellite edge case: a worker
// that heartbeats holds its lease across many TTLs.
func TestHeartbeatKeepsLeaseAlivePastTTL(t *testing.T) {
	cfg := fastConfig()
	c := NewCoordinator(cfg)
	defer c.Close()
	w := registerWorker(t, c, "w1")

	resCh, errCh := startExecute(c, "key-hb", nil)
	l := leaseOne(t, c, w)

	// Hold the lease for 5 TTLs, heartbeating at TTL/3.
	deadline := time.Now().Add(5 * cfg.LeaseTTL)
	for time.Now().Before(deadline) {
		if err := c.Heartbeat(l.JobID, w, l.Attempt); err != nil {
			t.Fatalf("heartbeat rejected while lease should be alive: %v", err)
		}
		time.Sleep(cfg.LeaseTTL / 3)
	}
	if st := c.Stats(); st.Expired != 0 || st.Requeued != 0 {
		t.Fatalf("lease expired despite heartbeats: %+v", st)
	}
	if err := c.Complete(l.JobID, w, l.Attempt, []byte("late-but-alive"), ""); err != nil {
		t.Fatalf("Complete after long heartbeat run: %v", err)
	}
	if res := <-resCh; string(res) != "late-but-alive" {
		t.Fatalf("result = %q", res)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerDeathRequeuesExactlyOnce is the satellite edge case: a worker
// that leases and dies silently loses the job to exactly one requeue, and
// the next worker's completion wins.
func TestWorkerDeathRequeuesExactlyOnce(t *testing.T) {
	cfg := fastConfig()
	c := NewCoordinator(cfg)
	defer c.Close()
	dead := registerWorker(t, c, "doomed")
	alive := registerWorker(t, c, "survivor")

	resCh, errCh := startExecute(c, "key-death", nil)
	l1 := leaseOne(t, c, dead)
	// The doomed worker never heartbeats again: its lease must expire and
	// the job requeue exactly once.
	l2 := leaseOne(t, c, alive)
	if l2.JobID != l1.JobID {
		t.Fatalf("requeued lease is a different job: %s vs %s", l2.JobID, l1.JobID)
	}
	if l2.Attempt != 2 {
		t.Fatalf("attempt after one death = %d, want 2", l2.Attempt)
	}
	if err := c.Complete(l2.JobID, alive, l2.Attempt, []byte("second-try"), ""); err != nil {
		t.Fatalf("survivor's Complete: %v", err)
	}
	if res := <-resCh; string(res) != "second-try" {
		t.Fatalf("result = %q", res)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requeued != 1 || st.Expired != 1 {
		t.Fatalf("requeue counters = %+v, want exactly one requeue", st)
	}
}

// TestDuplicateCompleteAfterExpiryRejected is the satellite edge case: a
// worker that lost its lease cannot complete the job — neither while the
// job waits for a new lease nor after someone else took it.
func TestDuplicateCompleteAfterExpiryRejected(t *testing.T) {
	cfg := fastConfig()
	c := NewCoordinator(cfg)
	defer c.Close()
	zombie := registerWorker(t, c, "zombie")
	alive := registerWorker(t, c, "alive")

	resCh, errCh := startExecute(c, "key-dup", nil)
	l1 := leaseOne(t, c, zombie)

	// Wait for the lease to expire and the job to requeue.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Requeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Expired but not yet re-leased: the zombie's completion must be
	// rejected (the lease is gone, the work belongs to the queue).
	if err := c.Complete(l1.JobID, zombie, l1.Attempt, []byte("zombie-result"), ""); err == nil {
		t.Fatal("zombie Complete accepted while job was requeued-pending")
	}
	l2 := leaseOne(t, c, alive)
	if err := c.Complete(l2.JobID, alive, l2.Attempt, []byte("fresh"), ""); err != nil {
		t.Fatalf("fresh Complete: %v", err)
	}
	// After the fact the zombie tries again: the job is finished and gone.
	if err := c.Complete(l1.JobID, zombie, l1.Attempt, []byte("zombie-late"), ""); err == nil {
		t.Fatal("zombie Complete accepted after the job finished")
	}
	if res := <-resCh; string(res) != "fresh" {
		t.Fatalf("delivered result = %q, want the live worker's", res)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.StaleRejected < 2 {
		t.Fatalf("stale rejections = %d, want >= 2", st.StaleRejected)
	}
}

// TestHeartbeatAfterExpiryRejected: a lost lease also rejects heartbeats,
// which is how a partitioned worker learns to abandon the job.
func TestHeartbeatAfterExpiryRejected(t *testing.T) {
	cfg := fastConfig()
	c := NewCoordinator(cfg)
	defer c.Close()
	w := registerWorker(t, c, "w1")
	registerWorker(t, c, "w2") // keeps the queue "serviceable" so the job requeues

	_, errCh := startExecute(c, "key-hb-exp", nil)
	l := leaseOne(t, c, w)
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Requeued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Heartbeat(l.JobID, w, l.Attempt); err == nil {
		t.Fatal("heartbeat accepted after expiry")
	}
	c.Close() // fail the requeued job so the waiter exits
	<-errCh
}

// TestAttemptCapExhaustsToError: a job whose every lease dies stops being
// retried after MaxAttempts and fails with ErrAttemptsExhausted.
func TestAttemptCapExhaustsToError(t *testing.T) {
	cfg := fastConfig()
	cfg.MaxAttempts = 2
	c := NewCoordinator(cfg)
	defer c.Close()
	w := registerWorker(t, c, "unlucky")

	_, errCh := startExecute(c, "key-cap", nil)
	for i := 0; i < cfg.MaxAttempts; i++ {
		l := leaseOne(t, c, w)
		if l.Attempt != i+1 {
			t.Fatalf("attempt %d on lease %d", l.Attempt, i+1)
		}
		// Never heartbeat, never complete: let it expire.
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAttemptsExhausted) {
			t.Fatalf("err = %v, want ErrAttemptsExhausted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("job never failed after exhausting attempts")
	}
}

// TestPendingJobsFailWhenAllWorkersVanish: jobs stuck pending with no live
// worker fail with ErrNoWorkers instead of stranding their waiters.
func TestPendingJobsFailWhenAllWorkersVanish(t *testing.T) {
	cfg := Config{LeaseTTL: 30 * time.Millisecond, PollWait: 10 * time.Millisecond, MaxAttempts: 3}
	c := NewCoordinator(cfg)
	defer c.Close()
	registerWorker(t, c, "ghost") // registers, then never polls again

	_, errCh := startExecute(c, "key-vanish", nil)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("err = %v, want ErrNoWorkers", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending job not failed after the worker went silent")
	}
}

// TestRemoteErrorPropagates: a worker-reported execution failure reaches
// the waiter as RemoteError (and is not retried).
func TestRemoteErrorPropagates(t *testing.T) {
	c := NewCoordinator(fastConfig())
	defer c.Close()
	w := registerWorker(t, c, "w1")
	_, errCh := startExecute(c, "key-err", nil)
	l := leaseOne(t, c, w)
	if err := c.Complete(l.JobID, w, l.Attempt, nil, "spec exploded"); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "spec exploded" {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if st := c.Stats(); st.Failed != 1 {
		t.Fatalf("failed = %d", st.Failed)
	}
}

// TestLongPollWakesOnSubmit: an idle long-poll returns promptly once work
// arrives, well before its wait budget.
func TestLongPollWakesOnSubmit(t *testing.T) {
	cfg := fastConfig()
	cfg.PollWait = 2 * time.Second
	c := NewCoordinator(cfg)
	defer c.Close()
	w := registerWorker(t, c, "w1")

	leaseCh := make(chan Lease, 1)
	go func() {
		l, ok, err := c.Lease(context.Background(), w, 2*time.Second)
		if err == nil && ok {
			leaseCh <- l
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the poll park
	start := time.Now()
	_, _ = startExecute(c, "key-wake", nil)
	select {
	case <-leaseCh:
		if d := time.Since(start); d > time.Second {
			t.Fatalf("long-poll took %s to wake", d)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long-poll never woke")
	}
	c.Close()
}

// TestWorkerHTTPEndToEnd drives the real wire path: RunWorker against the
// coordinator's HTTP routes, with progress forwarding and a graceful drain.
func TestWorkerHTTPEndToEnd(t *testing.T) {
	cfg := fastConfig()
	c := NewCoordinator(cfg)
	defer c.Close()
	mux := http.NewServeMux()
	c.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var executed atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "e2e",
			Slots:       2,
			Execute: func(ctx context.Context, key string, payload []byte, progress func([]byte)) ([]byte, string) {
				executed.Add(1)
				progress([]byte(fmt.Sprintf(`["progress for %s"]`, key)))
				return []byte(`{"echo":"` + string(payload) + `"}`), ""
			},
		})
	}()

	// Wait for the worker's registration to land before submitting, since
	// Execute fast-fails when no live worker is known.
	regDeadline := time.Now().Add(5 * time.Second)
	for c.Stats().WorkersLive == 0 {
		if time.Now().After(regDeadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var progressed atomic.Int64
	for i := 0; i < 8; i++ {
		res, err := c.Execute(context.Background(), fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("p%d", i)),
			func(b []byte) { progressed.Add(1) })
		if err != nil {
			t.Fatalf("Execute %d: %v", i, err)
		}
		want := fmt.Sprintf(`{"echo":"p%d"}`, i)
		if string(res) != want {
			t.Fatalf("result %d = %s, want %s", i, res, want)
		}
	}
	if executed.Load() != 8 {
		t.Fatalf("executed = %d", executed.Load())
	}
	if progressed.Load() != 8 {
		t.Fatalf("progress posts = %d", progressed.Load())
	}

	cancel() // graceful drain: no in-flight jobs, worker exits promptly
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("RunWorker: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not drain")
	}
	// The drained worker deregistered itself, so new submissions fail fast
	// with ErrNoWorkers (local fallback) instead of waiting out its
	// liveness window.
	if c.Stats().WorkersLive != 0 {
		t.Fatalf("worker still live after graceful drain: %+v", c.Stats())
	}
	if _, err := c.Execute(context.Background(), "post-drain", nil, nil); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("post-drain Execute err = %v, want ErrNoWorkers", err)
	}
}
