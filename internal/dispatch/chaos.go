package dispatch

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"centurion/internal/sim"
)

// The deterministic chaos harness (DESIGN.md §16). A ChaosTransport wraps a
// real Transport and injects the failure modes of a hostile network from a
// seeded RNG stream, so a property test replays the exact same failure
// schedule on every run: dropped requests (the RPC never reaches the
// coordinator), lost replies (it reached the coordinator — the state
// transition happened — but the worker saw an error, so it retries and the
// coordinator must survive the duplicate), delayed deliveries, duplicated
// deliveries, and partitions that heal. Worker kills and coordinator
// restarts are driven by the tests themselves (HardStop, CrashForTest); the
// transport covers everything in between.

// ErrChaosDropped is the delivery error injected for dropped requests, lost
// replies and partitioned calls.
var ErrChaosDropped = errors.New("dispatch: chaos transport dropped the call")

// ChaosConfig tunes a ChaosTransport. Rates are per-call probabilities in
// [0,1], evaluated in order: partition, drop, reply-lost, duplicate, delay.
type ChaosConfig struct {
	// Seed drives every probabilistic decision; equal seeds replay equal
	// failure schedules for a fixed call sequence.
	Seed uint64
	// DropRate is the probability a call is dropped before delivery.
	DropRate float64
	// ReplyLossRate is the probability a call is delivered but its reply is
	// lost: the coordinator applied it, the caller sees an error. This is
	// the mode that manufactures duplicate deliveries end to end — the
	// caller's retry re-posts an already-applied transition.
	ReplyLossRate float64
	// DupRate is the probability a delivered call is posted twice
	// back-to-back (the network duplicated the datagram); the second
	// delivery's response is discarded.
	DupRate float64
	// DelayRate is the probability a delivered call is held for a uniform
	// delay in (0, MaxDelay] first.
	DelayRate float64
	// MaxDelay bounds injected delays (default 10ms).
	MaxDelay time.Duration
	// Partitions are windows, measured from the transport's first call,
	// during which every call fails undelivered — a network partition that
	// heals when the window closes.
	Partitions []ChaosWindow
	// Exempt excludes paths containing any of these substrings from
	// interference (registration, for instance, so a test's workers always
	// come up). Empty means everything is fair game.
	Exempt []string
}

// ChaosWindow is one partition interval, relative to the transport's first
// call.
type ChaosWindow struct {
	From, To time.Duration
}

// ChaosStats counts what the transport actually did — tests assert the
// schedule really fired.
type ChaosStats struct {
	Calls       uint64 `json:"calls"`
	Dropped     uint64 `json:"dropped"`
	RepliesLost uint64 `json:"replies_lost"`
	Duplicated  uint64 `json:"duplicated"`
	Delayed     uint64 `json:"delayed"`
	Partitioned uint64 `json:"partitioned"`
}

// ChaosTransport implements Transport over an inner transport with seeded
// fault injection.
type ChaosTransport struct {
	inner Transport
	cfg   ChaosConfig

	mu    sync.Mutex
	rng   *sim.RNG
	start time.Time
	stats ChaosStats
}

// NewChaosTransport wraps inner with the seeded chaos schedule.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &ChaosTransport{inner: inner, cfg: cfg, rng: sim.NewRNG(cfg.Seed ^ 0xc4a05)}
}

// Stats snapshots the interference counters.
func (t *ChaosTransport) Stats() ChaosStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// plan is one call's drawn fate.
type plan struct {
	partitioned bool
	drop        bool
	loseReply   bool
	duplicate   bool
	delay       time.Duration
}

// draw rolls the call's fate under the lock, so the RNG stream — and with it
// the whole failure schedule — is a deterministic function of the seed and
// the call order.
func (t *ChaosTransport) draw(path string) plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Calls++
	if t.start.IsZero() {
		t.start = time.Now()
	}
	for _, ex := range t.cfg.Exempt {
		if strings.Contains(path, ex) {
			return plan{}
		}
	}
	var p plan
	elapsed := time.Since(t.start)
	for _, w := range t.cfg.Partitions {
		if elapsed >= w.From && elapsed < w.To {
			p.partitioned = true
			t.stats.Partitioned++
			return p
		}
	}
	if t.rng.Float64() < t.cfg.DropRate {
		p.drop = true
		t.stats.Dropped++
		return p
	}
	if t.rng.Float64() < t.cfg.ReplyLossRate {
		p.loseReply = true
		t.stats.RepliesLost++
	}
	if t.rng.Float64() < t.cfg.DupRate {
		p.duplicate = true
		t.stats.Duplicated++
	}
	if t.rng.Float64() < t.cfg.DelayRate {
		p.delay = time.Duration(t.rng.Float64() * float64(t.cfg.MaxDelay))
		t.stats.Delayed++
	}
	return p
}

// Post implements Transport.
func (t *ChaosTransport) Post(ctx context.Context, path string, body, out any) (int, error) {
	p := t.draw(path)
	if p.partitioned || p.drop {
		return 0, ErrChaosDropped
	}
	if p.delay > 0 {
		select {
		case <-time.After(p.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	status, err := t.inner.Post(ctx, path, body, out)
	if p.duplicate && err == nil {
		// The duplicated delivery: same body, response discarded. The
		// coordinator's fencing must make this indistinguishable from a
		// single delivery.
		_, _ = t.inner.Post(ctx, path, body, nil)
	}
	if p.loseReply && err == nil {
		// Delivered — the coordinator's state moved — but the reply
		// evaporates, so the caller retries an applied transition.
		return 0, ErrChaosDropped
	}
	return status, err
}
