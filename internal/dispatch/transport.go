package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
)

// Transport carries one worker→coordinator RPC: a JSON POST to a
// coordinator-relative path, decoding a JSON response into out (when non-nil
// and the status is 200). It is the single seam between a worker and its
// coordinator, which is what lets the chaos harness interpose a hostile
// network — drops, delays, duplicates, partitions — without touching either
// endpoint's logic.
//
// A Transport returns (status, nil) when a response arrived, whatever the
// status code, and (0, err) when delivery itself failed. Implementations
// must be safe for concurrent use: one worker posts heartbeats, progress and
// completions from independent goroutines.
type Transport interface {
	Post(ctx context.Context, path string, body, out any) (status int, err error)
}

// HTTPTransport is the production Transport: JSON POSTs against a
// coordinator base URL.
type HTTPTransport struct {
	// Base is the coordinator's base URL, e.g. "http://host:8080".
	Base string
	// Client is the HTTP client (default a fresh one; it must not set a
	// global timeout — lease long-polls outlive typical timeouts).
	Client *http.Client
}

// NewHTTPTransport returns an HTTPTransport for the base URL. A nil client
// gets a fresh timeout-free one.
func NewHTTPTransport(base string, client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPTransport{Base: base, Client: client}
}

// Post implements Transport.
func (t *HTTPTransport) Post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxDispatchBody)).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}
