package dispatch

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"
)

// The coordinator's wire surface, mounted onto the service mux:
//
//	POST /v1/workers/register      → {worker_id, lease_ttl_ms, poll_wait_ms}
//	POST /v1/workers/{id}/lease    → 200 {job_id, key, payload, attempt} | 204 (poll timed out)
//	POST /v1/workers/{id}/deregister → 204 (graceful goodbye; best-effort)
//	POST /v1/jobs/{id}/heartbeat   → 204 | 409 (lease lost) | 404
//	POST /v1/jobs/{id}/progress    → 204 | 409 | 404
//	POST /v1/jobs/{id}/checkpoint  → 204 | 409 | 404
//	POST /v1/jobs/{id}/complete    → 204 | 409 | 404
//
// A 409/404 on any job endpoint means the worker no longer owns the job
// (lease expired and was requeued, or the coordinator restarted): the
// worker must drop it and lease fresh work.

// maxDispatchBody bounds worker-posted bodies. Batch results carry whole
// sweep-cell payloads, so this is roomier than the public API's spec bound.
const maxDispatchBody = 64 << 20

// registerRequest is the body of POST /v1/workers/register.
type registerRequest struct {
	Name  string `json:"name"`
	Slots int    `json:"slots"`
}

// registerResponse hands the worker its identity and timing contract.
type registerResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMs int64  `json:"lease_ttl_ms"`
	PollWaitMs int64  `json:"poll_wait_ms"`
}

// leaseRequest is the body of POST /v1/workers/{id}/lease.
type leaseRequest struct {
	WaitMs int64 `json:"wait_ms"`
}

// jobPost is the shared body shape of heartbeat/progress/checkpoint/complete.
type jobPost struct {
	WorkerID   string          `json:"worker_id"`
	Attempt    int             `json:"attempt"`
	Samples    json.RawMessage `json:"samples,omitempty"`    // progress only
	Result     json.RawMessage `json:"result,omitempty"`     // complete only
	Error      string          `json:"error,omitempty"`      // complete only
	Tick       int64           `json:"tick,omitempty"`       // checkpoint only
	Checkpoint []byte          `json:"checkpoint,omitempty"` // checkpoint only
}

// Routes mounts the coordinator endpoints on mux.
func (c *Coordinator) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	mux.HandleFunc("POST /v1/workers/{id}/lease", c.handleLease)
	mux.HandleFunc("POST /v1/workers/{id}/deregister", c.handleDeregister)
	mux.HandleFunc("POST /v1/jobs/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/jobs/{id}/progress", c.handleProgress)
	mux.HandleFunc("POST /v1/jobs/{id}/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /v1/jobs/{id}/complete", c.handleComplete)
}

// decodeBody reads and decodes a bounded JSON body into v; an empty body
// leaves v at its zero value.
func decodeBody(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDispatchBody))
	if err != nil {
		return err
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return nil
	}
	return json.Unmarshal(body, v)
}

// writeDispatchError maps coordinator errors to status codes: unknown
// worker/job → 404, lost lease → 409, closed → 503.
func writeDispatchError(w http.ResponseWriter, err error) {
	code := http.StatusConflict
	switch {
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "unknown"):
		code = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, ttl, poll, err := c.Register(req.Name, req.Slots)
	if err != nil {
		writeDispatchError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(registerResponse{
		WorkerID:   id,
		LeaseTTLMs: ttl.Milliseconds(),
		PollWaitMs: poll.Milliseconds(),
	})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	lease, ok, err := c.Lease(r.Context(), r.PathValue("id"), time.Duration(req.WaitMs)*time.Millisecond)
	if err != nil {
		if errors.Is(err, r.Context().Err()) {
			return // client went away mid-poll; nothing to say
		}
		writeDispatchError(w, err)
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(lease)
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	c.Deregister(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req jobPost
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Heartbeat(r.PathValue("id"), req.WorkerID, req.Attempt); err != nil {
		writeDispatchError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req jobPost
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Progress(r.PathValue("id"), req.WorkerID, req.Attempt, req.Samples); err != nil {
		writeDispatchError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req jobPost
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Checkpoint) == 0 {
		http.Error(w, "checkpoint requires a payload", http.StatusBadRequest)
		return
	}
	if err := c.Checkpoint(r.PathValue("id"), req.WorkerID, req.Attempt, req.Tick, req.Checkpoint); err != nil {
		writeDispatchError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req jobPost
	if err := decodeBody(r, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Error == "" && len(req.Result) == 0 {
		http.Error(w, "complete requires a result or an error", http.StatusBadRequest)
		return
	}
	if err := c.Complete(r.PathValue("id"), req.WorkerID, req.Attempt, req.Result, req.Error); err != nil {
		writeDispatchError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
