package dispatch

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The deterministic chaos property suite (DESIGN.md §16): the seeded chaos
// schedule replays exactly; duplicate delivery completes exactly once;
// checkpoint commits are fenced, idempotent and carried into the next lease;
// expiry runs on the injected monotonic clock only; and a crashed
// coordinator's journal replays every open job without losing or doubling
// one.

// fakeTransport is an always-succeeding inner transport that records the
// delivered call sequence.
type fakeTransport struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeTransport) Post(ctx context.Context, path string, body, out any) (int, error) {
	f.mu.Lock()
	f.calls = append(f.calls, path)
	f.mu.Unlock()
	return http.StatusOK, nil
}

func (f *fakeTransport) delivered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// mapCkptStore is an in-memory CheckpointStore for coordinator tests.
type mapCkptStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMapCkptStore() *mapCkptStore { return &mapCkptStore{m: map[string][]byte{}} }

func (s *mapCkptStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok, nil
}

func (s *mapCkptStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

func (s *mapCkptStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

func (s *mapCkptStore) has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[key]
	return ok
}

// TestChaosTransportDeterministicSchedule: equal seeds replay the exact same
// failure schedule over the same call sequence; a different seed draws a
// different one.
func TestChaosTransportDeterministicSchedule(t *testing.T) {
	cfg := ChaosConfig{
		Seed:          7,
		DropRate:      0.20,
		ReplyLossRate: 0.15,
		DupRate:       0.15,
		DelayRate:     0.10,
		MaxDelay:      time.Millisecond,
	}
	run := func(cfg ChaosConfig) ([]string, ChaosStats, int) {
		inner := &fakeTransport{}
		tr := NewChaosTransport(inner, cfg)
		var outcomes []string
		for i := 0; i < 300; i++ {
			status, err := tr.Post(context.Background(), fmt.Sprintf("/v1/jobs/%d/x", i%7), nil, nil)
			outcomes = append(outcomes, fmt.Sprintf("%d/%v", status, err))
		}
		return outcomes, tr.Stats(), inner.delivered()
	}
	o1, s1, d1 := run(cfg)
	o2, s2, d2 := run(cfg)
	if s1 != s2 || d1 != d2 {
		t.Fatalf("same seed drew different schedules: %+v (%d delivered) vs %+v (%d)", s1, d1, s2, d2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("call %d outcome diverged under the same seed: %s vs %s", i, o1[i], o2[i])
		}
	}
	if s1.Dropped == 0 || s1.RepliesLost == 0 || s1.Duplicated == 0 || s1.Delayed == 0 {
		t.Fatalf("schedule never exercised some mode: %+v", s1)
	}
	if want := 300 - int(s1.Dropped) + int(s1.Duplicated); d1 != want {
		t.Fatalf("delivered %d calls, want %d (300 - %d dropped + %d duplicated)", d1, want, s1.Dropped, s1.Duplicated)
	}

	other := cfg
	other.Seed = 8
	o3, _, _ := run(other)
	same := true
	for i := range o1 {
		if o1[i] != o3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds replayed an identical 300-call schedule")
	}
}

// TestChaosTransportPartitionHealsAndExemptions: a partition window fails
// every non-exempt call undelivered and heals when it closes.
func TestChaosTransportPartitionHealsAndExemptions(t *testing.T) {
	inner := &fakeTransport{}
	tr := NewChaosTransport(inner, ChaosConfig{
		Partitions: []ChaosWindow{{From: 0, To: 40 * time.Millisecond}},
		Exempt:     []string{"/v1/workers/register"},
	})
	if _, err := tr.Post(context.Background(), "/v1/jobs/1/heartbeat", nil, nil); !errors.Is(err, ErrChaosDropped) {
		t.Fatalf("call inside the partition returned %v, want ErrChaosDropped", err)
	}
	if status, err := tr.Post(context.Background(), "/v1/workers/register", nil, nil); err != nil || status != http.StatusOK {
		t.Fatalf("exempt path was interfered with: %d, %v", status, err)
	}
	time.Sleep(50 * time.Millisecond)
	if status, err := tr.Post(context.Background(), "/v1/jobs/1/heartbeat", nil, nil); err != nil || status != http.StatusOK {
		t.Fatalf("partition never healed: %d, %v", status, err)
	}
	st := tr.Stats()
	if st.Partitioned != 1 || inner.delivered() != 2 {
		t.Fatalf("partition accounting off: %+v, %d delivered", st, inner.delivered())
	}
}

// TestChaosExactlyOnceUnderDuplicateDelivery is the end-to-end exactly-once
// property: a worker whose every RPC may be duplicated or have its reply
// lost (so the worker itself retries applied transitions) still completes
// every job exactly once at the coordinator, and every submitter gets its
// result.
func TestChaosExactlyOnceUnderDuplicateDelivery(t *testing.T) {
	cfg := fastConfig()
	cfg.LeaseTTL = 80 * time.Millisecond
	cfg.MaxAttempts = 10
	c := NewCoordinator(cfg)
	defer c.Close()
	mux := http.NewServeMux()
	c.Routes(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The lease poll is exempt: it is a pull, and duplicating it only
	// grants ghost leases that expire — legal but slow. The property under
	// test is the mutation paths (heartbeat, progress, complete), where a
	// retried or duplicated delivery of an applied transition must be
	// indistinguishable from a single one.
	tr := NewChaosTransport(NewHTTPTransport(ts.URL, nil), ChaosConfig{
		Seed:          11,
		DropRate:      0.05,
		ReplyLossRate: 0.25,
		DupRate:       0.25,
		Exempt:        []string{"/v1/workers/register", "/lease"},
	})
	var executions atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerOptions{
			Coordinator: ts.URL,
			Name:        "chaotic",
			Slots:       2,
			Transport:   tr,
			Logf:        t.Logf,
			MaxBackoff:  50 * time.Millisecond,
			Execute: func(ctx context.Context, key string, payload []byte, progress func([]byte)) ([]byte, string) {
				executions.Add(1)
				// Results cross the wire as json.RawMessage, so they must be
				// valid JSON — exactly like the real sweep-cell executor's.
				return []byte(fmt.Sprintf("%q", "r:"+string(payload))), ""
			},
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().WorkersLive == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const jobs = 12
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Execute(context.Background(), fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("p%d", i)), nil)
			if err == nil && string(res) != fmt.Sprintf("%q", fmt.Sprintf("r:p%d", i)) {
				err = fmt.Errorf("job %d returned %q", i, res)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	st := c.Stats()
	if st.Completed != jobs {
		t.Fatalf("completed %d times for %d jobs — exactly-once violated: %+v", st.Completed, jobs, st)
	}
	cs := tr.Stats()
	if cs.Duplicated == 0 || cs.RepliesLost == 0 {
		t.Fatalf("chaos schedule never manufactured duplicates: %+v", cs)
	}
	if executions.Load() < jobs {
		t.Fatalf("executed %d of %d jobs", executions.Load(), jobs)
	}
	cancel()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
}

// manualClock is an injectable monotonic time source.
type manualClock struct{ now atomic.Int64 }

func (m *manualClock) read() time.Duration     { return time.Duration(m.now.Load()) }
func (m *manualClock) advance(d time.Duration) { m.now.Add(int64(d)) }
func (m *manualClock) set(d time.Duration)     { m.now.Store(int64(d)) }

// TestCheckpointFencingAndResume: commits are fenced on the (job, worker,
// attempt) triple, duplicate and reordered deliveries are idempotent no-ops,
// and a requeued job's next lease carries the newest committed checkpoint —
// while every post from the superseded attempt is rejected, so two attempts
// are never live at once.
func TestCheckpointFencingAndResume(t *testing.T) {
	clk := &manualClock{}
	cfg := fastConfig()
	cfg.Clock = clk.read
	c := NewCoordinator(cfg)
	defer c.Close()
	w1 := registerWorker(t, c, "w1")
	w2 := registerWorker(t, c, "w2")

	resCh, errCh := startExecute(c, "k", []byte("p"))
	l := leaseOne(t, c, w1)
	if l.Attempt != 1 || l.Checkpoint != nil {
		t.Fatalf("fresh lease = %+v", l)
	}

	ckA, ckB, ckC := []byte("ck-a"), []byte("ck-b"), []byte("ck-c")
	if err := c.Checkpoint(l.JobID, w1, 1, 10, ckA); err != nil {
		t.Fatalf("first checkpoint: %v", err)
	}
	// Duplicate and reordered-older deliveries: accepted idempotently,
	// nothing rolls back, nothing is recommitted.
	if err := c.Checkpoint(l.JobID, w1, 1, 10, ckB); err != nil {
		t.Fatalf("duplicate checkpoint: %v", err)
	}
	if err := c.Checkpoint(l.JobID, w1, 1, 5, ckB); err != nil {
		t.Fatalf("reordered older checkpoint: %v", err)
	}
	if got := c.Stats().CheckpointsCommitted; got != 1 {
		t.Fatalf("CheckpointsCommitted = %d after duplicates, want 1", got)
	}
	if err := c.Checkpoint(l.JobID, w1, 1, 20, ckC); err != nil {
		t.Fatalf("newer checkpoint: %v", err)
	}
	// Fencing: wrong attempt, wrong worker.
	if err := c.Checkpoint(l.JobID, w1, 2, 30, ckA); err == nil {
		t.Fatal("checkpoint with a future attempt was accepted")
	}
	if err := c.Checkpoint(l.JobID, w2, 1, 30, ckA); err == nil {
		t.Fatal("checkpoint from a non-holder was accepted")
	}

	// Expire the lease on the injected clock; the requeued job's next lease
	// resumes from the newest committed checkpoint.
	clk.set(cfg.LeaseTTL + time.Millisecond)
	waitRequeue := time.Now().Add(5 * time.Second)
	for c.Stats().Requeued == 0 {
		if time.Now().After(waitRequeue) {
			t.Fatal("lease never expired on the injected clock")
		}
		time.Sleep(5 * time.Millisecond)
	}
	l2 := leaseOne(t, c, w2)
	if l2.Attempt != 2 || string(l2.Checkpoint) != string(ckC) || l2.CheckpointTick != 20 {
		t.Fatalf("resumed lease = attempt %d tick %d ckpt %q", l2.Attempt, l2.CheckpointTick, l2.Checkpoint)
	}
	if got := c.Stats().Resumes; got != 1 {
		t.Fatalf("Resumes = %d, want 1", got)
	}

	// The superseded attempt is fully fenced: no heartbeat, no checkpoint,
	// no completion.
	if err := c.Heartbeat(l.JobID, w1, 1); err == nil {
		t.Fatal("stale attempt heartbeat accepted")
	}
	if err := c.Checkpoint(l.JobID, w1, 1, 40, ckA); err == nil {
		t.Fatal("stale attempt checkpoint accepted")
	}
	if err := c.Complete(l.JobID, w1, 1, []byte("stale result"), ""); err == nil {
		t.Fatal("stale attempt completion accepted")
	}

	if err := c.Complete(l2.JobID, w2, 2, []byte("real result"), ""); err != nil {
		t.Fatalf("live attempt completion: %v", err)
	}
	if res := <-resCh; string(res) != "real result" {
		t.Fatalf("submitter received %q", res)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Completed != 1 || st.StaleRejected < 5 {
		t.Fatalf("final stats: %+v", st)
	}
}

// TestMonotonicClockWallStepImmunity: lease expiry is driven only by the
// injected monotonic source. Wall time passing (or stepping) while the
// monotonic clock stands still expires nothing; monotonic progress alone
// does.
func TestMonotonicClockWallStepImmunity(t *testing.T) {
	clk := &manualClock{}
	cfg := fastConfig()
	cfg.Clock = clk.read
	c := NewCoordinator(cfg)
	defer c.Close()
	w := registerWorker(t, c, "w1")
	_, _ = startExecute(c, "k", nil)
	leaseOne(t, c, w)

	// Three lease-TTLs of wall time pass; the monotonic clock is frozen, so
	// nothing may expire — a wall-clock step can never mass-expire leases.
	time.Sleep(3 * cfg.LeaseTTL)
	if st := c.Stats(); st.Expired != 0 || st.Leased != 1 {
		t.Fatalf("frozen monotonic clock still expired leases: %+v", st)
	}

	clk.set(cfg.LeaseTTL + time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Expired == 0 {
		if time.Now().After(deadline) {
			t.Fatal("monotonic progress did not expire the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalCrashReplayAndAdoption: after a coordinator crash the journal
// replays every open job — leased jobs keep their holder and attempt,
// pending jobs rejoin the queue — a retrying client adopts its orphan
// instead of double-enqueueing, an unadopted orphan's result flows to the
// OrphanResult sink, and the requeued orphan resumes from the checkpoint
// mirrored in the durable store.
func TestJournalCrashReplayAndAdoption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jrnl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ckstore := newMapCkptStore()
	cfg := fastConfig()
	cfg.Journal = jr
	cfg.CheckpointStore = ckstore
	c1 := NewCoordinator(cfg)
	w := registerWorker(t, c1, "w1")

	// Job A: leased, with a committed checkpoint.
	_, errA := startExecute(c1, "ka", []byte("pa"))
	la := leaseOne(t, c1, w)
	if la.Key != "ka" {
		t.Fatalf("leased %q first, want ka", la.Key)
	}
	if err := c1.Checkpoint(la.JobID, w, la.Attempt, 7, []byte("ckpt-a")); err != nil {
		t.Fatal(err)
	}
	// Job B: completed before the crash — it must NOT replay.
	resB, _ := startExecute(c1, "kb", []byte("pb"))
	lb := leaseOne(t, c1, w)
	if err := c1.Complete(lb.JobID, w, lb.Attempt, []byte("rb"), ""); err != nil {
		t.Fatal(err)
	}
	if got := <-resB; string(got) != "rb" {
		t.Fatalf("job B result %q", got)
	}
	// Job C: still pending at the crash.
	_, errC := startExecute(c1, "kc", []byte("pc"))
	waitPending := time.Now().Add(5 * time.Second)
	for c1.Stats().Pending == 0 {
		if time.Now().After(waitPending) {
			t.Fatal("job C never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	c1.CrashForTest()
	if err := <-errA; !errors.Is(err, ErrClosed) {
		t.Fatalf("job A waiter got %v across the crash, want ErrClosed", err)
	}
	if err := <-errC; !errors.Is(err, ErrClosed) {
		t.Fatalf("job C waiter got %v across the crash, want ErrClosed", err)
	}

	// Life two: replay the journal the crash left behind.
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var orphanMu sync.Mutex
	orphaned := map[string]string{}
	cfg2 := fastConfig()
	// A roomier TTL so the replayed ka lease (held by the dead worker) is
	// still unexpired while the adopted kc round-trips below.
	cfg2.LeaseTTL = 200 * time.Millisecond
	cfg2.Journal = jr2
	cfg2.CheckpointStore = ckstore
	cfg2.OrphanResult = func(key string, result []byte) {
		orphanMu.Lock()
		orphaned[key] = string(result)
		orphanMu.Unlock()
	}
	c2 := NewCoordinator(cfg2)
	defer c2.Close()
	if got := c2.Stats().JournalReplays; got != 2 {
		t.Fatalf("replayed %d jobs, want 2 (ka leased + kc pending)", got)
	}

	// The worker rejoins first — with no live worker registered, the expiry
	// loop's no-worker sweep would fail the adopted job over to local
	// fallback (correct for a real deployment, but not the path under test).
	w2 := registerWorker(t, c2, "rejoined")
	// The retrying client adopts its orphan: no duplicate enqueue, and its
	// waiter attaches to the replayed job.
	resC2, errC2 := startExecute(c2, "kc", []byte("pc"))
	time.Sleep(25 * time.Millisecond) // let the Execute goroutine adopt before leasing

	// kc is the only pending job (ka is still leased to the dead w-1 under a
	// fresh TTL), so the rejoining worker gets it first.
	lc := leaseOne(t, c2, w2)
	if lc.Key != "kc" || lc.Checkpoint != nil {
		t.Fatalf("first post-restart lease = %+v, want fresh kc", lc)
	}
	if err := c2.Complete(lc.JobID, w2, lc.Attempt, []byte("rc"), ""); err != nil {
		t.Fatal(err)
	}
	if got := <-resC2; string(got) != "rc" {
		t.Fatalf("adopted job returned %q to its new waiter", got)
	}
	if err := <-errC2; err != nil {
		t.Fatal(err)
	}

	// ka's replayed lease (held by the dead worker) lapses, requeues, and
	// the next lease resumes from the checkpoint mirrored in the store.
	lk := leaseOne(t, c2, w2)
	if lk.Key != "ka" {
		t.Fatalf("requeued lease is %q, want ka", lk.Key)
	}
	if lk.Attempt != la.Attempt+1 {
		t.Fatalf("replayed lease attempt %d, want %d (fencing must advance)", lk.Attempt, la.Attempt+1)
	}
	// The store persists only the checkpoint bytes (the payload embeds its
	// own position); the tick watermark is in-memory fencing state, so a
	// store-restored lease reports tick 0 — which correctly admits any
	// future commit.
	if string(lk.Checkpoint) != "ckpt-a" {
		t.Fatalf("restored lease carries ckpt %q, want the store-mirrored ckpt-a", lk.Checkpoint)
	}
	if got := c2.Stats().Resumes; got != 1 {
		t.Fatalf("Resumes = %d", got)
	}
	if err := c2.Complete(lk.JobID, w2, lk.Attempt, []byte("ra"), ""); err != nil {
		t.Fatal(err)
	}
	// Unadopted orphan: the result lands in the sink, and the dead
	// checkpoint is deleted from the store.
	orphanMu.Lock()
	got := orphaned["ka"]
	orphanMu.Unlock()
	if got != "ra" {
		t.Fatalf("orphan sink received %q for ka", got)
	}
	waitCkptGone := time.Now().Add(5 * time.Second)
	for ckstore.has("ckpt/ka") {
		if time.Now().After(waitCkptGone) {
			t.Fatal("completed job's checkpoint never left the store")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Life three: everything completed, nothing left to replay.
	c2.Close()
	jr3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	if open := jr3.Pending(); len(open) != 0 {
		t.Fatalf("journal still holds %d open jobs after all completed", len(open))
	}
}

// TestJournalTornTailAndCompaction: a torn tail record (the crash landed
// mid-append) is truncated away without touching committed records, and
// compaction preserves the open set and the ID horizon across reopen.
func TestJournalTornTailAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.jrnl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := jr.Enqueue(fmt.Sprintf("dj-%d", i), fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Lease("dj-2", "w-9", 3); err != nil {
		t.Fatal(err)
	}
	if err := jr.Complete("dj-3"); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a partial header lands at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 0, 0, 0, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := jr2.Stats(); !st.TruncatedTail {
		t.Fatalf("torn tail not reported: %+v", st)
	}
	open := jr2.Pending()
	if len(open) != 4 {
		t.Fatalf("replayed %d open jobs, want 4", len(open))
	}
	byID := map[string]*JournalJob{}
	for _, j := range open {
		byID[j.ID] = j
	}
	if j := byID["dj-2"]; j == nil || j.WorkerID != "w-9" || j.Attempt != 3 || j.Key != "k2" {
		t.Fatalf("dj-2 replayed as %+v", byID["dj-2"])
	}
	if _, done := byID["dj-3"]; done {
		t.Fatal("completed dj-3 replayed as open")
	}
	if got := jr2.MaxJobID(); got != 5 {
		t.Fatalf("MaxJobID = %d, want 5", got)
	}

	// Compaction rewrites only the open set; a reopen sees the same jobs.
	if err := jr2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	jr3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	open3 := jr3.Pending()
	if len(open3) != len(open) {
		t.Fatalf("compaction changed the open set: %d vs %d", len(open3), len(open))
	}
	for i := range open {
		a, b := open[i], open3[i]
		if a.ID != b.ID || a.Key != b.Key || string(a.Payload) != string(b.Payload) || a.WorkerID != b.WorkerID || a.Attempt != b.Attempt {
			t.Fatalf("open job %d diverged across compaction: %+v vs %+v", i, a, b)
		}
	}
	if got := jr3.MaxJobID(); got != 5 {
		t.Fatalf("MaxJobID after compaction = %d, want 5", got)
	}
}
