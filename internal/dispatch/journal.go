package dispatch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal is the coordinator's durable write-ahead log of job lifecycle
// transitions: enqueue, lease, requeue, complete, fail. It follows the same
// storage discipline as internal/store.LogStore — a single append-only file,
// every record CRC-framed and fsynced before the transition is acknowledged,
// torn-tail truncation on replay, compaction into a temp file installed by
// atomic rename — so a coordinator restart replays the open jobs instead of
// forgetting a whole sweep.
//
// Record layout after the 8-byte "CENJRNL1" magic (all integers
// little-endian):
//
//	u32 op | u32 idLen | u32 auxLen | u32 payloadLen | u32 crc32(id‖aux‖payload) | id | aux | payload
//
// where id is the job ID, aux is the job key (enqueue) or worker ID (lease),
// and payload is the job payload (enqueue) or the attempt number as u32
// (lease). Requeue/complete/fail records carry the id alone.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64

	// open tracks every journaled job not yet completed or failed — the
	// replay state, maintained live so compaction can rewrite exactly the
	// open set.
	open map[string]*JournalJob
	// liveBytes approximates the bytes a compaction would keep; bytes
	// belonging to closed jobs are dead weight.
	jobBytes  map[string]int64
	liveBytes int64
	deadBytes int64

	noSync bool // test hook: skip per-append fsync

	appends        uint64
	compactions    uint64
	replayed       int
	truncatedTail  bool
	truncatedBytes int64
}

// JournalJob is one open job reconstructed by replay: pending when WorkerID
// is empty, leased otherwise.
type JournalJob struct {
	ID       string
	Key      string
	Payload  []byte
	WorkerID string
	Attempt  int
}

// Journal record opcodes.
const (
	jOpEnqueue  = 1
	jOpLease    = 2
	jOpRequeue  = 3
	jOpComplete = 4
	jOpFail     = 5
)

const (
	journalMagic    = "CENJRNL1"
	jRecHeaderLen   = 20
	maxJournalField = 64 << 20 // replay sanity bound per field
	jCompactMinDead = 64 << 10 // floor below which auto-compaction never runs
)

// OpenJournal opens (or creates) the journal at path and replays it. A stale
// compaction temp file left by a crash mid-compaction is removed — the
// rename never happened, so the original journal is intact and authoritative.
func OpenJournal(path string) (*Journal, error) {
	// A crash between temp-write and rename leaves <path>.compact behind;
	// the original file is still the committed state.
	_ = os.Remove(path + ".compact")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: opening journal: %w", err)
	}
	j := &Journal{path: path, f: f, open: make(map[string]*JournalJob), jobBytes: make(map[string]int64)}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the journal, rebuilding the open-job set and truncating a
// torn tail.
func (j *Journal) replay() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("dispatch: stat journal: %w", err)
	}
	end := info.Size()
	if end == 0 {
		if _, err := j.f.WriteAt([]byte(journalMagic), 0); err != nil {
			return fmt.Errorf("dispatch: writing journal magic: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("dispatch: syncing journal magic: %w", err)
		}
		j.size = int64(len(journalMagic))
		return nil
	}
	magic := make([]byte, len(journalMagic))
	if _, err := j.f.ReadAt(magic, 0); err != nil || string(magic) != journalMagic {
		return fmt.Errorf("dispatch: %s is not a centurion dispatch journal", j.path)
	}

	off := int64(len(journalMagic))
	hdr := make([]byte, jRecHeaderLen)
	var buf []byte
	for off < end {
		if off+jRecHeaderLen > end {
			break // torn: header ran off the end
		}
		if _, err := j.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("dispatch: reading journal header at %d: %w", off, err)
		}
		op := binary.LittleEndian.Uint32(hdr[0:4])
		idLen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		auxLen := int64(binary.LittleEndian.Uint32(hdr[8:12]))
		payLen := int64(binary.LittleEndian.Uint32(hdr[12:16]))
		sum := binary.LittleEndian.Uint32(hdr[16:20])
		if op < jOpEnqueue || op > jOpFail || idLen == 0 || idLen > maxJournalField ||
			auxLen > maxJournalField || payLen > maxJournalField ||
			off+jRecHeaderLen+idLen+auxLen+payLen > end {
			break // torn or corrupt
		}
		n := idLen + auxLen + payLen
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := j.f.ReadAt(buf, off+jRecHeaderLen); err != nil {
			return fmt.Errorf("dispatch: reading journal record at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(buf) != sum {
			break // torn mid-payload
		}
		id := string(buf[:idLen])
		aux := string(buf[idLen : idLen+auxLen])
		payload := buf[idLen+auxLen:]
		recLen := jRecHeaderLen + n
		j.applyRecord(op, id, aux, payload, recLen)
		off += recLen
	}
	if off < end {
		j.truncatedTail = true
		j.truncatedBytes = end - off
		if err := j.f.Truncate(off); err != nil {
			return fmt.Errorf("dispatch: truncating torn journal tail at %d: %w", off, err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("dispatch: syncing journal truncation: %w", err)
		}
	}
	j.size = off
	j.replayed = len(j.open)
	return nil
}

// applyRecord folds one replayed (or freshly appended) record into the
// open-job set and the live/dead accounting. Callers hold j.mu (or own the
// journal exclusively during replay).
func (j *Journal) applyRecord(op uint32, id, aux string, payload []byte, recLen int64) {
	switch op {
	case jOpEnqueue:
		j.open[id] = &JournalJob{ID: id, Key: aux, Payload: append([]byte(nil), payload...)}
		j.jobBytes[id] += recLen
		j.liveBytes += recLen
	case jOpLease:
		if jj, ok := j.open[id]; ok {
			jj.WorkerID = aux
			if len(payload) == 4 {
				jj.Attempt = int(binary.LittleEndian.Uint32(payload))
			}
			j.jobBytes[id] += recLen
			j.liveBytes += recLen
		} else {
			j.deadBytes += recLen
		}
	case jOpRequeue:
		if jj, ok := j.open[id]; ok {
			jj.WorkerID = ""
			j.jobBytes[id] += recLen
			j.liveBytes += recLen
		} else {
			j.deadBytes += recLen
		}
	case jOpComplete, jOpFail:
		if b, ok := j.jobBytes[id]; ok {
			j.liveBytes -= b
			j.deadBytes += b
			delete(j.jobBytes, id)
		}
		delete(j.open, id)
		j.deadBytes += recLen
	}
}

// Pending returns the jobs open at replay time, sorted by numeric job ID —
// the enqueue order, which is the best queue-order reconstruction the
// journal affords (a requeued-to-front position is not journaled).
func (j *Journal) Pending() []*JournalJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]*JournalJob, 0, len(j.open))
	for _, jj := range j.open {
		out = append(out, jj)
	}
	sort.Slice(out, func(a, b int) bool {
		return jobIDLess(out[a].ID, out[b].ID)
	})
	return out
}

// jobIDLess orders "dj-N" ids numerically, falling back to string order for
// foreign ids.
func jobIDLess(a, b string) bool {
	na, aok := jobIDNum(a)
	nb, bok := jobIDNum(b)
	if aok && bok {
		return na < nb
	}
	return a < b
}

// jobIDNum extracts N from "dj-N".
func jobIDNum(id string) (uint64, bool) {
	const prefix = "dj-"
	if len(id) <= len(prefix) || id[:len(prefix)] != prefix {
		return 0, false
	}
	var n uint64
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// MaxJobID returns the highest numeric "dj-N" suffix seen across the whole
// journal's open set, so a restarted coordinator resumes IDs beyond it.
func (j *Journal) MaxJobID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var max uint64
	for id := range j.open {
		if n, ok := jobIDNum(id); ok && n > max {
			max = n
		}
	}
	return max
}

// append writes one synced record and folds it into the live state.
func (j *Journal) append(op uint32, id, aux string, payload []byte) error {
	rec := make([]byte, jRecHeaderLen+len(id)+len(aux)+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], op)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(id)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(aux)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(payload)))
	copy(rec[jRecHeaderLen:], id)
	copy(rec[jRecHeaderLen+len(id):], aux)
	copy(rec[jRecHeaderLen+len(id)+len(aux):], payload)
	binary.LittleEndian.PutUint32(rec[16:20], crc32.ChecksumIEEE(rec[jRecHeaderLen:]))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("dispatch: append on closed journal")
	}
	off := j.size
	if _, err := j.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("dispatch: appending journal record: %w", err)
	}
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("dispatch: syncing journal record: %w", err)
		}
	}
	j.size = off + int64(len(rec))
	j.appends++
	j.applyRecord(op, id, aux, payload, int64(len(rec)))

	if j.deadBytes > jCompactMinDead && j.deadBytes > j.liveBytes {
		return j.compactLocked()
	}
	return nil
}

// Enqueue journals a job's admission.
func (j *Journal) Enqueue(id, key string, payload []byte) error {
	return j.append(jOpEnqueue, id, key, payload)
}

// Lease journals a lease grant.
func (j *Journal) Lease(id, workerID string, attempt int) error {
	var a [4]byte
	binary.LittleEndian.PutUint32(a[:], uint32(attempt))
	return j.append(jOpLease, id, workerID, a[:])
}

// Requeue journals an expired lease returning the job to the queue.
func (j *Journal) Requeue(id string) error {
	return j.append(jOpRequeue, id, "", nil)
}

// Complete journals a successful completion, closing the job.
func (j *Journal) Complete(id string) error {
	return j.append(jOpComplete, id, "", nil)
}

// Fail journals a terminal failure, closing the job.
func (j *Journal) Fail(id string) error {
	return j.append(jOpFail, id, "", nil)
}

// Compact rewrites the journal to exactly the open set: one enqueue record
// per open job plus a lease record for leased ones, into a temp file
// installed by atomic rename (same crash discipline as LogStore compaction).
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("dispatch: compact on closed journal")
	}
	return j.compactLocked()
}

// compactLocked does the rewrite. Callers hold j.mu.
func (j *Journal) compactLocked() error {
	ids := make([]string, 0, len(j.open))
	for id := range j.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return jobIDLess(ids[a], ids[b]) })

	tmpPath := j.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dispatch: creating journal compaction file: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.WriteAt([]byte(journalMagic), 0); err != nil {
		cleanup()
		return fmt.Errorf("dispatch: writing journal compaction magic: %w", err)
	}
	off := int64(len(journalMagic))
	newBytes := make(map[string]int64, len(ids))
	write := func(op uint32, id, aux string, payload []byte) error {
		rec := make([]byte, jRecHeaderLen+len(id)+len(aux)+len(payload))
		binary.LittleEndian.PutUint32(rec[0:4], op)
		binary.LittleEndian.PutUint32(rec[4:8], uint32(len(id)))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(aux)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(payload)))
		copy(rec[jRecHeaderLen:], id)
		copy(rec[jRecHeaderLen+len(id):], aux)
		copy(rec[jRecHeaderLen+len(id)+len(aux):], payload)
		binary.LittleEndian.PutUint32(rec[16:20], crc32.ChecksumIEEE(rec[jRecHeaderLen:]))
		if _, err := tmp.WriteAt(rec, off); err != nil {
			return err
		}
		newBytes[id] += int64(len(rec))
		off += int64(len(rec))
		return nil
	}
	for _, id := range ids {
		jj := j.open[id]
		if err := write(jOpEnqueue, id, jj.Key, jj.Payload); err != nil {
			cleanup()
			return fmt.Errorf("dispatch: journal compaction write for %s: %w", id, err)
		}
		if jj.WorkerID != "" {
			var a [4]byte
			binary.LittleEndian.PutUint32(a[:], uint32(jj.Attempt))
			if err := write(jOpLease, id, jj.WorkerID, a[:]); err != nil {
				cleanup()
				return fmt.Errorf("dispatch: journal compaction write for %s: %w", id, err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("dispatch: syncing journal compaction file: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		cleanup()
		return fmt.Errorf("dispatch: installing compacted journal: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(j.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	j.f.Close()
	j.f = tmp
	j.size = off
	j.jobBytes = newBytes
	j.liveBytes = 0
	for _, b := range newBytes {
		j.liveBytes += b
	}
	j.deadBytes = 0
	j.compactions++
	return nil
}

// JournalStats is the journal section of the coordinator's health surface.
type JournalStats struct {
	Path           string `json:"path"`
	OpenJobs       int    `json:"open_jobs"`
	LogBytes       int64  `json:"log_bytes"`
	DeadBytes      int64  `json:"dead_bytes"`
	Appends        uint64 `json:"appends"`
	Compactions    uint64 `json:"compactions"`
	Replayed       int    `json:"replayed"`
	TruncatedTail  bool   `json:"truncated_tail,omitempty"`
	TruncatedBytes int64  `json:"truncated_bytes,omitempty"`
}

// Stats snapshots the journal.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Path:           j.path,
		OpenJobs:       len(j.open),
		LogBytes:       j.size,
		DeadBytes:      j.deadBytes,
		Appends:        j.appends,
		Compactions:    j.compactions,
		Replayed:       j.replayed,
		TruncatedTail:  j.truncatedTail,
		TruncatedBytes: j.truncatedBytes,
	}
}

// Close flushes and releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
