// Package dispatch turns the simulation service into a horizontally
// scalable control plane, in the shape of coder's provisionerd protocol: a
// Coordinator owns a queue of opaque jobs, `centurion worker` daemons
// register and lease jobs over long-poll HTTP, heartbeat to keep their
// leases alive, stream progress back, and post results. A lease that
// outlives its TTL — a worker died, hung or partitioned — is deterministically
// requeued at the front of the queue for the next healthy worker, up to an
// attempt cap.
//
// The package is payload-agnostic: jobs and results are byte slices, keyed
// by the caller's content-addressed spec keys, so the server layer stays the
// only place that knows what a run spec is.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultPollWait    = 20 * time.Second
	DefaultMaxAttempts = 3
)

// Config tunes the coordinator. Zero values select the defaults.
type Config struct {
	// LeaseTTL is how long a leased job may go without a heartbeat before
	// it is declared abandoned and requeued.
	LeaseTTL time.Duration
	// PollWait bounds how long a worker's lease long-poll blocks before
	// returning empty-handed.
	PollWait time.Duration
	// MaxAttempts caps how many times a job may be leased before the
	// coordinator gives up on remote execution and fails it (the server
	// layer then falls back to running it locally).
	MaxAttempts int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.PollWait <= 0 {
		c.PollWait = DefaultPollWait
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	return c
}

// ErrNoWorkers reports that no live worker is registered: the caller should
// execute locally instead of queueing a job nobody will lease.
var ErrNoWorkers = errors.New("dispatch: no live workers registered")

// ErrAttemptsExhausted reports that a job was leased MaxAttempts times
// without a completion — every worker that took it died or lost its lease.
var ErrAttemptsExhausted = errors.New("dispatch: lease attempts exhausted")

// ErrClosed reports an Execute on a closed or draining coordinator.
var ErrClosed = errors.New("dispatch: coordinator closed")

// RemoteError is an error the executing worker reported: the job ran and
// failed, so it must not be retried (remotely or locally) — the failure is
// deterministic.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "dispatch: remote execution failed: " + e.Msg }

// jobState is a dispatch job's position in the lease lifecycle.
type jobState int

const (
	statePending jobState = iota // queued, waiting for a lease
	stateLeased                  // held by a worker under a live lease
	stateDone                    // completed or failed; waiter notified
)

// job is one unit of remote work.
type job struct {
	id      string
	key     string
	payload []byte

	state    jobState
	workerID string    // leaseholder while stateLeased
	attempt  int       // incremented at each lease
	deadline time.Time // lease expiry while stateLeased
	requeues int       // completed expiry→pending transitions

	onProgress func([]byte)

	done   chan struct{}
	result []byte
	err    error
}

// workerState tracks one registered worker daemon.
type workerState struct {
	id       string
	name     string
	slots    int
	seen     time.Time // last register/lease/heartbeat/progress/complete
	leased   int       // currently held leases
	leasedOK uint64    // lifetime completions
}

// Lease is the worker-facing view of a leased job.
type Lease struct {
	JobID   string `json:"job_id"`
	Key     string `json:"key"`
	Payload []byte `json:"payload"`
	Attempt int    `json:"attempt"`
}

// Stats is the coordinator snapshot surfaced by /healthz.
type Stats struct {
	WorkersRegistered int `json:"workers_registered"`
	WorkersLive       int `json:"workers_live"`
	Pending           int `json:"pending"`
	Leased            int `json:"leased"`

	LeasesGranted uint64 `json:"leases_granted"`
	Expired       uint64 `json:"expired"`
	Requeued      uint64 `json:"requeued"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	StaleRejected uint64 `json:"stale_rejected"`
}

// Coordinator owns the dispatch queue, worker registry and lease clock.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	wake    chan struct{} // closed+replaced whenever pending work or state changes
	pending []*job        // FIFO; expired jobs requeue at the front
	byID    map[string]*job
	workers map[string]*workerState
	nextJob uint64
	nextWkr uint64
	closed  bool

	leasesGranted uint64
	expired       uint64
	requeued      uint64
	completed     uint64
	failed        uint64
	staleRejected uint64

	stopExpiry chan struct{}
	expiryDone chan struct{}
	closeOnce  sync.Once
}

// NewCoordinator starts a coordinator and its lease-expiry clock.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:        cfg.withDefaults(),
		wake:       make(chan struct{}),
		byID:       make(map[string]*job),
		workers:    make(map[string]*workerState),
		stopExpiry: make(chan struct{}),
		expiryDone: make(chan struct{}),
	}
	go c.expiryLoop()
	return c
}

// broadcast wakes every long-poller and waiter. Callers hold c.mu.
func (c *Coordinator) broadcast() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// livenessWindow is how long a silent worker still counts as live: it must
// cover a full idle long-poll plus scheduling slack.
func (c *Coordinator) livenessWindow() time.Duration {
	return 2 * (c.cfg.PollWait + c.cfg.LeaseTTL)
}

// liveWorkersLocked counts workers seen within the liveness window.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.seen) <= c.livenessWindow() {
			n++
		}
	}
	return n
}

// Register adds (or re-adds) a worker daemon and returns its ID plus the
// lease timing contract it must honour.
func (c *Coordinator) Register(name string, slots int) (id string, leaseTTL, pollWait time.Duration, err error) {
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", 0, 0, ErrClosed
	}
	c.nextWkr++
	id = fmt.Sprintf("w-%d", c.nextWkr)
	c.workers[id] = &workerState{id: id, name: name, slots: slots, seen: time.Now()}
	c.broadcast() // an Execute blocked on ErrNoWorkers re-checks… (callers poll, see Execute)
	return id, c.cfg.LeaseTTL, c.cfg.PollWait, nil
}

// Deregister removes a worker that is shutting down gracefully, so pending
// jobs stop waiting for it immediately instead of until its liveness window
// lapses. Leases the worker still holds (it drains them before calling
// this) stay valid: completion is keyed on the (job, worker, attempt)
// triple, not registry membership.
func (c *Coordinator) Deregister(workerID string) {
	c.mu.Lock()
	delete(c.workers, workerID)
	c.mu.Unlock()
	// Wake the expiry loop's no-worker sweep promptly rather than waiting
	// for its next tick: fail still-pending jobs over to local fallback.
	c.expireOverdue(time.Now())
}

// Execute queues one job for remote execution and blocks until a worker
// completes it, the attempt cap trips, or ctx is cancelled. onProgress (may
// be nil) receives raw progress payloads as workers post them.
//
// With no live worker registered it fails fast with ErrNoWorkers so the
// caller can run the job in-process instead — that is what lets a
// serve-only deployment behave exactly as before this subsystem existed.
func (c *Coordinator) Execute(ctx context.Context, key string, payload []byte, onProgress func([]byte)) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.liveWorkersLocked(time.Now()) == 0 {
		c.mu.Unlock()
		return nil, ErrNoWorkers
	}
	c.nextJob++
	j := &job{
		id:         fmt.Sprintf("dj-%d", c.nextJob),
		key:        key,
		payload:    payload,
		onProgress: onProgress,
		done:       make(chan struct{}),
	}
	c.byID[j.id] = j
	c.pending = append(c.pending, j)
	c.broadcast()
	c.mu.Unlock()

	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		c.abandon(j)
		return nil, ctx.Err()
	}
}

// abandon withdraws a job whose waiter gave up: a pending job is removed
// outright; a leased one is left to finish (its result is discarded on
// completion because the job is no longer in byID's waiting set).
func (c *Coordinator) abandon(j *job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-j.done:
		return // completed in the race window
	default:
	}
	delete(c.byID, j.id)
	for i, p := range c.pending {
		if p == j {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	j.err = context.Canceled
	close(j.done)
}

// Lease blocks up to wait (capped by the configured PollWait) for a pending
// job and leases it to worker id. ok=false means the poll timed out empty —
// the worker should immediately poll again.
func (c *Coordinator) Lease(ctx context.Context, workerID string, wait time.Duration) (Lease, bool, error) {
	if wait <= 0 || wait > c.cfg.PollWait {
		wait = c.cfg.PollWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return Lease{}, false, ErrClosed
		}
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return Lease{}, false, fmt.Errorf("dispatch: unknown worker %q", workerID)
		}
		now := time.Now()
		w.seen = now
		if len(c.pending) > 0 && w.leased < w.slots {
			j := c.pending[0]
			c.pending = c.pending[1:]
			j.state = stateLeased
			j.workerID = workerID
			j.attempt++
			j.deadline = now.Add(c.cfg.LeaseTTL)
			w.leased++
			c.leasesGranted++
			lease := Lease{JobID: j.id, Key: j.key, Payload: j.payload, Attempt: j.attempt}
			c.mu.Unlock()
			return lease, true, nil
		}
		wakeCh := c.wake
		c.mu.Unlock()
		select {
		case <-wakeCh:
		case <-timer.C:
			return Lease{}, false, nil
		case <-ctx.Done():
			return Lease{}, false, ctx.Err()
		}
	}
}

// leaseHolder validates that worker id still holds job jobID at the given
// attempt. Callers hold c.mu. The attempt check is what makes a worker that
// lost its lease (expiry requeued the job, possibly to someone else) unable
// to interfere: its messages carry a stale attempt.
func (c *Coordinator) leaseHolder(jobID, workerID string, attempt int) (*job, error) {
	j, ok := c.byID[jobID]
	if !ok {
		// A finished job is deleted from byID, so a worker that lost its
		// lease and posts after the replacement completed lands here.
		c.staleRejected++
		return nil, fmt.Errorf("dispatch: unknown job %q", jobID)
	}
	if j.state != stateLeased || j.workerID != workerID || j.attempt != attempt {
		c.staleRejected++
		return nil, fmt.Errorf("dispatch: job %s is not leased to %s at attempt %d", jobID, workerID, attempt)
	}
	return j, nil
}

// Heartbeat extends the lease on jobID. A worker whose heartbeat is
// rejected must abandon the job: its lease expired and the job belongs to
// the queue (or another worker) now.
func (c *Coordinator) Heartbeat(jobID, workerID string, attempt int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		return err
	}
	now := time.Now()
	j.deadline = now.Add(c.cfg.LeaseTTL)
	if w, ok := c.workers[workerID]; ok {
		w.seen = now
	}
	return nil
}

// Progress forwards a raw progress payload to the job's waiter. Stale
// leases are rejected exactly like heartbeats.
func (c *Coordinator) Progress(jobID, workerID string, attempt int, payload []byte) error {
	c.mu.Lock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	now := time.Now()
	j.deadline = now.Add(c.cfg.LeaseTTL) // progress is proof of life
	if w, ok := c.workers[workerID]; ok {
		w.seen = now
	}
	onProgress := j.onProgress
	c.mu.Unlock()
	// Fan out without the coordinator lock: the server's stream publisher
	// has its own locking and must not serialise the whole control plane.
	if onProgress != nil {
		onProgress(payload)
	}
	return nil
}

// Complete finishes jobID with a result payload or a worker-reported
// execution error. A duplicate or post-expiry Complete is rejected (the
// lease-holder check fails) so exactly one attempt's result is delivered.
func (c *Coordinator) Complete(jobID, workerID string, attempt int, result []byte, execErr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		return err
	}
	if w, ok := c.workers[workerID]; ok {
		w.seen = time.Now()
		w.leased--
		w.leasedOK++
	}
	j.state = stateDone
	if execErr != "" {
		j.err = &RemoteError{Msg: execErr}
		c.failed++
	} else {
		j.result = result
		c.completed++
	}
	delete(c.byID, j.id)
	close(j.done)
	c.broadcast()
	return nil
}

// expiryLoop is the lease clock: it scans for overdue leases and requeues
// (or fails) them. The scan interval tracks the TTL so tests with
// millisecond leases expire promptly without a hot loop in production.
func (c *Coordinator) expiryLoop() {
	defer close(c.expiryDone)
	interval := c.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopExpiry:
			return
		case <-ticker.C:
			c.expireOverdue(time.Now())
		}
	}
}

// expireOverdue requeues every lease whose deadline passed. Expired jobs
// rejoin the queue at the front, ordered by (deadline, id) so recovery
// order is deterministic; a job out of attempts fails instead, and a job
// with no live worker left to retry it fails with ErrNoWorkers so its
// waiter can fall back to local execution rather than wait forever.
func (c *Coordinator) expireOverdue(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.liveWorkersLocked(now)
	// A queue with nobody left to serve it must not strand its waiters:
	// fail pending jobs with ErrNoWorkers so they run locally instead.
	if live == 0 && len(c.pending) > 0 {
		for _, j := range c.pending {
			j.state = stateDone
			j.err = ErrNoWorkers
			c.failed++
			delete(c.byID, j.id)
			close(j.done)
		}
		c.pending = c.pending[:0]
		c.broadcast()
	}
	var overdue []*job
	for _, j := range c.byID {
		if j.state == stateLeased && now.After(j.deadline) {
			overdue = append(overdue, j)
		}
	}
	if len(overdue) == 0 {
		return
	}
	sort.Slice(overdue, func(a, b int) bool {
		if !overdue[a].deadline.Equal(overdue[b].deadline) {
			return overdue[a].deadline.Before(overdue[b].deadline)
		}
		return overdue[a].id < overdue[b].id
	})
	for i := len(overdue) - 1; i >= 0; i-- { // reverse: front-push preserves sorted order
		j := overdue[i]
		c.expired++
		if w, ok := c.workers[j.workerID]; ok {
			w.leased--
		}
		j.workerID = ""
		switch {
		case j.attempt >= c.cfg.MaxAttempts:
			j.state = stateDone
			j.err = fmt.Errorf("%w (%d leases lost)", ErrAttemptsExhausted, j.attempt)
			c.failed++
			delete(c.byID, j.id)
			close(j.done)
		case live == 0:
			j.state = stateDone
			j.err = ErrNoWorkers
			c.failed++
			delete(c.byID, j.id)
			close(j.done)
		default:
			j.state = statePending
			j.requeues++
			c.requeued++
			c.pending = append([]*job{j}, c.pending...)
		}
	}
	c.broadcast()
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	leased := 0
	for _, j := range c.byID {
		if j.state == stateLeased {
			leased++
		}
	}
	return Stats{
		WorkersRegistered: len(c.workers),
		WorkersLive:       c.liveWorkersLocked(time.Now()),
		Pending:           len(c.pending),
		Leased:            leased,
		LeasesGranted:     c.leasesGranted,
		Expired:           c.expired,
		Requeued:          c.requeued,
		Completed:         c.completed,
		Failed:            c.failed,
		StaleRejected:     c.staleRejected,
	}
}

// Drain stops admitting new jobs and waits (until ctx expires) for leased
// and pending jobs to finish; whatever remains is failed so no waiter stays
// blocked. Always followed by Close.
func (c *Coordinator) Drain(ctx context.Context) {
	c.mu.Lock()
	c.closed = true
	c.broadcast()
	c.mu.Unlock()

	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		n := len(c.byID)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		select {
		case <-ctx.Done():
			c.failRemaining()
			return
		case <-ticker.C:
		}
	}
}

// failRemaining fails every job still tracked — drain gave up waiting.
func (c *Coordinator) failRemaining() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, j := range c.byID {
		j.state = stateDone
		j.err = ErrClosed
		c.failed++
		delete(c.byID, id)
		close(j.done)
	}
	c.pending = nil
	c.broadcast()
}

// Close stops the expiry clock and fails any jobs still in flight. Safe to
// call more than once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		// Drain (or a prior Close) already sealed admission.
		c.mu.Unlock()
	} else {
		c.closed = true
		c.broadcast()
		c.mu.Unlock()
	}
	c.closeOnce.Do(func() { close(c.stopExpiry) })
	<-c.expiryDone
	c.failRemaining()
}
