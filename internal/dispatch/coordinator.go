// Package dispatch turns the simulation service into a horizontally
// scalable control plane, in the shape of coder's provisionerd protocol: a
// Coordinator owns a queue of opaque jobs, `centurion worker` daemons
// register and lease jobs over long-poll HTTP, heartbeat to keep their
// leases alive, stream progress back, and post results. A lease that
// outlives its TTL — a worker died, hung or partitioned — is deterministically
// requeued at the front of the queue for the next healthy worker, up to an
// attempt cap.
//
// Failure is made cheap rather than catastrophic (DESIGN.md §16): workers
// periodically post platform checkpoints, so a requeued job's next attempt
// resumes mid-run instead of from tick zero; a Journal makes the queue
// itself durable, so a coordinator restart replays pending and in-flight
// jobs instead of forgetting a sweep; and the Transport seam lets the chaos
// harness prove both properties under a hostile network.
//
// The package is payload-agnostic: jobs and results are byte slices, keyed
// by the caller's content-addressed spec keys, so the server layer stays the
// only place that knows what a run spec is.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Defaults applied by Config.withDefaults.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultPollWait    = 20 * time.Second
	DefaultMaxAttempts = 3
)

// CheckpointStore persists job checkpoints across coordinator restarts:
// the minimal slice of internal/store the coordinator needs, so the server
// layer can hand it the same durable backend (behind its circuit breaker)
// that results live in. Delete of an absent key must be a no-op.
type CheckpointStore interface {
	Get(key string) (val []byte, ok bool, err error)
	Put(key string, val []byte) error
	Delete(key string) error
}

// Config tunes the coordinator. Zero values select the defaults.
type Config struct {
	// LeaseTTL is how long a leased job may go without a heartbeat before
	// it is declared abandoned and requeued.
	LeaseTTL time.Duration
	// PollWait bounds how long a worker's lease long-poll blocks before
	// returning empty-handed.
	PollWait time.Duration
	// MaxAttempts caps how many times a job may be leased before the
	// coordinator gives up on remote execution and fails it (the server
	// layer then falls back to running it locally).
	MaxAttempts int
	// Clock overrides the coordinator's monotonic time source (a duration
	// since an arbitrary epoch). Nil selects time.Since of the construction
	// instant, which reads Go's monotonic clock: lease deadlines and
	// worker liveness are immune to wall-clock steps (NTP slew, VM pause
	// resync). Tests inject a manual clock to drive expiry deterministically.
	Clock func() time.Duration
	// Journal, when non-nil, makes job lifecycle transitions durable: every
	// enqueue/lease/requeue/complete/fail is appended (and fsynced) before
	// it is acknowledged, and NewCoordinator replays the journal's open
	// jobs — so a restart retries in-flight work instead of losing it. The
	// coordinator owns the journal once passed and closes it on Close.
	Journal *Journal
	// CheckpointStore, when non-nil, persists the latest committed
	// checkpoint per job key, so a job replayed from the journal resumes
	// from its last checkpoint instead of tick zero. Failures are
	// tolerated: a broken store only degrades resume granularity.
	CheckpointStore CheckpointStore
	// OrphanResult, when non-nil, receives the result of every replayed job
	// that completed without a waiter (its submitter died with the previous
	// process). The server wires this to the durable result store, so the
	// client's retry is answered without re-execution.
	OrphanResult func(key string, result []byte)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.PollWait <= 0 {
		c.PollWait = DefaultPollWait
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	return c
}

// ErrNoWorkers reports that no live worker is registered: the caller should
// execute locally instead of queueing a job nobody will lease.
var ErrNoWorkers = errors.New("dispatch: no live workers registered")

// ErrAttemptsExhausted reports that a job was leased MaxAttempts times
// without a completion — every worker that took it died or lost its lease.
var ErrAttemptsExhausted = errors.New("dispatch: lease attempts exhausted")

// ErrClosed reports an Execute on a closed or draining coordinator.
var ErrClosed = errors.New("dispatch: coordinator closed")

// RemoteError is an error the executing worker reported: the job ran and
// failed, so it must not be retried (remotely or locally) — the failure is
// deterministic.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "dispatch: remote execution failed: " + e.Msg }

// jobState is a dispatch job's position in the lease lifecycle.
type jobState int

const (
	statePending jobState = iota // queued, waiting for a lease
	stateLeased                  // held by a worker under a live lease
	stateDone                    // completed or failed; waiter notified
)

// ckptKeyPrefix namespaces job checkpoints in the shared durable store,
// apart from the result records keyed by bare canonical spec keys.
const ckptKeyPrefix = "ckpt/"

// job is one unit of remote work.
type job struct {
	id      string
	key     string
	payload []byte

	state    jobState
	workerID string        // leaseholder while stateLeased
	attempt  int           // incremented at each lease
	deadline time.Duration // lease expiry (monotonic clock) while stateLeased
	requeues int           // completed expiry→pending transitions

	// ckpt is the latest committed checkpoint of this job's execution and
	// ckptTick its monotonically increasing progress stamp; a re-lease ships
	// it so the next attempt resumes mid-run.
	ckpt     []byte
	ckptTick int64
	// orphan marks a journal-replayed job with no live waiter; restored
	// additionally marks that its checkpoint (if any) still lives only in
	// the CheckpointStore.
	orphan   bool
	restored bool

	onProgress func([]byte)

	done   chan struct{}
	result []byte
	err    error
}

// workerState tracks one registered worker daemon.
type workerState struct {
	id       string
	name     string
	slots    int
	seen     time.Duration // last register/lease/heartbeat/progress/complete (monotonic clock)
	leased   int           // currently held leases
	leasedOK uint64        // lifetime completions
}

// Lease is the worker-facing view of a leased job. Checkpoint, when present,
// is the latest committed checkpoint of a previous attempt: the worker
// resumes from it instead of starting over.
type Lease struct {
	JobID          string `json:"job_id"`
	Key            string `json:"key"`
	Payload        []byte `json:"payload"`
	Attempt        int    `json:"attempt"`
	Checkpoint     []byte `json:"checkpoint,omitempty"`
	CheckpointTick int64  `json:"checkpoint_tick,omitempty"`
}

// Stats is the coordinator snapshot surfaced by /healthz.
type Stats struct {
	WorkersRegistered int `json:"workers_registered"`
	WorkersLive       int `json:"workers_live"`
	Pending           int `json:"pending"`
	Leased            int `json:"leased"`

	LeasesGranted uint64 `json:"leases_granted"`
	Expired       uint64 `json:"expired"`
	Requeued      uint64 `json:"requeued"`
	Completed     uint64 `json:"completed"`
	Failed        uint64 `json:"failed"`
	StaleRejected uint64 `json:"stale_rejected"`

	// CheckpointsCommitted counts accepted job checkpoints; Resumes counts
	// leases granted carrying a prior attempt's checkpoint; JournalReplays
	// counts jobs restored from the journal at startup; JournalErrors
	// counts journal appends that failed (durability degraded, service
	// continued).
	CheckpointsCommitted uint64 `json:"checkpoints_committed"`
	Resumes              uint64 `json:"resumes"`
	JournalReplays       uint64 `json:"journal_replays"`
	JournalErrors        uint64 `json:"journal_errors,omitempty"`

	// Journal, when journaling is on, is the journal's own snapshot.
	Journal *JournalStats `json:"journal,omitempty"`
}

// Coordinator owns the dispatch queue, worker registry and lease clock.
type Coordinator struct {
	cfg   Config
	epoch time.Time
	clock func() time.Duration

	mu      sync.Mutex
	wake    chan struct{} // closed+replaced whenever pending work or state changes
	pending []*job        // FIFO; expired jobs requeue at the front
	byID    map[string]*job
	orphans map[string]*job // key → open replayed job awaiting adoption
	workers map[string]*workerState
	nextJob uint64
	nextWkr uint64
	closed  bool

	leasesGranted  uint64
	expired        uint64
	requeued       uint64
	completed      uint64
	failed         uint64
	staleRejected  uint64
	ckptsCommitted uint64
	resumes        uint64
	journalReplays uint64
	journalErrors  uint64

	stopExpiry chan struct{}
	expiryDone chan struct{}
	closeOnce  sync.Once
}

// NewCoordinator starts a coordinator and its lease-expiry clock. With
// cfg.Journal set, the journal's open jobs are replayed first: pending jobs
// rejoin the queue and leased jobs keep their worker and attempt under a
// fresh TTL — a worker that survived the restart just keeps heartbeating and
// completes as if nothing happened. Replayed jobs have no waiter; a new
// Execute for the same key adopts the open job instead of enqueueing a
// duplicate, and unadopted results flow to cfg.OrphanResult.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:        cfg.withDefaults(),
		epoch:      time.Now(),
		wake:       make(chan struct{}),
		byID:       make(map[string]*job),
		orphans:    make(map[string]*job),
		workers:    make(map[string]*workerState),
		stopExpiry: make(chan struct{}),
		expiryDone: make(chan struct{}),
	}
	c.clock = c.cfg.Clock
	if c.clock == nil {
		// time.Since reads the monotonic clock: wall steps cannot move it.
		c.clock = func() time.Duration { return time.Since(c.epoch) }
	}
	if jl := c.cfg.Journal; jl != nil {
		now := c.clock()
		for _, jj := range jl.Pending() {
			j := &job{
				id:       jj.ID,
				key:      jj.Key,
				payload:  jj.Payload,
				attempt:  jj.Attempt,
				orphan:   true,
				restored: true,
				done:     make(chan struct{}),
			}
			if jj.WorkerID != "" {
				// The lease survives the restart: same holder, same attempt,
				// fresh TTL. A worker daemon that outlived us keeps
				// heartbeating under its old identity and completes normally;
				// a dead one times out and the job requeues with the
				// checkpoint it last committed.
				j.state = stateLeased
				j.workerID = jj.WorkerID
				j.deadline = now + c.cfg.LeaseTTL
			} else {
				c.pending = append(c.pending, j)
			}
			c.byID[j.id] = j
			c.orphans[j.key] = j
			c.journalReplays++
		}
		if n := jl.MaxJobID(); n > c.nextJob {
			c.nextJob = n
		}
	}
	go c.expiryLoop()
	return c
}

// journal appends a lifecycle record, tolerating failure: a full disk
// degrades durability, it must not take the control plane down. Callers
// hold c.mu.
func (c *Coordinator) journal(append func(*Journal) error) {
	if c.cfg.Journal == nil {
		return
	}
	if err := append(c.cfg.Journal); err != nil {
		c.journalErrors++
	}
}

// broadcast wakes every long-poller and waiter. Callers hold c.mu.
func (c *Coordinator) broadcast() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// livenessWindow is how long a silent worker still counts as live: it must
// cover a full idle long-poll plus scheduling slack.
func (c *Coordinator) livenessWindow() time.Duration {
	return 2 * (c.cfg.PollWait + c.cfg.LeaseTTL)
}

// liveWorkersLocked counts workers seen within the liveness window.
func (c *Coordinator) liveWorkersLocked(now time.Duration) int {
	n := 0
	for _, w := range c.workers {
		if now-w.seen <= c.livenessWindow() {
			n++
		}
	}
	return n
}

// Register adds (or re-adds) a worker daemon and returns its ID plus the
// lease timing contract it must honour.
func (c *Coordinator) Register(name string, slots int) (id string, leaseTTL, pollWait time.Duration, err error) {
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", 0, 0, ErrClosed
	}
	c.nextWkr++
	id = fmt.Sprintf("w-%d", c.nextWkr)
	c.workers[id] = &workerState{id: id, name: name, slots: slots, seen: c.clock()}
	c.broadcast() // an Execute blocked on ErrNoWorkers re-checks… (callers poll, see Execute)
	return id, c.cfg.LeaseTTL, c.cfg.PollWait, nil
}

// Deregister removes a worker that is shutting down gracefully, so pending
// jobs stop waiting for it immediately instead of until its liveness window
// lapses. Leases the worker still holds (it drains them before calling
// this) stay valid: completion is keyed on the (job, worker, attempt)
// triple, not registry membership.
func (c *Coordinator) Deregister(workerID string) {
	c.mu.Lock()
	delete(c.workers, workerID)
	c.mu.Unlock()
	// Wake the expiry loop's no-worker sweep promptly rather than waiting
	// for its next tick: fail still-pending jobs over to local fallback.
	c.expireOverdue(c.clock())
}

// Execute queues one job for remote execution and blocks until a worker
// completes it, the attempt cap trips, or ctx is cancelled. onProgress (may
// be nil) receives raw progress payloads as workers post them.
//
// A journal-replayed open job with the same key is adopted instead of
// enqueued twice: the caller becomes the orphan's waiter, so a client
// retrying across a coordinator restart lands on the same in-flight work.
//
// With no live worker registered it fails fast with ErrNoWorkers so the
// caller can run the job in-process instead — that is what lets a
// serve-only deployment behave exactly as before this subsystem existed.
func (c *Coordinator) Execute(ctx context.Context, key string, payload []byte, onProgress func([]byte)) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	var j *job
	if o, ok := c.orphans[key]; ok {
		// Adopt: the retry after a restart attaches to the replayed job.
		delete(c.orphans, key)
		o.orphan = false
		o.onProgress = onProgress
		j = o
	} else {
		if c.liveWorkersLocked(c.clock()) == 0 {
			c.mu.Unlock()
			return nil, ErrNoWorkers
		}
		c.nextJob++
		j = &job{
			id:         fmt.Sprintf("dj-%d", c.nextJob),
			key:        key,
			payload:    payload,
			onProgress: onProgress,
			done:       make(chan struct{}),
		}
		c.journal(func(l *Journal) error { return l.Enqueue(j.id, key, payload) })
		c.byID[j.id] = j
		c.pending = append(c.pending, j)
		c.broadcast()
	}
	c.mu.Unlock()

	select {
	case <-j.done:
		return j.result, j.err
	case <-ctx.Done():
		c.abandon(j)
		return nil, ctx.Err()
	}
}

// abandon withdraws a job whose waiter gave up: a pending job is removed
// outright; a leased one is left to finish (its result is discarded on
// completion because the job is no longer in byID's waiting set).
func (c *Coordinator) abandon(j *job) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-j.done:
		return // completed in the race window
	default:
	}
	c.journal(func(l *Journal) error { return l.Fail(j.id) })
	delete(c.byID, j.id)
	for i, p := range c.pending {
		if p == j {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	j.err = context.Canceled
	close(j.done)
}

// Lease blocks up to wait (capped by the configured PollWait) for a pending
// job and leases it to worker id. ok=false means the poll timed out empty —
// the worker should immediately poll again.
func (c *Coordinator) Lease(ctx context.Context, workerID string, wait time.Duration) (Lease, bool, error) {
	if wait <= 0 || wait > c.cfg.PollWait {
		wait = c.cfg.PollWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return Lease{}, false, ErrClosed
		}
		w, ok := c.workers[workerID]
		if !ok {
			c.mu.Unlock()
			return Lease{}, false, fmt.Errorf("dispatch: unknown worker %q", workerID)
		}
		now := c.clock()
		w.seen = now
		if len(c.pending) > 0 && w.leased < w.slots {
			j := c.pending[0]
			c.pending = c.pending[1:]
			j.state = stateLeased
			j.workerID = workerID
			j.attempt++
			j.deadline = now + c.cfg.LeaseTTL
			w.leased++
			c.leasesGranted++
			if j.ckpt == nil && j.restored {
				// First lease since a journal replay: the latest committed
				// checkpoint (if any) lives only in the durable store.
				if st := c.cfg.CheckpointStore; st != nil {
					if v, ok, err := st.Get(ckptKeyPrefix + j.key); err == nil && ok {
						j.ckpt = v
					}
				}
				j.restored = false
			}
			if j.ckpt != nil {
				c.resumes++
			}
			c.journal(func(l *Journal) error { return l.Lease(j.id, workerID, j.attempt) })
			lease := Lease{
				JobID:          j.id,
				Key:            j.key,
				Payload:        j.payload,
				Attempt:        j.attempt,
				Checkpoint:     j.ckpt,
				CheckpointTick: j.ckptTick,
			}
			c.mu.Unlock()
			return lease, true, nil
		}
		wakeCh := c.wake
		c.mu.Unlock()
		select {
		case <-wakeCh:
		case <-timer.C:
			return Lease{}, false, nil
		case <-ctx.Done():
			return Lease{}, false, ctx.Err()
		}
	}
}

// leaseHolder validates that worker id still holds job jobID at the given
// attempt. Callers hold c.mu. The attempt check is what makes a worker that
// lost its lease (expiry requeued the job, possibly to someone else) unable
// to interfere: its messages carry a stale attempt.
func (c *Coordinator) leaseHolder(jobID, workerID string, attempt int) (*job, error) {
	j, ok := c.byID[jobID]
	if !ok {
		// A finished job is deleted from byID, so a worker that lost its
		// lease and posts after the replacement completed lands here.
		c.staleRejected++
		return nil, fmt.Errorf("dispatch: unknown job %q", jobID)
	}
	if j.state != stateLeased || j.workerID != workerID || j.attempt != attempt {
		c.staleRejected++
		return nil, fmt.Errorf("dispatch: job %s is not leased to %s at attempt %d", jobID, workerID, attempt)
	}
	return j, nil
}

// Heartbeat extends the lease on jobID. A worker whose heartbeat is
// rejected must abandon the job: its lease expired and the job belongs to
// the queue (or another worker) now.
func (c *Coordinator) Heartbeat(jobID, workerID string, attempt int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		return err
	}
	now := c.clock()
	j.deadline = now + c.cfg.LeaseTTL
	if w, ok := c.workers[workerID]; ok {
		w.seen = now
	}
	return nil
}

// Progress forwards a raw progress payload to the job's waiter. Stale
// leases are rejected exactly like heartbeats.
func (c *Coordinator) Progress(jobID, workerID string, attempt int, payload []byte) error {
	c.mu.Lock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	now := c.clock()
	j.deadline = now + c.cfg.LeaseTTL // progress is proof of life
	if w, ok := c.workers[workerID]; ok {
		w.seen = now
	}
	onProgress := j.onProgress
	c.mu.Unlock()
	// Fan out without the coordinator lock: the server's stream publisher
	// has its own locking and must not serialise the whole control plane.
	if onProgress != nil {
		onProgress(payload)
	}
	return nil
}

// Checkpoint commits a mid-run checkpoint for jobID: fenced exactly like a
// heartbeat (only the live attempt may commit), with tick enforcing forward
// progress so a delayed or duplicated delivery of an older checkpoint can
// never roll a newer one back. An accepted checkpoint extends the lease —
// it is the strongest proof of life there is — and is mirrored to the
// durable CheckpointStore so resume survives a coordinator restart.
func (c *Coordinator) Checkpoint(jobID, workerID string, attempt int, tick int64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("dispatch: empty checkpoint for job %q", jobID)
	}
	c.mu.Lock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if j.ckpt != nil && tick <= j.ckptTick {
		// A duplicate (or reordered older) delivery of an already-committed
		// checkpoint: idempotently accepted, nothing rolls back.
		c.mu.Unlock()
		return nil
	}
	j.ckpt = append([]byte(nil), data...)
	j.ckptTick = tick
	now := c.clock()
	j.deadline = now + c.cfg.LeaseTTL
	if w, ok := c.workers[workerID]; ok {
		w.seen = now
	}
	c.ckptsCommitted++
	key := j.key
	st := c.cfg.CheckpointStore
	c.mu.Unlock()
	if st != nil {
		// Best-effort durability outside the lock: a failed put only means a
		// post-restart resume falls back further (or to tick zero).
		_ = st.Put(ckptKeyPrefix+key, data)
	}
	return nil
}

// Complete finishes jobID with a result payload or a worker-reported
// execution error. A duplicate or post-expiry Complete is rejected (the
// lease-holder check fails) so exactly one attempt's result is delivered.
func (c *Coordinator) Complete(jobID, workerID string, attempt int, result []byte, execErr string) error {
	c.mu.Lock()
	j, err := c.leaseHolder(jobID, workerID, attempt)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	if w, ok := c.workers[workerID]; ok {
		w.seen = c.clock()
		w.leased--
		w.leasedOK++
	}
	j.state = stateDone
	if execErr != "" {
		j.err = &RemoteError{Msg: execErr}
		c.failed++
		c.journal(func(l *Journal) error { return l.Fail(j.id) })
	} else {
		j.result = result
		c.completed++
		c.journal(func(l *Journal) error { return l.Complete(j.id) })
	}
	hadCkpt := j.ckpt != nil || j.restored
	orphanSink := (func(string, []byte))(nil)
	if j.orphan {
		delete(c.orphans, j.key)
		orphanSink = c.cfg.OrphanResult
	}
	key := j.key
	st := c.cfg.CheckpointStore
	delete(c.byID, j.id)
	close(j.done)
	c.broadcast()
	c.mu.Unlock()

	if st != nil && hadCkpt {
		// The job is done; its checkpoint is dead weight in the store.
		_ = st.Delete(ckptKeyPrefix + key)
	}
	if orphanSink != nil && execErr == "" {
		// A replayed job finished with no waiter: hand the result to the
		// server's sink (the durable result store) so the client's retry is
		// answered without re-execution.
		orphanSink(key, result)
	}
	return nil
}

// expiryLoop is the lease clock: it scans for overdue leases and requeues
// (or fails) them. The scan interval tracks the TTL so tests with
// millisecond leases expire promptly without a hot loop in production.
func (c *Coordinator) expiryLoop() {
	defer close(c.expiryDone)
	interval := c.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopExpiry:
			return
		case <-ticker.C:
			c.expireOverdue(c.clock())
		}
	}
}

// expireOverdue requeues every lease whose deadline passed. Expired jobs
// rejoin the queue at the front, ordered by (deadline, id) so recovery
// order is deterministic; a job out of attempts fails instead, and a job
// with no live worker left to retry it fails with ErrNoWorkers so its
// waiter can fall back to local execution rather than wait forever.
// Orphans (journal-replayed jobs with no waiter) are exempt from the
// no-worker fast-fail — there is nobody to strand, and failing them would
// lose the very jobs the journal preserved.
func (c *Coordinator) expireOverdue(now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	live := c.liveWorkersLocked(now)
	// A queue with nobody left to serve it must not strand its waiters:
	// fail pending jobs with ErrNoWorkers so they run locally instead.
	if live == 0 && len(c.pending) > 0 {
		kept := c.pending[:0]
		for _, j := range c.pending {
			if j.orphan {
				kept = append(kept, j)
				continue
			}
			j.state = stateDone
			j.err = ErrNoWorkers
			c.failed++
			c.journal(func(l *Journal) error { return l.Fail(j.id) })
			delete(c.byID, j.id)
			close(j.done)
		}
		c.pending = kept
		c.broadcast()
	}
	var overdue []*job
	for _, j := range c.byID {
		if j.state == stateLeased && now > j.deadline {
			overdue = append(overdue, j)
		}
	}
	if len(overdue) == 0 {
		return
	}
	sort.Slice(overdue, func(a, b int) bool {
		if overdue[a].deadline != overdue[b].deadline {
			return overdue[a].deadline < overdue[b].deadline
		}
		return overdue[a].id < overdue[b].id
	})
	for i := len(overdue) - 1; i >= 0; i-- { // reverse: front-push preserves sorted order
		j := overdue[i]
		c.expired++
		if w, ok := c.workers[j.workerID]; ok {
			w.leased--
		}
		j.workerID = ""
		switch {
		case j.attempt >= c.cfg.MaxAttempts:
			j.state = stateDone
			j.err = fmt.Errorf("%w (%d leases lost)", ErrAttemptsExhausted, j.attempt)
			c.failed++
			c.journal(func(l *Journal) error { return l.Fail(j.id) })
			if j.orphan {
				delete(c.orphans, j.key)
			}
			delete(c.byID, j.id)
			close(j.done)
		case live == 0 && !j.orphan:
			j.state = stateDone
			j.err = ErrNoWorkers
			c.failed++
			c.journal(func(l *Journal) error { return l.Fail(j.id) })
			delete(c.byID, j.id)
			close(j.done)
		default:
			j.state = statePending
			j.requeues++
			c.requeued++
			c.journal(func(l *Journal) error { return l.Requeue(j.id) })
			c.pending = append([]*job{j}, c.pending...)
		}
	}
	c.broadcast()
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	leased := 0
	for _, j := range c.byID {
		if j.state == stateLeased {
			leased++
		}
	}
	st := Stats{
		WorkersRegistered:    len(c.workers),
		WorkersLive:          c.liveWorkersLocked(c.clock()),
		Pending:              len(c.pending),
		Leased:               leased,
		LeasesGranted:        c.leasesGranted,
		Expired:              c.expired,
		Requeued:             c.requeued,
		Completed:            c.completed,
		Failed:               c.failed,
		StaleRejected:        c.staleRejected,
		CheckpointsCommitted: c.ckptsCommitted,
		Resumes:              c.resumes,
		JournalReplays:       c.journalReplays,
		JournalErrors:        c.journalErrors,
	}
	if c.cfg.Journal != nil {
		js := c.cfg.Journal.Stats()
		st.Journal = &js
	}
	return st
}

// Drain stops admitting new jobs and waits (until ctx expires) for leased
// and pending jobs to finish; whatever remains is failed so no waiter stays
// blocked. Always followed by Close.
func (c *Coordinator) Drain(ctx context.Context) {
	c.mu.Lock()
	c.closed = true
	c.broadcast()
	c.mu.Unlock()

	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		n := len(c.byID)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		select {
		case <-ctx.Done():
			c.failRemaining()
			return
		case <-ticker.C:
		}
	}
}

// failRemaining fails every job still tracked — drain gave up waiting.
// Orphans are released in memory but NOT journaled as failed: their
// submitters are gone either way, and leaving them open in the journal
// means the next start retries them instead of losing them.
func (c *Coordinator) failRemaining() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, j := range c.byID {
		j.state = stateDone
		j.err = ErrClosed
		c.failed++
		if !j.orphan {
			c.journal(func(l *Journal) error { return l.Fail(j.id) })
		} else {
			delete(c.orphans, j.key)
		}
		delete(c.byID, id)
		close(j.done)
	}
	c.pending = nil
	c.broadcast()
}

// Close stops the expiry clock and fails any jobs still in flight. Safe to
// call more than once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		// Drain (or a prior Close) already sealed admission.
		c.mu.Unlock()
	} else {
		c.closed = true
		c.broadcast()
		c.mu.Unlock()
	}
	c.closeOnce.Do(func() { close(c.stopExpiry) })
	<-c.expiryDone
	c.failRemaining()
	if c.cfg.Journal != nil {
		_ = c.cfg.Journal.Close()
	}
}

// CrashForTest simulates a coordinator process crash for recovery tests:
// the expiry clock stops, every waiter is released with ErrClosed, and —
// unlike Close — no terminal records are journaled, so the journal on disk
// is exactly what a real crash would leave behind. The journal file is
// closed so a successor can reopen the same path.
func (c *Coordinator) CrashForTest() {
	c.mu.Lock()
	c.closed = true
	c.broadcast()
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.stopExpiry) })
	<-c.expiryDone
	c.mu.Lock()
	for id, j := range c.byID {
		j.state = stateDone
		j.err = ErrClosed
		delete(c.byID, id)
		close(j.done)
	}
	c.pending = nil
	for k := range c.orphans {
		delete(c.orphans, k)
	}
	c.mu.Unlock()
	if c.cfg.Journal != nil {
		_ = c.cfg.Journal.Close()
	}
}
