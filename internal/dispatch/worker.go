package dispatch

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"centurion/internal/sim"
)

// ExecuteFunc runs one leased job's payload and returns the result payload,
// or a non-empty errMsg when the job itself failed deterministically.
// progress may be called with intermediate sample batches; ctx is cancelled
// when the lease is lost or the worker is hard-stopped, at which point the
// function should return promptly (its result will be discarded).
type ExecuteFunc func(ctx context.Context, key string, payload []byte, progress func(samples []byte)) (result []byte, errMsg string)

// ResumableJob is the worker-side view of a leased job under the
// checkpoint-resume protocol (DESIGN.md §16). Checkpoint, when non-nil, is
// the latest checkpoint a previous attempt committed: the executor restores
// it and resumes instead of starting from tick zero.
type ResumableJob struct {
	Key     string
	Payload []byte
	Attempt int
	// Checkpoint and CheckpointTick describe the resume point (nil/0 for a
	// fresh start).
	Checkpoint     []byte
	CheckpointTick int64
	// Progress forwards an intermediate sample batch to the submitter.
	Progress func(samples []byte)
	// Commit ships an encoded checkpoint at progress stamp tick to the
	// coordinator. Ticks must be strictly increasing within a run. Failures
	// are safe to ignore — a missed commit only widens the window of work a
	// later attempt repeats — except that a coordinator-confirmed fencing
	// rejection also cancels the job's ctx (the lease is gone).
	Commit func(ctx context.Context, tick int64, data []byte) error
}

// ExecuteResumableFunc is ExecuteFunc for checkpoint-aware executors. When
// WorkerOptions.ExecuteResumable is set it is used for every job, and
// WorkerOptions.Execute may be nil.
type ExecuteResumableFunc func(ctx context.Context, job ResumableJob) (result []byte, errMsg string)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name labels the worker in the coordinator's registry.
	Name string
	// Slots is how many jobs the worker leases concurrently (default 1).
	Slots int
	// Execute runs one job. Required unless ExecuteResumable is set.
	Execute ExecuteFunc
	// ExecuteResumable, when set, runs jobs with checkpoint-resume support
	// and takes precedence over Execute.
	ExecuteResumable ExecuteResumableFunc
	// Client is the HTTP client (default a fresh one; it must not set a
	// global timeout, long-polls outlive typical timeouts).
	Client *http.Client
	// Transport overrides how RPCs reach the coordinator (default: HTTP
	// against Coordinator using Client). The chaos harness injects a
	// hostile network here.
	Transport Transport
	// Logf receives operational messages (default: discarded).
	Logf func(format string, args ...any)
	// HardStop, when closed, aborts everything immediately: in-flight jobs
	// are abandoned without completion, so their leases expire at the
	// coordinator and the work is requeued — the crash path, used by tests
	// to kill a worker mid-job. Graceful shutdown is the ctx instead:
	// cancelling RunWorker's ctx stops leasing but drains in-flight jobs.
	HardStop <-chan struct{}
	// MaxBackoff caps the retry backoff on coordinator loss (default 5s).
	MaxBackoff time.Duration
	// BackoffSeed seeds the deterministic jitter spread over every retry
	// backoff, so a fleet of workers bounced by one coordinator restart
	// de-synchronises instead of thundering back in lockstep. Zero derives
	// the seed from Name, which already differs per worker.
	BackoffSeed uint64
}

// registration is the identity the coordinator handed us.
type registration struct {
	id   string
	ttl  time.Duration
	poll time.Duration
	gen  uint64 // bumped on every (re-)registration
}

// worker is the daemon's run state.
type worker struct {
	o    WorkerOptions
	tr   Transport
	logf func(string, ...any)

	mu  sync.Mutex
	reg registration

	rngMu sync.Mutex
	rng   sim.RNG // jitter source, shared by every retry site
}

// RunWorker registers against the coordinator and executes leased jobs
// until ctx is cancelled (drain: stop leasing, finish in-flight jobs) or
// HardStop is closed (abandon everything). It retries with capped
// exponential backoff across coordinator restarts and network loss, and
// re-registers when the coordinator no longer knows it. It returns nil on a
// clean drain.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if o.Execute == nil && o.ExecuteResumable == nil {
		return fmt.Errorf("dispatch: WorkerOptions.Execute or ExecuteResumable is required")
	}
	if o.Slots < 1 {
		o.Slots = 1
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	seed := o.BackoffSeed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(o.Name))
		seed = h.Sum64()
	}
	w := &worker{o: o, tr: o.Transport, logf: o.Logf, rng: *sim.NewRNG(seed)}
	if w.tr == nil {
		w.tr = NewHTTPTransport(o.Coordinator, o.Client)
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}

	// hardCtx dies on HardStop only; leaseCtx dies on either signal.
	hardCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	leaseCtx, leaseCancel := context.WithCancel(ctx)
	defer leaseCancel()
	if o.HardStop != nil {
		go func() {
			select {
			case <-o.HardStop:
				hardCancel()
				leaseCancel()
			case <-hardCtx.Done():
			}
		}()
	}

	if err := w.register(leaseCtx); err != nil {
		return err
	}

	var wg sync.WaitGroup
	for i := 0; i < o.Slots; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			w.slotLoop(leaseCtx, hardCtx, slot)
		}(i)
	}
	wg.Wait()
	// Graceful drain (not a hard stop): tell the coordinator we are gone so
	// queued jobs stop waiting on our liveness window and fail over to local
	// execution immediately. Best-effort — the window covers a lost goodbye.
	if hardCtx.Err() == nil {
		w.mu.Lock()
		id := w.reg.id
		w.mu.Unlock()
		byeCtx, byeCancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, _ = w.post(byeCtx, "/v1/workers/"+id+"/deregister", struct{}{}, nil)
		byeCancel()
		w.logf("deregistered %s", id)
	}
	return nil
}

// jitter spreads a backoff delay uniformly over [d/2, 3d/2) using the
// worker's seeded RNG: deterministic per worker, different across a fleet.
func (w *worker) jitter(d time.Duration) time.Duration {
	w.rngMu.Lock()
	f := w.rng.Float64()
	w.rngMu.Unlock()
	return d/2 + time.Duration(f*float64(d))
}

// register obtains a worker ID, retrying with backoff until ctx dies.
func (w *worker) register(ctx context.Context) error {
	backoff := 50 * time.Millisecond
	for {
		var resp registerResponse
		status, err := w.post(ctx, "/v1/workers/register", registerRequest{Name: w.o.Name, Slots: w.o.Slots}, &resp)
		if err == nil && status == http.StatusOK && resp.WorkerID != "" {
			w.mu.Lock()
			w.reg = registration{
				id:   resp.WorkerID,
				ttl:  time.Duration(resp.LeaseTTLMs) * time.Millisecond,
				poll: time.Duration(resp.PollWaitMs) * time.Millisecond,
				gen:  w.reg.gen + 1,
			}
			w.mu.Unlock()
			w.logf("registered as %s (lease ttl %s)", resp.WorkerID, time.Duration(resp.LeaseTTLMs)*time.Millisecond)
			return nil
		}
		if err == nil {
			err = fmt.Errorf("register returned status %d", status)
		}
		w.logf("registration failed (%v); retrying in %s", err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.jitter(backoff)):
		}
		if backoff *= 2; backoff > w.o.MaxBackoff {
			backoff = w.o.MaxBackoff
		}
	}
}

// reRegister refreshes a registration the coordinator lost (it restarted).
// Only the first slot to notice re-registers; the rest reuse the new
// identity.
func (w *worker) reRegister(ctx context.Context, seenGen uint64) error {
	w.mu.Lock()
	current := w.reg.gen
	w.mu.Unlock()
	if current != seenGen {
		return nil // someone else already re-registered
	}
	return w.register(ctx)
}

// slotLoop is one lease slot: long-poll for a job, run it, repeat.
func (w *worker) slotLoop(leaseCtx, hardCtx context.Context, slot int) {
	backoff := 50 * time.Millisecond
	for {
		if leaseCtx.Err() != nil {
			return
		}
		w.mu.Lock()
		reg := w.reg
		w.mu.Unlock()

		var lease Lease
		// The poll's own timeout bounds a coordinator that accepted the
		// connection but never answers.
		pollCtx, pollCancel := context.WithTimeout(leaseCtx, reg.poll+10*time.Second)
		status, err := w.post(pollCtx, "/v1/workers/"+reg.id+"/lease", leaseRequest{WaitMs: reg.poll.Milliseconds()}, &lease)
		pollCancel()
		switch {
		case leaseCtx.Err() != nil:
			return
		case err != nil || status == http.StatusServiceUnavailable:
			// Coordinator down or draining: back off, then try to
			// re-register (it may have restarted with an empty registry).
			w.logf("lease poll failed (status %d, err %v); backing off %s", status, err, backoff)
			select {
			case <-leaseCtx.Done():
				return
			case <-time.After(w.jitter(backoff)):
			}
			if backoff *= 2; backoff > w.o.MaxBackoff {
				backoff = w.o.MaxBackoff
			}
			if err := w.reRegister(leaseCtx, reg.gen); err != nil {
				return
			}
			continue
		case status == http.StatusNotFound:
			// The coordinator does not know us any more: re-register.
			if err := w.reRegister(leaseCtx, reg.gen); err != nil {
				return
			}
			continue
		case status == http.StatusNoContent:
			backoff = 50 * time.Millisecond
			continue
		case status != http.StatusOK:
			w.logf("unexpected lease status %d; backing off %s", status, backoff)
			select {
			case <-leaseCtx.Done():
				return
			case <-time.After(w.jitter(backoff)):
			}
			if backoff *= 2; backoff > w.o.MaxBackoff {
				backoff = w.o.MaxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		w.runJob(hardCtx, reg, lease, slot)
	}
}

// runJob executes one leased job end to end: heartbeats at TTL/3, progress
// forwarding, completion with retry. Jobs run under hardCtx so a graceful
// drain (leaseCtx cancelled) still finishes them, while a hard stop
// abandons them mid-flight — the lease then expires and the coordinator
// requeues the work.
func (w *worker) runJob(hardCtx context.Context, reg registration, lease Lease, slot int) {
	jobCtx, cancel := context.WithCancel(hardCtx)
	defer cancel()

	w.logf("slot %d: leased %s (attempt %d, key %.12s…)", slot, lease.JobID, lease.Attempt, lease.Key)
	base := "/v1/jobs/" + lease.JobID
	auth := jobPost{WorkerID: reg.id, Attempt: lease.Attempt}

	// Heartbeat at a third of the TTL: two beats may be lost before the
	// lease dies. Within each beat, transient delivery failures are retried
	// a few times on a short fuse — only a coordinator-confirmed fencing
	// rejection (409/404: the lease really is gone) abandons the attempt; a
	// flaky network never does on its own.
	var leaseLost atomic.Bool
	hbInterval := reg.ttl / 3
	if hbInterval < 5*time.Millisecond {
		hbInterval = 5 * time.Millisecond
	}
	retryGap := hbInterval / 8
	if retryGap < time.Millisecond {
		retryGap = time.Millisecond
	}
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		ticker := time.NewTicker(hbInterval)
		defer ticker.Stop()
		for {
			select {
			case <-jobCtx.Done():
				return
			case <-ticker.C:
				var status int
				var err error
				for try := 0; try < 4; try++ {
					status, err = w.post(jobCtx, base+"/heartbeat", auth, nil)
					if err == nil || jobCtx.Err() != nil {
						break
					}
					// Delivery failed; retry inside this beat's budget.
					select {
					case <-jobCtx.Done():
						return
					case <-time.After(w.jitter(retryGap)):
					}
				}
				if err == nil && (status == http.StatusConflict || status == http.StatusNotFound) {
					w.logf("slot %d: lease on %s lost; abandoning", slot, lease.JobID)
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	progress := func(samples []byte) {
		p := auth
		p.Samples = samples
		status, err := w.post(jobCtx, base+"/progress", p, nil)
		if err == nil && (status == http.StatusConflict || status == http.StatusNotFound) {
			leaseLost.Store(true)
			cancel() // lease lost mid-run
		}
	}

	var result []byte
	var execErr string
	if w.o.ExecuteResumable != nil {
		commit := func(cctx context.Context, tick int64, data []byte) error {
			p := auth
			p.Tick = tick
			p.Checkpoint = data
			status, err := w.post(cctx, base+"/checkpoint", p, nil)
			if err != nil {
				return err
			}
			if status == http.StatusConflict || status == http.StatusNotFound {
				// Coordinator-confirmed: this attempt is fenced off.
				w.logf("slot %d: checkpoint for %s rejected; lease lost", slot, lease.JobID)
				leaseLost.Store(true)
				cancel()
				return fmt.Errorf("dispatch: checkpoint rejected with status %d", status)
			}
			return nil
		}
		result, execErr = w.o.ExecuteResumable(jobCtx, ResumableJob{
			Key:            lease.Key,
			Payload:        lease.Payload,
			Attempt:        lease.Attempt,
			Checkpoint:     lease.Checkpoint,
			CheckpointTick: lease.CheckpointTick,
			Progress:       progress,
			Commit:         commit,
		})
	} else {
		result, execErr = w.o.Execute(jobCtx, lease.Key, lease.Payload, progress)
	}
	cancel()
	hbWG.Wait()

	if hardCtx.Err() != nil {
		// Hard-stopped: abandon without completing (the crash path).
		return
	}
	if leaseLost.Load() {
		// The lease was lost mid-run; any completion would be rejected as
		// stale. Skip the round trip.
		return
	}

	done := auth
	done.Result = result
	done.Error = execErr
	// Completion retries ride out a brief coordinator blip; if the lease
	// expires meanwhile the 409 tells us the work was requeued elsewhere.
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		status, err := w.post(context.Background(), base+"/complete", done, nil)
		switch {
		case err == nil && status == http.StatusNoContent:
			w.logf("slot %d: completed %s", slot, lease.JobID)
			return
		case err == nil && (status == http.StatusConflict || status == http.StatusNotFound):
			w.logf("slot %d: completion of %s rejected as stale", slot, lease.JobID)
			return
		}
		select {
		case <-hardCtx.Done():
			return
		case <-time.After(w.jitter(backoff)):
		}
		if backoff *= 2; backoff > w.o.MaxBackoff {
			backoff = w.o.MaxBackoff
		}
	}
	w.logf("slot %d: could not report completion of %s; lease will expire", slot, lease.JobID)
}

// post sends one RPC to the coordinator over the worker's Transport.
func (w *worker) post(ctx context.Context, path string, body, out any) (int, error) {
	return w.tr.Post(ctx, path, body, out)
}
