// Package taskgraph models the application task graphs that the Centurion
// platform schedules across its many-core fabric, along with the static task
// mappers used as baselines by the paper's experiments.
//
// The central instance is the fork–join graph of the paper's Figure 3: a
// source task (task 1) fans out to three parallel workers (task 2) whose
// results join at a sink (task 3), i.e. a 1:3:1 ratio. The graph model is
// deliberately general — arbitrary DAGs with per-edge fan-out — so the same
// machinery supports the additional workloads exercised by the examples.
package taskgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync/atomic"
)

// TaskID identifies a task class within a graph. Task IDs are small positive
// integers; 0 means "no task" (an idle node).
type TaskID int

// None is the TaskID of an idle node.
const None TaskID = 0

// Edge is a directed dependency between two task classes. Width is the
// fan-out: how many packets a single completed unit of From produces for To.
type Edge struct {
	From, To TaskID
	Width    int
}

// Task describes one task class in a graph.
type Task struct {
	ID TaskID
	// Name is a human-readable label used by traces and table renderers.
	Name string
	// Ratio is the relative share of nodes the paper's heuristic mapping
	// assigns to this task (the fork–join graph uses 1:3:1).
	Ratio int
	// ProcTicks is the processing latency of one packet of this task on a
	// processing element running at full frequency.
	ProcTicks int
	// GenPeriod is non-zero only for source tasks: the tick interval between
	// generated work items (the paper's task 1 emits 1 packet every 4 ms).
	GenPeriod int
}

// Graph is a directed acyclic task graph.
type Graph struct {
	Name  string
	tasks map[TaskID]*Task
	edges []Edge
	order []TaskID // topological order, computed by Validate

	// memo caches the derived adjacency and classification queries that sit
	// on the simulator's per-packet hot paths (Successors on every emission,
	// JoinWidth on every join arrival). It is built lazily on first use,
	// invalidated by AddTask/AddEdge, and swapped atomically so independent
	// runs sharing one immutable graph (experiments.RunMany) stay race-free.
	memo atomic.Pointer[graphMemo]
}

// graphMemo holds the precomputed query results, indexed densely by TaskID.
type graphMemo struct {
	succ     [][]Edge // outgoing edges sorted by destination
	pred     [][]Edge // incoming edges sorted by source
	isSource []bool
	isSink   []bool
	joinW    []int // packets of one instance a join waits for (min 1)
	arrivals []int // raw per-instance arrival counts
	ids      []TaskID
	byID     []*Task // dense TaskID → *Task (nil for unregistered IDs)
	sources  []TaskID
	sinks    []TaskID
}

// memoized returns the derived-query cache, building it on first use.
func (g *Graph) memoized() *graphMemo {
	if m := g.memo.Load(); m != nil {
		return m
	}
	n := int(g.MaxTaskID()) + 1
	for _, e := range g.edges {
		// Size for unvalidated graphs whose edges mention unregistered IDs;
		// Validate rejects them, but the accessors must not panic first.
		if int(e.From) >= n {
			n = int(e.From) + 1
		}
		if int(e.To) >= n {
			n = int(e.To) + 1
		}
	}
	m := &graphMemo{
		succ:     make([][]Edge, n),
		pred:     make([][]Edge, n),
		isSource: make([]bool, n),
		isSink:   make([]bool, n),
		joinW:    make([]int, n),
		arrivals: make([]int, n),
	}
	for _, e := range g.edges {
		m.succ[e.From] = append(m.succ[e.From], e)
		m.pred[e.To] = append(m.pred[e.To], e)
	}
	for id := range m.succ {
		sort.Slice(m.succ[id], func(i, j int) bool { return m.succ[id][i].To < m.succ[id][j].To })
		sort.Slice(m.pred[id], func(i, j int) bool { return m.pred[id][i].From < m.pred[id][j].From })
	}
	m.byID = make([]*Task, n)
	for id, t := range g.tasks {
		m.ids = append(m.ids, id)
		if uint(int(id)) < uint(n) {
			m.byID[id] = t
		}
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	for _, id := range m.ids {
		m.isSource[id] = len(m.pred[id]) == 0
		m.isSink[id] = len(m.succ[id]) == 0
		if m.isSource[id] {
			m.sources = append(m.sources, id)
		}
		if m.isSink[id] {
			m.sinks = append(m.sinks, id)
		}
	}
	// Per-instance arrivals, propagated in topological order (Kahn over the
	// memoized adjacency; cycles leave arrivals at zero, matching the
	// pre-memo behaviour of an unvalidated graph only approximately — every
	// platform workload passes Validate first).
	indeg := make([]int, n)
	for _, id := range m.ids {
		indeg[id] = len(m.pred[id])
	}
	queue := append([]TaskID(nil), m.sources...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if m.isSource[id] {
			m.arrivals[id] = 1
		} else {
			total := 0
			for _, e := range m.pred[id] {
				total += m.arrivals[e.From] * e.Width
			}
			m.arrivals[id] = total
		}
		for _, e := range m.succ[id] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	for _, id := range m.ids {
		m.joinW[id] = m.arrivals[id]
		if m.joinW[id] <= 0 {
			m.joinW[id] = 1
		}
	}
	g.memo.Store(m)
	return m
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, tasks: make(map[TaskID]*Task)}
}

// AddTask registers a task class. It panics if the ID is zero or duplicated;
// graph construction errors are programming errors, not runtime conditions.
func (g *Graph) AddTask(t Task) *Graph {
	if t.ID == None {
		panic("taskgraph: task ID 0 is reserved for idle nodes")
	}
	if _, dup := g.tasks[t.ID]; dup {
		panic(fmt.Sprintf("taskgraph: duplicate task %d", t.ID))
	}
	if t.Ratio <= 0 {
		t.Ratio = 1
	}
	tt := t
	g.tasks[t.ID] = &tt
	g.memo.Store(nil)
	return g
}

// AddEdge registers a dependency edge with the given fan-out width.
func (g *Graph) AddEdge(from, to TaskID, width int) *Graph {
	if width <= 0 {
		panic("taskgraph: edge width must be positive")
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Width: width})
	g.memo.Store(nil)
	return g
}

// Task returns the task with the given ID, or nil when absent.
func (g *Graph) Task(id TaskID) *Task {
	// Dense memoized lookup: Task sits on the simulator's per-tick paths
	// (every generation and processing decision), where the map probe was
	// measurable.
	if m := g.memoized(); uint(int(id)) < uint(len(m.byID)) {
		return m.byID[id]
	}
	return nil
}

// Tasks returns all task classes sorted by ID.
func (g *Graph) Tasks() []*Task {
	out := make([]*Task, 0, len(g.tasks))
	for _, t := range g.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TaskIDs returns all task IDs sorted ascending. The slice is memoized —
// callers must not modify it.
func (g *Graph) TaskIDs() []TaskID { return g.memoized().ids }

// MaxTaskID returns the largest registered task ID (0 for an empty graph).
// Engines size their per-task thresholder arrays from it.
func (g *Graph) MaxTaskID() TaskID {
	var maxID TaskID
	for id := range g.tasks {
		if id > maxID {
			maxID = id
		}
	}
	return maxID
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Fingerprint returns a stable content digest of the graph: its name, every
// task's fields in ID order and every edge in insertion order (edge order is
// part of the digest because it is part of construction, and equal digests
// must promise equal simulations). Two graphs built by the same code in
// different processes share a fingerprint, which is what lets warm-start
// prefix keys agree across a dispatch fleet.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "graph %q\n", g.Name)
	for _, t := range g.Tasks() {
		fmt.Fprintf(h, "task %d %q %d %d %d\n", t.ID, t.Name, t.Ratio, t.ProcTicks, t.GenPeriod)
	}
	for _, e := range g.edges {
		fmt.Fprintf(h, "edge %d %d %d\n", e.From, e.To, e.Width)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Successors returns the outgoing edges of a task, sorted by destination.
// The slice is memoized — callers must not modify it.
func (g *Graph) Successors(id TaskID) []Edge {
	m := g.memoized()
	if int(id) >= len(m.succ) || id < 0 {
		return nil
	}
	return m.succ[id]
}

// Predecessors returns the incoming edges of a task, sorted by source.
// The slice is memoized — callers must not modify it.
func (g *Graph) Predecessors(id TaskID) []Edge {
	m := g.memoized()
	if int(id) >= len(m.pred) || id < 0 {
		return nil
	}
	return m.pred[id]
}

// InWidth returns the total fan-in edge width of a task (the sum of the
// widths of its incoming edges).
func (g *Graph) InWidth(id TaskID) int {
	w := 0
	for _, e := range g.edges {
		if e.To == id {
			w += e.Width
		}
	}
	return w
}

// InstanceArrivals returns, for every task, how many packets of a single
// application instance arrive at that task, propagating edge fan-outs from
// the sources (which each contribute one self-generated work item). A task
// with more than one arrival per instance is a join point: the fork–join
// sink receives 3 branch packets per instance and joins them into one
// completion.
func (g *Graph) InstanceArrivals() map[TaskID]int {
	m := g.memoized()
	arrivals := make(map[TaskID]int, len(m.ids))
	for _, id := range m.ids {
		arrivals[id] = m.arrivals[id]
	}
	return arrivals
}

// JoinWidth returns the number of packets of one instance that must arrive
// at task id before its join completes (1 for non-join tasks).
func (g *Graph) JoinWidth(id TaskID) int {
	m := g.memoized()
	if int(id) >= len(m.joinW) || id < 0 {
		return 1
	}
	return m.joinW[id]
}

// IsSource reports whether the task has no predecessors (it generates work
// spontaneously). In the paper's fork–join graph task 1 is the only source.
func (g *Graph) IsSource(id TaskID) bool {
	m := g.memoized()
	if int(id) >= len(m.isSource) || id < 0 {
		return false
	}
	return m.isSource[id]
}

// IsSink reports whether the task has no successors (its completions are the
// application's throughput events — task 3 in the fork–join graph).
func (g *Graph) IsSink(id TaskID) bool {
	m := g.memoized()
	if int(id) >= len(m.isSink) || id < 0 {
		return false
	}
	return m.isSink[id]
}

// Sources returns all source task IDs sorted ascending. The slice is
// memoized — callers must not modify it.
func (g *Graph) Sources() []TaskID { return g.memoized().sources }

// Sinks returns all sink task IDs sorted ascending. The slice is memoized —
// callers must not modify it.
func (g *Graph) Sinks() []TaskID { return g.memoized().sinks }

// Validate checks the structural invariants the platform depends on:
// every edge endpoint exists, the graph is acyclic, there is at least one
// source and one sink, and every task is reachable from a source. On success
// it caches a topological order.
func (g *Graph) Validate() error {
	if len(g.tasks) == 0 {
		return fmt.Errorf("taskgraph %q: no tasks", g.Name)
	}
	for _, e := range g.edges {
		if _, ok := g.tasks[e.From]; !ok {
			return fmt.Errorf("taskgraph %q: edge from unknown task %d", g.Name, e.From)
		}
		if _, ok := g.tasks[e.To]; !ok {
			return fmt.Errorf("taskgraph %q: edge to unknown task %d", g.Name, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("taskgraph %q: self-loop on task %d", g.Name, e.From)
		}
	}
	order, err := g.topoSort()
	if err != nil {
		return fmt.Errorf("taskgraph %q: %w", g.Name, err)
	}
	g.order = order
	if len(g.Sources()) == 0 {
		return fmt.Errorf("taskgraph %q: no source task", g.Name)
	}
	if len(g.Sinks()) == 0 {
		return fmt.Errorf("taskgraph %q: no sink task", g.Name)
	}
	// Reachability from sources.
	reach := make(map[TaskID]bool)
	var stack []TaskID
	for _, s := range g.Sources() {
		reach[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Successors(id) {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for id := range g.tasks {
		if !reach[id] {
			return fmt.Errorf("taskgraph %q: task %d unreachable from any source", g.Name, id)
		}
	}
	return nil
}

// TopoOrder returns the task IDs in a topological order. Validate must have
// succeeded first; otherwise TopoOrder computes the order on the fly and
// panics on cyclic graphs.
func (g *Graph) TopoOrder() []TaskID {
	if g.order != nil {
		out := make([]TaskID, len(g.order))
		copy(out, g.order)
		return out
	}
	order, err := g.topoSort()
	if err != nil {
		panic(err)
	}
	return order
}

func (g *Graph) topoSort() ([]TaskID, error) {
	indeg := make(map[TaskID]int, len(g.tasks))
	for id := range g.tasks {
		indeg[id] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var ready []TaskID
	for _, id := range g.TaskIDs() {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var order []TaskID
	for len(ready) > 0 {
		// Pop the smallest ID for determinism.
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, e := range g.Successors(id) {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("cycle detected (%d of %d tasks ordered)", len(order), len(g.tasks))
	}
	return order, nil
}

// RatioSum returns the sum of task ratios (5 for the 1:3:1 fork–join graph).
func (g *Graph) RatioSum() int {
	s := 0
	for _, t := range g.tasks {
		s += t.Ratio
	}
	return s
}

// String summarises the graph for traces.
func (g *Graph) String() string {
	return fmt.Sprintf("taskgraph %q: %d tasks, %d edges", g.Name, len(g.tasks), len(g.edges))
}
