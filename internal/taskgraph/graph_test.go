package taskgraph

import (
	"strings"
	"testing"
)

func TestForkJoinStructure(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.RatioSum(); got != 5 {
		t.Errorf("RatioSum = %d, want 5 (1:3:1)", got)
	}
	if !g.IsSource(ForkSource) {
		t.Error("task 1 should be a source")
	}
	if g.IsSource(ForkWorker) || g.IsSource(ForkSink) {
		t.Error("tasks 2,3 should not be sources")
	}
	if !g.IsSink(ForkSink) {
		t.Error("task 3 should be a sink")
	}
	if g.IsSink(ForkSource) || g.IsSink(ForkWorker) {
		t.Error("tasks 1,2 should not be sinks")
	}
	if got := g.JoinWidth(ForkSink); got != 3 {
		t.Errorf("JoinWidth(sink) = %d, want 3 (join of 3 branches)", got)
	}
	if got := g.InWidth(ForkWorker); got != 3 {
		t.Errorf("InWidth(worker) = %d, want 3 (fanout of source edge)", got)
	}
	if got := g.InWidth(ForkSource); got != 0 {
		t.Errorf("InWidth(source) = %d, want 0", got)
	}
	arr := g.InstanceArrivals()
	if arr[ForkSource] != 1 || arr[ForkWorker] != 3 || arr[ForkSink] != 3 {
		t.Errorf("InstanceArrivals = %v, want 1/3/3", arr)
	}
	succ := g.Successors(ForkSource)
	if len(succ) != 1 || succ[0].To != ForkWorker || succ[0].Width != 3 {
		t.Errorf("Successors(source) = %+v, want one edge to worker width 3", succ)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != ForkSource {
		t.Errorf("Sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != ForkSink {
		t.Errorf("Sinks = %v", snk)
	}
	if g.Task(ForkSource).GenPeriod != 120 {
		t.Errorf("source GenPeriod = %d, want 120 ticks (one instance per 12 ms = 1 packet per 4 ms)", g.Task(ForkSource).GenPeriod)
	}
}

func TestTopoOrder(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	order := g.TopoOrder()
	if len(order) != 3 {
		t.Fatalf("TopoOrder length %d", len(order))
	}
	pos := map[TaskID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order %v", e.From, e.To, order)
		}
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New("cyclic").
		AddTask(Task{ID: 1, GenPeriod: 10}).
		AddTask(Task{ID: 2}).
		AddEdge(1, 2, 1).
		AddEdge(2, 1, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate on cyclic graph = %v, want cycle error", err)
	}
}

func TestValidateDetectsUnknownEdgeEndpoint(t *testing.T) {
	g := New("bad").AddTask(Task{ID: 1}).AddEdge(1, 9, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Errorf("Validate = %v, want unknown-task error", err)
	}
}

func TestValidateDetectsSelfLoop(t *testing.T) {
	g := New("loop").AddTask(Task{ID: 1}).AddEdge(1, 1, 1)
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Errorf("Validate = %v, want self-loop error", err)
	}
}

func TestValidateDetectsUnreachable(t *testing.T) {
	g := New("island").
		AddTask(Task{ID: 1}).
		AddTask(Task{ID: 2}).
		AddTask(Task{ID: 3}).
		AddEdge(1, 2, 1)
	// Task 3 has no predecessors so it is a source itself; build a real
	// unreachable case instead: 3 -> 4 island... but 3 would be a source.
	// Unreachability therefore requires a node with predecessors whose
	// ancestors are unreachable, which the acyclicity check already excludes.
	// So: any validated DAG has all tasks reachable; just confirm this one
	// validates (3 is a source AND a sink).
	if err := g.Validate(); err != nil {
		t.Errorf("Validate = %v, want nil (task 3 is its own source/sink)", err)
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Error("Validate on empty graph succeeded")
	}
}

func TestAddTaskPanics(t *testing.T) {
	mustPanic(t, "zero ID", func() { New("x").AddTask(Task{ID: 0}) })
	mustPanic(t, "dup ID", func() {
		New("x").AddTask(Task{ID: 1}).AddTask(Task{ID: 1})
	})
	mustPanic(t, "bad width", func() {
		New("x").AddTask(Task{ID: 1}).AddEdge(1, 1, 0)
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestPipelineGraph(t *testing.T) {
	g := Pipeline(4, 40, 20)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Errorf("pipeline sources=%v sinks=%v", g.Sources(), g.Sinks())
	}
	if g.JoinWidth(TaskID(4)) != 1 {
		t.Errorf("pipeline sink JoinWidth = %d", g.JoinWidth(TaskID(4)))
	}
	mustPanic(t, "short pipeline", func() { Pipeline(1, 40, 20) })
}

func TestDiamondGraph(t *testing.T) {
	g := Diamond(40, 20)
	if g.JoinWidth(TaskID(4)) != 2 {
		t.Errorf("diamond sink JoinWidth = %d, want 2", g.JoinWidth(TaskID(4)))
	}
	if got := len(g.Successors(1)); got != 2 {
		t.Errorf("diamond source successors = %d, want 2", got)
	}
}

func TestMaxTaskID(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	if got := g.MaxTaskID(); got != 3 {
		t.Errorf("MaxTaskID = %d, want 3", got)
	}
}
