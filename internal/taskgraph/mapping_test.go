package taskgraph

import (
	"testing"
	"testing/quick"

	"centurion/internal/sim"
)

func TestHeuristicMapperRatios(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	m := HeuristicMapper{}.Map(g, 16, 8, sim.NewRNG(1))
	if len(m) != 128 {
		t.Fatalf("mapping length %d, want 128", len(m))
	}
	counts := m.Count(g.MaxTaskID())
	// 128 nodes over a 5-slot template: counts must be within one template
	// repetition of the exact ratio (25.6, 76.8, 25.6).
	if counts[0] != 0 {
		t.Errorf("heuristic left %d idle nodes", counts[0])
	}
	if counts[1] < 25 || counts[1] > 27 {
		t.Errorf("task1 count = %d, want ~26", counts[1])
	}
	if counts[2] < 75 || counts[2] > 78 {
		t.Errorf("task2 count = %d, want ~77", counts[2])
	}
	if counts[3] < 24 || counts[3] > 27 {
		t.Errorf("task3 count = %d, want ~26", counts[3])
	}
}

// The heuristic layout's whole point is producer→consumer locality: from any
// task-1 node, a task-2 node must be adjacent along the snake (distance ≤ 2).
func TestHeuristicMapperLocality(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	w, h := 16, 8
	m := HeuristicMapper{}.Map(g, w, h, sim.NewRNG(1))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if m[y*w+x] != ForkSource {
				continue
			}
			best := 1 << 30
			for yy := 0; yy < h; yy++ {
				for xx := 0; xx < w; xx++ {
					if m[yy*w+xx] == ForkWorker {
						d := abs(xx-x) + abs(yy-y)
						if d < best {
							best = d
						}
					}
				}
			}
			if best > 2 {
				t.Errorf("task1 node (%d,%d) has nearest worker at distance %d", x, y, best)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestHeuristicMapperDeterministic(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	a := HeuristicMapper{}.Map(g, 16, 8, sim.NewRNG(1))
	b := HeuristicMapper{}.Map(g, 16, 8, sim.NewRNG(999))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("heuristic mapping depends on RNG; it must be fixed")
		}
	}
}

func TestRandomMapperCoverage(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	m := RandomMapper{}.Map(g, 16, 8, sim.NewRNG(7))
	counts := m.Count(g.MaxTaskID())
	for id := 1; id <= 3; id++ {
		// With 128 nodes over 3 tasks, each expects ~42.7; allow wide noise.
		if counts[id] < 20 || counts[id] > 70 {
			t.Errorf("task %d count = %d, improbable for uniform mapping", id, counts[id])
		}
	}
	if counts[0] != 0 {
		t.Errorf("random mapper produced %d idle nodes", counts[0])
	}
}

func TestRandomMapperSeedVariation(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	a := RandomMapper{}.Map(g, 16, 8, sim.NewRNG(1))
	b := RandomMapper{}.Map(g, 16, 8, sim.NewRNG(2))
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical random mappings")
	}
}

func TestProportionalMapperCounts(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	a := ProportionalMapper{}.Map(g, 16, 8, sim.NewRNG(5))
	b := HeuristicMapper{}.Map(g, 16, 8, sim.NewRNG(5))
	ca, cb := a.Count(g.MaxTaskID()), b.Count(g.MaxTaskID())
	for id := range ca {
		if ca[id] != cb[id] {
			t.Errorf("task %d: proportional count %d != heuristic count %d", id, ca[id], cb[id])
		}
	}
}

// Property: every mapper fills every node with a valid task of the graph.
func TestMappersAlwaysValidProperty(t *testing.T) {
	g := ForkJoin(DefaultForkJoinParams())
	valid := map[TaskID]bool{ForkSource: true, ForkWorker: true, ForkSink: true}
	mappers := []Mapper{RandomMapper{}, HeuristicMapper{}, ProportionalMapper{}}
	f := func(seed uint64, wRaw, hRaw uint8) bool {
		w := int(wRaw%15) + 2
		h := int(hRaw%15) + 2
		for _, mp := range mappers {
			m := mp.Map(g, w, h, sim.NewRNG(seed))
			if len(m) != w*h {
				return false
			}
			for _, task := range m {
				if !valid[task] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMappingClone(t *testing.T) {
	m := Mapping{1, 2, 3}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestMapperNames(t *testing.T) {
	names := map[string]bool{}
	for _, mp := range []Mapper{RandomMapper{}, HeuristicMapper{}, ProportionalMapper{}} {
		n := mp.Name()
		if n == "" || names[n] {
			t.Errorf("mapper name %q empty or duplicated", n)
		}
		names[n] = true
	}
}
