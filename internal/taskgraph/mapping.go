package taskgraph

import (
	"fmt"

	"centurion/internal/sim"
)

// Mapping assigns a task class to every node of a W×H grid, indexed by
// node ID (y*W + x). Task None marks an idle node.
type Mapping []TaskID

// Count returns how many nodes run each task (index 0 counts idle nodes).
func (m Mapping) Count(maxID TaskID) []int {
	counts := make([]int, int(maxID)+1)
	for _, t := range m {
		if int(t) < len(counts) {
			counts[t]++
		}
	}
	return counts
}

// Clone returns an independent copy of the mapping.
func (m Mapping) Clone() Mapping {
	out := make(Mapping, len(m))
	copy(out, m)
	return out
}

// Mapper produces an initial task mapping for a W×H grid.
type Mapper interface {
	// Map returns a mapping of length w*h for graph g.
	Map(g *Graph, w, h int, rng *sim.RNG) Mapping
	// Name identifies the mapper in traces and tables.
	Name() string
}

// RandomMapper assigns every node a uniformly random task class — the
// "initially random task-mapping" the paper's adaptive models start from.
type RandomMapper struct{}

// Name implements Mapper.
func (RandomMapper) Name() string { return "random" }

// Map implements Mapper.
func (RandomMapper) Map(g *Graph, w, h int, rng *sim.RNG) Mapping {
	ids := g.TaskIDs()
	m := make(Mapping, w*h)
	for i := range m {
		m[i] = ids[rng.Intn(len(ids))]
	}
	return m
}

// HeuristicMapper is the paper's "no intelligence" reference: a fixed task
// placement with node counts proportional to the graph's task ratios and a
// tiled layout that minimises the Manhattan distance between producers and
// their consumers (each repeating tile holds one full ratio template, so a
// source is always adjacent to its workers and sink along the snake order).
type HeuristicMapper struct{}

// Name implements Mapper.
func (HeuristicMapper) Name() string { return "heuristic-manhattan" }

// Map implements Mapper.
func (HeuristicMapper) Map(g *Graph, w, h int, rng *sim.RNG) Mapping {
	template := ratioTemplate(g)
	m := make(Mapping, w*h)
	// Snake (boustrophedon) order keeps consecutive template entries at
	// Manhattan distance 1, so each tile forms a contiguous cluster.
	idx := 0
	for y := 0; y < h; y++ {
		if y%2 == 0 {
			for x := 0; x < w; x++ {
				m[y*w+x] = template[idx%len(template)]
				idx++
			}
		} else {
			for x := w - 1; x >= 0; x-- {
				m[y*w+x] = template[idx%len(template)]
				idx++
			}
		}
	}
	return m
}

// ratioTemplate expands a graph's ratios into a placement template in
// topological order, e.g. the 1:3:1 fork–join graph yields [1 2 2 2 3].
// Keeping the template in dataflow order means each producer is placed
// immediately before its consumers along the snake.
func ratioTemplate(g *Graph) []TaskID {
	var template []TaskID
	for _, id := range g.TopoOrder() {
		t := g.Task(id)
		for i := 0; i < t.Ratio; i++ {
			template = append(template, id)
		}
	}
	if len(template) == 0 {
		panic(fmt.Sprintf("taskgraph: graph %q has an empty ratio template", g.Name))
	}
	return template
}

// ProportionalMapper places ratio-proportional task counts at uniformly
// random positions: the counts of the heuristic baseline without its
// locality. Used by the ablation benches to separate the value of placement
// locality from the value of the task ratio itself.
type ProportionalMapper struct{}

// Name implements Mapper.
func (ProportionalMapper) Name() string { return "proportional-random" }

// Map implements Mapper.
func (ProportionalMapper) Map(g *Graph, w, h int, rng *sim.RNG) Mapping {
	template := ratioTemplate(g)
	m := make(Mapping, w*h)
	for i := range m {
		m[i] = template[i%len(template)]
	}
	perm := rng.Perm(len(m))
	out := make(Mapping, len(m))
	for i, p := range perm {
		out[p] = m[i]
	}
	return out
}
