package taskgraph

// Well-known task IDs of the paper's fork–join graph (Figure 3).
const (
	ForkSource TaskID = 1 // task 1: the generator that anchors the topology
	ForkWorker TaskID = 2 // task 2: the three parallel workers
	ForkSink   TaskID = 3 // task 3: the join whose completions are throughput
)

// ForkJoinParams are the tunable latencies of the fork–join workload. All
// values are in ticks (see sim.TicksPerMs).
type ForkJoinParams struct {
	// GenPeriod is the interval between work items emitted by each task-1
	// node. The paper uses 4 ms.
	GenPeriod int
	// WorkerProc is the task-2 processing latency per packet.
	WorkerProc int
	// SinkProc is the task-3 processing latency per branch packet.
	SinkProc int
	// Fanout is the number of parallel task-2 branches per work item (3 in
	// the paper's 1:3:1 graph).
	Fanout int
}

// DefaultForkJoinParams mirror the paper's experiment configuration at the
// default time resolution (10 ticks/ms): 4 ms generation, and processing
// latencies chosen so the 1:3:1 heuristic ratio is near — but not at — the
// throughput optimum (see DESIGN.md §6).
func DefaultForkJoinParams() ForkJoinParams {
	return ForkJoinParams{
		// One fork–join instance (3 branch packets) every 12 ms means each
		// source emits 1 packet every 4 ms on average — the paper's load.
		GenPeriod:  120,
		WorkerProc: 48, // the mildly binding resource (DESIGN.md §6)
		SinkProc:   6,
		Fanout:     3,
	}
}

// ForkJoin builds the paper's Figure 3 graph: task 1 → 3× task 2 → task 3,
// with heuristic node ratio 1:3:1. The returned graph is already validated.
func ForkJoin(p ForkJoinParams) *Graph {
	if p.Fanout <= 0 {
		p.Fanout = 3
	}
	g := New("fork-join").
		AddTask(Task{ID: ForkSource, Name: "task1/source", Ratio: 1, GenPeriod: p.GenPeriod}).
		AddTask(Task{ID: ForkWorker, Name: "task2/worker", Ratio: p.Fanout, ProcTicks: p.WorkerProc}).
		AddTask(Task{ID: ForkSink, Name: "task3/sink", Ratio: 1, ProcTicks: p.SinkProc}).
		AddEdge(ForkSource, ForkWorker, p.Fanout).
		AddEdge(ForkWorker, ForkSink, 1)
	if err := g.Validate(); err != nil {
		panic("taskgraph: fork-join graph invalid: " + err.Error())
	}
	return g
}

// Pipeline builds a linear K-stage pipeline graph (used by the examples and
// the generalisation tests): stage 1 generates, each stage forwards one
// packet to the next, the last stage sinks.
func Pipeline(stages int, genPeriod, procTicks int) *Graph {
	if stages < 2 {
		panic("taskgraph: pipeline needs at least 2 stages")
	}
	g := New("pipeline")
	for i := 1; i <= stages; i++ {
		t := Task{ID: TaskID(i), Name: "stage", Ratio: 1, ProcTicks: procTicks}
		if i == 1 {
			t.GenPeriod = genPeriod
			t.ProcTicks = 0
		}
		g.AddTask(t)
	}
	for i := 1; i < stages; i++ {
		g.AddEdge(TaskID(i), TaskID(i+1), 1)
	}
	if err := g.Validate(); err != nil {
		panic("taskgraph: pipeline graph invalid: " + err.Error())
	}
	return g
}

// Diamond builds a two-path diamond graph: source → {left, right} → sink,
// exercised by the examples as a second realistic workload shape.
func Diamond(genPeriod, procTicks int) *Graph {
	g := New("diamond").
		AddTask(Task{ID: 1, Name: "source", Ratio: 1, GenPeriod: genPeriod}).
		AddTask(Task{ID: 2, Name: "left", Ratio: 2, ProcTicks: procTicks}).
		AddTask(Task{ID: 3, Name: "right", Ratio: 2, ProcTicks: procTicks}).
		AddTask(Task{ID: 4, Name: "sink", Ratio: 1, ProcTicks: procTicks / 2}).
		AddEdge(1, 2, 1).
		AddEdge(1, 3, 1).
		AddEdge(2, 4, 1).
		AddEdge(3, 4, 1)
	if err := g.Validate(); err != nil {
		panic("taskgraph: diamond graph invalid: " + err.Error())
	}
	return g
}
