package store

import "sync"

// MemStore is the in-memory Store: the zero-dependency backend for tests
// and for coordinators running without a data directory. Contents die with
// the process.
type MemStore struct {
	mu      sync.Mutex
	m       map[string][]byte
	bytes   int64
	puts    uint64
	deletes uint64
	hits    uint64
	misses  uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		s.misses++
		return nil, false, nil
	}
	s.hits++
	return append([]byte(nil), v...), true, nil
}

// Put implements Store.
func (s *MemStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		s.bytes -= int64(len(old))
	}
	s.m[key] = append([]byte(nil), val...)
	s.bytes += int64(len(val))
	s.puts++
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[key]; ok {
		s.bytes -= int64(len(old))
		delete(s.m, key)
		s.deletes++
	}
	return nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   len(s.m),
		LiveBytes: s.bytes,
		Puts:      s.puts,
		Deletes:   s.deletes,
		Hits:      s.hits,
		Misses:    s.misses,
	}
}

// Compact implements Store; memory holds no dead records.
func (s *MemStore) Compact() error { return nil }

// Close implements Store.
func (s *MemStore) Close() error { return nil }
