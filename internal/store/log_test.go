package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testKey builds a realistic content-addressed key (hex SHA-256, like the
// server's canonical spec keys).
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("spec-%d", i)))
	return hex.EncodeToString(sum[:])
}

func openTestLog(t *testing.T, path string) *LogStore {
	t.Helper()
	s, err := OpenLog(path)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return s
}

func TestLogStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	defer s.Close()

	vals := map[string][]byte{}
	for i := 0; i < 32; i++ {
		key := testKey(i)
		val := bytes.Repeat([]byte{byte(i)}, 10+i*7)
		vals[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for key, want := range vals {
		got, ok, err := s.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", key[:8], ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%s): value mismatch", key[:8])
		}
	}
	if _, ok, _ := s.Get(testKey(999)); ok {
		t.Fatal("Get of unknown key reported ok")
	}
	st := s.Stats()
	if st.Entries != 32 || st.Puts != 32 || st.Hits != 32 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLogStoreReplayAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	for i := 0; i < 16; i++ {
		if err := s.Put(testKey(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede a key: replay must keep the latest record.
	if err := s.Put(testKey(3), []byte("value-3-v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestLog(t, path)
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 16 || st.TruncatedTail {
		t.Fatalf("replayed stats = %+v", st)
	}
	got, ok, err := s2.Get(testKey(3))
	if err != nil || !ok || string(got) != "value-3-v2" {
		t.Fatalf("superseded key after replay: %q ok=%v err=%v", got, ok, err)
	}
	if st := s2.Stats(); st.DeadBytes == 0 {
		t.Fatal("superseded record not accounted as dead bytes after replay")
	} else if want := float64(st.DeadBytes) / float64(st.LogBytes); st.DeadRatio != want {
		t.Fatalf("dead ratio = %g, want %g", st.DeadRatio, want)
	}
}

// TestLogStoreCrashRecovery is the satellite edge case: a crash mid-append
// leaves a truncated tail record; reopening must discard exactly that torn
// record and recover every committed result bit-identically.
func TestLogStoreCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	committed := map[string][]byte{}
	for i := 0; i < 8; i++ {
		key := testKey(i)
		val := bytes.Repeat([]byte{0xA0 + byte(i)}, 100+i)
		committed[key] = val
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(testKey(8), bytes.Repeat([]byte{0xFF}, 200)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: chop the last record's payload mid-way.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-150); err != nil {
		t.Fatal(err)
	}

	s2 := openTestLog(t, path)
	defer s2.Close()
	st := s2.Stats()
	if !st.TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	if st.TruncatedBytes <= 0 {
		t.Fatalf("truncated bytes = %d, want the torn record's discarded length", st.TruncatedBytes)
	}
	if st.Entries != len(committed) {
		t.Fatalf("recovered %d entries, want %d", st.Entries, len(committed))
	}
	for key, want := range committed {
		got, ok, err := s2.Get(key)
		if err != nil || !ok {
			t.Fatalf("committed record %s lost: ok=%v err=%v", key[:8], ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("committed record %s not bit-identical after recovery", key[:8])
		}
	}
	if _, ok, _ := s2.Get(testKey(8)); ok {
		t.Fatal("torn record resurrected")
	}
	// The store must accept appends after recovery (the truncation left a
	// clean tail).
	if err := s2.Put(testKey(8), []byte("recomputed")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	got, ok, _ := s2.Get(testKey(8))
	if !ok || string(got) != "recomputed" {
		t.Fatal("append after recovery not readable")
	}
}

// TestLogStoreCorruptTail covers the torn-checksum case: the record length
// fields survived but the payload bytes did not.
func TestLogStoreCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	if err := s.Put(testKey(0), []byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte of the final record.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xEE}, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestLog(t, path)
	defer s2.Close()
	if st := s2.Stats(); !st.TruncatedTail || st.Entries != 1 {
		t.Fatalf("stats after corrupt tail = %+v", st)
	}
	got, ok, _ := s2.Get(testKey(0))
	if !ok || string(got) != "keep-me" {
		t.Fatal("record before the corrupt tail lost")
	}
}

func TestLogStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	defer s.Close()
	// Supersede one key many times: all but the last record are dead.
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(0), bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(testKey(1), []byte("other")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("superseded records not tracked as dead")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 || after.Compactions != 1 || after.LastCompaction.IsZero() {
		t.Fatalf("post-compaction stats = %+v", after)
	}
	if after.LogBytes >= before.LogBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.LogBytes, after.LogBytes)
	}
	got, ok, _ := s.Get(testKey(0))
	if !ok || !bytes.Equal(got, bytes.Repeat([]byte{49}, 128)) {
		t.Fatal("latest value lost by compaction")
	}
	if got, ok, _ := s.Get(testKey(1)); !ok || string(got) != "other" {
		t.Fatal("unrelated key lost by compaction")
	}

	// The compacted log must replay cleanly.
	s.Close()
	s2 := openTestLog(t, path)
	defer s2.Close()
	if st := s2.Stats(); st.Entries != 2 || st.TruncatedTail {
		t.Fatalf("replay of compacted log: %+v", st)
	}
}

// TestLogStoreCompactionCrashMidRewrite is the satellite edge case: the
// process is killed between writing the compaction temp file and the atomic
// rename. The orphaned .compact must be discarded on reopen — the original
// log is still the fully-committed copy — and every committed record must
// replay bit-identically.
func TestLogStoreCompactionCrashMidRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	committed := map[string][]byte{}
	for i := 0; i < 12; i++ {
		key := testKey(i)
		val := bytes.Repeat([]byte{byte(0x10 + i)}, 50+i*11)
		committed[key] = val
		// Supersede each key once so a compaction would actually rewrite.
		if err := s.Put(key, []byte("stale")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the crash point: a compaction finished writing its temp file
	// (here: a half-written one, the nastier variant) but died before the
	// rename installed it.
	orphan := path + ".compact"
	if err := os.WriteFile(orphan, append([]byte(logMagic), []byte("partial compaction rewrite")...), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestLog(t, path)
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned compaction file not cleaned up (stat err=%v)", err)
	}
	if st := s2.Stats(); st.Entries != len(committed) || st.TruncatedTail {
		t.Fatalf("replayed stats after compaction crash = %+v", st)
	}
	for key, want := range committed {
		got, ok, err := s2.Get(key)
		if err != nil || !ok {
			t.Fatalf("committed record %s lost: ok=%v err=%v", key[:8], ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("committed record %s not bit-identical after compaction crash", key[:8])
		}
	}
	// The untouched log must be byte-for-byte what was committed before the
	// crash (reopen performs no rewrite when nothing is torn).
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, logBytes) {
		t.Fatal("log rewritten while recovering from a compaction crash")
	}
	// And a real compaction afterwards must still work.
	if err := s2.Compact(); err != nil {
		t.Fatalf("Compact after crash recovery: %v", err)
	}
	for key, want := range committed {
		got, ok, _ := s2.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("record %s lost by post-recovery compaction", key[:8])
		}
	}
}

func TestLogStoreDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s := openTestLog(t, path)
	if err := s.Put(testKey(0), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(testKey(0)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := s.Get(testKey(0)); ok {
		t.Fatal("deleted key still readable")
	}
	// Deleting an absent key is a silent no-op that writes nothing.
	sizeBefore := s.Stats().LogBytes
	if err := s.Delete(testKey(0)); err != nil {
		t.Fatalf("Delete of absent key: %v", err)
	}
	if got := s.Stats().LogBytes; got != sizeBefore {
		t.Fatalf("no-op delete grew the log: %d -> %d", sizeBefore, got)
	}
	if st := s.Stats(); st.Deletes != 1 || st.DeadBytes == 0 {
		t.Fatalf("stats after delete = %+v", st)
	}
	// Empty values are reserved for tombstones.
	if err := s.Put(testKey(2), nil); err == nil {
		t.Fatal("Put of empty value accepted")
	}
	s.Close()

	// The tombstone must survive replay…
	s2 := openTestLog(t, path)
	if _, ok, _ := s2.Get(testKey(0)); ok {
		t.Fatal("deleted key resurrected by replay")
	}
	if got, ok, _ := s2.Get(testKey(1)); !ok || string(got) != "survivor" {
		t.Fatal("unrelated key lost with the tombstone")
	}
	// …and compaction must drop both the dead record and the tombstone.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTestLog(t, path)
	defer s3.Close()
	if st := s3.Stats(); st.Entries != 1 || st.DeadBytes != 0 {
		t.Fatalf("stats after compacted tombstone replay = %+v", st)
	}
}

func TestMemStoreDelete(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("deleted key still readable")
	}
	if err := s.Delete("absent"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 || st.LiveBytes != 0 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("Get: %q ok=%v err=%v", got, ok, err)
	}
	// The returned slice must be a copy.
	got[0] = 'x'
	got2, _, _ := s.Get("k")
	if string(got2) != "v" {
		t.Fatal("MemStore aliases its internal buffer")
	}
	if st := s.Stats(); st.Entries != 1 || st.LiveBytes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
