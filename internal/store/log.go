package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// LogStore is the embedded durable backend: a single append-only log file
// plus an in-memory key→offset index rebuilt by replaying the log on open.
//
// Record layout (all integers little-endian):
//
//	u32 keyLen | u32 valLen | u32 crc32(key‖val) | key | val
//
// preceded once by an 8-byte file magic. Appends are synced before Put
// returns, so a record is either fully committed or — if the process died
// mid-append — recognisably torn: replay stops at the first short or
// checksum-failing record and truncates the file there, recovering every
// committed record bit-identically.
//
// Re-putting an existing key appends a superseding record (last one wins on
// replay), and deleting one appends a tombstone — a record with valLen==0,
// which is why Put rejects empty values. The space held by superseded and
// tombstoned records is reclaimed by compaction, which rewrites live records
// into a temp file and atomically renames it over the log. Compaction
// triggers automatically once dead bytes exceed both compactMinDead and the
// live payload size.
type LogStore struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64 // current log length (append offset)

	index map[string]recLoc
	live  int64 // sum of live value payload sizes
	dead  int64 // bytes held by superseded records (reclaimable)

	noSync bool // test hook: skip per-put fsync

	puts, deletes, hits, misses uint64
	compactions                 uint64
	lastCompaction              time.Time
	truncatedTail               bool
	truncatedBytes              int64 // bytes discarded by the last replay's truncation
}

// recLoc locates one live record in the log.
type recLoc struct {
	off    int64 // record start (keyLen field)
	valOff int64 // value payload start
	keyLen int32
	valLen int32
}

// recLen is the total on-disk length of the record at l.
func (l recLoc) recLen() int64 { return recHeaderLen + int64(l.keyLen) + int64(l.valLen) }

const (
	logMagic     = "CENSTOR1"
	recHeaderLen = 12 // keyLen + valLen + crc
	// maxKeyLen/maxValLen are replay sanity bounds: a length field beyond
	// them means a torn or corrupt record, not a huge value.
	maxKeyLen = 1 << 10
	maxValLen = 1 << 30
	// compactMinDead is the floor below which auto-compaction never runs —
	// rewriting a tiny log to save a few KB is churn, not reclamation.
	compactMinDead = 1 << 20
)

// OpenLog opens (or creates) the log at path and replays it into memory.
func OpenLog(path string) (*LogStore, error) {
	// A crash between writing a compaction temp file and the atomic rename
	// leaves an orphaned .compact beside the log. The log itself is still
	// the authoritative, fully-committed copy — discard the orphan rather
	// than leave it to confuse (or collide with) the next compaction.
	_ = os.Remove(path + ".compact")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening log: %w", err)
	}
	s := &LogStore{path: path, f: f, index: make(map[string]recLoc)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log from the top, rebuilding the index and truncating a
// torn tail. Called with the store fresh or under s.mu.
func (s *LogStore) replay() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat log: %w", err)
	}
	end := info.Size()

	if end == 0 {
		// Fresh log: stamp the magic.
		if _, err := s.f.WriteAt([]byte(logMagic), 0); err != nil {
			return fmt.Errorf("store: writing log magic: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing log magic: %w", err)
		}
		s.size = int64(len(logMagic))
		return nil
	}
	magic := make([]byte, len(logMagic))
	if _, err := s.f.ReadAt(magic, 0); err != nil || string(magic) != logMagic {
		return fmt.Errorf("store: %s is not a centurion result log", s.path)
	}

	off := int64(len(logMagic))
	hdr := make([]byte, recHeaderLen)
	var buf []byte
	for off < end {
		if off+recHeaderLen > end {
			break // torn: header ran off the end
		}
		if _, err := s.f.ReadAt(hdr, off); err != nil {
			return fmt.Errorf("store: reading record header at %d: %w", off, err)
		}
		keyLen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		valLen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		sum := binary.LittleEndian.Uint32(hdr[8:12])
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen ||
			off+recHeaderLen+keyLen+valLen > end {
			break // torn or corrupt lengths
		}
		n := keyLen + valLen
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := s.f.ReadAt(buf, off+recHeaderLen); err != nil {
			return fmt.Errorf("store: reading record at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(buf) != sum {
			break // torn mid-payload (the sync boundary is the whole record)
		}
		key := string(buf[:keyLen])
		if old, ok := s.index[key]; ok {
			s.dead += old.recLen()
			s.live -= int64(old.valLen)
			delete(s.index, key)
		}
		if valLen == 0 {
			// Tombstone: the key is gone, and the tombstone record itself is
			// immediately reclaimable.
			s.dead += recHeaderLen + keyLen
		} else {
			s.index[key] = recLoc{off: off, valOff: off + recHeaderLen + keyLen, keyLen: int32(keyLen), valLen: int32(valLen)}
			s.live += valLen
		}
		off += recHeaderLen + n
	}
	if off < end {
		s.truncatedTail = true
		s.truncatedBytes = end - off
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncating torn tail at %d: %w", off, err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing truncation: %w", err)
		}
	}
	s.size = off
	return nil
}

// Get implements Store.
func (s *LogStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[key]
	if !ok {
		s.misses++
		return nil, false, nil
	}
	val := make([]byte, loc.valLen)
	if _, err := s.f.ReadAt(val, loc.valOff); err != nil {
		return nil, false, fmt.Errorf("store: reading value for %s: %w", key, err)
	}
	s.hits++
	return val, true, nil
}

// Put implements Store: one synced append, then an index update. A key
// already present is superseded in place (its old record becomes dead
// weight for the next compaction).
func (s *LogStore) Put(key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1, %d]", len(key), maxKeyLen)
	}
	if len(val) == 0 {
		return fmt.Errorf("store: empty values are reserved as delete tombstones")
	}
	if len(val) > maxValLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(val), maxValLen)
	}
	rec := make([]byte, recHeaderLen+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[recHeaderLen:]))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: put on closed store")
	}
	off := s.size
	if _, err := s.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if !s.noSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing record: %w", err)
		}
	}
	s.size = off + int64(len(rec))
	if old, ok := s.index[key]; ok {
		s.dead += old.recLen()
		s.live -= int64(old.valLen)
	}
	s.index[key] = recLoc{off: off, valOff: off + recHeaderLen + int64(len(key)), keyLen: int32(len(key)), valLen: int32(len(val))}
	s.live += int64(len(val))
	s.puts++

	if s.dead > compactMinDead && s.dead > s.live {
		return s.compactLocked()
	}
	return nil
}

// Delete implements Store: a synced tombstone append (valLen==0), then the
// key drops out of the index. Deleting an absent key writes nothing.
func (s *LogStore) Delete(key string) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1, %d]", len(key), maxKeyLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: delete on closed store")
	}
	old, ok := s.index[key]
	if !ok {
		return nil
	}
	rec := make([]byte, recHeaderLen+len(key))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], 0)
	copy(rec[recHeaderLen:], key)
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[recHeaderLen:]))
	off := s.size
	if _, err := s.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: appending tombstone: %w", err)
	}
	if !s.noSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing tombstone: %w", err)
		}
	}
	s.size = off + int64(len(rec))
	s.dead += old.recLen() + int64(len(rec)) // the superseded record and the tombstone itself
	s.live -= int64(old.valLen)
	delete(s.index, key)
	s.deletes++

	if s.dead > compactMinDead && s.dead > s.live {
		return s.compactLocked()
	}
	return nil
}

// Compact implements Store: rewrite live records (in sorted key order, so
// the compacted log is deterministic) into a temp file and rename it over
// the log.
func (s *LogStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: compact on closed store")
	}
	return s.compactLocked()
}

// compactLocked does the rewrite. Callers hold s.mu.
func (s *LogStore) compactLocked() error {
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.WriteAt([]byte(logMagic), 0); err != nil {
		cleanup()
		return fmt.Errorf("store: writing compaction magic: %w", err)
	}
	newIndex := make(map[string]recLoc, len(s.index))
	off := int64(len(logMagic))
	for _, key := range keys {
		loc := s.index[key]
		val := make([]byte, loc.valLen)
		if _, err := s.f.ReadAt(val, loc.valOff); err != nil {
			cleanup()
			return fmt.Errorf("store: compaction read for %s: %w", key, err)
		}
		rec := make([]byte, recHeaderLen+len(key)+len(val))
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
		copy(rec[recHeaderLen:], key)
		copy(rec[recHeaderLen+len(key):], val)
		binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(rec[recHeaderLen:]))
		if _, err := tmp.WriteAt(rec, off); err != nil {
			cleanup()
			return fmt.Errorf("store: compaction write for %s: %w", key, err)
		}
		newIndex[key] = recLoc{off: off, valOff: off + recHeaderLen + int64(len(key)), keyLen: loc.keyLen, valLen: loc.valLen}
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: syncing compaction file: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		cleanup()
		return fmt.Errorf("store: installing compacted log: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.size = off
	s.dead = 0
	s.compactions++
	s.lastCompaction = time.Now()
	return nil
}

// Stats implements Store.
func (s *LogStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Entries:        len(s.index),
		LiveBytes:      s.live,
		LogBytes:       s.size,
		DeadBytes:      s.dead,
		Puts:           s.puts,
		Deletes:        s.deletes,
		Hits:           s.hits,
		Misses:         s.misses,
		Compactions:    s.compactions,
		LastCompaction: s.lastCompaction,
		TruncatedTail:  s.truncatedTail,
		TruncatedBytes: s.truncatedBytes,
	}
	if s.size > 0 {
		st.DeadRatio = float64(s.dead) / float64(s.size)
	}
	return st
}

// Close implements Store.
func (s *LogStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
