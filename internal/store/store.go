// Package store provides the coordinator's durable, content-addressed
// result store: values are keyed by the canonical SHA-256 spec keys the
// server layer already computes, so a key names exactly one result for the
// lifetime of the deployment and a restart serves previously computed
// results without re-execution.
//
// The package is deliberately ignorant of what it stores — keys are strings,
// values opaque byte slices — so the embedded append-only LogStore and any
// future external backend (an object store, a database) slot in behind one
// small interface.
package store

import "time"

// Store is a durable content-addressed key→value map. Implementations must
// be safe for concurrent use. Because keys are content hashes of the inputs
// that produced the value, Put for an existing key is idempotent: the value
// is byte-identical, and implementations may keep either copy.
type Store interface {
	// Get returns the stored value for key. The returned slice is owned by
	// the caller (never aliased by the store's internals).
	Get(key string) (val []byte, ok bool, err error)
	// Put durably records key→val. It must not retain val after returning.
	// Values must be non-empty: zero-length values are reserved as delete
	// tombstones in log-backed implementations.
	Put(key string, val []byte) error
	// Delete durably removes key. Deleting an absent key is a no-op.
	Delete(key string) error
	// Stats snapshots size and traffic counters for /healthz.
	Stats() Stats
	// Compact reclaims space held by superseded records, where the backend
	// supports it; otherwise it is a no-op.
	Compact() error
	// Close flushes and releases the backend. The store is unusable after.
	Close() error
}

// Stats is a point-in-time snapshot of a store.
type Stats struct {
	// Entries is the number of distinct keys held.
	Entries int `json:"entries"`
	// LiveBytes is the sum of live value payload sizes.
	LiveBytes int64 `json:"live_bytes"`
	// LogBytes is the on-disk log size, including framing and any dead
	// (superseded) records; zero for memory-backed stores.
	LogBytes int64 `json:"log_bytes,omitempty"`
	// DeadBytes is the log space held by superseded records — the amount a
	// compaction would reclaim.
	DeadBytes int64  `json:"dead_bytes,omitempty"`
	Puts      uint64 `json:"puts"`
	Deletes   uint64 `json:"deletes,omitempty"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	// Compactions counts completed compactions; LastCompaction is the wall
	// time of the most recent one (zero if never).
	Compactions    uint64    `json:"compactions"`
	LastCompaction time.Time `json:"last_compaction,omitzero"`
	// TruncatedTail reports that opening the log found and discarded a torn
	// final record — the expected signature of a crash mid-append.
	TruncatedTail bool `json:"truncated_tail,omitempty"`
	// TruncatedBytes is how many bytes the last replay's torn-tail
	// truncation discarded — recovery health for /healthz: a few bytes is a
	// clean mid-append crash, a large value suggests filesystem damage.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// DeadRatio is DeadBytes/LogBytes — the fraction of the log held by
	// superseded records, i.e. how overdue a compaction is (0 when empty).
	DeadRatio float64 `json:"dead_ratio,omitempty"`
}
