package picoblaze

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates PicoBlaze assembly (KCPSM3-style mnemonics) into a
// program image. Supported syntax:
//
//	; comment                        — to end of line
//	CONSTANT NAME, value             — named constant
//	label:                           — code label (own line or inline)
//	LOAD sX, sY|kk                   — likewise AND OR XOR ADD ADDCY SUB
//	                                   SUBCY COMPARE TEST
//	SL0/SL1/SLX/SLA/RL sX            — shifts/rotates, likewise SR0 SR1 SRX
//	                                   SRA RR
//	INPUT sX, pp | INPUT sX, (sY)    — likewise OUTPUT STORE FETCH
//	JUMP [Z|NZ|C|NC,] label          — likewise CALL
//	RETURN [Z|NZ|C|NC]
//	ENABLE INTERRUPT / DISABLE INTERRUPT
//	RETURNI ENABLE|DISABLE
//
// Numeric literals are hexadecimal by KCPSM convention ("3F"); the prefixes
// 0x (hex) and # (decimal) are also accepted.
func Assemble(src string) ([]Instr, error) {
	a := &assembler{
		labels: make(map[string]uint16),
		consts: make(map[string]uint8),
	}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(src); err != nil {
		return nil, err
	}
	if len(a.prog) == 0 {
		return nil, fmt.Errorf("picoblaze asm: no instructions")
	}
	return a.prog, nil
}

// MustAssemble is Assemble for known-good embedded programs; it panics on
// error.
func MustAssemble(src string) []Instr {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Disassemble renders a program image back to one instruction per line.
func Disassemble(prog []Instr) string {
	var b strings.Builder
	for addr, in := range prog {
		fmt.Fprintf(&b, "%03X: %s\n", addr, in)
	}
	return b.String()
}

type assembler struct {
	labels map[string]uint16
	consts map[string]uint8
	prog   []Instr
}

// stmt is one cleaned source statement.
type stmt struct {
	line   int
	fields []string // mnemonic + comma-split operands
}

// clean splits the source into statements, collecting labels at pass time.
func (a *assembler) statements(src string, onLabel func(name string, addr uint16) error) ([]stmt, error) {
	var out []stmt
	addr := uint16(0)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off leading labels.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,") {
				break
			}
			if onLabel != nil {
				if err := onLabel(strings.ToUpper(label), addr); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
				}
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		if strings.EqualFold(fields[0], "CONSTANT") {
			out = append(out, stmt{line: lineNo + 1, fields: fields})
			continue // directives occupy no address
		}
		out = append(out, stmt{line: lineNo + 1, fields: fields})
		addr++
	}
	return out, nil
}

// splitOperands splits "OP a, b" into ["OP", "a", "b"], handling the
// two-word mnemonics ENABLE/DISABLE INTERRUPT.
func splitOperands(line string) []string {
	mnemonicEnd := strings.IndexAny(line, " \t")
	if mnemonicEnd < 0 {
		return []string{line}
	}
	op := line[:mnemonicEnd]
	rest := strings.TrimSpace(line[mnemonicEnd:])
	if strings.EqualFold(op, "ENABLE") || strings.EqualFold(op, "DISABLE") || strings.EqualFold(op, "RETURNI") {
		return []string{op + " " + strings.ToUpper(rest)}
	}
	fields := []string{op}
	for _, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			fields = append(fields, f)
		}
	}
	return fields
}

func (a *assembler) firstPass(src string) error {
	stmts, err := a.statements(src, func(name string, addr uint16) error {
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.labels[name] = addr
		return nil
	})
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if strings.EqualFold(s.fields[0], "CONSTANT") {
			if len(s.fields) != 3 {
				return fmt.Errorf("picoblaze asm line %d: CONSTANT needs name and value", s.line)
			}
			v, err := a.number(s.fields[2])
			if err != nil {
				return fmt.Errorf("picoblaze asm line %d: %w", s.line, err)
			}
			a.consts[strings.ToUpper(s.fields[1])] = v
		}
	}
	return nil
}

func (a *assembler) secondPass(src string) error {
	stmts, err := a.statements(src, nil)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if strings.EqualFold(s.fields[0], "CONSTANT") {
			continue
		}
		in, err := a.encode(s)
		if err != nil {
			return fmt.Errorf("picoblaze asm line %d: %w", s.line, err)
		}
		a.prog = append(a.prog, in)
		if len(a.prog) > ProgramSize {
			return fmt.Errorf("picoblaze asm: program exceeds %d words", ProgramSize)
		}
	}
	return nil
}

var aluOps = map[string]Op{
	"LOAD": OpLoad, "AND": OpAnd, "OR": OpOr, "XOR": OpXor,
	"ADD": OpAdd, "ADDCY": OpAddCy, "SUB": OpSub, "SUBCY": OpSubCy,
	"COMPARE": OpCompare, "TEST": OpTest,
}

var shiftOps = map[string]Op{
	"SL0": OpSL0, "SL1": OpSL1, "SLX": OpSLX, "SLA": OpSLA, "RL": OpRL,
	"SR0": OpSR0, "SR1": OpSR1, "SRX": OpSRX, "SRA": OpSRA, "RR": OpRR,
}

var ioOps = map[string]Op{
	"INPUT": OpInput, "OUTPUT": OpOutput, "STORE": OpStore, "FETCH": OpFetch,
}

func (a *assembler) encode(s stmt) (Instr, error) {
	op := strings.ToUpper(s.fields[0])
	switch {
	case op == "ENABLE INTERRUPT":
		return Instr{Op: OpEnableInt}, nil
	case op == "DISABLE INTERRUPT":
		return Instr{Op: OpDisableInt}, nil
	case strings.HasPrefix(op, "RETURNI"):
		switch strings.TrimSpace(strings.TrimPrefix(op, "RETURNI")) {
		case "ENABLE":
			return Instr{Op: OpReturnI, Enable: true}, nil
		case "DISABLE":
			return Instr{Op: OpReturnI}, nil
		}
		return Instr{}, fmt.Errorf("RETURNI needs ENABLE or DISABLE")
	}

	if alu, ok := aluOps[op]; ok {
		if len(s.fields) != 3 {
			return Instr{}, fmt.Errorf("%s needs two operands", op)
		}
		x, err := a.register(s.fields[1])
		if err != nil {
			return Instr{}, err
		}
		in := Instr{Op: alu, X: x}
		if y, err := a.register(s.fields[2]); err == nil {
			in.Y = y
			return in, nil
		}
		k, err := a.number(s.fields[2])
		if err != nil {
			return Instr{}, err
		}
		in.K = k
		in.Imm = true
		return in, nil
	}

	if sh, ok := shiftOps[op]; ok {
		if len(s.fields) != 2 {
			return Instr{}, fmt.Errorf("%s needs one register", op)
		}
		x, err := a.register(s.fields[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: sh, X: x}, nil
	}

	if io, ok := ioOps[op]; ok {
		if len(s.fields) != 3 {
			return Instr{}, fmt.Errorf("%s needs register and address", op)
		}
		x, err := a.register(s.fields[1])
		if err != nil {
			return Instr{}, err
		}
		in := Instr{Op: io, X: x}
		arg := s.fields[2]
		if strings.HasPrefix(arg, "(") && strings.HasSuffix(arg, ")") {
			y, err := a.register(strings.TrimSpace(arg[1 : len(arg)-1]))
			if err != nil {
				return Instr{}, err
			}
			in.Y = y
			return in, nil
		}
		k, err := a.number(arg)
		if err != nil {
			return Instr{}, err
		}
		in.K = k
		in.Imm = true
		return in, nil
	}

	switch op {
	case "JUMP", "CALL":
		o := OpJump
		if op == "CALL" {
			o = OpCall
		}
		cond := Always
		target := ""
		switch len(s.fields) {
		case 2:
			target = s.fields[1]
		case 3:
			c, err := condFromString(s.fields[1])
			if err != nil {
				return Instr{}, err
			}
			cond = c
			target = s.fields[2]
		default:
			return Instr{}, fmt.Errorf("%s needs a target", op)
		}
		addr, err := a.target(target)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: o, Cond: cond, Addr: addr}, nil
	case "RETURN":
		cond := Always
		if len(s.fields) == 2 {
			c, err := condFromString(s.fields[1])
			if err != nil {
				return Instr{}, err
			}
			cond = c
		}
		return Instr{Op: OpReturn, Cond: cond}, nil
	}
	return Instr{}, fmt.Errorf("unknown mnemonic %q", s.fields[0])
}

func (a *assembler) register(tok string) (uint8, error) {
	t := strings.ToUpper(strings.TrimSpace(tok))
	if len(t) == 2 && t[0] == 'S' {
		if v, err := strconv.ParseUint(t[1:], 16, 8); err == nil && v < NumRegisters {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("not a register: %q", tok)
}

func (a *assembler) number(tok string) (uint8, error) {
	t := strings.ToUpper(strings.TrimSpace(tok))
	if v, ok := a.consts[t]; ok {
		return v, nil
	}
	if strings.HasPrefix(t, "#") {
		v, err := strconv.ParseUint(t[1:], 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad decimal constant %q", tok)
		}
		return uint8(v), nil
	}
	t = strings.TrimPrefix(t, "0X")
	v, err := strconv.ParseUint(t, 16, 8)
	if err != nil {
		return 0, fmt.Errorf("bad constant %q", tok)
	}
	return uint8(v), nil
}

func (a *assembler) target(tok string) (uint16, error) {
	t := strings.ToUpper(strings.TrimSpace(tok))
	if addr, ok := a.labels[t]; ok {
		return addr, nil
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(t, "0X"), 16, 16)
	if err != nil || v >= ProgramSize {
		return 0, fmt.Errorf("unknown label or bad address %q", tok)
	}
	return uint16(v), nil
}

func condFromString(tok string) (Cond, error) {
	switch strings.ToUpper(strings.TrimSpace(tok)) {
	case "Z":
		return IfZ, nil
	case "NZ":
		return IfNZ, nil
	case "C":
		return IfC, nil
	case "NC":
		return IfNC, nil
	}
	return Always, fmt.Errorf("bad condition %q", tok)
}
