package picoblaze

import (
	"strings"
	"testing"
)

func TestAssembleLabelsAndConstants(t *testing.T) {
	prog, err := Assemble(`
		CONSTANT LIMIT, 0A
		LOAD s0, LIMIT
	top:
		SUB s0, 01
		JUMP NZ, top
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Fatalf("program length %d, want 3", len(prog))
	}
	if prog[0].K != 0x0A || !prog[0].Imm {
		t.Errorf("constant not resolved: %+v", prog[0])
	}
	if prog[2].Addr != 1 || prog[2].Cond != IfNZ {
		t.Errorf("jump not resolved: %+v", prog[2])
	}
}

func TestAssembleNumberBases(t *testing.T) {
	prog, err := Assemble(`
		LOAD s0, 1F
		LOAD s1, 0x2a
		LOAD s2, #10
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].K != 0x1F || prog[1].K != 0x2A || prog[2].K != 10 {
		t.Errorf("constants = %02X %02X %02X", prog[0].K, prog[1].K, prog[2].K)
	}
}

func TestAssembleIndirectIO(t *testing.T) {
	prog, err := Assemble(`
		INPUT s0, (s1)
		OUTPUT s2, 20
		STORE s3, (s4)
		FETCH s5, 3F
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Imm || prog[0].Y != 1 {
		t.Errorf("indirect INPUT = %+v", prog[0])
	}
	if !prog[1].Imm || prog[1].K != 0x20 {
		t.Errorf("direct OUTPUT = %+v", prog[1])
	}
}

func TestAssembleTwoWordMnemonics(t *testing.T) {
	prog, err := Assemble(`
		ENABLE INTERRUPT
		DISABLE INTERRUPT
		RETURNI ENABLE
		RETURNI DISABLE
	`)
	if err != nil {
		t.Fatal(err)
	}
	wants := []Op{OpEnableInt, OpDisableInt, OpReturnI, OpReturnI}
	for i, w := range wants {
		if prog[i].Op != w {
			t.Errorf("instr %d = %v, want %v", i, prog[i].Op, w)
		}
	}
	if !prog[2].Enable || prog[3].Enable {
		t.Error("RETURNI enable flags wrong")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"unknown op", "FROB s0, 01", "unknown mnemonic"},
		{"bad register", "LOAD sZ, 01", "not a register"},
		{"bad constant", "LOAD s0, XYZ", "bad constant"},
		{"unknown label", "JUMP nowhere", "unknown label"},
		{"dup label", "a:\nLOAD s0, 01\na:\nLOAD s0, 02", "duplicate label"},
		{"empty", "; nothing here", "no instructions"},
		{"bad cond", "JUMP Q, 000", "bad condition"},
		{"missing operand", "ADD s0", "two operands"},
		{"returni arg", "RETURNI MAYBE", "ENABLE or DISABLE"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestAssembleCaseInsensitive(t *testing.T) {
	prog, err := Assemble(`
	Start:
		load S0, ff
		jump start
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].K != 0xFF || prog[1].Addr != 0 {
		t.Errorf("case-insensitive parse failed: %+v", prog)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		CONSTANT TH, 30
	start:
		INPUT s1, 01
		FETCH s2, (s1)
		ADD s2, s1
		COMPARE s2, TH
		JUMP C, start
		CALL fire
		RETURN
	fire:
		OUTPUT s2, 20
		SR0 s2
		RETURNI ENABLE
	`
	prog := MustAssemble(src)
	text := Disassemble(prog)
	// Re-assembling the disassembly (stripping addresses) must yield the
	// same instruction stream.
	var lines []string
	for _, l := range strings.Split(text, "\n") {
		if i := strings.Index(l, ": "); i >= 0 {
			lines = append(lines, l[i+2:])
		}
	}
	prog2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(prog2) != len(prog) {
		t.Fatalf("round trip length %d vs %d", len(prog2), len(prog))
	}
	for i := range prog {
		if prog[i] != prog2[i] {
			t.Errorf("instr %d: %+v vs %+v", i, prog[i], prog2[i])
		}
	}
}

func TestNIProgramAssembles(t *testing.T) {
	prog := MustAssemble(NIProgram)
	if len(prog) == 0 || len(prog) > 64 {
		t.Errorf("NI program has %d words; expected a small pathway", len(prog))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustAssemble("BOGUS")
}
