// Package picoblaze implements the embedded substrate hosting the paper's
// Artificial Intelligence Module: a PicoBlaze-3-style 8-bit microcontroller
// (16 registers, 64-byte scratchpad, 1K instruction store, Z/C flags, 31-deep
// call stack, port-mapped I/O), a two-pass assembler for its mnemonics, and
// an aim.Engine adapter that runs the Network Interaction threshold pathway
// as real embedded code.
//
// The experiment controller of the real platform uploads AIM programs at
// runtime; the adapter mirrors that workflow — engines are built from
// assembled program images, and the instruction-level implementation is
// tested for decision equivalence against the behavioural Go engine.
package picoblaze

import "fmt"

// Machine size constants (PicoBlaze-3).
const (
	NumRegisters   = 16
	ScratchpadSize = 64
	ProgramSize    = 1024
	StackDepth     = 31
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. Register/constant addressing is selected by Instr.Imm.
const (
	OpInvalid Op = iota
	OpLoad
	OpAnd
	OpOr
	OpXor
	OpAdd
	OpAddCy
	OpSub
	OpSubCy
	OpCompare
	OpTest
	OpSL0
	OpSL1
	OpSLX
	OpSLA
	OpRL
	OpSR0
	OpSR1
	OpSRX
	OpSRA
	OpRR
	OpInput
	OpOutput
	OpStore
	OpFetch
	OpJump
	OpCall
	OpReturn
	OpEnableInt
	OpDisableInt
	OpReturnI
)

var opNames = map[Op]string{
	OpLoad: "LOAD", OpAnd: "AND", OpOr: "OR", OpXor: "XOR",
	OpAdd: "ADD", OpAddCy: "ADDCY", OpSub: "SUB", OpSubCy: "SUBCY",
	OpCompare: "COMPARE", OpTest: "TEST",
	OpSL0: "SL0", OpSL1: "SL1", OpSLX: "SLX", OpSLA: "SLA", OpRL: "RL",
	OpSR0: "SR0", OpSR1: "SR1", OpSRX: "SRX", OpSRA: "SRA", OpRR: "RR",
	OpInput: "INPUT", OpOutput: "OUTPUT", OpStore: "STORE", OpFetch: "FETCH",
	OpJump: "JUMP", OpCall: "CALL", OpReturn: "RETURN",
	OpEnableInt: "ENABLE INTERRUPT", OpDisableInt: "DISABLE INTERRUPT", OpReturnI: "RETURNI",
}

// String names the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a branch condition.
type Cond uint8

// Branch conditions.
const (
	Always Cond = iota
	IfZ
	IfNZ
	IfC
	IfNC
)

// String names the condition.
func (c Cond) String() string {
	switch c {
	case IfZ:
		return "Z"
	case IfNZ:
		return "NZ"
	case IfC:
		return "C"
	case IfNC:
		return "NC"
	}
	return ""
}

// Instr is one decoded instruction.
type Instr struct {
	Op Op
	// X is the destination/source register index.
	X uint8
	// Y is the second register index when Imm is false.
	Y uint8
	// K is the constant operand when Imm is true (also the port/scratchpad
	// address for direct-address I/O).
	K uint8
	// Imm selects the constant addressing form.
	Imm bool
	// Addr is the branch target for JUMP/CALL.
	Addr uint16
	// Cond is the branch condition for JUMP/CALL/RETURN.
	Cond Cond
	// Enable is the RETURNI interrupt re-enable flag.
	Enable bool
}

// String disassembles the instruction.
func (i Instr) String() string {
	reg := func(r uint8) string { return fmt.Sprintf("s%X", r) }
	operand := func() string {
		if i.Imm {
			return fmt.Sprintf("%02X", i.K)
		}
		return reg(i.Y)
	}
	switch i.Op {
	case OpLoad, OpAnd, OpOr, OpXor, OpAdd, OpAddCy, OpSub, OpSubCy, OpCompare, OpTest:
		return fmt.Sprintf("%s %s, %s", i.Op, reg(i.X), operand())
	case OpSL0, OpSL1, OpSLX, OpSLA, OpRL, OpSR0, OpSR1, OpSRX, OpSRA, OpRR:
		return fmt.Sprintf("%s %s", i.Op, reg(i.X))
	case OpInput, OpOutput, OpStore, OpFetch:
		if i.Imm {
			return fmt.Sprintf("%s %s, %02X", i.Op, reg(i.X), i.K)
		}
		return fmt.Sprintf("%s %s, (%s)", i.Op, reg(i.X), reg(i.Y))
	case OpJump, OpCall:
		if i.Cond == Always {
			return fmt.Sprintf("%s %03X", i.Op, i.Addr)
		}
		return fmt.Sprintf("%s %s, %03X", i.Op, i.Cond, i.Addr)
	case OpReturn:
		if i.Cond == Always {
			return "RETURN"
		}
		return fmt.Sprintf("RETURN %s", i.Cond)
	case OpReturnI:
		if i.Enable {
			return "RETURNI ENABLE"
		}
		return "RETURNI DISABLE"
	}
	return i.Op.String()
}

// Bus is the CPU's port-mapped I/O interface — the monitor/knob fabric the
// AIM is wired to on the real router.
type Bus interface {
	// In reads input port p.
	In(p uint8) uint8
	// Out writes v to output port p.
	Out(p uint8, v uint8)
}

// NopBus discards writes and reads zero.
type NopBus struct{}

// In implements Bus.
func (NopBus) In(uint8) uint8 { return 0 }

// Out implements Bus.
func (NopBus) Out(uint8, uint8) {}

// CPU is one PicoBlaze-style core.
type CPU struct {
	Regs    [NumRegisters]uint8
	Scratch [ScratchpadSize]uint8
	PC      uint16
	Zero    bool
	Carry   bool

	stack  [StackDepth]uint16
	sp     int
	intEn  bool
	halted bool

	prog []Instr
	bus  Bus

	// Steps counts executed instructions (for cost accounting).
	Steps uint64
}

// New builds a CPU running the given program image against the bus.
func New(prog []Instr, bus Bus) (*CPU, error) {
	if len(prog) == 0 {
		return nil, fmt.Errorf("picoblaze: empty program")
	}
	if len(prog) > ProgramSize {
		return nil, fmt.Errorf("picoblaze: program of %d words exceeds %d-word store", len(prog), ProgramSize)
	}
	if bus == nil {
		bus = NopBus{}
	}
	return &CPU{prog: prog, bus: bus}, nil
}

// Reset returns the CPU to its power-on state (program retained).
func (c *CPU) Reset() {
	*c = CPU{prog: c.prog, bus: c.bus}
}

// Halted reports whether the CPU stopped on an error (bad PC or stack
// overflow). A halted CPU ignores Step.
func (c *CPU) Halted() bool { return c.halted }

// Step executes one instruction. It returns false once halted.
func (c *CPU) Step() bool {
	if c.halted {
		return false
	}
	if int(c.PC) >= len(c.prog) {
		// Off the end of the program store: on the silicon the PC wraps;
		// for the AIM programs that is always a bug, so halt loudly.
		c.halted = true
		return false
	}
	in := c.prog[c.PC]
	c.PC++
	c.Steps++
	c.exec(in)
	return !c.halted
}

// Run executes up to n instructions, stopping early when halted.
// It returns the number of instructions executed.
func (c *CPU) Run(n int) int {
	done := 0
	for done < n && c.Step() {
		done++
	}
	if done < n && !c.halted {
		done++ // the failed Step that halted still consumed the slot
	}
	return done
}

func (c *CPU) operand(in Instr) uint8 {
	if in.Imm {
		return in.K
	}
	return c.Regs[in.Y&0x0F]
}

func (c *CPU) setZ(v uint8) { c.Zero = v == 0 }

func (c *CPU) exec(in Instr) {
	x := in.X & 0x0F
	switch in.Op {
	case OpLoad:
		c.Regs[x] = c.operand(in)
	case OpAnd:
		c.Regs[x] &= c.operand(in)
		c.setZ(c.Regs[x])
		c.Carry = false
	case OpOr:
		c.Regs[x] |= c.operand(in)
		c.setZ(c.Regs[x])
		c.Carry = false
	case OpXor:
		c.Regs[x] ^= c.operand(in)
		c.setZ(c.Regs[x])
		c.Carry = false
	case OpAdd:
		sum := uint16(c.Regs[x]) + uint16(c.operand(in))
		c.Carry = sum > 0xFF
		c.Regs[x] = uint8(sum)
		c.setZ(c.Regs[x])
	case OpAddCy:
		sum := uint16(c.Regs[x]) + uint16(c.operand(in))
		if c.Carry {
			sum++
		}
		c.Carry = sum > 0xFF
		c.Regs[x] = uint8(sum)
		c.setZ(c.Regs[x])
	case OpSub:
		v := c.operand(in)
		c.Carry = v > c.Regs[x]
		c.Regs[x] -= v
		c.setZ(c.Regs[x])
	case OpSubCy:
		v := uint16(c.operand(in))
		if c.Carry {
			v++
		}
		c.Carry = v > uint16(c.Regs[x])
		c.Regs[x] = uint8(uint16(c.Regs[x]) - v)
		c.setZ(c.Regs[x])
	case OpCompare:
		v := c.operand(in)
		c.Carry = v > c.Regs[x]
		c.Zero = c.Regs[x] == v
	case OpTest:
		r := c.Regs[x] & c.operand(in)
		c.setZ(r)
		c.Carry = parity(r)
	case OpSL0, OpSL1, OpSLX, OpSLA:
		var bit0 uint8
		switch in.Op {
		case OpSL1:
			bit0 = 1
		case OpSLX:
			bit0 = c.Regs[x] & 1
		case OpSLA:
			if c.Carry {
				bit0 = 1
			}
		}
		c.Carry = c.Regs[x]&0x80 != 0
		c.Regs[x] = c.Regs[x]<<1 | bit0
		c.setZ(c.Regs[x])
	case OpRL:
		top := c.Regs[x] & 0x80
		c.Regs[x] = c.Regs[x]<<1 | top>>7
		c.Carry = top != 0
		c.setZ(c.Regs[x])
	case OpSR0, OpSR1, OpSRX, OpSRA:
		var bit7 uint8
		switch in.Op {
		case OpSR1:
			bit7 = 0x80
		case OpSRX:
			bit7 = c.Regs[x] & 0x80
		case OpSRA:
			if c.Carry {
				bit7 = 0x80
			}
		}
		c.Carry = c.Regs[x]&1 != 0
		c.Regs[x] = c.Regs[x]>>1 | bit7
		c.setZ(c.Regs[x])
	case OpRR:
		low := c.Regs[x] & 1
		c.Regs[x] = c.Regs[x]>>1 | low<<7
		c.Carry = low != 0
		c.setZ(c.Regs[x])
	case OpInput:
		c.Regs[x] = c.bus.In(c.portAddr(in))
	case OpOutput:
		c.bus.Out(c.portAddr(in), c.Regs[x])
	case OpStore:
		c.Scratch[c.portAddr(in)%ScratchpadSize] = c.Regs[x]
	case OpFetch:
		c.Regs[x] = c.Scratch[c.portAddr(in)%ScratchpadSize]
	case OpJump:
		if c.condMet(in.Cond) {
			c.PC = in.Addr
		}
	case OpCall:
		if c.condMet(in.Cond) {
			if c.sp >= StackDepth {
				c.halted = true
				return
			}
			c.stack[c.sp] = c.PC
			c.sp++
			c.PC = in.Addr
		}
	case OpReturn:
		if c.condMet(in.Cond) {
			if c.sp == 0 {
				c.halted = true
				return
			}
			c.sp--
			c.PC = c.stack[c.sp]
		}
	case OpEnableInt:
		c.intEn = true
	case OpDisableInt:
		c.intEn = false
	case OpReturnI:
		if c.sp > 0 {
			c.sp--
			c.PC = c.stack[c.sp]
		}
		c.intEn = in.Enable
	default:
		c.halted = true
	}
}

func (c *CPU) portAddr(in Instr) uint8 {
	if in.Imm {
		return in.K
	}
	return c.Regs[in.Y&0x0F]
}

func (c *CPU) condMet(cond Cond) bool {
	switch cond {
	case Always:
		return true
	case IfZ:
		return c.Zero
	case IfNZ:
		return !c.Zero
	case IfC:
		return c.Carry
	case IfNC:
		return !c.Carry
	}
	return false
}

// parity returns true for odd parity (the PicoBlaze TEST carry semantics).
func parity(v uint8) bool {
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v&1 == 1
}

// Interrupt requests an interrupt: if enabled, the CPU pushes the current PC
// and vectors to the last program address, as on the real core. It returns
// whether the interrupt was taken.
func (c *CPU) Interrupt() bool {
	if !c.intEn || c.halted || c.sp >= StackDepth {
		return false
	}
	c.stack[c.sp] = c.PC
	c.sp++
	c.PC = uint16(len(c.prog) - 1)
	c.intEn = false
	return true
}
