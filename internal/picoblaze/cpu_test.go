package picoblaze

import (
	"testing"
	"testing/quick"
)

// runProg assembles and runs src for up to n steps against bus.
func runProg(t *testing.T, src string, n int, bus Bus) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	cpu, err := New(prog, bus)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cpu.Run(n)
	return cpu
}

func TestLoadAndArithmetic(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, 10
		LOAD s1, s0
		ADD  s1, 05
		SUB  s0, 01
	`, 4, nil)
	if cpu.Regs[0] != 0x0F {
		t.Errorf("s0 = %02X, want 0F", cpu.Regs[0])
	}
	if cpu.Regs[1] != 0x15 {
		t.Errorf("s1 = %02X, want 15", cpu.Regs[1])
	}
}

func TestAddCarryChain(t *testing.T) {
	// 16-bit add: (s1:s0) = 0x01FF + 0x0001 = 0x0200.
	cpu := runProg(t, `
		LOAD s0, FF
		LOAD s1, 01
		ADD  s0, 01
		ADDCY s1, 00
	`, 4, nil)
	if cpu.Regs[0] != 0x00 || cpu.Regs[1] != 0x02 {
		t.Errorf("result = %02X%02X, want 0200", cpu.Regs[1], cpu.Regs[0])
	}
}

func TestSubBorrowChain(t *testing.T) {
	// 16-bit sub: 0x0200 - 0x0001 = 0x01FF.
	cpu := runProg(t, `
		LOAD s0, 00
		LOAD s1, 02
		SUB  s0, 01
		SUBCY s1, 00
	`, 4, nil)
	if cpu.Regs[0] != 0xFF || cpu.Regs[1] != 0x01 {
		t.Errorf("result = %02X%02X, want 01FF", cpu.Regs[1], cpu.Regs[0])
	}
}

// Property: ADD/ADDCY model 8-bit addition with carry exactly.
func TestAddProperty(t *testing.T) {
	f := func(a, b uint8, carryIn bool) bool {
		cpu, _ := New([]Instr{{Op: OpAddCy, X: 0, K: b, Imm: true}}, nil)
		cpu.Regs[0] = a
		cpu.Carry = carryIn
		cpu.Step()
		want := uint16(a) + uint16(b)
		if carryIn {
			want++
		}
		return cpu.Regs[0] == uint8(want) &&
			cpu.Carry == (want > 0xFF) &&
			cpu.Zero == (uint8(want) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SUB borrow semantics match unsigned comparison.
func TestSubProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		cpu, _ := New([]Instr{{Op: OpSub, X: 0, K: b, Imm: true}}, nil)
		cpu.Regs[0] = a
		cpu.Step()
		return cpu.Regs[0] == a-b && cpu.Carry == (b > a) && cpu.Zero == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogicOpsAndFlags(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, F0
		AND  s0, 0F
	`, 2, nil)
	if cpu.Regs[0] != 0 || !cpu.Zero || cpu.Carry {
		t.Errorf("AND result s0=%02X Z=%v C=%v", cpu.Regs[0], cpu.Zero, cpu.Carry)
	}
	cpu = runProg(t, `
		LOAD s0, F0
		OR   s0, 0F
		XOR  s0, FF
	`, 3, nil)
	if cpu.Regs[0] != 0 || !cpu.Zero {
		t.Errorf("OR/XOR chain s0=%02X Z=%v", cpu.Regs[0], cpu.Zero)
	}
}

func TestCompareSetsFlagsWithoutWriting(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, 10
		COMPARE s0, 20
	`, 2, nil)
	if cpu.Regs[0] != 0x10 {
		t.Error("COMPARE modified the register")
	}
	if !cpu.Carry || cpu.Zero {
		t.Errorf("COMPARE 10 vs 20: C=%v Z=%v, want C=true Z=false", cpu.Carry, cpu.Zero)
	}
}

func TestTestParity(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, 07
		TEST s0, FF
	`, 2, nil)
	// 0x07 has odd parity (3 bits).
	if !cpu.Carry || cpu.Zero {
		t.Errorf("TEST 07: C=%v Z=%v, want C=true (odd parity)", cpu.Carry, cpu.Zero)
	}
}

func TestShiftsAndRotates(t *testing.T) {
	cases := []struct {
		src   string
		want  uint8
		carry bool
	}{
		{"LOAD s0, 81\nSL0 s0", 0x02, true},
		{"LOAD s0, 81\nSL1 s0", 0x03, true},
		{"LOAD s0, 81\nRL s0", 0x03, true},
		{"LOAD s0, 81\nSR0 s0", 0x40, true},
		{"LOAD s0, 81\nSR1 s0", 0xC0, true},
		{"LOAD s0, 81\nSRX s0", 0xC0, true},
		{"LOAD s0, 81\nRR s0", 0xC0, true},
	}
	for _, c := range cases {
		cpu := runProg(t, c.src, 2, nil)
		if cpu.Regs[0] != c.want || cpu.Carry != c.carry {
			t.Errorf("%q -> s0=%02X C=%v, want %02X C=%v", c.src, cpu.Regs[0], cpu.Carry, c.want, c.carry)
		}
	}
}

// Property: RL then RR restores the register.
func TestRotateRoundTripProperty(t *testing.T) {
	f := func(v uint8) bool {
		cpu, _ := New([]Instr{{Op: OpRL, X: 0}, {Op: OpRR, X: 0}}, nil)
		cpu.Regs[0] = v
		cpu.Step()
		cpu.Step()
		return cpu.Regs[0] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScratchpadStoreFetch(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, AB
		STORE s0, 3F
		LOAD s1, 3F
		FETCH s2, (s1)
	`, 4, nil)
	if cpu.Regs[2] != 0xAB {
		t.Errorf("indirect FETCH = %02X, want AB", cpu.Regs[2])
	}
	if cpu.Scratch[0x3F] != 0xAB {
		t.Errorf("scratch[3F] = %02X", cpu.Scratch[0x3F])
	}
}

func TestJumpLoopAndConditions(t *testing.T) {
	// Count down from 5 to 0.
	cpu := runProg(t, `
		LOAD s0, 05
	loop:
		SUB s0, 01
		JUMP NZ, loop
		LOAD s1, AA
	`, 100, nil)
	if cpu.Regs[0] != 0 || cpu.Regs[1] != 0xAA {
		t.Errorf("loop ended with s0=%02X s1=%02X", cpu.Regs[0], cpu.Regs[1])
	}
}

func TestCallReturn(t *testing.T) {
	cpu := runProg(t, `
		CALL sub
		LOAD s1, 22
		JUMP end
	sub:
		LOAD s0, 11
		RETURN
	end:
		LOAD s2, 33
	`, 10, nil)
	if cpu.Regs[0] != 0x11 || cpu.Regs[1] != 0x22 || cpu.Regs[2] != 0x33 {
		t.Errorf("regs = %02X %02X %02X", cpu.Regs[0], cpu.Regs[1], cpu.Regs[2])
	}
}

func TestReturnWithoutCallHalts(t *testing.T) {
	cpu := runProg(t, `RETURN`, 5, nil)
	if !cpu.Halted() {
		t.Error("stack underflow did not halt")
	}
}

func TestCallOverflowHalts(t *testing.T) {
	cpu := runProg(t, `
	rec:
		CALL rec
	`, 1000, nil)
	if !cpu.Halted() {
		t.Error("stack overflow did not halt")
	}
}

func TestRunOffEndHalts(t *testing.T) {
	cpu := runProg(t, `LOAD s0, 01`, 10, nil)
	if !cpu.Halted() {
		t.Error("running off the program end did not halt")
	}
	if cpu.Step() {
		t.Error("halted CPU stepped")
	}
}

// recordBus captures I/O traffic.
type recordBus struct {
	inputs  map[uint8]uint8
	outputs []struct{ Port, Val uint8 }
}

func (b *recordBus) In(p uint8) uint8 { return b.inputs[p] }
func (b *recordBus) Out(p, v uint8) {
	b.outputs = append(b.outputs, struct{ Port, Val uint8 }{p, v})
}

func TestInputOutputPorts(t *testing.T) {
	bus := &recordBus{inputs: map[uint8]uint8{0x05: 0x42}}
	cpu := runProg(t, `
		INPUT s0, 05
		ADD   s0, 01
		OUTPUT s0, 09
		LOAD  s1, 09
		OUTPUT s0, (s1)
	`, 5, bus)
	if cpu.Regs[0] != 0x43 {
		t.Errorf("s0 = %02X", cpu.Regs[0])
	}
	if len(bus.outputs) != 2 || bus.outputs[0].Port != 9 || bus.outputs[0].Val != 0x43 {
		t.Errorf("outputs = %+v", bus.outputs)
	}
}

func TestInterrupt(t *testing.T) {
	prog := MustAssemble(`
	main:
		ENABLE INTERRUPT
	spin:
		JUMP spin
		LOAD s0, 99   ; unreachable
	isr:
		LOAD s7, 55
		RETURNI ENABLE
	`)
	// The interrupt vector is the last program address; our isr label is not
	// there, so build the canonical layout by hand: vector jumps to isr.
	progWithVector := append(prog, Instr{Op: OpJump, Addr: 3}) // isr at addr 3
	cpu, err := New(progWithVector, nil)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Run(3)
	if !cpu.Interrupt() {
		t.Fatal("interrupt not taken while enabled")
	}
	cpu.Run(3)
	if cpu.Regs[7] != 0x55 {
		t.Errorf("ISR did not run: s7=%02X", cpu.Regs[7])
	}
	// After RETURNI ENABLE the CPU is back in the spin loop, interruptible.
	if !cpu.Interrupt() {
		t.Error("interrupt disabled after RETURNI ENABLE")
	}
	cpu2, _ := New(MustAssemble("spin: JUMP spin"), nil)
	cpu2.Run(2)
	if cpu2.Interrupt() {
		t.Error("interrupt taken while disabled")
	}
}

func TestResetClearsState(t *testing.T) {
	cpu := runProg(t, `
		LOAD s0, 42
		STORE s0, 01
	loop:
		JUMP loop
	`, 10, nil)
	cpu.Reset()
	if cpu.Regs[0] != 0 || cpu.Scratch[1] != 0 || cpu.PC != 0 || cpu.Steps != 0 {
		t.Error("Reset left state behind")
	}
	if !cpu.Step() {
		t.Error("reset CPU cannot step")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty program accepted")
	}
	big := make([]Instr, ProgramSize+1)
	if _, err := New(big, nil); err == nil {
		t.Error("oversized program accepted")
	}
}
