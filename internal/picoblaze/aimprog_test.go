package picoblaze

import (
	"testing"
	"testing/quick"

	"centurion/internal/aim"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func fj() *taskgraph.Graph { return taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams()) }

func newPB(t *testing.T, par NIEngineParams) *NIEngine {
	t.Helper()
	e, err := NewNIEngine(fj(), par)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPBEngineFiresAtThreshold(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 5, InternalWeight: 1, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 4; i++ {
		e.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
	}
	if _, ok := e.Decide(4); ok {
		t.Fatal("fired below threshold")
	}
	e.OnRouted(taskgraph.ForkWorker, 5)
	task, ok := e.Decide(5)
	if !ok || task != taskgraph.ForkWorker {
		t.Fatalf("Decide = %d,%v, want worker", task, ok)
	}
	// Counters reset after firing.
	for _, c := range e.Counters(3) {
		if c != 0 {
			t.Fatalf("counters not reset: %v", e.Counters(3))
		}
	}
}

func TestPBEngineReElection(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 3, InternalWeight: 1, PinSources: true})
	e.NoteTask(taskgraph.ForkWorker)
	for i := 0; i < 3; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	if task, ok := e.Decide(0); ok {
		t.Fatalf("re-election switched to %d", task)
	}
	for _, c := range e.Counters(3) {
		if c != 0 {
			t.Fatal("counters not reset on re-election")
		}
	}
}

func TestPBEnginePinsSources(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 1, InternalWeight: 1, PinSources: true})
	e.NoteTask(taskgraph.ForkSource)
	e.OnRouted(taskgraph.ForkWorker, 0)
	if _, ok := e.Decide(0); ok {
		t.Fatal("pinned source switched")
	}
	e.SetParam(aim.ParamPinSources, 0)
	if task, ok := e.Decide(1); !ok || task != taskgraph.ForkWorker {
		t.Fatalf("unpinned Decide = %d,%v", task, ok)
	}
}

func TestPBEngineInternalWeight(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 6, InternalWeight: 3, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	e.OnInternal(taskgraph.ForkWorker, 0)
	e.OnInternal(taskgraph.ForkWorker, 1)
	task, ok := e.Decide(1)
	if !ok || task != taskgraph.ForkWorker {
		t.Fatalf("internal weight 3 x2 should fire threshold 6; got %d,%v", task, ok)
	}
}

func TestPBEngineThresholdParam(t *testing.T) {
	e := newPB(t, DefaultNIEngineParams())
	e.NoteTask(taskgraph.ForkSink)
	e.SetParam(aim.ParamThreshold, 2)
	e.OnRouted(taskgraph.ForkWorker, 0)
	e.OnRouted(taskgraph.ForkWorker, 0)
	if _, ok := e.Decide(0); !ok {
		t.Fatal("RCAP threshold write ignored")
	}
}

func TestPBEngineSaturation(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 255, InternalWeight: 1, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 1000; i++ {
		e.OnRouted(taskgraph.ForkSink, sim.Tick(i))
	}
	// Own-task saturation fires a re-election (reset), not a switch.
	if task, ok := e.Decide(0); ok {
		t.Fatalf("saturated own-task counter switched to %d", task)
	}
	// Counter must have saturated at 255, not wrapped.
	e2 := newPB(t, NIEngineParams{Threshold: 200, InternalWeight: 1, PinSources: true})
	e2.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 300; i++ {
		e2.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
	}
	if task, ok := e2.Decide(0); !ok || task != taskgraph.ForkWorker {
		t.Fatalf("300 impulses vs threshold 200: %d,%v (wrap would miss)", task, ok)
	}
}

func TestPBEngineReset(t *testing.T) {
	e := newPB(t, NIEngineParams{Threshold: 10, InternalWeight: 1})
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	e.Decide(0)
	e.Reset()
	for _, c := range e.Counters(3) {
		if c != 0 {
			t.Fatal("Reset left counters")
		}
	}
}

func TestPBEngineRejectsWideGraphs(t *testing.T) {
	g := taskgraph.New("wide")
	for i := 1; i <= 16; i++ {
		tk := taskgraph.Task{ID: taskgraph.TaskID(i)}
		if i == 1 {
			tk.GenPeriod = 10
		}
		g.AddTask(tk)
	}
	for i := 1; i < 16; i++ {
		g.AddEdge(taskgraph.TaskID(i), taskgraph.TaskID(i+1), 1)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNIEngine(g, DefaultNIEngineParams()); err == nil {
		t.Error("16-task graph accepted despite 4-bit port map")
	}
}

// The embedded implementation must make the same decisions as the
// behavioural Go engine for arbitrary impulse schedules — the paper's AIM is
// "uploaded program code" implementing exactly the behavioural pathway.
func TestPBEquivalenceWithBehaviouralNI(t *testing.T) {
	f := func(seed uint64, events []uint8) bool {
		g := fj()
		par := aim.NIParams{Threshold: 20, InternalWeight: 3, PinSources: true}
		ref := aim.NewNI(g, par)
		emb, err := NewNIEngine(g, NIEngineParams{Threshold: 20, InternalWeight: 3, PinSources: true})
		if err != nil {
			return false
		}
		cur := taskgraph.ForkSink
		ref.NoteTask(cur)
		emb.NoteTask(cur)
		now := sim.Tick(0)
		for _, ev := range events {
			task := taskgraph.TaskID(ev%3 + 1)
			switch (ev / 3) % 3 {
			case 0:
				ref.OnRouted(task, now)
				emb.OnRouted(task, now)
			case 1:
				ref.OnInternal(task, now)
				emb.OnInternal(task, now)
			case 2:
				// Decision poll between impulses.
				rt, rok := ref.Decide(now)
				et, eok := emb.Decide(now)
				if rok != eok || (rok && rt != et) {
					return false
				}
				if rok {
					cur = rt
					ref.NoteTask(cur)
					emb.NoteTask(cur)
				}
			}
			now++
		}
		rt, rok := ref.Decide(now)
		et, eok := emb.Decide(now)
		return rok == eok && (!rok || rt == et)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPBEngineStepBudget(t *testing.T) {
	e := newPB(t, DefaultNIEngineParams())
	e.NoteTask(taskgraph.ForkSink)
	before := e.Steps()
	e.Decide(0)
	used := e.Steps() - before
	if used == 0 || used > DecideBudget {
		t.Errorf("decision pass used %d instructions, budget %d", used, DecideBudget)
	}
}
