package picoblaze

import (
	"fmt"

	"centurion/internal/aim"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// AIM port map: the monitor/knob interface the router fabric exposes to the
// embedded controller (Figure 2 of the paper). Input ports 0x01..0x0F carry
// the latched impulse counts per task ID ("functions for interfacing to
// convert between impulse sequences and binary number representation");
// reading a latch clears it.
const (
	PortImpulseBase = 0x00 // +taskID
	PortCurrentTask = 0x10
	PortThreshold   = 0x11
	PortSwitchKnob  = 0x20
	PortDone        = 0x2F
)

// NIProgram is the Network Interaction threshold pathway as PicoBlaze
// assembly: accumulate latched impulses into per-task scratchpad counters
// (saturating), then scan the counters in task order; the first counter at
// or above the threshold resets all counters and — unless it re-elects the
// current task — drives the task-switch knob.
//
// Registers: s0 task cursor, s1 counter, s2 impulses, s3 threshold,
// s4 current task, s5/s6 reset loop temporaries.
const NIProgram = `
; Network Interaction stimulus-threshold pathway (paper §IV-A1).
CONSTANT NTASKS, 03

start:
        INPUT   s3, 11          ; threshold parameter register
        INPUT   s4, 10          ; current task
        LOAD    s0, 01
accum:
        INPUT   s2, (s0)        ; latched impulses for task s0 (clears latch)
        FETCH   s1, (s0)        ; per-task counter lives in scratchpad[task]
        ADD     s1, s2
        JUMP    NC, nosat
        LOAD    s1, FF          ; saturate at 255 like the 8-bit hardware
nosat:
        STORE   s1, (s0)
        COMPARE s0, NTASKS
        JUMP    Z, scan
        ADD     s0, 01
        JUMP    accum

scan:
        LOAD    s0, 01
check:
        FETCH   s1, (s0)
        COMPARE s1, s3          ; C set when threshold > counter
        JUMP    NC, fired
        COMPARE s0, NTASKS
        JUMP    Z, done
        ADD     s0, 01
        JUMP    check

fired:
        CALL    resetall
        COMPARE s0, s4
        JUMP    Z, done         ; re-election of the current task: no knob
        OUTPUT  s0, 20          ; task-switch knob
done:
        OUTPUT  s0, 2F          ; handshake: decision pass complete
        JUMP    start

resetall:
        LOAD    s5, 01
        LOAD    s6, 00
ra:
        STORE   s6, (s5)
        COMPARE s5, NTASKS
        RETURN  Z
        ADD     s5, 01
        JUMP    ra
`

// DecideBudget bounds the instructions one Decide pass may execute.
const DecideBudget = 512

// NIEngine hosts the NI pathway on an emulated PicoBlaze, implementing
// aim.Engine so the platform can embed instruction-level intelligence in
// place of the behavioural model. Impulses latch into 8-bit registers
// between decision passes, exactly like the hardware interface.
type NIEngine struct {
	cpu   *CPU
	graph *taskgraph.Graph

	pending    [16]int
	current    taskgraph.TaskID
	threshold  uint8
	internalW  int
	pinSources bool

	decision taskgraph.TaskID
	decided  bool
	done     bool
}

// NIEngineParams configure the embedded engine.
type NIEngineParams struct {
	// Threshold is the firing level (must fit the 8-bit parameter register).
	Threshold int
	// InternalWeight is the impulse weight of internal deliveries.
	InternalWeight int
	// PinSources matches aim.NIParams.PinSources.
	PinSources bool
}

// DefaultNIEngineParams mirror aim.DefaultNIParams.
func DefaultNIEngineParams() NIEngineParams {
	base := aim.DefaultNIParams()
	return NIEngineParams{
		Threshold:      base.Threshold,
		InternalWeight: base.InternalWeight,
		PinSources:     base.PinSources,
	}
}

// NewNIEngine assembles the NI program and wraps it in an aim.Engine.
// Graphs with more than 15 task IDs do not fit the 4-bit port map.
func NewNIEngine(g *taskgraph.Graph, par NIEngineParams) (*NIEngine, error) {
	if g.MaxTaskID() > 15 {
		return nil, fmt.Errorf("picoblaze: task ID %d exceeds the AIM port map", g.MaxTaskID())
	}
	e := &NIEngine{
		graph:      g,
		internalW:  par.InternalWeight,
		pinSources: par.PinSources,
	}
	if par.Threshold < 1 {
		par.Threshold = 1
	}
	if par.Threshold > 255 {
		par.Threshold = 255
	}
	e.threshold = uint8(par.Threshold)
	if e.internalW <= 0 {
		e.internalW = 1
	}
	cpu, err := New(MustAssemble(NIProgram), e)
	if err != nil {
		return nil, err
	}
	e.cpu = cpu
	return e, nil
}

// NewNIEngineFactory returns an aim.Factory producing embedded NI engines;
// it panics if the program cannot host the graph (construction-time error).
func NewNIEngineFactory(par NIEngineParams) aim.Factory {
	return func(g *taskgraph.Graph) aim.Engine {
		e, err := NewNIEngine(g, par)
		if err != nil {
			panic(err)
		}
		return e
	}
}

// In implements Bus: the monitor side of the AIM interface.
func (e *NIEngine) In(p uint8) uint8 {
	switch {
	case p > PortImpulseBase && p < PortImpulseBase+16:
		t := int(p - PortImpulseBase)
		v := e.pending[t]
		if v > 255 {
			v = 255
		}
		e.pending[t] = 0
		return uint8(v)
	case p == PortCurrentTask:
		return uint8(e.current)
	case p == PortThreshold:
		return e.threshold
	}
	return 0
}

// Out implements Bus: the knob side of the AIM interface.
func (e *NIEngine) Out(p uint8, v uint8) {
	switch p {
	case PortSwitchKnob:
		e.decision = taskgraph.TaskID(v)
		e.decided = true
	case PortDone:
		e.done = true
	}
}

// Name implements aim.Engine.
func (e *NIEngine) Name() string { return "network-interaction/picoblaze" }

// OnRouted implements aim.Engine.
func (e *NIEngine) OnRouted(task taskgraph.TaskID, now sim.Tick) {
	if task > 0 && int(task) < len(e.pending) {
		e.pending[task]++
	}
}

// OnInternal implements aim.Engine.
func (e *NIEngine) OnInternal(task taskgraph.TaskID, now sim.Tick) {
	if task > 0 && int(task) < len(e.pending) {
		e.pending[task] += e.internalW
	}
}

// OnGenerated implements aim.Engine.
func (e *NIEngine) OnGenerated(sim.Tick) {}

// OnDeadlineLapse implements aim.Engine.
func (e *NIEngine) OnDeadlineLapse(taskgraph.TaskID, sim.Tick) {}

// OnNeighborSignal implements aim.Engine.
func (e *NIEngine) OnNeighborSignal(taskgraph.TaskID, sim.Tick) {}

// Decide implements aim.Engine: one full pass of the embedded program.
func (e *NIEngine) Decide(now sim.Tick) (taskgraph.TaskID, bool) {
	if e.pinSources && e.graph.IsSource(e.current) {
		return taskgraph.None, false
	}
	e.decided = false
	e.done = false
	e.cpu.PC = 0 // restart the pass; scratchpad counters persist
	for i := 0; i < DecideBudget && !e.done; i++ {
		if !e.cpu.Step() {
			return taskgraph.None, false
		}
	}
	if !e.decided || e.decision == e.current || e.decision == taskgraph.None {
		return taskgraph.None, false
	}
	return e.decision, true
}

// NoteTask implements aim.Engine.
func (e *NIEngine) NoteTask(task taskgraph.TaskID) { e.current = task }

// SetParam implements aim.Engine (RCAP parameter writes).
func (e *NIEngine) SetParam(param, value int) {
	switch param {
	case aim.ParamThreshold:
		if value < 1 {
			value = 1
		}
		if value > 255 {
			value = 255
		}
		e.threshold = uint8(value)
	case aim.ParamInhibit:
		// The embedded pathway is excitation-only; ignored.
	case aim.ParamPinSources:
		e.pinSources = value != 0
	}
}

// Reset implements aim.Engine: clears counters and latches.
func (e *NIEngine) Reset() {
	e.cpu.Reset()
	for i := range e.pending {
		e.pending[i] = 0
	}
}

// Counters exposes the scratchpad counter values for tests.
func (e *NIEngine) Counters(maxTask taskgraph.TaskID) []int {
	out := make([]int, int(maxTask)+1)
	for t := 1; t <= int(maxTask); t++ {
		out[t] = int(e.cpu.Scratch[t])
	}
	return out
}

// Steps reports the total instructions executed (hardware cost accounting).
func (e *NIEngine) Steps() uint64 { return e.cpu.Steps }

var _ aim.Engine = (*NIEngine)(nil)
