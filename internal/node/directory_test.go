package node

import (
	"testing"
	"testing/quick"

	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func dir4x4() *Directory {
	topo := noc.NewTopology(4, 4)
	m := make(taskgraph.Mapping, topo.Nodes())
	for i := range m {
		m[i] = taskgraph.TaskID(i%3 + 1)
	}
	return NewDirectory(topo, m)
}

func TestDirectoryBasics(t *testing.T) {
	d := dir4x4()
	if got := d.TaskOf(0); got != 1 {
		t.Errorf("TaskOf(0) = %d", got)
	}
	if got := d.Count(1); got != 6 {
		t.Errorf("Count(1) = %d, want 6", got)
	}
	counts := d.Counts(3)
	if counts[1]+counts[2]+counts[3] != 16 {
		t.Errorf("Counts = %v, want total 16", counts)
	}
}

func TestDirectorySetReindexes(t *testing.T) {
	d := dir4x4()
	v := d.Version
	d.Set(0, 2)
	if d.TaskOf(0) != 2 {
		t.Error("Set did not change task")
	}
	if d.Count(1) != 5 || d.Count(2) != 6 {
		t.Errorf("counts after Set: t1=%d t2=%d", d.Count(1), d.Count(2))
	}
	if d.Version == v {
		t.Error("Version did not change")
	}
	// No-op set does not bump version.
	v = d.Version
	d.Set(0, 2)
	if d.Version != v {
		t.Error("no-op Set bumped version")
	}
}

func TestDirectoryNearest(t *testing.T) {
	topo := noc.NewTopology(4, 1)
	m := taskgraph.Mapping{1, 2, 2, 1}
	d := NewDirectory(topo, m)
	if got, ok := d.Nearest(2, 0); !ok || got != 1 {
		t.Errorf("Nearest(2, 0) = %d,%v, want 1", got, ok)
	}
	if got, ok := d.Nearest(1, 2); !ok || got != 3 {
		t.Errorf("Nearest(1, 2) = %d,%v, want 3", got, ok)
	}
	// Tie at equal distance: with owners at 0 and 2, both distance 1 from
	// node 1, the tie breaks toward the smaller ID.
	tie := NewDirectory(topo, taskgraph.Mapping{2, 1, 2, 1})
	if got, _ := tie.Nearest(2, 1); got != 0 {
		t.Errorf("tie-break Nearest = %d, want 0", got)
	}
	if _, ok := d.Nearest(9, 0); ok {
		t.Error("Nearest for unowned task reported ok")
	}
}

func TestDirectoryNearestSkipsDead(t *testing.T) {
	topo := noc.NewTopology(4, 1)
	d := NewDirectory(topo, taskgraph.Mapping{1, 2, 2, 1})
	d.SetAlive(1, false)
	if got, ok := d.Nearest(2, 0); !ok || got != 2 {
		t.Errorf("Nearest skipping dead = %d,%v, want 2", got, ok)
	}
	d.SetAlive(2, false)
	if _, ok := d.Nearest(2, 0); ok {
		t.Error("Nearest found a dead owner")
	}
	if d.Count(2) != 0 {
		t.Errorf("Count(2) = %d with all owners dead", d.Count(2))
	}
}

func TestDirectoryNearestK(t *testing.T) {
	topo := noc.NewTopology(8, 1)
	m := taskgraph.Mapping{2, 2, 1, 2, 2, 2, 1, 2}
	d := NewDirectory(topo, m)
	got := d.NearestK(2, 2, 3)
	if len(got) != 3 {
		t.Fatalf("NearestK returned %v", got)
	}
	// From node 2, nearest task-2 owners are 1 and 3 (distance 1), then 0
	// and 4 (distance 2, tie-break smaller ID first).
	if got[0] != 1 || got[1] != 3 || got[2] != 0 {
		t.Errorf("NearestK = %v, want [1 3 0]", got)
	}
	// Asking for more owners than exist returns all of them.
	all := d.NearestK(1, 0, 10)
	if len(all) != 2 {
		t.Errorf("NearestK(1) = %v, want 2 owners", all)
	}
}

// The memoized Nearest/NearestK lookups must stay coherent across directory
// mutations: a cached answer from before a Set/SetAlive would steer packets
// at stale owners. Version is the staleness signal.
func TestDirectoryNearestCacheInvalidation(t *testing.T) {
	topo := noc.NewTopology(4, 1)
	d := NewDirectory(topo, taskgraph.Mapping{1, 2, 2, 1})

	// Prime the caches.
	if got, _ := d.Nearest(2, 0); got != 1 {
		t.Fatalf("Nearest(2,0) = %d, want 1", got)
	}
	if got := d.NearestK(2, 0, 2); len(got) != 2 || got[0] != 1 {
		t.Fatalf("NearestK(2,0,2) = %v, want [1 2]", got)
	}
	if _, ok := d.Nearest(3, 0); ok {
		t.Fatal("Nearest found owner for unmapped task")
	}

	// Mutate: node 1 leaves task 2, node 0 joins task 3.
	d.Set(1, 3)
	if got, _ := d.Nearest(2, 0); got != 2 {
		t.Errorf("Nearest(2,0) after Set = %d, want 2 (stale cache?)", got)
	}
	if got := d.NearestK(2, 0, 2); len(got) != 1 || got[0] != 2 {
		t.Errorf("NearestK(2,0,2) after Set = %v, want [2]", got)
	}
	if got, ok := d.Nearest(3, 0); !ok || got != 1 {
		t.Errorf("Nearest(3,0) after Set = %d,%v, want 1 (negative result cached?)", got, ok)
	}

	// Death must invalidate too.
	d.SetAlive(2, false)
	if _, ok := d.Nearest(2, 0); ok {
		t.Error("Nearest returned a dead owner after SetAlive")
	}

	// Repeated lookups without mutations keep answering consistently.
	for i := 0; i < 3; i++ {
		if got, ok := d.Nearest(3, 3); !ok || got != 1 {
			t.Fatalf("stable lookup %d = %d,%v, want 1", i, got, ok)
		}
	}
}

func TestDirectoryOwnersSorted(t *testing.T) {
	d := dir4x4()
	d.Set(15, 1)
	d.Set(0, 2)
	owners := d.Owners(1)
	for i := 1; i < len(owners); i++ {
		if owners[i-1] >= owners[i] {
			t.Fatalf("owners not sorted: %v", owners)
		}
	}
}

func TestDirectoryMappingSnapshot(t *testing.T) {
	d := dir4x4()
	m := d.Mapping()
	m[0] = 9
	if d.TaskOf(0) == 9 {
		t.Error("Mapping snapshot shares storage")
	}
}

// Property: Nearest always returns an owner at minimal distance among alive
// owners.
func TestNearestMinimalProperty(t *testing.T) {
	topo := noc.NewTopology(8, 4)
	f := func(seed uint64, fromRaw uint16) bool {
		rng := sim.NewRNG(seed)
		m := make(taskgraph.Mapping, topo.Nodes())
		for i := range m {
			m[i] = taskgraph.TaskID(rng.Intn(3) + 1)
		}
		d := NewDirectory(topo, m)
		// Kill a few random nodes.
		for i := 0; i < 5; i++ {
			d.SetAlive(noc.NodeID(rng.Intn(topo.Nodes())), false)
		}
		from := noc.NodeID(int(fromRaw) % topo.Nodes())
		for task := taskgraph.TaskID(1); task <= 3; task++ {
			got, ok := d.Nearest(task, from)
			best := 1 << 30
			for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
				if d.Alive(id) && d.TaskOf(id) == task {
					if dd := topo.Distance(from, id); dd < best {
						best = dd
					}
				}
			}
			if (best == 1<<30) != !ok {
				return false
			}
			if ok && topo.Distance(from, got) != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Satellite audit (ISSUE 4): equidistance ties must resolve identically —
// toward the smaller node ID — on every topology, for both Nearest and
// NearestK. Wrap-around links (torus) and shared routers (cmesh) make exact
// ties far more common than on the mesh, so a non-deterministic tie-break
// would silently destroy run reproducibility there.
func TestNearestTieBreakAcrossTopologies(t *testing.T) {
	cases := []struct {
		name  string
		topo  noc.Topology
		from  noc.NodeID
		owner []noc.NodeID // equidistant owners of task 2, ascending
	}{
		// Mesh: owners symmetric around the query node on a row.
		{"mesh", noc.NewTopology(8, 2), 3, []noc.NodeID{1, 5}},
		// Torus: one owner two steps East, one two steps West around the
		// wrap (node 14 is at (6,0): distance to (0,0) is 2 both ways).
		{"torus", noc.NewTorus(8, 2), 0, []noc.NodeID{2, 6}},
		// CMesh: two owners in the same cluster are both at distance 0.
		{"cmesh", noc.NewCMesh(8, 2), 0, []noc.NodeID{1, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := make(taskgraph.Mapping, tc.topo.Nodes())
			for i := range m {
				m[i] = 1
			}
			for _, id := range tc.owner {
				m[id] = 2
			}
			d := NewDirectory(tc.topo, m)
			da := tc.topo.Distance(tc.from, tc.owner[0])
			db := tc.topo.Distance(tc.from, tc.owner[1])
			if da != db {
				t.Fatalf("test premise broken: owners at distances %d and %d", da, db)
			}
			// Nearest picks the smaller ID, however often it is asked and in
			// whatever cache state.
			for i := 0; i < 3; i++ {
				if got, ok := d.Nearest(2, tc.from); !ok || got != tc.owner[0] {
					t.Fatalf("Nearest tie = %d,%v, want %d", got, ok, tc.owner[0])
				}
			}
			// NearestK orders the tie the same way.
			got := d.NearestK(2, tc.from, 2)
			if len(got) != 2 || got[0] != tc.owner[0] || got[1] != tc.owner[1] {
				t.Fatalf("NearestK tie order = %v, want %v", got, tc.owner)
			}
			// The order survives an unrelated mutation (cache flush + refill).
			d.Set(tc.from, 3)
			if got, _ := d.Nearest(2, tc.from); got != tc.owner[0] {
				t.Fatalf("Nearest tie after mutation = %d, want %d", got, tc.owner[0])
			}
		})
	}
}

// Nearest and NearestK must agree on their first choice for every topology —
// packet retargeting uses Nearest while fork spreading uses NearestK, and a
// disagreement would make them converge on different owners.
func TestNearestAgreesWithNearestK(t *testing.T) {
	for _, topo := range []noc.Topology{
		noc.NewTopology(8, 4), noc.NewTorus(8, 4), noc.NewCMesh(8, 4),
	} {
		rng := sim.NewRNG(42)
		m := make(taskgraph.Mapping, topo.Nodes())
		for i := range m {
			m[i] = taskgraph.TaskID(rng.Intn(3) + 1)
		}
		d := NewDirectory(topo, m)
		for from := noc.NodeID(0); int(from) < topo.Nodes(); from++ {
			for task := taskgraph.TaskID(1); task <= 3; task++ {
				near, ok := d.Nearest(task, from)
				k := d.NearestK(task, from, 1)
				if !ok {
					if len(k) != 0 {
						t.Fatalf("%s: NearestK found owners Nearest missed", topo)
					}
					continue
				}
				if len(k) != 1 || k[0] != near {
					t.Fatalf("%s: Nearest=%d but NearestK[0]=%v (task %d from %d)", topo, near, k, task, from)
				}
			}
		}
	}
}
