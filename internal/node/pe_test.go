package node

import (
	"testing"

	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// fakeEnv is a self-contained Env for PE unit tests: injection goes to an
// in-memory slice (optionally bounce-delivered to other PEs directly,
// bypassing the NoC).
type fakeEnv struct {
	topo      noc.Topology
	dir       *Directory
	graph     *taskgraph.Graph
	nextPkt   uint64
	nextInst  uint64
	injected  []*noc.Packet
	injectOK  bool
	completed []uint64
	origins   []noc.NodeID
	lost      []uint64
	dropped   []*noc.Packet
}

func newFakeEnv(g *taskgraph.Graph, m taskgraph.Mapping, w, h int) *fakeEnv {
	topo := noc.NewTopology(w, h)
	return &fakeEnv{
		topo:     topo,
		dir:      NewDirectory(topo, m),
		graph:    g,
		injectOK: true,
	}
}

func (e *fakeEnv) Inject(from noc.NodeID, p *noc.Packet, now sim.Tick) bool {
	if !e.injectOK {
		return false
	}
	e.injected = append(e.injected, p)
	return true
}
func (e *fakeEnv) Directory() *Directory   { return e.dir }
func (e *fakeEnv) Graph() *taskgraph.Graph { return e.graph }
func (e *fakeEnv) NewPacket() *noc.Packet {
	e.nextPkt++
	return &noc.Packet{ID: e.nextPkt}
}
func (e *fakeEnv) FreePacket(p *noc.Packet) {} // un-pooled: tests keep reading dropped packets
func (e *fakeEnv) NextInstanceID() uint64   { e.nextInst++; return e.nextInst }
func (e *fakeEnv) InstanceCompleted(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.completed = append(e.completed, inst)
	e.origins = append(e.origins, origin)
}
func (e *fakeEnv) InstanceLost(inst uint64, origin, at noc.NodeID, now sim.Tick) {
	e.lost = append(e.lost, inst)
}
func (e *fakeEnv) PacketDropped(p *noc.Packet, at noc.NodeID, now sim.Tick) {
	e.dropped = append(e.dropped, p)
}

// forkJoinEnv: a 1x5 strip mapped [1 2 2 2 3].
func forkJoinEnv() (*fakeEnv, taskgraph.Mapping) {
	g := taskgraph.ForkJoin(taskgraph.ForkJoinParams{GenPeriod: 40, WorkerProc: 30, SinkProc: 10, Fanout: 3})
	m := taskgraph.Mapping{1, 2, 2, 2, 3}
	return newFakeEnv(g, m, 5, 1), m
}

func TestSourceGeneratesForkBranches(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 0)
	pe.Tick(0)
	if len(env.injected) != 3 {
		t.Fatalf("source emitted %d packets, want 3 branches", len(env.injected))
	}
	dsts := map[noc.NodeID]bool{}
	for i, p := range env.injected {
		if p.Task != taskgraph.ForkWorker {
			t.Errorf("branch %d task = %d, want worker", i, p.Task)
		}
		if p.Instance != 1 {
			t.Errorf("branch %d instance = %d, want 1", i, p.Instance)
		}
		if p.JoinDst != 4 {
			t.Errorf("branch %d JoinDst = %d, want 4 (the only sink)", i, p.JoinDst)
		}
		if p.Deadline == 0 {
			t.Errorf("branch %d missing deadline", i)
		}
		dsts[p.Dst] = true
	}
	if len(dsts) != 3 {
		t.Errorf("branches spread over %d workers, want 3 distinct", len(dsts))
	}
	if pe.Stats.Generated != 1 {
		t.Errorf("Generated = %d", pe.Stats.Generated)
	}
	// Period gating: no second emission before 40 ticks.
	for now := sim.Tick(1); now < 40; now++ {
		pe.Tick(now)
	}
	if len(env.injected) != 3 {
		t.Fatalf("source emitted early: %d packets before period", len(env.injected))
	}
	pe.Tick(40)
	if len(env.injected) != 6 {
		t.Errorf("source did not emit at period: %d packets", len(env.injected))
	}
}

func TestGenerationPhaseOffset(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 7)
	for now := sim.Tick(0); now < 7; now++ {
		pe.Tick(now)
	}
	if len(env.injected) != 0 {
		t.Fatal("generated before phase offset")
	}
	pe.Tick(7)
	if len(env.injected) != 3 {
		t.Fatal("did not generate at phase offset")
	}
}

func TestGenerationStallsUnderBackpressure(t *testing.T) {
	env, _ := forkJoinEnv()
	env.injectOK = false
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 0)
	for now := sim.Tick(0); now < 100; now++ {
		pe.Tick(now)
	}
	if pe.Stats.Generated != 1 {
		t.Errorf("Generated = %d; back-pressure must stall further generation", pe.Stats.Generated)
	}
	if pe.Stats.StallTicks == 0 {
		t.Error("no stall ticks recorded")
	}
	env.injectOK = true
	pe.Tick(100)
	if len(env.injected) == 0 {
		t.Error("outbox not drained after back-pressure cleared")
	}
}

func TestWorkerProcessingLatencyAndForward(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pkt := &noc.Packet{ID: 1, Kind: noc.Data, Task: taskgraph.ForkWorker, Dst: 1, Instance: 5, JoinDst: 4, Flits: 4}
	if !pe.Accept(pkt, 0) {
		t.Fatal("Accept failed")
	}
	pe.Tick(0) // start processing (30 ticks)
	for now := sim.Tick(1); now < 30; now++ {
		pe.Tick(now)
		if len(env.injected) != 0 {
			t.Fatalf("worker forwarded at tick %d, before its 30-tick latency", now)
		}
	}
	pe.Tick(30)
	if len(env.injected) != 1 {
		t.Fatalf("worker forwarded %d packets, want 1", len(env.injected))
	}
	out := env.injected[0]
	if out.Task != taskgraph.ForkSink || out.Dst != 4 || out.Instance != 5 {
		t.Errorf("forwarded packet = %+v", out)
	}
	if pe.Stats.Processed != 1 {
		t.Errorf("Processed = %d", pe.Stats.Processed)
	}
}

func TestSinkJoinCompletesAfterAllBranches(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(4, env, DefaultParams(), taskgraph.ForkSink, 0)
	now := sim.Tick(0)
	for b := 0; b < 3; b++ {
		pe.Accept(&noc.Packet{ID: uint64(b), Kind: noc.Data, Task: taskgraph.ForkSink, Dst: 4, Instance: 9, Branch: b, Flits: 4}, now)
	}
	for ; now < 200 && len(env.completed) == 0; now++ {
		pe.Tick(now)
	}
	if len(env.completed) != 1 || env.completed[0] != 9 {
		t.Fatalf("completed = %v, want [9]", env.completed)
	}
	if pe.Stats.Completions != 1 {
		t.Errorf("Completions = %d", pe.Stats.Completions)
	}
	// Three branches at 10 ticks each: completion must be at/after 30 ticks.
	if now < 30 {
		t.Errorf("join completed at %d ticks, faster than 3x10 processing", now)
	}
}

func TestSinkJoinIncompleteNeverCompletes(t *testing.T) {
	env, _ := forkJoinEnv()
	par := DefaultParams()
	par.JoinTimeout = 50
	pe := NewPE(4, env, par, taskgraph.ForkSink, 0)
	pe.Accept(&noc.Packet{ID: 1, Kind: noc.Data, Task: taskgraph.ForkSink, Dst: 4, Instance: 9, Flits: 4}, 0)
	pe.Accept(&noc.Packet{ID: 2, Kind: noc.Data, Task: taskgraph.ForkSink, Dst: 4, Instance: 9, Flits: 4}, 0)
	for now := sim.Tick(0); now < 300; now++ {
		pe.Tick(now)
	}
	if len(env.completed) != 0 {
		t.Fatalf("incomplete join completed: %v", env.completed)
	}
	if len(env.lost) != 1 || env.lost[0] != 9 {
		t.Fatalf("join not GC'd: lost=%v", env.lost)
	}
}

func TestQueueBounded(t *testing.T) {
	env, _ := forkJoinEnv()
	par := DefaultParams()
	par.QueueCap = 2
	pe := NewPE(1, env, par, taskgraph.ForkWorker, 0)
	ok1 := pe.Accept(&noc.Packet{ID: 1, Kind: noc.Data, Task: 2, Flits: 4}, 0)
	ok2 := pe.Accept(&noc.Packet{ID: 2, Kind: noc.Data, Task: 2, Flits: 4}, 0)
	ok3 := pe.Accept(&noc.Packet{ID: 3, Kind: noc.Data, Task: 2, Flits: 4}, 0)
	if !ok1 || !ok2 || ok3 {
		t.Errorf("Accept = %v,%v,%v, want true,true,false", ok1, ok2, ok3)
	}
}

func TestMisdeliveredPacketRetargets(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	// A packet for task 3 lands on a worker (stale address after a switch).
	pkt := &noc.Packet{ID: 1, Kind: noc.Data, Task: taskgraph.ForkSink, Dst: 1, Instance: 2, JoinDst: 4, Flits: 4}
	pe.Accept(pkt, 0)
	pe.Tick(0)
	if pe.Stats.Misrouted != 1 {
		t.Fatalf("Misrouted = %d", pe.Stats.Misrouted)
	}
	if len(env.injected) != 1 {
		t.Fatalf("retargeted packet not re-injected")
	}
	if got := env.injected[0].Dst; got != 4 {
		t.Errorf("retarget Dst = %d, want 4", got)
	}
	if env.injected[0].Retargets != 1 {
		t.Errorf("Retargets = %d", env.injected[0].Retargets)
	}
}

func TestMisdeliveredWithNoOwnerDropped(t *testing.T) {
	g := taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	m := taskgraph.Mapping{1, 2, 2, 2, 2} // no task-3 owner
	env := newFakeEnv(g, m, 5, 1)
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pkt := &noc.Packet{ID: 1, Kind: noc.Data, Task: taskgraph.ForkSink, Dst: 1, Instance: 2, JoinDst: 4, Flits: 4}
	pe.Accept(pkt, 0)
	pe.Tick(0)
	if len(env.dropped) != 1 || len(env.lost) != 1 {
		t.Errorf("dropped=%d lost=%d, want 1,1", len(env.dropped), len(env.lost))
	}
}

func TestSwitchTask(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	var switched [][2]taskgraph.TaskID
	pe.OnSwitch = func(from, to taskgraph.TaskID, now sim.Tick) {
		switched = append(switched, [2]taskgraph.TaskID{from, to})
	}
	pe.SwitchTask(taskgraph.ForkSink, 10)
	if pe.Task() != taskgraph.ForkSink {
		t.Fatal("task not switched")
	}
	if env.dir.TaskOf(1) != taskgraph.ForkSink {
		t.Error("directory not updated on switch")
	}
	if len(switched) != 1 || switched[0] != [2]taskgraph.TaskID{2, 3} {
		t.Errorf("OnSwitch = %v", switched)
	}
	if pe.Stats.Switches != 1 {
		t.Errorf("Switches = %d", pe.Stats.Switches)
	}
	// Switching to the same task or None is a no-op.
	pe.SwitchTask(taskgraph.ForkSink, 11)
	pe.SwitchTask(taskgraph.None, 12)
	if pe.Stats.Switches != 1 {
		t.Errorf("no-op switches counted: %d", pe.Stats.Switches)
	}
}

func TestSwitchToSourceDelaysGeneration(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pe.SwitchTask(taskgraph.ForkSource, 100)
	pe.Tick(100)
	if len(env.injected) != 0 {
		t.Fatal("fresh source generated immediately; must wait one period")
	}
	for now := sim.Tick(101); now <= 140; now++ {
		pe.Tick(now)
	}
	if len(env.injected) != 3 {
		t.Errorf("fresh source emitted %d packets by t=140, want 3", len(env.injected))
	}
}

func TestFailDropsStateAndDirectory(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pe.Accept(&noc.Packet{ID: 1, Kind: noc.Data, Task: 2, Flits: 4}, 0)
	pe.Fail(5)
	if pe.Alive() {
		t.Fatal("PE alive after Fail")
	}
	if len(env.dropped) != 1 {
		t.Errorf("queued packet not drop-accounted: %d", len(env.dropped))
	}
	if env.dir.Alive(1) {
		t.Error("directory still lists failed node as alive")
	}
	if pe.Accept(&noc.Packet{ID: 2, Kind: noc.Data, Task: 2, Flits: 4}, 6) {
		t.Error("failed PE accepted a packet")
	}
	pe.Tick(7) // must be a no-op, not a panic
}

func TestClockGating(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 0)
	pe.SetClockEnable(false)
	for now := sim.Tick(0); now < 100; now++ {
		pe.Tick(now)
	}
	if len(env.injected) != 0 {
		t.Fatal("clock-gated PE generated packets")
	}
	pe.SetClockEnable(true)
	pe.Tick(100)
	if len(env.injected) != 3 {
		t.Error("re-enabled PE did not resume")
	}
}

func TestFrequencyDividerSlowsProcessing(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pe.SetFrequencyDivider(2) // 30 -> 60 ticks
	pe.Accept(&noc.Packet{ID: 1, Kind: noc.Data, Task: 2, Instance: 1, JoinDst: 4, Flits: 4}, 0)
	for now := sim.Tick(0); now <= 59; now++ {
		pe.Tick(now)
	}
	if len(env.injected) != 0 {
		t.Fatal("half-speed worker finished early")
	}
	pe.Tick(60)
	if len(env.injected) != 1 {
		t.Error("half-speed worker did not finish at 2x latency")
	}
	pe.SetFrequencyDivider(0) // clamps to 1
}

func TestDebugPacketsConsumed(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	if !pe.Accept(&noc.Packet{ID: 1, Kind: noc.Debug, Flits: 1}, 0) {
		t.Fatal("debug packet rejected")
	}
	if pe.Stats.DebugSeen != 1 || pe.QueueLen() != 0 {
		t.Errorf("DebugSeen=%d QueueLen=%d", pe.Stats.DebugSeen, pe.QueueLen())
	}
}

func TestResetClearsWork(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(1, env, DefaultParams(), taskgraph.ForkWorker, 0)
	pe.Accept(&noc.Packet{ID: 1, Kind: noc.Data, Task: 2, Flits: 4}, 0)
	pe.Reset(1)
	if pe.QueueLen() != 0 {
		t.Error("Reset left queued packets")
	}
	if !pe.Alive() {
		t.Error("Reset killed the PE")
	}
}

func TestGenerateWithoutSinkOwnersLosesInstance(t *testing.T) {
	g := taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams())
	m := taskgraph.Mapping{1, 2, 2, 2, 2} // no sink owner anywhere
	env := newFakeEnv(g, m, 5, 1)
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 0)
	pe.Tick(0)
	if len(env.injected) != 0 {
		t.Error("generated branches with no join destination")
	}
	if len(env.lost) != 1 {
		t.Errorf("lost = %v, want one lost instance", env.lost)
	}
}

func TestWorkCountAdvances(t *testing.T) {
	env, _ := forkJoinEnv()
	pe := NewPE(0, env, DefaultParams(), taskgraph.ForkSource, 0)
	before := pe.WorkCount()
	pe.Tick(0)
	if pe.WorkCount() != before+1 {
		t.Errorf("WorkCount after generation = %d, want %d", pe.WorkCount(), before+1)
	}
}
