// Package node models the Centurion processing elements (the MicroBlaze
// nodes of the real platform): task execution with per-task latencies,
// bounded receive queues, source-task generation timers, fork/join instance
// bookkeeping, and the task directory that maps task classes to the nodes
// currently running them.
package node

import (
	"centurion/internal/noc"
	"centurion/internal/taskgraph"
)

// Directory tracks which task every node currently runs and answers
// nearest-owner queries. It is the simulator's stand-in for the task-ID
// addressing of the real platform, where packets are steered toward nodes
// advertising a task (router settings updated through RCAP when a node's
// AIM switches its task).
type Directory struct {
	topo   noc.Topology
	taskOf []taskgraph.TaskID
	alive  []bool
	byTask map[taskgraph.TaskID][]noc.NodeID
	// Version increments on every mutation; cached lookups use it to detect
	// staleness.
	Version uint64

	// nearCache and nearKCache memoize Nearest/NearestK results per
	// (task, anchor) query; they are valid while Version == nearVersion and
	// are flushed lazily on the first lookup after a mutation. Both lookups
	// sit on hot paths — Nearest on packet retargeting, NearestK on every
	// fork spread in generate/finish — and the directory mutates only on
	// task switches and deaths, so between switches every repeated lookup
	// is a single map probe instead of an owner scan.
	nearCache   map[nearestKey]noc.NodeID
	nearKCache  map[nearestKKey][]noc.NodeID
	nearVersion uint64

	// arena backs the slices stored in nearKCache: results are carved off
	// its tail and the whole arena is truncated on flush, so cache refills
	// after a mutation stop allocating once it has grown to the working-set
	// size. candBuf is the owner-scan scratch of NearestK.
	arena   []noc.NodeID
	candBuf []ownerCand
}

// ownerCand is NearestK's owner-scan scratch entry.
type ownerCand struct {
	id   noc.NodeID
	dist int
}

// nearestKey identifies one memoized Nearest query.
type nearestKey struct {
	task taskgraph.TaskID
	from noc.NodeID
}

// nearestKKey identifies one memoized NearestK query.
type nearestKKey struct {
	task taskgraph.TaskID
	from noc.NodeID
	k    int
}

// flushStale lazily invalidates the memoized lookups after a mutation. The
// arena is truncated with the cache that referenced it: the retained backing
// array is rewritten by the next refills.
func (d *Directory) flushStale() {
	if d.nearVersion != d.Version {
		clear(d.nearCache)
		clear(d.nearKCache)
		d.arena = d.arena[:0]
		d.nearVersion = d.Version
	}
}

// NewDirectory builds a directory from an initial mapping.
func NewDirectory(topo noc.Topology, m taskgraph.Mapping) *Directory {
	if len(m) != topo.Nodes() {
		panic("node: mapping size does not match topology")
	}
	d := &Directory{
		topo:   topo,
		taskOf: make([]taskgraph.TaskID, len(m)),
		alive:  make([]bool, len(m)),
		byTask: make(map[taskgraph.TaskID][]noc.NodeID),
	}
	for i, task := range m {
		d.taskOf[i] = task
		d.alive[i] = true
		d.byTask[task] = append(d.byTask[task], noc.NodeID(i))
	}
	return d
}

// Reset rebuilds the directory in place from a fresh mapping: every node
// comes back alive running its mapped task. The per-task owner lists retain
// their capacity, and the memoized lookups are invalidated through the usual
// version bump.
func (d *Directory) Reset(m taskgraph.Mapping) {
	if len(m) != len(d.taskOf) {
		panic("node: reset mapping size does not match directory")
	}
	for task, owners := range d.byTask {
		d.byTask[task] = owners[:0]
	}
	for i, task := range m {
		d.taskOf[i] = task
		d.alive[i] = true
		// Node IDs ascend, so the owner lists come out sorted as insertID
		// would keep them.
		d.byTask[task] = append(d.byTask[task], noc.NodeID(i))
	}
	d.Version++
}

// TaskOf returns the task the node currently runs.
func (d *Directory) TaskOf(id noc.NodeID) taskgraph.TaskID { return d.taskOf[id] }

// Alive reports whether the node is alive.
func (d *Directory) Alive(id noc.NodeID) bool { return d.alive[id] }

// Set changes the node's task and reindexes.
func (d *Directory) Set(id noc.NodeID, task taskgraph.TaskID) {
	old := d.taskOf[id]
	if old == task {
		return
	}
	d.taskOf[id] = task
	d.byTask[old] = removeID(d.byTask[old], id)
	d.byTask[task] = insertID(d.byTask[task], id)
	d.Version++
}

// SetAlive marks a node alive or dead; dead nodes are excluded from
// nearest-owner queries.
func (d *Directory) SetAlive(id noc.NodeID, alive bool) {
	if d.alive[id] == alive {
		return
	}
	d.alive[id] = alive
	d.Version++
}

// Count returns how many alive nodes run the task.
func (d *Directory) Count(task taskgraph.TaskID) int {
	n := 0
	for _, id := range d.byTask[task] {
		if d.alive[id] {
			n++
		}
	}
	return n
}

// Counts returns alive node counts indexed by task ID (0..maxID).
func (d *Directory) Counts(maxID taskgraph.TaskID) []int {
	out := make([]int, int(maxID)+1)
	for i, task := range d.taskOf {
		if d.alive[i] && int(task) < len(out) {
			out[task]++
		}
	}
	return out
}

// Nearest returns the alive node running task that is closest (by topology
// distance) to from, breaking ties toward the smaller node ID. The tie-break
// is what keeps results deterministic across topologies: wrap-around links
// (torus) and shared routers (cmesh) make exact-distance ties common, and
// the per-task owner lists are kept sorted so the ascending scan always
// lands on the same winner. ok is false when no alive node runs the task.
// Results are memoized per (task, from) until the next directory mutation.
func (d *Directory) Nearest(task taskgraph.TaskID, from noc.NodeID) (noc.NodeID, bool) {
	if d.nearCache == nil {
		d.nearCache = make(map[nearestKey]noc.NodeID, 64)
	}
	d.flushStale()
	key := nearestKey{task, from}
	if best, ok := d.nearCache[key]; ok {
		return best, best != noc.Invalid
	}
	best := noc.Invalid
	bestDist := 1 << 30
	for _, id := range d.byTask[task] {
		if !d.alive[id] {
			continue
		}
		dist := d.topo.Distance(from, id)
		if dist < bestDist || (dist == bestDist && id < best) {
			best, bestDist = id, dist
		}
	}
	d.nearCache[key] = best
	return best, best != noc.Invalid
}

// NearestK returns up to k distinct alive owners of task ordered by
// topology distance from from (ties toward smaller IDs — the same stable
// order Nearest guarantees, so both lookups agree on every topology). Used
// by fork nodes to spread parallel branches over nearby workers. Results are
// memoized per (task, from, k) until the next directory mutation; callers
// must not mutate the returned slice and must not retain it across a
// mutation (its arena-backed storage is recycled on the next refill).
func (d *Directory) NearestK(task taskgraph.TaskID, from noc.NodeID, k int) []noc.NodeID {
	if d.nearKCache == nil {
		d.nearKCache = make(map[nearestKKey][]noc.NodeID, 64)
	}
	d.flushStale()
	key := nearestKKey{task, from, k}
	if out, ok := d.nearKCache[key]; ok {
		return out
	}
	cands := d.candBuf[:0]
	for _, id := range d.byTask[task] {
		if d.alive[id] {
			cands = append(cands, ownerCand{id, d.topo.Distance(from, id)})
		}
	}
	d.candBuf = cands // keep the grown scratch
	// Selection sort of the first k: k is tiny (the fork fan-out).
	if k > len(cands) {
		k = len(cands)
	}
	// Carve the result off the arena tail. Appends beyond capacity move the
	// arena to a new backing array; earlier cached slices keep referencing
	// the old one, which stays alive until they are flushed with it.
	start := len(d.arena)
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist < cands[best].dist ||
				(cands[j].dist == cands[best].dist && cands[j].id < cands[best].id) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
		d.arena = append(d.arena, cands[i].id)
	}
	out := d.arena[start:len(d.arena):len(d.arena)]
	d.nearKCache[key] = out
	return out
}

// Owners returns the alive owners of a task (ascending IDs). The slice is
// freshly allocated.
func (d *Directory) Owners(task taskgraph.TaskID) []noc.NodeID {
	var out []noc.NodeID
	for _, id := range d.byTask[task] {
		if d.alive[id] {
			out = append(out, id)
		}
	}
	return out
}

// Mapping snapshots the current node→task assignment.
func (d *Directory) Mapping() taskgraph.Mapping {
	m := make(taskgraph.Mapping, len(d.taskOf))
	copy(m, d.taskOf)
	return m
}

func removeID(s []noc.NodeID, id noc.NodeID) []noc.NodeID {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// insertID keeps the per-task owner lists sorted so that iteration order —
// and therefore tie-breaking — is deterministic.
func insertID(s []noc.NodeID, id noc.NodeID) []noc.NodeID {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = id
	return s
}
