package node

import (
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Env is the platform interface a processing element acts through: packet
// injection into its router, the shared task directory, the application
// graph, ID allocation, and the instance-completion report that feeds the
// throughput metric.
type Env interface {
	// Inject offers a packet to the node's router; false means back-pressure
	// (the PE retries next tick).
	Inject(from noc.NodeID, p *noc.Packet, now sim.Tick) bool
	// Directory is the shared task directory.
	Directory() *Directory
	// Graph is the application task graph.
	Graph() *taskgraph.Graph
	// NewPacket acquires a zeroed packet carrying a fresh fabric-unique ID
	// (from the platform's recycling pool when one is attached). The PE owns
	// it until it is injected or freed.
	NewPacket() *noc.Packet
	// FreePacket returns a packet whose lifecycle ended at this PE —
	// processed to completion, consumed as a debug payload, or dropped —
	// to the platform's recycling pool. Must be the packet's final use.
	FreePacket(p *noc.Packet)
	// NextInstanceID allocates an application instance ID.
	NextInstanceID() uint64
	// InstanceCompleted reports a completed fork–join instance (a throughput
	// event). origin is the source node that generated it, so the platform
	// can deliver the completion acknowledgement that closes the source's
	// flow-control window.
	InstanceCompleted(inst uint64, origin, at noc.NodeID, now sim.Tick)
	// InstanceLost reports an instance that can no longer complete (branches
	// dropped, join GC'd, join node switched away).
	InstanceLost(inst uint64, origin, at noc.NodeID, now sim.Tick)
	// PacketDropped accounts a packet the PE had to discard.
	PacketDropped(p *noc.Packet, at noc.NodeID, now sim.Tick)
}

// Params configure a processing element.
type Params struct {
	// QueueCap bounds the receive queue (packets); a full queue back-
	// pressures the router's local port.
	QueueCap int
	// DeadlineTicks stamps outgoing packets with Created+DeadlineTicks
	// (0 disables deadlines).
	DeadlineTicks sim.Tick
	// JoinTimeout GC's incomplete join instances that have not seen a new
	// branch for this long.
	JoinTimeout sim.Tick
	// PacketFlits is the serialised length of generated data packets.
	PacketFlits int
	// Window bounds the number of un-acknowledged instances a source may
	// have outstanding (end-to-end flow control; 0 disables it). Real
	// deployments implement this in the application: the join node returns
	// a completion acknowledgement to the work item's origin.
	Window int
	// InstanceTimeout reclaims a window slot when no acknowledgement
	// arrives in time (the instance was lost to drops, faults or task
	// switches).
	InstanceTimeout sim.Tick
}

// DefaultParams returns the experiment defaults: a 16-packet receive queue,
// 8 ms deadlines, 200 ms join GC, 2-flit packets.
func DefaultParams() Params {
	return Params{
		QueueCap:        16,
		DeadlineTicks:   sim.Ms(8),
		JoinTimeout:     sim.Ms(200),
		PacketFlits:     2,
		Window:          8,
		InstanceTimeout: sim.Ms(150),
	}
}

// Stats are cumulative per-PE counters.
type Stats struct {
	Generated   uint64 // work items emitted by a source task
	Processed   uint64 // data packets fully processed
	Completions uint64 // join completions at this node
	Switches    uint64 // task switches applied
	Misrouted   uint64 // packets that arrived for a task this node no longer runs
	Dropped     uint64 // packets discarded (no owner to retarget to, etc.)
	DebugSeen   uint64 // debug packets consumed
	StallTicks  uint64 // ticks the PE wanted to inject but was back-pressured
}

// pickTargets selects n destination nodes for task among the owners nearest
// to from, rotating the starting owner by salt (typically the instance ID).
// The rotation spreads successive instances over the 2n+2 nearest owners so
// that neighbouring producers do not all pile onto the same consumer — the
// locality-preserving load spread described in DESIGN.md §5. The returned
// slice is empty when no owner exists; it aliases buf (the caller's scratch,
// valid until the next call with the same buffer).
func pickTargets(d *Directory, task taskgraph.TaskID, from noc.NodeID, n int, salt uint64, buf []noc.NodeID) []noc.NodeID {
	pool := d.NearestK(task, from, 2*n+2)
	if len(pool) == 0 {
		return nil
	}
	out := buf[:0]
	start := int(salt % uint64(len(pool)))
	for i := 0; i < n; i++ {
		out = append(out, pool[(start+i)%len(pool)])
	}
	return out
}

// outstandingInst is one un-acknowledged instance in a source's
// flow-control window.
type outstandingInst struct {
	inst uint64
	born sim.Tick
}

// joinState tracks one in-flight join instance at a sink node.
type joinState struct {
	seen      int
	origin    noc.NodeID
	lastTouch sim.Tick
}

// PE is one processing element. It implements noc.Sink for its router's
// internal port.
type PE struct {
	ID  noc.NodeID
	env Env
	par Params

	task    taskgraph.TaskID
	alive   bool
	clockEn bool
	freqDiv int

	queue   []*noc.Packet
	current *noc.Packet
	busyEnd sim.Tick

	nextGen sim.Tick
	outbox  []*noc.Packet

	joins map[uint64]joinState
	// outstanding tracks un-acked instances (flow control). It is bounded
	// by the window (8 by default), so a flat slice with linear scans beats
	// a map on the per-tick generate/ack/wake paths.
	outstanding []outstandingInst
	// admitRefused latches a queue-full admission rejection; the next
	// dequeue fires OnDequeue exactly when someone is actually waiting on
	// the freed space.
	admitRefused bool
	nextJoin     sim.Tick     // next join GC sweep
	workCount    uint64       // monotonically increasing "useful work" events
	targetBuf    []noc.NodeID // pickTargets scratch, reused across emissions

	// OnGenerate, when set, fires on every generated work item — the AIM's
	// generation stimulus (a busy source is doing work).
	OnGenerate func(now sim.Tick)
	// OnSwitch fires after the node switches task.
	OnSwitch func(from, to taskgraph.TaskID, now sim.Tick)
	// OnStir, when set, fires on any external stimulus that can change what
	// the next Tick does (packet accepted, window slot acknowledged, task or
	// knob changed). The platform's active-set stepping core uses it to
	// re-enroll a parked PE; spurious stirs are harmless (an extra Tick on an
	// idle PE is the no-op the dense scan would have executed anyway).
	OnStir func()
	// OnDequeue, when set, fires whenever receive-queue space frees (a
	// packet popped for processing, held packets released). The platform
	// wires it to the serving router's Stir so parked sink-blocked and
	// absorption-eligible ports re-evaluate on the same tick the dense scan
	// would have delivered.
	OnDequeue func()

	Stats Stats
}

// NewPE builds a processing element running the given initial task.
// genPhase staggers the first generation tick so that source nodes do not
// emit in lockstep (the run-to-run variation of the paper's "randomly
// initialised" experiments).
func NewPE(id noc.NodeID, env Env, par Params, task taskgraph.TaskID, genPhase sim.Tick) *PE {
	pe := &PE{
		ID:      id,
		env:     env,
		par:     par,
		task:    task,
		alive:   true,
		clockEn: true,
		freqDiv: 1,
		joins:   make(map[uint64]joinState),
	}
	pe.nextGen = genPhase
	return pe
}

// Task returns the task the PE currently runs.
func (pe *PE) Task() taskgraph.TaskID { return pe.task }

// Alive reports whether the PE is functioning.
func (pe *PE) Alive() bool { return pe.alive }

// WorkCount returns the monotonically increasing count of useful-work events
// (generations, processed packets); the nodes-active sampler diffs it.
func (pe *PE) WorkCount() uint64 { return pe.workCount }

// QueueLen returns the receive-queue depth.
func (pe *PE) QueueLen() int { return len(pe.queue) }

// PendingPackets counts the packets the PE currently owns (receive queue,
// in-progress slot, outbox) — this PE's contribution to the fabric-wide
// packet-conservation check.
func (pe *PE) PendingPackets() int {
	n := len(pe.queue) + len(pe.outbox)
	if pe.current != nil {
		n++
	}
	return n
}

// AckInstance delivers a completion (or loss) acknowledgement for an
// instance this node generated, freeing its flow-control window slot.
// Unknown instance IDs are ignored, so duplicate acknowledgements are safe.
func (pe *PE) AckInstance(inst uint64) {
	for i := range pe.outstanding {
		if pe.outstanding[i].inst == inst {
			last := len(pe.outstanding) - 1
			pe.outstanding[i] = pe.outstanding[last]
			pe.outstanding = pe.outstanding[:last]
			break
		}
	}
	pe.stir()
}

// stir notifies the platform that this PE was stimulated externally.
func (pe *PE) stir() {
	if pe.OnStir != nil {
		pe.OnStir()
	}
}

// Outstanding returns the number of un-acknowledged instances.
func (pe *PE) Outstanding() int { return len(pe.outstanding) }

// releaseAllPackets recycles every packet the PE holds (queue, in-progress
// slot, outbox), truncating the slices in place so their capacity survives
// for the next run. With account set each packet is also reported through
// the drop accounting (fault/reset semantics); without it the packets are
// silently reclaimed (platform reuse — the run they belonged to is over).
func (pe *PE) releaseAllPackets(now sim.Tick, account bool) {
	release := func(p *noc.Packet) {
		if account {
			pe.env.PacketDropped(p, pe.ID, now)
		}
		pe.env.FreePacket(p)
	}
	freed := len(pe.queue) > 0
	for i, p := range pe.queue {
		release(p)
		pe.queue[i] = nil
	}
	pe.queue = pe.queue[:0]
	if freed && pe.admitRefused && pe.OnDequeue != nil {
		pe.admitRefused = false
		pe.OnDequeue()
	}
	if pe.current != nil {
		release(pe.current)
		pe.current = nil
	}
	for i, p := range pe.outbox {
		release(p)
		pe.outbox[i] = nil
	}
	pe.outbox = pe.outbox[:0]
}

// Fail kills the PE: it stops processing and rejects traffic. Queued and
// in-progress packets are lost.
func (pe *PE) Fail(now sim.Tick) {
	if !pe.alive {
		return
	}
	pe.alive = false
	pe.releaseAllPackets(now, true)
	pe.abandonJoins(now)
	pe.env.Directory().SetAlive(pe.ID, false)
}

// Revive returns a dead PE to service mid-run as an idle recruit: it
// rejoins with no task (the intelligence layer re-recruits it through the
// normal stimulus path), re-registers with the directory, and keeps its
// cumulative Stats — the run continues, unlike Restart which begins a new
// one. Packets and joins were already released and accounted at Fail time,
// but any still-outstanding instances it originated died with it: their
// generation slots clear so a reborn source starts a fresh window.
// Reviving a live PE is a no-op.
func (pe *PE) Revive(now sim.Tick) {
	if pe.alive {
		return
	}
	pe.alive = true
	pe.clockEn = true
	pe.freqDiv = 1
	pe.busyEnd = 0
	pe.admitRefused = false
	pe.task = taskgraph.None
	pe.outstanding = pe.outstanding[:0]
	pe.env.Directory().Set(pe.ID, taskgraph.None)
	pe.env.Directory().SetAlive(pe.ID, true)
	pe.stir()
}

// Reset is the RCAP node-reset knob: state clears but the PE stays alive.
func (pe *PE) Reset(now sim.Tick) {
	defer pe.stir()
	pe.releaseAllPackets(now, true)
	pe.busyEnd = 0
	pe.abandonJoins(now)
}

// Restart rewinds the PE to the state NewPE would construct for the given
// task and generation phase, retaining every allocation (queue, outbox and
// scratch capacity, join and window maps). Held packets are recycled without
// drop accounting: a restart ends the run they belonged to. It is the
// platform-reuse path (Platform.Reset), not an RCAP knob.
func (pe *PE) Restart(task taskgraph.TaskID, genPhase sim.Tick) {
	pe.releaseAllPackets(0, false)
	pe.task = task
	pe.alive = true
	pe.clockEn = true
	pe.freqDiv = 1
	pe.busyEnd = 0
	pe.nextGen = genPhase
	clear(pe.joins)
	pe.outstanding = pe.outstanding[:0]
	pe.admitRefused = false
	pe.nextJoin = 0
	pe.workCount = 0
	pe.Stats = Stats{}
}

// SetClockEnable is the RCAP clock-gate knob.
func (pe *PE) SetClockEnable(en bool) {
	pe.clockEn = en
	pe.stir()
}

// SetFrequencyDivider is the RCAP frequency-scaling knob: processing
// latencies multiply by div (1 = full speed).
func (pe *PE) SetFrequencyDivider(div int) {
	if div < 1 {
		div = 1
	}
	pe.freqDiv = div
}

// SwitchTask applies the AIM's task knob. Incomplete joins of the old task
// are abandoned; queued packets for the old task will retarget on pop.
func (pe *PE) SwitchTask(to taskgraph.TaskID, now sim.Tick) {
	if !pe.alive || to == pe.task || to == taskgraph.None {
		return
	}
	pe.stir()
	from := pe.task
	pe.task = to
	if pe.current != nil {
		pe.Stats.Dropped++
		pe.env.PacketDropped(pe.current, pe.ID, now)
		pe.env.InstanceLost(pe.current.Instance, pe.current.Origin, pe.ID, now)
		pe.env.FreePacket(pe.current)
		pe.current = nil
	}
	pe.busyEnd = 0
	pe.abandonJoins(now)
	pe.Stats.Switches++
	pe.env.Directory().Set(pe.ID, to)
	// A fresh source starts generating one period from now, not instantly.
	if t := pe.env.Graph().Task(to); t != nil && t.GenPeriod > 0 {
		pe.nextGen = now + sim.Tick(t.GenPeriod)
	}
	if pe.OnSwitch != nil {
		pe.OnSwitch(from, to, now)
	}
}

// Accept implements noc.Sink: the router's internal port delivers here.
func (pe *PE) Accept(p *noc.Packet, now sim.Tick) bool {
	if !pe.alive {
		return false
	}
	if p.Kind == noc.Debug {
		pe.Stats.DebugSeen++
		pe.env.FreePacket(p) // consumed on the spot
		return true
	}
	if len(pe.queue) >= pe.par.QueueCap {
		pe.admitRefused = true
		return false
	}
	pe.queue = append(pe.queue, p)
	pe.stir()
	return true
}

// Tick advances the PE by one cycle.
func (pe *PE) Tick(now sim.Tick) {
	if !pe.alive || !pe.clockEn {
		return
	}
	pe.drainOutbox(now)
	pe.generate(now)
	pe.process(now)
	if pe.par.JoinTimeout > 0 && now >= pe.nextJoin {
		pe.gcJoins(now)
		// Phase-aligned to multiples of the sweep step rather than to now:
		// when ticked every cycle both forms are identical (now lands exactly
		// on the boundary), but a PE woken late from a park must rejoin the
		// same GC schedule the dense scan would have kept.
		step := pe.par.JoinTimeout / 4
		if step < 1 {
			step = 1
		}
		pe.nextJoin = now - now%step + step
	}
}

// NextWake reports whether the PE may be parked after its Tick at now —
// meaning every subsequent Tick is a no-op until either an external stimulus
// (OnStir) arrives or the returned wake tick is reached. hasWake is false
// when only a stimulus can make the next Tick meaningful (dead or clock-gated
// node, flow-control window blocked with no reclaim timeout). parkable is
// false while the PE must be ticked every cycle (queued input, back-pressured
// outbox).
func (pe *PE) NextWake(now sim.Tick) (wake sim.Tick, hasWake, parkable bool) {
	if !pe.alive || !pe.clockEn {
		return 0, false, true
	}
	if len(pe.outbox) > 0 || len(pe.queue) > 0 {
		return 0, false, false
	}
	closer := func(t sim.Tick) {
		if !hasWake || t < wake {
			wake, hasWake = t, true
		}
	}
	if pe.current != nil {
		closer(pe.busyEnd)
	}
	if t := pe.env.Graph().Task(pe.task); t != nil && t.GenPeriod > 0 {
		if now < pe.nextGen {
			closer(pe.nextGen)
		} else if pe.par.InstanceTimeout > 0 {
			// Generation is window-blocked (a post-Tick nextGen in the past
			// means generate ran and found the window full): the next
			// self-driven change is the earliest outstanding-instance
			// reclaim. An acknowledgement arriving sooner stirs the PE.
			for _, o := range pe.outstanding {
				closer(o.born + pe.par.InstanceTimeout + 1)
			}
		}
	}
	if len(pe.joins) > 0 && pe.par.JoinTimeout > 0 {
		closer(pe.nextJoin)
	}
	return wake, hasWake, true
}

// drainOutbox injects pending packets; send back-pressure stalls the PE.
// Sent entries are compacted out in place so the slice's capacity is reused
// across emissions instead of sliding toward a reallocation.
func (pe *PE) drainOutbox(now sim.Tick) {
	sent := 0
	for ; sent < len(pe.outbox); sent++ {
		if !pe.env.Inject(pe.ID, pe.outbox[sent], now) {
			pe.Stats.StallTicks++
			break
		}
	}
	if sent == 0 {
		return
	}
	n := copy(pe.outbox, pe.outbox[sent:])
	clear(pe.outbox[n:])
	pe.outbox = pe.outbox[:n]
}

// generate emits new work items when the PE runs a source task.
func (pe *PE) generate(now sim.Tick) {
	t := pe.env.Graph().Task(pe.task)
	if t == nil || t.GenPeriod == 0 || now < pe.nextGen || len(pe.outbox) > 0 {
		return
	}
	if pe.par.Window > 0 {
		// Reclaim slots of instances whose acknowledgement never arrived.
		if pe.par.InstanceTimeout > 0 {
			kept := pe.outstanding[:0]
			for _, o := range pe.outstanding {
				if now-o.born <= pe.par.InstanceTimeout {
					kept = append(kept, o)
				}
			}
			pe.outstanding = kept
		}
		if len(pe.outstanding) >= pe.par.Window {
			// Flow control: downstream has not kept up; do not flood the
			// fabric. Generation resumes as soon as a slot frees.
			return
		}
	}
	g := pe.env.Graph()
	dir := pe.env.Directory()

	inst := pe.env.NextInstanceID()
	// Bind the join destination at fork time so all branches converge
	// (DESIGN.md §5). Only single-sink graphs with a real join need it.
	joinDst := noc.Invalid
	if sinks := g.Sinks(); len(sinks) == 1 && g.JoinWidth(sinks[0]) > 1 {
		// Joins concentrate on the nearest sink (no load spread): surplus
		// sinks must go genuinely idle so the intelligence can recruit them
		// for starved tasks (DESIGN.md §5).
		if jd, ok := dir.Nearest(sinks[0], pe.ID); ok {
			joinDst = jd
		} else {
			// No sink owner exists: the work item could never complete.
			pe.nextGen = now + sim.Tick(t.GenPeriod)
			pe.env.InstanceLost(inst, pe.ID, pe.ID, now)
			return
		}
	}

	branch := 0
	emitted := false
	for _, e := range g.Successors(pe.task) {
		owners := pickTargets(dir, e.To, pe.ID, e.Width, inst, pe.targetBuf)
		if owners != nil {
			pe.targetBuf = owners // keep the grown scratch for reuse
		}
		if len(owners) == 0 {
			// Nobody runs the consumer task: this edge's packets are lost.
			continue
		}
		for i := 0; i < e.Width; i++ {
			dst := owners[i%len(owners)]
			pkt := pe.env.NewPacket()
			pkt.Kind = noc.Data
			pkt.Src = pe.ID
			pkt.Dst = dst
			pkt.Task = e.To
			pkt.Instance = inst
			pkt.Branch = branch
			pkt.Origin = pe.ID
			pkt.JoinDst = joinDst
			pkt.Flits = pe.par.PacketFlits
			pkt.Created = now
			if pe.par.DeadlineTicks > 0 {
				pkt.Deadline = now + pe.par.DeadlineTicks
			}
			pe.outbox = append(pe.outbox, pkt)
			branch++
			emitted = true
		}
	}
	pe.nextGen = now + sim.Tick(t.GenPeriod)
	if !emitted {
		pe.env.InstanceLost(inst, pe.ID, pe.ID, now)
		return
	}
	if pe.par.Window > 0 {
		pe.outstanding = append(pe.outstanding, outstandingInst{inst: inst, born: now})
	}
	pe.Stats.Generated++
	pe.workCount++
	if pe.OnGenerate != nil {
		pe.OnGenerate(now)
	}
	pe.drainOutbox(now)
}

// process advances the execution of received packets.
func (pe *PE) process(now sim.Tick) {
	// Finish the in-flight packet.
	if pe.current != nil {
		if now < pe.busyEnd {
			return
		}
		done := pe.current
		pe.current = nil
		pe.finish(done, now)
		pe.env.FreePacket(done)
	}
	// Start the next one. Send back-pressure gates new work so the outbox
	// stays bounded.
	if len(pe.outbox) > 0 || len(pe.queue) == 0 {
		return
	}
	p := pe.queue[0]
	n := copy(pe.queue, pe.queue[1:])
	pe.queue[n] = nil
	pe.queue = pe.queue[:n]
	if pe.admitRefused && pe.OnDequeue != nil {
		pe.admitRefused = false
		pe.OnDequeue()
	}

	if p.Task != pe.task {
		pe.retarget(p, now)
		return
	}
	t := pe.env.Graph().Task(pe.task)
	proc := sim.Tick(t.ProcTicks * pe.freqDiv)
	if proc <= 0 {
		pe.finish(p, now)
		pe.env.FreePacket(p)
		return
	}
	pe.current = p
	pe.busyEnd = now + proc
}

// finish completes the processing of packet p at the current task.
func (pe *PE) finish(p *noc.Packet, now sim.Tick) {
	pe.Stats.Processed++
	pe.workCount++
	g := pe.env.Graph()
	if g.IsSink(pe.task) {
		pe.finishJoin(p, now)
		return
	}
	// Intermediate task: forward one packet per successor edge unit.
	dir := pe.env.Directory()
	for _, e := range g.Successors(pe.task) {
		for i := 0; i < e.Width; i++ {
			dst := noc.Invalid
			if g.IsSink(e.To) && p.JoinDst != noc.Invalid {
				// Honour the fork-time join binding when still valid.
				if dir.Alive(p.JoinDst) && dir.TaskOf(p.JoinDst) == e.To {
					dst = p.JoinDst
				} else if nd, ok := dir.Nearest(e.To, p.JoinDst); ok {
					// Deterministic re-bind anchored at the original join
					// node so sibling branches re-converge.
					dst = nd
				}
			} else if nd := pickTargets(dir, e.To, pe.ID, 1, p.Instance, pe.targetBuf); len(nd) == 1 {
				dst = nd[0]
				pe.targetBuf = nd
			}
			if dst == noc.Invalid {
				// No owner for the consumer task: the would-be output packet
				// is never created and the instance cannot complete.
				pe.Stats.Dropped++
				pe.env.InstanceLost(p.Instance, p.Origin, pe.ID, now)
				continue
			}
			out := pe.env.NewPacket()
			out.Kind = noc.Data
			out.Src = pe.ID
			out.Dst = dst
			out.Task = e.To
			out.Instance = p.Instance
			out.Branch = p.Branch
			out.Origin = p.Origin
			out.JoinDst = dst
			out.Flits = pe.par.PacketFlits
			out.Created = now
			if pe.par.DeadlineTicks > 0 {
				out.Deadline = now + pe.par.DeadlineTicks
			}
			pe.outbox = append(pe.outbox, out)
		}
	}
	pe.drainOutbox(now)
}

// finishJoin records a processed branch at a sink task and reports instance
// completion once all branches arrived.
func (pe *PE) finishJoin(p *noc.Packet, now sim.Tick) {
	width := pe.env.Graph().JoinWidth(pe.task)
	if width <= 1 {
		pe.Stats.Completions++
		pe.env.InstanceCompleted(p.Instance, p.Origin, pe.ID, now)
		return
	}
	js, ok := pe.joins[p.Instance]
	if !ok {
		js = joinState{origin: p.Origin}
	}
	js.seen++
	js.lastTouch = now
	if js.seen >= width {
		delete(pe.joins, p.Instance)
		pe.Stats.Completions++
		pe.env.InstanceCompleted(p.Instance, p.Origin, pe.ID, now)
		return
	}
	pe.joins[p.Instance] = js
}

// retarget re-addresses a packet that arrived for a task this node no
// longer runs, then re-injects it.
func (pe *PE) retarget(p *noc.Packet, now sim.Tick) {
	pe.Stats.Misrouted++
	dir := pe.env.Directory()
	anchor := pe.ID
	if p.JoinDst != noc.Invalid && pe.env.Graph().IsSink(p.Task) {
		anchor = p.JoinDst
	}
	dst, ok := dir.Nearest(p.Task, anchor)
	if !ok || dst == pe.ID {
		pe.Stats.Dropped++
		pe.env.PacketDropped(p, pe.ID, now)
		pe.env.InstanceLost(p.Instance, p.Origin, pe.ID, now)
		pe.env.FreePacket(p)
		return
	}
	p.Dst = dst
	if pe.env.Graph().IsSink(p.Task) {
		p.JoinDst = dst
	}
	p.Retargets++
	pe.outbox = append(pe.outbox, p)
	pe.drainOutbox(now)
}

// gcJoins abandons join instances that stopped receiving branches (lost to
// drops, faults or task switches elsewhere).
func (pe *PE) gcJoins(now sim.Tick) {
	for inst, js := range pe.joins {
		if now-js.lastTouch > pe.par.JoinTimeout {
			delete(pe.joins, inst)
			pe.env.InstanceLost(inst, js.origin, pe.ID, now)
		}
	}
}

// abandonJoins drops all in-flight joins (task switch, reset or failure).
func (pe *PE) abandonJoins(now sim.Tick) {
	for inst, js := range pe.joins {
		pe.env.InstanceLost(inst, js.origin, pe.ID, now)
		delete(pe.joins, inst)
	}
}
