package node

import (
	"sort"

	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Checkpoint support (DESIGN.md §15). A PE's packet references (receive
// queue, in-progress slot, outbox) are captured as arena slot indices —
// stable across snapshot and restore — and resolved against the target
// platform's pool after the arena itself has been restored. The join table
// is serialized sorted by instance so two snapshots of identical state
// encode to identical bytes (map iteration order is not deterministic).

// grow returns s resized to n elements, reallocating only when needed.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// JoinEntry is one in-flight join instance in a PEState.
type JoinEntry struct {
	Inst      uint64
	Seen      int
	Origin    noc.NodeID
	LastTouch sim.Tick
}

// OutstandingEntry is one un-acknowledged instance in a source's
// flow-control window.
type OutstandingEntry struct {
	Inst uint64
	Born sim.Tick
}

// PEState is a deep copy of one processing element's mutable state. Packet
// references are arena slot indices into the owning platform's pool
// (Current is -1 when no packet is in progress).
type PEState struct {
	Task    taskgraph.TaskID
	Alive   bool
	ClockEn bool
	FreqDiv int

	Queue   []int32
	Current int32
	BusyEnd sim.Tick

	NextGen sim.Tick
	Outbox  []int32

	Joins       []JoinEntry
	Outstanding []OutstandingEntry

	AdmitRefused bool
	NextJoin     sim.Tick
	WorkCount    uint64
	Stats        Stats
}

func packetSlot(pool *noc.PacketPool, p *noc.Packet) int32 {
	idx, ok := pool.ArenaIndex(p)
	if !ok {
		panic("node: checkpoint of a packet not bound to the platform's pool")
	}
	return idx
}

// SaveState deep-copies the PE's mutable state into st, resolving packet
// pointers to arena slots against pool (the platform's shared arena).
func (pe *PE) SaveState(st *PEState, pool *noc.PacketPool) {
	st.Task = pe.task
	st.Alive = pe.alive
	st.ClockEn = pe.clockEn
	st.FreqDiv = pe.freqDiv

	st.Queue = grow(st.Queue, len(pe.queue))
	for i, p := range pe.queue {
		st.Queue[i] = packetSlot(pool, p)
	}
	st.Current = -1
	if pe.current != nil {
		st.Current = packetSlot(pool, pe.current)
	}
	st.BusyEnd = pe.busyEnd

	st.NextGen = pe.nextGen
	st.Outbox = grow(st.Outbox, len(pe.outbox))
	for i, p := range pe.outbox {
		st.Outbox[i] = packetSlot(pool, p)
	}

	st.Joins = st.Joins[:0]
	for inst, js := range pe.joins {
		st.Joins = append(st.Joins, JoinEntry{Inst: inst, Seen: js.seen, Origin: js.origin, LastTouch: js.lastTouch})
	}
	sort.Slice(st.Joins, func(i, j int) bool { return st.Joins[i].Inst < st.Joins[j].Inst })

	// The live slice's order is an artifact of swap-removal driven by join
	// map iteration (AckInstance via gcJoins), not state: every consumer
	// treats the window as a set. Sort by instance so the encoding is
	// canonical, like the join table above.
	st.Outstanding = grow(st.Outstanding, len(pe.outstanding))
	for i, o := range pe.outstanding {
		st.Outstanding[i] = OutstandingEntry{Inst: o.inst, Born: o.born}
	}
	sort.Slice(st.Outstanding, func(i, j int) bool { return st.Outstanding[i].Inst < st.Outstanding[j].Inst })

	st.AdmitRefused = pe.admitRefused
	st.NextJoin = pe.nextJoin
	st.WorkCount = pe.workCount
	st.Stats = pe.Stats
}

// LoadState restores the PE from st, resolving arena slots against pool
// (which must already hold the restored arena). Construction wiring — env,
// params, stimulus hooks — stays with the target.
func (pe *PE) LoadState(st *PEState, pool *noc.PacketPool) {
	pe.task = st.Task
	pe.alive = st.Alive
	pe.clockEn = st.ClockEn
	pe.freqDiv = st.FreqDiv

	pe.queue = grow(pe.queue, len(st.Queue))
	for i, idx := range st.Queue {
		pe.queue[i] = pool.ArenaPacket(idx)
	}
	pe.current = nil
	if st.Current >= 0 {
		pe.current = pool.ArenaPacket(st.Current)
	}
	pe.busyEnd = st.BusyEnd

	pe.nextGen = st.NextGen
	pe.outbox = grow(pe.outbox, len(st.Outbox))
	for i, idx := range st.Outbox {
		pe.outbox[i] = pool.ArenaPacket(idx)
	}

	if pe.joins == nil {
		pe.joins = make(map[uint64]joinState, len(st.Joins))
	} else {
		clear(pe.joins)
	}
	for _, j := range st.Joins {
		pe.joins[j.Inst] = joinState{seen: j.Seen, origin: j.Origin, lastTouch: j.LastTouch}
	}

	pe.outstanding = grow(pe.outstanding, len(st.Outstanding))
	for i, o := range st.Outstanding {
		pe.outstanding[i] = outstandingInst{inst: o.Inst, born: o.Born}
	}

	pe.admitRefused = st.AdmitRefused
	pe.nextJoin = st.NextJoin
	pe.workCount = st.WorkCount
	pe.Stats = st.Stats
}

// DirectoryState is a deep copy of the task directory's mutable state. The
// per-task owner index and the memoized lookups are derived data: restore
// rebuilds the former (node IDs ascend, matching insertID's sort order) and
// flushes the latter.
type DirectoryState struct {
	TaskOf  []taskgraph.TaskID
	Alive   []bool
	Version uint64
}

// SaveState copies the directory's authoritative state into st.
func (d *Directory) SaveState(st *DirectoryState) {
	st.TaskOf = append(st.TaskOf[:0], d.taskOf...)
	st.Alive = append(st.Alive[:0], d.alive...)
	st.Version = d.Version
}

// LoadState restores the directory from st. The owner lists come out sorted
// exactly as incremental insertID maintenance would have left them, and the
// memo caches are flushed (they are pure memoization — refills after restore
// recompute identical answers).
func (d *Directory) LoadState(st *DirectoryState) {
	if len(st.TaskOf) != len(d.taskOf) {
		panic("node: directory checkpoint size mismatch")
	}
	for task, owners := range d.byTask {
		d.byTask[task] = owners[:0]
	}
	copy(d.taskOf, st.TaskOf)
	copy(d.alive, st.Alive)
	for i, task := range d.taskOf {
		d.byTask[task] = append(d.byTask[task], noc.NodeID(i))
	}
	d.Version = st.Version
	clear(d.nearCache)
	clear(d.nearKCache)
	d.arena = d.arena[:0]
	d.nearVersion = st.Version
}
