package server

import (
	"container/list"
	"sync"
)

// Cache is a thread-safe LRU of completed run results keyed on the
// canonical spec key, so identical requests are answered without
// re-simulating.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key    string
	result *RunResult
}

// NewCache builds an LRU holding up to capacity results (capacity <= 0
// disables caching: every lookup misses).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result, evicting the least recently used entry when full.
// Results are immutable once stored; callers must not mutate them.
func (c *Cache) Put(key string, r *RunResult) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).result = r
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, result: r})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size   int    `json:"size"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats snapshots the current size and hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Size: c.order.Len(), Hits: c.hits, Misses: c.misses}
}
