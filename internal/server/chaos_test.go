package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"centurion/internal/dispatch"
	"centurion/internal/store"
)

// The service-level chaos acceptance suite (DESIGN.md §16): a sweep shared
// by three checkpointing workers survives a seeded schedule of two worker
// kills and one coordinator crash-restart with a bit-identical aggregate
// and no lost job, and a failing store degrades the service to LRU-only
// caching instead of failing runs.

// startResumableWorker runs an in-process checkpoint-aware worker daemon
// and returns its stop function.
func startResumableWorker(t *testing.T, url, name string, hardStop <-chan struct{}, tr dispatch.Transport, exec dispatch.ExecuteResumableFunc) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = dispatch.RunWorker(ctx, dispatch.WorkerOptions{
			Coordinator:      url,
			Name:             name,
			Slots:            2,
			ExecuteResumable: exec,
			Transport:        tr,
			HardStop:         hardStop,
			MaxBackoff:       100 * time.Millisecond,
		})
	}()
	return func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("worker %s did not stop", name)
		}
	}
}

// killAfterCommits wraps a resumable executor so the worker hard-stops
// itself immediately after its n-th successfully committed checkpoint —
// a seeded, deterministic mid-run kill with a fresh checkpoint behind it.
func killAfterCommits(exec dispatch.ExecuteResumableFunc, n int64, hardStop chan struct{}, killed *atomic.Bool) dispatch.ExecuteResumableFunc {
	var commits atomic.Int64
	return func(ctx context.Context, job dispatch.ResumableJob) ([]byte, string) {
		inner := job
		commit := job.Commit
		inner.Commit = func(ctx context.Context, tick int64, data []byte) error {
			err := commit(ctx, tick, data)
			if err == nil && commits.Add(1) == n && killed.CompareAndSwap(false, true) {
				close(hardStop)
			}
			return err
		}
		return exec(ctx, inner)
	}
}

// chaosSweep is the acceptance workload: 204 distinct cells of 80 windows
// each, long enough that every job commits several mid-run checkpoints.
const chaosSweep = `{
	"spec": {"duration_ms": 80, "width": 8, "height": 4},
	"models": ["none", "ni", "ffw", "random-static"],
	"fault_counts": [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],
	"topologies": ["mesh", "torus", "cmesh"],
	"runs": 1
}`

// TestChaosSweepSurvivesKillsAndRestart is ISSUE 10's headline acceptance
// test: three checkpointing workers share a 204-cell sweep over a hostile
// network while a seeded schedule kills two of them mid-job and then
// crash-restarts the coordinator mid-sweep. The journal replays the open
// queue, the surviving worker re-registers, killed jobs resume from their
// last committed checkpoint, the client sees only retryable errors — and
// the final aggregate is bit-identical to a clean local run.
func TestChaosSweepSurvivesKillsAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("204-cell chaos sweep")
	}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "results.log")
	jrnlPath := filepath.Join(dir, "queue.jrnl")
	dcfg := dispatch.Config{
		LeaseTTL:    150 * time.Millisecond,
		PollWait:    50 * time.Millisecond,
		MaxAttempts: 6,
	}

	// Life 1: durable store + journal, on a listener whose address the
	// restarted coordinator will re-bind, so workers and clients reconnect
	// to the same endpoint.
	st1, err := store.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	jr1, err := dispatch.OpenJournal(jrnlPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := dcfg
	cfg1.Journal = jr1
	s1 := New(Options{Workers: 4, QueueBound: 512, CacheSize: 512, Store: st1, Dispatch: cfg1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	url := "http://" + addr
	ts1 := httptest.NewUnstartedServer(s1)
	ts1.Listener.Close()
	ts1.Listener = ln
	ts1.Start()

	// Checkpoint every 10 simulated ms: an 80-window cell commits at
	// windows 10..70, so a kill never wastes more than one interval.
	resumable := DispatchExecuteResumable(10)

	// Two doomed workers die right after their 3rd and 8th committed
	// checkpoints; the survivor rides a seeded hostile network (drops,
	// lost replies, duplicated deliveries) for the whole test.
	hsA, hsB := make(chan struct{}), make(chan struct{})
	var killedA, killedB atomic.Bool
	stopA := startResumableWorker(t, url, "doomed-a", hsA, nil, killAfterCommits(resumable, 3, hsA, &killedA))
	defer stopA()
	stopB := startResumableWorker(t, url, "doomed-b", hsB, nil, killAfterCommits(resumable, 8, hsB, &killedB))
	defer stopB()
	chaosTr := dispatch.NewChaosTransport(dispatch.NewHTTPTransport(url, nil), dispatch.ChaosConfig{
		Seed:          29,
		DropRate:      0.02,
		ReplyLossRate: 0.05,
		DupRate:       0.05,
		Exempt:        []string{"/v1/workers/register", "/lease"},
	})
	stopSurvivor := startResumableWorker(t, url, "survivor", nil, chaosTr, resumable)
	defer stopSurvivor()
	waitForWorkers(t, s1.Coordinator(), 3)

	// The client: one sweep, retried through connection errors and 5xx
	// until it lands. A crash mid-POST must read as a retry, never as a
	// lost or doubled job.
	type sweepOut struct {
		rows    SweepResponse
		retries int
	}
	sweepDone := make(chan sweepOut, 1)
	go func() {
		retries := 0
		for {
			code, sr := func() (int, SweepResponse) {
				resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(chaosSweep))
				if err != nil {
					return 0, SweepResponse{}
				}
				defer resp.Body.Close()
				var out SweepResponse
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						return 0, SweepResponse{}
					}
				}
				return resp.StatusCode, out
			}()
			if code == http.StatusOK {
				sweepDone <- sweepOut{rows: sr, retries: retries}
				return
			}
			retries++
			time.Sleep(100 * time.Millisecond)
		}
	}()

	// Crash the coordinator only once the seeded schedule has fully fired:
	// both kills landed, at least one killed job already resumed from its
	// checkpoint, and the queue still has open jobs for the journal to
	// carry across the restart.
	var life1 dispatch.Stats
	crashDeadline := time.Now().Add(30 * time.Second)
	for {
		life1 = s1.Coordinator().Stats()
		if killedA.Load() && killedB.Load() && life1.Resumes >= 1 && life1.Pending+life1.Leased > 0 {
			break
		}
		select {
		case out := <-sweepDone:
			t.Fatalf("sweep finished (%d rows) before the chaos schedule fired: %+v", len(out.rows.Rows), life1)
		default:
		}
		if time.Now().After(crashDeadline) {
			t.Fatalf("chaos schedule never fired: killedA=%v killedB=%v stats=%+v", killedA.Load(), killedB.Load(), life1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if life1.CheckpointsCommitted == 0 {
		t.Fatalf("no checkpoint committed before the crash: %+v", life1)
	}
	ts1.CloseClientConnections()
	s1.Coordinator().CrashForTest() // journal on disk is exactly what a real crash leaves
	ts1.Close()
	s1.Close()

	// Life 2: reopen the journal and store, re-bind the same address. The
	// journal must replay every job the crash left open.
	st2, err := store.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := dispatch.OpenJournal(jrnlPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(jr2.Pending()); got == 0 {
		t.Fatal("crash left open jobs but the journal replayed none")
	}
	cfg2 := dcfg
	cfg2.Journal = jr2
	s2 := New(Options{Workers: 4, QueueBound: 512, CacheSize: 512, Store: st2, Dispatch: cfg2})
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not re-bind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts2 := httptest.NewUnstartedServer(s2)
	ts2.Listener.Close()
	ts2.Listener = ln2
	ts2.Start()
	defer func() { ts2.Close(); s2.Close() }()
	// A replacement joins; the survivor re-registers on its own.
	stopFresh := startResumableWorker(t, url, "replacement", nil, nil, resumable)
	defer stopFresh()
	waitForWorkers(t, s2.Coordinator(), 1)

	var got sweepOut
	select {
	case got = <-sweepDone:
	case <-time.After(120 * time.Second):
		t.Fatalf("sweep never completed after the restart: %+v", s2.Coordinator().Stats())
	}
	if got.retries == 0 {
		t.Error("the client never observed the crash as a retry")
	}
	if len(got.rows.Rows) != 204 {
		t.Fatalf("sweep returned %d rows, want 204", len(got.rows.Rows))
	}

	life2 := s2.Coordinator().Stats()
	if life2.JournalReplays == 0 {
		t.Errorf("restarted coordinator replayed no journal jobs: %+v", life2)
	}
	if life1.Resumes+life2.Resumes < 1 {
		t.Errorf("no killed job ever resumed from a checkpoint: life1=%+v life2=%+v", life1, life2)
	}
	if life1.Expired+life2.Expired == 0 {
		t.Errorf("worker kills left no expiry trace: life1=%+v life2=%+v", life1, life2)
	}

	// The same grid on a clean, worker-less server must produce
	// bit-identical aggregates: kills, resumes and the restart changed
	// nothing about the results.
	local := New(Options{Workers: 4, QueueBound: 512, CacheSize: 512})
	lts := httptest.NewServer(local)
	defer func() { lts.Close(); local.Close() }()
	lcode, want, _ := postSweep(t, lts.URL, chaosSweep)
	if lcode != http.StatusOK {
		t.Fatalf("clean local sweep status %d", lcode)
	}
	if len(want.Rows) != len(got.rows.Rows) {
		t.Fatalf("row count mismatch: chaos %d, clean %d", len(got.rows.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		g, w := got.rows.Rows[i], want.Rows[i]
		if g.Model != w.Model || g.Faults != w.Faults || g.Topology != w.Topology {
			t.Fatalf("row %d cell mismatch: %s/%d/%s vs %s/%d/%s",
				i, g.Model, g.Faults, g.Topology, w.Model, w.Faults, w.Topology)
		}
		if g.Aggregate != w.Aggregate {
			t.Errorf("row %s/%d/%s diverged from the clean run:\n%+v\n%+v",
				g.Model, g.Faults, g.Topology, g.Aggregate, w.Aggregate)
		}
	}
}

// errDisk is the backend failure a broken store surfaces.
var errDisk = errors.New("store: disk on fire")

// failingStore errors on every touch — the breaker must open and the
// service must keep serving from the LRU alone.
type failingStore struct{ ops atomic.Uint64 }

func (f *failingStore) Get(string) ([]byte, bool, error) { f.ops.Add(1); return nil, false, errDisk }
func (f *failingStore) Put(string, []byte) error         { f.ops.Add(1); return errDisk }
func (f *failingStore) Delete(string) error              { f.ops.Add(1); return errDisk }
func (f *failingStore) Stats() store.Stats               { return store.Stats{} }
func (f *failingStore) Compact() error                   { return nil }
func (f *failingStore) Close() error                     { return nil }

// TestStoreBreakerDegradesToLRU: with every store operation failing, runs
// still succeed (LRU-only caching) and /healthz raises store_degraded.
func TestStoreBreakerDegradesToLRU(t *testing.T) {
	fs := &failingStore{}
	s := New(Options{Workers: 2, QueueBound: 64, CacheSize: 16, Store: fs})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	for seed := 1; seed <= 3; seed++ {
		spec := fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, seed)
		code, js := postRun(t, ts, spec, true)
		if code != http.StatusOK || js.State != JobDone || js.Result == nil {
			t.Fatalf("run with a failing store: code %d state %s (%s)", code, js.State, js.Error)
		}
	}
	if fs.ops.Load() == 0 {
		t.Fatal("the failing store was never touched — nothing was degraded")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Dispatch struct {
			StoreDegraded bool   `json:"store_degraded"`
			StoreTrips    uint64 `json:"store_trips"`
		} `json:"dispatch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Dispatch.StoreDegraded || health.Dispatch.StoreTrips == 0 {
		t.Fatalf("breaker never opened: degraded=%v trips=%d after %d failed ops",
			health.Dispatch.StoreDegraded, health.Dispatch.StoreTrips, fs.ops.Load())
	}

	// Degraded, not broken: a repeated spec is an LRU cache hit.
	spec := `{"model": "ffw", "seed": 1, "duration_ms": 20, "width": 8, "height": 4}`
	code, js := postRun(t, ts, spec, true)
	if code != http.StatusOK || js.State != JobDone || !js.CacheHit {
		t.Fatalf("repeat spec with an open breaker: code %d state %s cacheHit=%v", code, js.State, js.CacheHit)
	}
}
