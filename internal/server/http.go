package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"centurion/internal/dispatch"
	"centurion/internal/experiments"
	"centurion/internal/faults"
	"centurion/internal/store"
)

// maxBodyBytes bounds request bodies; a run spec is a few hundred bytes.
const maxBodyBytes = 1 << 20

// JobStatus is the wire representation of a job returned by the runs
// endpoints.
type JobStatus struct {
	ID       string     `json:"id"`
	Key      string     `json:"key"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	CacheHit bool       `json:"cache_hit"`
	StoreHit bool       `json:"store_hit,omitempty"`
	Created  time.Time  `json:"created"`
	Result   *RunResult `json:"result,omitempty"`
}

// SweepRequest asks for a grid of batches: every model × fault axis ×
// topology × grid shape, each aggregated over Runs independently seeded
// runs. An empty Topologies (or Grids) axis sweeps only the base spec's
// shape, so existing clients keep their lower-dimensional grids. Grids
// entries are "WxH" strings ("64x64"); every shape is validated and budgeted
// like a standalone spec and gets its own canonical cache identity. The
// fault axis is either FaultCounts (the legacy single-instant injections) or
// FaultProfiles (hostile fault-engine schedules: death, churn, flaky,
// cascade, byzantine) — the two are mutually exclusive.
type SweepRequest struct {
	Spec          RunSpec          `json:"spec"`
	Models        []string         `json:"models"`
	FaultCounts   []int            `json:"fault_counts"`
	FaultProfiles []faults.Profile `json:"fault_profiles"`
	Topologies    []string         `json:"topologies"`
	Grids         []string         `json:"grids"`
	Runs          int              `json:"runs"`
}

// SweepRow is one cell of the sweep: the aggregate for one model at one
// fault-axis entry on one topology and grid shape. Profile carries the
// fault-profile kind when the sweep used the hostile axis.
type SweepRow struct {
	Model     string    `json:"model"`
	Faults    int       `json:"faults"`
	Profile   string    `json:"profile,omitempty"`
	Topology  string    `json:"topology"`
	Grid      string    `json:"grid"`
	CacheHit  bool      `json:"cache_hit"`
	StoreHit  bool      `json:"store_hit,omitempty"`
	Aggregate Aggregate `json:"aggregate"`
}

// SweepResponse is the sweep endpoint's payload.
type SweepResponse struct {
	Rows []SweepRow `json:"rows"`
}

// routes installs the REST API on mux.
func (s *Server) routes(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
}

// labelSuffix renders an optional fault-profile label for error messages.
func labelSuffix(label string) string {
	if label == "" {
		return ""
	}
	return "/" + label
}

// writeJSON emits v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits a JSON error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// status builds the wire form of a job snapshot.
func (s *Server) status(j *Job) JobStatus {
	snap, result := s.engine.Snapshot(j)
	return JobStatus{
		ID:       snap.ID,
		Key:      snap.Key,
		State:    snap.State,
		Error:    snap.Error,
		CacheHit: snap.CacheHit,
		StoreHit: snap.StoreHit,
		Created:  snap.Created,
		Result:   result,
	}
}

// writeUnavailable emits the 503 for a full queue (or closing engine) with
// Retry-After advice derived from the queue depth and the mean executed-job
// latency, so backpressure tells clients *when* to come back instead of
// inviting an immediate stampede.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	secs := int((s.engine.RetryAfter() + time.Second - 1) / time.Second) // round up
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, err)
}

// GCStats is the allocator/GC view surfaced by /healthz: with pooled
// platforms and recycled packets the pause totals should stay flat under
// sustained sweep traffic — a growing pause total is the capacity signal
// that something regressed to per-run allocation.
type GCStats struct {
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	NumGC          uint32  `json:"num_gc"`
	PauseTotalMs   float64 `json:"pause_total_ms"`
}

// gcStatsTTL bounds how often /healthz pays for a runtime.ReadMemStats —
// the call stops the world, so a hammered health endpoint must not turn
// into a GC-pause generator of its own.
const gcStatsTTL = time.Second

// gcStats returns the allocator snapshot, refreshing it at most once per
// gcStatsTTL.
func (s *Server) gcStats() GCStats {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if time.Since(s.gcAt) >= gcStatsTTL {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.gcSnap = GCStats{
			HeapAllocBytes: ms.HeapAlloc,
			NumGC:          ms.NumGC,
			PauseTotalMs:   float64(ms.PauseTotalNs) / 1e6,
		}
		s.gcAt = time.Now()
	}
	return s.gcSnap
}

// dispatchHealth is the /healthz "dispatch" section: the coordinator's
// worker/lease counters plus, when durability is on, the result store.
type dispatchHealth struct {
	dispatch.Stats
	Store *store.Stats `json:"store,omitempty"`
	// StoreDegraded warns that the store circuit breaker is open: the
	// backend is erroring and the service is running on LRU-only caching
	// (results and checkpoints are not durable right now).
	StoreDegraded bool `json:"store_degraded,omitempty"`
	// StoreTrips counts how many times the breaker has opened.
	StoreTrips uint64 `json:"store_trips,omitempty"`
	// WarmPrefixSkew counts leased jobs whose advisory warm-prefix key
	// disagreed with this process's own derivation (binary version skew).
	WarmPrefixSkew uint64 `json:"warm_prefix_skew,omitempty"`
}

// handleHealth reports liveness plus engine, cache, dispatch, store,
// platform-pool and GC statistics for capacity monitoring.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	dh := dispatchHealth{Stats: s.coord.Stats(), WarmPrefixSkew: WarmPrefixSkew()}
	if s.store != nil {
		st := s.store.Stats()
		dh.Store = &st
		dh.StoreDegraded = s.breaker.Degraded()
		dh.StoreTrips = s.breaker.Trips()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"engine":         s.engine.Stats(),
		"dispatch":       dh,
		"pool":           experiments.PoolStats(),
		"warmstart":      experiments.WarmStats(),
		"gc":             s.gcStats(),
	})
}

// handleSubmit admits one run spec. With ?wait=1 the response blocks until
// the job finishes; otherwise a 202 with the job ID is returned immediately
// (200 when a cache hit completes it on admission).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.engine.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
			s.writeUnavailable(w, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		if err := s.engine.Wait(r.Context(), j); err != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
	}
	st := s.status(j)
	code := http.StatusAccepted
	switch st.State {
	case JobDone:
		code = http.StatusOK
	case JobFailed:
		// Jobs only fail on engine shutdown or cancellation.
		code = http.StatusInternalServerError
	}
	writeJSON(w, code, st)
}

// handleGet reports one job's status and, when finished, its result.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleEvents streams the job's windowed series as Server-Sent Events:
// already-recorded samples replay first, new ones follow live, and a final
// "done" event carries the job's terminal status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := s.engine.Subscribe(j)
	defer cancel()

	send := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	for _, smp := range replay {
		send("sample", smp)
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case smp, open := <-live:
			if !open {
				send("done", s.status(j))
				return
			}
			send("sample", smp)
		}
	}
}

// handleSweep fans a grid of batch jobs (model × fault count × topology)
// through the engine, waits for all of them, and returns one aggregate row
// per cell — mean ± 95% CI over the batch's runs. Cells already in the
// cache are free.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep request: %w", err))
		return
	}
	if len(req.Models) == 0 {
		req.Models = []string{"none", "ni", "ffw"}
	}
	if len(req.FaultCounts) > 0 && len(req.FaultProfiles) > 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("fault_counts and fault_profiles are mutually exclusive sweep axes"))
		return
	}
	// The fault axis: legacy single-instant counts or hostile profiles.
	type faultCell struct {
		count   int
		profile *faults.Profile
		label   string
	}
	var faultAxis []faultCell
	if len(req.FaultProfiles) > 0 {
		for i := range req.FaultProfiles {
			p := req.FaultProfiles[i]
			faultAxis = append(faultAxis, faultCell{profile: &p, label: p.Kind})
		}
	} else if len(req.FaultCounts) > 0 {
		for _, fc := range req.FaultCounts {
			faultAxis = append(faultAxis, faultCell{count: fc})
		}
	} else {
		faultAxis = []faultCell{{}}
	}
	if len(req.Topologies) == 0 {
		req.Topologies = []string{req.Spec.Topology}
	}
	// The grid axis: "WxH" shapes, defaulting to the base spec's own
	// dimensions (possibly zero — Canonicalize fills in 16×8).
	type gridCell struct{ w, h int }
	gridAxis := []gridCell{{req.Spec.Width, req.Spec.Height}}
	if len(req.Grids) > 0 {
		gridAxis = gridAxis[:0]
		for _, g := range req.Grids {
			gw, gh, err := ParseGrid(g)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			gridAxis = append(gridAxis, gridCell{gw, gh})
		}
	}
	if req.Runs > 0 {
		req.Spec.Runs = req.Runs
	}

	// Canonicalize the whole grid before submitting anything, so an invalid
	// cell cannot leave earlier cells simulating for a rejected request.
	// (The guarantee covers validation only: a mid-grid queue-full still
	// leaves earlier admitted cells running.)
	type cell struct {
		row  SweepRow
		spec RunSpec
		job  *Job
	}
	var cells []cell
	for _, model := range req.Models {
		for _, fa := range faultAxis {
			for _, topo := range req.Topologies {
				for _, grid := range gridAxis {
					spec := req.Spec
					spec.Model = model
					spec.NumFaults = fa.count
					spec.FaultProfile = fa.profile
					spec.Topology = topo
					spec.Width, spec.Height = grid.w, grid.h
					if fa.count > 0 && spec.FaultAtMs == 0 {
						// The paper injects halfway through the run (500 ms of
						// 1000), rounded down onto the sampling-window grid.
						d := spec.DurationMs
						if d == 0 {
							d = 1000
						}
						win := spec.WindowMs
						if win == 0 {
							win = 1
						}
						spec.FaultAtMs = d/2 - (d/2)%win
					}
					if err := spec.Canonicalize(); err != nil {
						writeError(w, http.StatusBadRequest, fmt.Errorf("cell %s/%d%s/%s/%dx%d: %w",
							model, fa.count, labelSuffix(fa.label), topo, grid.w, grid.h, err))
						return
					}
					// The canonical topology and grid (empty axis entries
					// default to "mesh" and 16×8) label the row.
					cells = append(cells, cell{row: SweepRow{
						Model:    model,
						Faults:   fa.count,
						Profile:  fa.label,
						Topology: spec.Topology,
						Grid:     fmt.Sprintf("%dx%d", spec.Width, spec.Height),
					}, spec: spec})
				}
			}
		}
	}
	for i := range cells {
		j, err := s.engine.Submit(cells[i].spec)
		if err != nil {
			cellErr := fmt.Errorf("cell %s/%d: %w", cells[i].row.Model, cells[i].row.Faults, err)
			if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) {
				s.writeUnavailable(w, cellErr)
				return
			}
			writeError(w, http.StatusInternalServerError, cellErr)
			return
		}
		cells[i].job = j
	}

	resp := SweepResponse{}
	for _, c := range cells {
		if err := s.engine.Wait(r.Context(), c.job); err != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
		snap, result := s.engine.Snapshot(c.job)
		if snap.State == JobFailed || result == nil {
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("cell %s/%d failed: %s", c.row.Model, c.row.Faults, snap.Error))
			return
		}
		c.row.CacheHit = snap.CacheHit
		c.row.StoreHit = snap.StoreHit
		c.row.Aggregate = result.Aggregate
		resp.Rows = append(resp.Rows, c.row)
	}
	writeJSON(w, http.StatusOK, resp)
}
