package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"centurion/internal/dispatch"
)

// benchPost submits one spec with ?wait=1 and fails the benchmark on any
// non-200 outcome.
func benchPost(b *testing.B, url, spec string) {
	resp, err := http.Post(url+"/v1/runs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != JobDone {
		b.Fatalf("status %d, state %s (%s)", resp.StatusCode, st.State, st.Error)
	}
}

// benchServe drives concurrent POST /v1/runs?wait=1 traffic against a
// GOMAXPROCS-worker service, cycling through `distinct` different specs, and
// reports requests/s and the cache hit rate.
func benchServe(b *testing.B, distinct int) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, i+1)
	}
	// Warm the cache so steady-state traffic measures the serving path of a
	// long-running service rather than first-contact simulation.
	for _, spec := range specs {
		benchPost(b, ts.URL, spec)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			benchPost(b, ts.URL, specs[i%len(specs)])
			i++
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	total := stats.Cache.Hits + stats.Cache.Misses
	if total > 0 {
		b.ReportMetric(float64(stats.Cache.Hits)/float64(total)*100, "cache_hit_%")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(stats.Workers), "workers")
}

// BenchmarkServeCached is the hot-cache regime: every request after warm-up
// is answered from the LRU without re-simulating.
func BenchmarkServeCached(b *testing.B) { benchServe(b, 8) }

// benchDistributedSweep drives 32-cell sweep grids (every cell a distinct
// canonical spec, so nothing is answered from the caches) through a service
// with `workers` in-process leased daemons attached — 0 means the dispatch
// executor falls back to purely local execution, the 1-process baseline —
// and reports sweep-spec throughput.
func benchDistributedSweep(b *testing.B, workers int) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 16})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < workers; i++ {
		go func(i int) {
			_ = dispatch.RunWorker(ctx, dispatch.WorkerOptions{
				Coordinator: ts.URL,
				Name:        fmt.Sprintf("bench-%d", i),
				Slots:       2,
				Execute:     DispatchExecute,
			})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Coordinator().Stats().WorkersLive < workers {
		if time.Now().After(deadline) {
			b.Fatal("bench workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const cellsPerSweep = 32 // 2 models x 8 fault counts x 2 topologies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh base seed per iteration keeps every cell a cache miss.
		req := fmt.Sprintf(`{
			"spec": {"duration_ms": 20, "width": 8, "height": 4, "seed": %d},
			"models": ["none", "ffw"],
			"fault_counts": [0,1,2,3,4,5,6,7],
			"topologies": ["mesh", "torus"],
			"runs": 1
		}`, i*cellsPerSweep+1)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(sr.Rows) != cellsPerSweep {
			b.Fatalf("sweep status %d, %d rows", resp.StatusCode, len(sr.Rows))
		}
	}
	b.StopTimer()
	st := s.Coordinator().Stats()
	if workers > 0 && st.Completed == 0 {
		b.Fatal("no cell executed through the dispatch fabric")
	}
	b.ReportMetric(float64(b.N*cellsPerSweep)/b.Elapsed().Seconds(), "specs/s")
	b.ReportMetric(float64(st.Requeued), "requeues")
}

// BenchmarkDistributedSweep is the gated configuration (3 leased workers);
// its specs/s metric is held to a throughput floor by cmd/benchgate. The
// Local and OneWorker variants exist for the scaling table in
// EXPERIMENTS.md and are not gated.
func BenchmarkDistributedSweep(b *testing.B)          { benchDistributedSweep(b, 3) }
func BenchmarkDistributedSweepLocal(b *testing.B)     { benchDistributedSweep(b, 0) }
func BenchmarkDistributedSweepOneWorker(b *testing.B) { benchDistributedSweep(b, 1) }

// BenchmarkServeColdMiss is the all-miss regime: every request simulates.
// Each iteration uses a fresh seed, so the cache never hits.
func BenchmarkServeColdMiss(b *testing.B) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seed.Add(1)
			benchPost(b, ts.URL, fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, n))
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	b.ReportMetric(float64(stats.Cache.Misses), "misses")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
