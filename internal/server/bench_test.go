package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"centurion/internal/dispatch"
)

// benchPost submits one spec with ?wait=1 and fails the benchmark on any
// non-200 outcome.
func benchPost(b *testing.B, url, spec string) {
	resp, err := http.Post(url+"/v1/runs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != JobDone {
		b.Fatalf("status %d, state %s (%s)", resp.StatusCode, st.State, st.Error)
	}
}

// benchServe drives concurrent POST /v1/runs?wait=1 traffic against a
// GOMAXPROCS-worker service, cycling through `distinct` different specs, and
// reports requests/s and the cache hit rate.
func benchServe(b *testing.B, distinct int) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, i+1)
	}
	// Warm the cache so steady-state traffic measures the serving path of a
	// long-running service rather than first-contact simulation.
	for _, spec := range specs {
		benchPost(b, ts.URL, spec)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			benchPost(b, ts.URL, specs[i%len(specs)])
			i++
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	total := stats.Cache.Hits + stats.Cache.Misses
	if total > 0 {
		b.ReportMetric(float64(stats.Cache.Hits)/float64(total)*100, "cache_hit_%")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(stats.Workers), "workers")
}

// BenchmarkServeCached is the hot-cache regime: every request after warm-up
// is answered from the LRU without re-simulating.
func BenchmarkServeCached(b *testing.B) { benchServe(b, 8) }

// benchDistributedSweep drives 32-cell sweep grids (every cell a distinct
// canonical spec, so nothing is answered from the caches) through a service
// with `workers` in-process leased daemons attached — 0 means the dispatch
// executor falls back to purely local execution, the 1-process baseline —
// and reports sweep-spec throughput.
func benchDistributedSweep(b *testing.B, workers int) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 16})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < workers; i++ {
		go func(i int) {
			_ = dispatch.RunWorker(ctx, dispatch.WorkerOptions{
				Coordinator: ts.URL,
				Name:        fmt.Sprintf("bench-%d", i),
				Slots:       2,
				Execute:     DispatchExecute,
			})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Coordinator().Stats().WorkersLive < workers {
		if time.Now().After(deadline) {
			b.Fatal("bench workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const cellsPerSweep = 32 // 2 models x 8 fault counts x 2 topologies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh base seed per iteration keeps every cell a cache miss.
		req := fmt.Sprintf(`{
			"spec": {"duration_ms": 20, "width": 8, "height": 4, "seed": %d},
			"models": ["none", "ffw"],
			"fault_counts": [0,1,2,3,4,5,6,7],
			"topologies": ["mesh", "torus"],
			"runs": 1
		}`, i*cellsPerSweep+1)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(sr.Rows) != cellsPerSweep {
			b.Fatalf("sweep status %d, %d rows", resp.StatusCode, len(sr.Rows))
		}
	}
	b.StopTimer()
	st := s.Coordinator().Stats()
	if workers > 0 && st.Completed == 0 {
		b.Fatal("no cell executed through the dispatch fabric")
	}
	b.ReportMetric(float64(b.N*cellsPerSweep)/b.Elapsed().Seconds(), "specs/s")
	b.ReportMetric(float64(st.Requeued), "requeues")
}

// BenchmarkDistributedSweep is the gated configuration (3 leased workers);
// its specs/s metric is held to a throughput floor by cmd/benchgate. The
// Local and OneWorker variants exist for the scaling table in
// EXPERIMENTS.md and are not gated.
func BenchmarkDistributedSweep(b *testing.B)          { benchDistributedSweep(b, 3) }
func BenchmarkDistributedSweepLocal(b *testing.B)     { benchDistributedSweep(b, 0) }
func BenchmarkDistributedSweepOneWorker(b *testing.B) { benchDistributedSweep(b, 1) }

// BenchmarkServeColdMiss is the all-miss regime: every request simulates.
// Each iteration uses a fresh seed, so the cache never hits.
func BenchmarkServeColdMiss(b *testing.B) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seed.Add(1)
			benchPost(b, ts.URL, fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, n))
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	b.ReportMetric(float64(stats.Cache.Misses), "misses")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSweepWithKills is the recovery-throughput floor (ISSUE 10):
// three checkpointing workers share a 32-cell sweep and every iteration
// hard-kills one of them right after its third committed checkpoint, so the
// sweep only completes once the killed cell's lease expires and a survivor
// resumes it from the checkpoint. No journal or store is attached — fsync
// noise would swamp the recovery signal. specs/s is gated as a FLOOR by
// cmd/benchgate: a regression in expiry, requeue or resume shows up as
// recovery stalls dragging the throughput down.
func BenchmarkSweepWithKills(b *testing.B) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 16,
		Dispatch: dispatch.Config{
			LeaseTTL:    150 * time.Millisecond,
			PollWait:    50 * time.Millisecond,
			MaxAttempts: 6,
		}})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	resumable := DispatchExecuteResumable(10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go func(i int) {
			_ = dispatch.RunWorker(ctx, dispatch.WorkerOptions{
				Coordinator:      ts.URL,
				Name:             fmt.Sprintf("survivor-%d", i),
				Slots:            2,
				ExecuteResumable: resumable,
				MaxBackoff:       100 * time.Millisecond,
			})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Coordinator().Stats().WorkersLive < 2 {
		if time.Now().After(deadline) {
			b.Fatal("bench workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const cellsPerSweep = 32 // 2 models x 8 fault counts x 2 topologies
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh doomed worker per iteration; 40-window cells commit at
		// windows 10/20/30, so its third commit lands inside its first cell
		// and the kill abandons that cell mid-run with a checkpoint behind.
		hs := make(chan struct{})
		var killed atomic.Bool
		dctx, dcancel := context.WithCancel(ctx)
		workerDone := make(chan struct{})
		go func() {
			defer close(workerDone)
			_ = dispatch.RunWorker(dctx, dispatch.WorkerOptions{
				Coordinator:      ts.URL,
				Name:             fmt.Sprintf("doomed-%d", i),
				Slots:            2,
				ExecuteResumable: killAfterCommits(resumable, 3, hs, &killed),
				HardStop:         hs,
				MaxBackoff:       100 * time.Millisecond,
			})
		}()
		req := fmt.Sprintf(`{
			"spec": {"duration_ms": 40, "width": 8, "height": 4, "seed": %d},
			"models": ["none", "ffw"],
			"fault_counts": [0,1,2,3,4,5,6,7],
			"topologies": ["mesh", "torus"],
			"runs": 1
		}`, i*cellsPerSweep+1)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			b.Fatal(err)
		}
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(sr.Rows) != cellsPerSweep {
			b.Fatalf("sweep status %d, %d rows", resp.StatusCode, len(sr.Rows))
		}
		dcancel()
		<-workerDone
	}
	b.StopTimer()
	st := s.Coordinator().Stats()
	if st.Resumes == 0 {
		b.Fatal("no kill was ever recovered through a checkpoint resume")
	}
	b.ReportMetric(float64(b.N*cellsPerSweep)/b.Elapsed().Seconds(), "specs/s")
	b.ReportMetric(float64(st.Resumes)/float64(b.N), "resumes/op")
}

// BenchmarkJobCheckpoint pins the coordinator-side cost of one committed
// checkpoint — fence validation, monotonic-tick check, buffer copy, lease
// extension — at a 256 KiB payload, the CENCKPT1 size class of the paper's
// 16x8 platform. Gated as an ns/op ceiling: checkpointing is on the
// worker's hot mid-run path, so this is the overhead budget every
// checkpoint interval pays.
func BenchmarkJobCheckpoint(b *testing.B) {
	c := dispatch.NewCoordinator(dispatch.Config{
		LeaseTTL: time.Hour, // no expiry mid-benchmark
		PollWait: 50 * time.Millisecond,
	})
	defer c.Close()
	wid, _, _, err := c.Register("bench-ckpt", 1)
	if err != nil {
		b.Fatal(err)
	}
	resCh := make(chan error, 1)
	go func() {
		_, eerr := c.Execute(context.Background(), "bench-ckpt-key", []byte("{}"), nil)
		resCh <- eerr
	}()
	var lease dispatch.Lease
	deadline := time.Now().Add(10 * time.Second)
	for {
		l, ok, lerr := c.Lease(context.Background(), wid, 50*time.Millisecond)
		if lerr != nil {
			b.Fatal(lerr)
		}
		if ok {
			lease = l
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("benchmark job never leased")
		}
	}
	data := make([]byte, 256<<10)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Checkpoint(lease.JobID, wid, lease.Attempt, int64(i+1), data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := c.Complete(lease.JobID, wid, lease.Attempt, []byte("{}"), ""); err != nil {
		b.Fatal(err)
	}
	if err := <-resCh; err != nil {
		b.Fatal(err)
	}
}
