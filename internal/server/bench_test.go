package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// benchPost submits one spec with ?wait=1 and fails the benchmark on any
// non-200 outcome.
func benchPost(b *testing.B, url, spec string) {
	resp, err := http.Post(url+"/v1/runs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.State != JobDone {
		b.Fatalf("status %d, state %s (%s)", resp.StatusCode, st.State, st.Error)
	}
}

// benchServe drives concurrent POST /v1/runs?wait=1 traffic against a
// GOMAXPROCS-worker service, cycling through `distinct` different specs, and
// reports requests/s and the cache hit rate.
func benchServe(b *testing.B, distinct int) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	specs := make([]string, distinct)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, i+1)
	}
	// Warm the cache so steady-state traffic measures the serving path of a
	// long-running service rather than first-contact simulation.
	for _, spec := range specs {
		benchPost(b, ts.URL, spec)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			benchPost(b, ts.URL, specs[i%len(specs)])
			i++
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	total := stats.Cache.Hits + stats.Cache.Misses
	if total > 0 {
		b.ReportMetric(float64(stats.Cache.Hits)/float64(total)*100, "cache_hit_%")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(stats.Workers), "workers")
}

// BenchmarkServeCached is the hot-cache regime: every request after warm-up
// is answered from the LRU without re-simulating.
func BenchmarkServeCached(b *testing.B) { benchServe(b, 8) }

// BenchmarkServeColdMiss is the all-miss regime: every request simulates.
// Each iteration uses a fresh seed, so the cache never hits.
func BenchmarkServeColdMiss(b *testing.B) {
	s := New(Options{Workers: runtime.GOMAXPROCS(0), QueueBound: 4096, CacheSize: 256})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seed.Add(1)
			benchPost(b, ts.URL, fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 20, "width": 8, "height": 4}`, n))
		}
	})
	b.StopTimer()

	stats := s.Engine().Stats()
	b.ReportMetric(float64(stats.Cache.Misses), "misses")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
