package server

import (
	"sync"
	"sync/atomic"
	"time"

	"centurion/internal/store"
)

// Store-failure degradation (DESIGN.md §16): the durable store sits under
// the LRU cache and beside the dispatch checkpoint registry, and both uses
// are strictly best-effort — a broken disk must cost durability, never
// correctness or availability. breakerStore wraps the real store in a
// circuit breaker: after breakerThreshold consecutive backend errors the
// breaker opens and every operation becomes an instant no-op (Get misses,
// Put/Delete succeed vacuously), so a sick disk's latency and error churn
// stop touching the serving path and the engine degrades to LRU-only
// caching. After breakerCooldown one probe operation is let through;
// success closes the breaker again. /healthz surfaces the open state as
// store_degraded.
const (
	breakerThreshold = 3
	breakerCooldown  = 5 * time.Second
)

// breakerStore implements store.Store (and, structurally, the coordinator's
// CheckpointStore) around an inner store.
type breakerStore struct {
	inner store.Store

	mu        sync.Mutex
	failures  int           // consecutive backend errors while closed
	openUntil time.Duration // monotonic instant the next probe is allowed
	epoch     time.Time

	degraded atomic.Bool
	trips    uint64
}

func newBreakerStore(inner store.Store) *breakerStore {
	return &breakerStore{inner: inner, epoch: time.Now()}
}

// allow reports whether the backend may be touched right now.
func (b *breakerStore) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.degraded.Load() {
		return true
	}
	if time.Since(b.epoch) >= b.openUntil {
		// Half-open: admit one probe; a failure re-opens, a success closes.
		b.openUntil = time.Since(b.epoch) + breakerCooldown
		return true
	}
	return false
}

// observe records an operation's outcome and moves the breaker.
func (b *breakerStore) observe(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.failures = 0
		b.degraded.Store(false)
		return
	}
	b.failures++
	if b.failures >= breakerThreshold || b.degraded.Load() {
		if !b.degraded.Load() {
			b.trips++
		}
		b.degraded.Store(true)
		b.openUntil = time.Since(b.epoch) + breakerCooldown
	}
}

// Degraded reports whether the breaker is open (LRU-only operation).
func (b *breakerStore) Degraded() bool { return b.degraded.Load() }

// Trips reports how many times the breaker has opened.
func (b *breakerStore) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Get implements Store: an open breaker is a cache miss, not an error.
func (b *breakerStore) Get(key string) ([]byte, bool, error) {
	if !b.allow() {
		return nil, false, nil
	}
	val, ok, err := b.inner.Get(key)
	b.observe(err)
	if err != nil {
		return nil, false, nil
	}
	return val, ok, nil
}

// Put implements Store: an open breaker accepts and drops the write.
func (b *breakerStore) Put(key string, val []byte) error {
	if !b.allow() {
		return nil
	}
	b.observe(b.inner.Put(key, val))
	return nil
}

// Delete implements Store: an open breaker accepts and drops the delete.
func (b *breakerStore) Delete(key string) error {
	if !b.allow() {
		return nil
	}
	b.observe(b.inner.Delete(key))
	return nil
}

// Stats implements Store (pass-through; the breaker state travels via
// Degraded, not Stats).
func (b *breakerStore) Stats() store.Stats { return b.inner.Stats() }

// Compact implements Store.
func (b *breakerStore) Compact() error { return b.inner.Compact() }

// Close implements Store.
func (b *breakerStore) Close() error { return b.inner.Close() }
