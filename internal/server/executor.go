package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"centurion/internal/centurion"
	"centurion/internal/dispatch"
	"centurion/internal/experiments"
)

// Executor runs one canonicalized spec's batch. The engine's workers call
// it for every job that missed the caches; plugging a different Executor is
// how local in-process execution and remote leased workers coexist behind
// one job engine.
type Executor func(ctx context.Context, spec RunSpec, progress func(Sample)) (*RunResult, error)

// ResultStore is the durable content-addressed backend the engine layers
// under its LRU: canonical spec key → encoded RunResult. Implemented by
// internal/store; a minimal interface here keeps the engine testable with
// fakes and open to external backends.
type ResultStore interface {
	Get(key string) (val []byte, ok bool, err error)
	Put(key string, val []byte) error
}

// dispatchEnvelope is the leased-job payload: the canonical spec plus the
// coordinator's view of the warm-start prefix key for the batch's first run.
// The key is purely advisory — the worker derives its own key from the spec
// and warm-starts regardless — but shipping the coordinator's view lets the
// worker detect canonicalization skew between the two binaries, which would
// otherwise silently split the warm caches. Workers also accept a bare
// RunSpec payload (the pre-envelope wire format) for mixed-version fleets.
type dispatchEnvelope struct {
	Spec       json.RawMessage `json:"spec"`
	WarmPrefix string          `json:"warm_prefix,omitempty"`
}

// warmPrefixSkew counts leased jobs whose advisory prefix key disagreed with
// the key this worker derived from the same spec. Nonzero means coordinator
// and worker canonicalize specs differently (version skew) and their warm
// caches are keyed apart; /healthz surfaces it via WarmPrefixSkew.
var warmPrefixSkew atomic.Uint64

// WarmPrefixSkew reports how many leased jobs carried a warm-prefix key that
// did not match the worker's own derivation.
func WarmPrefixSkew() uint64 { return warmPrefixSkew.Load() }

// NewDispatchExecutor returns the routing Executor: jobs go to remote
// leased workers through the coordinator when any are alive, and fall back
// to in-process execution when dispatch cannot help (no workers registered,
// every lease attempt lost, coordinator shutting down). A serve-only
// deployment therefore behaves exactly like the pre-dispatch engine, while
// attaching `centurion worker` daemons scales the same queue horizontally.
func NewDispatchExecutor(coord *dispatch.Coordinator) Executor {
	return func(ctx context.Context, spec RunSpec, progress func(Sample)) (*RunResult, error) {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("server: encoding spec for dispatch: %w", err)
		}
		env := dispatchEnvelope{Spec: specJSON}
		env.WarmPrefix, _ = experiments.WarmPrefixKey(spec.toExperiment(0))
		payload, err := json.Marshal(env)
		if err != nil {
			return nil, fmt.Errorf("server: encoding dispatch envelope: %w", err)
		}
		res, err := coord.Execute(ctx, spec.CanonicalKey(), payload, func(b []byte) {
			if progress == nil || len(b) == 0 {
				return
			}
			var samples []Sample
			if json.Unmarshal(b, &samples) == nil {
				for _, s := range samples {
					progress(s)
				}
			}
		})
		switch {
		case err == nil:
			var rr RunResult
			if uerr := json.Unmarshal(res, &rr); uerr != nil {
				return nil, fmt.Errorf("server: decoding remote result: %w", uerr)
			}
			return &rr, nil
		case errors.Is(err, dispatch.ErrNoWorkers),
			errors.Is(err, dispatch.ErrAttemptsExhausted),
			errors.Is(err, dispatch.ErrClosed):
			return Execute(ctx, spec, progress)
		default:
			var re *dispatch.RemoteError
			if errors.As(err, &re) {
				// The spec ran remotely and failed deterministically;
				// retrying locally would fail identically.
				return nil, errors.New(re.Msg)
			}
			return nil, err
		}
	}
}

// progressFlushAt is how many samples a worker batches per progress post: a
// 1000-window run becomes ~16 round trips instead of 1000.
const progressFlushAt = 64

// jobCheckpoint is the wire form of a dispatch job's mid-batch checkpoint:
// which run of the batch is in flight, the summaries of the runs already
// completed, run 0's series, and the in-run resume state with the platform
// encoded as CENCKPT1. The checkpoint's progress stamp (the tick the
// coordinator fences forward motion with) is run*windows + win.
type jobCheckpoint struct {
	Run       int                   `json:"run"`
	Runs      []RunSummary          `json:"runs,omitempty"`
	Series    *Series               `json:"series,omitempty"`
	Win       int                   `json:"win"`
	Thr       []float64             `json:"thr,omitempty"`
	Act       []float64             `json:"act,omitempty"`
	Sw        []float64             `json:"sw,omitempty"`
	WaveSnaps []experiments.NetSnap `json:"wave_snaps,omitempty"`
	Platform  []byte                `json:"platform,omitempty"` // CENCKPT1
}

// parseDispatchPayload decodes a leased payload (envelope or bare spec)
// and accounts warm-prefix skew.
func parseDispatchPayload(payload []byte) (RunSpec, error) {
	specJSON := payload
	var env dispatchEnvelope
	if json.Unmarshal(payload, &env) == nil && len(env.Spec) > 0 {
		specJSON = env.Spec
	}
	spec, err := ParseSpec(specJSON)
	if err != nil {
		return RunSpec{}, err
	}
	if env.WarmPrefix != "" {
		if mine, ok := experiments.WarmPrefixKey(spec.toExperiment(0)); ok && mine != env.WarmPrefix {
			warmPrefixSkew.Add(1)
		}
	}
	return spec, nil
}

// sampleBatcher groups per-window samples into progress posts.
type sampleBatcher struct {
	buf  []Sample
	post func(samples []byte)
}

func (b *sampleBatcher) add(s Sample) {
	b.buf = append(b.buf, s)
	if len(b.buf) >= progressFlushAt {
		b.flush()
	}
}

func (b *sampleBatcher) flush() {
	if len(b.buf) == 0 || b.post == nil {
		return
	}
	if raw, err := json.Marshal(b.buf); err == nil {
		b.post(raw)
	}
	b.buf = b.buf[:0]
}

// DispatchExecute is the worker daemon's dispatch.ExecuteFunc: decode a
// leased run-spec payload, execute the batch through the same path the
// local engine uses, stream sample batches back, and return the encoded
// result.
func DispatchExecute(ctx context.Context, key string, payload []byte, post func(samples []byte)) (result []byte, errMsg string) {
	spec, err := parseDispatchPayload(payload)
	if err != nil {
		return nil, err.Error()
	}
	batch := sampleBatcher{post: post}
	res, err := Execute(ctx, spec, batch.add)
	batch.flush()
	if err != nil {
		return nil, err.Error()
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, err.Error()
	}
	return b, ""
}

// DispatchExecuteResumable is DispatchExecute under the checkpoint-resume
// protocol: every checkpointEveryMs of simulated time the in-flight run's
// state is committed to the coordinator, and a leased job that carries a
// prior attempt's checkpoint picks the batch up there — completed runs'
// summaries are reused and the interrupted run resumes mid-flight, so a
// kill costs at most one checkpoint interval of re-execution. A checkpoint
// that fails to decode is discarded (the batch restarts from scratch, which
// is always correct), and commit delivery failures are tolerated — only a
// fencing rejection stops the attempt, via the job ctx.
func DispatchExecuteResumable(checkpointEveryMs int) dispatch.ExecuteResumableFunc {
	if checkpointEveryMs <= 0 {
		checkpointEveryMs = 100
	}
	return func(ctx context.Context, job dispatch.ResumableJob) (result []byte, errMsg string) {
		spec, err := parseDispatchPayload(job.Payload)
		if err != nil {
			return nil, err.Error()
		}
		windows := spec.DurationMs / spec.WindowMs
		everyWins := checkpointEveryMs / spec.WindowMs
		if everyWins < 1 {
			everyWins = 1
		}

		res := &RunResult{Spec: spec, Key: spec.CanonicalKey()}
		startRun := 0
		var resume *experiments.RunCheckpoint
		if len(job.Checkpoint) > 0 {
			var jc jobCheckpoint
			if json.Unmarshal(job.Checkpoint, &jc) == nil && jc.Run <= spec.Runs && len(jc.Runs) == jc.Run {
				startRun = jc.Run
				res.Runs = jc.Runs
				res.Series = jc.Series
				if jc.Win > 0 && len(jc.Platform) > 0 {
					if cp, derr := centurion.DecodeCheckpoint(jc.Platform); derr == nil {
						resume = &experiments.RunCheckpoint{
							Win:       jc.Win,
							Thr:       jc.Thr,
							Act:       jc.Act,
							Sw:        jc.Sw,
							WaveSnaps: jc.WaveSnaps,
							Platform:  cp,
						}
					}
				}
			}
		}

		commit := func(run int, win int, jc jobCheckpoint) {
			b, merr := json.Marshal(jc)
			if merr != nil {
				return
			}
			tick := int64(run)*int64(windows) + int64(win)
			// Best-effort: a failed delivery only widens the re-execution
			// window of a later attempt.
			_ = job.Commit(ctx, tick, b)
		}

		batch := sampleBatcher{post: job.Progress}
		for run := startRun; run < spec.Runs; run++ {
			espec := spec.toExperiment(run)
			r := run
			onWindow := func(w int, tp, active, switches float64) {
				batch.add(Sample{
					Run:         r,
					TimeMs:      float64(w) * float64(spec.WindowMs),
					Throughput:  tp,
					NodesActive: active,
					Switches:    switches,
				})
			}
			hook := &experiments.CheckpointHook{
				EveryWins: everyWins,
				Fn: func(win int, cp *experiments.RunCheckpoint) error {
					commit(r, win, jobCheckpoint{
						Run:       r,
						Runs:      res.Runs,
						Series:    res.Series,
						Win:       cp.Win,
						Thr:       cp.Thr,
						Act:       cp.Act,
						Sw:        cp.Sw,
						WaveSnaps: cp.WaveSnaps,
						Platform:  centurion.EncodeCheckpoint(cp.Platform),
					})
					// Lease loss surfaces as ctx cancellation (the commit's
					// fencing rejection cancels the job ctx); everything else
					// is best-effort.
					return ctx.Err()
				},
			}
			rr, err := experiments.RunResumable(ctx, espec, onWindow, resume, hook)
			resume = nil
			if err != nil {
				batch.flush()
				return nil, fmt.Sprintf("run %d (seed %d): %v", run, espec.Seed, err)
			}
			res.Runs = append(res.Runs, runSummaryOf(&rr))
			if run == 0 {
				res.Series = &Series{
					WindowMs:    rr.Throughput.WindowMs,
					Throughput:  rr.Throughput.Values,
					NodesActive: rr.NodesActive.Values,
					Switches:    rr.Switches.Values,
				}
			}
			if run+1 < spec.Runs {
				// Run boundary: the next run starts fresh (no platform), but
				// the completed summaries are safe.
				commit(run+1, 0, jobCheckpoint{Run: run + 1, Runs: res.Runs, Series: res.Series})
			}
		}
		batch.flush()
		res.Aggregate = aggregate(res.Runs)
		if spec.Runs > 1 {
			res.Series = nil
		}
		b, merr := json.Marshal(res)
		if merr != nil {
			return nil, merr.Error()
		}
		return b, ""
	}
}
