package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"centurion/internal/dispatch"
	"centurion/internal/experiments"
)

// Executor runs one canonicalized spec's batch. The engine's workers call
// it for every job that missed the caches; plugging a different Executor is
// how local in-process execution and remote leased workers coexist behind
// one job engine.
type Executor func(ctx context.Context, spec RunSpec, progress func(Sample)) (*RunResult, error)

// ResultStore is the durable content-addressed backend the engine layers
// under its LRU: canonical spec key → encoded RunResult. Implemented by
// internal/store; a minimal interface here keeps the engine testable with
// fakes and open to external backends.
type ResultStore interface {
	Get(key string) (val []byte, ok bool, err error)
	Put(key string, val []byte) error
}

// dispatchEnvelope is the leased-job payload: the canonical spec plus the
// coordinator's view of the warm-start prefix key for the batch's first run.
// The key is purely advisory — the worker derives its own key from the spec
// and warm-starts regardless — but shipping the coordinator's view lets the
// worker detect canonicalization skew between the two binaries, which would
// otherwise silently split the warm caches. Workers also accept a bare
// RunSpec payload (the pre-envelope wire format) for mixed-version fleets.
type dispatchEnvelope struct {
	Spec       json.RawMessage `json:"spec"`
	WarmPrefix string          `json:"warm_prefix,omitempty"`
}

// warmPrefixSkew counts leased jobs whose advisory prefix key disagreed with
// the key this worker derived from the same spec. Nonzero means coordinator
// and worker canonicalize specs differently (version skew) and their warm
// caches are keyed apart; /healthz surfaces it via WarmPrefixSkew.
var warmPrefixSkew atomic.Uint64

// WarmPrefixSkew reports how many leased jobs carried a warm-prefix key that
// did not match the worker's own derivation.
func WarmPrefixSkew() uint64 { return warmPrefixSkew.Load() }

// NewDispatchExecutor returns the routing Executor: jobs go to remote
// leased workers through the coordinator when any are alive, and fall back
// to in-process execution when dispatch cannot help (no workers registered,
// every lease attempt lost, coordinator shutting down). A serve-only
// deployment therefore behaves exactly like the pre-dispatch engine, while
// attaching `centurion worker` daemons scales the same queue horizontally.
func NewDispatchExecutor(coord *dispatch.Coordinator) Executor {
	return func(ctx context.Context, spec RunSpec, progress func(Sample)) (*RunResult, error) {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("server: encoding spec for dispatch: %w", err)
		}
		env := dispatchEnvelope{Spec: specJSON}
		env.WarmPrefix, _ = experiments.WarmPrefixKey(spec.toExperiment(0))
		payload, err := json.Marshal(env)
		if err != nil {
			return nil, fmt.Errorf("server: encoding dispatch envelope: %w", err)
		}
		res, err := coord.Execute(ctx, spec.CanonicalKey(), payload, func(b []byte) {
			if progress == nil || len(b) == 0 {
				return
			}
			var samples []Sample
			if json.Unmarshal(b, &samples) == nil {
				for _, s := range samples {
					progress(s)
				}
			}
		})
		switch {
		case err == nil:
			var rr RunResult
			if uerr := json.Unmarshal(res, &rr); uerr != nil {
				return nil, fmt.Errorf("server: decoding remote result: %w", uerr)
			}
			return &rr, nil
		case errors.Is(err, dispatch.ErrNoWorkers),
			errors.Is(err, dispatch.ErrAttemptsExhausted),
			errors.Is(err, dispatch.ErrClosed):
			return Execute(ctx, spec, progress)
		default:
			var re *dispatch.RemoteError
			if errors.As(err, &re) {
				// The spec ran remotely and failed deterministically;
				// retrying locally would fail identically.
				return nil, errors.New(re.Msg)
			}
			return nil, err
		}
	}
}

// progressFlushAt is how many samples a worker batches per progress post: a
// 1000-window run becomes ~16 round trips instead of 1000.
const progressFlushAt = 64

// DispatchExecute is the worker daemon's dispatch.ExecuteFunc: decode a
// leased run-spec payload, execute the batch through the same path the
// local engine uses, stream sample batches back, and return the encoded
// result.
func DispatchExecute(ctx context.Context, key string, payload []byte, post func(samples []byte)) (result []byte, errMsg string) {
	specJSON := payload
	var env dispatchEnvelope
	if json.Unmarshal(payload, &env) == nil && len(env.Spec) > 0 {
		specJSON = env.Spec
	}
	spec, err := ParseSpec(specJSON)
	if err != nil {
		return nil, err.Error()
	}
	if env.WarmPrefix != "" {
		if mine, ok := experiments.WarmPrefixKey(spec.toExperiment(0)); ok && mine != env.WarmPrefix {
			warmPrefixSkew.Add(1)
		}
	}
	var buf []Sample
	flush := func() {
		if len(buf) == 0 || post == nil {
			return
		}
		if b, err := json.Marshal(buf); err == nil {
			post(b)
		}
		buf = buf[:0]
	}
	res, err := Execute(ctx, spec, func(s Sample) {
		buf = append(buf, s)
		if len(buf) >= progressFlushAt {
			flush()
		}
	})
	flush()
	if err != nil {
		return nil, err.Error()
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, err.Error()
	}
	return b, ""
}
