package server

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// fastSpec is a small canonical spec that simulates in a few milliseconds.
func fastSpec(t *testing.T, seed uint64) RunSpec {
	t.Helper()
	s := RunSpec{Model: "ffw", Seed: seed, DurationMs: 40, Width: 8, Height: 4}
	if err := s.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	return s
}

func waitDone(t *testing.T, e *Engine, j *Job) *RunResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Wait(ctx, j); err != nil {
		t.Fatalf("waiting for job: %v", err)
	}
	snap, result := e.Snapshot(j)
	if snap.State != JobDone {
		t.Fatalf("job state = %s (%s), want done", snap.State, snap.Error)
	}
	return result
}

func TestEngineRunsAndCaches(t *testing.T) {
	e := NewEngine(2, 16, 8)
	defer e.Close()

	spec := fastSpec(t, 3)
	j1, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1 := waitDone(t, e, j1)
	if len(r1.Runs) != 1 {
		t.Fatalf("got %d run summaries, want 1", len(r1.Runs))
	}
	if r1.Series == nil || len(r1.Series.Throughput) != 40 {
		t.Fatalf("single run should carry its 40-window series, got %+v", r1.Series)
	}

	// The same spec again: a cache hit, answered without re-simulating.
	j2, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2 := waitDone(t, e, j2)
	snap, _ := e.Snapshot(j2)
	if !snap.CacheHit {
		t.Error("identical spec was not served from the cache")
	}
	if r2 != r1 {
		t.Error("cache returned a different result object")
	}
	if stats := e.Stats(); stats.Cache.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", stats.Cache.Hits)
	}
}

func TestEngineDeterministic(t *testing.T) {
	// Two engines, no shared cache: identical specs must produce identical
	// results by simulation, not by memoization.
	e1 := NewEngine(1, 4, 0)
	defer e1.Close()
	e2 := NewEngine(1, 4, 0)
	defer e2.Close()

	spec := fastSpec(t, 11)
	j1, _ := e1.Submit(spec)
	j2, _ := e2.Submit(spec)
	r1, r2 := waitDone(t, e1, j1), waitDone(t, e2, j2)
	if !reflect.DeepEqual(r1.Runs[0], r2.Runs[0]) {
		t.Errorf("same spec diverged:\n%+v\n%+v", r1.Runs[0], r2.Runs[0])
	}
}

func TestEngineBatchSeedDerivation(t *testing.T) {
	e := NewEngine(2, 16, 8)
	defer e.Close()

	batch := fastSpec(t, 20)
	batch.Runs = 3
	if err := batch.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	j, err := e.Submit(batch)
	if err != nil {
		t.Fatal(err)
	}
	r := waitDone(t, e, j)
	if len(r.Runs) != 3 {
		t.Fatalf("got %d summaries, want 3", len(r.Runs))
	}
	if r.Series != nil {
		t.Error("batch result should omit the per-window series")
	}
	if r.Aggregate.Runs != 3 {
		t.Errorf("aggregate over %d runs, want 3", r.Aggregate.Runs)
	}
	for i, run := range r.Runs {
		if want := uint64(20 + i); run.Seed != want {
			t.Errorf("run %d seed = %d, want %d", i, run.Seed, want)
		}
	}

	// Each batch member equals the equivalent standalone run.
	solo := fastSpec(t, 21)
	js, _ := e.Submit(solo)
	rs := waitDone(t, e, js)
	if !reflect.DeepEqual(rs.Runs[0], r.Runs[1]) {
		t.Errorf("batch member (seed 21) != standalone run (seed 21):\n%+v\n%+v", r.Runs[1], rs.Runs[0])
	}

	// Replay for finished jobs mirrors Series: batches carry neither, so
	// a late subscriber sees only the done signal.
	replay, live, cancel := e.Subscribe(j)
	defer cancel()
	for range live {
	}
	if len(replay) != 0 {
		t.Errorf("finished batch replayed %d samples, want 0 (no series retained)", len(replay))
	}
}

func TestEngineRejectsSubmitAfterClose(t *testing.T) {
	e := NewEngine(1, 4, 0)
	e.Close()
	if _, err := e.Submit(fastSpec(t, 70)); err != ErrClosed {
		t.Errorf("Submit after Close: got %v, want ErrClosed", err)
	}
}

func TestEnginePrunesJobHistory(t *testing.T) {
	old := maxJobHistory
	maxJobHistory = 2
	defer func() { maxJobHistory = old }()

	e := NewEngine(1, 8, 8)
	defer e.Close()

	var ids []string
	for seed := uint64(80); seed < 83; seed++ {
		j, err := e.Submit(fastSpec(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, e, j)
		ids = append(ids, j.ID)
	}
	if _, ok := e.Job(ids[0]); ok {
		t.Errorf("oldest terminal job %s survived beyond the history bound", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := e.Job(id); !ok {
			t.Errorf("recent job %s pruned too early", id)
		}
	}

	// Cache-hit traffic churns its own history, not the computed jobs'.
	for i := 0; i < 3; i++ {
		j, err := e.Submit(fastSpec(t, 82))
		if err != nil {
			t.Fatal(err)
		}
		if !j.CacheHit {
			t.Fatalf("repeat submission %d missed the cache", i)
		}
	}
	if _, ok := e.Job(ids[2]); !ok {
		t.Error("cache-hit flood evicted a computed job from history")
	}
}

func TestEngineCoalescesInflightDuplicates(t *testing.T) {
	e := NewEngine(1, 16, 8)
	defer e.Close()

	// Occupy the single worker so subsequent submissions stay queued.
	blocker := fastSpec(t, 30)
	blocker.DurationMs = 2000
	if err := blocker.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	jb, err := e.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}

	spec := fastSpec(t, 31)
	j1, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != j2.ID {
		t.Errorf("identical in-flight specs got distinct jobs %s and %s", j1.ID, j2.ID)
	}
	waitDone(t, e, jb)
	waitDone(t, e, j1)
}

func TestEngineQueueFull(t *testing.T) {
	e := NewEngine(1, 1, 0)
	defer e.Close()

	long := fastSpec(t, 40)
	long.DurationMs = 3000
	if err := long.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(long); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the first job up, then fill the queue.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started the first job")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Submit(fastSpec(t, 41)); err != nil {
		t.Fatalf("queueing second job: %v", err)
	}
	if _, err := e.Submit(fastSpec(t, 42)); err != ErrQueueFull {
		t.Errorf("third submission: got %v, want ErrQueueFull", err)
	}
}

func TestEngineCancelOnClose(t *testing.T) {
	e := NewEngine(1, 4, 0)
	long := fastSpec(t, 50)
	long.DurationMs = 60000
	if err := long.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	j, err := e.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	// A second job that never leaves the queue must also terminate.
	queued, err := e.Submit(fastSpec(t, 51))
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	snap, _ := e.Snapshot(j)
	if snap.State != JobFailed {
		t.Errorf("running job state after Close = %s, want failed", snap.State)
	}
	select {
	case <-queued.done:
	default:
		t.Fatal("queued job left unterminated by Close")
	}
	qsnap, _ := e.Snapshot(queued)
	if qsnap.State != JobFailed {
		t.Errorf("queued job state after Close = %s, want failed", qsnap.State)
	}
}

func TestEngineSubscribeStreamsAllWindows(t *testing.T) {
	e := NewEngine(1, 4, 0)
	defer e.Close()

	spec := fastSpec(t, 60)
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	replay, live, cancel := e.Subscribe(j)
	defer cancel()
	samples := append([]Sample(nil), replay...)
	for s := range live {
		samples = append(samples, s)
	}
	if len(samples) != spec.DurationMs {
		t.Fatalf("streamed %d samples, want %d", len(samples), spec.DurationMs)
	}
	for i, s := range samples {
		if s.TimeMs != float64(i) {
			t.Fatalf("sample %d at %.0f ms, want %d ms", i, s.TimeMs, i)
		}
	}
}
