package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"centurion/internal/dispatch"
	"centurion/internal/experiments"
)

// TestDispatchEnvelopeAndLegacyPayload pins the leased-job wire format: the
// coordinator ships {"spec": ..., "warm_prefix": ...} envelopes, workers
// accept both the envelope and the pre-envelope bare-spec payload, and both
// forms execute to the identical encoded result.
func TestDispatchEnvelopeAndLegacyPayload(t *testing.T) {
	ctx := context.Background()
	spec, err := ParseSpec([]byte(fastSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	legacy, errMsg := DispatchExecute(ctx, spec.CanonicalKey(), specJSON, nil)
	if errMsg != "" {
		t.Fatalf("legacy bare-spec payload failed: %s", errMsg)
	}

	key, ok := experiments.WarmPrefixKey(spec.toExperiment(0))
	if !ok || key == "" {
		t.Fatal("expected a warm-prefix key for a plain fault-free spec")
	}
	env, err := json.Marshal(dispatchEnvelope{Spec: specJSON, WarmPrefix: key})
	if err != nil {
		t.Fatal(err)
	}
	skewBefore := WarmPrefixSkew()
	enveloped, errMsg := DispatchExecute(ctx, spec.CanonicalKey(), env, nil)
	if errMsg != "" {
		t.Fatalf("envelope payload failed: %s", errMsg)
	}
	if !bytes.Equal(legacy, enveloped) {
		t.Fatal("envelope and bare-spec payloads produced different results")
	}
	if got := WarmPrefixSkew(); got != skewBefore {
		t.Fatalf("matching warm-prefix key counted as skew (%d -> %d)", skewBefore, got)
	}

	// A key that disagrees with the worker's own derivation is counted as
	// canonicalization skew but never rejects the job.
	badEnv, err := json.Marshal(dispatchEnvelope{Spec: specJSON, WarmPrefix: "deadbeef"})
	if err != nil {
		t.Fatal(err)
	}
	skewed, errMsg := DispatchExecute(ctx, spec.CanonicalKey(), badEnv, nil)
	if errMsg != "" {
		t.Fatalf("skewed envelope failed: %s", errMsg)
	}
	if !bytes.Equal(legacy, skewed) {
		t.Fatal("skewed envelope changed the result")
	}
	if got := WarmPrefixSkew(); got != skewBefore+1 {
		t.Fatalf("warm-prefix skew counter = %d, want %d", got, skewBefore+1)
	}
}

// TestDispatchExecutorShipsEnvelope runs a leased worker that captures its
// raw payload, submits a job through the real coordinator path, and asserts
// the wire bytes are the envelope: a reparseable canonical spec plus the
// batch's warm-prefix key.
func TestDispatchExecutorShipsEnvelope(t *testing.T) {
	s := New(Options{
		Workers:    2,
		QueueBound: 16,
		CacheSize:  16,
		Dispatch: dispatch.Config{
			LeaseTTL: time.Second,
			PollWait: 50 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	payloads := make(chan []byte, 4)
	capture := func(ctx context.Context, key string, payload []byte, post func([]byte)) ([]byte, string) {
		payloads <- append([]byte(nil), payload...)
		return DispatchExecute(ctx, key, payload, post)
	}
	defer startTestWorker(t, ts.URL, "capture", nil, capture)()
	waitForWorkers(t, s.Coordinator(), 1)

	if code, js := postRun(t, ts, fastSpecJSON, true); code != 200 || js.State != JobDone {
		t.Fatalf("submit: code %d, state %s (%s)", code, js.State, js.Error)
	}
	var payload []byte
	select {
	case payload = <-payloads:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never leased the job")
	}

	var env dispatchEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatalf("payload is not an envelope: %v", err)
	}
	if len(env.Spec) == 0 {
		t.Fatal("envelope carries no spec")
	}
	spec, err := ParseSpec(env.Spec)
	if err != nil {
		t.Fatalf("enveloped spec does not reparse: %v", err)
	}
	want, ok := experiments.WarmPrefixKey(spec.toExperiment(0))
	if !ok {
		t.Fatal("expected the spec to be warm-startable")
	}
	if env.WarmPrefix != want {
		t.Fatalf("envelope warm-prefix = %q, want %q", env.WarmPrefix, want)
	}
}
