package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestFaultProfileSpecValidation covers the spec-layer contract: profiles
// are validated and normalized at admission, and the legacy pair is
// mutually exclusive with the engine.
func TestFaultProfileSpecValidation(t *testing.T) {
	good, err := ParseSpec([]byte(`{"model": "ffw", "duration_ms": 400, "fault_profile": {"kind": "cascade"}}`))
	if err != nil {
		t.Fatalf("valid cascade profile rejected: %v", err)
	}
	if good.FaultProfile == nil || good.FaultProfile.Nodes == 0 || good.FaultProfile.AtMs != 200 {
		t.Fatalf("profile not normalized at admission: %+v", good.FaultProfile)
	}

	bad := []string{
		`{"fault_profile": {"kind": "meteor"}}`,
		`{"fault_profile": {"kind": "death", "at_ms": 1000}}`,
		`{"fault_profile": {"kind": "death"}, "num_faults": 4, "fault_at_ms": 500}`,
		`{"fault_profile": {"kind": "byzantine", "rate_pct": 200}}`,
		`{"width": 4, "height": 4, "fault_profile": {"kind": "death", "nodes": 16}}`,
		`{"fault_profile": {"kind": "churn", "at_ms": 900, "revive_after_ms": 200}}`,
	}
	for _, body := range bad {
		if _, err := ParseSpec([]byte(body)); err == nil {
			t.Errorf("spec %s validated, want error", body)
		}
	}
}

// TestFaultProfileCanonicalKeys proves every distinct profile gets its own
// canonical spec key (its own result-cache identity) while equivalent
// spellings share one.
func TestFaultProfileCanonicalKeys(t *testing.T) {
	parse := func(body string) RunSpec {
		t.Helper()
		s, err := ParseSpec([]byte(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		return s
	}

	keys := map[string]string{}
	for _, kind := range []string{"death", "churn", "flaky", "cascade", "byzantine"} {
		s := parse(`{"model": "ffw", "duration_ms": 600, "fault_profile": {"kind": "` + kind + `"}}`)
		keys[kind] = s.CanonicalKey()
	}
	plain := parse(`{"model": "ffw", "duration_ms": 600}`).CanonicalKey()
	seen := map[string]string{"": plain}
	for kind, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("profiles %q and %q share canonical key %s", kind, prev, k[:12])
		}
		seen[k] = kind
	}

	// Equivalent spellings: explicit defaults, inert fields and byzantine
	// mode order must not split the key.
	a := parse(`{"duration_ms": 600, "fault_profile": {"kind": "death"}}`)
	b := parse(`{"duration_ms": 600, "fault_profile": {"kind": "death", "at_ms": 300, "nodes": 12, "links": 9}}`)
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("explicit death defaults changed the canonical key")
	}
	c := parse(`{"duration_ms": 600, "fault_profile": {"kind": "byzantine", "modes": "dup,misroute"}}`)
	d := parse(`{"duration_ms": 600, "fault_profile": {"kind": "byzantine", "modes": "misroute,dup"}}`)
	if c.CanonicalKey() != d.CanonicalKey() {
		t.Error("byzantine mode order changed the canonical key")
	}

	// A changed knob is a different experiment.
	e := parse(`{"duration_ms": 600, "fault_profile": {"kind": "cascade", "waves": 5}}`)
	if e.CanonicalKey() == keys["cascade"] {
		t.Error("cascade wave count did not change the canonical key")
	}
}

// TestFaultProfileRunReportsResilience executes hostile specs end to end
// through the engine and checks the resilience measures ride the summaries:
// per-wave recovery records for structural disruptions, byzantine
// interference counters for byzantine routers.
func TestFaultProfileRunReportsResilience(t *testing.T) {
	_, ts := newTestServer(t)

	churn := `{"model": "ffw", "seed": 3, "duration_ms": 120, "width": 8, "height": 4,
		"fault_profile": {"kind": "churn", "at_ms": 40, "nodes": 6, "revive_after_ms": 40}}`
	code, st := postRun(t, ts, churn, true)
	if code != http.StatusOK {
		t.Fatalf("churn run: code %d", code)
	}
	run := st.Result.Runs[0]
	if len(run.Waves) != 2 {
		t.Fatalf("churn run reported %d waves, want 2 (kill + revival): %+v", len(run.Waves), run.Waves)
	}
	if run.Waves[0].AtMs != 40 || run.Waves[1].AtMs != 80 {
		t.Errorf("wave epochs %d/%d ms, want 40/80", run.Waves[0].AtMs, run.Waves[1].AtMs)
	}
	for i, w := range run.Waves {
		if w.Delivered == 0 {
			t.Errorf("wave %d delivered nothing", i)
		}
	}

	byz := `{"model": "ffw", "seed": 3, "duration_ms": 120, "width": 8, "height": 4,
		"fault_profile": {"kind": "byzantine", "at_ms": 20, "routers": 8, "rate_pct": 60, "modes": "misroute,drop,dup"}}`
	code, st = postRun(t, ts, byz, true)
	if code != http.StatusOK {
		t.Fatalf("byzantine run: code %d", code)
	}
	run = st.Result.Runs[0]
	if run.ByzMisrouted == 0 && run.ByzDropped == 0 && run.ByzDuplicated == 0 {
		t.Errorf("byzantine run reported no interference: %+v", run)
	}
}

// TestSweepFaultProfilesAxis sweeps the hostile axis: one row per profile,
// labeled by kind, each with its own cached identity — and the axis is
// mutually exclusive with the legacy fault_counts.
func TestSweepFaultProfilesAxis(t *testing.T) {
	_, ts := newTestServer(t)

	req := `{
		"spec": {"duration_ms": 80, "width": 8, "height": 4},
		"models": ["ffw"],
		"fault_profiles": [
			{"kind": "death", "at_ms": 40, "nodes": 4},
			{"kind": "flaky", "at_ms": 20, "links": 4},
			{"kind": "byzantine", "at_ms": 20, "routers": 4}
		],
		"runs": 2
	}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("profile sweep status %d: %s", resp.StatusCode, buf.String())
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (one per profile)", len(sr.Rows))
	}
	wantKinds := []string{"death", "flaky", "byzantine"}
	for i, row := range sr.Rows {
		if row.Profile != wantKinds[i] {
			t.Errorf("row %d labeled %q, want %q", i, row.Profile, wantKinds[i])
		}
		if row.Aggregate.Runs != 2 {
			t.Errorf("row %s aggregated %d runs, want 2", row.Profile, row.Aggregate.Runs)
		}
	}

	both := `{"spec": {"duration_ms": 80}, "models": ["ffw"], "fault_counts": [2],
		"fault_profiles": [{"kind": "death"}], "runs": 1}`
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(both))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("fault_counts + fault_profiles: code %d, want 400", resp2.StatusCode)
	}

	// A bad profile in the axis is rejected before any cell runs.
	bad := `{"spec": {"duration_ms": 80}, "models": ["ffw"], "fault_profiles": [{"kind": "meteor"}], "runs": 1}`
	resp3, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown profile kind in sweep: code %d, want 400", resp3.StatusCode)
	}
}
