package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"centurion/internal/experiments"
	"centurion/internal/metrics"
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: queued → running → done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Sample is one metric window of one run, as streamed over SSE: a point of
// the paper's Figure-4 series.
type Sample struct {
	Run         int     `json:"run"`
	TimeMs      float64 `json:"time_ms"`
	Throughput  float64 `json:"throughput"`
	NodesActive float64 `json:"nodes_active"`
	Switches    float64 `json:"switches"`
}

// RunSummary is the per-run scalar outcome (one row of the batch).
type RunSummary struct {
	Seed               uint64  `json:"seed"`
	SettlingMs         float64 `json:"settling_ms"`
	Settled            bool    `json:"settled"`
	RecoveryMs         float64 `json:"recovery_ms,omitempty"`
	Recovered          bool    `json:"recovered,omitempty"`
	SteadyRate         float64 `json:"steady_rate"`
	PostFaultRate      float64 `json:"post_fault_rate"`
	InstancesCompleted uint64  `json:"instances_completed"`
	TaskSwitches       uint64  `json:"task_switches"`
	PacketsDropped     uint64  `json:"packets_dropped"`
	// Resilience measures, present when the run executed a fault profile:
	// byzantine interference totals and the per-milestone recovery record.
	ByzMisrouted  uint64        `json:"byz_misrouted,omitempty"`
	ByzDropped    uint64        `json:"byz_dropped,omitempty"`
	ByzDuplicated uint64        `json:"byz_duplicated,omitempty"`
	Waves         []WaveSummary `json:"waves,omitempty"`
}

// WaveSummary is one fault-schedule milestone's resilience record: the
// re-settling time after the disruption and the fabric traffic accounted
// until the next milestone (or the end of the run).
type WaveSummary struct {
	AtMs       int     `json:"at_ms"`
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	Recovered  bool    `json:"recovered"`
	Delivered  uint64  `json:"delivered"`
	Dropped    uint64  `json:"dropped"`
	Misrouted  uint64  `json:"misrouted,omitempty"`
}

// Stat is a batch aggregate: mean with the 95% confidence half-width.
type Stat struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

// Aggregate summarises a batch across its independently seeded runs.
// SettlingMs and RecoveryMs cover only the SettledRuns/RecoveredRuns that
// actually reached the steady band; censored runs are excluded rather
// than silently mixed into the means.
type Aggregate struct {
	Runs          int  `json:"runs"`
	SettledRuns   int  `json:"settled_runs"`
	RecoveredRuns int  `json:"recovered_runs,omitempty"`
	SteadyRate    Stat `json:"steady_rate"`
	PostFaultRate Stat `json:"post_fault_rate"`
	SettlingMs    Stat `json:"settling_ms,omitzero"`
	RecoveryMs    Stat `json:"recovery_ms,omitzero"`
}

// Series carries the Figure-4-style windowed time series of the batch's
// first run.
type Series struct {
	WindowMs    float64   `json:"window_ms"`
	Throughput  []float64 `json:"throughput"`
	NodesActive []float64 `json:"nodes_active"`
	Switches    []float64 `json:"switches"`
}

// RunResult is the service's response payload for a finished job.
type RunResult struct {
	Spec      RunSpec      `json:"spec"`
	Key       string       `json:"key"`
	Runs      []RunSummary `json:"run_summaries"`
	Aggregate Aggregate    `json:"aggregate"`
	Series    *Series      `json:"series,omitempty"`
}

// Job tracks one submitted spec through the engine.
type Job struct {
	ID       string   `json:"id"`
	Key      string   `json:"key"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	CacheHit bool     `json:"cache_hit"`
	// StoreHit marks a job answered from the durable result store — a
	// result computed by an earlier process lifetime (or another worker)
	// and replayed without re-execution.
	StoreHit bool      `json:"store_hit,omitempty"`
	Created  time.Time `json:"created"`

	spec   RunSpec
	result *RunResult
	stream *stream
	done   chan struct{}
}

// stream is a job's progress fan-out. It has its own lock so per-window
// publishing never contends with the engine-wide mutex that guards
// admission and status.
type stream struct {
	mu       sync.Mutex
	samples  []Sample
	subs     map[chan Sample]struct{}
	finished bool
}

// publish fans the sample out to subscribers and, for the batch's first
// run only, appends it to the replay log — mirroring Series, and bounding
// retention: an unbounded log over a 1000-run batch would hold tens of
// millions of samples. A subscriber too slow to drain its buffer skips
// samples rather than stalling the simulation.
func (st *stream) publish(s Sample) {
	st.mu.Lock()
	if s.Run == 0 {
		st.samples = append(st.samples, s)
	}
	for c := range st.subs {
		select {
		case c <- s:
		default:
		}
	}
	st.mu.Unlock()
}

// finish closes every subscriber and drops the sample log — replay for
// finished jobs is derived from the result's Series instead, so retained
// jobs don't pin a second copy of the series.
func (st *stream) finish() {
	st.mu.Lock()
	st.finished = true
	st.samples = nil
	for c := range st.subs {
		close(c)
		delete(st.subs, c)
	}
	st.mu.Unlock()
}

// EngineStats is a point-in-time snapshot of the engine.
type EngineStats struct {
	Workers   int    `json:"workers"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// StoreHits counts submissions answered from the durable result store
	// (LRU misses that an earlier process lifetime had already computed).
	StoreHits uint64 `json:"store_hits,omitempty"`
	// MeanJobMs is the exponentially weighted mean wall time of executed
	// (non-cached) jobs — the figure Retry-After advice is derived from.
	MeanJobMs float64    `json:"mean_job_ms"`
	Cache     CacheStats `json:"cache"`
}

// ErrQueueFull reports that the engine's admission queue is at capacity;
// clients should back off and retry (the API maps it to 503).
var ErrQueueFull = errors.New("server: job queue full")

// ErrClosed reports a submission to an engine that has been closed.
var ErrClosed = errors.New("server: engine closed")

// maxJobHistory bounds how many terminal jobs are kept queryable; beyond
// it the oldest are forgotten so a long-running service cannot grow
// without bound — a retired job retains its result until pruned, so this
// bound (times the per-result size) is the service's history memory
// ceiling. (A var so tests can shrink it.)
var maxJobHistory = 1024

// Engine is the bounded worker-pool job engine: submissions are validated,
// deduplicated against the cache and in-flight jobs, queued, and executed by
// a fixed set of workers through the shared experiment runner.
type Engine struct {
	cache   *Cache
	workers int

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	queue     chan *Job
	closeOnce sync.Once

	mu       sync.Mutex
	exec     Executor    // how workers run a job (default: in-process Execute)
	store    ResultStore // durable layer under the LRU; nil = none
	jobs     map[string]*Job
	inflight map[string]*Job // canonical key → queued/running job (coalescing)
	// Terminal job IDs, oldest first (pruning order). Cache-hit jobs have
	// their own list so high-rate cached traffic cannot churn freshly
	// computed jobs out of queryable history.
	history     []string
	hitHistory  []string
	closed      bool
	nextID      uint64
	running     int
	completed   uint64
	failed      uint64
	storeHits   uint64
	meanLatency time.Duration // EWMA of executed-job wall time
}

// NewEngine starts an engine with the given worker count (min 1), queue
// bound and LRU cache capacity.
func NewEngine(workers, queueBound, cacheSize int) *Engine {
	if workers < 1 {
		workers = 1
	}
	if queueBound < 1 {
		queueBound = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cache:    NewCache(cacheSize),
		workers:  workers,
		ctx:      ctx,
		cancel:   cancel,
		queue:    make(chan *Job, queueBound),
		exec:     Execute,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.work()
	}
	return e
}

// SetExecutor replaces how the engine's workers run a job. Call before any
// submissions (the server wires this during assembly).
func (e *Engine) SetExecutor(exec Executor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if exec != nil {
		e.exec = exec
	}
}

// SetResultStore layers a durable content-addressed store under the LRU:
// submissions that miss the LRU are answered from the store without
// re-execution, and freshly computed results are persisted to it.
func (e *Engine) SetResultStore(s ResultStore) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.store = s
}

// Close rejects further submissions, cancels running jobs, waits for the
// workers to exit, and fails any jobs still queued so that no waiter is
// left blocked on an abandoned job.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.closeOnce.Do(e.stopWorkers)
}

// Drain is the graceful Close: stop admitting, let queued and running jobs
// finish, then stop the workers. When ctx expires first the remaining jobs
// are cancelled exactly as in Close, so shutdown is bounded either way.
func (e *Engine) Drain(ctx context.Context) {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
wait:
	for {
		e.mu.Lock()
		idle := len(e.queue) == 0 && e.running == 0
		e.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			break wait
		case <-ticker.C:
		}
	}
	e.closeOnce.Do(e.stopWorkers)
}

// stopWorkers cancels execution, waits the pool out, and fails whatever is
// still queued. Run exactly once, via closeOnce.
func (e *Engine) stopWorkers() {
	e.cancel()
	e.wg.Wait()
	for {
		select {
		case j := <-e.queue:
			e.mu.Lock()
			j.State = JobFailed
			j.Error = "engine closed before the job ran"
			e.failed++
			delete(e.inflight, j.Key)
			e.retire(j.ID, j.CacheHit)
			close(j.done)
			e.mu.Unlock()
			j.stream.finish()
		default:
			return
		}
	}
}

// retire records a terminal job and prunes the oldest beyond the history
// bound. Callers must hold e.mu.
func (e *Engine) retire(id string, cacheHit bool) {
	hist := &e.history
	if cacheHit {
		hist = &e.hitHistory
	}
	*hist = append(*hist, id)
	for len(*hist) > maxJobHistory {
		delete(e.jobs, (*hist)[0])
		*hist = (*hist)[1:]
	}
}

// Submit admits a canonicalized spec. It returns immediately: with the
// existing job when an identical spec is already queued or running
// (coalescing), with an already-done job on a cache hit, or with a freshly
// queued job otherwise. ErrQueueFull reports an admission queue at capacity.
func (e *Engine) Submit(spec RunSpec) (*Job, error) {
	key := spec.CanonicalKey()

	e.mu.Lock()
	defer e.mu.Unlock()

	if e.closed {
		return nil, ErrClosed
	}
	if j, ok := e.inflight[key]; ok {
		return j, nil
	}

	e.nextID++
	j := &Job{
		ID:      fmt.Sprintf("job-%d", e.nextID),
		Key:     key,
		Created: time.Now(),
		spec:    spec,
		stream:  &stream{subs: make(map[chan Sample]struct{})},
		done:    make(chan struct{}),
	}

	if cached, ok := e.cache.Get(key); ok {
		j.State = JobDone
		j.CacheHit = true
		j.result = cached
		j.stream.finished = true
		close(j.done)
		e.jobs[j.ID] = j
		e.completed++
		e.retire(j.ID, j.CacheHit)
		return j, nil
	}

	// The durable store holds results computed in earlier process lifetimes
	// (or by other workers of the fleet): an LRU miss that hits the store
	// completes without re-execution, and re-warms the LRU. Store errors
	// degrade to a miss — a broken disk must not take submissions down.
	if e.store != nil {
		if raw, ok, err := e.store.Get(key); err == nil && ok {
			res := new(RunResult)
			if json.Unmarshal(raw, res) == nil {
				e.cache.Put(key, res)
				j.State = JobDone
				j.StoreHit = true
				j.result = res
				j.stream.finished = true
				close(j.done)
				e.jobs[j.ID] = j
				e.completed++
				e.storeHits++
				e.retire(j.ID, true)
				return j, nil
			}
		}
	}

	select {
	case e.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	j.State = JobQueued
	e.jobs[j.ID] = j
	e.inflight[key] = j
	return j, nil
}

// Job returns the job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Wait blocks until the job finishes (done or failed) or ctx is cancelled.
func (e *Engine) Wait(ctx context.Context, j *Job) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Snapshot returns the job's externally visible state and, when finished,
// its result.
func (e *Engine) Snapshot(j *Job) (Job, *RunResult) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *j, j.result
}

// Subscribe attaches a progress listener to the job: already-recorded
// samples are returned for replay, and subsequent samples arrive on the
// channel until the job finishes (the channel is then closed). Always pair
// with the returned cancel function.
func (e *Engine) Subscribe(j *Job) (replay []Sample, ch <-chan Sample, cancel func()) {
	st := j.stream
	c := make(chan Sample, 1024)
	st.mu.Lock()
	if st.finished {
		st.mu.Unlock()
		close(c)
		// The sample log is dropped at finish; rebuild the replay from the
		// result's Series (nil for batches and failed jobs, which carry no
		// series).
		return replayFromResult(j.result), c, func() {}
	}
	replay = append([]Sample(nil), st.samples...)
	st.subs[c] = struct{}{}
	st.mu.Unlock()
	return replay, c, func() {
		st.mu.Lock()
		if _, ok := st.subs[c]; ok {
			delete(st.subs, c)
			close(c)
		}
		st.mu.Unlock()
	}
}

// replayFromResult reconstructs the first run's sample stream from a
// finished result's series.
func replayFromResult(res *RunResult) []Sample {
	if res == nil || res.Series == nil {
		return nil
	}
	out := make([]Sample, len(res.Series.Throughput))
	for i := range out {
		out[i] = Sample{
			Run:         0,
			TimeMs:      float64(i) * res.Series.WindowMs,
			Throughput:  res.Series.Throughput[i],
			NodesActive: res.Series.NodesActive[i],
			Switches:    res.Series.Switches[i],
		}
	}
	return out
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Workers:   e.workers,
		Queued:    len(e.queue),
		Running:   e.running,
		Completed: e.completed,
		Failed:    e.failed,
		StoreHits: e.storeHits,
		MeanJobMs: float64(e.meanLatency) / float64(time.Millisecond),
		Cache:     e.cache.Stats(),
	}
}

// retryAfterFloor/Ceil clamp the backoff advice: sub-second advice churns
// clients pointlessly, multi-minute advice outlives most queue spikes.
const (
	retryAfterFloor = time.Second
	retryAfterCeil  = 2 * time.Minute
)

// RetryAfter estimates when a rejected submission is worth retrying: the
// queue depth in worker-waves times the mean executed-job latency. It is
// surfaced as the Retry-After header on 503 responses.
func (e *Engine) RetryAfter() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	depth := len(e.queue) + e.running
	mean := e.meanLatency
	if mean <= 0 {
		// No job has executed yet; assume a sub-second spec.
		mean = 250 * time.Millisecond
	}
	waves := depth/e.workers + 1
	ra := time.Duration(waves) * mean
	if ra < retryAfterFloor {
		ra = retryAfterFloor
	}
	if ra > retryAfterCeil {
		ra = retryAfterCeil
	}
	return ra
}

// work is one worker's loop: pull, run, publish.
func (e *Engine) work() {
	defer e.wg.Done()
	for {
		select {
		case <-e.ctx.Done():
			return
		case j := <-e.queue:
			e.run(j)
		}
	}
}

// Execute synchronously runs a canonicalized spec's batch through the
// shared experiment runner, without any engine machinery: the direct path
// for library callers (centurion.RunSpec). progress may be nil.
func Execute(ctx context.Context, spec RunSpec, progress func(Sample)) (*RunResult, error) {
	res := &RunResult{Spec: spec, Key: spec.CanonicalKey()}
	for run := 0; run < spec.Runs; run++ {
		espec := spec.toExperiment(run)
		var onWindow experiments.Progress
		if progress != nil {
			r := run
			onWindow = func(w int, tp, active, switches float64) {
				progress(Sample{
					Run:         r,
					TimeMs:      float64(w) * float64(spec.WindowMs),
					Throughput:  tp,
					NodesActive: active,
					Switches:    switches,
				})
			}
		}
		r, err := experiments.RunContext(ctx, espec, onWindow)
		if err != nil {
			return nil, fmt.Errorf("run %d (seed %d): %w", run, espec.Seed, err)
		}
		res.Runs = append(res.Runs, runSummaryOf(&r))
		if run == 0 {
			res.Series = &Series{
				WindowMs:    r.Throughput.WindowMs,
				Throughput:  r.Throughput.Values,
				NodesActive: r.NodesActive.Values,
				Switches:    r.Switches.Values,
			}
		}
	}
	res.Aggregate = aggregate(res.Runs)
	if spec.Runs > 1 {
		// Batch payloads stay summary-sized; the series is a single-run
		// affordance.
		res.Series = nil
	}
	return res, nil
}

// runSummaryOf reduces one run's experiment result to its summary row.
func runSummaryOf(r *experiments.Result) RunSummary {
	sum := RunSummary{
		Seed:               r.Spec.Seed,
		SettlingMs:         r.SettlingMs,
		Settled:            r.Settled,
		RecoveryMs:         r.RecoveryMs,
		Recovered:          r.Recovered,
		SteadyRate:         r.SteadyRate,
		PostFaultRate:      r.PostFaultRate,
		InstancesCompleted: r.Counters.InstancesCompleted,
		TaskSwitches:       r.Counters.TaskSwitches,
		PacketsDropped:     r.Counters.PacketsDropped,
		ByzMisrouted:       r.ByzMisrouted,
		ByzDropped:         r.ByzDropped,
		ByzDuplicated:      r.ByzDuplicated,
	}
	for _, wv := range r.Waves {
		sum.Waves = append(sum.Waves, WaveSummary{
			AtMs:       wv.AtMs,
			RecoveryMs: wv.RecoveryMs,
			Recovered:  wv.Recovered,
			Delivered:  wv.Delivered,
			Dropped:    wv.Dropped,
			Misrouted:  wv.Misrouted,
		})
	}
	return sum
}

// run executes the job's batch through the engine's executor (in-process
// or dispatched to a leased remote worker), streaming per-window samples to
// subscribers as they land and persisting the result durably.
func (e *Engine) run(j *Job) {
	e.mu.Lock()
	j.State = JobRunning
	e.running++
	exec := e.exec
	st := e.store
	e.mu.Unlock()

	start := time.Now()
	res, err := exec(e.ctx, j.spec, j.stream.publish)
	elapsed := time.Since(start)
	if err == nil {
		e.cache.Put(j.Key, res)
		if st != nil {
			// A store failure must not fail the job: the result is correct,
			// it just will not survive a restart.
			if raw, merr := json.Marshal(res); merr == nil {
				_ = st.Put(j.Key, raw)
			}
		}
	}

	e.mu.Lock()
	e.running--
	// EWMA (α=1/5) of executed-job wall time: the figure queue-full
	// Retry-After advice is derived from.
	if e.meanLatency == 0 {
		e.meanLatency = elapsed
	} else {
		e.meanLatency += (elapsed - e.meanLatency) / 5
	}
	delete(e.inflight, j.Key)
	if err != nil {
		j.State = JobFailed
		j.Error = err.Error()
		e.failed++
	} else {
		j.State = JobDone
		j.result = res
		e.completed++
	}
	e.retire(j.ID, j.CacheHit)
	close(j.done)
	e.mu.Unlock()
	j.stream.finish()
}

// aggregate folds per-run summaries into mean ± 95% CI statistics.
func aggregate(runs []RunSummary) Aggregate {
	steady := make([]float64, 0, len(runs))
	post := make([]float64, 0, len(runs))
	var settle, recov []float64
	for _, r := range runs {
		steady = append(steady, r.SteadyRate)
		post = append(post, r.PostFaultRate)
		if r.Settled {
			settle = append(settle, r.SettlingMs)
		}
		if r.Recovered {
			recov = append(recov, r.RecoveryMs)
		}
	}
	agg := Aggregate{Runs: len(runs), SettledRuns: len(settle), RecoveredRuns: len(recov)}
	agg.SteadyRate.Mean, agg.SteadyRate.CI95 = metrics.MeanCI(steady)
	agg.PostFaultRate.Mean, agg.PostFaultRate.CI95 = metrics.MeanCI(post)
	if len(settle) > 0 {
		agg.SettlingMs.Mean, agg.SettlingMs.CI95 = metrics.MeanCI(settle)
	}
	if len(recov) > 0 {
		agg.RecoveryMs.Mean, agg.RecoveryMs.CI95 = metrics.MeanCI(recov)
	}
	return agg
}
