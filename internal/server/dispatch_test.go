package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"centurion/internal/dispatch"
	"centurion/internal/store"
)

// startTestWorker runs an in-process worker daemon against the service URL
// and returns its stop function. exec defaults to DispatchExecute.
func startTestWorker(t *testing.T, url, name string, hardStop <-chan struct{}, exec dispatch.ExecuteFunc) func() {
	t.Helper()
	if exec == nil {
		exec = DispatchExecute
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = dispatch.RunWorker(ctx, dispatch.WorkerOptions{
			Coordinator: url,
			Name:        name,
			Slots:       2,
			Execute:     exec,
			HardStop:    hardStop,
			MaxBackoff:  100 * time.Millisecond,
		})
	}()
	return func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("worker %s did not stop", name)
		}
	}
}

func waitForWorkers(t *testing.T, c *dispatch.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().WorkersLive < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers registered", c.Stats().WorkersLive, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postSweep(t *testing.T, url, body string) (int, SweepResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SweepResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sr, resp.Header
}

// sweep200 is the distributed-sweep workload: 4 models x 17 fault counts x
// 3 topologies = 204 cells, every cell a distinct canonical spec.
const sweep200 = `{
	"spec": {"duration_ms": 40, "width": 8, "height": 4},
	"models": ["none", "ni", "ffw", "random-static"],
	"fault_counts": [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],
	"topologies": ["mesh", "torus", "cmesh"],
	"runs": 1
}`

// TestDistributedSweep is the headline acceptance test (and the CI -race
// target): a coordinator with three in-process leased workers shares a
// 200-spec sweep; one worker is hard-killed mid-job and no result is lost —
// the expired lease requeues, a survivor recomputes, and the aggregate is
// bit-identical to a purely local run of the same grid.
func TestDistributedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("204-cell sweep")
	}
	s := New(Options{
		Workers:    8,
		QueueBound: 512,
		CacheSize:  512,
		Dispatch: dispatch.Config{
			LeaseTTL:    100 * time.Millisecond,
			PollWait:    50 * time.Millisecond,
			MaxAttempts: 5,
		},
	})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	// Worker "doomed" dies mid-job: on its killAfter-th lease it closes its
	// own HardStop during execution, so the job is abandoned without a
	// complete and its lease must lapse.
	const killAfter = 5
	hardStop := make(chan struct{})
	var doomedJobs atomic.Int64
	doomedExec := func(ctx context.Context, key string, payload []byte, post func([]byte)) ([]byte, string) {
		if doomedJobs.Add(1) == killAfter {
			close(hardStop)
		}
		return DispatchExecute(ctx, key, payload, post)
	}
	stopDoomed := startTestWorker(t, ts.URL, "doomed", hardStop, doomedExec)
	defer stopDoomed()
	for i := 0; i < 2; i++ {
		defer startTestWorker(t, ts.URL, fmt.Sprintf("survivor-%d", i), nil, nil)()
	}
	waitForWorkers(t, s.Coordinator(), 3)

	code, got, _ := postSweep(t, ts.URL, sweep200)
	if code != http.StatusOK {
		t.Fatalf("distributed sweep status %d", code)
	}
	if len(got.Rows) != 204 {
		t.Fatalf("sweep returned %d rows, want 204", len(got.Rows))
	}

	st := s.Coordinator().Stats()
	if doomedJobs.Load() < killAfter {
		t.Fatalf("doomed worker executed only %d jobs; the kill never fired", doomedJobs.Load())
	}
	if st.Expired == 0 || st.Requeued == 0 {
		t.Errorf("worker kill left no expiry trace: %+v", st)
	}
	if st.Completed == 0 {
		t.Error("no job completed remotely")
	}

	// The same grid on a worker-less server (dispatch falls back to local
	// execution) must produce bit-identical aggregates.
	local := New(Options{Workers: 8, QueueBound: 512, CacheSize: 512})
	lts := httptest.NewServer(local)
	defer func() { lts.Close(); local.Close() }()
	lcode, want, _ := postSweep(t, lts.URL, sweep200)
	if lcode != http.StatusOK {
		t.Fatalf("local sweep status %d", lcode)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row count mismatch: distributed %d, local %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		g, w := got.Rows[i], want.Rows[i]
		if g.Model != w.Model || g.Faults != w.Faults || g.Topology != w.Topology {
			t.Fatalf("row %d cell mismatch: %s/%d/%s vs %s/%d/%s",
				i, g.Model, g.Faults, g.Topology, w.Model, w.Faults, w.Topology)
		}
		if g.Aggregate != w.Aggregate {
			t.Errorf("row %s/%d/%s diverged between distributed and local execution:\n%+v\n%+v",
				g.Model, g.Faults, g.Topology, g.Aggregate, w.Aggregate)
		}
	}
}

// TestCoordinatorRestartServesFromStore: results computed by a leased
// worker survive in the durable store, so a restarted coordinator answers
// the same specs without re-executing anything.
func TestCoordinatorRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "results.log")
	specs := []string{
		`{"model": "ffw", "seed": 41, "duration_ms": 40, "width": 8, "height": 4}`,
		`{"model": "ni", "seed": 42, "duration_ms": 40, "width": 8, "height": 4}`,
		`{"model": "none", "seed": 43, "duration_ms": 40, "width": 8, "height": 4}`,
	}

	st1, err := store.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Options{Workers: 2, QueueBound: 64, CacheSize: 16, Store: st1,
		Dispatch: dispatch.Config{LeaseTTL: 100 * time.Millisecond, PollWait: 50 * time.Millisecond}})
	ts1 := httptest.NewServer(s1)
	stopWorker := startTestWorker(t, ts1.URL, "w1", nil, nil)
	waitForWorkers(t, s1.Coordinator(), 1)

	firstRun := map[string]JobStatus{}
	for _, spec := range specs {
		code, js := postRun(t, ts1, spec, true)
		if code != http.StatusOK || js.State != JobDone || js.Result == nil {
			t.Fatalf("first-life run: code %d state %s (%s)", code, js.State, js.Error)
		}
		if js.StoreHit {
			t.Error("fresh spec reported a store hit")
		}
		firstRun[js.Key] = js
	}
	if c := s1.Coordinator().Stats().Completed; c != uint64(len(specs)) {
		t.Fatalf("first life completed %d jobs remotely, want %d", c, len(specs))
	}
	stopWorker()
	ts1.Close()
	s1.Close() // closes st1 — the log is durable on disk now

	// Second life: same store directory, no workers at all.
	st2, err := store.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Entries; got != len(specs) {
		t.Fatalf("store replayed %d entries, want %d", got, len(specs))
	}
	s2 := New(Options{Workers: 2, QueueBound: 64, CacheSize: 16, Store: st2})
	ts2 := httptest.NewServer(s2)
	defer func() { ts2.Close(); s2.Close() }()

	for _, spec := range specs {
		code, js := postRun(t, ts2, spec, true)
		if code != http.StatusOK || js.State != JobDone || js.Result == nil {
			t.Fatalf("second-life run: code %d state %s (%s)", code, js.State, js.Error)
		}
		if !js.StoreHit {
			t.Errorf("restarted coordinator re-executed spec %s instead of serving the store", js.Key[:8])
		}
		prev := firstRun[js.Key]
		if len(js.Result.Runs) != len(prev.Result.Runs) {
			t.Fatalf("restored result has %d runs, want %d", len(js.Result.Runs), len(prev.Result.Runs))
		}
		for i := range prev.Result.Runs {
			if !reflect.DeepEqual(js.Result.Runs[i], prev.Result.Runs[i]) {
				t.Errorf("restored run %d differs from the original computation", i)
			}
		}
	}
	if c := s2.Coordinator().Stats(); c.Completed != 0 || c.LeasesGranted != 0 {
		t.Errorf("second life dispatched work despite the store: %+v", c)
	}
	if hits := s2.Engine().Stats().StoreHits; hits != uint64(len(specs)) {
		t.Errorf("engine counted %d store hits, want %d", hits, len(specs))
	}
}

// TestRetryAfterOnQueueFull: 503 backpressure carries Retry-After advice on
// both the runs and sweep endpoints.
func TestRetryAfterOnQueueFull(t *testing.T) {
	s := New(Options{Workers: 1, QueueBound: 1, CacheSize: 4})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	// Occupy the single worker and the single queue slot with long runs,
	// then overflow.
	long := func(seed int) string {
		return fmt.Sprintf(`{"model": "ffw", "seed": %d, "duration_ms": 60000}`, seed)
	}
	var overflowed bool
	for seed := 1; seed <= 8; seed++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(long(seed)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Fatalf("queue-full 503 Retry-After = %q, want a positive integer", ra)
			}
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("queue never overflowed")
	}

	// The sweep endpoint reports the same advice when its cells overflow.
	code, _, hdr := postSweep(t, ts.URL, `{
		"spec": {"duration_ms": 60000},
		"models": ["none", "ni", "ffw"],
		"fault_counts": [0],
		"runs": 1
	}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflowing sweep status = %d, want 503", code)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("sweep 503 Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
}

// TestHealthzDispatchSection: /healthz carries the coordinator and store
// counters the operators watch.
func TestHealthzDispatchSection(t *testing.T) {
	st := store.NewMemStore()
	s := New(Options{Workers: 2, QueueBound: 64, CacheSize: 16, Store: st})
	ts := httptest.NewServer(s)
	defer func() { ts.Close(); s.Close() }()

	stop := startTestWorker(t, ts.URL, "hw", nil, nil)
	defer stop()
	waitForWorkers(t, s.Coordinator(), 1)
	if code, js := postRun(t, ts, fastSpecJSON, true); code != http.StatusOK || js.State != JobDone {
		t.Fatalf("run: code %d state %s (%s)", code, js.State, js.Error)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Dispatch struct {
			dispatch.Stats
			Store *store.Stats `json:"store"`
		} `json:"dispatch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Dispatch.WorkersRegistered != 1 || h.Dispatch.Completed != 1 {
		t.Errorf("healthz dispatch section = %+v", h.Dispatch.Stats)
	}
	if h.Dispatch.Store == nil || h.Dispatch.Store.Entries != 1 {
		t.Errorf("healthz store section = %+v", h.Dispatch.Store)
	}
}
