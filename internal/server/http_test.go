package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"centurion/internal/experiments"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{Workers: 2, QueueBound: 64, CacheSize: 16})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

const fastSpecJSON = `{"model": "ffw", "seed": 5, "duration_ms": 40, "width": 8, "height": 4}`

func postRun(t *testing.T, ts *httptest.Server, body string, wait bool) (int, JobStatus) {
	t.Helper()
	url := ts.URL + "/v1/runs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, st
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status string                        `json:"status"`
		Engine EngineStats                   `json:"engine"`
		Pool   experiments.PoolStatsSnapshot `json:"pool"`
		Warm   *experiments.WarmStartStats   `json:"warmstart"`
		GC     *GCStats                      `json:"gc"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Engine.Workers != 2 {
		t.Errorf("healthz = %+v", h)
	}
	if h.GC == nil {
		t.Error("healthz carries no gc stats")
	}
	if h.Warm == nil {
		t.Error("healthz carries no warm-start stats")
	}
	// The platform pool is process-global: after at least one simulated run
	// (any test in this package, or the submit below) it must show activity.
	postRun(t, ts, `{"model":"none","duration_ms":20,"window_ms":20,"runs":2}`, true)
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Pool.PlatformsCreated == 0 {
		t.Errorf("pool stats show no platform activity: %+v", h.Pool)
	}
}

func TestSubmitWaitAndCache(t *testing.T) {
	_, ts := newTestServer(t)

	code, st := postRun(t, ts, fastSpecJSON, true)
	if code != http.StatusOK || st.State != JobDone {
		t.Fatalf("first submit: code %d, state %s (%s)", code, st.State, st.Error)
	}
	if st.Result == nil || len(st.Result.Runs) != 1 {
		t.Fatal("finished job carries no result")
	}
	if st.CacheHit {
		t.Error("first submission cannot be a cache hit")
	}

	code2, st2 := postRun(t, ts, fastSpecJSON, true)
	if code2 != http.StatusOK || !st2.CacheHit {
		t.Fatalf("second submit: code %d, cache_hit %v — identical spec not cached", code2, st2.CacheHit)
	}
	if !reflect.DeepEqual(st.Result.Runs[0], st2.Result.Runs[0]) {
		t.Error("cached result differs from the original")
	}
}

func TestSubmitValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t)

	if code, _ := postRun(t, ts, `{"model": "zerg"}`, false); code != http.StatusBadRequest {
		t.Errorf("bad model: code %d, want 400", code)
	}
	if code, _ := postRun(t, ts, `{not json`, false); code != http.StatusBadRequest {
		t.Errorf("bad JSON: code %d, want 400", code)
	}
	resp0, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"modles": ["ni"], "spec": {"duration_ms": 40}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep with unknown field: code %d, want 400", resp0.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code %d, want 404", resp.StatusCode)
	}
}

func TestSubmitWaitZeroDoesNotBlock(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/runs?wait=0", "application/json",
		strings.NewReader(`{"model": "ffw", "seed": 77, "duration_ms": 2000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || st.State == JobDone {
		t.Errorf("wait=0 submit: code %d state %s — should not have waited for a 2 s run", resp.StatusCode, st.State)
	}
}

func TestSubmitAsyncThenPoll(t *testing.T) {
	_, ts := newTestServer(t)

	code, st := postRun(t, ts, `{"model": "ni", "seed": 6, "duration_ms": 40, "width": 8, "height": 4}`, false)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("async submit: code %d", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.State == JobDone {
			if cur.Result == nil {
				t.Fatal("done job without result")
			}
			break
		}
		if cur.State == JobFailed {
			t.Fatalf("job failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentIdenticalPostsAreDeterministic(t *testing.T) {
	_, ts := newTestServer(t)

	const clients = 8
	var wg sync.WaitGroup
	results := make([]RunSummary, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs?wait=1", "application/json", strings.NewReader(fastSpecJSON))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				errs[i] = err
				return
			}
			if st.State != JobDone || st.Result == nil {
				errs[i] = fmt.Errorf("state %s (%s)", st.State, st.Error)
				return
			}
			results[i] = st.Result.Runs[0]
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("client %d saw a different result:\n%+v\n%+v", i, results[i], results[0])
		}
	}
}

func TestSSEStreamsSeries(t *testing.T) {
	_, ts := newTestServer(t)

	_, st := postRun(t, ts, `{"model": "ffw", "seed": 9, "duration_ms": 40, "width": 8, "height": 4}`, false)
	resp, err := http.Get(ts.URL + "/v1/runs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	samples, done := 0, false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: sample":
			samples++
		case line == "event: done":
			done = true
		}
		if done && strings.HasPrefix(line, "data: ") {
			var final JobStatus
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				t.Fatalf("decoding done event: %v", err)
			}
			if final.State != JobDone {
				t.Errorf("final state %s", final.State)
			}
			break
		}
	}
	if samples != 40 {
		t.Errorf("streamed %d samples, want 40", samples)
	}
	if !done {
		t.Error("no done event")
	}
}

func TestSweepAggregates(t *testing.T) {
	_, ts := newTestServer(t)

	req := `{
		"spec": {"duration_ms": 60, "width": 8, "height": 4, "fault_at_ms": 30},
		"models": ["none", "ffw"],
		"fault_counts": [0, 2],
		"runs": 2
	}`
	post := func() SweepResponse {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			t.Fatalf("sweep status %d: %s", resp.StatusCode, buf.String())
		}
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	sr := post()
	if len(sr.Rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 models x 2 fault counts)", len(sr.Rows))
	}
	for _, row := range sr.Rows {
		if row.Aggregate.Runs != 2 {
			t.Errorf("row %s/%d aggregated %d runs, want 2", row.Model, row.Faults, row.Aggregate.Runs)
		}
	}

	// The same sweep again is answered entirely from the cache.
	sr2 := post()
	for i, row := range sr2.Rows {
		if !row.CacheHit {
			t.Errorf("repeat sweep row %s/%d not served from cache", row.Model, row.Faults)
		}
		if row.Aggregate != sr.Rows[i].Aggregate {
			t.Errorf("repeat sweep row %s/%d diverged", row.Model, row.Faults)
		}
	}
}

func TestSweepRejectsInvalidCellBeforeSubmitting(t *testing.T) {
	s, ts := newTestServer(t)

	req := `{"spec": {"duration_ms": 40, "width": 8, "height": 4}, "models": ["none", "bogus"], "fault_counts": [0], "runs": 1}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid cell: code %d, want 400", resp.StatusCode)
	}
	if st := s.Engine().Stats(); st.Queued != 0 || st.Running != 0 || st.Completed != 0 {
		t.Errorf("invalid sweep still submitted work: %+v", st)
	}
}

func TestSweepDefaultsFaultTimeToMidRun(t *testing.T) {
	_, ts := newTestServer(t)

	// No fault_at_ms in the spec: sweeps must derive a valid injection
	// time (mid-run, on the window grid), not fail validation — including
	// when duration/2 is not itself a window multiple.
	for _, req := range []string{
		`{"spec": {"duration_ms": 80, "width": 8, "height": 4}, "models": ["none"], "fault_counts": [2], "runs": 1}`,
		`{"spec": {"duration_ms": 200, "window_ms": 8, "width": 8, "height": 4}, "models": ["none"], "fault_counts": [2], "runs": 1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			t.Fatalf("faulted sweep without fault_at_ms rejected: %d %s", resp.StatusCode, buf.String())
		}
		resp.Body.Close()
	}
}

// The sweep's topologies axis fans the grid over fabric shapes, each cell
// getting its own canonical cache identity, and /healthz breaks the
// platform-pool counters down by topology once those shapes have run.
func TestSweepTopologiesAxis(t *testing.T) {
	_, ts := newTestServer(t)

	req := `{
		"spec": {"duration_ms": 40, "width": 8, "height": 4},
		"models": ["ffw"],
		"fault_counts": [0],
		"topologies": ["mesh", "torus", "cmesh"],
		"runs": 1
	}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("topology sweep status %d: %s", resp.StatusCode, buf.String())
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (one per topology)", len(sr.Rows))
	}
	seen := map[string]bool{}
	for _, row := range sr.Rows {
		seen[row.Topology] = true
		if row.Aggregate.Runs != 1 {
			t.Errorf("row %s aggregated %d runs, want 1", row.Topology, row.Aggregate.Runs)
		}
	}
	for _, want := range []string{"mesh", "torus", "cmesh"} {
		if !seen[want] {
			t.Errorf("sweep rows missing topology %q (rows: %+v)", want, sr.Rows)
		}
	}

	// A cmesh cell with odd dimensions is rejected before any cell runs.
	bad := `{"spec": {"duration_ms": 40, "width": 7, "height": 4}, "models": ["none"], "fault_counts": [0], "topologies": ["cmesh"], "runs": 1}`
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("odd-dimension cmesh cell: code %d, want 400", resp2.StatusCode)
	}

	// /healthz now reports per-shape platform-pool counters (topology kind
	// plus grid dimensions) for the shapes this sweep exercised.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var h struct {
		Pool experiments.PoolStatsSnapshot `json:"pool"`
	}
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mesh/8x4", "torus/8x4", "cmesh/8x4"} {
		bt, ok := h.Pool.ByTopology[want]
		if !ok {
			t.Errorf("healthz pool stats missing shape %q: %+v", want, h.Pool.ByTopology)
			continue
		}
		if bt.PlatformsCreated+bt.PlatformsReused == 0 {
			t.Errorf("healthz pool stats for %q count no platforms", want)
		}
	}
}

// The sweep's grids axis fans cells over fabric shapes: each "WxH" entry is
// validated like a standalone spec, labels its rows, and yields a distinct
// cache identity (re-sweeping must hit the cache per shape).
func TestSweepGridsAxis(t *testing.T) {
	_, ts := newTestServer(t)

	req := `{
		"spec": {"duration_ms": 40},
		"models": ["ffw"],
		"fault_counts": [0],
		"grids": ["8x4", "16x8"],
		"runs": 1
	}`
	post := func() SweepResponse {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			t.Fatalf("grids sweep status %d: %s", resp.StatusCode, buf.String())
		}
		var sr SweepResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	sr := post()
	if len(sr.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one per grid)", len(sr.Rows))
	}
	seen := map[string]bool{}
	for _, row := range sr.Rows {
		seen[row.Grid] = true
	}
	for _, want := range []string{"8x4", "16x8"} {
		if !seen[want] {
			t.Errorf("sweep rows missing grid %q (rows: %+v)", want, sr.Rows)
		}
	}
	// The same sweep again must be served entirely from the cache — each
	// shape kept its own canonical identity.
	for _, row := range post().Rows {
		if !row.CacheHit {
			t.Errorf("re-swept cell %s/%s missed the cache", row.Model, row.Grid)
		}
	}

	// Malformed and over-budget grid entries reject the whole request.
	for _, bad := range []string{`["8x"]`, `["512x512"]`} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
			strings.NewReader(`{"spec": {"duration_ms": 60000}, "models": ["none"], "fault_counts": [0], "grids": `+bad+`, "runs": 1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("grids %s: code %d, want 400", bad, resp.StatusCode)
		}
	}
}
