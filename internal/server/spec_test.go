package server

import (
	"strings"
	"testing"

	"centurion/internal/aim"
	"centurion/internal/experiments"
	"centurion/internal/sim"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{}`))
	if err != nil {
		t.Fatalf("ParseSpec({}): %v", err)
	}
	want := RunSpec{
		Model: "none", Seed: 1, Runs: 1, DurationMs: 1000, WindowMs: 1,
		Width: 16, Height: 8, Topology: "mesh", Graph: "forkjoin",
	}
	if s != want {
		t.Errorf("canonical defaults = %+v, want %+v", s, want)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"modle": "ffw"}`)); err == nil {
		t.Error("misspelled field accepted")
	}
}

func TestCanonicalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"bad model", `{"model": "zerg"}`},
		{"bad graph", `{"graph": "torus"}`},
		{"runs too large", `{"runs": 100000}`},
		{"negative runs", `{"runs": -1}`},
		{"duration too long", `{"duration_ms": 1000000}`},
		{"batch budget exceeded", `{"runs": 1000, "duration_ms": 60000}`},
		{"window beyond duration", `{"duration_ms": 10, "window_ms": 20}`},
		{"window not dividing duration", `{"duration_ms": 1000, "window_ms": 300}`},
		{"mesh too small", `{"width": 1}`},
		{"mesh too large", `{"height": 2000}`},
		{"node-ms budget exceeded", `{"width": 512, "height": 512, "duration_ms": 1000}`},
		{"node-ms budget exceeded by batch", `{"width": 64, "height": 64, "duration_ms": 1000, "runs": 20}`},
		{"unknown topology", `{"topology": "hypercube"}`},
		{"cmesh odd width", `{"topology": "cmesh", "width": 15}`},
		{"cmesh odd height", `{"topology": "cmesh", "height": 7}`},
		{"too many faults", `{"num_faults": 128, "fault_at_ms": 500}`},
		{"fault time missing", `{"num_faults": 4}`},
		{"fault time at end", `{"num_faults": 4, "fault_at_ms": 1000}`},
		{"fault time off window grid", `{"num_faults": 4, "fault_at_ms": 130, "window_ms": 250}`},
	}
	for _, tc := range cases {
		if _, err := ParseSpec([]byte(tc.json)); err == nil {
			t.Errorf("%s: %s accepted", tc.name, tc.json)
		}
	}
}

// TestMegaGridSpecs covers the lifted scale ceiling: shapes up to 1024×1024
// are admitted when they fit the node-ms budget, every shape canonicalizes
// to its own cache key, and ParseGrid round-trips the sweep axis syntax.
func TestMegaGridSpecs(t *testing.T) {
	// 256×256 over 500 ms fits the budget (32.8M of 76.8M node-ms); the
	// 1024×1024 ceiling needs a proportionally shorter run.
	big, err := ParseSpec([]byte(`{"width": 256, "height": 256, "duration_ms": 500}`))
	if err != nil {
		t.Fatalf("256x256 spec rejected: %v", err)
	}
	huge, err := ParseSpec([]byte(`{"width": 1024, "height": 1024, "duration_ms": 70}`))
	if err != nil {
		t.Fatalf("1024x1024 spec rejected: %v", err)
	}
	small, err := ParseSpec([]byte(`{"duration_ms": 500}`))
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{
		"16x8":      small.CanonicalKey(),
		"256x256":   big.CanonicalKey(),
		"1024x1024": huge.CanonicalKey(),
	}
	seen := map[string]string{}
	for shape, key := range keys {
		if prev, ok := seen[key]; ok {
			t.Errorf("shapes %s and %s share a canonical key", prev, shape)
		}
		seen[key] = shape
	}

	if w, h, err := ParseGrid("64x64"); err != nil || w != 64 || h != 64 {
		t.Errorf("ParseGrid(64x64) = (%d, %d, %v)", w, h, err)
	}
	for _, bad := range []string{"64", "x64", "64x", "axb", "64x64x2", "-4x8", "0x8"} {
		if _, _, err := ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted", bad)
		}
	}
}

func TestCanonicalKeyStability(t *testing.T) {
	a, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	// Same experiment, different field order and explicit defaults.
	b, err := ParseSpec([]byte(`{"seed": 7, "duration_ms": 1000, "model": "ffw", "width": 16}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("equivalent specs produced different canonical keys")
	}

	c := a
	c.Seed = 8
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Error("different seeds share a canonical key")
	}

	// A fault time without faults is normalized away.
	d, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "fault_at_ms": 500}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.CanonicalKey() != d.CanonicalKey() {
		t.Error("vacuous fault_at_ms changed the canonical key")
	}

	// Overrides the model never reads are normalized away too.
	plain, _ := ParseSpec([]byte(`{"model": "none", "seed": 7}`))
	withFFW, err := ParseSpec([]byte(`{"model": "none", "seed": 7, "ffw": {"timeout_ms": 5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if plain.CanonicalKey() != withFFW.CanonicalKey() {
		t.Error("model-irrelevant ffw override changed the canonical key")
	}

	// An explicit default topology and an omitted one are the same spec;
	// each fabric shape gets its own canonical key.
	meshDefault, _ := ParseSpec([]byte(`{"model": "ffw", "seed": 7}`))
	meshExplicit, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "topology": "mesh"}`))
	if err != nil {
		t.Fatal(err)
	}
	if meshDefault.CanonicalKey() != meshExplicit.CanonicalKey() {
		t.Error("explicit default topology changed the canonical key")
	}
	torus, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "topology": "torus"}`))
	if err != nil {
		t.Fatal(err)
	}
	cmesh, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "topology": "cmesh"}`))
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{
		meshDefault.CanonicalKey(): true,
		torus.CanonicalKey():       true,
		cmesh.CanonicalKey():       true,
	}
	if len(keys) != 3 {
		t.Error("topologies do not have distinct canonical keys")
	}

	// Degenerate and empty overrides normalize away entirely.
	zeroTimeout, err := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "ffw": {"timeout_ms": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	emptyBlock, _ := ParseSpec([]byte(`{"model": "ffw", "seed": 7, "ffw": {}}`))
	if a.CanonicalKey() != zeroTimeout.CanonicalKey() || a.CanonicalKey() != emptyBlock.CanonicalKey() {
		t.Error("vacuous ffw overrides changed the canonical key")
	}
}

func TestPartialOverridesMergeWithDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"model": "ni", "ni": {"threshold": 60}}`))
	if err != nil {
		t.Fatal(err)
	}
	e := s.toExperiment(0)
	def := aim.DefaultNIParams()
	if e.NI == nil || e.NI.Threshold != 60 {
		t.Fatalf("threshold override lost: %+v", e.NI)
	}
	if e.NI.InternalWeight != def.InternalWeight || e.NI.PinSources != def.PinSources {
		t.Errorf("omitted NI fields did not keep paper defaults: %+v (want weight %d, pin %v)",
			e.NI, def.InternalWeight, def.PinSources)
	}

	f, err := ParseSpec([]byte(`{"model": "ffw", "ffw": {"pin_sources": false}}`))
	if err != nil {
		t.Fatal(err)
	}
	ef := f.toExperiment(0)
	if ef.FFW == nil || ef.FFW.PinSources {
		t.Fatalf("explicit pin_sources=false lost: %+v", ef.FFW)
	}
	if ef.FFW.Timeout != aim.DefaultFFWParams().Timeout || !ef.FFW.ArmOnLapse {
		t.Errorf("omitted FFW fields did not keep paper defaults: %+v", ef.FFW)
	}
}

func TestToExperiment(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"model": "ffw", "seed": 10, "graph": "pipeline",
		"duration_ms": 200, "num_faults": 3, "fault_at_ms": 100,
		"thermal_dvfs": true,
		"ffw": {"timeout_ms": 15, "arm_on_lapse": true, "pin_sources": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	e := s.toExperiment(2)
	if e.Model != experiments.ModelFFW {
		t.Errorf("model = %v, want ffw", e.Model)
	}
	if e.Seed != 12 {
		t.Errorf("batch run 2 seed = %d, want base+2 = 12", e.Seed)
	}
	if e.Graph == nil {
		t.Error("pipeline graph not built")
	}
	if e.FFW == nil || e.FFW.Timeout != sim.Ms(15) {
		t.Errorf("FFW override not converted: %+v", e.FFW)
	}
	if e.Thermal == nil || !e.ThermalDVFS {
		t.Error("thermal_dvfs did not enable the thermal model")
	}
	if e.NumFaults != 3 || e.FaultAtMs != 100 {
		t.Errorf("fault plan lost: %d faults at %d ms", e.NumFaults, e.FaultAtMs)
	}
}

func TestCanonicalKeyIsHex(t *testing.T) {
	s, _ := ParseSpec([]byte(`{}`))
	key := s.CanonicalKey()
	if len(key) != 64 || strings.Trim(key, "0123456789abcdef") != "" {
		t.Errorf("canonical key %q is not a hex SHA-256", key)
	}
}
