// Package server exposes the Centurion simulator as a long-running service:
// a JSON run-spec codec and validator, a bounded worker-pool job engine with
// an LRU result cache, and a stdlib net/http REST API (POST /v1/runs,
// GET /v1/runs/{id}, an SSE progress stream, a batch sweep endpoint and
// /healthz). Identical canonical specs are served from the cache without
// re-simulating, so the service stays deterministic: same spec ⇒ same
// result, however many clients ask.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"centurion/internal/aim"
	"centurion/internal/experiments"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// Validation bounds: generous enough for any experiment in the paper (and
// far beyond), tight enough that one request cannot wedge a worker forever
// — MaxTotalMs caps a request's simulated time across its whole batch, and
// because a grid side may now reach 1024 (the tiled kernel's mega-fabric
// ceiling), MaxNodeMs additionally caps simulated time × fabric size: the
// budget equals MaxTotalMs on the default 128-node grid, so a 65k-node
// fabric gets proportionally fewer node-milliseconds, not a free 512×
// multiplier on worker time.
const (
	MaxMeshDim    = 1024
	MaxDurationMs = 60000
	MaxRuns       = 1000
	MaxTotalMs    = 600000
	MaxNodeMs     = int64(MaxTotalMs) * 128
)

// NISpec overrides the Network Interaction parameters of a run. Omitted
// fields keep the paper defaults — {"threshold": 60} means "default NI
// with a higher threshold", not an ablated model.
type NISpec struct {
	Threshold      *int  `json:"threshold,omitempty"`
	InhibitWeight  *int  `json:"inhibit_weight,omitempty"`
	InternalWeight *int  `json:"internal_weight,omitempty"`
	NeighborWeight *int  `json:"neighbor_weight,omitempty"`
	PinSources     *bool `json:"pin_sources,omitempty"`
}

// normalize drops degenerate values (the engines fall back to the defaults
// for them anyway) and collapses an all-default override to nil, so
// equivalent specs share one canonical form. It never mutates n.
func (n *NISpec) normalize() *NISpec {
	if n == nil {
		return nil
	}
	c := *n
	if c.Threshold != nil && *c.Threshold <= 0 {
		c.Threshold = nil
	}
	if c.Threshold == nil && c.InhibitWeight == nil && c.InternalWeight == nil &&
		c.NeighborWeight == nil && c.PinSources == nil {
		return nil
	}
	return &c
}

// FFWSpec overrides the Foraging for Work parameters of a run. Omitted
// fields keep the paper defaults.
type FFWSpec struct {
	TimeoutMs  *float64 `json:"timeout_ms,omitempty"`
	ArmOnLapse *bool    `json:"arm_on_lapse,omitempty"`
	PinSources *bool    `json:"pin_sources,omitempty"`
}

// normalize is the FFW counterpart of NISpec.normalize.
func (f *FFWSpec) normalize() *FFWSpec {
	if f == nil {
		return nil
	}
	c := *f
	if c.TimeoutMs != nil && *c.TimeoutMs <= 0 {
		c.TimeoutMs = nil
	}
	if c.TimeoutMs == nil && c.ArmOnLapse == nil && c.PinSources == nil {
		return nil
	}
	return &c
}

// RunSpec is the service's wire format for one simulation request: any
// model × graph × mesh size × fault plan × thermal configuration the
// simulator supports. Zero values mean "experiment default"; Canonicalize
// fills them in so that equivalent requests share one canonical form.
type RunSpec struct {
	// Model is the runtime-management scheme: "none", "ni", "ffw" or
	// "random-static" (default "none").
	Model string `json:"model"`
	// Seed is the base random seed (default 1). Runs beyond the first in a
	// batch use Seed+1, Seed+2, … — the same deterministic derivation as
	// the table harness.
	Seed uint64 `json:"seed"`
	// Runs is the batch size: independently seeded repetitions aggregated
	// into mean ± 95% CI summaries (default 1).
	Runs int `json:"runs"`
	// DurationMs is the simulated run length (default 1000, the paper's
	// plots).
	DurationMs int `json:"duration_ms"`
	// WindowMs is the metric sampling window (default 1).
	WindowMs int `json:"window_ms"`
	// Width, Height are the node-grid dimensions (default 16×8,
	// Centurion-V6; up to 1024×1024 through the tiled mega-fabric kernel,
	// subject to the node-ms budget). Each shape canonicalizes to its own
	// spec — and therefore its own cache key.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Topology selects the fabric shape: "mesh", "torus" or "cmesh"
	// (default "mesh"). cmesh concentrates 2×2 clusters of processing
	// elements onto shared routers and therefore needs even dimensions.
	Topology string `json:"topology"`
	// Graph selects the workload: "forkjoin", "pipeline" or "diamond"
	// (default "forkjoin", the paper's Figure 3 shape).
	Graph string `json:"graph"`
	// FaultAtMs injects NumFaults random node failures at this time;
	// 0 disables fault injection.
	FaultAtMs int `json:"fault_at_ms"`
	NumFaults int `json:"num_faults"`
	// NeighborSignals enables the information-transfer extension.
	NeighborSignals bool `json:"neighbor_signals"`
	// Thermal enables the per-node temperature model; ThermalDVFS
	// additionally enables the frequency-scaling governor (implies
	// Thermal).
	Thermal     bool `json:"thermal"`
	ThermalDVFS bool `json:"thermal_dvfs"`
	// NI and FFW override the models' parameters; omitted fields (and a
	// nil block) keep the paper defaults.
	NI  *NISpec  `json:"ni,omitempty"`
	FFW *FFWSpec `json:"ffw,omitempty"`
	// FaultProfile selects a hostile-environment fault schedule (kinds:
	// death, churn, flaky, cascade, byzantine — see faults.Profile).
	// Mutually exclusive with the legacy fault_at_ms/num_faults pair; the
	// normalized profile is part of the canonical spec, so every distinct
	// profile gets its own cache key.
	FaultProfile *faults.Profile `json:"fault_profile,omitempty"`
}

// models maps wire names to the experiment harness models.
var models = map[string]experiments.Model{
	"none":          experiments.ModelNone,
	"ni":            experiments.ModelNI,
	"ffw":           experiments.ModelFFW,
	"random-static": experiments.ModelRandomStatic,
}

// graphs enumerates the built-in workloads as shared singletons: graphs are
// immutable (and their memoized accessors race-safe), and handing every run
// of a workload the same instance is what lets the experiment runner's
// platform pool — keyed by graph identity — recycle platforms across jobs.
var graphs = map[string]*taskgraph.Graph{
	"forkjoin": taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams()),
	"pipeline": taskgraph.Pipeline(4, 120, 24),
	"diamond":  taskgraph.Diamond(120, 24),
}

// ParseSpec decodes a JSON run-spec, rejecting unknown fields, and returns
// it canonicalized and validated.
func ParseSpec(data []byte) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("decoding run spec: %w", err)
	}
	if err := s.Canonicalize(); err != nil {
		return s, err
	}
	return s, nil
}

// Canonicalize fills experiment defaults in place and validates every
// field, so that two requests meaning the same experiment share one
// canonical form (and therefore one cache key).
func (s *RunSpec) Canonicalize() error {
	if s.Model == "" {
		s.Model = "none"
	}
	if _, ok := models[s.Model]; !ok {
		return fmt.Errorf("unknown model %q (want none, ni, ffw or random-static)", s.Model)
	}
	if s.Graph == "" {
		s.Graph = "forkjoin"
	}
	if _, ok := graphs[s.Graph]; !ok {
		return fmt.Errorf("unknown graph %q (want forkjoin, pipeline or diamond)", s.Graph)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Runs == 0 {
		s.Runs = 1
	}
	if s.Runs < 0 || s.Runs > MaxRuns {
		return fmt.Errorf("runs %d out of range [1, %d]", s.Runs, MaxRuns)
	}
	if s.DurationMs == 0 {
		s.DurationMs = 1000
	}
	if s.DurationMs < 0 || s.DurationMs > MaxDurationMs {
		return fmt.Errorf("duration_ms %d out of range [1, %d]", s.DurationMs, MaxDurationMs)
	}
	if s.Runs*s.DurationMs > MaxTotalMs {
		return fmt.Errorf("runs x duration_ms = %d exceeds the %d ms budget per request", s.Runs*s.DurationMs, MaxTotalMs)
	}
	if s.WindowMs == 0 {
		s.WindowMs = 1
	}
	if s.WindowMs < 0 || s.WindowMs > s.DurationMs {
		return fmt.Errorf("window_ms %d out of range [1, duration_ms]", s.WindowMs)
	}
	if s.DurationMs%s.WindowMs != 0 {
		return fmt.Errorf("window_ms %d must divide duration_ms %d evenly", s.WindowMs, s.DurationMs)
	}
	if s.Width == 0 {
		s.Width = 16
	}
	if s.Height == 0 {
		s.Height = 8
	}
	if s.Width < 2 || s.Width > MaxMeshDim || s.Height < 2 || s.Height > MaxMeshDim {
		return fmt.Errorf("grid %dx%d out of range [2, %d] per side", s.Width, s.Height, MaxMeshDim)
	}
	if nodeMs := int64(s.Runs) * int64(s.DurationMs) * int64(s.Width) * int64(s.Height); nodeMs > MaxNodeMs {
		return fmt.Errorf("runs x duration_ms x nodes = %d exceeds the %d node-ms budget per request", nodeMs, MaxNodeMs)
	}
	if s.Topology == "" {
		s.Topology = noc.KindMesh
	}
	// The noc layer owns the topology rules (valid kinds, cmesh evenness);
	// building the topology here is cheap and guarantees the worker can
	// never hit a construction panic on a spec this validator admitted.
	if _, err := noc.MakeTopology(s.Topology, s.Width, s.Height); err != nil {
		return err
	}
	if s.NumFaults < 0 || s.NumFaults >= s.Width*s.Height {
		return fmt.Errorf("num_faults %d out of range [0, %d)", s.NumFaults, s.Width*s.Height)
	}
	if s.NumFaults > 0 {
		if s.FaultAtMs <= 0 || s.FaultAtMs >= s.DurationMs {
			return fmt.Errorf("fault_at_ms %d must lie strictly inside (0, %d) when num_faults > 0", s.FaultAtMs, s.DurationMs)
		}
		if s.FaultAtMs%s.WindowMs != 0 {
			// Misaligned injection makes the pre-fault window range empty or
			// partial, yielding nonsense settling statistics.
			return fmt.Errorf("fault_at_ms %d must be a multiple of window_ms %d", s.FaultAtMs, s.WindowMs)
		}
	} else {
		// A fault time without faults is meaningless — normalize it away so
		// it cannot split the cache.
		s.FaultAtMs = 0
	}
	if s.FaultProfile != nil {
		if s.NumFaults > 0 {
			return fmt.Errorf("fault_profile and num_faults are mutually exclusive (a death profile subsumes the legacy pair)")
		}
		// Normalize into the canonical form (defaults resolved, inert
		// fields zeroed) so equivalent profiles share one cache key, and
		// validate the shape against this run length.
		prof, err := s.FaultProfile.Normalized(s.DurationMs)
		if err != nil {
			return err
		}
		if prof.Nodes >= s.Width*s.Height {
			return fmt.Errorf("fault_profile kills %d of %d nodes", prof.Nodes, s.Width*s.Height)
		}
		s.FaultProfile = &prof
	}
	if s.ThermalDVFS {
		s.Thermal = true
	}
	// Overrides the selected model never reads must not split the cache:
	// {"model":"none","ffw":{...}} simulates identically to {"model":"none"}.
	if s.Model != "ni" {
		s.NI = nil
	}
	if s.Model != "ffw" {
		s.FFW = nil
	}
	// normalize copies before rewriting: the override structs may be shared
	// with the caller (centurion.RunSpec).
	s.NI = s.NI.normalize()
	s.FFW = s.FFW.normalize()
	return nil
}

// ParseGrid parses a "WxH" grid-shape string ("64x64"). It only checks the
// syntax and positivity; range and budget checks belong to Canonicalize,
// which sees the dimensions in spec form.
func ParseGrid(g string) (w, h int, err error) {
	ws, hs, ok := strings.Cut(g, "x")
	if ok {
		w, err = strconv.Atoi(ws)
		if err == nil {
			h, err = strconv.Atoi(hs)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("grid %q is not of the form WxH (e.g. 64x64)", g)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("grid %q has non-positive dimensions", g)
	}
	return w, h, nil
}

// CanonicalKey returns the stable cache key of the spec: the hex SHA-256 of
// its canonical JSON encoding. Canonicalize must have succeeded first.
func (s RunSpec) CanonicalKey() string {
	// encoding/json marshals struct fields in declaration order, so the
	// encoding of a canonicalized spec is already stable.
	b, err := json.Marshal(s)
	if err != nil {
		// A RunSpec holds only plain data; Marshal cannot fail.
		panic("server: marshaling canonical spec: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// toExperiment converts the canonical spec for run index i of the batch to
// the shared experiment runner's input.
func (s RunSpec) toExperiment(i int) experiments.Spec {
	spec := experiments.Spec{
		Model:           models[s.Model],
		Seed:            s.Seed + uint64(i),
		DurationMs:      s.DurationMs,
		FaultAtMs:       s.FaultAtMs,
		NumFaults:       s.NumFaults,
		WindowMs:        s.WindowMs,
		NeighborSignals: s.NeighborSignals,
		Width:           s.Width,
		Height:          s.Height,
		Topology:        s.Topology,
		Graph:           graphs[s.Graph],
	}
	if s.NI != nil {
		par := aim.DefaultNIParams()
		if s.NI.Threshold != nil {
			par.Threshold = *s.NI.Threshold
		}
		if s.NI.InhibitWeight != nil {
			par.InhibitWeight = *s.NI.InhibitWeight
		}
		if s.NI.InternalWeight != nil {
			par.InternalWeight = *s.NI.InternalWeight
		}
		if s.NI.NeighborWeight != nil {
			par.NeighborWeight = *s.NI.NeighborWeight
		}
		if s.NI.PinSources != nil {
			par.PinSources = *s.NI.PinSources
		}
		spec.NI = &par
	}
	if s.FFW != nil {
		par := aim.DefaultFFWParams()
		if s.FFW.TimeoutMs != nil {
			par.Timeout = sim.Ms(*s.FFW.TimeoutMs)
		}
		if s.FFW.ArmOnLapse != nil {
			par.ArmOnLapse = *s.FFW.ArmOnLapse
		}
		if s.FFW.PinSources != nil {
			par.PinSources = *s.FFW.PinSources
		}
		spec.FFW = &par
	}
	if s.Thermal {
		p := thermal.DefaultParams()
		spec.Thermal = &p
		spec.ThermalDVFS = s.ThermalDVFS
	}
	if s.FaultProfile != nil {
		prof := *s.FaultProfile
		spec.FaultProfile = &prof
	}
	return spec
}
