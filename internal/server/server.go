package server

import (
	"context"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"centurion/internal/dispatch"
	"centurion/internal/store"
)

// Service sizing defaults (applied for zero Options fields).
const (
	DefaultQueueBound = 256
	DefaultCacheSize  = 128
)

// Options sizes the service. Zero values select the defaults.
type Options struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	// With remote `centurion worker` daemons attached it also bounds how
	// many dispatch jobs can be outstanding at once — workers blocked on a
	// lease cost a goroutine, not a core, so raise it freely for
	// dispatch-heavy deployments.
	Workers int
	// QueueBound is the admission queue capacity; submissions beyond it
	// are rejected with 503 (default DefaultQueueBound).
	QueueBound int
	// CacheSize is the LRU result-cache capacity in entries (default
	// DefaultCacheSize).
	CacheSize int
	// Store is the durable content-addressed result store layered under
	// the LRU (nil = none: results die with the process). The server owns
	// the store once passed and closes it on shutdown.
	Store store.Store
	// Dispatch tunes the lease coordinator (zero values = defaults).
	Dispatch dispatch.Config
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so hot-path
	// regressions can be profiled on a live service (`go tool pprof
	// http://host/debug/pprof/profile`). Off by default: the profiling
	// surface is for operators, not tenants.
	EnablePprof bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueBound <= 0 {
		o.QueueBound = DefaultQueueBound
	}
	if o.CacheSize <= 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

// Server is the simulation service: the job engine plus its REST API, and
// — since the dispatch subsystem — the coordinator that `centurion worker`
// daemons lease jobs from.
type Server struct {
	engine  *Engine
	coord   *dispatch.Coordinator
	store   store.Store   // breaker-wrapped; nil when running without durability
	breaker *breakerStore // nil when running without durability
	mux     *http.ServeMux
	started time.Time

	// Cached GC snapshot for /healthz (see gcStats).
	gcMu   sync.Mutex
	gcAt   time.Time
	gcSnap GCStats
}

// New assembles a service and starts its worker pool and lease coordinator.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		engine:  NewEngine(opts.Workers, opts.QueueBound, opts.CacheSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if opts.Store != nil {
		// Every store touch — result reads/writes under the LRU, dispatch
		// checkpoints, orphan results — goes through the circuit breaker, so
		// a failing disk degrades the service to LRU-only caching instead of
		// slowing or erroring the serving path.
		s.breaker = newBreakerStore(opts.Store)
		s.store = s.breaker
		opts.Dispatch.CheckpointStore = s.breaker
		opts.Dispatch.OrphanResult = func(key string, result []byte) {
			// A journal-replayed job finished after its submitter died with
			// the previous process: persist the result so the client's retry
			// is a store hit, not a re-execution.
			_ = s.breaker.Put(key, result)
		}
	}
	s.coord = dispatch.NewCoordinator(opts.Dispatch)
	// Every job engine worker routes through dispatch: remote when leased
	// workers are alive, in-process otherwise.
	s.engine.SetExecutor(NewDispatchExecutor(s.coord))
	if s.store != nil {
		s.engine.SetResultStore(s.store)
	}
	s.routes(s.mux)
	s.coord.Routes(s.mux)
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Engine exposes the job engine (direct submissions without HTTP).
func (s *Server) Engine() *Engine { return s.engine }

// Coordinator exposes the dispatch coordinator (stats, in-process workers).
func (s *Server) Coordinator() *dispatch.Coordinator { return s.coord }

// Close stops the worker pool and coordinator immediately, cancelling any
// running jobs, and closes the durable store.
func (s *Server) Close() {
	s.engine.Close()
	s.coord.Close()
	if s.store != nil {
		_ = s.store.Close()
	}
}

// Shutdown is the graceful Close: admission stops at once, in-flight jobs
// drain (workers finish or their leases lapse) until ctx expires, then
// everything is torn down and the store closed cleanly.
func (s *Server) Shutdown(ctx context.Context) {
	// Engine first: its workers are the coordinator's waiters, so a drained
	// engine leaves the coordinator with nothing in flight.
	s.engine.Drain(ctx)
	s.coord.Drain(ctx)
	s.coord.Close()
	if s.store != nil {
		_ = s.store.Close()
	}
}

// ListenAndServe runs the service on addr until the listener fails. The
// header timeout guards against slow-header connection exhaustion; no
// write timeout is set because the SSE endpoint streams indefinitely.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeContext(context.Background(), addr)
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests and jobs before cutting them off.
const shutdownGrace = 30 * time.Second

// ListenAndServeContext runs the service on addr until the listener fails
// or ctx is cancelled. Cancellation triggers a graceful drain: the listener
// stops accepting, in-flight HTTP requests and jobs get shutdownGrace to
// finish, and the store is closed cleanly.
func (s *Server) ListenAndServeContext(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
		grace, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		// Stop accepting and wait for in-flight handlers (blocked sweep
		// waiters finish because the engine is still running), then drain
		// the engine and coordinator.
		_ = srv.Shutdown(grace)
		s.Shutdown(grace)
		return nil
	}
}
