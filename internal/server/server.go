package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// Service sizing defaults (applied for zero Options fields).
const (
	DefaultQueueBound = 256
	DefaultCacheSize  = 128
)

// Options sizes the service. Zero values select the defaults.
type Options struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueBound is the admission queue capacity; submissions beyond it
	// are rejected with 503 (default DefaultQueueBound).
	QueueBound int
	// CacheSize is the LRU result-cache capacity in entries (default
	// DefaultCacheSize).
	CacheSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so hot-path
	// regressions can be profiled on a live service (`go tool pprof
	// http://host/debug/pprof/profile`). Off by default: the profiling
	// surface is for operators, not tenants.
	EnablePprof bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueBound <= 0 {
		o.QueueBound = DefaultQueueBound
	}
	if o.CacheSize <= 0 {
		o.CacheSize = DefaultCacheSize
	}
	return o
}

// Server is the simulation service: the job engine plus its REST API.
type Server struct {
	engine  *Engine
	mux     *http.ServeMux
	started time.Time

	// Cached GC snapshot for /healthz (see gcStats).
	gcMu   sync.Mutex
	gcAt   time.Time
	gcSnap GCStats
}

// New assembles a service and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		engine:  NewEngine(opts.Workers, opts.QueueBound, opts.CacheSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.routes(s.mux)
	if opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Engine exposes the job engine (direct submissions without HTTP).
func (s *Server) Engine() *Engine { return s.engine }

// Close stops the worker pool, cancelling any running jobs.
func (s *Server) Close() { s.engine.Close() }

// ListenAndServe runs the service on addr until the listener fails. The
// header timeout guards against slow-header connection exhaustion; no
// write timeout is set because the SSE endpoint streams indefinitely.
func (s *Server) ListenAndServe(addr string) error {
	defer s.Close()
	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
