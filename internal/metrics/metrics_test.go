package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolated case: median of an even-length slice.
	if got := Percentile([]float64{1, 2, 3, 4}, 0.5); !almost(got, 2.5) {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Percentile(nil, 0.5)
}

func TestQuartilesSummary(t *testing.T) {
	s := Quartiles([]float64{10, 20, 30, 40, 50})
	if !almost(s.Q1, 20) || !almost(s.Q2, 30) || !almost(s.Q3, 40) {
		t.Errorf("Quartiles = %+v", s)
	}
	if got := s.String(); got != "20/30/40" {
		t.Errorf("String = %q", got)
	}
	sc := s.Scale(2)
	if !almost(sc.Q2, 60) {
		t.Errorf("Scale = %+v", sc)
	}
}

// Property: quartiles are ordered and bounded by the sample extremes.
func TestQuartilesProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		q := Quartiles(xs)
		return q.Q1 <= q.Q2 && q.Q2 <= q.Q3 && q.Q1 >= lo && q.Q3 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{0, 0, 9, 0, 0}
	out := MovingAverage(xs, 1)
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if !almost(out[i], want[i]) {
			t.Fatalf("MovingAverage = %v, want %v", out, want)
		}
	}
	// k=0 copies.
	same := MovingAverage(xs, 0)
	same[0] = 99
	if xs[0] == 99 {
		t.Error("k=0 moving average aliases input")
	}
}

func TestSeriesMeanRange(t *testing.T) {
	s := NewSeries(1, 10)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	if got := s.MeanRange(2, 4); !almost(got, 2.5) {
		t.Errorf("MeanRange(2,4) = %v", got)
	}
	if got := s.MeanRange(-5, 100); !almost(got, 4.5) {
		t.Errorf("clamped MeanRange = %v", got)
	}
	if got := s.MeanRange(5, 5); got != 0 {
		t.Errorf("empty MeanRange = %v", got)
	}
}

func TestSettlingTimeStep(t *testing.T) {
	// Ramp for 20 windows, then steady at 10.
	s := NewSeries(1, 100)
	for i := range s.Values {
		switch {
		case i < 20:
			s.Values[i] = float64(i) / 2
		default:
			s.Values[i] = 10
		}
	}
	ms, ok := SettlingTime(s, 0, 100, DefaultSettleParams())
	if !ok {
		t.Fatal("step series did not settle")
	}
	if ms < 10 || ms > 30 {
		t.Errorf("settling time = %v ms, want ~20 (ramp end)", ms)
	}
}

func TestSettlingTimeImmediate(t *testing.T) {
	s := NewSeries(1, 50)
	for i := range s.Values {
		s.Values[i] = 6.5
	}
	ms, ok := SettlingTime(s, 0, 50, DefaultSettleParams())
	if !ok || ms != 0 {
		t.Errorf("flat series settling = %v,%v, want 0,true", ms, ok)
	}
}

func TestSettlingTimeNoisyButSettled(t *testing.T) {
	s := NewSeries(1, 200)
	for i := range s.Values {
		base := 10.0
		if i < 50 {
			base = float64(i) / 5
		}
		// Deterministic +-0.5 noise.
		noise := 0.5 * float64((i%3)-1)
		s.Values[i] = base + noise
	}
	ms, ok := SettlingTime(s, 0, 200, DefaultSettleParams())
	if !ok {
		t.Fatal("noisy series did not settle")
	}
	if ms < 30 || ms > 70 {
		t.Errorf("settling = %v, want near 50", ms)
	}
}

func TestSettlingSegmentOffset(t *testing.T) {
	// Recovery-style detection: drop at window 100, recovery by 130.
	s := NewSeries(1, 200)
	for i := range s.Values {
		switch {
		case i < 100:
			s.Values[i] = 10
		case i < 130:
			s.Values[i] = 10 - float64(130-i)/6
		default:
			s.Values[i] = 9
		}
	}
	ms, ok := SettlingTime(s, 100, 200, DefaultSettleParams())
	if !ok {
		t.Fatal("recovery segment did not settle")
	}
	if ms < 15 || ms > 45 {
		t.Errorf("recovery time = %v ms, want ~30", ms)
	}
}

func TestSettlingNeverSettles(t *testing.T) {
	// A series that oscillates hugely right to the end.
	s := NewSeries(1, 100)
	for i := range s.Values {
		if i%2 == 0 {
			s.Values[i] = 0
		} else {
			s.Values[i] = 100
		}
	}
	par := DefaultSettleParams()
	par.Smooth = 0
	_, ok := SettlingTime(s, 0, 100, par)
	if ok {
		t.Error("wild oscillation reported as settled")
	}
}

func TestSettlingDegenerateSegment(t *testing.T) {
	s := NewSeries(1, 10)
	if _, ok := SettlingTime(s, 9, 10, DefaultSettleParams()); ok {
		t.Error("single-window segment settled")
	}
	if _, ok := SettlingTime(s, 8, 3, DefaultSettleParams()); ok {
		t.Error("inverted segment settled")
	}
}

// Property: settling time is always within the segment bounds.
func TestSettlingBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		s := NewSeries(1, len(raw))
		for i, r := range raw {
			s.Values[i] = float64(r)
		}
		ms, _ := SettlingTime(s, 0, s.Len(), DefaultSettleParams())
		return ms >= 0 && ms <= float64(s.Len())*s.WindowMs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
