// Package metrics provides the measurement machinery of the experiment
// harness: windowed time series, quartile summaries, and the settling- and
// recovery-time detectors used to reproduce the paper's Tables I and II.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Series is a fixed-window time series: Values[i] is the metric aggregated
// over window i, each WindowMs milliseconds long.
type Series struct {
	WindowMs float64
	Values   []float64
}

// NewSeries allocates a series of n windows.
func NewSeries(windowMs float64, n int) *Series {
	return &Series{WindowMs: windowMs, Values: make([]float64, n)}
}

// SeriesPool recycles Series values between runs: a sweep executing
// thousands of runs reuses a handful of window buffers instead of
// allocating three per run. The zero value is ready to use; it is safe for
// concurrent use (RunMany workers share one pool).
type SeriesPool struct{ pool sync.Pool }

// Get returns a zeroed series of n windows, reusing a recycled one's buffer
// when capacity allows.
func (sp *SeriesPool) Get(windowMs float64, n int) *Series {
	v := sp.pool.Get()
	if v == nil {
		return NewSeries(windowMs, n)
	}
	s := v.(*Series)
	s.WindowMs = windowMs
	if cap(s.Values) < n {
		s.Values = make([]float64, n)
		return s
	}
	s.Values = s.Values[:n]
	for i := range s.Values {
		s.Values[i] = 0
	}
	return s
}

// Put recycles a series whose readers are done with it; the series (and its
// Values slice) must not be used afterwards. nil is ignored.
func (sp *SeriesPool) Put(s *Series) {
	if s == nil {
		return
	}
	sp.pool.Put(s)
}

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Values) }

// MeanRange returns the mean of Values[from:to) (clamped to valid bounds);
// it returns 0 for an empty range.
func (s *Series) MeanRange(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// Smoothed returns a centred moving average with half-width k.
func (s *Series) Smoothed(k int) []float64 {
	return MovingAverage(s.Values, k)
}

// MovingAverage returns the centred moving average of xs with half-width k
// (window 2k+1, truncated at the edges).
func MovingAverage(xs []float64, k int) []float64 {
	return MovingAverageInto(nil, xs, k)
}

// MovingAverageInto is MovingAverage writing into dst (grown as needed and
// returned), so callers with a reusable scratch buffer avoid the per-call
// allocation. dst must not alias xs.
func MovingAverageInto(dst, xs []float64, k int) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	out := dst[:len(xs)]
	if k <= 0 {
		copy(out, xs)
		return out
	}
	for i := range xs {
		lo, hi := i-k, i+k+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		sum := 0.0
		for _, v := range xs[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, v := range xs {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// MeanCI returns the mean of xs and the half-width of its 95% confidence
// interval under the normal approximation (1.96·s/√n). The half-width is 0
// for fewer than two samples.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) >= 2 {
		halfWidth = 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
	}
	return mean, halfWidth
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (the R-7 method used by most
// statistics packages). It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: percentile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Summary holds the quartiles the paper reports (Q1/Q2/Q3 = 25th, 50th,
// 75th percentiles).
type Summary struct {
	Q1, Q2, Q3 float64
}

// Quartiles returns the three quartiles of xs.
func Quartiles(xs []float64) Summary {
	return Summary{
		Q1: Percentile(xs, 0.25),
		Q2: Percentile(xs, 0.50),
		Q3: Percentile(xs, 0.75),
	}
}

// Scale returns the summary with every quartile multiplied by f.
func (s Summary) Scale(f float64) Summary {
	return Summary{Q1: s.Q1 * f, Q2: s.Q2 * f, Q3: s.Q3 * f}
}

// String renders "Q1/Q2/Q3" rounded to integers.
func (s Summary) String() string {
	return fmt.Sprintf("%.0f/%.0f/%.0f", s.Q1, s.Q2, s.Q3)
}
