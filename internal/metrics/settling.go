package metrics

import "sync"

// smoothScratch recycles the smoothing buffer SettlingTime needs per call:
// the detector runs twice per experiment run (settling + recovery), so
// sweeps with thousands of runs would otherwise allocate a window-sized
// slice each time.
var smoothScratch = sync.Pool{New: func() any { return new([]float64) }}

// SettleParams tune the settling/recovery detector.
type SettleParams struct {
	// Smooth is the moving-average half-width applied before detection
	// (completions arrive in bursts; the paper's plots are visibly noisy).
	Smooth int
	// Tol is the relative tolerance band around the steady-state level.
	Tol float64
	// AbsTol is the absolute tolerance floor (completions per window), so
	// near-zero steady states do not demand impossible precision.
	AbsTol float64
	// SteadyFrac is the fraction of the segment tail used to estimate the
	// steady-state level.
	SteadyFrac float64
}

// DefaultSettleParams mirror the detector used for Tables I and II.
func DefaultSettleParams() SettleParams {
	return SettleParams{
		Smooth:     5,
		Tol:        0.12,
		AbsTol:     0.75,
		SteadyFrac: 0.25,
	}
}

// SettlingTime finds when the series segment [from, to) settles: the first
// window index i such that the smoothed series stays inside the tolerance
// band around the segment's steady-state level for the remainder of the
// segment. It returns the settling time in milliseconds relative to the
// segment start, and ok=false when the segment never settles.
//
// This is the detector behind both Table I ("settling time" from t=0) and
// Table II ("recovery time" from the fault-injection window).
func SettlingTime(s *Series, from, to int, par SettleParams) (ms float64, ok bool) {
	if from < 0 {
		from = 0
	}
	if to > s.Len() {
		to = s.Len()
	}
	if to-from < 2 {
		return 0, false
	}
	scratch := smoothScratch.Get().(*[]float64)
	defer func() {
		smoothScratch.Put(scratch)
	}()
	smooth := MovingAverageInto(*scratch, s.Values[from:to], par.Smooth)
	*scratch = smooth[:0]

	// Steady-state level: mean of the tail of the segment.
	tail := int(float64(len(smooth)) * par.SteadyFrac)
	if tail < 1 {
		tail = 1
	}
	steady := Mean(smooth[len(smooth)-tail:])

	band := par.Tol * steady
	if band < par.AbsTol {
		band = par.AbsTol
	}

	// Walk backwards: find the last excursion outside the band; settling is
	// the window right after it.
	settleIdx := 0
	for i := len(smooth) - 1; i >= 0; i-- {
		d := smooth[i] - steady
		if d < 0 {
			d = -d
		}
		if d > band {
			settleIdx = i + 1
			break
		}
	}
	if settleIdx >= len(smooth) {
		// The series never entered the band — it never settled.
		return float64(len(smooth)) * s.WindowMs, false
	}
	return float64(settleIdx) * s.WindowMs, true
}
