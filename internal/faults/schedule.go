package faults

import (
	"fmt"
	"sort"
	"strings"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

// seedSalt decorrelates the fault stream from every other seeded stream in
// the system. It is the exact salt the legacy single-instant path used, and
// the death profile draws its node set first — so a death schedule is
// bit-identical to the historical `fault_at` injection.
const seedSalt = 0xfa17517e5eed

// Op identifies one kind of scheduled fault event.
type Op uint8

const (
	// OpKill takes a set of nodes off the fabric permanently (until an
	// OpRevive names them) — the paper's node-death model.
	OpKill Op = iota
	// OpRevive returns downed nodes to service: routes recompute, the
	// directory re-registers them as idle recruits.
	OpRevive
	// OpLinkDown marks one endpoint of a link unhealthy; schedules emit
	// both endpoints together so the cut is symmetric.
	OpLinkDown
	// OpLinkUp heals a link endpoint.
	OpLinkUp
	// OpByzantine arms a router to misroute, drop or duplicate forwarded
	// packets at a seeded rate.
	OpByzantine
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpRevive:
		return "revive"
	case OpLinkDown:
		return "link-down"
	case OpLinkUp:
		return "link-up"
	case OpByzantine:
		return "byzantine"
	}
	return "unknown"
}

// Event is one entry of a fault timeline. Which fields matter depends on
// the op: kills and revives carry a node set (in draw order — the order the
// platform applies them), link events carry one (router, port) endpoint,
// byzantine events carry the arming rate, behaviour bits and private seed.
type Event struct {
	At    sim.Tick
	Op    Op
	Nodes []noc.NodeID
	Node  noc.NodeID
	Port  noc.Port
	Rate  uint32
	Modes uint8
	Seed  uint64
}

// Schedule is a seeded, deterministic fault timeline: events sorted by At,
// same-tick events in build order. The platform walks it once at run setup,
// scheduling each event on the simulation event queue — so every fault is a
// wake source and idle fast-forward stays exact.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule does nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// String summarises the schedule.
func (s Schedule) String() string {
	if s.Empty() {
		return "no faults"
	}
	return fmt.Sprintf("%d fault events over [%s, %s]",
		len(s.Events), s.Events[0].At, s.Events[len(s.Events)-1].At)
}

// Milestones returns the distinct ticks at which the schedule structurally
// disrupts the platform — kill waves, revivals and byzantine armings — in
// ascending order. Link flaps are excluded: they are continuous noise, not
// recovery epochs. The experiment harness measures re-settling per
// milestone.
func (s Schedule) Milestones() []sim.Tick {
	var out []sim.Tick
	seen := map[sim.Tick]bool{}
	for _, ev := range s.Events {
		switch ev.Op {
		case OpKill, OpRevive, OpByzantine:
			if !seen[ev.At] {
				seen[ev.At] = true
				out = append(out, ev.At)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Profile kinds.
const (
	KindDeath     = "death"     // one permanent kill wave (legacy behaviour)
	KindChurn     = "churn"     // kill wave + revival after a dwell
	KindFlaky     = "flaky"     // links with seeded on/off duty cycles
	KindCascade   = "cascade"   // distance-correlated follow-on kill waves
	KindByzantine = "byzantine" // routers misroute/drop/duplicate at a rate
)

// byzantine behaviour names accepted in Profile.Modes.
var byzModeBits = map[string]uint8{
	"misroute": noc.ByzMisroute,
	"drop":     noc.ByzDrop,
	"dup":      noc.ByzDup,
}

// Profile is the declarative description a Schedule is built from. It is
// the canonical wire form: the server hashes the normalized profile into
// the spec key, so every field is an integer (no float canonicalisation
// hazards) and Normalized zeroes whatever a kind does not use.
type Profile struct {
	// Kind selects the scenario: death, churn, flaky, cascade or byzantine.
	Kind string `json:"kind"`
	// AtMs is when the scenario starts (default: half the run).
	AtMs int `json:"at_ms,omitempty"`
	// Nodes is the kill-wave size for death, churn and cascade.
	Nodes int `json:"nodes,omitempty"`
	// ReviveAfterMs is the churn dwell between death and rejoin.
	ReviveAfterMs int `json:"revive_after_ms,omitempty"`
	// Waves, WaveDelayMs, WaveRadius and WaveDecayPct shape a cascade:
	// each follow-on wave fires WaveDelayMs after the previous one, kills
	// WaveDecayPct percent of the previous wave's size, and draws only from
	// alive nodes within WaveRadius hops of the previous casualties.
	Waves        int `json:"waves,omitempty"`
	WaveDelayMs  int `json:"wave_delay_ms,omitempty"`
	WaveRadius   int `json:"wave_radius,omitempty"`
	WaveDecayPct int `json:"wave_decay_pct,omitempty"`
	// Links, PeriodMs and DutyPct shape flakiness: Links random links each
	// flap with period PeriodMs, down for DutyPct percent of it, at a
	// seeded per-link phase.
	Links    int `json:"links,omitempty"`
	PeriodMs int `json:"period_ms,omitempty"`
	DutyPct  int `json:"duty_pct,omitempty"`
	// Routers, RatePct and Modes shape byzantine behaviour: Routers random
	// routers interfere with RatePct percent of forwards using the named
	// behaviours ("misroute", "drop", "dup", comma-separated).
	Routers int    `json:"routers,omitempty"`
	RatePct int    `json:"rate_pct,omitempty"`
	Modes   string `json:"modes,omitempty"`
}

// Normalized validates the profile against a run length and returns the
// canonical form: defaults resolved, fields the kind does not use zeroed
// (so an inert field cannot split the result-cache key), mode list sorted.
func (p Profile) Normalized(durationMs int) (Profile, error) {
	if durationMs <= 0 {
		return Profile{}, fmt.Errorf("faults: non-positive run length %d ms", durationMs)
	}
	out := Profile{Kind: p.Kind, AtMs: p.AtMs}
	if out.AtMs == 0 {
		out.AtMs = durationMs / 2
	}
	if out.AtMs <= 0 || out.AtMs >= durationMs {
		return Profile{}, fmt.Errorf("faults: at_ms %d outside (0, %d)", out.AtMs, durationMs)
	}
	switch p.Kind {
	case KindDeath:
		out.Nodes = defaultInt(p.Nodes, 12)
	case KindChurn:
		out.Nodes = defaultInt(p.Nodes, 12)
		out.ReviveAfterMs = defaultInt(p.ReviveAfterMs, 200)
		if out.ReviveAfterMs <= 0 {
			return Profile{}, fmt.Errorf("faults: churn revive_after_ms %d must be positive", p.ReviveAfterMs)
		}
		if out.AtMs+out.ReviveAfterMs >= durationMs {
			return Profile{}, fmt.Errorf("faults: churn revival at %d ms lands outside the %d ms run",
				out.AtMs+out.ReviveAfterMs, durationMs)
		}
	case KindCascade:
		out.Nodes = defaultInt(p.Nodes, 4)
		out.Waves = defaultInt(p.Waves, 3)
		out.WaveDelayMs = defaultInt(p.WaveDelayMs, 100)
		out.WaveRadius = defaultInt(p.WaveRadius, 2)
		out.WaveDecayPct = defaultInt(p.WaveDecayPct, 50)
		if out.Waves < 0 || out.WaveDelayMs <= 0 || out.WaveRadius <= 0 ||
			out.WaveDecayPct <= 0 || out.WaveDecayPct > 100 {
			return Profile{}, fmt.Errorf("faults: invalid cascade shape %+v", p)
		}
	case KindFlaky:
		out.Links = defaultInt(p.Links, 8)
		out.PeriodMs = defaultInt(p.PeriodMs, 40)
		out.DutyPct = defaultInt(p.DutyPct, 50)
		if out.Links <= 0 || out.PeriodMs < 2 {
			return Profile{}, fmt.Errorf("faults: invalid flaky shape %+v", p)
		}
		if out.DutyPct < 1 || out.DutyPct > 99 {
			return Profile{}, fmt.Errorf("faults: flaky duty_pct %d outside [1, 99]", out.DutyPct)
		}
	case KindByzantine:
		out.Routers = defaultInt(p.Routers, 4)
		out.RatePct = defaultInt(p.RatePct, 25)
		out.Modes = p.Modes
		if out.Modes == "" {
			out.Modes = "misroute"
		}
		if out.Routers <= 0 || out.RatePct < 1 || out.RatePct > 100 {
			return Profile{}, fmt.Errorf("faults: invalid byzantine shape %+v", p)
		}
		if _, err := parseByzModes(out.Modes); err != nil {
			return Profile{}, err
		}
		out.Modes = canonicalByzModes(out.Modes)
	default:
		return Profile{}, fmt.Errorf("faults: unknown profile kind %q", p.Kind)
	}
	if out.Nodes < 0 {
		return Profile{}, fmt.Errorf("faults: negative node count %d", out.Nodes)
	}
	return out, nil
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// parseByzModes turns a comma-separated behaviour list into bits.
func parseByzModes(s string) (uint8, error) {
	var m uint8
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bit, ok := byzModeBits[name]
		if !ok {
			return 0, fmt.Errorf("faults: unknown byzantine mode %q (want misroute, drop or dup)", name)
		}
		m |= bit
	}
	if m == 0 {
		return 0, fmt.Errorf("faults: empty byzantine mode list")
	}
	return m, nil
}

// canonicalByzModes re-renders a valid mode list in bit order so equivalent
// lists hash identically.
func canonicalByzModes(s string) string {
	bits, _ := parseByzModes(s)
	var names []string
	for _, name := range []string{"misroute", "drop", "dup"} {
		if bits&byzModeBits[name] != 0 {
			names = append(names, name)
		}
	}
	return strings.Join(names, ",")
}

// Build compiles a profile into a concrete fault timeline for one
// (topology, seed) pair. Build is a pure function: the same inputs yield a
// byte-identical schedule every time — nothing is drawn at execution time,
// so pooled platform reuse and Reset replay the exact same events.
//
// The fault RNG is seeded with the legacy salt and, for the death kind,
// spent on exactly the legacy draw sequence — a death schedule reproduces
// the historical single-instant injection bit for bit.
func Build(topo noc.Topology, seed uint64, p Profile, durationMs int) (Schedule, error) {
	p, err := p.Normalized(durationMs)
	if err != nil {
		return Schedule{}, err
	}
	if p.Nodes > topo.Nodes() {
		return Schedule{}, fmt.Errorf("faults: profile kills %d of %d nodes", p.Nodes, topo.Nodes())
	}
	rng := sim.NewRNG(seed ^ seedSalt)
	var s Schedule
	switch p.Kind {
	case KindDeath:
		s.Events = append(s.Events, Event{
			At: sim.Ms(float64(p.AtMs)), Op: OpKill,
			Nodes: RandomNodes(topo, p.Nodes, rng),
		})
	case KindChurn:
		nodes := RandomNodes(topo, p.Nodes, rng)
		s.Events = append(s.Events,
			Event{At: sim.Ms(float64(p.AtMs)), Op: OpKill, Nodes: nodes},
			Event{At: sim.Ms(float64(p.AtMs + p.ReviveAfterMs)), Op: OpRevive, Nodes: nodes})
	case KindCascade:
		buildCascade(topo, rng, p, durationMs, &s)
	case KindFlaky:
		buildFlaky(topo, rng, p, durationMs, &s)
	case KindByzantine:
		buildByzantine(topo, rng, p, &s)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s, nil
}

// buildCascade emits the seed kill wave and its distance-correlated
// follow-on waves. Everything is drawn at build time against a simulated
// alive set, so the timeline is fixed before the run starts.
func buildCascade(topo noc.Topology, rng *sim.RNG, p Profile, durationMs int, s *Schedule) {
	dead := make([]bool, topo.Nodes())
	prev := RandomNodes(topo, p.Nodes, rng)
	for _, id := range prev {
		dead[id] = true
	}
	s.Events = append(s.Events, Event{At: sim.Ms(float64(p.AtMs)), Op: OpKill, Nodes: prev})
	size := len(prev)
	for w := 1; w <= p.Waves; w++ {
		atMs := p.AtMs + w*p.WaveDelayMs
		if atMs >= durationMs {
			break
		}
		size = size * p.WaveDecayPct / 100
		if size == 0 {
			break
		}
		// Candidates: alive nodes within the blast radius of the previous
		// wave, in ascending ID order so the draw is order-stable.
		var cand []noc.NodeID
		for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
			if dead[id] {
				continue
			}
			for _, c := range prev {
				if topo.Distance(c, id) <= p.WaveRadius {
					cand = append(cand, id)
					break
				}
			}
		}
		if len(cand) == 0 {
			break
		}
		if size > len(cand) {
			size = len(cand)
		}
		perm := rng.Perm(len(cand))
		wave := make([]noc.NodeID, size)
		for i := 0; i < size; i++ {
			wave[i] = cand[perm[i]]
			dead[wave[i]] = true
		}
		s.Events = append(s.Events, Event{At: sim.Ms(float64(atMs)), Op: OpKill, Nodes: wave})
		prev = wave
	}
}

// link is one undirected physical link, named by its lower-ID endpoint.
type link struct {
	a, b noc.NodeID
	ap   noc.Port // the port at a that faces b
}

// physicalLinks enumerates every router-to-router link exactly once, in
// ascending (router, port) order: East and South from each physical router
// cover horizontal and vertical pairs including torus wrap-arounds.
func physicalLinks(topo noc.Topology) []link {
	var out []link
	seen := map[[2]noc.NodeID]bool{}
	for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
		if topo.RouterOf(id) != id {
			continue
		}
		for p := noc.North; p <= noc.West; p++ {
			nb, ok := topo.Neighbor(id, p)
			if !ok {
				continue
			}
			r := topo.RouterOf(nb)
			key := [2]noc.NodeID{id, r}
			if id > r {
				key[0], key[1] = r, id
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, link{a: id, b: r, ap: p})
		}
	}
	return out
}

// buildFlaky picks Links random links and emits their full on/off timeline:
// each link flaps with period PeriodMs, down for DutyPct percent of it,
// offset by a seeded per-link phase. Both endpoints toggle in the same
// event-queue tick so the cut is always symmetric.
func buildFlaky(topo noc.Topology, rng *sim.RNG, p Profile, durationMs int, s *Schedule) {
	links := physicalLinks(topo)
	k := p.Links
	if k > len(links) {
		k = len(links)
	}
	perm := rng.Perm(len(links))
	downMs := p.PeriodMs * p.DutyPct / 100
	if downMs < 1 {
		downMs = 1
	}
	for i := 0; i < k; i++ {
		l := links[perm[i]]
		phase := rng.Intn(p.PeriodMs)
		for t := p.AtMs + phase; t < durationMs; t += p.PeriodMs {
			s.Events = append(s.Events,
				Event{At: sim.Ms(float64(t)), Op: OpLinkDown, Node: l.a, Port: l.ap},
				Event{At: sim.Ms(float64(t)), Op: OpLinkDown, Node: l.b, Port: l.ap.Opposite()})
			if up := t + downMs; up < durationMs {
				s.Events = append(s.Events,
					Event{At: sim.Ms(float64(up)), Op: OpLinkUp, Node: l.a, Port: l.ap},
					Event{At: sim.Ms(float64(up)), Op: OpLinkUp, Node: l.b, Port: l.ap.Opposite()})
			}
		}
	}
}

// buildByzantine arms Routers random physical routers at AtMs. Each gets a
// private seed drawn here, so per-router interference streams are
// decorrelated but fully reproducible.
func buildByzantine(topo noc.Topology, rng *sim.RNG, p Profile, s *Schedule) {
	var routers []noc.NodeID
	for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
		if topo.RouterOf(id) == id {
			routers = append(routers, id)
		}
	}
	k := p.Routers
	if k > len(routers) {
		k = len(routers)
	}
	modes, _ := parseByzModes(p.Modes)
	rate := uint32(uint64(p.RatePct) * (1 << 32) / 100)
	if p.RatePct >= 100 {
		rate = ^uint32(0)
	}
	perm := rng.Perm(len(routers))
	for i := 0; i < k; i++ {
		s.Events = append(s.Events, Event{
			At: sim.Ms(float64(p.AtMs)), Op: OpByzantine,
			Node: routers[perm[i]], Rate: rate, Modes: modes, Seed: rng.Uint64(),
		})
	}
}
