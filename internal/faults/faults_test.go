package faults

import (
	"testing"
	"testing/quick"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

func TestRandomNodesDistinct(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	for _, k := range []int{0, 1, 5, 42, 128} {
		got := RandomNodes(topo, k, sim.NewRNG(uint64(k)))
		if len(got) != k {
			t.Fatalf("k=%d: got %d nodes", k, len(got))
		}
		seen := map[noc.NodeID]bool{}
		for _, id := range got {
			if seen[id] || int(id) >= topo.Nodes() || id < 0 {
				t.Fatalf("k=%d: invalid or duplicate node %d", k, id)
			}
			seen[id] = true
		}
	}
}

func TestRandomNodesPanicsOnExcess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k > nodes")
		}
	}()
	RandomNodes(noc.NewTopology(2, 2), 5, sim.NewRNG(1))
}

func TestRandomNodesSeedVariation(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	a := RandomNodes(topo, 10, sim.NewRNG(1))
	b := RandomNodes(topo, 10, sim.NewRNG(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked identical fault sets")
	}
}

func TestRegionByTopologyDistance(t *testing.T) {
	mesh := noc.NewTopology(4, 4)
	center := mesh.ID(noc.Coord{X: 0, Y: 0})
	// Radius 1 around the mesh corner: the corner plus its two neighbours.
	if got := Region(mesh, center, 1); len(got) != 3 {
		t.Fatalf("mesh corner ball has %d nodes, want 3: %v", len(got), got)
	}
	// The same epicentre on a torus wraps: corner + four ring neighbours.
	torus := noc.NewTorus(4, 4)
	if got := Region(torus, center, 1); len(got) != 5 {
		t.Fatalf("torus corner ball has %d nodes, want 5: %v", len(got), got)
	}
	// On a concentrated mesh, radius 0 takes out the epicentre's whole
	// cluster (distance is measured between shared routers).
	cmesh := noc.NewCMesh(4, 4)
	if got := Region(cmesh, center, 0); len(got) != 4 {
		t.Fatalf("cmesh cluster ball has %d nodes, want 4: %v", len(got), got)
	}
	// Every selected node really is within the radius, in ascending order.
	for _, topo := range []noc.Topology{mesh, torus, cmesh} {
		got := Region(topo, center, 2)
		for i, id := range got {
			if topo.Distance(center, id) > 2 {
				t.Errorf("%s: node %d outside radius", topo, id)
			}
			if i > 0 && got[i-1] >= id {
				t.Errorf("%s: selection not in ascending order", topo)
			}
		}
	}
}

// Region selection must be deterministic: the same seed draws the same
// epicentre, and the ball around it is a pure function of the topology.
func TestRandomRegionSeededDeterminism(t *testing.T) {
	for _, topo := range []noc.Topology{
		noc.NewTopology(16, 8), noc.NewTorus(16, 8), noc.NewCMesh(16, 8),
	} {
		for seed := uint64(1); seed <= 5; seed++ {
			a := RandomRegion(topo, 2, sim.NewRNG(seed))
			b := RandomRegion(topo, 2, sim.NewRNG(seed))
			if len(a) == 0 {
				t.Fatalf("%s seed %d: empty region", topo, seed)
			}
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: lengths differ (%d vs %d)", topo, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s seed %d: node %d differs (%d vs %d)", topo, seed, i, a[i], b[i])
				}
			}
		}
		// Different seeds should (typically) pick different epicentres.
		a := RandomRegion(topo, 1, sim.NewRNG(1))
		b := RandomRegion(topo, 1, sim.NewRNG(99))
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 99 drew identical regions", topo)
		}
	}
}

func TestColumnRowHalf(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	if got := Column(topo, 3); len(got) != 8 {
		t.Errorf("Column = %d nodes, want 8", len(got))
	}
	if got := Row(topo, 0); len(got) != 16 {
		t.Errorf("Row = %d nodes, want 16", len(got))
	}
	if got := HalfGrid(topo); len(got) != 64 {
		t.Errorf("HalfGrid = %d nodes, want 64", len(got))
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{At: sim.Ms(500), Nodes: []noc.NodeID{1, 2, 3}}
	if p.Empty() {
		t.Error("non-empty plan reported Empty")
	}
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
}

// Property: RandomNodes(k) always returns k distinct in-bounds nodes.
func TestRandomNodesProperty(t *testing.T) {
	topo := noc.NewTopology(8, 8)
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw) % (topo.Nodes() + 1)
		got := RandomNodes(topo, k, sim.NewRNG(seed))
		seen := map[noc.NodeID]bool{}
		for _, id := range got {
			if id < 0 || int(id) >= topo.Nodes() || seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(got) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
