package faults

import (
	"testing"
	"testing/quick"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

func TestRandomNodesDistinct(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	for _, k := range []int{0, 1, 5, 42, 128} {
		got := RandomNodes(topo, k, sim.NewRNG(uint64(k)))
		if len(got) != k {
			t.Fatalf("k=%d: got %d nodes", k, len(got))
		}
		seen := map[noc.NodeID]bool{}
		for _, id := range got {
			if seen[id] || int(id) >= topo.Nodes() || id < 0 {
				t.Fatalf("k=%d: invalid or duplicate node %d", k, id)
			}
			seen[id] = true
		}
	}
}

func TestRandomNodesPanicsOnExcess(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k > nodes")
		}
	}()
	RandomNodes(noc.NewTopology(2, 2), 5, sim.NewRNG(1))
}

func TestRandomNodesSeedVariation(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	a := RandomNodes(topo, 10, sim.NewRNG(1))
	b := RandomNodes(topo, 10, sim.NewRNG(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds picked identical fault sets")
	}
}

func TestRegionClipping(t *testing.T) {
	topo := noc.NewTopology(4, 4)
	got := Region(topo, 2, 2, 5, 5) // clips to 2x2 corner
	if len(got) != 4 {
		t.Fatalf("clipped region has %d nodes, want 4", len(got))
	}
}

func TestColumnRowHalf(t *testing.T) {
	topo := noc.NewTopology(16, 8)
	if got := Column(topo, 3); len(got) != 8 {
		t.Errorf("Column = %d nodes, want 8", len(got))
	}
	if got := Row(topo, 0); len(got) != 16 {
		t.Errorf("Row = %d nodes, want 16", len(got))
	}
	if got := HalfGrid(topo); len(got) != 64 {
		t.Errorf("HalfGrid = %d nodes, want 64", len(got))
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{At: sim.Ms(500), Nodes: []noc.NodeID{1, 2, 3}}
	if p.Empty() {
		t.Error("non-empty plan reported Empty")
	}
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
	if !(Plan{}).Empty() {
		t.Error("zero plan not Empty")
	}
}

// Property: RandomNodes(k) always returns k distinct in-bounds nodes.
func TestRandomNodesProperty(t *testing.T) {
	topo := noc.NewTopology(8, 8)
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw) % (topo.Nodes() + 1)
		got := RandomNodes(topo, k, sim.NewRNG(seed))
		seen := map[noc.NodeID]bool{}
		for _, id := range got {
			if id < 0 || int(id) >= topo.Nodes() || seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(got) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
