package faults

import (
	"reflect"
	"testing"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

// scheduleTopos is the fabric matrix every schedule property is proved on.
func scheduleTopos(t *testing.T) map[string]noc.Topology {
	t.Helper()
	out := map[string]noc.Topology{}
	for _, kind := range []string{"mesh", "torus", "cmesh"} {
		topo, err := noc.MakeTopology(kind, 16, 8)
		if err != nil {
			t.Fatalf("building %s: %v", kind, err)
		}
		out[kind] = topo
	}
	return out
}

// hostileProfiles is one representative profile per kind, with non-default
// knobs so the builders' full parameter paths are exercised.
func hostileProfiles() []Profile {
	return []Profile{
		{Kind: KindDeath, AtMs: 50, Nodes: 12},
		{Kind: KindChurn, AtMs: 40, Nodes: 10, ReviveAfterMs: 60},
		{Kind: KindCascade, AtMs: 30, Nodes: 6, Waves: 4, WaveDelayMs: 25, WaveRadius: 3, WaveDecayPct: 60},
		{Kind: KindFlaky, AtMs: 20, Links: 10, PeriodMs: 30, DutyPct: 40},
		{Kind: KindByzantine, AtMs: 25, Routers: 6, RatePct: 35, Modes: "dup,misroute,drop"},
	}
}

// TestScheduleBuildDeterministic is the satellite property: for any
// (topology, seed, profile) the built schedule is byte-for-byte identical
// across repeated fresh constructions, on every fabric shape. Build is a
// pure function — platform Reset and pool reuse rebuild from the same
// inputs, so this is the whole determinism contract at the schedule layer
// (the platform-level halves are proved in internal/centurion).
func TestScheduleBuildDeterministic(t *testing.T) {
	const durationMs = 200
	for kind, topo := range scheduleTopos(t) {
		for _, prof := range hostileProfiles() {
			for seed := uint64(1); seed <= 3; seed++ {
				ref, err := Build(topo, seed, prof, durationMs)
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: %v", kind, prof.Kind, seed, err)
				}
				if ref.Empty() {
					t.Fatalf("%s/%s/seed=%d: empty schedule", kind, prof.Kind, seed)
				}
				for i := 0; i < 4; i++ {
					again, err := Build(topo, seed, prof, durationMs)
					if err != nil {
						t.Fatalf("%s/%s/seed=%d rebuild %d: %v", kind, prof.Kind, seed, i, err)
					}
					if !reflect.DeepEqual(ref, again) {
						t.Fatalf("%s/%s/seed=%d rebuild %d diverged:\n ref:   %+v\n again: %+v",
							kind, prof.Kind, seed, i, ref, again)
					}
				}
				for i, ev := range ref.Events {
					if i > 0 && ev.At < ref.Events[i-1].At {
						t.Fatalf("%s/%s/seed=%d: events out of order at %d", kind, prof.Kind, seed, i)
					}
					if ev.At <= 0 || ev.At >= sim.Ms(durationMs) {
						t.Fatalf("%s/%s/seed=%d: event %d at %v outside (0, %v)",
							kind, prof.Kind, seed, i, ev.At, sim.Ms(durationMs))
					}
				}
			}
		}
	}
}

// TestScheduleSeedsAndTopologiesDiffer guards against a degenerate builder:
// different seeds (and different fabrics) must not produce the same
// timeline for kinds that draw node or link sets.
func TestScheduleSeedsAndTopologiesDiffer(t *testing.T) {
	topo, _ := noc.MakeTopology("mesh", 16, 8)
	prof := Profile{Kind: KindCascade, AtMs: 30, Nodes: 6}
	a, _ := Build(topo, 1, prof, 200)
	b, _ := Build(topo, 2, prof, 200)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 built identical cascades")
	}
}

// TestScheduleDeathMatchesLegacyDraw pins the bit-identity anchor: a death
// schedule is exactly one kill event whose node set is the historical
// RandomNodes draw under the historical salt, at the historical tick.
func TestScheduleDeathMatchesLegacyDraw(t *testing.T) {
	for kind, topo := range scheduleTopos(t) {
		for seed := uint64(1); seed <= 3; seed++ {
			s, err := Build(topo, seed, Profile{Kind: KindDeath, AtMs: 500, Nodes: 12}, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Events) != 1 || s.Events[0].Op != OpKill {
				t.Fatalf("%s: death schedule is %s, want one kill", kind, s)
			}
			legacy := RandomNodes(topo, 12, sim.NewRNG(seed^0xfa17517e5eed))
			if !reflect.DeepEqual(s.Events[0].Nodes, legacy) {
				t.Fatalf("%s/seed=%d: death wave %v != legacy draw %v", kind, seed, s.Events[0].Nodes, legacy)
			}
			if s.Events[0].At != sim.Ms(500) {
				t.Fatalf("%s: kill at %v, want %v", kind, s.Events[0].At, sim.Ms(500))
			}
		}
	}
}

// TestScheduleFlakySymmetricCuts checks the link-flap invariant: every
// down/up toggles both endpoints of the physical link in the same tick, so
// the fabric never sees a half-cut channel.
func TestScheduleFlakySymmetricCuts(t *testing.T) {
	for kind, topo := range scheduleTopos(t) {
		s, err := Build(topo, 7, Profile{Kind: KindFlaky, AtMs: 20, Links: 6}, 200)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(s.Events); i++ {
			ev := s.Events[i]
			if ev.Op != OpLinkDown && ev.Op != OpLinkUp {
				t.Fatalf("%s: non-link event %v in flaky schedule", kind, ev.Op)
			}
			// Find the mirrored endpoint at the same tick.
			nb, ok := topo.Neighbor(ev.Node, ev.Port)
			if !ok {
				t.Fatalf("%s: link event on missing neighbor %d port %v", kind, ev.Node, ev.Port)
			}
			mirror := false
			for j := range s.Events {
				m := s.Events[j]
				if j != i && m.At == ev.At && m.Op == ev.Op &&
					m.Node == topo.RouterOf(nb) && m.Port == ev.Port.Opposite() {
					mirror = true
					break
				}
			}
			if !mirror {
				t.Fatalf("%s: event %d (%v node %d port %v) has no mirrored endpoint", kind, i, ev.Op, ev.Node, ev.Port)
			}
		}
	}
}

// TestProfileNormalizedCanonical checks the spec-key safety properties:
// normalization is idempotent, inert fields are zeroed (so they cannot
// split the result cache), and byzantine mode lists canonicalise.
func TestProfileNormalizedCanonical(t *testing.T) {
	// Inert fields: a death profile with flaky/byzantine knobs set must
	// normalize to the same canonical form as a bare one.
	dirty := Profile{Kind: KindDeath, Links: 5, PeriodMs: 10, Routers: 3, Modes: "drop"}
	clean := Profile{Kind: KindDeath}
	nd, err := dirty.Normalized(1000)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := clean.Normalized(1000)
	if err != nil {
		t.Fatal(err)
	}
	if nd != nc {
		t.Fatalf("inert fields survived normalization: %+v != %+v", nd, nc)
	}
	// Idempotency.
	again, err := nd.Normalized(1000)
	if err != nil || again != nd {
		t.Fatalf("normalization not idempotent: %+v -> %+v (%v)", nd, again, err)
	}
	// Mode-order canonicalisation.
	a, err := Profile{Kind: KindByzantine, Modes: "dup,misroute"}.Normalized(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile{Kind: KindByzantine, Modes: "misroute,dup"}.Normalized(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Modes != "misroute,dup" {
		t.Fatalf("mode lists did not canonicalise: %q vs %q", a.Modes, b.Modes)
	}
}

// TestProfileNormalizedRejects enumerates the validation failures the
// server relies on to 400 bad specs.
func TestProfileNormalizedRejects(t *testing.T) {
	bad := []Profile{
		{Kind: "meteor"},
		{Kind: KindDeath, AtMs: -5},
		{Kind: KindDeath, AtMs: 1000},
		{Kind: KindChurn, AtMs: 900, ReviveAfterMs: 200},
		{Kind: KindCascade, WaveDecayPct: 150},
		{Kind: KindFlaky, DutyPct: 100},
		{Kind: KindFlaky, PeriodMs: 1},
		{Kind: KindByzantine, RatePct: 101},
		{Kind: KindByzantine, Modes: "gossip"},
	}
	for _, p := range bad {
		if _, err := p.Normalized(1000); err == nil {
			t.Errorf("profile %+v validated, want error", p)
		}
	}
	if _, err := (Profile{Kind: KindDeath}).Normalized(0); err == nil {
		t.Error("zero run length validated")
	}
}
