// Package faults builds fault-injection plans for the Centurion platform.
//
// The paper injects node failures at 500 ms: small counts model local
// application faults, large counts (42 = one third of the 128 nodes) model
// the failure of a global clock buffer, other critical global circuitry, or
// a thermal event. Each plan names the nodes that die and when.
package faults

import (
	"fmt"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

// Plan is a scheduled set of node failures.
type Plan struct {
	At    sim.Tick
	Nodes []noc.NodeID
}

// Empty reports whether the plan kills no nodes.
func (p Plan) Empty() bool { return len(p.Nodes) == 0 }

// String summarises the plan.
func (p Plan) String() string {
	return fmt.Sprintf("%d faults at %s", len(p.Nodes), p.At)
}

// RandomNodes picks k distinct random nodes — the paper's multiple-node
// fault model. It panics if k exceeds the node count.
func RandomNodes(topo noc.Topology, k int, rng *sim.RNG) []noc.NodeID {
	if k < 0 || k > topo.Nodes() {
		panic(fmt.Sprintf("faults: cannot pick %d of %d nodes", k, topo.Nodes()))
	}
	perm := rng.Perm(topo.Nodes())
	out := make([]noc.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = noc.NodeID(perm[i])
	}
	return out
}

// Region kills every node in the rectangle [x0, x0+w) × [y0, y0+h),
// clipped to the mesh — a localised thermal hot-spot.
func Region(topo noc.Topology, x0, y0, w, h int) []noc.NodeID {
	var out []noc.NodeID
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			c := noc.Coord{X: x, Y: y}
			if topo.InBounds(c) {
				out = append(out, topo.ID(c))
			}
		}
	}
	return out
}

// Column kills a full mesh column — the shape of a failed clock spine or
// column buffer on the FPGA.
func Column(topo noc.Topology, x int) []noc.NodeID {
	return Region(topo, x, 0, 1, topo.H)
}

// Row kills a full mesh row.
func Row(topo noc.Topology, y int) []noc.NodeID {
	return Region(topo, 0, y, topo.W, 1)
}

// HalfGrid kills the right half of the mesh — the paper's "failure of a
// global clock buffer" scale of damage.
func HalfGrid(topo noc.Topology) []noc.NodeID {
	return Region(topo, topo.W/2, 0, topo.W-topo.W/2, topo.H)
}
