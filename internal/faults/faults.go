// Package faults builds fault-injection plans for the Centurion platform.
//
// The paper injects node failures at 500 ms: small counts model local
// application faults, large counts (42 = one third of the 128 nodes) model
// the failure of a global clock buffer, other critical global circuitry, or
// a thermal event. Each plan names the nodes that die and when.
//
// Selection is topology-aware: localized damage (Region) is "every node
// within a hop radius of an epicentre", which follows the fabric's own
// distance metric — a ball on the mesh, a wrap-around ball on a torus, a
// whole-cluster blast on a concentrated mesh — instead of assuming a
// rectangular coordinate grid.
package faults

import (
	"fmt"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

// Plan is a scheduled set of node failures.
type Plan struct {
	At    sim.Tick
	Nodes []noc.NodeID
}

// Empty reports whether the plan kills no nodes.
func (p Plan) Empty() bool { return len(p.Nodes) == 0 }

// String summarises the plan.
func (p Plan) String() string {
	return fmt.Sprintf("%d faults at %s", len(p.Nodes), p.At)
}

// RandomNodes picks k distinct random nodes — the paper's multiple-node
// fault model. The draw is fully determined by the RNG state, so the same
// seed yields the same fault set on every topology of the same node count.
// It panics if k exceeds the node count.
func RandomNodes(topo noc.Topology, k int, rng *sim.RNG) []noc.NodeID {
	if k < 0 || k > topo.Nodes() {
		panic(fmt.Sprintf("faults: cannot pick %d of %d nodes", k, topo.Nodes()))
	}
	perm := rng.Perm(topo.Nodes())
	out := make([]noc.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = noc.NodeID(perm[i])
	}
	return out
}

// Region kills every node within the given topology distance of the
// epicentre — a localised thermal hot-spot shaped by the fabric itself
// (wrap-aware on a torus, cluster-granular on a concentrated mesh). Nodes
// are returned in ascending ID order, so the selection is deterministic for
// a given (topology, center, radius).
func Region(topo noc.Topology, center noc.NodeID, radius int) []noc.NodeID {
	if center < 0 || int(center) >= topo.Nodes() {
		panic(fmt.Sprintf("faults: region centre %d outside %d-node fabric", center, topo.Nodes()))
	}
	var out []noc.NodeID
	for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
		if topo.Distance(center, id) <= radius {
			out = append(out, id)
		}
	}
	return out
}

// RandomRegion picks a random epicentre and returns its Region — the seeded
// localized-damage model. The epicentre draw consumes exactly one RNG value,
// so plans are reproducible per seed.
func RandomRegion(topo noc.Topology, radius int, rng *sim.RNG) []noc.NodeID {
	return Region(topo, noc.NodeID(rng.Intn(topo.Nodes())), radius)
}

// selectNodes returns every node whose grid coordinate satisfies the
// predicate, in ascending ID order.
func selectNodes(topo noc.Topology, pred func(noc.Coord) bool) []noc.NodeID {
	var out []noc.NodeID
	for id := noc.NodeID(0); int(id) < topo.Nodes(); id++ {
		if pred(topo.Coord(id)) {
			out = append(out, id)
		}
	}
	return out
}

// Column kills a full grid column — the shape of a failed clock spine or
// column buffer on the FPGA.
func Column(topo noc.Topology, x int) []noc.NodeID {
	return selectNodes(topo, func(c noc.Coord) bool { return c.X == x })
}

// Row kills a full grid row.
func Row(topo noc.Topology, y int) []noc.NodeID {
	return selectNodes(topo, func(c noc.Coord) bool { return c.Y == y })
}

// HalfGrid kills the right half of the grid — the paper's "failure of a
// global clock buffer" scale of damage.
func HalfGrid(topo noc.Topology) []noc.NodeID {
	half := topo.Width() / 2
	return selectNodes(topo, func(c noc.Coord) bool { return c.X >= half })
}
