package experiments

import (
	"context"

	"centurion/internal/centurion"
)

// Mid-run checkpoint/resume (DESIGN.md §16): a run can emit a RunCheckpoint
// at a fixed window cadence and a later invocation can pick the run up at
// that boundary, bit-identical to never having stopped. This is what turns
// a lost dispatch lease from "redo the whole run" into "redo at most one
// checkpoint interval": the worker ships each checkpoint to the
// coordinator, and the retry attempt resumes from the last committed one.

// NetSnap is a fabric-counter snapshot at a wave boundary. Checkpoints
// carry the boundaries already passed so per-wave traffic diffs survive a
// resume.
type NetSnap struct {
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Misrouted uint64 `json:"misrouted"`
}

// RunCheckpoint is everything needed to resume one run at a window
// boundary: the platform state plus the sampler prefix that a restored
// platform cannot re-derive (completed windows' samples and the wave
// boundary snapshots taken so far).
type RunCheckpoint struct {
	// Win is the number of completed windows; the resumed run starts there.
	Win int
	// Thr/Act/Sw are the completed windows' throughput, nodes-active and
	// switch samples (length Win).
	Thr, Act, Sw []float64
	// WaveSnaps are the fabric snapshots taken at wave boundaries < Win.
	WaveSnaps []NetSnap
	// Platform is the platform snapshot at the Win boundary.
	Platform *centurion.Checkpoint
}

// CheckpointHook asks a run to emit checkpoints every EveryWins completed
// windows (at absolute window indices divisible by EveryWins, so resumed
// attempts checkpoint at the same boundaries as the first). Fn owns the
// checkpoint it receives; returning an error aborts the run — that is how
// a fenced-off dispatch attempt stops promptly instead of racing its
// replacement.
type CheckpointHook struct {
	EveryWins int
	Fn        func(win int, cp *RunCheckpoint) error
}

// RunResumable is RunContext plus the checkpoint-resume protocol: a non-nil
// resume restores the run at its boundary (replaying the prefix to
// progress), and a non-nil hook emits checkpoints as the run advances. The
// concatenation of an interrupted run's prefix and its resumed suffix is
// bit-identical to an uninterrupted run of the same spec.
func RunResumable(ctx context.Context, spec Spec, progress Progress, resume *RunCheckpoint, hook *CheckpointHook) (Result, error) {
	return runCtx(ctx, spec, progress, resume, hook)
}
