package experiments

import (
	"context"
	"errors"
	"testing"

	"centurion/internal/centurion"
	"centurion/internal/faults"
)

// The checkpoint-resume contract: a run interrupted at any checkpoint
// boundary and resumed from the committed checkpoint — including across the
// CENCKPT1 wire encoding, as dispatch ships it — must be bit-identical to
// the same spec executed without interruption, across models × topologies ×
// hostile fault profiles.

var errKilled = errors.New("experiments_test: simulated worker kill")

// runUntilKilled runs the spec committing checkpoints every everyWins
// windows and aborts at the first boundary ≥ killWin, returning the last
// checkpoint committed before the kill (round-tripped through the CENCKPT1
// codec, like a real dispatch retry would see it).
func runUntilKilled(t *testing.T, spec Spec, resume *RunCheckpoint, everyWins, killWin int) *RunCheckpoint {
	t.Helper()
	var last *RunCheckpoint
	hook := &CheckpointHook{
		EveryWins: everyWins,
		Fn: func(win int, cp *RunCheckpoint) error {
			if win >= killWin {
				return errKilled
			}
			last = cp
			return nil
		},
	}
	_, err := RunResumable(context.Background(), spec, nil, resume, hook)
	if !errors.Is(err, errKilled) {
		t.Fatalf("interrupted run returned %v, want the kill error", err)
	}
	if last == nil {
		t.Fatal("no checkpoint committed before the kill")
	}
	dec, err := centurion.DecodeCheckpoint(centurion.EncodeCheckpoint(last.Platform))
	if err != nil {
		t.Fatalf("checkpoint codec round trip: %v", err)
	}
	last.Platform = dec
	return last
}

func TestCheckpointResumeBitIdentity(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{
			name: "ffw-legacy-mesh",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 21)
				s.DurationMs, s.FaultAtMs, s.NumFaults = 240, 120, 8
				return s
			}(),
		},
		{
			name: "ni-cascade-torus",
			spec: func() Spec {
				s := DefaultSpec(ModelNI, 7)
				s.DurationMs = 200
				s.Topology = "torus"
				s.FaultProfile = &faults.Profile{
					Kind: "cascade", AtMs: 45, Nodes: 6,
					Waves: 3, WaveDelayMs: 25, WaveRadius: 3, WaveDecayPct: 60,
				}
				return s
			}(),
		},
		{
			name: "none-flaky-cmesh",
			spec: func() Spec {
				s := DefaultSpec(ModelNone, 5)
				s.DurationMs = 150
				s.Topology = "cmesh"
				s.FaultProfile = &faults.Profile{
					Kind: "flaky", AtMs: 30, Links: 8, PeriodMs: 30, DutyPct: 40,
				}
				return s
			}(),
		},
	}
	prev := SetWarmStart(false)
	defer SetWarmStart(prev)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean := Run(tc.spec)

			// First attempt dies mid-hostile-phase; the retry resumes from
			// the last committed checkpoint and runs to completion.
			cp := runUntilKilled(t, tc.spec, nil, 20, tc.spec.DurationMs/2)
			var progressed []float64
			progress := func(w int, thr, act, sw float64) {
				if w != len(progressed) {
					t.Fatalf("progress out of order: window %d after %d", w, len(progressed))
				}
				progressed = append(progressed, thr)
			}
			resumed, err := RunResumable(context.Background(), tc.spec, progress, cp, nil)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			requireEqualResults(t, tc.name+"/one-kill", clean, resumed)
			// The resumed run replays the prefix to progress, so the stream
			// the submitter sees covers every window exactly once.
			if len(progressed) != len(clean.Throughput.Values) {
				t.Fatalf("progress covered %d windows, want %d", len(progressed), len(clean.Throughput.Values))
			}
			for w, thr := range progressed {
				if thr != clean.Throughput.Values[w] {
					t.Fatalf("progress window %d = %v, want %v", w, thr, clean.Throughput.Values[w])
				}
			}

			// Two kills: the second attempt also dies (later), and the third
			// resumes from the second attempt's checkpoint.
			cp1 := runUntilKilled(t, tc.spec, nil, 20, tc.spec.DurationMs/3)
			cp2 := runUntilKilled(t, tc.spec, cp1, 20, (2*tc.spec.DurationMs)/3)
			if cp2.Win <= cp1.Win {
				t.Fatalf("second attempt made no progress: %d -> %d", cp1.Win, cp2.Win)
			}
			final, err := RunResumable(context.Background(), tc.spec, nil, cp2, nil)
			if err != nil {
				t.Fatalf("final resumed run: %v", err)
			}
			requireEqualResults(t, tc.name+"/two-kills", clean, final)
		})
	}
}

// A checkpoint cadence longer than the run emits no checkpoints (and never
// fires at the final window — completion supersedes it).
func TestCheckpointHookCadence(t *testing.T) {
	prev := SetWarmStart(false)
	defer SetWarmStart(prev)
	spec := DefaultSpec(ModelNone, 3)
	spec.DurationMs = 60
	var wins []int
	hook := &CheckpointHook{EveryWins: 25, Fn: func(win int, cp *RunCheckpoint) error {
		wins = append(wins, win)
		if cp.Win != win || len(cp.Thr) != win || cp.Platform == nil {
			t.Fatalf("malformed checkpoint at %d: %+v", win, cp)
		}
		return nil
	}}
	if _, err := RunResumable(context.Background(), spec, nil, nil, hook); err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 || wins[0] != 25 || wins[1] != 50 {
		t.Fatalf("checkpoint windows = %v, want [25 50]", wins)
	}
}
