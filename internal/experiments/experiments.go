// Package experiments defines and runs the paper's evaluation: Table I
// (settling time and relative performance without faults), Table II
// (recovery time and relative performance after fault injection at 500 ms)
// and Figure 4 (throughput and task-switch time series for 5- and 42-fault
// cases), each over many independently seeded runs.
package experiments

import (
	"context"
	"runtime"
	"sync"

	"centurion/internal/aim"
	"centurion/internal/centurion"
	"centurion/internal/faults"
	"centurion/internal/metrics"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// Model selects the runtime-management scheme of a run.
type Model int

const (
	// ModelNone is the paper's no-intelligence reference: the heuristic
	// fixed mapping (minimised Manhattan distance) with no adaptation.
	ModelNone Model = iota
	// ModelNI is the Network Interaction scheme from a random initial
	// mapping.
	ModelNI
	// ModelFFW is the Foraging for Work scheme from a random initial
	// mapping.
	ModelFFW
	// ModelRandomStatic is an ablation: the adaptive models' random initial
	// mapping with the intelligence disabled.
	ModelRandomStatic
)

// Models lists the paper's three schemes in table order.
var Models = []Model{ModelNone, ModelNI, ModelFFW}

// String names the model as in the paper's tables.
func (m Model) String() string {
	switch m {
	case ModelNone:
		return "No Intelligence"
	case ModelNI:
		return "Network Interaction"
	case ModelFFW:
		return "Foraging For Work"
	case ModelRandomStatic:
		return "Random Static"
	}
	return "unknown"
}

// Spec configures one run.
type Spec struct {
	Model Model
	Seed  uint64
	// DurationMs is the run length (the paper plots 1000 ms).
	DurationMs int
	// FaultAtMs injects NumFaults random node failures at this time
	// (0 disables fault injection).
	FaultAtMs int
	NumFaults int
	// FaultProfile, when non-nil, compiles into a full hostile-environment
	// fault schedule (death, churn, flaky links, cascades, byzantine
	// routers — see faults.Profile) executed through the event queue. It is
	// mutually exclusive with the legacy FaultAtMs/NumFaults pair; a death
	// profile reproduces that pair bit for bit.
	FaultProfile *faults.Profile
	// WindowMs is the metric sampling window (1 ms by default).
	WindowMs int
	// Overrides for ablation studies (nil = experiment defaults).
	NI  *aim.NIParams
	FFW *aim.FFWParams
	// NeighborSignals enables the information-transfer extension.
	NeighborSignals bool
	// Mapper overrides the model's default initial mapping (ablations).
	Mapper taskgraph.Mapper
	// Platform-level overrides (zero values = defaults).
	Width, Height int
	// Topology selects the fabric shape: "mesh" (default, the paper's
	// Centurion-V6), "torus" or "cmesh".
	Topology string
	// Graph overrides the application task graph (nil = the paper's
	// fork–join workload).
	Graph *taskgraph.Graph
	// Thermal, when non-nil, enables the per-node temperature model.
	Thermal *thermal.Params
	// ThermalDVFS enables the frequency-scaling governor (needs Thermal).
	ThermalDVFS bool
}

// DefaultSpec returns the paper's experiment shape for a model and seed.
func DefaultSpec(model Model, seed uint64) Spec {
	return Spec{
		Model:      model,
		Seed:       seed,
		DurationMs: 1000,
		WindowMs:   1,
	}
}

// Result holds the measured series and summary figures of one run.
type Result struct {
	Spec Spec

	// Throughput is completed fork–join instances per window.
	Throughput *metrics.Series
	// NodesActive is the number of nodes that did useful work per window.
	NodesActive *metrics.Series
	// Switches is task switches per window summed over the grid.
	Switches *metrics.Series

	// SettlingMs is the settling time from t=0 (Table I).
	SettlingMs float64
	Settled    bool
	// RecoveryMs is the recovery time from fault injection (Table II);
	// meaningful only when the spec injects faults.
	RecoveryMs float64
	Recovered  bool

	// SteadyRate is the mean throughput per ms over the steady tail of the
	// pre-fault (or whole, when fault-free) segment.
	SteadyRate float64
	// PostFaultRate is the mean throughput per ms over the tail of the
	// post-fault segment (equals SteadyRate when fault-free).
	PostFaultRate float64

	// Resilience measures, populated when the run executes a fault profile.
	// ByzMisrouted/ByzDropped/ByzDuplicated are the fabric's byzantine
	// interference totals; Waves is the per-milestone re-settling record —
	// one entry per structural disruption (kill wave, revival, byzantine
	// arming) of the schedule.
	ByzMisrouted  uint64
	ByzDropped    uint64
	ByzDuplicated uint64
	Waves         []WaveRecovery

	Counters centurion.Counters
}

// WaveRecovery is the post-event resilience record of one fault-schedule
// milestone: how long the platform took to re-settle after the disruption
// (measured to the next milestone or the end of the run, per the paper's
// Table-II settling criterion) and the fabric traffic accounted during that
// segment.
type WaveRecovery struct {
	// AtMs is the disruption time, aligned down to the metric window.
	AtMs int
	// RecoveryMs is the re-settling time from the disruption; Recovered is
	// false when throughput never re-settled before the segment ended.
	RecoveryMs float64
	Recovered  bool
	// Delivered, Dropped and Misrouted are fabric counts within the
	// segment (misroutes are byzantine interference events).
	Delivered uint64
	Dropped   uint64
	Misrouted uint64
}

// Measurement-buffer recycling: every run needs three window series and a
// per-node work snapshot; sweeps execute thousands of runs, so the buffers
// come from shared pools and go back once the caller has reduced the series
// to scalars (Result.Release).
var (
	runSeries   metrics.SeriesPool
	workScratch = sync.Pool{New: func() any { return new([]uint64) }}
)

// Release recycles the result's series buffers for reuse by later runs. Call
// it only when done with Throughput/NodesActive/Switches — the slices are
// invalid afterwards (the summary scalars remain usable). Safe to call on
// results that never had series (cancelled runs) and at most once.
func (r *Result) Release() {
	runSeries.Put(r.Throughput)
	runSeries.Put(r.NodesActive)
	runSeries.Put(r.Switches)
	r.Throughput, r.NodesActive, r.Switches = nil, nil, nil
}

// engineFactory returns the AIM factory for the spec.
func (s Spec) engineFactory() aim.Factory {
	switch s.Model {
	case ModelNI:
		par := aim.DefaultNIParams()
		if s.NI != nil {
			par = *s.NI
		}
		return aim.NewNIFactory(par)
	case ModelFFW:
		par := aim.DefaultFFWParams()
		if s.FFW != nil {
			par = *s.FFW
		}
		return aim.NewFFWFactory(par)
	default:
		return aim.NewNone
	}
}

// mapper returns the initial mapping strategy for the spec.
func (s Spec) mapper() taskgraph.Mapper {
	if s.Mapper != nil {
		return s.Mapper
	}
	if s.Model == ModelNone {
		return taskgraph.HeuristicMapper{}
	}
	return taskgraph.RandomMapper{}
}

// Progress observes a run window by window: w is the window index and
// throughput, nodesActive and switches are that window's samples. It is the
// hook the serving layer uses to stream Figure-4-style series live.
type Progress func(w int, throughput, nodesActive, switches float64)

// Run executes one experiment run.
func Run(spec Spec) Result {
	res, _ := RunContext(context.Background(), spec, nil)
	return res
}

// RunContext executes one experiment run, checking ctx between metric
// windows and reporting each finished window to progress (when non-nil).
// On cancellation it returns the partially filled result together with the
// context's error. This is the single spec-execution path shared by the
// table/figure harness and the internal/server job engine (which uses the
// RunResumable variant for checkpoint-resume).
func RunContext(ctx context.Context, spec Spec, progress Progress) (Result, error) {
	return runCtx(ctx, spec, progress, nil, nil)
}

// runCtx is the shared execution core behind RunContext and RunResumable.
func runCtx(ctx context.Context, spec Spec, progress Progress, resume *RunCheckpoint, hook *CheckpointHook) (Result, error) {
	if spec.DurationMs <= 0 {
		spec.DurationMs = 1000
	}
	if spec.WindowMs <= 0 {
		spec.WindowMs = 1
	}
	// Lease a pooled platform (reset in place for this seed) instead of
	// assembling a fresh one; the release hands it back for the next run.
	p, release := leasePlatform(spec)
	defer release()
	ctl := centurion.NewController(p)

	// Fault plan through the controller's debug interface. A profile
	// compiles into a full hostile-environment schedule; the legacy
	// FaultAtMs/NumFaults pair stays byte-for-byte on its historical path.
	// The plan is built here but armed only after the warm-start decision
	// below: restoring a checkpoint clears the event queue, so the schedule
	// must land after any fork (ApplySchedule skips already-fired events;
	// nothing fires before the divergence boundary by construction).
	var sched faults.Schedule
	var legacyAt sim.Tick
	var legacyNodes []noc.NodeID
	if spec.FaultProfile != nil {
		var err error
		sched, err = faults.Build(p.Topo, spec.Seed, *spec.FaultProfile, spec.DurationMs)
		if err != nil {
			return Result{Spec: spec}, err
		}
	} else if spec.NumFaults > 0 && spec.FaultAtMs > 0 {
		// The fault-site RNG stream is derived from the seed but independent
		// of the platform's own stream.
		faultRNG := sim.NewRNG(spec.Seed ^ 0xfa17517e5eed)
		legacyAt = sim.Ms(float64(spec.FaultAtMs))
		legacyNodes = faults.RandomNodes(p.Topo, spec.NumFaults, faultRNG)
	}

	windows := spec.DurationMs / spec.WindowMs
	res := Result{
		Spec:        spec,
		Throughput:  runSeries.Get(float64(spec.WindowMs), windows),
		NodesActive: runSeries.Get(float64(spec.WindowMs), windows),
		Switches:    runSeries.Get(float64(spec.WindowMs), windows),
	}

	windowTicks := sim.Tick(spec.WindowMs) * sim.TicksPerMs
	// Milestone boundaries (window indices where the schedule structurally
	// disrupts the platform) partition the run into recovery segments; the
	// fabric counters are snapshotted at each boundary so per-wave traffic
	// is a pair of diffs.
	var waveWins []int
	for _, at := range sched.Milestones() {
		wi := int(at / windowTicks)
		if wi <= 0 || wi >= windows {
			continue
		}
		if n := len(waveWins); n == 0 || waveWins[n-1] != wi {
			waveWins = append(waveWins, wi)
		}
	}
	snapAt := func() NetSnap {
		ns := p.Net.Stats()
		return NetSnap{ns.Delivered, ns.Dropped, ns.ByzMisrouted}
	}
	waveSnaps := make([]NetSnap, 0, len(waveWins)+1)
	pes := p.PEs()
	workBuf := workScratch.Get().(*[]uint64)
	defer func() {
		workScratch.Put(workBuf)
	}()
	if cap(*workBuf) < len(pes) {
		*workBuf = make([]uint64, len(pes))
	}
	lastWork := (*workBuf)[:len(pes)]
	clear(lastWork)
	var lastCompleted, lastSwitches uint64

	// Warm start: fork this run from a cached settled prefix, or mark the
	// prefix for caching as this run passes the divergence boundary. On a
	// fork the sampler baselines are recomputed from the restored state (the
	// watermark invariantly equals the live value at a window boundary).
	startWin := 0
	servedFull := false
	var buildKey warmKey
	buildDiv := -1
	if resume != nil && resume.Win > 0 && resume.Platform != nil {
		// Mid-run resume: restore the checkpoint boundary exactly as a warm
		// fork would — replay the recorded prefix, restore the platform, and
		// rebase the sampler watermarks on the restored counters (invariantly
		// equal to the live values at a window boundary). The warm-start
		// machinery is bypassed: the prefix is already decided.
		div := resume.Win
		if div > windows {
			div = windows
		}
		copy(res.Throughput.Values[:div], resume.Thr)
		copy(res.NodesActive.Values[:div], resume.Act)
		copy(res.Switches.Values[:div], resume.Sw)
		p.Restore(resume.Platform)
		c := p.Counters()
		lastCompleted, lastSwitches = c.InstancesCompleted, c.TaskSwitches
		for i, pe := range pes {
			lastWork[i] = pe.WorkCount()
		}
		waveSnaps = append(waveSnaps, resume.WaveSnaps...)
		if progress != nil {
			for w := 0; w < div; w++ {
				progress(w, res.Throughput.Values[w], res.NodesActive.Values[w], res.Switches.Values[w])
			}
		}
		startWin = div
	} else if warmApplicable(spec) {
		if div := warmDivergenceWin(spec, sched, legacyAt, windows, windowTicks); div > 0 {
			key := warmKeyOf(spec, div)
			if e, ok := warmCache.get(key); ok {
				copy(res.Throughput.Values[:div], e.thr)
				copy(res.NodesActive.Values[:div], e.act)
				copy(res.Switches.Values[:div], e.sw)
				if e.cp != nil {
					p.Restore(e.cp)
					warmCache.forkServed()
					c := p.Counters()
					lastCompleted, lastSwitches = c.InstancesCompleted, c.TaskSwitches
					for i, pe := range pes {
						lastWork[i] = pe.WorkCount()
					}
				} else {
					// Full-duration entry: the whole run replays from
					// samples; the leased platform is never touched.
					res.Counters = e.counters
					servedFull = true
				}
				if progress != nil {
					for w := 0; w < div; w++ {
						progress(w, res.Throughput.Values[w], res.NodesActive.Values[w], res.Switches.Values[w])
					}
				}
				startWin = div
			} else {
				buildKey, buildDiv = key, div
			}
		}
	}

	// Arm the fault plan (on a fork: re-arm — the restore cleared the queue
	// and the events at or after the boundary are exactly the unfired ones).
	if spec.FaultProfile != nil {
		ctl.ApplySchedule(sched)
	} else if len(legacyNodes) > 0 {
		ctl.ScheduleFaults(legacyAt, legacyNodes)
	}

	for w := startWin; w < windows; w++ {
		if err := ctx.Err(); err != nil {
			res.Counters = p.Counters()
			return res, err
		}
		if len(waveSnaps) < len(waveWins) && waveWins[len(waveSnaps)] == w {
			waveSnaps = append(waveSnaps, snapAt())
		}
		p.RunFor(windowTicks, nil)
		c := p.Counters()
		res.Throughput.Values[w] = float64(c.InstancesCompleted - lastCompleted)
		res.Switches.Values[w] = float64(c.TaskSwitches - lastSwitches)
		lastCompleted, lastSwitches = c.InstancesCompleted, c.TaskSwitches
		active := 0
		for i, pe := range pes {
			if wc := pe.WorkCount(); wc != lastWork[i] {
				active++
				lastWork[i] = wc
			}
		}
		res.NodesActive.Values[w] = float64(active)
		if progress != nil {
			progress(w, res.Throughput.Values[w], res.NodesActive.Values[w], res.Switches.Values[w])
		}
		if w+1 == buildDiv {
			// The divergence boundary: every armed fault event is still in
			// the future, so the state is the variant-independent settled
			// prefix. Cache it for the sibling runs to fork from.
			warmCache.put(buildKey, buildWarmEntry(p, &res, buildDiv, windows))
		}
		if hook != nil && hook.EveryWins > 0 && (w+1)%hook.EveryWins == 0 && w+1 < windows {
			// Checkpoint at absolute-index boundaries, so every attempt of a
			// run checkpoints at the same windows regardless of where it
			// started.
			cp := &RunCheckpoint{
				Win:       w + 1,
				Thr:       append([]float64(nil), res.Throughput.Values[:w+1]...),
				Act:       append([]float64(nil), res.NodesActive.Values[:w+1]...),
				Sw:        append([]float64(nil), res.Switches.Values[:w+1]...),
				WaveSnaps: append([]NetSnap(nil), waveSnaps...),
				Platform:  p.Snapshot(),
			}
			if err := hook.Fn(w+1, cp); err != nil {
				res.Counters = p.Counters()
				return res, err
			}
		}
	}
	if !servedFull {
		res.Counters = p.Counters()
	}
	waveSnaps = append(waveSnaps, snapAt())

	par := metrics.DefaultSettleParams()
	faultIdx := windows
	if spec.FaultProfile != nil {
		// The profile has been validated by Build above; its normalized
		// start time splits steady from hostile, exactly like FaultAtMs.
		prof, _ := spec.FaultProfile.Normalized(spec.DurationMs)
		if fi := prof.AtMs / spec.WindowMs; fi > 0 && fi < windows {
			faultIdx = fi
		}
		ns := p.Net.Stats()
		res.ByzMisrouted = ns.ByzMisrouted
		res.ByzDropped = ns.ByzDropped
		res.ByzDuplicated = ns.ByzDuplicated
		for i, start := range waveWins {
			end := windows
			if i+1 < len(waveWins) {
				end = waveWins[i+1]
			}
			rec := WaveRecovery{
				AtMs:      start * spec.WindowMs,
				Delivered: waveSnaps[i+1].Delivered - waveSnaps[i].Delivered,
				Dropped:   waveSnaps[i+1].Dropped - waveSnaps[i].Dropped,
				Misrouted: waveSnaps[i+1].Misrouted - waveSnaps[i].Misrouted,
			}
			rec.RecoveryMs, rec.Recovered = metrics.SettlingTime(res.Throughput, start, end, par)
			res.Waves = append(res.Waves, rec)
		}
	} else if spec.NumFaults > 0 && spec.FaultAtMs > 0 {
		faultIdx = spec.FaultAtMs / spec.WindowMs
	}
	res.SettlingMs, res.Settled = metrics.SettlingTime(res.Throughput, 0, faultIdx, par)
	res.SteadyRate = res.Throughput.MeanRange(faultIdx-faultIdx/4, faultIdx) / float64(spec.WindowMs)
	if faultIdx < windows {
		res.RecoveryMs, res.Recovered = metrics.SettlingTime(res.Throughput, faultIdx, windows, par)
		res.PostFaultRate = res.Throughput.MeanRange(windows-(windows-faultIdx)/3, windows) / float64(spec.WindowMs)
	} else {
		res.PostFaultRate = res.SteadyRate
	}
	return res, nil
}

// RunMany executes n runs of the spec with seeds seedBase..seedBase+n-1 in
// parallel across CPUs. Results are ordered by seed.
func RunMany(spec Spec, n int, seedBase uint64) []Result {
	out := make([]Result, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := spec
				s.Seed = seedBase + uint64(i)
				out[i] = Run(s)
			}
		}()
	}
	wg.Wait()
	return out
}
