package experiments

import (
	"slices"
	"testing"

	"centurion/internal/faults"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// The warm-start contract: a run served by forking from a cached settled
// prefix must be bit-identical to the same spec executed cold — every window
// sample, every counter, every derived summary. These tests compare the cold
// path (warm start disabled), the prefix-building run (first miss) and the
// forking run (subsequent hit) for the paper's sweep shapes: legacy
// fault-at-500ms cells, hostile profiles, thermal platforms and fault-free
// Table-I runs (which warm-start as full-duration sample replays).

// coldRun executes the spec with warm-starting off.
func coldRun(t *testing.T, spec Spec) Result {
	t.Helper()
	prev := SetWarmStart(false)
	defer SetWarmStart(prev)
	return Run(spec)
}

// requireEqualResults asserts bitwise equality of everything a Result
// derives from the simulation.
func requireEqualResults(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !slices.Equal(want.Throughput.Values, got.Throughput.Values) {
		t.Fatalf("%s: throughput series diverged", label)
	}
	if !slices.Equal(want.NodesActive.Values, got.NodesActive.Values) {
		t.Fatalf("%s: nodes-active series diverged", label)
	}
	if !slices.Equal(want.Switches.Values, got.Switches.Values) {
		t.Fatalf("%s: switches series diverged", label)
	}
	if want.Counters != got.Counters {
		t.Fatalf("%s: counters diverged:\nwant %+v\ngot  %+v", label, want.Counters, got.Counters)
	}
	if want.SettlingMs != got.SettlingMs || want.Settled != got.Settled {
		t.Fatalf("%s: settling diverged: want (%v,%v) got (%v,%v)",
			label, want.SettlingMs, want.Settled, got.SettlingMs, got.Settled)
	}
	if want.RecoveryMs != got.RecoveryMs || want.Recovered != got.Recovered {
		t.Fatalf("%s: recovery diverged: want (%v,%v) got (%v,%v)",
			label, want.RecoveryMs, want.Recovered, got.RecoveryMs, got.Recovered)
	}
	if want.SteadyRate != got.SteadyRate || want.PostFaultRate != got.PostFaultRate {
		t.Fatalf("%s: rates diverged", label)
	}
	if want.ByzMisrouted != got.ByzMisrouted || want.ByzDropped != got.ByzDropped ||
		want.ByzDuplicated != got.ByzDuplicated {
		t.Fatalf("%s: byzantine counters diverged", label)
	}
	if !slices.Equal(want.Waves, got.Waves) {
		t.Fatalf("%s: wave records diverged:\nwant %+v\ngot  %+v", label, want.Waves, got.Waves)
	}
}

func TestWarmStartBitIdentity(t *testing.T) {
	therm := thermal.DefaultParams()
	cases := []struct {
		name string
		spec Spec
		fork bool // expects a checkpoint fork (false: full-duration replay)
	}{
		{
			name: "legacy-ffw",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 11)
				s.DurationMs, s.FaultAtMs, s.NumFaults = 240, 120, 8
				return s
			}(),
			fork: true,
		},
		{
			name: "legacy-ni-unaligned",
			spec: func() Spec {
				s := DefaultSpec(ModelNI, 4)
				s.DurationMs, s.FaultAtMs, s.NumFaults = 200, 91, 5
				return s
			}(),
			fork: true,
		},
		{
			name: "cascade-profile",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 9)
				s.DurationMs = 200
				s.FaultProfile = &faults.Profile{
					Kind: "cascade", AtMs: 45, Nodes: 6,
					Waves: 3, WaveDelayMs: 25, WaveRadius: 3, WaveDecayPct: 60,
				}
				return s
			}(),
			fork: true,
		},
		{
			name: "flaky-profile",
			spec: func() Spec {
				s := DefaultSpec(ModelNone, 6)
				s.DurationMs = 150
				s.FaultProfile = &faults.Profile{
					Kind: "flaky", AtMs: 30, Links: 8, PeriodMs: 30, DutyPct: 40,
				}
				return s
			}(),
			fork: true,
		},
		{
			name: "byzantine-profile",
			spec: func() Spec {
				s := DefaultSpec(ModelNI, 13)
				s.DurationMs = 150
				s.FaultProfile = &faults.Profile{
					Kind: "byzantine", AtMs: 25, Routers: 6, RatePct: 35,
					Modes: "misroute,drop,dup",
				}
				return s
			}(),
			fork: true,
		},
		{
			name: "thermal-dvfs",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 21)
				s.DurationMs, s.FaultAtMs, s.NumFaults = 200, 100, 6
				s.Thermal = &therm
				s.ThermalDVFS = true
				return s
			}(),
			fork: true,
		},
		{
			name: "custom-graph",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 8)
				s.DurationMs, s.FaultAtMs, s.NumFaults = 200, 100, 5
				s.Graph = taskgraph.Pipeline(4, 120, 24)
				return s
			}(),
			fork: true,
		},
		{
			name: "fault-free-full-replay",
			spec: func() Spec {
				s := DefaultSpec(ModelFFW, 17)
				s.DurationMs = 150
				return s
			}(),
			fork: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold := coldRun(t, tc.spec)

			prev := SetWarmStart(true)
			defer SetWarmStart(prev)
			ResetWarmStart()
			defer ResetWarmStart()

			built := Run(tc.spec) // miss: simulates and caches the prefix
			forked := Run(tc.spec)

			requireEqualResults(t, "prefix-building run vs cold", cold, built)
			requireEqualResults(t, "forked run vs cold", cold, forked)

			st := WarmStats()
			if st.Builds != 1 || st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
				t.Fatalf("stats after build+fork: %+v", st)
			}
			wantForks := uint64(0)
			if tc.fork {
				wantForks = 1
			}
			if st.ForksServed != wantForks {
				t.Fatalf("forks served = %d, want %d (%+v)", st.ForksServed, wantForks, st)
			}
			if st.Bytes <= 0 {
				t.Fatalf("cache holds no bytes: %+v", st)
			}
		})
	}
}

// TestWarmStartSiblingsShareOnePrefix is the sweep shape the cache exists
// for: variants that differ only in their fault plan fork from one shared
// settled prefix, and each still matches its own cold run bit for bit.
func TestWarmStartSiblingsShareOnePrefix(t *testing.T) {
	variant := func(numFaults int) Spec {
		s := DefaultSpec(ModelFFW, 7)
		s.DurationMs, s.FaultAtMs, s.NumFaults = 240, 120, numFaults
		return s
	}
	coldA := coldRun(t, variant(4))
	coldB := coldRun(t, variant(12))
	coldC := coldRun(t, variant(32))

	prev := SetWarmStart(true)
	defer SetWarmStart(prev)
	ResetWarmStart()
	defer ResetWarmStart()

	requireEqualResults(t, "variant 4 (builds prefix)", coldA, Run(variant(4)))
	requireEqualResults(t, "variant 12 (forks)", coldB, Run(variant(12)))
	requireEqualResults(t, "variant 32 (forks)", coldC, Run(variant(32)))

	st := WarmStats()
	if st.Entries != 1 || st.Builds != 1 {
		t.Fatalf("expected one shared prefix entry, got %+v", st)
	}
	if st.Hits != 2 || st.ForksServed != 2 {
		t.Fatalf("expected two forks off the shared prefix, got %+v", st)
	}
}

// TestWarmStartRunManyParallel drives the warm path through RunMany's worker
// pool: the first sweep builds one prefix per seed, the second forks every
// run, and both match the cold sweep element-wise.
func TestWarmStartRunManyParallel(t *testing.T) {
	spec := DefaultSpec(ModelFFW, 0)
	spec.DurationMs, spec.FaultAtMs, spec.NumFaults = 200, 100, 6
	const n = 6

	prevOff := SetWarmStart(false)
	cold := RunMany(spec, n, 3)
	SetWarmStart(prevOff)

	prev := SetWarmStart(true)
	defer SetWarmStart(prev)
	ResetWarmStart()
	defer ResetWarmStart()

	first := RunMany(spec, n, 3)
	second := RunMany(spec, n, 3)
	for i := range cold {
		requireEqualResults(t, "first sweep", cold[i], first[i])
		requireEqualResults(t, "second sweep", cold[i], second[i])
	}
	st := WarmStats()
	if st.Entries != n {
		t.Fatalf("expected %d prefix entries (one per seed), got %+v", n, st)
	}
	if st.ForksServed != n {
		t.Fatalf("expected %d forked runs in the second sweep, got %+v", n, st)
	}
	for i := range cold {
		cold[i].Release()
		first[i].Release()
		second[i].Release()
	}
}

// TestWarmStartEviction pins the LRU byte budget: over budget, cold entries
// fall off the tail (a lone over-budget entry is retained — evicting it
// would only force a rebuild).
func TestWarmStartEviction(t *testing.T) {
	prev := SetWarmStart(true)
	defer SetWarmStart(prev)
	ResetWarmStart()
	defer ResetWarmStart()
	warmCache.setBudget(1)
	defer warmCache.setBudget(warmBudgetDefault)

	spec := DefaultSpec(ModelNone, 30)
	spec.DurationMs, spec.FaultAtMs, spec.NumFaults = 120, 60, 4
	Run(spec)
	spec.Seed = 31
	Run(spec)

	st := WarmStats()
	if st.Entries != 1 {
		t.Fatalf("budget 1 must keep exactly the newest entry, got %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected an eviction, got %+v", st)
	}
}

func TestWarmPrefixKey(t *testing.T) {
	spec := DefaultSpec(ModelFFW, 5)
	spec.DurationMs, spec.FaultAtMs, spec.NumFaults = 240, 120, 8
	keyA, ok := WarmPrefixKey(spec)
	if !ok || keyA == "" {
		t.Fatalf("expected a key for a plain sweep cell")
	}

	// Variants differing only in their fault plan share the prefix key…
	spec.NumFaults = 32
	if keyB, ok := WarmPrefixKey(spec); !ok || keyB != keyA {
		t.Fatalf("fault-count variants must share the prefix key: %q vs %q", keyA, keyB)
	}
	// …and the key matches what RunContext uses: a run under keyA's spec
	// must hit the entry a sibling built.
	prevOn := SetWarmStart(true)
	defer SetWarmStart(prevOn)
	ResetWarmStart()
	defer ResetWarmStart()
	spec.NumFaults = 8
	Run(spec)
	spec.NumFaults = 32
	Run(spec)
	if st := WarmStats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("WarmPrefixKey-equal variants did not share an entry: %+v", st)
	}

	// Different seeds, grids or models split the key.
	other := spec
	other.Seed++
	if k, ok := WarmPrefixKey(other); !ok || k == keyA {
		t.Fatalf("seed change must change the key")
	}
	// Faults landing inside the first window leave no settled prefix.
	immediate := DefaultSpec(ModelFFW, 5)
	immediate.DurationMs, immediate.WindowMs = 100, 10
	immediate.FaultAtMs, immediate.NumFaults = 5, 2
	if _, ok := WarmPrefixKey(immediate); ok {
		t.Fatalf("faults inside the first window must not be warm-startable")
	}
	// Caller-supplied graphs key by content digest: two independently built
	// copies of a workload share the key (dispatch fleets agree across
	// processes), while a different workload — or the default graph — splits.
	gspec := DefaultSpec(ModelFFW, 5)
	gspec.DurationMs, gspec.FaultAtMs, gspec.NumFaults = 240, 120, 8
	gspec.Graph = taskgraph.Pipeline(4, 120, 24)
	kg, ok := WarmPrefixKey(gspec)
	if !ok || kg == keyA {
		t.Fatalf("custom-graph spec must key separately from the default graph")
	}
	rebuilt := gspec
	rebuilt.Graph = taskgraph.Pipeline(4, 120, 24)
	if k, ok := WarmPrefixKey(rebuilt); !ok || k != kg {
		t.Fatalf("independently built equal graphs must share the key")
	}
	other2 := gspec
	other2.Graph = taskgraph.Diamond(120, 24)
	if k, ok := WarmPrefixKey(other2); !ok || k == kg {
		t.Fatalf("different workloads must split the key")
	}

	// Opaque spec fields opt out.
	opaque := DefaultSpec(ModelFFW, 5)
	opaque.Mapper = taskgraph.RandomMapper{}
	if _, ok := WarmPrefixKey(opaque); ok {
		t.Fatalf("custom-mapper specs must not be warm-startable")
	}
	// Disabled subsystem opts everything out.
	SetWarmStart(false)
	if _, ok := WarmPrefixKey(spec); ok {
		t.Fatalf("disabled warm start must report not-applicable")
	}
	SetWarmStart(true)
}
