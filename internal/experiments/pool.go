package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"centurion/internal/aim"
	"centurion/internal/centurion"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// The platform pool: RunContext leases assembled platforms from per-shape
// sync.Pools instead of calling centurion.New per run. A leased platform is
// Reset(seed) in place — immutable structure (topology, route tables, task
// graph, wiring) is reused, mutable state is cleared — which makes the
// construction cost of a run O(state), not O(structure), and keeps sweeps
// allocation-free at steady state. Platform.Reset's bit-identity contract
// (TestSteppingEquivalencePooledReuse) guarantees pooled runs equal fresh
// ones for every seed.

// platformShape is the pool key: everything about a Spec that affects the
// *construction* of a platform, as opposed to one run's seed, duration,
// sampling or fault plan. Two specs with equal shapes can share recycled
// platforms.
type platformShape struct {
	model         Model
	width, height int
	topology      string
	// graph identifies a caller-supplied task graph by pointer; nil selects
	// the default fork–join workload. Callers that rebuild equivalent graphs
	// per run should share one instance to pool effectively (graphs are
	// immutable and race-safe once built).
	graph      *taskgraph.Graph
	neighbor   bool
	ni         aim.NIParams
	ffw        aim.FFWParams
	thermal    thermal.Params
	hasThermal bool
	dvfs       bool
}

// shape derives the pool key. Call only when the spec is poolable.
func (s Spec) shape() platformShape {
	k := platformShape{
		model:    s.Model,
		width:    s.Width,
		height:   s.Height,
		topology: s.topologyKind(),
		graph:    s.Graph,
		neighbor: s.NeighborSignals,
		dvfs:     s.ThermalDVFS,
	}
	switch s.Model {
	case ModelNI:
		k.ni = aim.DefaultNIParams()
		if s.NI != nil {
			k.ni = *s.NI
		}
	case ModelFFW:
		k.ffw = aim.DefaultFFWParams()
		if s.FFW != nil {
			k.ffw = *s.FFW
		}
	}
	if s.Thermal != nil {
		k.thermal = *s.Thermal
		k.hasThermal = true
	}
	return k
}

// poolable reports whether the spec's platforms may be recycled. A custom
// Mapper is an opaque interface value, so it cannot key the pool; those
// (rare, ablation-only) specs build fresh platforms.
func (s Spec) poolable() bool { return s.Mapper == nil }

// topologyKind normalizes the spec's fabric shape for pool keys and stats.
func (s Spec) topologyKind() string {
	if s.Topology == "" {
		return "mesh"
	}
	return s.Topology
}

// shapeKey is the per-shape stats key, "kind/WxH" ("mesh/16x8"). Dimensions
// default exactly like platform construction does, so a spec that leaves
// them zero and one that spells out 16×8 count under the same key — while
// a 64×64 mesh no longer aliases the default grid's counters.
func (s Spec) shapeKey() string {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 16
	}
	if h <= 0 {
		h = 8
	}
	return fmt.Sprintf("%s/%dx%d", s.topologyKind(), w, h)
}

// platformConfig builds the platform configuration the spec describes.
func (s Spec) platformConfig() centurion.Config {
	cfg := centurion.DefaultConfig(s.engineFactory(), s.mapper(), s.Seed)
	cfg.NeighborSignals = s.NeighborSignals
	cfg.Thermal = s.Thermal
	cfg.ThermalDVFS = s.ThermalDVFS
	cfg.Topology = s.Topology
	if s.Width > 0 {
		cfg.Width = s.Width
	}
	if s.Height > 0 {
		cfg.Height = s.Height
	}
	if s.Graph != nil {
		cfg.Graph = s.Graph
	}
	return cfg
}

var (
	platformPools sync.Map // platformShape → *sync.Pool of *pooledPlatform
	// poolShapes counts distinct keys in platformPools. The map never
	// evicts (its keys pin their graphs), so beyond maxPoolShapes new
	// shapes run on fresh platforms instead of registering — a caller that
	// rebuilds an equivalent graph per run then degrades to pre-pool
	// behavior rather than growing the map one pinned entry per run.
	poolShapes atomic.Int64

	statPlatformsCreated atomic.Uint64
	statPlatformsReused  atomic.Uint64
	statPacketsRecycled  atomic.Uint64

	// statByTopo breaks the platform counters down per fabric shape
	// ("kind/WxH" string → *topoCounters) for the /healthz capacity view: a
	// sweep that suddenly stops reusing torus platforms — or that silently
	// rebuilds every 256×256 mega fabric — shows up here even while the
	// 16×8 mesh totals look healthy.
	statByTopo sync.Map
)

// topoCounters are the per-topology platform-pool counters.
type topoCounters struct {
	created atomic.Uint64
	reused  atomic.Uint64
}

// topoStat returns the counters for one fabric shape, creating them on
// first use.
func topoStat(kind string) *topoCounters {
	if v, ok := statByTopo.Load(kind); ok {
		return v.(*topoCounters)
	}
	v, _ := statByTopo.LoadOrStore(kind, new(topoCounters))
	return v.(*topoCounters)
}

// maxPoolShapes bounds the distinct platform shapes the pool tracks; far
// above any real workload mix (the paper's grids use a handful).
const maxPoolShapes = 64

// pooledPlatform wraps a recyclable platform with the packet-recycling
// watermark last reported to the global stats.
type pooledPlatform struct {
	p        *centurion.Platform
	recycled uint64
}

// leasePlatform returns a platform ready to run the spec (seeded, clean) and
// a release function that must be called exactly once when the run is over.
func leasePlatform(spec Spec) (*centurion.Platform, func()) {
	shapeKey := spec.shapeKey()
	// Every construction counts in both the global and the per-shape
	// counters (pooled misses, non-poolable specs and shape overflow alike),
	// so /healthz's by_topology breakdown always sums to the totals.
	created := func() {
		statPlatformsCreated.Add(1)
		topoStat(shapeKey).created.Add(1)
	}
	if !spec.poolable() {
		created()
		return centurion.New(spec.platformConfig()), func() {}
	}
	poolAny, ok := platformPools.Load(spec.shape())
	if !ok {
		if poolShapes.Load() >= maxPoolShapes {
			// Shape churn overflow: simulate on a throwaway platform.
			created()
			return centurion.New(spec.platformConfig()), func() {}
		}
		var loaded bool
		poolAny, loaded = platformPools.LoadOrStore(spec.shape(), new(sync.Pool))
		if !loaded {
			poolShapes.Add(1)
		}
	}
	pool := poolAny.(*sync.Pool)

	var pp *pooledPlatform
	if v := pool.Get(); v != nil {
		pp = v.(*pooledPlatform)
		pp.p.Reset(spec.Seed)
		statPlatformsReused.Add(1)
		topoStat(shapeKey).reused.Add(1)
	} else {
		pp = &pooledPlatform{p: centurion.New(spec.platformConfig())}
		created()
	}
	return pp.p, func() {
		// Publish the packets this platform recycled since its last release,
		// then hand it back dirty; the next lease resets it.
		cur := pp.p.PacketPool().Stats().Recycled
		statPacketsRecycled.Add(cur - pp.recycled)
		pp.recycled = cur
		pool.Put(pp)
	}
}

// TopoPoolStats are the per-topology platform counters of one fabric shape.
type TopoPoolStats struct {
	PlatformsCreated uint64 `json:"platforms_created"`
	PlatformsReused  uint64 `json:"platforms_reused"`
}

// PoolStatsSnapshot summarises the platform pool for capacity monitoring
// (surfaced by the server's /healthz).
type PoolStatsSnapshot struct {
	// PlatformsCreated counts every platform construction: pooled misses,
	// non-poolable (custom-Mapper) specs and shape-overflow throwaways.
	PlatformsCreated uint64 `json:"platforms_created"`
	// PlatformsReused counts runs served by resetting a pooled platform.
	PlatformsReused uint64 `json:"platforms_reused"`
	// PacketsRecycled totals packet-pool recycles across released platforms.
	PacketsRecycled uint64 `json:"packets_recycled"`
	// ByTopology breaks the platform counters down per fabric shape, keyed
	// by topology kind and grid ("mesh/16x8", "torus/8x4", "mesh/256x256")
	// so differently sized grids of one kind never alias each other's
	// counters. Absent until the first lease of that shape.
	ByTopology map[string]TopoPoolStats `json:"by_topology,omitempty"`
}

// PoolStats snapshots the platform-pool counters.
func PoolStats() PoolStatsSnapshot {
	snap := PoolStatsSnapshot{
		PlatformsCreated: statPlatformsCreated.Load(),
		PlatformsReused:  statPlatformsReused.Load(),
		PacketsRecycled:  statPacketsRecycled.Load(),
	}
	statByTopo.Range(func(k, v any) bool {
		tc := v.(*topoCounters)
		if snap.ByTopology == nil {
			snap.ByTopology = make(map[string]TopoPoolStats)
		}
		snap.ByTopology[k.(string)] = TopoPoolStats{
			PlatformsCreated: tc.created.Load(),
			PlatformsReused:  tc.reused.Load(),
		}
		return true
	})
	return snap
}
