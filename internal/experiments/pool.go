package experiments

import (
	"sync"
	"sync/atomic"

	"centurion/internal/aim"
	"centurion/internal/centurion"
	"centurion/internal/taskgraph"
	"centurion/internal/thermal"
)

// The platform pool: RunContext leases assembled platforms from per-shape
// sync.Pools instead of calling centurion.New per run. A leased platform is
// Reset(seed) in place — immutable structure (topology, route tables, task
// graph, wiring) is reused, mutable state is cleared — which makes the
// construction cost of a run O(state), not O(structure), and keeps sweeps
// allocation-free at steady state. Platform.Reset's bit-identity contract
// (TestSteppingEquivalencePooledReuse) guarantees pooled runs equal fresh
// ones for every seed.

// platformShape is the pool key: everything about a Spec that affects the
// *construction* of a platform, as opposed to one run's seed, duration,
// sampling or fault plan. Two specs with equal shapes can share recycled
// platforms.
type platformShape struct {
	model         Model
	width, height int
	// graph identifies a caller-supplied task graph by pointer; nil selects
	// the default fork–join workload. Callers that rebuild equivalent graphs
	// per run should share one instance to pool effectively (graphs are
	// immutable and race-safe once built).
	graph      *taskgraph.Graph
	neighbor   bool
	ni         aim.NIParams
	ffw        aim.FFWParams
	thermal    thermal.Params
	hasThermal bool
	dvfs       bool
}

// shape derives the pool key. Call only when the spec is poolable.
func (s Spec) shape() platformShape {
	k := platformShape{
		model:    s.Model,
		width:    s.Width,
		height:   s.Height,
		graph:    s.Graph,
		neighbor: s.NeighborSignals,
		dvfs:     s.ThermalDVFS,
	}
	switch s.Model {
	case ModelNI:
		k.ni = aim.DefaultNIParams()
		if s.NI != nil {
			k.ni = *s.NI
		}
	case ModelFFW:
		k.ffw = aim.DefaultFFWParams()
		if s.FFW != nil {
			k.ffw = *s.FFW
		}
	}
	if s.Thermal != nil {
		k.thermal = *s.Thermal
		k.hasThermal = true
	}
	return k
}

// poolable reports whether the spec's platforms may be recycled. A custom
// Mapper is an opaque interface value, so it cannot key the pool; those
// (rare, ablation-only) specs build fresh platforms.
func (s Spec) poolable() bool { return s.Mapper == nil }

// platformConfig builds the platform configuration the spec describes.
func (s Spec) platformConfig() centurion.Config {
	cfg := centurion.DefaultConfig(s.engineFactory(), s.mapper(), s.Seed)
	cfg.NeighborSignals = s.NeighborSignals
	cfg.Thermal = s.Thermal
	cfg.ThermalDVFS = s.ThermalDVFS
	if s.Width > 0 {
		cfg.Width = s.Width
	}
	if s.Height > 0 {
		cfg.Height = s.Height
	}
	if s.Graph != nil {
		cfg.Graph = s.Graph
	}
	return cfg
}

var (
	platformPools sync.Map // platformShape → *sync.Pool of *pooledPlatform
	// poolShapes counts distinct keys in platformPools. The map never
	// evicts (its keys pin their graphs), so beyond maxPoolShapes new
	// shapes run on fresh platforms instead of registering — a caller that
	// rebuilds an equivalent graph per run then degrades to pre-pool
	// behavior rather than growing the map one pinned entry per run.
	poolShapes atomic.Int64

	statPlatformsCreated atomic.Uint64
	statPlatformsReused  atomic.Uint64
	statPacketsRecycled  atomic.Uint64
)

// maxPoolShapes bounds the distinct platform shapes the pool tracks; far
// above any real workload mix (the paper's grids use a handful).
const maxPoolShapes = 64

// pooledPlatform wraps a recyclable platform with the packet-recycling
// watermark last reported to the global stats.
type pooledPlatform struct {
	p        *centurion.Platform
	recycled uint64
}

// leasePlatform returns a platform ready to run the spec (seeded, clean) and
// a release function that must be called exactly once when the run is over.
func leasePlatform(spec Spec) (*centurion.Platform, func()) {
	if !spec.poolable() {
		return centurion.New(spec.platformConfig()), func() {}
	}
	poolAny, ok := platformPools.Load(spec.shape())
	if !ok {
		if poolShapes.Load() >= maxPoolShapes {
			// Shape churn overflow: simulate on a throwaway platform.
			return centurion.New(spec.platformConfig()), func() {}
		}
		var loaded bool
		poolAny, loaded = platformPools.LoadOrStore(spec.shape(), new(sync.Pool))
		if !loaded {
			poolShapes.Add(1)
		}
	}
	pool := poolAny.(*sync.Pool)

	var pp *pooledPlatform
	if v := pool.Get(); v != nil {
		pp = v.(*pooledPlatform)
		pp.p.Reset(spec.Seed)
		statPlatformsReused.Add(1)
	} else {
		pp = &pooledPlatform{p: centurion.New(spec.platformConfig())}
		statPlatformsCreated.Add(1)
	}
	return pp.p, func() {
		// Publish the packets this platform recycled since its last release,
		// then hand it back dirty; the next lease resets it.
		cur := pp.p.PacketPool().Stats().Recycled
		statPacketsRecycled.Add(cur - pp.recycled)
		pp.recycled = cur
		pool.Put(pp)
	}
}

// PoolStatsSnapshot summarises the platform pool for capacity monitoring
// (surfaced by the server's /healthz).
type PoolStatsSnapshot struct {
	// PlatformsCreated counts platforms built because no pooled one fit.
	PlatformsCreated uint64 `json:"platforms_created"`
	// PlatformsReused counts runs served by resetting a pooled platform.
	PlatformsReused uint64 `json:"platforms_reused"`
	// PacketsRecycled totals packet-pool recycles across released platforms.
	PacketsRecycled uint64 `json:"packets_recycled"`
}

// PoolStats snapshots the platform-pool counters.
func PoolStats() PoolStatsSnapshot {
	return PoolStatsSnapshot{
		PlatformsCreated: statPlatformsCreated.Load(),
		PlatformsReused:  statPlatformsReused.Load(),
		PacketsRecycled:  statPacketsRecycled.Load(),
	}
}
