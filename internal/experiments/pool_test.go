package experiments

import (
	"testing"

	"centurion/internal/taskgraph"
)

func TestPlatformPoolReuses(t *testing.T) {
	spec := DefaultSpec(ModelNone, 1)
	spec.DurationMs = 10
	// A sync.Pool may be purged by an ill-timed GC; a few back-to-back
	// pairs make a complete miss effectively impossible.
	before := PoolStats()
	for seed := uint64(1); seed <= 6; seed++ {
		s := spec
		s.Seed = seed
		Run(s)
	}
	after := PoolStats()
	if after.PlatformsReused == before.PlatformsReused {
		t.Error("six same-shape runs reused no pooled platform")
	}
}

func TestPlatformPoolShapeCap(t *testing.T) {
	base := DefaultSpec(ModelNone, 1)
	base.Width, base.Height = 4, 2
	base.DurationMs = 1
	// Every iteration presents a distinct graph pointer — the worst-case
	// caller that rebuilds an equivalent graph per run. The pool must stop
	// registering shapes at the cap instead of pinning one graph per run.
	for i := 0; i < maxPoolShapes+8; i++ {
		s := base
		s.Graph = taskgraph.Pipeline(2, 40, 8)
		p, release := leasePlatform(s)
		if p == nil {
			t.Fatal("leasePlatform returned nil platform")
		}
		release()
	}
	if n := poolShapes.Load(); n > maxPoolShapes {
		t.Errorf("pool registered %d shapes, cap is %d", n, maxPoolShapes)
	}
}
