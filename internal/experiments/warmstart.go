package experiments

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"sync/atomic"

	"centurion/internal/aim"
	"centurion/internal/centurion"
	"centurion/internal/faults"
	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/thermal"
)

// Sweep warm-start (DESIGN.md §15). Every run of a fault sweep simulates the
// same settled prefix: nothing the fault plan does can matter before its
// first event fires, so the state at that boundary is a pure function of the
// spec minus its fault fields. RunContext therefore simulates each distinct
// prefix once, snapshots the platform at the divergence boundary, and serves
// every sibling variant by restoring the checkpoint into its leased platform
// and re-applying that variant's own schedule — one bulk copy instead of
// hundreds of simulated milliseconds. Fault-free specs degenerate to a
// prefix that covers the whole run; those cache the window samples and final
// counters only (no checkpoint), so repeated identical runs — benchmark
// iterations, cache-cold server sweeps — skip the simulation entirely.
//
// Entries are keyed by the SHA-256 of a canonical JSON encoding of the
// prefix-relevant spec fields (the same canonicalization discipline as
// server.RunSpec.CanonicalKey): everything that shapes the simulation up to
// the divergence boundary, and nothing that only matters after it. Specs
// carrying an opaque Mapper or caller-supplied Graph cannot be keyed and run
// cold, exactly like the platform pool's poolable() rule.

// warmBudgetDefault bounds the bytes of retained checkpoints and samples;
// at 16×8 a checkpoint encodes to a few hundred KB, so the default budget
// comfortably holds a full 100-seed Table-II sweep per model.
const warmBudgetDefault = 256 << 20

// warmEnabled gates the whole subsystem (default on). Tests flip it to
// compare warm-started runs against the cold path bit for bit.
var warmEnabled atomic.Bool

func init() { warmEnabled.Store(true) }

// SetWarmStart enables or disables prefix warm-starting and returns the
// previous setting. Disabling does not drop cached entries.
func SetWarmStart(on bool) bool { return warmEnabled.Swap(on) }

// warmKey is the prefix cache key: SHA-256 of the canonical prefix spec.
type warmKey [sha256.Size]byte

// prefixKeySpec is the canonical identity of a settled prefix: every spec
// field that shapes the simulation before the first fault event, plus the
// boundary itself. Field order is the canonical encoding order (encoding/json
// marshals struct fields in declaration order). Fields that the selected
// model never reads are omitted so they cannot split the cache, mirroring
// server.RunSpec canonicalization.
type prefixKeySpec struct {
	Model     Model           `json:"model"`
	Seed      uint64          `json:"seed"`
	PrefixWin int             `json:"prefix_windows"`
	WindowMs  int             `json:"window_ms"`
	Width     int             `json:"width"`
	Height    int             `json:"height"`
	Topology  string          `json:"topology"`
	Graph     string          `json:"graph,omitempty"`
	Neighbor  bool            `json:"neighbor_signals,omitempty"`
	NI        *aim.NIParams   `json:"ni,omitempty"`
	FFW       *aim.FFWParams  `json:"ffw,omitempty"`
	Thermal   *thermal.Params `json:"thermal,omitempty"`
	DVFS      bool            `json:"dvfs,omitempty"`
}

// warmKeyOf derives the cache key for the spec's settled prefix of
// prefixWin windows. Dimensions and topology are normalized exactly like
// platform construction defaults them, and the model-override params resolve
// to their effective values, so a spec that spells out the defaults shares
// entries with one that leaves them zero.
func warmKeyOf(spec Spec, prefixWin int) warmKey {
	ks := prefixKeySpec{
		Model:     spec.Model,
		Seed:      spec.Seed,
		PrefixWin: prefixWin,
		WindowMs:  spec.WindowMs,
		Width:     spec.Width,
		Height:    spec.Height,
		Topology:  spec.topologyKind(),
		Neighbor:  spec.NeighborSignals,
		Thermal:   spec.Thermal,
		DVFS:      spec.ThermalDVFS,
	}
	if spec.Graph != nil {
		// Content digest, not pointer identity: the server's named workloads
		// are rebuilt per process, and dispatch fleets must agree on keys.
		ks.Graph = spec.Graph.Fingerprint()
	}
	if ks.Width <= 0 {
		ks.Width = 16
	}
	if ks.Height <= 0 {
		ks.Height = 8
	}
	switch spec.Model {
	case ModelNI:
		par := aim.DefaultNIParams()
		if spec.NI != nil {
			par = *spec.NI
		}
		ks.NI = &par
	case ModelFFW:
		par := aim.DefaultFFWParams()
		if spec.FFW != nil {
			par = *spec.FFW
		}
		ks.FFW = &par
	}
	b, err := json.Marshal(ks)
	if err != nil {
		// prefixKeySpec holds only plain data; Marshal cannot fail.
		panic("experiments: marshaling prefix key: " + err.Error())
	}
	return sha256.Sum256(b)
}

// warmApplicable reports whether the spec may use the prefix cache at all. A
// custom Mapper is an opaque interface value that cannot key entries, like
// poolable(); caller-supplied Graphs are fine — they key by content digest.
func warmApplicable(spec Spec) bool {
	return warmEnabled.Load() && spec.Mapper == nil
}

// warmDivergenceWin returns the divergence boundary in whole windows: the
// last window boundary at or before the first fault event (the whole run for
// fault-free specs). A prefix of zero windows is not worth caching.
func warmDivergenceWin(spec Spec, sched faults.Schedule, legacyAt sim.Tick, windows int, windowTicks sim.Tick) int {
	div := windows
	if spec.FaultProfile != nil {
		if len(sched.Events) > 0 {
			div = int(sched.Events[0].At / windowTicks)
		}
	} else if legacyAt > 0 {
		div = int(legacyAt / windowTicks)
	}
	if div > windows {
		div = windows
	}
	return div
}

// WarmPrefixKey returns the hex prefix-cache key RunContext will use for the
// spec, and whether the spec is warm-startable at all. The dispatch layer
// ships it with each leased sweep cell so worker daemons can recognise the
// shared prefix a batch forks from (they recompute it from the spec anyway;
// a mismatch flags canonicalization skew between coordinator and worker).
func WarmPrefixKey(spec Spec) (string, bool) {
	if spec.DurationMs <= 0 {
		spec.DurationMs = 1000
	}
	if spec.WindowMs <= 0 {
		spec.WindowMs = 1
	}
	if !warmApplicable(spec) {
		return "", false
	}
	windows := spec.DurationMs / spec.WindowMs
	if windows <= 0 {
		return "", false
	}
	windowTicks := sim.Tick(spec.WindowMs) * sim.TicksPerMs
	var sched faults.Schedule
	var legacyAt sim.Tick
	if spec.FaultProfile != nil {
		w, h := spec.Width, spec.Height
		if w <= 0 {
			w = 16
		}
		if h <= 0 {
			h = 8
		}
		topo, err := noc.MakeTopology(spec.topologyKind(), w, h)
		if err != nil {
			return "", false
		}
		sched, err = faults.Build(topo, spec.Seed, *spec.FaultProfile, spec.DurationMs)
		if err != nil {
			return "", false
		}
	} else if spec.NumFaults > 0 && spec.FaultAtMs > 0 {
		legacyAt = sim.Ms(float64(spec.FaultAtMs))
	}
	div := warmDivergenceWin(spec, sched, legacyAt, windows, windowTicks)
	if div <= 0 {
		return "", false
	}
	k := warmKeyOf(spec, div)
	return hex.EncodeToString(k[:]), true
}

// warmEntry is one cached settled prefix. Entries are immutable once stored:
// forks restore from cp (read-only) and copy the sample arrays out, so one
// entry may serve many concurrent RunMany workers. cp is nil for
// full-duration (fault-free) entries, which replay from samples alone.
type warmEntry struct {
	cp           *centurion.Checkpoint
	thr, act, sw []float64
	counters     centurion.Counters
	bytes        int
}

// buildWarmEntry captures the platform at the divergence boundary together
// with the prefix window samples. For a prefix covering the whole run the
// checkpoint is skipped — the samples and final counters reproduce the
// entire Result without touching a platform.
func buildWarmEntry(p *centurion.Platform, res *Result, div, windows int) *warmEntry {
	e := &warmEntry{
		thr: append([]float64(nil), res.Throughput.Values[:div]...),
		act: append([]float64(nil), res.NodesActive.Values[:div]...),
		sw:  append([]float64(nil), res.Switches.Values[:div]...),
	}
	e.bytes = 3 * 8 * div
	if div < windows {
		e.cp = p.Snapshot()
		// The encoded length is the exact payload size of the state held —
		// the honest budget figure for eviction accounting.
		e.bytes += len(centurion.EncodeCheckpoint(e.cp))
	} else {
		e.counters = p.Counters()
	}
	return e
}

// warmLRU is the byte-budgeted LRU of settled prefixes, shared process-wide
// (sweep harness, server jobs and worker daemons all fork from it).
type warmLRU struct {
	mu     sync.Mutex
	budget int
	order  *list.List // front = most recently used; values are *warmLRUEntry
	byKey  map[warmKey]*list.Element
	bytes  int

	hits, misses, builds, forks, evictions uint64
}

type warmLRUEntry struct {
	key warmKey
	e   *warmEntry
}

var warmCache = newWarmLRU(warmBudgetDefault)

func newWarmLRU(budget int) *warmLRU {
	return &warmLRU{
		budget: budget,
		order:  list.New(),
		byKey:  make(map[warmKey]*list.Element),
	}
}

func (c *warmLRU) get(key warmKey) (*warmEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*warmLRUEntry).e, true
}

func (c *warmLRU) put(key warmKey, e *warmEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.builds++
	if el, ok := c.byKey[key]; ok {
		// Two workers raced to build the same prefix; keep the newest.
		le := el.Value.(*warmLRUEntry)
		c.bytes += e.bytes - le.e.bytes
		le.e = e
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&warmLRUEntry{key: key, e: e})
		c.bytes += e.bytes
	}
	// Evict from the cold end until the budget holds. A lone entry may
	// exceed the budget (it still serves its siblings; evicting it would
	// just rebuild it on the next run).
	for c.bytes > c.budget && c.order.Len() > 1 {
		oldest := c.order.Back()
		le := oldest.Value.(*warmLRUEntry)
		c.order.Remove(oldest)
		delete(c.byKey, le.key)
		c.bytes -= le.e.bytes
		c.evictions++
	}
}

// forkServed counts one variant served by restoring a cached checkpoint.
func (c *warmLRU) forkServed() {
	c.mu.Lock()
	c.forks++
	c.mu.Unlock()
}

// setBudget rebounds the byte budget (tests exercise eviction with tiny
// budgets). Does not evict retroactively; the next put applies it.
func (c *warmLRU) setBudget(n int) {
	c.mu.Lock()
	c.budget = n
	c.mu.Unlock()
}

// WarmStartStats is the warm-start section of the server's /healthz: cache
// occupancy plus how much sweep work the prefix cache is absorbing.
type WarmStartStats struct {
	// Entries and Bytes describe the retained prefixes (checkpoints plus
	// window samples).
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
	// Hits/Misses count prefix-cache lookups by runs; Builds counts prefixes
	// simulated and stored (greater than distinct keys when workers race).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Builds uint64 `json:"builds"`
	// ForksServed counts runs answered by restoring a cached checkpoint into
	// a leased platform (full-duration sample replays hit without forking).
	ForksServed uint64 `json:"forks_served"`
	Evictions   uint64 `json:"evictions"`
}

// WarmStats snapshots the warm-start cache counters.
func WarmStats() WarmStartStats {
	warmCache.mu.Lock()
	defer warmCache.mu.Unlock()
	return WarmStartStats{
		Entries:     warmCache.order.Len(),
		Bytes:       warmCache.bytes,
		Hits:        warmCache.hits,
		Misses:      warmCache.misses,
		Builds:      warmCache.builds,
		ForksServed: warmCache.forks,
		Evictions:   warmCache.evictions,
	}
}

// ResetWarmStart drops every cached prefix and zeroes the counters.
func ResetWarmStart() {
	warmCache.mu.Lock()
	defer warmCache.mu.Unlock()
	warmCache.order.Init()
	clear(warmCache.byKey)
	warmCache.bytes = 0
	warmCache.hits, warmCache.misses, warmCache.builds = 0, 0, 0
	warmCache.forks, warmCache.evictions = 0, 0
}
