package experiments

import (
	"strings"
	"testing"

	"centurion/internal/metrics"
)

// Short runs keep the suite fast; shapes are asserted loosely here and
// tightly in EXPERIMENTS.md (full 100-run sweeps).

func TestRunBaseline(t *testing.T) {
	spec := DefaultSpec(ModelNone, 1)
	spec.DurationMs = 300
	r := Run(spec)
	if r.Throughput.Len() != 300 {
		t.Fatalf("throughput windows = %d", r.Throughput.Len())
	}
	if r.SteadyRate < 1.5 || r.SteadyRate > 3 {
		t.Errorf("baseline steady rate = %.2f inst/ms, want ~2.2", r.SteadyRate)
	}
	if !r.Settled {
		t.Error("baseline did not settle")
	}
	if r.SettlingMs > 100 {
		t.Errorf("baseline settling = %.0f ms, want fast pipe-fill", r.SettlingMs)
	}
	if r.Counters.TaskSwitches != 0 {
		t.Error("baseline switched tasks")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	// Same spec + seed twice must reproduce not just the counters but the
	// full throughput/activity/switch series, for every model, fault-free
	// and faulted — the spec-level face of the stepping determinism
	// contract (see internal/centurion's TestSteppingEquivalence for the
	// dense-versus-active half).
	sameSeries := func(a, b *metrics.Series) bool {
		if len(a.Values) != len(b.Values) {
			return false
		}
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				return false
			}
		}
		return true
	}
	for _, model := range Models {
		for _, faults := range []int{0, 16} {
			spec := DefaultSpec(model, 7)
			spec.DurationMs = 200
			if faults > 0 {
				spec.FaultAtMs = 100
				spec.NumFaults = faults
			}
			a, b := Run(spec), Run(spec)
			if a.Counters != b.Counters {
				t.Errorf("%v faults=%d: counters diverged: %+v vs %+v",
					model, faults, a.Counters, b.Counters)
			}
			for _, s := range []struct {
				name string
				x, y *metrics.Series
			}{
				{"throughput", a.Throughput, b.Throughput},
				{"nodes-active", a.NodesActive, b.NodesActive},
				{"switches", a.Switches, b.Switches},
			} {
				if !sameSeries(s.x, s.y) {
					t.Errorf("%v faults=%d: %s series diverged", model, faults, s.name)
				}
			}
		}
	}
}

func TestRunWithFaults(t *testing.T) {
	spec := DefaultSpec(ModelNone, 3)
	spec.DurationMs = 600
	spec.FaultAtMs = 300
	spec.NumFaults = 32
	r := Run(spec)
	if r.PostFaultRate >= r.SteadyRate {
		t.Errorf("32 faults did not reduce throughput: pre %.2f post %.2f",
			r.SteadyRate, r.PostFaultRate)
	}
	if r.PostFaultRate <= 0 {
		t.Error("post-fault throughput is zero")
	}
}

func TestAdaptiveModelsSwitch(t *testing.T) {
	for _, m := range []Model{ModelNI, ModelFFW} {
		spec := DefaultSpec(m, 2)
		spec.DurationMs = 400
		r := Run(spec)
		if r.Counters.TaskSwitches == 0 {
			t.Errorf("%v made no task switches from a random mapping", m)
		}
		if r.Counters.InstancesCompleted == 0 {
			t.Errorf("%v completed nothing", m)
		}
	}
}

func TestRandomStaticWorseThanFFW(t *testing.T) {
	// The random mapping without intelligence must not beat FFW from the
	// same mapping (the whole point of the adaptation).
	var static, ffw float64
	for seed := uint64(1); seed <= 3; seed++ {
		s1 := DefaultSpec(ModelRandomStatic, seed)
		s1.DurationMs = 600
		static += Run(s1).PostFaultRate
		s2 := DefaultSpec(ModelFFW, seed)
		s2.DurationMs = 600
		ffw += Run(s2).PostFaultRate
	}
	if ffw <= static {
		t.Errorf("FFW (%.2f) did not beat its own static start (%.2f)", ffw/3, static/3)
	}
}

func TestRunManyOrderingAndParallelism(t *testing.T) {
	spec := DefaultSpec(ModelNone, 0)
	spec.DurationMs = 100
	res := RunMany(spec, 4, 10)
	if len(res) != 4 {
		t.Fatalf("RunMany returned %d results", len(res))
	}
	for i, r := range res {
		if r.Spec.Seed != uint64(10+i) {
			t.Errorf("result %d has seed %d", i, r.Spec.Seed)
		}
	}
	// Parallel execution must be deterministic.
	res2 := RunMany(spec, 4, 10)
	for i := range res {
		if res[i].Counters != res2[i].Counters {
			t.Errorf("parallel RunMany not deterministic at %d", i)
		}
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t1 := Table1(6, 1)
	if len(t1.Rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(t1.Rows))
	}
	if t1.ReferenceRate <= 0 {
		t.Fatal("reference rate not positive")
	}
	// Reference row median is 100% by construction.
	ref := t1.Rows[0]
	if ref.Model != ModelNone || ref.RelativePct.Q2 < 99 || ref.RelativePct.Q2 > 101 {
		t.Errorf("reference row = %+v", ref)
	}
	text := t1.Render()
	for _, want := range []string{"TABLE I", "No Intelligence", "Network Interaction", "Foraging For Work"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t2 := Table2(4, 1, []int{0, 16})
	if len(t2.Rows) != 6 {
		t.Fatalf("Table2 rows = %d", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row.Faults == 0 && row.HasRecovery {
			t.Error("zero-fault row has recovery time")
		}
		if row.Faults > 0 && !row.HasRecovery {
			t.Error("faulted row missing recovery time")
		}
	}
	// Degradation: every model's 16-fault median must be below its 0-fault
	// median.
	medians := map[Model]map[int]float64{}
	for _, row := range t2.Rows {
		if medians[row.Model] == nil {
			medians[row.Model] = map[int]float64{}
		}
		medians[row.Model][row.Faults] = row.RelativePct.Q2
	}
	// The static baseline must degrade strictly; the adaptive models recover
	// some of the loss and their 4-run medians are noisy, so only insist they
	// do not *gain* more than noise from losing 16 nodes.
	if medians[ModelNone][16] >= medians[ModelNone][0] {
		t.Errorf("No Intelligence: 16-fault median %.0f%% >= 0-fault %.0f%%",
			medians[ModelNone][16], medians[ModelNone][0])
	}
	for _, m := range []Model{ModelNI, ModelFFW} {
		if medians[m][16] > medians[m][0]*1.1 {
			t.Errorf("%v: 16-fault median %.0f%% implausibly above 0-fault %.0f%%",
				m, medians[m][16], medians[m][0])
		}
	}
	if !strings.Contains(t2.Render(), "TABLE II") {
		t.Error("render missing header")
	}
}

func TestFig4SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := Fig4(5, 1)
	if len(f.Cases) != 3 {
		t.Fatalf("Fig4 cases = %d", len(f.Cases))
	}
	var csv strings.Builder
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1001 {
		t.Errorf("CSV has %d lines, want header+1000", len(lines))
	}
	if !strings.Contains(lines[0], "none_throughput") || !strings.Contains(lines[0], "ffw_switches") {
		t.Errorf("CSV header = %q", lines[0])
	}
	art := f.RenderASCII()
	if !strings.Contains(art, "FIGURE 4") || len(art) < 200 {
		t.Error("ASCII rendering too small")
	}
}

func TestModelStrings(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []Model{ModelNone, ModelNI, ModelFFW, ModelRandomStatic} {
		n := m.String()
		if n == "" || n == "unknown" || names[n] {
			t.Errorf("model %d name %q", m, n)
		}
		names[n] = true
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline width = %d", len([]rune(s)))
	}
	if sparkline(nil, 10) != "" {
		t.Error("empty sparkline not empty")
	}
	flat := sparkline([]float64{0, 0, 0}, 3)
	if len([]rune(flat)) != 3 {
		t.Error("flat sparkline wrong width")
	}
}
