package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"centurion/internal/metrics"
)

// Fig4Case is the time-series data of one model under one fault scenario —
// one panel row of the paper's Figure 4.
type Fig4Case struct {
	Model  Model
	Faults int
	Result Result
}

// Fig4Result holds all panels for one fault count (the paper shows 5-fault
// and 42-fault columns).
type Fig4Result struct {
	Faults    int
	FaultAtMs int
	Cases     []Fig4Case
}

// Fig4 runs the Figure 4 experiment: one run per model with the given fault
// count injected at 500 ms, sampled per millisecond.
func Fig4(faultCount int, seed uint64) Fig4Result {
	out := Fig4Result{Faults: faultCount, FaultAtMs: 500}
	for _, m := range Models {
		spec := DefaultSpec(m, seed)
		spec.FaultAtMs = 500
		spec.NumFaults = faultCount
		out.Cases = append(out.Cases, Fig4Case{Model: m, Faults: faultCount, Result: Run(spec)})
	}
	return out
}

// Release recycles every case's series buffers into the shared run pools.
// Call it once the figure has been rendered or written out; the series are
// invalid afterwards (summary scalars in each Result remain usable). Figure
// sweeps that skip this run the measurement layer allocation-per-panel
// instead of allocation-free.
func (f *Fig4Result) Release() {
	for i := range f.Cases {
		f.Cases[i].Result.Release()
	}
}

// DefaultFig4Faults are the paper's two Figure 4 scenarios: 5 faults (local
// application faults) and 42 faults (one third of the 128 nodes, e.g. a
// failed global clock buffer).
var DefaultFig4Faults = []int{5, 42}

// WriteCSV emits the panel data as CSV: one row per window with throughput,
// nodes-active and task-switch columns for every model.
func (f Fig4Result) WriteCSV(w io.Writer) error {
	header := []string{"time_ms"}
	for _, c := range f.Cases {
		name := shortName(c.Model)
		header = append(header,
			name+"_throughput", name+"_nodes_active", name+"_switches")
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	if len(f.Cases) == 0 {
		return nil
	}
	n := f.Cases[0].Result.Throughput.Len()
	row := make([]byte, 0, 16*len(header))
	for i := 0; i < n; i++ {
		row = strconv.AppendFloat(row[:0], float64(i)*f.Cases[0].Result.Throughput.WindowMs, 'f', 0, 64)
		for _, c := range f.Cases {
			row = strconv.AppendFloat(append(row, ','), c.Result.Throughput.Values[i], 'f', 0, 64)
			row = strconv.AppendFloat(append(row, ','), c.Result.NodesActive.Values[i], 'f', 0, 64)
			row = strconv.AppendFloat(append(row, ','), c.Result.Switches.Values[i], 'f', 0, 64)
		}
		row = append(row, '\n')
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func shortName(m Model) string {
	switch m {
	case ModelNone:
		return "none"
	case ModelNI:
		return "ni"
	case ModelFFW:
		return "ffw"
	case ModelRandomStatic:
		return "random_static"
	}
	return "unknown"
}

// RenderASCII draws the figure's panels as terminal sparklines so the shape
// (settling, fault dip at 500 ms, recovery) is visible without a plotting
// tool.
func (f Fig4Result) RenderASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4 — %d faults injected at %d ms\n\n", f.Faults, f.FaultAtMs)
	for _, c := range f.Cases {
		fmt.Fprintf(&b, "%-22s throughput (inst/ms, smoothed):\n", c.Model)
		fmt.Fprintf(&b, "  %s\n", sparkline(metrics.MovingAverage(c.Result.Throughput.Values, 10), 100))
		fmt.Fprintf(&b, "%-22s task switches /ms (smoothed):\n", "")
		fmt.Fprintf(&b, "  %s\n\n", sparkline(metrics.MovingAverage(c.Result.Switches.Values, 10), 100))
	}
	return b.String()
}

// sparkline down-samples xs to width columns of eight-level block glyphs.
func sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if width > len(xs) {
		width = len(xs)
	}
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		buckets[i] = metrics.Mean(xs[lo:hi])
	}
	maxVal := 0.0
	for _, v := range buckets {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range buckets {
		idx := int(v / maxVal * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
