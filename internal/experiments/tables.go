package experiments

import (
	"fmt"
	"strings"

	"centurion/internal/metrics"
)

// Table1Row is one model's row of Table I.
type Table1Row struct {
	Model       Model
	Settling    metrics.Summary // ms
	RelativePct metrics.Summary // % of the reference median
	Runs        int
}

// Table1Result reproduces Table I: performance reached after settling time
// without fault injection, relative to the No-Intelligence median.
type Table1Result struct {
	Rows []Table1Row
	// ReferenceRate is the No-Intelligence median steady throughput
	// (instances per ms) that defines 100%.
	ReferenceRate float64
	Runs          int
}

// Table1 runs the Table I experiment: `runs` independent runs per model,
// no faults. Seeds are seedBase..seedBase+runs-1 for every model.
func Table1(runs int, seedBase uint64) Table1Result {
	if runs <= 0 {
		runs = 100
	}
	perModel := make(map[Model][]Result, len(Models))
	for _, m := range Models {
		perModel[m] = RunMany(DefaultSpec(m, 0), runs, seedBase)
	}
	ref := referenceRate(perModel[ModelNone])

	out := Table1Result{ReferenceRate: ref, Runs: runs}
	for _, m := range Models {
		res := perModel[m]
		settling := make([]float64, 0, len(res))
		rel := make([]float64, 0, len(res))
		for i := range res {
			settling = append(settling, res[i].SettlingMs)
			rel = append(rel, 100*res[i].SteadyRate/ref)
			res[i].Release() // series reduced to scalars; recycle the buffers
		}
		out.Rows = append(out.Rows, Table1Row{
			Model:       m,
			Settling:    metrics.Quartiles(settling),
			RelativePct: metrics.Quartiles(rel),
			Runs:        runs,
		})
	}
	return out
}

// referenceRate returns the median steady rate of the reference runs.
func referenceRate(res []Result) float64 {
	rates := make([]float64, 0, len(res))
	for _, r := range res {
		rates = append(rates, r.SteadyRate)
	}
	ref := metrics.Percentile(rates, 0.5)
	if ref <= 0 {
		ref = 1e-9 // avoid division by zero on pathological configs
	}
	return ref
}

// Render prints the table in the paper's layout.
func (t Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I — performance reached after settling time, no fault injection\n")
	fmt.Fprintf(&b, "(%d runs per model; relative to No-Intelligence median = %.2f instances/ms)\n\n", t.Runs, t.ReferenceRate)
	fmt.Fprintf(&b, "%-22s | %-23s | %-23s\n", "", "Settling Time (ms)", "Relative Performance (%)")
	fmt.Fprintf(&b, "%-22s | %7s %7s %7s | %7s %7s %7s\n", "Model", "Q1", "Q2", "Q3", "Q1", "Q2", "Q3")
	fmt.Fprintln(&b, strings.Repeat("-", 76))
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s | %7.0f %7.0f %7.0f | %6.0f%% %6.0f%% %6.0f%%\n",
			r.Model, r.Settling.Q1, r.Settling.Q2, r.Settling.Q3,
			r.RelativePct.Q1, r.RelativePct.Q2, r.RelativePct.Q3)
	}
	return b.String()
}

// Table2Row is one (model, fault-count) cell of Table II.
type Table2Row struct {
	Model       Model
	Faults      int
	Recovery    metrics.Summary // ms; zero-fault rows have no recovery time
	HasRecovery bool
	RelativePct metrics.Summary
	Runs        int
}

// Table2Result reproduces Table II: performance reached after recovery time
// following fault injection at 500 ms.
type Table2Result struct {
	Rows          []Table2Row
	FaultCounts   []int
	ReferenceRate float64
	Runs          int
}

// DefaultFaultCounts are the paper's Table II fault levels.
var DefaultFaultCounts = []int{0, 2, 4, 8, 16, 32}

// Table2 runs the Table II experiment: for every model and fault count,
// `runs` runs with fault injection at 500 ms. The 100% reference is the
// No-Intelligence zero-fault median, as in the paper's highlighted row.
func Table2(runs int, seedBase uint64, faultCounts []int) Table2Result {
	if runs <= 0 {
		runs = 100
	}
	if len(faultCounts) == 0 {
		faultCounts = DefaultFaultCounts
	}
	out := Table2Result{FaultCounts: faultCounts, Runs: runs}

	// Reference: No-Intelligence without faults.
	refRuns := RunMany(DefaultSpec(ModelNone, 0), runs, seedBase)
	out.ReferenceRate = referenceRate(refRuns)
	for i := range refRuns {
		refRuns[i].Release()
	}

	for _, m := range Models {
		for _, k := range faultCounts {
			spec := DefaultSpec(m, 0)
			spec.FaultAtMs = 500
			spec.NumFaults = k
			var res []Result
			if k == 0 {
				spec.FaultAtMs = 0
				res = RunMany(spec, runs, seedBase)
			} else {
				res = RunMany(spec, runs, seedBase)
			}
			rel := make([]float64, 0, runs)
			rec := make([]float64, 0, runs)
			for i := range res {
				rel = append(rel, 100*res[i].PostFaultRate/out.ReferenceRate)
				if k > 0 {
					rec = append(rec, res[i].RecoveryMs)
				}
				res[i].Release()
			}
			row := Table2Row{Model: m, Faults: k, RelativePct: metrics.Quartiles(rel), Runs: runs}
			if k > 0 {
				row.Recovery = metrics.Quartiles(rec)
				row.HasRecovery = true
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Render prints the table in the paper's layout.
func (t Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II — performance reached after recovery time, faults injected at 500 ms\n")
	fmt.Fprintf(&b, "(%d runs per cell; relative to No-Intelligence zero-fault median = %.2f instances/ms)\n\n", t.Runs, t.ReferenceRate)
	fmt.Fprintf(&b, "%-22s | %6s | %-23s | %-23s\n", "", "", "Recovery Time (ms)", "Relative Performance (%)")
	fmt.Fprintf(&b, "%-22s | %6s | %7s %7s %7s | %7s %7s %7s\n", "Model", "Faults", "Q1", "Q2", "Q3", "Q1", "Q2", "Q3")
	fmt.Fprintln(&b, strings.Repeat("-", 90))
	for _, r := range t.Rows {
		if r.HasRecovery {
			fmt.Fprintf(&b, "%-22s | %6d | %7.0f %7.0f %7.0f | %6.0f%% %6.0f%% %6.0f%%\n",
				r.Model, r.Faults, r.Recovery.Q1, r.Recovery.Q2, r.Recovery.Q3,
				r.RelativePct.Q1, r.RelativePct.Q2, r.RelativePct.Q3)
		} else {
			fmt.Fprintf(&b, "%-22s | %6d | %7s %7s %7s | %6.0f%% %6.0f%% %6.0f%%\n",
				r.Model, r.Faults, "-", "-", "-",
				r.RelativePct.Q1, r.RelativePct.Q2, r.RelativePct.Q3)
		}
	}
	return b.String()
}
