// Package trace records platform events for offline analysis — the
// simulator's counterpart of the experiment runtime data the Centurion
// controller streams to the host PC over its LVDS link.
package trace

import (
	"fmt"
	"io"

	"centurion/internal/noc"
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Kind classifies a traced event.
type Kind int

// Event kinds.
const (
	// KindSwitch: a node switched task (Task = new task, Info = old task).
	KindSwitch Kind = iota
	// KindFault: a node failed.
	KindFault
	// KindComplete: an application instance completed (Info = instance ID).
	KindComplete
	// KindLost: an instance was reported lost (Info = instance ID).
	KindLost
	// KindDrop: the fabric dropped a packet (Info = packet ID).
	KindDrop
	// KindRevive: a downed node rejoined the platform.
	KindRevive
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindFault:
		return "fault"
	case KindComplete:
		return "complete"
	case KindLost:
		return "lost"
	case KindDrop:
		return "drop"
	case KindRevive:
		return "revive"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one traced occurrence.
type Event struct {
	At   sim.Tick
	Kind Kind
	Node noc.NodeID
	Task taskgraph.TaskID
	Info uint64
}

// Log is a bounded in-memory event recorder. The zero value is unbounded;
// NewLog(max) drops (and counts) events beyond max, so tracing can stay on
// for long sweeps without unbounded memory.
type Log struct {
	events  []Event
	max     int
	dropped uint64
}

// NewLog returns a log bounded to max events (0 = unbounded).
func NewLog(max int) *Log { return &Log{max: max} }

// Add records an event.
func (l *Log) Add(e Event) {
	if l.max > 0 && len(l.events) >= l.max {
		l.dropped++
		return
	}
	l.events = append(l.events, e)
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns how many events exceeded the bound.
func (l *Log) Dropped() uint64 { return l.dropped }

// Events returns the recorded events (not a copy; treat as read-only).
func (l *Log) Events() []Event { return l.events }

// Filter returns the events of one kind.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind tallies events per kind.
func (l *Log) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range l.events {
		out[e.Kind]++
	}
	return out
}

// Reset clears the log.
func (l *Log) Reset() {
	l.events = l.events[:0]
	l.dropped = 0
}

// WriteCSV emits "time_ms,kind,node,task,info" rows.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ms,kind,node,task,info"); err != nil {
		return err
	}
	for _, e := range l.events {
		if _, err := fmt.Fprintf(w, "%.1f,%s,%d,%d,%d\n",
			e.At.Milliseconds(), e.Kind, e.Node, e.Task, e.Info); err != nil {
			return err
		}
	}
	return nil
}
