package trace

import (
	"strings"
	"testing"

	"centurion/internal/sim"
)

func TestLogBasics(t *testing.T) {
	l := NewLog(0)
	l.Add(Event{At: 10, Kind: KindSwitch, Node: 3, Task: 2, Info: 1})
	l.Add(Event{At: 20, Kind: KindFault, Node: 5})
	l.Add(Event{At: 30, Kind: KindComplete, Node: 7, Info: 42})
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.Filter(KindFault); len(got) != 1 || got[0].Node != 5 {
		t.Errorf("Filter(fault) = %v", got)
	}
	counts := l.CountByKind()
	if counts[KindSwitch] != 1 || counts[KindComplete] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestLogBound(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{At: sim.Tick(i), Kind: KindDrop})
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want bound 2", l.Len())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", l.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewLog(0)
	l.Add(Event{At: sim.Ms(1.5), Kind: KindSwitch, Node: 3, Task: 2, Info: 1})
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "time_ms,kind,node,task,info\n") {
		t.Errorf("header missing: %q", got)
	}
	if !strings.Contains(got, "1.5,switch,3,2,1") {
		t.Errorf("row missing: %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindSwitch, KindFault, KindComplete, KindLost, KindDrop} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind %d has name %q", k, s)
		}
	}
}
