package aim

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// FFWParams tune the Foraging for Work engine.
type FFWParams struct {
	// Timeout is the task-switch timeout: how long after the deadline
	// monitor arms the engine the node waits (for its own task's work to
	// resume) before adopting the task of the next queued packet.
	// The paper's experiments use 20 ms.
	Timeout sim.Tick
	// ArmOnLapse selects the paper's full model: the timeout counter is set
	// up when "a packet deadline comes too close or has lapsed". When false,
	// the engine degrades to a pure idleness timeout (an ablation that is
	// unstable under load — see BenchmarkAblationFFWNoLapseArming).
	ArmOnLapse bool
	// PinSources prevents switching away from a source task (DESIGN.md §5).
	PinSources bool
}

// DefaultFFWParams are the paper's experiment settings: a 20 ms timeout
// armed by the deadline-lapse monitor.
func DefaultFFWParams() FFWParams {
	return FFWParams{
		Timeout:    sim.Ms(20),
		ArmOnLapse: true,
		PinSources: true,
	}
}

// QueuePeek looks up the destination task of the next data packet in the
// local router's queues. ok is false when nothing is queued. The platform
// wires this to noc.Router.QueuedHeadTask.
type QueuePeek func(now sim.Tick) (taskgraph.TaskID, bool)

// FFW is the Foraging for Work model, following the paper's description:
// three monitors (task of packet routed, packet routed to internal node,
// time since sent). A threshold circuit detects when a packet deadline has
// come too close or lapsed and sets up a timeout counter; once that timer
// expires, the node switches to the task of the next packet in the routing
// queue "in order to sink and process it locally". Every internally routed
// packet resets the timeout, so as long as a node's current task suits the
// routing and processing requirements, task switching is suppressed.
type FFW struct {
	par     FFWParams
	base    FFWParams // as-constructed copy, restored by HardReset
	graph   *taskgraph.Graph
	current taskgraph.TaskID
	peek    QueuePeek

	armed    bool
	armTime  sim.Tick
	lastWork sim.Tick
}

// NewFFW builds a Foraging for Work engine.
func NewFFW(g *taskgraph.Graph, par FFWParams) *FFW {
	if par.Timeout <= 0 {
		par.Timeout = DefaultFFWParams().Timeout
	}
	return &FFW{par: par, base: par, graph: g}
}

// NewFFWFactory returns a Factory producing FFW engines with the parameters.
func NewFFWFactory(par FFWParams) Factory {
	return func(g *taskgraph.Graph) Engine { return NewFFW(g, par) }
}

// SetQueuePeek wires the router-queue monitor. Decide returns no decision
// until a peek function is attached.
func (e *FFW) SetQueuePeek(p QueuePeek) { e.peek = p }

// Name implements Engine.
func (e *FFW) Name() string { return "foraging-for-work" }

// OnRouted implements Engine: through-traffic alone is not local work.
func (e *FFW) OnRouted(taskgraph.TaskID, sim.Tick) {}

// OnInternal implements Engine: an internally routed packet disarms the
// task-switch timeout — the node's task is serving real demand.
func (e *FFW) OnInternal(task taskgraph.TaskID, now sim.Tick) {
	e.armed = false
	e.lastWork = now
}

// OnGenerated implements Engine: a generating source is doing work.
func (e *FFW) OnGenerated(now sim.Tick) {
	e.armed = false
	e.lastWork = now
}

// OnDeadlineLapse implements Engine: a late packet in the routing queue is
// the evidence of service failure that arms the switch timer.
func (e *FFW) OnDeadlineLapse(task taskgraph.TaskID, now sim.Tick) {
	if e.par.ArmOnLapse && !e.armed {
		e.armed = true
		e.armTime = now
	}
}

// OnNeighborSignal implements Engine: FFW is purely local.
func (e *FFW) OnNeighborSignal(taskgraph.TaskID, sim.Tick) {}

// Decide implements Engine.
func (e *FFW) Decide(now sim.Tick) (taskgraph.TaskID, bool) {
	if e.peek == nil {
		return taskgraph.None, false
	}
	if e.par.PinSources && e.graph.IsSource(e.current) {
		return taskgraph.None, false
	}
	if e.par.ArmOnLapse {
		if !e.armed || now-e.armTime < e.par.Timeout {
			return taskgraph.None, false
		}
		e.armed = false
	} else {
		// Ablation: pure idleness timeout, re-armed every window.
		if now-e.lastWork < e.par.Timeout {
			return taskgraph.None, false
		}
		e.lastWork = now
	}
	task, ok := e.peek(now)
	if !ok || task == e.current || task == taskgraph.None {
		return taskgraph.None, false
	}
	return task, true
}

// NextDecide implements DecideWaker. In the paper's lapse-armed model the
// engine is dormant until the armed timeout expires; in the pure-idleness
// ablation Decide re-arms lastWork every Timeout window, so the next
// self-driven mutation is always one timeout after the last.
func (e *FFW) NextDecide(now sim.Tick) (sim.Tick, bool) {
	if e.peek == nil {
		return 0, false
	}
	if e.par.PinSources && e.graph.IsSource(e.current) {
		return 0, false
	}
	if e.par.ArmOnLapse {
		if !e.armed {
			return 0, false
		}
		return e.armTime + e.par.Timeout, true
	}
	return e.lastWork + e.par.Timeout, true
}

// NoteTask implements Engine.
func (e *FFW) NoteTask(task taskgraph.TaskID) { e.current = task }

// SetParam implements Engine.
func (e *FFW) SetParam(param, value int) {
	switch param {
	case ParamTimeout:
		if value > 0 {
			e.par.Timeout = sim.Tick(value)
		}
	case ParamLapseBoost:
		e.par.ArmOnLapse = value != 0
	case ParamPinSources:
		e.par.PinSources = value != 0
	}
}

// Reset implements Engine.
func (e *FFW) Reset() {
	e.armed = false
	e.lastWork = 0
}

// HardReset implements HardResetter: parameters return to their constructed
// values and all dynamic state clears, as if the engine were rebuilt.
func (e *FFW) HardReset() {
	e.par = e.base
	e.armed = false
	e.armTime = 0
	e.lastWork = 0
}

// Armed exposes the timer state (for tests).
func (e *FFW) Armed() bool { return e.armed }
