package aim

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// None is the paper's no-intelligence baseline: the node keeps its statically
// mapped task forever (heuristic fixed mapping, minimised Manhattan
// distance). All monitor impulses are ignored.
type None struct{}

// NewNone returns the baseline engine.
func NewNone(*taskgraph.Graph) Engine { return None{} }

// Name implements Engine.
func (None) Name() string { return "none" }

// OnRouted implements Engine.
func (None) OnRouted(taskgraph.TaskID, sim.Tick) {}

// OnInternal implements Engine.
func (None) OnInternal(taskgraph.TaskID, sim.Tick) {}

// OnGenerated implements Engine.
func (None) OnGenerated(sim.Tick) {}

// OnDeadlineLapse implements Engine.
func (None) OnDeadlineLapse(taskgraph.TaskID, sim.Tick) {}

// OnNeighborSignal implements Engine.
func (None) OnNeighborSignal(taskgraph.TaskID, sim.Tick) {}

// Decide implements Engine: the baseline never switches.
func (None) Decide(sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.None, false }

// NextDecide implements DecideWaker: the baseline has no timers and never
// needs another poll.
func (None) NextDecide(sim.Tick) (sim.Tick, bool) { return 0, false }

// NoteTask implements Engine.
func (None) NoteTask(taskgraph.TaskID) {}

// SetParam implements Engine.
func (None) SetParam(int, int) {}

// Reset implements Engine.
func (None) Reset() {}
