package aim

import (
	"testing"
	"testing/quick"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func fj() *taskgraph.Graph { return taskgraph.ForkJoin(taskgraph.DefaultForkJoinParams()) }

func TestThresholderFiring(t *testing.T) {
	th := NewThresholder(3)
	if th.Fired() {
		t.Fatal("fresh thresholder fired")
	}
	th.Excite(2)
	if th.Fired() {
		t.Fatal("fired below threshold")
	}
	th.Excite(1)
	if !th.Fired() {
		t.Fatal("did not fire at threshold")
	}
	th.Reset()
	if th.Fired() || th.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestThresholderSaturationAndFloor(t *testing.T) {
	th := NewThresholder(10)
	th.Excite(1000)
	if th.Count() != CounterMax {
		t.Errorf("count = %d, want saturation at %d", th.Count(), CounterMax)
	}
	th.Inhibit(1000)
	if th.Count() != 0 {
		t.Errorf("count = %d, want floor at 0", th.Count())
	}
}

func TestThresholderSetThreshold(t *testing.T) {
	th := NewThresholder(5)
	th.Excite(4)
	th.SetThreshold(4)
	if !th.Fired() {
		t.Error("lowered threshold did not fire")
	}
	th.SetThreshold(0) // clamps to 1
	if th.Threshold() != 1 {
		t.Errorf("threshold = %d, want clamp to 1", th.Threshold())
	}
}

// Property: a thresholder never fires while fewer net excitations than the
// threshold have been applied.
func TestThresholderProperty(t *testing.T) {
	f := func(ops []int8, thRaw uint8) bool {
		threshold := int(thRaw%50) + 1
		th := NewThresholder(threshold)
		net := 0
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				th.Excite(n)
				net += n
				if net > CounterMax {
					net = CounterMax
				}
			} else {
				th.Inhibit(-n)
				net += n
				if net < 0 {
					net = 0
				}
			}
			if th.Count() != net {
				return false
			}
			if th.Fired() != (net >= threshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparator(t *testing.T) {
	c := Comparator{Ref: 7}
	if c.Match(7) != 1 || c.Match(6) != 0 {
		t.Error("comparator mismatch")
	}
}

func TestNoneNeverSwitches(t *testing.T) {
	e := NewNone(fj())
	e.NoteTask(2)
	for now := sim.Tick(0); now < 1000; now++ {
		e.OnRouted(3, now)
		e.OnInternal(2, now)
		e.OnDeadlineLapse(3, now)
		if task, ok := e.Decide(now); ok {
			t.Fatalf("baseline switched to %d", task)
		}
	}
	if e.Name() != "none" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestNISwitchesOnTraffic(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 10, InhibitWeight: 4, PinSources: true})
	e.NoteTask(taskgraph.ForkSink) // an idle sink in a worker-traffic corridor
	for i := 0; i < 9; i++ {
		e.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
		if _, ok := e.Decide(sim.Tick(i)); ok {
			t.Fatalf("switched after %d impulses, threshold 10", i+1)
		}
	}
	e.OnRouted(taskgraph.ForkWorker, 9)
	task, ok := e.Decide(9)
	if !ok || task != taskgraph.ForkWorker {
		t.Fatalf("Decide = %d,%v, want worker switch", task, ok)
	}
	// Counters must reset after the decision.
	for _, c := range e.Counts() {
		if c != 0 {
			t.Fatalf("counters not reset: %v", e.Counts())
		}
	}
}

func TestNIInhibitionByLocalWork(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 10, InhibitWeight: 5, PinSources: true})
	e.NoteTask(taskgraph.ForkWorker)
	// Interleave through-traffic for task 3 with local work: inhibition must
	// keep the counter below threshold indefinitely.
	for i := 0; i < 200; i++ {
		e.OnRouted(taskgraph.ForkSink, sim.Tick(i))
		if i%3 == 0 {
			e.OnInternal(taskgraph.ForkWorker, sim.Tick(i))
		}
		if task, ok := e.Decide(sim.Tick(i)); ok {
			t.Fatalf("busy node captured by through-traffic at %d (to task %d)", i, task)
		}
	}
}

func TestNIReElectionResetsWithoutSwitch(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 5, InhibitWeight: 0, PinSources: true})
	e.NoteTask(taskgraph.ForkWorker)
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	if task, ok := e.Decide(0); ok {
		t.Fatalf("re-election switched to %d", task)
	}
	for _, c := range e.Counts() {
		if c != 0 {
			t.Fatal("counters not reset on re-election")
		}
	}
}

func TestNIPinSources(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 3, InhibitWeight: 0, PinSources: true})
	e.NoteTask(taskgraph.ForkSource)
	for i := 0; i < 100; i++ {
		e.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
	}
	if task, ok := e.Decide(100); ok {
		t.Fatalf("pinned source switched to %d", task)
	}
	// Unpinned: the same pressure must switch it.
	e2 := NewNI(fj(), NIParams{Threshold: 3, InhibitWeight: 0, PinSources: false})
	e2.NoteTask(taskgraph.ForkSource)
	for i := 0; i < 3; i++ {
		e2.OnRouted(taskgraph.ForkWorker, sim.Tick(i))
	}
	if _, ok := e2.Decide(3); !ok {
		t.Fatal("unpinned source did not switch")
	}
}

func TestNINeighborSignalExtension(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 10, NeighborWeight: 5, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	e.OnNeighborSignal(taskgraph.ForkWorker, 0)
	e.OnNeighborSignal(taskgraph.ForkWorker, 1)
	task, ok := e.Decide(1)
	if !ok || task != taskgraph.ForkWorker {
		t.Fatalf("neighbour signals did not drive switch: %d,%v", task, ok)
	}
	// Disabled by default.
	e2 := NewNI(fj(), DefaultNIParams())
	e2.NoteTask(taskgraph.ForkSink)
	e2.OnNeighborSignal(taskgraph.ForkWorker, 0)
	if got := e2.Counts()[taskgraph.ForkWorker]; got != 0 {
		t.Errorf("neighbour weight default should be 0, counter = %d", got)
	}
}

func TestNISetParam(t *testing.T) {
	e := NewNI(fj(), DefaultNIParams())
	e.NoteTask(taskgraph.ForkSink)
	e.SetParam(ParamThreshold, 2)
	e.OnRouted(taskgraph.ForkWorker, 0)
	e.OnRouted(taskgraph.ForkWorker, 0)
	if _, ok := e.Decide(0); !ok {
		t.Fatal("lowered threshold (via RCAP param) did not take effect")
	}
	e.SetParam(ParamPinSources, 0)
	e.NoteTask(taskgraph.ForkSource)
	e.OnRouted(taskgraph.ForkWorker, 1)
	e.OnRouted(taskgraph.ForkWorker, 1)
	if _, ok := e.Decide(1); !ok {
		t.Fatal("unpinning via RCAP param did not take effect")
	}
}

func TestFFWTimeoutSwitch(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 100, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	queued := taskgraph.ForkWorker
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return queued, true })

	// Before the timeout: no switch.
	for now := sim.Tick(0); now < 100; now++ {
		if task, ok := e.Decide(now); ok {
			t.Fatalf("switched to %d before timeout at %d", task, now)
		}
	}
	task, ok := e.Decide(100)
	if !ok || task != taskgraph.ForkWorker {
		t.Fatalf("Decide at timeout = %d,%v, want worker", task, ok)
	}
}

func TestFFWInternalWorkSuppressesSwitch(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 50, PinSources: true})
	e.NoteTask(taskgraph.ForkWorker)
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.ForkSink, true })
	for now := sim.Tick(0); now < 500; now++ {
		if now%40 == 0 { // steady internal deliveries inside the window
			e.OnInternal(taskgraph.ForkWorker, now)
		}
		if task, ok := e.Decide(now); ok {
			t.Fatalf("busy node switched to %d at %d", task, now)
		}
	}
}

func TestFFWEmptyQueueNoSwitch(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 10, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.None, false })
	swings := 0
	for now := sim.Tick(0); now < 100; now++ {
		if _, ok := e.Decide(now); ok {
			swings++
		}
	}
	if swings != 0 {
		t.Fatalf("switched %d times with an empty queue", swings)
	}
}

func TestFFWReArmAfterExpiry(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 10, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	calls := 0
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { calls++; return taskgraph.None, false })
	for now := sim.Tick(0); now < 35; now++ {
		e.Decide(now)
	}
	// Expiries at t=10, 20, 30 → exactly 3 peeks, not one per tick.
	if calls != 3 {
		t.Fatalf("peeked %d times in 35 ticks with timeout 10, want 3", calls)
	}
}

func TestFFWLapseArming(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 100, ArmOnLapse: true, PinSources: true})
	e.NoteTask(taskgraph.ForkSink)
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.ForkWorker, true })
	// Without a lapse the engine never arms, no matter how idle.
	if _, ok := e.Decide(5000); ok {
		t.Fatal("switched without deadline-lapse evidence")
	}
	e.OnDeadlineLapse(taskgraph.ForkWorker, 5000)
	if !e.Armed() {
		t.Fatal("lapse did not arm the timer")
	}
	if _, ok := e.Decide(5099); ok {
		t.Fatal("switched before the armed timeout expired")
	}
	if task, ok := e.Decide(5100); !ok || task != taskgraph.ForkWorker {
		t.Fatal("armed timeout expiry did not switch")
	}
	if e.Armed() {
		t.Fatal("timer still armed after the decision")
	}
	// Internal work disarms a pending switch.
	e.OnDeadlineLapse(taskgraph.ForkWorker, 6000)
	e.OnInternal(taskgraph.ForkSink, 6050)
	if _, ok := e.Decide(6100); ok {
		t.Fatal("internal delivery did not disarm the timer")
	}
}

func TestFFWPinSources(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 10, PinSources: true})
	e.NoteTask(taskgraph.ForkSource)
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.ForkWorker, true })
	for now := sim.Tick(0); now < 100; now++ {
		if _, ok := e.Decide(now); ok {
			t.Fatal("pinned source switched away")
		}
	}
}

func TestFFWSetParam(t *testing.T) {
	e := NewFFW(fj(), DefaultFFWParams())
	e.NoteTask(taskgraph.ForkSink)
	e.SetQueuePeek(func(now sim.Tick) (taskgraph.TaskID, bool) { return taskgraph.ForkWorker, true })
	e.SetParam(ParamTimeout, 5)
	e.OnDeadlineLapse(taskgraph.ForkWorker, 0)
	if task, ok := e.Decide(5); !ok || task != taskgraph.ForkWorker {
		t.Fatal("RCAP timeout param did not take effect")
	}
	e.SetParam(ParamLapseBoost, 3)
	e.SetParam(ParamPinSources, 1)
	e.NoteTask(taskgraph.ForkSource)
	if _, ok := e.Decide(1000); ok {
		t.Fatal("RCAP pin param did not take effect")
	}
}

func TestFFWNoPeekNoDecision(t *testing.T) {
	e := NewFFW(fj(), FFWParams{Timeout: 1})
	e.NoteTask(taskgraph.ForkSink)
	if _, ok := e.Decide(1000); ok {
		t.Fatal("decided without a queue peek wired")
	}
}

func TestFFWDefaultTimeoutIs20ms(t *testing.T) {
	if got := DefaultFFWParams().Timeout; got != sim.Ms(20) {
		t.Errorf("default FFW timeout = %v, want 20 ms (paper)", got)
	}
}

func TestEngineInterfaceCompliance(t *testing.T) {
	g := fj()
	var engines = []Engine{NewNone(g), NewNI(g, DefaultNIParams()), NewFFW(g, DefaultFFWParams())}
	names := map[string]bool{}
	for _, e := range engines {
		if names[e.Name()] {
			t.Errorf("duplicate engine name %q", e.Name())
		}
		names[e.Name()] = true
		e.Reset() // must not panic on fresh engines
	}
}
