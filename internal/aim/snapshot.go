package aim

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Checkpoint support (DESIGN.md §15). Each engine's *mutable* state — live
// parameters (RCAP-writable), the tracked current task, thresholder
// counters, timers — is captured into a flat EngineState; the construction
// inputs (task graph, as-built base parameters, queue-peek wiring) stay with
// the target engine, which must be of the same kind and built over the same
// graph.

// EngineState kinds.
const (
	StateNone uint8 = iota
	StateNI
	StateFFW
)

// EngineState is a serializable snapshot of one engine's mutable state. The
// Kind discriminator selects which field group is meaningful; a restore
// into an engine of a different kind panics.
type EngineState struct {
	Kind    uint8
	Current taskgraph.TaskID

	// Network Interaction (StateNI): live params, per-task thresholder
	// counters and firing levels, adaptive-threshold state.
	NIPar      NIParams
	Counts     []int32
	Thresholds []int32
	Level      int
	LastDecay  sim.Tick

	// Foraging for Work (StateFFW): live params and the switch timer.
	FFWPar   FFWParams
	Armed    bool
	ArmTime  sim.Tick
	LastWork sim.Tick
}

// StateSnapshotter is implemented by every engine that supports
// checkpointing. All in-tree engines implement it; a platform with an
// engine that does not cannot be snapshotted.
type StateSnapshotter interface {
	SaveState(st *EngineState)
	LoadState(st *EngineState)
}

// SaveState implements StateSnapshotter.
func (e *NI) SaveState(st *EngineState) {
	counts, ths := st.Counts[:0], st.Thresholds[:0]
	*st = EngineState{Kind: StateNI, Current: e.current, NIPar: e.par, Level: e.level, LastDecay: e.lastDecay}
	for i := range e.ths {
		counts = append(counts, int32(e.ths[i].count))
		ths = append(ths, int32(e.ths[i].threshold))
	}
	st.Counts, st.Thresholds = counts, ths
}

// LoadState implements StateSnapshotter.
func (e *NI) LoadState(st *EngineState) {
	if st.Kind != StateNI {
		panic("aim: checkpoint engine kind mismatch (want NI)")
	}
	if len(st.Counts) != len(e.ths) || len(st.Thresholds) != len(e.ths) {
		panic("aim: NI checkpoint thresholder count mismatch")
	}
	e.par = st.NIPar
	e.current = st.Current
	e.level = st.Level
	e.lastDecay = st.LastDecay
	for i := range e.ths {
		e.ths[i].count = int(st.Counts[i])
		e.ths[i].threshold = int(st.Thresholds[i])
	}
}

// SaveState implements StateSnapshotter.
func (e *FFW) SaveState(st *EngineState) {
	counts, ths := st.Counts[:0], st.Thresholds[:0]
	*st = EngineState{Kind: StateFFW, Current: e.current, FFWPar: e.par,
		Armed: e.armed, ArmTime: e.armTime, LastWork: e.lastWork}
	st.Counts, st.Thresholds = counts, ths
}

// LoadState implements StateSnapshotter.
func (e *FFW) LoadState(st *EngineState) {
	if st.Kind != StateFFW {
		panic("aim: checkpoint engine kind mismatch (want FFW)")
	}
	e.par = st.FFWPar
	e.current = st.Current
	e.armed = st.Armed
	e.armTime = st.ArmTime
	e.lastWork = st.LastWork
}

// SaveState implements StateSnapshotter (the baseline engine is stateless).
func (None) SaveState(st *EngineState) {
	counts, ths := st.Counts[:0], st.Thresholds[:0]
	*st = EngineState{Kind: StateNone}
	st.Counts, st.Thresholds = counts, ths
}

// LoadState implements StateSnapshotter.
func (None) LoadState(st *EngineState) {
	if st.Kind != StateNone {
		panic("aim: checkpoint engine kind mismatch (want None)")
	}
}
