// Package aim implements the paper's Artificial Intelligence Module: the
// social-insect-inspired decision engines embedded at every router of the
// many-core fabric.
//
// All engines are built from the same stimulus–threshold primitive the paper
// identifies as common to the response-threshold, foraging-for-work and
// network task-allocation models: impulse inputs (monitor events) excite or
// inhibit counters, and when a counter crosses its threshold a knob fires
// (here: the task-switch knob of the local processing element).
//
// Two concrete engines reproduce the paper's experiments:
//
//   - NI (Network Interaction): a thresholder per task ID counts routed
//     packets by destination task; crossing a threshold switches the node to
//     that task and resets all counters.
//   - FFW (Foraging for Work): a task-switch timeout re-armed by internally
//     routed packets; on expiry the node adopts the task of the next packet
//     in its routing queue.
//
// A third engine, None, is the paper's no-intelligence baseline.
package aim

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Engine is the decision interface of an AIM. The platform feeds it monitor
// impulses (the router's sense taps) and polls Decide once per tick; a
// returned decision actuates the task knob of the local node.
type Engine interface {
	// Name identifies the model in tables and traces.
	Name() string

	// OnRouted fires for every data packet the local router forwards
	// (stimulus: task ID of packet routed).
	OnRouted(task taskgraph.TaskID, now sim.Tick)
	// OnInternal fires for every data packet accepted by the local
	// processing element (stimulus: packet routed to internal node).
	OnInternal(task taskgraph.TaskID, now sim.Tick)
	// OnGenerated fires when the local node emits a work item (a busy
	// source is doing useful work).
	OnGenerated(now sim.Tick)
	// OnDeadlineLapse fires when the router notices a late packet.
	OnDeadlineLapse(task taskgraph.TaskID, now sim.Tick)
	// OnNeighborSignal fires when a neighbouring node's AIM announces a
	// task switch (the "signals from intelligence modules of neighbouring
	// nodes" monitor; used by the information-transfer extension).
	OnNeighborSignal(task taskgraph.TaskID, now sim.Tick)

	// Decide is polled every tick. It returns the task to switch to and
	// true when the engine's pathways fired a switch decision.
	Decide(now sim.Tick) (taskgraph.TaskID, bool)

	// NoteTask informs the engine of the node's (new) current task — at
	// start-up and after a switch was applied.
	NoteTask(task taskgraph.TaskID)

	// SetParam applies an RCAP parameter write (see the Param* constants).
	SetParam(param, value int)

	// Reset clears dynamic state (counters, timers).
	Reset()
}

// RCAP parameter indices understood by the engines' SetParam (uploaded by
// the experiment controller through OpAIMParam config packets).
const (
	ParamThreshold      = 1 // NI: thresholder firing level
	ParamInhibit        = 2 // NI: inhibition weight of internal work
	ParamTimeout        = 3 // FFW: task-switch timeout in ticks
	ParamPinSources     = 4 // both: 1 = never switch away from a source task
	ParamNeighborWeight = 5 // NI: excitation weight of neighbour signals
	ParamLapseBoost     = 6 // FFW: non-zero enables deadline-lapse arming
	ParamAdaptStep      = 7 // NI: adaptive-threshold step (0 disables)
)

// Factory builds one engine per node. Engines must not be shared between
// nodes — each AIM is embedded at its own router.
type Factory func(g *taskgraph.Graph) Engine

// HardResetter is the optional contract an engine implements to support
// platform reuse (Platform.Reset): HardReset restores the engine to its
// exactly-as-constructed state — counters and timers like Reset, but also any
// parameters later rewritten through RCAP SetParam uploads — so a recycled
// platform cannot leak a previous run's configuration into the next one.
// Engines without it are Reset instead, which is equivalent as long as no
// RCAP parameter write occurred.
type HardResetter interface {
	HardReset()
}

// DecideWaker is the optional scheduling contract an engine implements to
// opt into the platform's activity-tracked stepping: between monitor stimuli
// the platform polls Decide only at the ticks the engine asks for.
//
// NextDecide is queried immediately after every Decide call. It returns the
// earliest future tick at which Decide could act or mutate engine state
// without any new stimulus arriving first (FFW's armed timeout expiring, an
// adaptive NI threshold decaying); has is false when, absent stimuli, every
// future Decide call would be a pure no-op returning no switch. A fresh
// stimulus always re-polls the engine on its own tick, so NextDecide only
// needs to cover the engine's self-driven timers.
//
// Engines that do not implement DecideWaker are conservatively polled every
// tick, exactly like the dense reference scan.
type DecideWaker interface {
	NextDecide(now sim.Tick) (at sim.Tick, has bool)
}
