package aim

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// NIParams tune the Network Interaction engine.
type NIParams struct {
	// Threshold is the firing level of every per-task thresholder.
	Threshold int
	// InhibitWeight is how many inhibitory impulses each unit of local work
	// (internal delivery or generation) applies to all counters. The paper's
	// base NI model is excitation-only (internal deliveries excite their own
	// task's counter, keeping busy nodes re-elected); a non-zero weight adds
	// the social-inhibition factor of Figure 1 as an ablatable extension.
	InhibitWeight int
	// InternalWeight is the excitation an internally delivered packet applies
	// to its own task's counter. Values above 1 strengthen self-reinforcement
	// (the experience factor of Figure 1): a busy node re-elects its task
	// before through-traffic can capture it.
	InternalWeight int
	// NeighborWeight is the excitation a neighbour's switch announcement
	// applies to that task's counter (0 disables the information-transfer
	// extension; the base model of the paper's experiments does not use it).
	NeighborWeight int
	// PinSources prevents switching away from a source task (the fork–join
	// topology "requires Task 1 nodes to start the shape"; DESIGN.md §5).
	PinSources bool
	// AdaptStep enables the paper's future-work adaptive thresholds: every
	// applied switch raises this node's firing level by AdaptStep (damping
	// churn), and the level decays back toward the base threshold by one
	// every AdaptDecay ticks. 0 disables adaptation.
	AdaptStep int
	// AdaptDecay is the decay interval for adaptive thresholds.
	AdaptDecay sim.Tick
}

// DefaultNIParams are the experiment defaults (tuned per DESIGN.md §6).
func DefaultNIParams() NIParams {
	return NIParams{
		Threshold:      48,
		InhibitWeight:  0,
		InternalWeight: 3,
		PinSources:     true,
	}
}

// NI is the Network Interaction model: a dedicated thresholder per task ID.
// Each time the local router forwards a packet, the counter of the packet's
// destination task is excited; once a task's count exceeds its threshold the
// node switches to that task and all counters reset.
type NI struct {
	par     NIParams
	base    NIParams // as-constructed copy, restored by HardReset
	graph   *taskgraph.Graph
	current taskgraph.TaskID
	// ths is one contiguous block of thresholders indexed by TaskID, so a
	// decision pass walks a single cache-friendly allocation instead of
	// chasing a pointer per task. Entries for IDs the graph does not use stay
	// at threshold 0, which marks them invalid (a live thresholder's firing
	// level is always >= 1).
	ths []Thresholder
	ids []taskgraph.TaskID

	// Adaptive-threshold state (active when par.AdaptStep > 0).
	level     int
	lastDecay sim.Tick
}

// NewNI builds a Network Interaction engine with the given parameters.
func NewNI(g *taskgraph.Graph, par NIParams) *NI {
	if par.Threshold <= 0 {
		par.Threshold = DefaultNIParams().Threshold
	}
	if par.AdaptStep > 0 && par.AdaptDecay <= 0 {
		par.AdaptDecay = sim.Ms(10)
	}
	e := &NI{par: par, base: par, graph: g, ids: g.TaskIDs(), level: par.Threshold}
	e.ths = make([]Thresholder, int(g.MaxTaskID())+1)
	for _, id := range e.ids {
		e.ths[id].SetThreshold(par.Threshold)
	}
	return e
}

// valid reports whether the task ID has a live thresholder.
func (e *NI) valid(task taskgraph.TaskID) bool {
	return int(task) < len(e.ths) && e.ths[task].threshold > 0
}

// Level returns the current (possibly adapted) firing level.
func (e *NI) Level() int { return e.level }

// NewNIFactory returns a Factory producing NI engines with the parameters.
func NewNIFactory(par NIParams) Factory {
	return func(g *taskgraph.Graph) Engine { return NewNI(g, par) }
}

// Name implements Engine.
func (e *NI) Name() string { return "network-interaction" }

// OnRouted implements Engine: excite the destination task's thresholder.
func (e *NI) OnRouted(task taskgraph.TaskID, now sim.Tick) {
	if e.valid(task) {
		e.ths[task].Excite(1)
	}
}

// OnInternal implements Engine: a packet routed to the internal port is
// still a routed packet — it excites its own task's counter, which is what
// keeps a busy node re-electing its current task. With a non-zero
// InhibitWeight the social-inhibition extension additionally damps all
// counters on local work.
func (e *NI) OnInternal(task taskgraph.TaskID, now sim.Tick) {
	w := e.par.InternalWeight
	if w <= 0 {
		w = 1
	}
	if e.valid(task) {
		e.ths[task].Excite(w)
	}
	e.inhibitAll(e.par.InhibitWeight)
}

// OnGenerated implements Engine: generation only matters for the
// social-inhibition extension (sources are pinned in the base model).
func (e *NI) OnGenerated(now sim.Tick) {
	e.inhibitAll(e.par.InhibitWeight)
}

// OnDeadlineLapse implements Engine: the base NI model ignores lapses.
func (e *NI) OnDeadlineLapse(taskgraph.TaskID, sim.Tick) {}

// OnNeighborSignal implements Engine: optional information transfer.
func (e *NI) OnNeighborSignal(task taskgraph.TaskID, now sim.Tick) {
	if e.par.NeighborWeight > 0 && e.valid(task) {
		e.ths[task].Excite(e.par.NeighborWeight)
	}
}

// Decide implements Engine: the first fired thresholder (by task ID) wins.
func (e *NI) Decide(now sim.Tick) (taskgraph.TaskID, bool) {
	e.decayThreshold(now)
	if e.par.PinSources && e.graph.IsSource(e.current) {
		return taskgraph.None, false
	}
	for _, id := range e.ids {
		if !e.ths[id].Fired() {
			continue
		}
		e.resetAll()
		if id == e.current {
			// Re-electing the current task just confirms it; counters reset
			// (the paper's "task counters are reset" applies on any firing).
			return taskgraph.None, false
		}
		e.raiseThreshold()
		return id, true
	}
	return taskgraph.None, false
}

// raiseThreshold applies the adaptive-threshold churn damping after an
// applied switch.
func (e *NI) raiseThreshold() {
	if e.par.AdaptStep <= 0 {
		return
	}
	e.level += e.par.AdaptStep
	if e.level > CounterMax {
		e.level = CounterMax
	}
	for _, id := range e.ids {
		e.ths[id].SetThreshold(e.level)
	}
}

// decayThreshold relaxes an adapted level back toward the base threshold.
func (e *NI) decayThreshold(now sim.Tick) {
	if e.par.AdaptStep <= 0 || e.level <= e.par.Threshold {
		return
	}
	if now-e.lastDecay < e.par.AdaptDecay {
		return
	}
	e.lastDecay = now
	e.level--
	for _, id := range e.ids {
		e.ths[id].SetThreshold(e.level)
	}
}

// NextDecide implements DecideWaker: without new stimuli the only self-driven
// behaviour is the adaptive-threshold decay, which can newly satisfy a
// counter's firing level. The base (non-adaptive) model is purely
// stimulus-driven.
func (e *NI) NextDecide(now sim.Tick) (sim.Tick, bool) {
	if e.par.AdaptStep <= 0 || e.level <= e.par.Threshold {
		return 0, false
	}
	return e.lastDecay + e.par.AdaptDecay, true
}

// NoteTask implements Engine.
func (e *NI) NoteTask(task taskgraph.TaskID) { e.current = task }

// SetParam implements Engine.
func (e *NI) SetParam(param, value int) {
	switch param {
	case ParamThreshold:
		e.par.Threshold = value
		e.level = value
		for _, id := range e.ids {
			e.ths[id].SetThreshold(value)
		}
	case ParamInhibit:
		e.par.InhibitWeight = value
	case ParamNeighborWeight:
		e.par.NeighborWeight = value
	case ParamPinSources:
		e.par.PinSources = value != 0
	case ParamAdaptStep:
		e.par.AdaptStep = value
		if value > 0 && e.par.AdaptDecay <= 0 {
			e.par.AdaptDecay = sim.Ms(10)
		}
	}
}

// Reset implements Engine.
func (e *NI) Reset() { e.resetAll() }

// HardReset implements HardResetter: parameters return to their constructed
// values and all dynamic state clears, as if the engine were rebuilt.
func (e *NI) HardReset() {
	e.par = e.base
	e.level = e.base.Threshold
	e.lastDecay = 0
	for _, id := range e.ids {
		e.ths[id].SetThreshold(e.level)
		e.ths[id].Reset()
	}
}

// Counts exposes the counter values (for tests and the embedded-equivalence
// checks against the PicoBlaze implementation).
func (e *NI) Counts() []int {
	out := make([]int, len(e.ths))
	for i := range e.ths {
		out[i] = e.ths[i].Count()
	}
	return out
}

func (e *NI) inhibitAll(n int) {
	if n <= 0 {
		return
	}
	for _, id := range e.ids {
		e.ths[id].Inhibit(n)
	}
}

func (e *NI) resetAll() {
	for _, id := range e.ids {
		e.ths[id].Reset()
	}
}
