package aim

import (
	"testing"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func adaptiveNI() *NI {
	return NewNI(fj(), NIParams{
		Threshold:  5,
		PinSources: true,
		AdaptStep:  4,
		AdaptDecay: 100,
	})
}

func TestAdaptiveThresholdRisesOnSwitch(t *testing.T) {
	e := adaptiveNI()
	e.NoteTask(taskgraph.ForkSink)
	if e.Level() != 5 {
		t.Fatalf("initial level = %d", e.Level())
	}
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	if _, ok := e.Decide(0); !ok {
		t.Fatal("no switch at base threshold")
	}
	if e.Level() != 9 {
		t.Fatalf("level after switch = %d, want 9", e.Level())
	}
	// Now 5 impulses are no longer enough.
	e.NoteTask(taskgraph.ForkWorker)
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkSink, 1)
	}
	if _, ok := e.Decide(1); ok {
		t.Fatal("switched below the adapted threshold")
	}
	for i := 0; i < 4; i++ {
		e.OnRouted(taskgraph.ForkSink, 2)
	}
	if _, ok := e.Decide(2); !ok {
		t.Fatal("no switch at the adapted threshold")
	}
}

func TestAdaptiveThresholdDecays(t *testing.T) {
	e := adaptiveNI()
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	e.Decide(0) // level -> 9
	e.NoteTask(taskgraph.ForkWorker)
	// Decay one step per 100 ticks; after 400+ ticks it is back to base 5.
	for now := sim.Tick(1); now <= 500; now++ {
		e.Decide(now)
	}
	if e.Level() != 5 {
		t.Fatalf("level after decay = %d, want base 5", e.Level())
	}
	// Never decays below base.
	for now := sim.Tick(501); now <= 1500; now++ {
		e.Decide(now)
	}
	if e.Level() != 5 {
		t.Fatalf("level decayed below base: %d", e.Level())
	}
}

func TestAdaptiveThresholdSaturates(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 250, PinSources: true, AdaptStep: 100, AdaptDecay: 10})
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 250; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	e.Decide(0)
	if e.Level() != CounterMax {
		t.Fatalf("level = %d, want cap at %d", e.Level(), CounterMax)
	}
}

func TestAdaptiveDisabledByDefault(t *testing.T) {
	e := NewNI(fj(), DefaultNIParams())
	e.NoteTask(taskgraph.ForkSink)
	base := e.Level()
	for i := 0; i < base; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	e.Decide(0)
	if e.Level() != base {
		t.Fatalf("level changed (%d -> %d) with adaptation disabled", base, e.Level())
	}
}

func TestAdaptiveParamViaRCAP(t *testing.T) {
	e := NewNI(fj(), NIParams{Threshold: 5, PinSources: true})
	e.SetParam(ParamAdaptStep, 3)
	e.NoteTask(taskgraph.ForkSink)
	for i := 0; i < 5; i++ {
		e.OnRouted(taskgraph.ForkWorker, 0)
	}
	e.Decide(0)
	if e.Level() != 8 {
		t.Fatalf("level = %d after RCAP-enabled adaptation, want 8", e.Level())
	}
}

// Churn comparison: under a persistently oscillating stimulus the adaptive
// engine must switch fewer times than the fixed-threshold engine.
func TestAdaptiveThresholdDampsChurn(t *testing.T) {
	count := func(par NIParams) int {
		e := NewNI(fj(), par)
		cur := taskgraph.ForkWorker
		e.NoteTask(cur)
		switches := 0
		for now := sim.Tick(0); now < 5000; now++ {
			// Alternating bursts of worker and sink traffic.
			if (now/50)%2 == 0 {
				e.OnRouted(taskgraph.ForkWorker, now)
			} else {
				e.OnRouted(taskgraph.ForkSink, now)
			}
			if task, ok := e.Decide(now); ok {
				switches++
				cur = task
				e.NoteTask(cur)
			}
		}
		return switches
	}
	fixed := count(NIParams{Threshold: 10, PinSources: true})
	adaptive := count(NIParams{Threshold: 10, PinSources: true, AdaptStep: 8, AdaptDecay: 200})
	if adaptive >= fixed {
		t.Errorf("adaptive thresholds did not damp churn: %d vs %d switches", adaptive, fixed)
	}
	if adaptive == 0 {
		t.Error("adaptive engine never switched at all")
	}
}
