package aim

// CounterMax saturates thresholder counters, matching the 8-bit registers
// of the PicoBlaze-hosted hardware pathways.
const CounterMax = 255

// Thresholder is the paper's sense–react primitive (Figure 2b): an
// impulse-driven counter with a firing threshold. Excitatory impulses
// increase the count, inhibitory impulses decrease it, and Fired reports
// whether the knob output is set.
type Thresholder struct {
	count     int
	threshold int
}

// NewThresholder returns a thresholder firing at the given level.
func NewThresholder(threshold int) *Thresholder {
	if threshold < 1 {
		threshold = 1
	}
	return &Thresholder{threshold: threshold}
}

// Excite applies n excitatory impulses (saturating at CounterMax).
func (t *Thresholder) Excite(n int) {
	t.count += n
	if t.count > CounterMax {
		t.count = CounterMax
	}
}

// Inhibit applies n inhibitory impulses (flooring at zero).
func (t *Thresholder) Inhibit(n int) {
	t.count -= n
	if t.count < 0 {
		t.count = 0
	}
}

// Fired reports whether the count has reached the threshold.
func (t *Thresholder) Fired() bool { return t.count >= t.threshold }

// Count returns the current count.
func (t *Thresholder) Count() int { return t.count }

// Threshold returns the firing level.
func (t *Thresholder) Threshold() int { return t.threshold }

// SetThreshold changes the firing level (an RCAP-tunable parameter).
func (t *Thresholder) SetThreshold(level int) {
	if level < 1 {
		level = 1
	}
	t.threshold = level
}

// Reset clears the count.
func (t *Thresholder) Reset() { t.count = 0 }

// Comparator generates an impulse when its vector input matches a reference
// value — the "logical comparators that generate impulses when vector inputs
// match" of the PicoBlaze software platform. It is used by the embedded
// (instruction-level) AIM implementation and kept here so the behavioural
// and embedded pathways share one vocabulary.
type Comparator struct {
	Ref int
}

// Match returns 1 when v equals the reference, else 0.
func (c Comparator) Match(v int) int {
	if v == c.Ref {
		return 1
	}
	return 0
}
