// Package thermal models per-node die temperature for the Centurion fabric —
// the "local temperature sensing" monitor of the paper's AIM interface — as
// a discrete RC network: activity deposits heat, heat leaks to ambient, and
// it diffuses to the topology's lateral (die-adjacent) neighbours: the four
// mesh neighbours on the reference fabric, wrap-around neighbours on a
// folded torus, and plain grid neighbours on a concentrated mesh (cluster
// members share a router but still sit next to each other on the die).
//
// Together with the node-frequency knob (noc.OpNodeFrequency) it closes the
// paper's envisioned loop: "with the relevant knobs and monitors, such as
// ... clock frequency and temperature, to close the loop for emergent
// autonomous adaptation".
package thermal

import (
	"fmt"

	"centurion/internal/noc"
	"centurion/internal/sim"
)

// Params configure the thermal model. Temperatures are in °C; all rate
// constants are per model step.
type Params struct {
	// Ambient is the heatsink/ambient temperature nodes relax toward.
	Ambient float64
	// MaxSafe is the throttling threshold used by the DVFS governor.
	MaxSafe float64
	// Hysteresis is how far below MaxSafe a node must cool before the
	// governor restores full frequency.
	Hysteresis float64
	// HeatPerWork is the temperature contribution of one unit of node work
	// (a processed or generated packet).
	HeatPerWork float64
	// LeakHeat is static (idle) heating per step — leakage power.
	LeakHeat float64
	// Cooling is the fraction of the excess over ambient removed per step.
	Cooling float64
	// Diffusion is the per-neighbour lateral conduction coefficient.
	Diffusion float64
	// StepTicks is the model update interval.
	StepTicks sim.Tick
}

// DefaultParams give a stable, visibly dynamic model at the default time
// resolution: a fully busy node settles ~30°C above ambient.
func DefaultParams() Params {
	return Params{
		Ambient:     45,
		MaxSafe:     70,
		Hysteresis:  5,
		HeatPerWork: 3.0,
		LeakHeat:    0.02,
		Cooling:     0.05,
		Diffusion:   0.02,
		StepTicks:   sim.Ms(1),
	}
}

// Model is the fabric's thermal state.
type Model struct {
	topo noc.Topology
	par  Params
	temp []float64
	next []float64
	last []uint64
	// lat memoizes each node's lateral neighbours in port order (N, E, S, W;
	// noc.Invalid when absent) so the per-step conduction loop is indexed
	// loads instead of four interface calls per node.
	lat [][4]noc.NodeID
}

// New builds a model with every node at ambient temperature.
func New(topo noc.Topology, par Params) *Model {
	if par.StepTicks <= 0 {
		par.StepTicks = DefaultParams().StepTicks
	}
	m := &Model{
		topo: topo,
		par:  par,
		temp: make([]float64, topo.Nodes()),
		next: make([]float64, topo.Nodes()),
		last: make([]uint64, topo.Nodes()),
		lat:  make([][4]noc.NodeID, topo.Nodes()),
	}
	for i := range m.temp {
		m.temp[i] = par.Ambient
		for port := noc.North; port <= noc.West; port++ {
			if nb, ok := topo.Lateral(noc.NodeID(i), port); ok {
				m.lat[i][port] = nb
			} else {
				m.lat[i][port] = noc.Invalid
			}
		}
	}
	return m
}

// Params returns the model parameters.
func (m *Model) Params() Params { return m.par }

// Reset returns every node to ambient temperature and clears the work
// baselines, reusing the existing fields (the platform-reuse path).
func (m *Model) Reset() {
	for i := range m.temp {
		m.temp[i] = m.par.Ambient
		m.next[i] = 0
		m.last[i] = 0
	}
}

// Temperature returns a node's current temperature.
func (m *Model) Temperature(id noc.NodeID) float64 { return m.temp[id] }

// Temperatures returns the full temperature field (do not mutate).
func (m *Model) Temperatures() []float64 { return m.temp }

// Hottest returns the hottest node and its temperature.
func (m *Model) Hottest() (noc.NodeID, float64) {
	best, bestT := noc.NodeID(0), m.temp[0]
	for i, t := range m.temp {
		if t > bestT {
			best, bestT = noc.NodeID(i), t
		}
	}
	return best, bestT
}

// Mean returns the fabric's mean temperature.
func (m *Model) Mean() float64 {
	sum := 0.0
	for _, t := range m.temp {
		sum += t
	}
	return sum / float64(len(m.temp))
}

// Step advances the model one interval. workCounts are the nodes' cumulative
// work counters (the model diffs them against the previous step).
func (m *Model) Step(workCounts []uint64) {
	if len(workCounts) != len(m.temp) {
		panic(fmt.Sprintf("thermal: %d work counters for %d nodes", len(workCounts), len(m.temp)))
	}
	p := m.par
	for i := range m.temp {
		work := float64(workCounts[i] - m.last[i])
		m.last[i] = workCounts[i]

		t := m.temp[i]
		// Lateral conduction with the topology's die-adjacent neighbours.
		lateral := 0.0
		for _, nb := range m.lat[i] {
			if nb >= 0 {
				lateral += p.Diffusion * (m.temp[nb] - t)
			}
		}
		m.next[i] = t +
			p.HeatPerWork*work +
			p.LeakHeat -
			p.Cooling*(t-p.Ambient) +
			lateral
	}
	m.temp, m.next = m.next, m.temp
}

// OverLimit returns the nodes currently above the MaxSafe threshold.
func (m *Model) OverLimit() []noc.NodeID {
	var out []noc.NodeID
	for i, t := range m.temp {
		if t > m.par.MaxSafe {
			out = append(out, noc.NodeID(i))
		}
	}
	return out
}

// CoolEnough reports whether a node has cooled below the governor's
// restore threshold.
func (m *Model) CoolEnough(id noc.NodeID) bool {
	return m.temp[id] < m.par.MaxSafe-m.par.Hysteresis
}
