package thermal

// Checkpoint support (DESIGN.md §15). Only the temperature field and the
// per-node work counters from the previous sample are mutable run state;
// the scratch buffer Step writes into is fully overwritten before each
// swap, and the neighbour memo is construction-derived.

// State is a deep copy of a thermal model's mutable state.
type State struct {
	Temp []float64
	Last []uint64
}

// SaveState copies the model's mutable state into st, reusing st's backing.
func (m *Model) SaveState(st *State) {
	st.Temp = append(st.Temp[:0], m.temp...)
	st.Last = append(st.Last[:0], m.last...)
}

// LoadState restores the model from st. The target must cover the same node
// count.
func (m *Model) LoadState(st *State) {
	if len(st.Temp) != len(m.temp) || len(st.Last) != len(m.last) {
		panic("thermal: checkpoint size mismatch")
	}
	copy(m.temp, st.Temp)
	copy(m.last, st.Last)
}
