package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"centurion/internal/noc"
)

func model() *Model {
	return New(noc.NewTopology(4, 4), DefaultParams())
}

func TestStartsAtAmbient(t *testing.T) {
	m := model()
	for id := noc.NodeID(0); int(id) < 16; id++ {
		if m.Temperature(id) != DefaultParams().Ambient {
			t.Fatalf("node %d starts at %v", id, m.Temperature(id))
		}
	}
	if m.Mean() != DefaultParams().Ambient {
		t.Errorf("Mean = %v", m.Mean())
	}
}

func TestWorkHeatsNode(t *testing.T) {
	m := model()
	work := make([]uint64, 16)
	for step := 0; step < 10; step++ {
		work[5] += 3
		m.Step(work)
	}
	if m.Temperature(5) <= DefaultParams().Ambient {
		t.Fatal("busy node did not heat up")
	}
	hot, temp := m.Hottest()
	if hot != 5 {
		t.Errorf("hottest = %d (%.1f°C), want node 5", hot, temp)
	}
	// Neighbours warm via diffusion, distant corners barely.
	if m.Temperature(1) <= m.Temperature(15) {
		t.Error("diffusion did not favour the hot node's neighbour")
	}
}

func TestIdleNodeCoolsToEquilibrium(t *testing.T) {
	m := model()
	work := make([]uint64, 16)
	work[0] = 100
	m.Step(work) // one big burst
	peak := m.Temperature(0)
	for step := 0; step < 500; step++ {
		m.Step(work) // no further work
	}
	p := DefaultParams()
	// Idle equilibrium = ambient + leak/cooling.
	eq := p.Ambient + p.LeakHeat/p.Cooling
	if got := m.Temperature(0); math.Abs(got-eq) > 1 {
		t.Errorf("idle equilibrium %.2f, want ~%.2f (peak was %.2f)", got, eq, peak)
	}
}

func TestSaturatedNodeBounded(t *testing.T) {
	m := model()
	work := make([]uint64, 16)
	for step := 0; step < 2000; step++ {
		work[5] += 1 // continuous full activity
		m.Step(work)
	}
	if got := m.Temperature(5); got > 200 {
		t.Errorf("temperature diverged: %.1f°C", got)
	}
	if got := m.Temperature(5); got < DefaultParams().MaxSafe {
		t.Errorf("continuously busy node stayed below MaxSafe (%.1f°C); the governor would never engage", got)
	}
}

func TestOverLimitAndCoolEnough(t *testing.T) {
	m := model()
	work := make([]uint64, 16)
	for step := 0; step < 100; step++ {
		work[7] += 2
		m.Step(work)
	}
	over := m.OverLimit()
	found := false
	for _, id := range over {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("node 7 (%.1f°C) not over limit %v", m.Temperature(7), over)
	}
	if m.CoolEnough(7) {
		t.Error("hot node reported cool")
	}
	for step := 0; step < 500; step++ {
		m.Step(work) // idle
	}
	if !m.CoolEnough(7) {
		t.Errorf("node 7 still hot after long idle: %.1f°C", m.Temperature(7))
	}
}

// Property: with bounded per-step work, temperatures stay within physical
// bounds (≥ ambient-ε, ≤ a finite cap) and the mean is monotone under
// uniform load.
func TestBoundedTemperatureProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		m := model()
		rng := seed
		work := make([]uint64, 16)
		for s := 0; s < int(steps%100)+1; s++ {
			for i := range work {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				work[i] += rng % 3
			}
			m.Step(work)
		}
		p := DefaultParams()
		for id := noc.NodeID(0); int(id) < 16; id++ {
			temp := m.Temperature(id)
			if temp < p.Ambient-1 || temp > 500 || math.IsNaN(temp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStepPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched work slice")
		}
	}()
	model().Step(make([]uint64, 3))
}
