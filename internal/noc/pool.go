package noc

// PacketPool is a free-list recycler for Packet values — the allocation side
// of the zero-allocation steady state (DESIGN.md §9). One pool belongs to one
// platform (it is not safe for concurrent use, exactly like the rest of a
// platform), and every packet of a pooled platform is acquired through Get
// and returned through Put when its lifecycle ends: processed by a PE,
// consumed as a config/debug payload, or dropped.
//
// Ownership is linear: at any instant a packet is owned by exactly one of a
// PE (outbox, receive queue, in-progress slot), a router input buffer, a
// pending controller retry, or the pool. Put zeroes the packet — including
// the once-per-lifetime latches (lapsedSeen, requeues, Retargets, Hops) — so
// a recycled packet is indistinguishable from a freshly allocated one, which
// is what keeps pooled runs bit-identical to unpooled ones. Double-recycling
// panics immediately rather than corrupting a later run.
type PacketPool struct {
	free []*Packet
	news uint64 // packets allocated because the free list was empty
	gets uint64
	puts uint64
}

// PacketPoolStats is a point-in-time snapshot of a pool's accounting.
type PacketPoolStats struct {
	// Allocated is how many packets were newly heap-allocated.
	Allocated uint64
	// Recycled is how many packets were returned for reuse.
	Recycled uint64
	// Live is how many acquired packets have not been returned — at a
	// quiescent point it must equal the number of packets in flight.
	Live int
	// FreeListLen is the current free-list depth.
	FreeListLen int
}

// Get returns a zeroed packet, recycling a free one when available. The
// caller owns the packet until it hands it to Put (or to a component that
// takes ownership, such as a router buffer accepting an injection).
func (pp *PacketPool) Get() *Packet {
	pp.gets++
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		p.pooled = false
		return p
	}
	pp.news++
	return &Packet{}
}

// Put returns a packet whose lifecycle ended. The packet is cleared in full —
// the single point where recycled-packet state (lapsedSeen, requeues,
// Retargets, Hops and every payload field) is wiped. Putting a packet twice
// without an intervening Get panics: a double-recycle means two owners, which
// would silently corrupt a later run.
func (pp *PacketPool) Put(p *Packet) {
	if p.pooled {
		panic("noc: packet double-recycled")
	}
	pp.puts++
	*p = Packet{pooled: true}
	pp.free = append(pp.free, p)
}

// Stats snapshots the pool accounting.
func (pp *PacketPool) Stats() PacketPoolStats {
	return PacketPoolStats{
		Allocated:   pp.news,
		Recycled:    pp.puts,
		Live:        int(pp.gets - pp.puts),
		FreeListLen: len(pp.free),
	}
}
