package noc

// PacketPool is the packet arena of one fabric — the allocation side of the
// zero-allocation steady state (DESIGN.md §9) and, since the data-oriented
// core (DESIGN.md §11), the owner of every packet's identity: packets are
// heap-allocated in contiguous slabs and addressed by dense generation-tagged
// PacketID handles, which is what the router rings store instead of pointers.
//
// One pool belongs to one network/platform (it is not safe for concurrent
// use, exactly like the rest of a platform). Every packet of a pooled
// platform is acquired through Get and returned through Put when its
// lifecycle ends: processed by a PE, consumed as a config/debug payload, or
// dropped.
//
// Ownership is linear: at any instant a packet is owned by exactly one of a
// PE (outbox, receive queue, in-progress slot), a router input ring, a
// pending controller retry, or the pool. Put zeroes the packet — including
// the once-per-lifetime latches (lapsedSeen, requeues, Retargets, Hops) — so
// a recycled packet is indistinguishable from a freshly allocated one, which
// is what keeps pooled runs bit-identical to unpooled ones. Put also bumps
// the slot's generation, so any handle still referring to the old lifetime
// panics on dereference instead of silently aliasing the new one.
// Double-recycling panics immediately rather than corrupting a later run.
type PacketPool struct {
	// slots binds each arena index to its packet. The binding is permanent:
	// an index always resolves to the same *Packet; only the generation tag
	// decides whether a given handle may still see it.
	slots []*Packet
	// gen is the current generation per slot; Put advances it (mod 2^12,
	// the handle's generation width — see the PacketID layout in packet.go).
	gen []uint32
	// free lists the indices whose packets are resting in the pool.
	free []int32
	// slab is the tail of the current allocation slab; Get carves packets
	// from it so arena packets are contiguous in memory.
	slab []Packet

	news uint64 // packets allocated because the free list was empty
	gets uint64
	puts uint64
}

// slabSize is how many packets one arena slab holds. 256 packets ≈ 34 KB —
// large enough that slab refills are rare, small enough that a 4×4 test mesh
// does not pay for a 128-node platform's working set.
const slabSize = 256

// PacketPoolStats is a point-in-time snapshot of a pool's accounting.
type PacketPoolStats struct {
	// Allocated is how many packets were newly carved from an arena slab.
	Allocated uint64
	// Recycled is how many packets were returned for reuse.
	Recycled uint64
	// Live is how many acquired packets have not been returned — at a
	// quiescent point it must equal the number of packets in flight.
	Live int
	// FreeListLen is the current free-list depth.
	FreeListLen int
	// Slots is the total number of arena slots ever bound (live + free).
	Slots int
}

// Get returns a zeroed packet, recycling a free one when available. The
// caller owns the packet until it hands it to Put (or to a component that
// takes ownership, such as a router ring accepting an injection). The
// packet carries a fresh generation-tagged handle (Packet.Handle).
func (pp *PacketPool) Get() *Packet {
	pp.gets++
	if n := len(pp.free); n > 0 {
		idx := pp.free[n-1]
		pp.free = pp.free[:n-1]
		p := pp.slots[idx]
		p.pooled = false
		p.h = makePacketID(idx, pp.gen[idx])
		return p
	}
	pp.news++
	if len(pp.slab) == 0 {
		pp.slab = make([]Packet, slabSize)
	}
	p := &pp.slab[0]
	pp.slab = pp.slab[1:]
	idx := pp.bind(p)
	p.h = makePacketID(idx, pp.gen[idx])
	return p
}

// bind assigns the next arena index to p.
func (pp *PacketPool) bind(p *Packet) int32 {
	idx := len(pp.slots)
	if idx > pidIndexMask {
		panic("noc: packet arena exhausted")
	}
	pp.slots = append(pp.slots, p)
	pp.gen = append(pp.gen, 0)
	return int32(idx)
}

// slotOf resolves the arena index a packet is bound to in this pool.
func (pp *PacketPool) slotOf(p *Packet) (int32, bool) {
	h := p.h
	if h&pidValid == 0 {
		return 0, false
	}
	idx := int32(h) & pidIndexMask
	if int(idx) >= len(pp.slots) || pp.slots[idx] != p {
		return 0, false
	}
	return idx, true
}

// handleFor returns the packet's current handle, binding packets created
// outside the pool (tests, benches, external drivers) to a fresh slot on
// first contact with the fabric. Adoption counts as an implicit
// acquisition so the books (Live = gets − puts) stay balanced when the
// foreign packet's lifecycle later ends in a Put.
func (pp *PacketPool) handleFor(p *Packet) PacketID {
	if p.pooled {
		panic("noc: handle requested for a recycled packet")
	}
	if idx, ok := pp.slotOf(p); ok {
		return makePacketID(idx, pp.gen[idx])
	}
	pp.gets++
	pp.news++
	idx := pp.bind(p)
	p.h = makePacketID(idx, pp.gen[idx])
	return p.h
}

// Deref resolves a handle to its packet. It panics when the handle is
// invalid or stale — the slot's packet was recycled (Put advanced the
// generation) since the handle was issued. Stale dereference is always a
// caller bug (a retained handle outliving the packet's lifecycle), and
// panicking here catches it at the use site instead of corrupting a run.
func (pp *PacketPool) Deref(h PacketID) *Packet {
	if h&pidValid == 0 {
		panic("noc: invalid packet handle")
	}
	idx := int32(h) & pidIndexMask
	if int(idx) >= len(pp.slots) {
		panic("noc: packet handle out of range")
	}
	if pp.gen[idx] != uint32(h>>pidGenShift)&pidGenMask {
		panic("noc: stale packet handle (packet was recycled)")
	}
	return pp.slots[idx]
}

// Put returns a packet whose lifecycle ended. The packet is cleared in full —
// the single point where recycled-packet state (lapsedSeen, requeues,
// Retargets, Hops and every payload field) is wiped — and its slot's
// generation advances, invalidating every outstanding handle. Packets
// created outside the pool are adopted: they get a slot and join the free
// list like arena packets. Putting a packet twice without an intervening Get
// panics: a double-recycle means two owners, which would silently corrupt a
// later run.
func (pp *PacketPool) Put(p *Packet) {
	if p.pooled {
		panic("noc: packet double-recycled")
	}
	pp.puts++
	idx, ok := pp.slotOf(p)
	if !ok {
		// Adopting an unregistered foreign packet: count the implicit
		// acquisition its creator performed, keeping Live non-negative.
		pp.gets++
		pp.news++
		idx = pp.bind(p)
	}
	pp.gen[idx] = (pp.gen[idx] + 1) & pidGenMask
	*p = Packet{pooled: true}
	pp.free = append(pp.free, idx)
}

// Stats snapshots the pool accounting.
func (pp *PacketPool) Stats() PacketPoolStats {
	return PacketPoolStats{
		Allocated:   pp.news,
		Recycled:    pp.puts,
		Live:        int(pp.gets - pp.puts),
		FreeListLen: len(pp.free),
		Slots:       len(pp.slots),
	}
}
