package noc

import (
	"testing"
	"testing/quick"
)

func TestTopologyIDCoordRoundTrip(t *testing.T) {
	topo := NewTopology(16, 8)
	if topo.Nodes() != 128 {
		t.Fatalf("Nodes = %d, want 128", topo.Nodes())
	}
	for id := NodeID(0); int(id) < topo.Nodes(); id++ {
		if got := topo.ID(topo.Coord(id)); got != id {
			t.Fatalf("round trip failed: %d -> %v -> %d", id, topo.Coord(id), got)
		}
	}
}

func TestTopologyNeighbors(t *testing.T) {
	topo := NewTopology(4, 3)
	center := topo.ID(Coord{1, 1})
	cases := []struct {
		port Port
		want Coord
	}{
		{North, Coord{1, 0}},
		{South, Coord{1, 2}},
		{East, Coord{2, 1}},
		{West, Coord{0, 1}},
	}
	for _, c := range cases {
		nb, ok := topo.Neighbor(center, c.port)
		if !ok || nb != topo.ID(c.want) {
			t.Errorf("Neighbor(center, %v) = %d,%v, want %v", c.port, nb, ok, c.want)
		}
	}
	// Edges.
	if _, ok := topo.Neighbor(topo.ID(Coord{0, 0}), North); ok {
		t.Error("north neighbour of top-left row exists")
	}
	if _, ok := topo.Neighbor(topo.ID(Coord{0, 0}), West); ok {
		t.Error("west neighbour of left column exists")
	}
	if _, ok := topo.Neighbor(topo.ID(Coord{3, 2}), South); ok {
		t.Error("south neighbour of bottom row exists")
	}
	if _, ok := topo.Neighbor(topo.ID(Coord{3, 2}), East); ok {
		t.Error("east neighbour of right column exists")
	}
	if _, ok := topo.Neighbor(center, Local); ok {
		t.Error("Local port has a mesh neighbour")
	}
}

func TestPortOpposite(t *testing.T) {
	pairs := map[Port]Port{North: South, South: North, East: West, West: East}
	for p, want := range pairs {
		if got := p.Opposite(); got != want {
			t.Errorf("%v.Opposite() = %v, want %v", p, got, want)
		}
	}
	if Local.Opposite() != Local {
		t.Error("Local.Opposite() changed the port")
	}
}

func TestManhattanDistance(t *testing.T) {
	topo := NewTopology(16, 8)
	a, b := topo.ID(Coord{0, 0}), topo.ID(Coord{15, 7})
	if got := topo.Distance(a, b); got != 22 {
		t.Errorf("corner distance = %d, want 22", got)
	}
	if got := topo.Distance(a, a); got != 0 {
		t.Errorf("self distance = %d", got)
	}
}

// Property: Manhattan distance is symmetric and satisfies the triangle
// inequality on the mesh.
func TestManhattanMetricProperty(t *testing.T) {
	topo := NewTopology(16, 8)
	f := func(ra, rb, rc uint16) bool {
		a := NodeID(int(ra) % topo.Nodes())
		b := NodeID(int(rb) % topo.Nodes())
		c := NodeID(int(rc) % topo.Nodes())
		if topo.Distance(a, b) != topo.Distance(b, a) {
			return false
		}
		return topo.Distance(a, c) <= topo.Distance(a, b)+topo.Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: neighbours are always at distance exactly 1.
func TestNeighborDistanceProperty(t *testing.T) {
	topo := NewTopology(16, 8)
	f := func(raw uint16, praw uint8) bool {
		id := NodeID(int(raw) % topo.Nodes())
		p := Port(praw % 4)
		nb, ok := topo.Neighbor(id, p)
		if !ok {
			return true
		}
		return topo.Distance(id, nb) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopologyPanics(t *testing.T) {
	mustPanic(t, "zero width", func() { NewTopology(0, 4) })
	mustPanic(t, "bad coord", func() { NewTopology(2, 2).ID(Coord{5, 0}) })
	mustPanic(t, "bad id", func() { NewTopology(2, 2).Coord(NodeID(99)) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestPortStrings(t *testing.T) {
	for p, want := range map[Port]string{North: "N", East: "E", South: "S", West: "W", Local: "L", PortInvalid: "-"} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}
