package noc

// Lifecycle tests for the generation-tagged packet handles (DESIGN.md §11):
// a handle is valid for exactly one packet lifetime — recycling the packet
// advances its slot's generation, and any retained handle must panic on
// dereference instead of silently aliasing the slot's next occupant.

import (
	"testing"

	"centurion/internal/sim"
)

// expectPanic runs fn and reports whether it panicked.
func expectPanic(fn func()) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	fn()
	return false
}

func TestPacketHandleRoundTrip(t *testing.T) {
	var pp PacketPool
	p := pp.Get()
	h := p.Handle()
	if !h.Valid() {
		t.Fatalf("fresh packet has invalid handle %v", h)
	}
	if got := pp.Deref(h); got != p {
		t.Fatalf("Deref(%v) = %p, want %p", h, got, p)
	}
}

func TestPacketHandleStaleUsePanics(t *testing.T) {
	// Property test: over many randomized acquire/recycle rounds, every
	// retained handle dereferences while its packet is live and panics once
	// the packet was recycled — including after its slot was re-issued to a
	// new lifetime (the ABA case the generation tag exists for).
	var pp PacketPool
	rng := sim.NewRNG(0x5eed)

	type lease struct {
		p *Packet
		h PacketID
	}
	var live []lease
	var stale []PacketID
	for round := 0; round < 200; round++ {
		// Acquire a random batch.
		for k := rng.Intn(8); k > 0; k-- {
			p := pp.Get()
			live = append(live, lease{p: p, h: p.Handle()})
		}
		// Recycle a random subset; their handles become stale.
		for k := rng.Intn(6); k > 0 && len(live) > 0; k-- {
			i := rng.Intn(len(live))
			l := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			pp.Put(l.p)
			stale = append(stale, l.h)
		}
		// Every live handle must resolve to its own packet...
		for _, l := range live {
			if got := pp.Deref(l.h); got != l.p {
				t.Fatalf("round %d: live handle %v resolved to the wrong packet", round, l.h)
			}
		}
		// ...and every stale one must panic, even though many of their
		// slots now host recycled lifetimes.
		for _, h := range stale {
			if !expectPanic(func() { pp.Deref(h) }) {
				t.Fatalf("round %d: stale handle %v dereferenced without panic", round, h)
			}
		}
	}

	// The books must balance: everything still live plus the free list
	// covers every slot ever bound.
	st := pp.Stats()
	if st.Live != len(live) {
		t.Errorf("pool reports %d live packets, test holds %d", st.Live, len(live))
	}
	if st.Live+st.FreeListLen != st.Slots {
		t.Errorf("books unbalanced: %d live + %d free != %d slots", st.Live, st.FreeListLen, st.Slots)
	}
}

func TestPacketHandleInvalidPanics(t *testing.T) {
	var pp PacketPool
	pp.Get() // bind at least one slot
	if !expectPanic(func() { pp.Deref(0) }) {
		t.Error("Deref of the zero handle did not panic")
	}
	if !expectPanic(func() { pp.Deref(pidValid | PacketID(pidIndexMask)) }) {
		t.Error("Deref of an out-of-range handle did not panic")
	}
}

func TestPacketHandleSurvivesRecycledReuse(t *testing.T) {
	// A slot binding is permanent: the same backing packet cycles through
	// lifetimes, each with a distinct handle.
	var pp PacketPool
	p := pp.Get()
	h1 := p.Handle()
	pp.Put(p)
	q := pp.Get()
	if q != p {
		t.Fatalf("free list did not reuse the slot's packet")
	}
	h2 := q.Handle()
	if h1 == h2 {
		t.Fatalf("recycled lifetime reused handle %v", h1)
	}
	if got := pp.Deref(h2); got != q {
		t.Fatalf("new-lifetime handle does not resolve")
	}
	if !expectPanic(func() { pp.Deref(h1) }) {
		t.Error("old-lifetime handle still dereferences after recycle")
	}
}
