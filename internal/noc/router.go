package noc

import (
	"math/bits"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// Sink receives packets delivered through a router's internal (Local output)
// port — the processing element's receive interface. Accept returns false
// when the element cannot take the packet this cycle (bounded input queue),
// which back-pressures the network exactly like the real MicroBlaze node
// interface.
type Sink interface {
	Accept(p *Packet, now sim.Tick) bool
}

// Monitors are the router's sense taps, mirroring the paper's monitor list.
// Each field may be nil. The AIM engines subscribe to these impulses.
type Monitors struct {
	// RoutedTask fires once per data packet forwarded out of any port — the
	// "task IDs of packets routed through the router" stimulus of the
	// Network Interaction model.
	RoutedTask func(task taskgraph.TaskID, now sim.Tick)
	// InternalDelivery fires when a data packet is accepted by the local
	// processing element ("packet routed to internal node" — the stimulus
	// that suppresses Foraging-for-Work task switching).
	InternalDelivery func(task taskgraph.TaskID, now sim.Tick)
	// DeadlineLapse fires when the router notices a queued packet past its
	// deadline ("time since sent" monitor).
	DeadlineLapse func(task taskgraph.TaskID, now sim.Tick)
	// Recovery fires when the deadlock-recovery mechanism ejects a blocked
	// packet.
	Recovery func(p *Packet, now sim.Tick)
}

// RouterStats are cumulative per-router counters, readable through the
// experiment controller's debug interface.
type RouterStats struct {
	Forwarded    uint64 // packets sent out a cardinal port
	Delivered    uint64 // packets accepted by the local sink
	ConfigOps    uint64 // RCAP config packets applied
	Recovered    uint64 // packets ejected by deadlock recovery
	Dropped      uint64 // packets dropped at this router
	BlockedTicks uint64 // port-cycles spent with a blocked head packet
	LapsesSeen   uint64 // deadline lapses noticed
}

// ConfigSink applies RCAP operations addressed to node dst (router settings
// knobs, AIM parameters, processing-element knobs). Implemented by the
// platform layer. dst matters on concentrated topologies, where one router
// applies configuration for every cluster member.
type ConfigSink interface {
	ApplyConfig(dst NodeID, op ConfigOp, arg, arg2 int, now sim.Tick)
}

// Router is one five-port wormhole router of the mesh.
//
// Service discipline: each tick the router scans its input ports starting
// from a rotating offset (round-robin fairness) and tries to advance each
// head packet one hop. An output link stays busy for the packet's flit count
// once a transfer starts, which serialises long packets exactly like a
// wormhole channel. A head packet blocked for longer than the deadlock limit
// is ejected through the recovery path — the paper's "basic deadlock
// recovery mechanism".
type Router struct {
	ID  NodeID
	net *Network

	// in holds the five input FIFOs inline (no per-buffer indirection: the
	// port scan is the hottest loop in the simulator).
	in            [NumPorts]buffer
	neighbor      [NumPorts]*Router
	linkBusyUntil [NumPorts]sim.Tick
	blockedSince  [NumPorts]sim.Tick
	portDisabled  [NumPorts]bool
	rr            int
	// queued is the packet count across all input buffers, maintained on
	// every push/pop so the idle check and the network's active-router set
	// are O(1) instead of a per-tick occupancy scan. occ mirrors it per
	// port (bit p set = port p non-empty) so Tick services only occupied
	// ports.
	queued int
	occ    uint8
	// quietUntil is a pure fast-forward: when the last scan found every
	// occupied port waiting on an in-transit head (wormhole tail flit not
	// yet arrived) and serviced nothing, it records the earliest head
	// arrival; scans before that tick would observably do nothing except
	// advance the round-robin pointer, so Tick does exactly that and
	// returns. Any push resets it — a new packet may be ready sooner.
	quietUntil sim.Tick

	// hop is this router's row of the active next-hop table (XY while the
	// mesh is healthy, fault-aware tables otherwise); the network rebinds it
	// whenever the routing state changes, so forwarding is one indexed load.
	hop []Port

	faulty        bool
	deadlockLimit sim.Tick
	requeueLimit  int

	sink       Sink
	configSink ConfigSink

	// Absorb, when non-nil, implements task-addressed delivery: a data
	// packet passing through the router may be consumed by the local node
	// when it runs the packet's task and has queue space, even though the
	// packet's steer destination is elsewhere. This is what makes the
	// Foraging-for-Work rule ("switch to the task of the next packet in the
	// routing queue in order to sink and process it locally") meaningful,
	// and it is the fabric's natural load balancer.
	Absorb func(p *Packet, now sim.Tick) bool

	// Monitors are the AIM sense taps for this router.
	Monitors Monitors
	// Stats accumulate over the run.
	Stats RouterStats
}

func newRouter(id NodeID, net *Network, bufFlits int, deadlockLimit sim.Tick, requeueLimit int) *Router {
	r := &Router{ID: id, net: net, deadlockLimit: deadlockLimit, requeueLimit: requeueLimit}
	for p := Port(0); p < NumPorts; p++ {
		r.in[p] = buffer{capFlits: bufFlits}
	}
	return r
}

// SetSink attaches the processing element's receive interface.
func (r *Router) SetSink(s Sink) { r.sink = s }

// SetConfigSink attaches the RCAP configuration handler.
func (r *Router) SetConfigSink(s ConfigSink) { r.configSink = s }

// Faulty reports whether the router has failed.
func (r *Router) Faulty() bool { return r.faulty }

// QueuedPackets returns the number of packets across all input buffers.
func (r *Router) QueuedPackets() int { return r.queued }

// pushIn enqueues a packet on an input buffer, maintaining the queued
// counter and enrolling the router in the network's active set. All buffer
// pushes go through here.
func (r *Router) pushIn(port Port, p *Packet, readyAt sim.Tick) bool {
	if !r.in[port].Push(p, readyAt) {
		return false
	}
	r.queued++
	r.occ |= 1 << port
	r.quietUntil = 0
	r.net.activate(r.ID)
	return true
}

// popIn dequeues the head packet of an input buffer, maintaining the queued
// counter. All buffer pops go through here. Removing a head always clears
// the port's blocked-since timestamp: whatever happens to the packet next
// (forward, deliver, recover, drop), the successor head starts a fresh
// deadlock countdown.
func (r *Router) popIn(port Port) *Packet {
	p := r.in[port].Pop()
	if p != nil {
		r.queued--
		r.blockedSince[port] = 0
		if r.in[port].Len() == 0 {
			r.occ &^= 1 << port
		}
	}
	return p
}

// QueuedHeadTask returns the destination task of the oldest ready head
// packet across the cardinal input ports — the "next packet in the routing
// queue" a Foraging-for-Work node adopts when its switch timer expires.
// ok is false when no data packet is queued.
func (r *Router) QueuedHeadTask(now sim.Tick) (taskgraph.TaskID, bool) {
	return r.QueuedHeadTaskFunc(now, nil)
}

// QueuedHeadTaskFunc is QueuedHeadTask restricted to packets the accept
// filter admits. The platform uses it to limit Foraging-for-Work adoption to
// tasks the node could actually sink locally: a join-bound packet is owned
// by its fork-time join node, so adopting its task cannot serve it.
func (r *Router) QueuedHeadTaskFunc(now sim.Tick, accept func(*Packet) bool) (taskgraph.TaskID, bool) {
	bestTask := taskgraph.None
	var bestCreated sim.Tick
	found := false
	for p := Port(0); p < NumPorts; p++ {
		pkt, readyAt := r.in[p].Head()
		if pkt == nil || pkt.Kind != Data || readyAt > now {
			continue
		}
		if accept != nil && !accept(pkt) {
			continue
		}
		if !found || pkt.Created < bestCreated {
			found = true
			bestTask = pkt.Task
			bestCreated = pkt.Created
		}
	}
	return bestTask, found
}

// Inject places a packet from the local processing element into the router's
// Local input channel. It returns false when the channel is full — the
// back-pressure that stalls generation under congestion.
func (r *Router) Inject(p *Packet, now sim.Tick) bool {
	if r.faulty || r.portDisabled[Local] {
		return false
	}
	return r.pushIn(Local, p, now)
}

// Tick advances the router by one cycle.
func (r *Router) Tick(now sim.Tick) {
	// Fast path: idle routers do nothing, which keeps 100-run sweeps cheap.
	// (The active-set sweep normally skips them before this check; direct
	// callers get the same answer from the O(1) counter.)
	if r.faulty || r.queued == 0 {
		return
	}

	start := r.rr
	r.rr++
	if r.rr >= int(NumPorts) {
		r.rr = 0
	}
	// All heads in transit and nothing to service: the full scan would be a
	// no-op (the pointer advance above is all the dense scan would mutate).
	if now < r.quietUntil {
		return
	}
	// quiet collects the earliest in-transit head arrival; it survives to
	// quietUntil only when every occupied port is waiting on one and no port
	// was serviced (a serviced port's state may unblock a neighbour this
	// very tick, so any activity forces a rescan next tick).
	quiet := sim.Tick(1) << 62
	allQuiet := true
	// Visit occupied ports in round-robin order by iterating set bits of the
	// occupancy mask rotated so bit order equals rotation order from start.
	// The mask is re-derived from the live occ after every service — a port
	// can become occupied mid-scan (a rescued packet re-injected locally),
	// and the cursor makes it serviced this tick exactly when its rotation
	// position is still ahead, just as testing each port in turn would.
	for cursor := 0; cursor < int(NumPorts); {
		rot := (uint(r.occ)>>start | uint(r.occ)<<(uint(NumPorts)-uint(start))) & (1<<NumPorts - 1)
		rot &= ^uint(0) << cursor
		if rot == 0 {
			break
		}
		b := bits.TrailingZeros(rot)
		cursor = b + 1
		port := Port(b + start)
		if port >= NumPorts {
			port -= NumPorts
		}
		if at, ok := r.servicePort(port, now); ok {
			if at < quiet {
				quiet = at
			}
		} else {
			allQuiet = false
		}
	}
	if allQuiet {
		r.quietUntil = quiet
	}
}

// servicePort advances one input port. It reports (arrival, true) when the
// port provably cannot act before arrival — its head packet's tail flit is
// still in transit — and (0, false) whenever it did or might have done
// observable work this tick.
func (r *Router) servicePort(port Port, now sim.Tick) (sim.Tick, bool) {
	b := &r.in[port]
	pkt, readyAt := b.Head()
	if pkt == nil {
		return 0, false
	}
	if readyAt > now {
		return readyAt, true
	}
	if pkt.Kind == Data && pkt.Lapsed(now) {
		r.Stats.LapsesSeen++
		if r.Monitors.DeadlineLapse != nil {
			r.Monitors.DeadlineLapse(pkt.Task, now)
		}
	}

	// The next-hop row decides the packet's fate: Local means "this router
	// serves the destination" — the destination node itself, or a cluster
	// member on concentrated topologies — and delivers through the sink.
	out := PortInvalid
	if uint(pkt.Dst) < uint(len(r.hop)) {
		out = r.hop[pkt.Dst]
	}
	if out == Local {
		r.deliverLocal(port, pkt, now)
		return 0, false
	}

	// Task-addressed absorption: an en-route owner of the packet's task may
	// sink it locally instead of forwarding. Absorb transfers ownership on
	// true, so the task is read before the hand-over.
	if pkt.Kind == Data && r.Absorb != nil {
		task := pkt.Task
		if r.Absorb(pkt, now) {
			r.popIn(port)
			r.Stats.Delivered++
			if r.Monitors.InternalDelivery != nil {
				r.Monitors.InternalDelivery(task, now)
			}
			r.net.noteDelivered()
			return 0, false
		}
	}

	if out == PortInvalid {
		// Unreachable destination (e.g. partitioned by faults): hand the
		// packet to the recovery path so the platform can retarget it.
		r.popIn(port)
		r.recover(pkt, now)
		return 0, false
	}
	if r.tryForward(port, out, pkt, now) {
		return 0, false
	}
	// Head is blocked: track for deadlock recovery.
	r.Stats.BlockedTicks++
	if r.blockedSince[port] == 0 {
		r.blockedSince[port] = now
		return 0, false
	}
	if r.deadlockLimit > 0 && now-r.blockedSince[port] >= r.deadlockLimit {
		r.recoverBlocked(port, pkt, now)
	}
	return 0, false
}

// recoverBlocked applies the deadlock-recovery action to the blocked head of
// an input port. The first recoveries rotate the packet to the buffer tail,
// releasing head-of-line blocking without losing traffic; after requeueLimit
// consecutive rotations without a successful forward, the packet is ejected
// through the recovery path (retarget or drop) — the "release deadlocked
// packets" behaviour of the paper's router, which is explicitly not
// guaranteed to resolve every deadlock.
func (r *Router) recoverBlocked(port Port, pkt *Packet, now sim.Tick) {
	r.popIn(port)
	r.Stats.Recovered++
	if r.Monitors.Recovery != nil {
		r.Monitors.Recovery(pkt, now)
	}
	pkt.requeues++
	if pkt.requeues <= r.requeueLimit {
		// Rotate to the tail: capacity freed by the pop guarantees the push.
		r.pushIn(port, pkt, now)
		return
	}
	pkt.requeues = 0
	r.recover(pkt, now)
}

func (r *Router) deliverLocal(port Port, pkt *Packet, now sim.Tick) {
	switch pkt.Kind {
	case Config:
		r.popIn(port)
		r.applyConfig(pkt, now)
		r.net.noteConfig()
		// The payload has been applied; the packet's lifecycle ends here.
		r.net.release(pkt)
	case Debug, Data:
		if r.sink == nil {
			r.popIn(port)
			r.Stats.Dropped++
			r.net.handleDrop(r.ID, pkt, DropNoSink)
			return
		}
		// A successful Accept transfers ownership to the sink (which may
		// consume and recycle the packet immediately): read what the monitor
		// needs before handing it over.
		isData, task := pkt.Kind == Data, pkt.Task
		if r.sink.Accept(pkt, now) {
			r.popIn(port)
			r.Stats.Delivered++
			if isData && r.Monitors.InternalDelivery != nil {
				r.Monitors.InternalDelivery(task, now)
			}
			r.net.noteDelivered()
			return
		}
		// Local sink full: same blocking rules as a busy link.
		r.Stats.BlockedTicks++
		if r.blockedSince[port] == 0 {
			r.blockedSince[port] = now
		} else if r.deadlockLimit > 0 && now-r.blockedSince[port] >= r.deadlockLimit {
			r.recoverBlocked(port, pkt, now)
		}
	}
}

func (r *Router) tryForward(inPort, out Port, pkt *Packet, now sim.Tick) bool {
	if r.portDisabled[out] {
		return false
	}
	if r.linkBusyUntil[out] > now {
		return false
	}
	next := r.neighbor[out]
	if next == nil || next.faulty {
		return false
	}
	inSide := out.Opposite()
	if next.portDisabled[inSide] {
		return false
	}
	dur := sim.Tick(pkt.Flits)
	if dur < 1 {
		dur = 1
	}
	if !next.pushIn(inSide, pkt, now+dur) {
		return false
	}
	r.popIn(inPort)
	r.linkBusyUntil[out] = now + dur
	pkt.Hops++
	pkt.requeues = 0
	r.Stats.Forwarded++
	if pkt.Kind == Data && r.Monitors.RoutedTask != nil {
		r.Monitors.RoutedTask(pkt.Task, now)
	}
	return true
}

// recover hands a packet that cannot make progress to the network's recovery
// handler; unrescued packets are dropped.
func (r *Router) recover(pkt *Packet, now sim.Tick) {
	if r.net.handleRecovery(r.ID, pkt, now) {
		return
	}
	r.Stats.Dropped++
	r.net.handleDrop(r.ID, pkt, DropRecoveryFailed)
}

func (r *Router) applyConfig(pkt *Packet, now sim.Tick) {
	r.Stats.ConfigOps++
	switch pkt.Op {
	case OpSetDeadlockLimit:
		r.deadlockLimit = sim.Tick(pkt.Arg)
	case OpEnablePort:
		if pkt.Arg >= 0 && pkt.Arg < int(NumPorts) {
			r.portDisabled[Port(pkt.Arg)] = false
		}
	case OpDisablePort:
		if pkt.Arg >= 0 && pkt.Arg < int(NumPorts) {
			r.portDisabled[Port(pkt.Arg)] = true
		}
	default:
		if r.configSink != nil {
			r.configSink.ApplyConfig(pkt.Dst, pkt.Op, pkt.Arg, pkt.Arg2, now)
		}
	}
}

// reset restores the router to its as-constructed state in place: buffers
// empty (their packets recycled), ports enabled, fault cleared, counters
// zeroed, and the deadlock settings back at the fabric defaults. Slice and
// buffer capacity is retained so a reused router re-runs without reallocating.
func (r *Router) reset(cfg Params) {
	for p := Port(0); p < NumPorts; p++ {
		r.in[p].reset(r.net.release)
		r.linkBusyUntil[p] = 0
		r.blockedSince[p] = 0
		r.portDisabled[p] = false
	}
	r.rr = 0
	r.queued = 0
	r.occ = 0
	r.quietUntil = 0
	r.faulty = false
	r.deadlockLimit = cfg.DeadlockLimit
	r.requeueLimit = cfg.RequeueLimit
	r.Stats = RouterStats{}
}

// fail marks the router dead and drains its buffers, returning the lost
// packets so the network can account for them.
func (r *Router) fail() []*Packet {
	r.faulty = true
	var lost []*Packet
	for p := Port(0); p < NumPorts; p++ {
		lost = append(lost, r.in[p].Drain()...)
		r.blockedSince[p] = 0
	}
	r.queued = 0
	r.occ = 0
	r.Stats.Dropped += uint64(len(lost))
	return lost
}
