package noc

import (
	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// taskID converts a ring slot's packed task back to the graph's type.
func taskID(t int16) taskgraph.TaskID { return taskgraph.TaskID(t) }

// Sink receives packets delivered through a router's internal (Local output)
// port — the processing element's receive interface. Accept returns false
// when the element cannot take the packet this cycle (bounded input queue),
// which back-pressures the network exactly like the real MicroBlaze node
// interface.
type Sink interface {
	Accept(p *Packet, now sim.Tick) bool
}

// Monitors are the router's sense taps, mirroring the paper's monitor list.
// Each field may be nil. The AIM engines subscribe to these impulses.
type Monitors struct {
	// RoutedTask fires once per data packet forwarded out of any port — the
	// "task IDs of packets routed through the router" stimulus of the
	// Network Interaction model.
	RoutedTask func(task taskgraph.TaskID, now sim.Tick)
	// InternalDelivery fires when a data packet is accepted by the local
	// processing element ("packet routed to internal node" — the stimulus
	// that suppresses Foraging-for-Work task switching).
	InternalDelivery func(task taskgraph.TaskID, now sim.Tick)
	// DeadlineLapse fires when the router notices a queued packet past its
	// deadline ("time since sent" monitor).
	DeadlineLapse func(task taskgraph.TaskID, now sim.Tick)
	// Recovery fires when the deadlock-recovery mechanism ejects a blocked
	// packet.
	Recovery func(p *Packet, now sim.Tick)
}

// RouterStats are cumulative per-router counters, readable through the
// experiment controller's debug interface.
type RouterStats struct {
	Forwarded    uint64 // packets sent out a cardinal port
	Delivered    uint64 // packets accepted by the local sink
	ConfigOps    uint64 // RCAP config packets applied
	Recovered    uint64 // packets ejected by deadlock recovery
	Dropped      uint64 // packets dropped at this router
	BlockedTicks uint64 // port-cycles spent with a blocked head packet
	LapsesSeen   uint64 // deadline lapses noticed
}

// ConfigSink applies RCAP operations addressed to node dst (router settings
// knobs, AIM parameters, processing-element knobs). Implemented by the
// platform layer. dst matters on concentrated topologies, where one router
// applies configuration for every cluster member.
type ConfigSink interface {
	ApplyConfig(dst NodeID, op ConfigOp, arg, arg2 int, now sim.Tick)
}

// Router is one five-port wormhole router's identity and cold state: its
// sinks, monitor taps, recovery settings and cumulative counters. The
// per-tick hot state — input rings, occupancy, link timers, next-hop row —
// lives in the owning Network's SoA arrays (DESIGN.md §11), indexed by the
// router's ID; the Network.Tick kernel services it there, and the methods
// here are views over that state.
type Router struct {
	ID  NodeID
	net *Network

	deadlockLimit sim.Tick
	requeueLimit  int

	sink       Sink
	configSink ConfigSink

	// Absorb, when non-nil, implements task-addressed delivery: a data
	// packet passing through the router may be consumed by the local node
	// when it runs the packet's task and has queue space, even though the
	// packet's steer destination is elsewhere. This is what makes the
	// Foraging-for-Work rule ("switch to the task of the next packet in the
	// routing queue in order to sink and process it locally") meaningful,
	// and it is the fabric's natural load balancer.
	//
	// The absorber receives the packet's arena handle and destination task:
	// enough to turn down a mismatched packet without dereferencing it
	// (absorption is consulted for every passing data head, so the common
	// miss must stay cheap). Resolve the handle through the network's Pool
	// only on a match; returning true transfers ownership.
	Absorb func(id PacketID, task taskgraph.TaskID, now sim.Tick) bool

	// Monitors are the AIM sense taps for this router.
	Monitors Monitors
	// Stats accumulate over the run.
	Stats RouterStats
}

func newRouter(id NodeID, net *Network, deadlockLimit sim.Tick, requeueLimit int) *Router {
	return &Router{ID: id, net: net, deadlockLimit: deadlockLimit, requeueLimit: requeueLimit}
}

// SetSink attaches the processing element's receive interface.
func (r *Router) SetSink(s Sink) { r.sink = s }

// SetConfigSink attaches the RCAP configuration handler.
func (r *Router) SetConfigSink(s ConfigSink) { r.configSink = s }

// Faulty reports whether the router has failed.
func (r *Router) Faulty() bool { return r.net.state[r.ID].faulty }

// PortDisabled reports whether a port is administratively down (RCAP knob).
func (r *Router) PortDisabled(p Port) bool { return r.net.state[r.ID].disabled&(1<<p) != 0 }

// QueuedPackets returns the number of packets across all input rings.
func (r *Router) QueuedPackets() int { return int(r.net.state[r.ID].queued) }

// QueuedHeadTask returns the destination task of the oldest ready head
// packet across the cardinal input ports — the "next packet in the routing
// queue" a Foraging-for-Work node adopts when its switch timer expires.
// ok is false when no data packet is queued.
func (r *Router) QueuedHeadTask(now sim.Tick) (taskgraph.TaskID, bool) {
	return r.QueuedHeadTaskFunc(now, nil)
}

// QueuedHeadTaskFunc is QueuedHeadTask restricted to tasks the accept
// filter admits. The platform uses it to limit Foraging-for-Work adoption to
// tasks the node could actually sink locally: a join-bound packet is owned
// by its fork-time join node, so adopting its task cannot serve it. The
// filter sees the queued packet's destination task only — everything the
// adoption rule needs, without dereferencing the packet.
func (r *Router) QueuedHeadTaskFunc(now sim.Tick, accept func(task taskgraph.TaskID) bool) (taskgraph.TaskID, bool) {
	n := r.net
	st := &n.state[r.ID]
	bestTask := taskgraph.None
	var bestCreated sim.Tick
	found := false
	for p := Port(0); p < NumPorts; p++ {
		if st.rings[p].n == 0 {
			continue
		}
		s := n.headSlot(st, p)
		if s.kind != Data || s.ready > now {
			continue
		}
		if accept != nil && !accept(taskID(s.task)) {
			continue
		}
		created := n.pool.Deref(s.id).Created
		if !found || created < bestCreated {
			found = true
			bestTask = taskID(s.task)
			bestCreated = created
		}
	}
	return bestTask, found
}

// Inject places a packet from the local processing element into the router's
// Local input channel. It returns false when the channel is full — the
// back-pressure that stalls generation under congestion.
func (r *Router) Inject(p *Packet, now sim.Tick) bool {
	n := r.net
	st := &n.state[r.ID]
	if st.faulty || st.disabled&(1<<Local) != 0 {
		return false
	}
	return n.pushPacket(int(r.ID), Local, p, now)
}

// Tick advances the router by one cycle (a single-router view of the fused
// network kernel; Network.Tick sweeps the active set instead of calling
// this per router).
func (r *Router) Tick(now sim.Tick) { r.net.tickRouter(int(r.ID), &r.net.state[r.ID], now) }

func (r *Router) applyConfig(pkt *Packet, now sim.Tick) {
	r.Stats.ConfigOps++
	switch pkt.Op {
	case OpSetDeadlockLimit:
		r.deadlockLimit = sim.Tick(pkt.Arg)
		// Parked blocked ports computed their recovery wake under the old
		// limit; make them re-evaluate.
		r.net.stirRouter(int(r.ID))
	case OpEnablePort:
		if pkt.Arg >= 0 && pkt.Arg < int(NumPorts) {
			r.net.state[r.ID].disabled &^= 1 << Port(pkt.Arg)
			// A re-enabled channel can unblock this router's own heads and
			// any parked neighbour forwarding into it.
			r.net.stirAll()
		}
	case OpDisablePort:
		if pkt.Arg >= 0 && pkt.Arg < int(NumPorts) {
			r.net.state[r.ID].disabled |= 1 << Port(pkt.Arg)
			r.net.stirAll()
		}
	default:
		if r.configSink != nil {
			r.configSink.ApplyConfig(pkt.Dst, pkt.Op, pkt.Arg, pkt.Arg2, now)
		}
	}
}

// reset restores the router's cold state to its as-constructed form; the
// owning network clears the SoA hot state alongside (Network.Reset).
func (r *Router) reset(cfg Params) {
	r.deadlockLimit = cfg.DeadlockLimit
	r.requeueLimit = cfg.RequeueLimit
	r.Stats = RouterStats{}
}
