package noc

import (
	"testing"
	"testing/quick"
)

func TestXYRoutingProgress(t *testing.T) {
	topo := NewTopology(16, 8)
	src := topo.ID(Coord{2, 6})
	dst := topo.ID(Coord{13, 1})
	cur := src
	hops := 0
	for cur != dst {
		p := xyNextHop(topo, cur, dst)
		nb, ok := topo.Neighbor(cur, p)
		if !ok {
			t.Fatalf("XY routed off-mesh at %v via %v", topo.Coord(cur), p)
		}
		cur = nb
		hops++
		if hops > 100 {
			t.Fatal("XY routing did not converge")
		}
	}
	if want := topo.Distance(src, dst); hops != want {
		t.Errorf("XY path length %d, want Manhattan %d", hops, want)
	}
}

func TestXYRoutesXFirst(t *testing.T) {
	topo := NewTopology(8, 8)
	from := topo.ID(Coord{2, 2})
	to := topo.ID(Coord{5, 5})
	if got := xyNextHop(topo, from, to); got != East {
		t.Errorf("XY first hop = %v, want East (X before Y)", got)
	}
	sameCol := topo.ID(Coord{2, 5})
	if got := xyNextHop(topo, from, sameCol); got != South {
		t.Errorf("XY same-column hop = %v, want South", got)
	}
	if got := xyNextHop(topo, from, from); got != Local {
		t.Errorf("XY self hop = %v, want Local", got)
	}
}

// Property: the XY next hop always strictly reduces the Manhattan distance.
func TestXYMonotoneProperty(t *testing.T) {
	topo := NewTopology(16, 8)
	f := func(rs, rd uint16) bool {
		src := NodeID(int(rs) % topo.Nodes())
		dst := NodeID(int(rd) % topo.Nodes())
		if src == dst {
			return xyNextHop(topo, src, dst) == Local
		}
		p := xyNextHop(topo, src, dst)
		nb, ok := topo.Neighbor(src, p)
		return ok && topo.Distance(nb, dst) == topo.Distance(src, dst)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTablesMatchXYOnHealthyMesh(t *testing.T) {
	topo := NewTopology(16, 8)
	rt := computeTables(topo, func(NodeID) bool { return true })
	for src := NodeID(0); int(src) < topo.Nodes(); src++ {
		for dst := NodeID(0); int(dst) < topo.Nodes(); dst++ {
			got := rt.NextHop(src, dst)
			if src == dst {
				if got != Local {
					t.Fatalf("table self-hop at %d = %v", src, got)
				}
				continue
			}
			nb, ok := topo.Neighbor(src, got)
			if !ok {
				t.Fatalf("table routes %d->%d off mesh via %v", src, dst, got)
			}
			if topo.Distance(nb, dst) != topo.Distance(src, dst)-1 {
				t.Fatalf("table hop %d->%d via %v not on a shortest path", src, dst, got)
			}
		}
	}
}

func TestTablesRouteAroundFaults(t *testing.T) {
	topo := NewTopology(8, 8)
	// Kill a vertical wall with one gap at the bottom.
	dead := map[NodeID]bool{}
	for y := 0; y < 7; y++ {
		dead[topo.ID(Coord{4, y})] = true
	}
	rt := computeTables(topo, func(id NodeID) bool { return !dead[id] })
	src := topo.ID(Coord{0, 0})
	dst := topo.ID(Coord{7, 0})
	cur := src
	hops := 0
	for cur != dst {
		p := rt.NextHop(cur, dst)
		if p == PortInvalid {
			t.Fatalf("no route at %v despite gap", topo.Coord(cur))
		}
		nb, ok := topo.Neighbor(cur, p)
		if !ok || dead[nb] {
			t.Fatalf("routed into dead/off-mesh node at %v via %v", topo.Coord(cur), p)
		}
		cur = nb
		hops++
		if hops > 64 {
			t.Fatal("fault route did not converge")
		}
	}
	// Must detour through the gap at y=7: path ≥ 7 (down) + 7 (across) + 7 (up).
	if hops < 21 {
		t.Errorf("detour length %d suspiciously short", hops)
	}
}

func TestTablesUnreachable(t *testing.T) {
	topo := NewTopology(4, 4)
	// Cut the mesh into two halves with a full dead column.
	dead := map[NodeID]bool{}
	for y := 0; y < 4; y++ {
		dead[topo.ID(Coord{2, y})] = true
	}
	rt := computeTables(topo, func(id NodeID) bool { return !dead[id] })
	left := topo.ID(Coord{0, 0})
	right := topo.ID(Coord{3, 3})
	if got := rt.NextHop(left, right); got != PortInvalid {
		t.Errorf("NextHop across partition = %v, want PortInvalid", got)
	}
	if got := rt.NextHop(left, topo.ID(Coord{1, 3})); got == PortInvalid {
		t.Error("NextHop within the same partition unreachable")
	}
}

// Property: on a randomly damaged mesh, every table hop from an alive node
// either makes progress toward the destination along alive nodes, or the
// destination is genuinely unreachable (cross-checked with a fresh BFS).
func TestTablesSoundnessProperty(t *testing.T) {
	topo := NewTopology(8, 6)
	f := func(seed uint64, kills uint8) bool {
		rng := newTestRNG(seed)
		dead := map[NodeID]bool{}
		for i := 0; i < int(kills%20); i++ {
			dead[NodeID(rng.Intn(topo.Nodes()))] = true
		}
		alive := func(id NodeID) bool { return !dead[id] }
		rt := computeTables(topo, alive)
		// Check a handful of random pairs per damage pattern.
		for i := 0; i < 10; i++ {
			src := NodeID(rng.Intn(topo.Nodes()))
			dst := NodeID(rng.Intn(topo.Nodes()))
			if dead[src] || dead[dst] {
				continue
			}
			reach := bfsReachable(topo, alive, src, dst)
			hop := rt.NextHop(src, dst)
			if src == dst {
				if hop != Local {
					return false
				}
				continue
			}
			if !reach {
				if hop != PortInvalid {
					return false
				}
				continue
			}
			// Walk the tables to the destination; must terminate.
			cur, steps := src, 0
			for cur != dst {
				p := rt.NextHop(cur, dst)
				nb, ok := topo.Neighbor(cur, p)
				if p == PortInvalid || !ok || dead[nb] {
					return false
				}
				cur = nb
				steps++
				if steps > topo.Nodes() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bfsReachable(topo Topology, alive func(NodeID) bool, src, dst NodeID) bool {
	seen := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			return true
		}
		for p := North; p <= West; p++ {
			nb, ok := topo.Neighbor(cur, p)
			if ok && alive(nb) && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return false
}

// newTestRNG avoids importing internal/sim into half the tests just for a
// generator; a tiny xorshift is enough here.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed | 1} }

func (r *testRNG) Intn(n int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return int(r.s % uint64(n))
}
