package noc

// Per-topology routing properties: under seeded random fault sets, the
// shortest-path tables must (a) find a route exactly when one exists in the
// alive router graph, (b) never route through a dead router, and (c) be free
// of cycles — every hop strictly decreases the BFS distance to the
// destination, so following the table always terminates (the routing sense
// of deadlock freedom; head-of-line deadlock across destinations is handled
// by the router's recovery mechanism). The healthy-fabric dimension-order
// hop must satisfy the same monotone-progress property.

import (
	"fmt"
	"testing"
)

// propTopologies builds one instance of every fabric shape on a 16×8 grid.
func propTopologies() []Topology {
	return []Topology{NewMesh(16, 8), NewTorus(16, 8), NewCMesh(16, 8)}
}

// routerSet returns the distinct router IDs of a topology.
func routerSet(topo Topology) []NodeID {
	var out []NodeID
	for id := NodeID(0); int(id) < topo.Nodes(); id++ {
		if topo.RouterOf(id) == id {
			out = append(out, id)
		}
	}
	return out
}

// aliveComponents labels every alive router with its connected component.
func aliveComponents(topo Topology, alive func(NodeID) bool) map[NodeID]int {
	comp := map[NodeID]int{}
	next := 0
	for _, start := range routerSet(topo) {
		if !alive(start) {
			continue
		}
		if _, seen := comp[start]; seen {
			continue
		}
		comp[start] = next
		queue := []NodeID{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for p := North; p <= West; p++ {
				if nb, ok := topo.Neighbor(cur, p); ok && alive(nb) {
					if _, seen := comp[nb]; !seen {
						comp[nb] = next
						queue = append(queue, nb)
					}
				}
			}
		}
		next++
	}
	return comp
}

// TestTopologyRoutingProperties is the satellite property test: for every
// topology and fault count 0/8/32 (three seeded draws each), every pair of
// live nodes in the same alive component is mutually reachable through the
// route tables without revisiting a router, and cross-component pairs are
// marked unreachable.
func TestTopologyRoutingProperties(t *testing.T) {
	for _, topo := range propTopologies() {
		for _, kills := range []int{0, 8, 32} {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/faults=%d/seed=%d", topo.Kind(), kills, seed)
				t.Run(name, func(t *testing.T) {
					rng := newTestRNG(seed * 7919)
					// Kill `kills` distinct nodes; each takes its serving
					// router down, as Network.Fail does (so on cmesh several
					// node faults may collapse onto one hub).
					picked := map[NodeID]bool{}
					dead := map[NodeID]bool{}
					for len(picked) < kills {
						n := NodeID(rng.Intn(topo.Nodes()))
						if !picked[n] {
							picked[n] = true
							dead[topo.RouterOf(n)] = true
						}
					}
					alive := func(id NodeID) bool { return !dead[id] }
					rt := computeTables(topo, alive)
					comp := aliveComponents(topo, alive)

					for src := NodeID(0); int(src) < topo.Nodes(); src++ {
						rsrc := topo.RouterOf(src)
						if dead[rsrc] {
							continue
						}
						for dst := NodeID(0); int(dst) < topo.Nodes(); dst++ {
							rdst := topo.RouterOf(dst)
							if dead[rdst] {
								continue
							}
							hop := rt.NextHop(src, dst)
							if rsrc == rdst {
								if hop != Local {
									t.Fatalf("same-router pair %d->%d hop = %v, want Local", src, dst, hop)
								}
								continue
							}
							if comp[rsrc] != comp[rdst] {
								if hop != PortInvalid {
									t.Fatalf("cross-partition pair %d->%d has hop %v", src, dst, hop)
								}
								continue
							}
							// Same component: the walk must reach dst's router
							// without revisiting any router (cycle freedom).
							cur, steps := rsrc, 0
							visited := map[NodeID]bool{}
							for cur != rdst {
								if visited[cur] {
									t.Fatalf("route %d->%d revisits router %d (cycle)", src, dst, cur)
								}
								visited[cur] = true
								p := rt.NextHop(cur, dst)
								if p == PortInvalid || p == Local {
									t.Fatalf("route %d->%d dead-ends at router %d with %v", src, dst, cur, p)
								}
								nb, ok := topo.Neighbor(cur, p)
								if !ok || dead[nb] {
									t.Fatalf("route %d->%d enters dead/off-fabric router via %v at %d", src, dst, p, cur)
								}
								cur = nb
								if steps++; steps > topo.Nodes() {
									t.Fatalf("route %d->%d did not converge", src, dst)
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestTopologyBaseNextHopMonotone checks the healthy-fabric dimension-order
// hop on every topology: each hop strictly decreases the topology distance
// to the destination (so base routing is cycle-free too), and same-router
// pairs resolve to Local.
func TestTopologyBaseNextHopMonotone(t *testing.T) {
	for _, topo := range propTopologies() {
		t.Run(topo.Kind(), func(t *testing.T) {
			for src := NodeID(0); int(src) < topo.Nodes(); src++ {
				for dst := NodeID(0); int(dst) < topo.Nodes(); dst++ {
					hop := topo.BaseNextHop(src, dst)
					if topo.RouterOf(src) == topo.RouterOf(dst) {
						if hop != Local {
							t.Fatalf("same-router %d->%d hop = %v, want Local", src, dst, hop)
						}
						continue
					}
					nb, ok := topo.Neighbor(topo.RouterOf(src), hop)
					if !ok {
						t.Fatalf("base hop %d->%d via %v leaves the fabric", src, dst, hop)
					}
					if topo.Distance(nb, dst) != topo.Distance(src, dst)-1 {
						t.Fatalf("base hop %d->%d via %v is not minimal (%d -> %d)",
							src, dst, hop, topo.Distance(src, dst), topo.Distance(nb, dst))
					}
				}
			}
		})
	}
}

// TestTorusTopology covers the wrap-around specifics: edge neighbours wrap,
// distances take the short way around, and the tie between equal ring
// directions resolves East/South deterministically.
func TestTorusTopology(t *testing.T) {
	topo := NewTorus(8, 4)
	// West of the west edge wraps to the east edge.
	if nb, ok := topo.Neighbor(topo.ID(Coord{0, 0}), West); !ok || nb != topo.ID(Coord{7, 0}) {
		t.Errorf("west wrap = %v", nb)
	}
	if nb, ok := topo.Neighbor(topo.ID(Coord{0, 0}), North); !ok || nb != topo.ID(Coord{0, 3}) {
		t.Errorf("north wrap = %v", nb)
	}
	// Corner-to-corner is 2 hops on the torus, not 10.
	if got := topo.Distance(topo.ID(Coord{0, 0}), topo.ID(Coord{7, 3})); got != 2 {
		t.Errorf("wrapped corner distance = %d, want 2", got)
	}
	// Exactly half way around an even ring: the tie goes East.
	if got := topo.BaseNextHop(topo.ID(Coord{0, 0}), topo.ID(Coord{4, 0})); got != East {
		t.Errorf("half-ring X tie = %v, want East", got)
	}
	if got := topo.BaseNextHop(topo.ID(Coord{0, 0}), topo.ID(Coord{0, 2})); got != South {
		t.Errorf("half-ring Y tie = %v, want South", got)
	}
	mustPanic(t, "degenerate torus", func() { NewTorus(1, 4) })
}

// TestCMeshTopology covers the concentration specifics: cluster membership,
// express links between hubs only, grid-adjacent laterals, and router-hop
// distances.
func TestCMeshTopology(t *testing.T) {
	topo := NewCMesh(8, 4)
	hub := topo.ID(Coord{0, 0})
	for _, c := range []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if got := topo.RouterOf(topo.ID(c)); got != hub {
			t.Errorf("RouterOf(%v) = %d, want hub %d", c, got, hub)
		}
	}
	// Express link: hub (0,0) east to hub (2,0).
	if nb, ok := topo.Neighbor(hub, East); !ok || nb != topo.ID(Coord{2, 0}) {
		t.Errorf("hub east express = %v, %v", nb, ok)
	}
	// Leaves own no fabric links...
	leaf := topo.ID(Coord{1, 1})
	for p := North; p <= West; p++ {
		if _, ok := topo.Neighbor(leaf, p); ok {
			t.Errorf("leaf has fabric link via %v", p)
		}
	}
	// ...but keep their physical grid adjacency for thermal conduction.
	if nb, ok := topo.Lateral(leaf, West); !ok || nb != topo.ID(Coord{0, 1}) {
		t.Errorf("leaf lateral west = %v, %v", nb, ok)
	}
	// Distance is measured in router hops: intra-cluster 0, next cluster 1.
	if got := topo.Distance(leaf, hub); got != 0 {
		t.Errorf("intra-cluster distance = %d, want 0", got)
	}
	if got := topo.Distance(leaf, topo.ID(Coord{2, 0})); got != 1 {
		t.Errorf("adjacent-cluster distance = %d, want 1", got)
	}
	mustPanic(t, "odd cmesh", func() { NewCMesh(7, 4) })
}

// TestMakeTopology covers the kind-name constructor used by the spec/CLI
// layers.
func TestMakeTopology(t *testing.T) {
	for _, tc := range []struct {
		kind string
		want string
	}{
		{"", "mesh"}, {"mesh", "mesh"}, {"torus", "torus"}, {"cmesh", "cmesh"},
	} {
		topo, err := MakeTopology(tc.kind, 8, 4)
		if err != nil {
			t.Fatalf("MakeTopology(%q): %v", tc.kind, err)
		}
		if topo.Kind() != tc.want {
			t.Errorf("MakeTopology(%q).Kind() = %q, want %q", tc.kind, topo.Kind(), tc.want)
		}
	}
	for _, tc := range []struct {
		kind string
		w, h int
	}{
		{"hypercube", 8, 4}, {"torus", 1, 4}, {"cmesh", 7, 4}, {"cmesh", 8, 3}, {"mesh", 0, 4},
	} {
		if _, err := MakeTopology(tc.kind, tc.w, tc.h); err == nil {
			t.Errorf("MakeTopology(%q, %d, %d) accepted", tc.kind, tc.w, tc.h)
		}
	}
}

// On a dimension-2 torus ring both directions reach the same node; Lateral
// must report that physical pair through one port only, while the fabric's
// Neighbor keeps both parallel links.
func TestTorusDim2LateralDedup(t *testing.T) {
	topo := NewTorus(2, 8)
	n0 := topo.ID(Coord{0, 3})
	if nb, ok := topo.Lateral(n0, East); !ok || nb != topo.ID(Coord{1, 3}) {
		t.Errorf("East lateral = %v,%v", nb, ok)
	}
	if _, ok := topo.Lateral(n0, West); ok {
		t.Error("West lateral duplicates the 2-ring pair")
	}
	if nb, ok := topo.Neighbor(n0, West); !ok || nb != topo.ID(Coord{1, 3}) {
		t.Errorf("fabric West link lost: %v,%v", nb, ok)
	}
	tall := NewTorus(8, 2)
	if _, ok := tall.Lateral(tall.ID(Coord{3, 0}), North); ok {
		t.Error("North lateral duplicates the 2-ring pair")
	}
	if _, ok := tall.Lateral(tall.ID(Coord{3, 0}), South); !ok {
		t.Error("South lateral missing on 2-tall torus")
	}
}
