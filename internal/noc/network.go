package noc

import (
	"fmt"

	"centurion/internal/sim"
)

// DropReason classifies why the fabric dropped a packet.
type DropReason int

const (
	// DropUnreachable: no alive path to the destination.
	DropUnreachable DropReason = iota
	// DropRecoveryFailed: deadlock recovery ejected the packet and no
	// handler rescued it.
	DropRecoveryFailed
	// DropRouterFailed: the packet was buffered in a router that failed.
	DropRouterFailed
	// DropNoSink: delivered to a node with no processing element attached.
	DropNoSink
)

// String names the drop reason.
func (d DropReason) String() string {
	switch d {
	case DropUnreachable:
		return "unreachable"
	case DropRecoveryFailed:
		return "recovery-failed"
	case DropRouterFailed:
		return "router-failed"
	case DropNoSink:
		return "no-sink"
	}
	return "unknown"
}

// Params sets the fabric parameters.
type Params struct {
	// BufferFlits is the flit capacity of each router input channel.
	BufferFlits int
	// DeadlockLimit is how long a head packet may block before the recovery
	// mechanism acts on it (0 disables recovery).
	DeadlockLimit sim.Tick
	// RequeueLimit is how many consecutive recovery rotations a packet gets
	// before it is ejected from the router entirely.
	RequeueLimit int
	// Mode selects the routing strategy (default RouteAuto).
	Mode RoutingMode
}

// DefaultConfig returns Params mirroring the Centurion router: small wormhole buffers and a
// aggressive 2 ms recovery rotation that doubles as head-of-line relief.
func DefaultConfig() Params {
	return Params{
		BufferFlits:   8,
		DeadlockLimit: sim.Ms(2),
		RequeueLimit:  64,
		Mode:          RouteAuto,
	}
}

// NetworkStats are fabric-wide counters used for packet-conservation checks.
type NetworkStats struct {
	Injected  uint64
	Delivered uint64
	ConfigOps uint64
	Dropped   uint64
	Rescued   uint64 // recovery-path packets re-admitted by the handler
}

// Network is the fabric: topology, routers, links and routing state.
type Network struct {
	Topo  Topology
	cfg   Params
	nodes int
	// routers maps every NodeID to the router serving it. On concentrated
	// topologies cluster members share one *Router, so the slice holds
	// duplicates; uniq lists each router exactly once (ascending IDs) for
	// whole-fabric iteration.
	routers []*Router
	uniq    []*Router

	// active tracks routers with queued packets. A router enrolls on any
	// buffer push and retires once drained, so Tick sweeps only the part of
	// the fabric actually carrying traffic instead of every router.
	active *sim.ActiveSet

	tables *routeTables
	// healthy caches the fault-free route tables so Reset can restore them
	// without recomputation (they are immutable once built).
	healthy *routeTables
	// xy[from][dst] is the topology's dimension-order next hop, precomputed
	// once so the healthy-fabric forwarding path is a single indexed load
	// instead of two coordinate decompositions per packet per tick.
	xy         [][]Port
	haveFaults bool
	faultyCnt  int

	// Pool, when non-nil, receives packets whose fabric lifecycle ended at a
	// router: applied config payloads and dropped packets (released after the
	// DropHandler has observed them). Packets delivered to a sink are owned by
	// the sink from then on. May be nil (un-pooled fabrics just let the GC
	// collect dead packets).
	Pool *PacketPool

	// DropHandler observes every dropped packet (may be nil).
	DropHandler func(at NodeID, p *Packet, reason DropReason)
	// RecoveryHandler may rescue a packet ejected by deadlock recovery or
	// unreachable-destination handling, e.g. by retargeting and re-injecting
	// it. Return true when the packet was taken over. May be nil.
	RecoveryHandler func(at NodeID, p *Packet, now sim.Tick) bool

	stats NetworkStats
}

// NewNetwork builds the fabric the topology describes with the given
// configuration.
func NewNetwork(topo Topology, cfg Params) *Network {
	if cfg.BufferFlits <= 0 {
		cfg.BufferFlits = DefaultConfig().BufferFlits
	}
	nodes := topo.Nodes()
	n := &Network{Topo: topo, cfg: cfg, nodes: nodes, active: sim.NewActiveSet(nodes)}
	n.routers = make([]*Router, nodes)
	for id := 0; id < nodes; id++ {
		rid := topo.RouterOf(NodeID(id))
		if n.routers[rid] == nil {
			r := newRouter(rid, n, cfg.BufferFlits, cfg.DeadlockLimit, cfg.RequeueLimit)
			n.routers[rid] = r
			n.uniq = append(n.uniq, r)
		}
		n.routers[id] = n.routers[rid]
	}
	// Wire the fabric links between routers.
	for _, r := range n.uniq {
		for p := North; p <= West; p++ {
			if nb, ok := topo.Neighbor(r.ID, p); ok {
				r.neighbor[p] = n.routers[nb]
			}
		}
	}
	// Like the route tables, xy rows depend only on the serving router, so
	// cluster members alias their hub's row.
	n.xy = make([][]Port, nodes)
	for from := range n.xy {
		if topo.RouterOf(NodeID(from)) != NodeID(from) {
			continue
		}
		row := make([]Port, nodes)
		for dst := range row {
			row[dst] = xyNextHop(topo, NodeID(from), NodeID(dst))
		}
		n.xy[from] = row
	}
	for from := range n.xy {
		if n.xy[from] == nil {
			n.xy[from] = n.xy[topo.RouterOf(NodeID(from))]
		}
	}
	if cfg.Mode == RouteTables {
		n.RecomputeRoutes()
	} else {
		n.applyRoutingRows()
	}
	return n
}

// applyRoutingRows rebinds every router's next-hop row to the table the
// current routing state selects (dimension-order on a healthy fabric,
// shortest-path tables otherwise). Called whenever mode-relevant state
// changes.
func (n *Network) applyRoutingRows() {
	useXY := n.cfg.Mode == RouteXY || (n.cfg.Mode == RouteAuto && !n.haveFaults)
	for _, r := range n.uniq {
		if useXY {
			r.hop = n.xy[r.ID]
		} else {
			r.hop = n.tables.next[r.ID]
		}
	}
}

// Router returns the router serving the given node (shared by the whole
// cluster on concentrated topologies).
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// Routers returns the router slice indexed by NodeID. On concentrated
// topologies cluster members alias one router. Callers must not mutate it.
func (n *Network) Routers() []*Router { return n.routers }

// UniqueRouters returns each physical router exactly once, in ascending ID
// order. Callers must not mutate the slice.
func (n *Network) UniqueRouters() []*Router { return n.uniq }

// Stats returns the fabric-wide counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// Tick advances the fabric by one cycle, servicing only routers with queued
// packets. The sweep runs in ascending node-ID order — the same order as the
// dense full scan — so results are bit-identical to TickDense: a router with
// no queued packets is a no-op tick either way (its round-robin pointer only
// advances while traffic is buffered).
func (n *Network) Tick(now sim.Tick) {
	n.active.Sweep(func(id int) bool {
		r := n.routers[id]
		r.Tick(now)
		return r.queued > 0 && !r.faulty
	})
}

// TickDense advances every router by one cycle, active or not — the
// pre-active-set reference scan kept for the stepping-equivalence tests.
func (n *Network) TickDense(now sim.Tick) {
	for _, r := range n.uniq {
		r.Tick(now)
	}
}

// ActiveRouters returns the number of routers currently holding traffic.
func (n *Network) ActiveRouters() int { return n.active.Len() }

// activate enrolls a router in the active sweep (called on buffer push).
func (n *Network) activate(id NodeID) { n.active.Add(int(id)) }

// Inject enqueues a packet at the source node's Local input channel.
// It returns false (without consuming the packet) under back-pressure.
func (n *Network) Inject(at NodeID, p *Packet, now sim.Tick) bool {
	if n.routers[at].Inject(p, now) {
		n.stats.Injected++
		return true
	}
	return false
}

// NextHop returns the output port at from toward dst under the current
// routing mode.
func (n *Network) NextHop(from, dst NodeID) Port {
	if dst < 0 || int(dst) >= n.nodes {
		return PortInvalid
	}
	switch n.cfg.Mode {
	case RouteXY:
		return n.xy[from][dst]
	case RouteTables:
		return n.tables.NextHop(from, dst)
	default: // RouteAuto
		if !n.haveFaults {
			return n.xy[from][dst]
		}
		return n.tables.NextHop(from, dst)
	}
}

// Alive reports whether the node's router is functioning.
func (n *Network) Alive(id NodeID) bool { return !n.routers[id].faulty }

// FaultyCount returns the number of failed routers.
func (n *Network) FaultyCount() int { return n.faultyCnt }

// Fail marks the router serving a node as failed, drains and accounts its
// buffered packets, and recomputes fault-aware routes. On concentrated
// topologies this takes the node's whole cluster off the fabric (the shared
// router is the cluster's only attachment point). Failing an already-failed
// router is a no-op.
func (n *Network) Fail(id NodeID, now sim.Tick) {
	r := n.routers[id]
	if r.faulty {
		return
	}
	lost := r.fail()
	n.active.Remove(int(r.ID))
	n.faultyCnt++
	for _, p := range lost {
		n.handleDrop(r.ID, p, DropRouterFailed)
	}
	n.haveFaults = true
	if n.cfg.Mode != RouteXY {
		n.RecomputeRoutes()
	}
	_ = now
}

// RecomputeRoutes rebuilds the fault-aware shortest-path tables.
func (n *Network) RecomputeRoutes() {
	n.tables = computeTables(n.Topo, func(id NodeID) bool { return !n.routers[id].faulty })
	if !n.haveFaults && n.healthy == nil {
		n.healthy = n.tables
	}
	n.applyRoutingRows()
}

// Reset restores the fabric to its as-constructed state in place: routers
// revive with empty buffers and default settings, counters clear, and the
// fault-free route tables are restored. Buffered packets are recycled into
// the pool without drop accounting — a reset ends the run they belonged to.
func (n *Network) Reset() {
	for _, r := range n.uniq {
		r.reset(n.cfg)
	}
	n.active.Clear()
	n.haveFaults = false
	n.faultyCnt = 0
	n.stats = NetworkStats{}
	n.tables = n.healthy
	n.applyRoutingRows()
}

// release recycles a packet whose fabric lifecycle ended.
func (n *Network) release(p *Packet) {
	if n.Pool != nil {
		n.Pool.Put(p)
	}
}

// Reachable reports whether dst can be reached from src under the current
// routing state.
func (n *Network) Reachable(src, dst NodeID) bool {
	if !n.Alive(src) || !n.Alive(dst) {
		return false
	}
	if src == dst {
		return true
	}
	if !n.haveFaults || n.cfg.Mode == RouteXY {
		return true // healthy mesh is fully connected
	}
	return n.tables.NextHop(src, dst) != PortInvalid
}

// InFlight counts packets currently buffered anywhere in the fabric.
func (n *Network) InFlight() int {
	total := 0
	for _, r := range n.uniq {
		total += r.QueuedPackets()
	}
	return total
}

func (n *Network) handleDrop(at NodeID, p *Packet, reason DropReason) {
	n.stats.Dropped++
	if n.DropHandler != nil {
		n.DropHandler(at, p, reason)
	}
	// The handler was the last reader: the packet's lifecycle ends here.
	n.release(p)
}

func (n *Network) handleRecovery(at NodeID, p *Packet, now sim.Tick) bool {
	if n.RecoveryHandler != nil && n.RecoveryHandler(at, p, now) {
		n.stats.Rescued++
		return true
	}
	return false
}

func (n *Network) noteDelivered() { n.stats.Delivered++ }
func (n *Network) noteConfig()    { n.stats.ConfigOps++ }

// String summarises the fabric state.
func (n *Network) String() string {
	return fmt.Sprintf("noc %s, %d faulty, %d in flight", n.Topo, n.faultyCnt, n.InFlight())
}
