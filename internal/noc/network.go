package noc

import (
	"fmt"
	"math/bits"

	"centurion/internal/sim"
)

// DropReason classifies why the fabric dropped a packet.
type DropReason int

const (
	// DropUnreachable: no alive path to the destination.
	DropUnreachable DropReason = iota
	// DropRecoveryFailed: deadlock recovery ejected the packet and no
	// handler rescued it.
	DropRecoveryFailed
	// DropRouterFailed: the packet was buffered in a router that failed.
	DropRouterFailed
	// DropNoSink: delivered to a node with no processing element attached.
	DropNoSink
	// DropByzantine: a byzantine router silently discarded the packet.
	DropByzantine
)

// String names the drop reason.
func (d DropReason) String() string {
	switch d {
	case DropUnreachable:
		return "unreachable"
	case DropRecoveryFailed:
		return "recovery-failed"
	case DropRouterFailed:
		return "router-failed"
	case DropNoSink:
		return "no-sink"
	case DropByzantine:
		return "byzantine"
	}
	return "unknown"
}

// Params sets the fabric parameters.
type Params struct {
	// BufferFlits is the flit capacity of each router input channel.
	BufferFlits int
	// DeadlockLimit is how long a head packet may block before the recovery
	// mechanism acts on it (0 disables recovery).
	DeadlockLimit sim.Tick
	// RequeueLimit is how many consecutive recovery rotations a packet gets
	// before it is ejected from the router entirely.
	RequeueLimit int
	// Mode selects the routing strategy (default RouteAuto).
	Mode RoutingMode
	// Tiles partitions the router ID space into row-band tiles for the
	// parallel tick kernel (DESIGN.md §14). 0 auto-sizes from the grid
	// (one tile below 2048 nodes — the legacy serial kernel); 1 forces the
	// legacy kernel. Tiling is SEMANTIC: it fixes the cross-boundary
	// service order, so it must be derived from the spec, never from the
	// host machine.
	Tiles int
	// Workers caps the goroutines sweeping tiles within one Tick. 0 uses
	// GOMAXPROCS. Purely a runtime throttle — results are bit-identical
	// for every worker count by construction.
	Workers int
}

// DefaultConfig returns Params mirroring the Centurion router: small wormhole buffers and a
// aggressive 2 ms recovery rotation that doubles as head-of-line relief.
func DefaultConfig() Params {
	return Params{
		BufferFlits:   8,
		DeadlockLimit: sim.Ms(2),
		RequeueLimit:  64,
		Mode:          RouteAuto,
	}
}

// NetworkStats are fabric-wide counters used for packet-conservation checks.
type NetworkStats struct {
	Injected  uint64
	Delivered uint64
	ConfigOps uint64
	Dropped   uint64
	Rescued   uint64 // recovery-path packets re-admitted by the handler
	// Byzantine misbehaviour tallies (zero on a healthy fabric): forwards
	// deliberately sent to a wrong neighbour, packets silently discarded,
	// and packets forwarded while a copy was retained for replay.
	ByzMisrouted  uint64
	ByzDropped    uint64
	ByzDuplicated uint64
}

// routerState is one router's per-tick hot state: everything the fused
// network kernel reads or writes while servicing the router, packed into a
// single ~200-byte record (just over three cache lines, naturally aligned in
// the state slice) so one router's tick stays within a handful of lines
// instead of chasing a *Router heap object. The records live in Network.state, a
// flat slice indexed by router NodeID — together with the shared ring-slot
// slice this is the data-oriented core of DESIGN.md §11.
type routerState struct {
	// quiet is a pure fast-forward: when the last scan found every occupied
	// port waiting on an in-transit head (wormhole tail flit not yet
	// arrived) and serviced nothing, it records the earliest head arrival;
	// scans before that tick would observably do nothing except advance the
	// round-robin pointer, so tickRouter does exactly that and returns. Any
	// push resets it — a new packet may be ready sooner.
	quiet sim.Tick
	// hop is this router's row of the active next-hop table (XY while the
	// fabric is healthy, fault-aware tables otherwise), narrowed to one
	// byte per destination so a 128-node row is two cache lines instead of
	// sixteen. The network rewrites it whenever the routing state changes,
	// so forwarding is one indexed load. -1 encodes PortInvalid.
	hop []int8
	// queued is the packet count across all input rings, maintained on
	// every push/pop so the idle check and the active-router set are O(1).
	queued int32
	// occ mirrors it per port (bit p set = port p non-empty) so the scan
	// services only occupied ports; rr is the round-robin start of the next
	// scan; disabled has bit p set when port p is administratively down.
	occ      uint8
	rr       uint8
	disabled uint8
	faulty   bool
	// nbr is the neighbouring router's ID out of each cardinal port
	// (-1 = no link; 32 bits so mega fabrics reach 2^20 nodes).
	nbr [NumPorts]int32
	// refused has bit p set when a push into ring p was refused for
	// capacity since its last pop — the precise condition under which the
	// upstream router may have parked on this ring and a pop must stir it.
	refused uint8
	// linkDown has bit p set while the fault engine holds the link out of
	// port p unhealthy: transfers out of p and admissions into p are refused
	// exactly as if the port were administratively disabled. The bit lives
	// in what was the record's padding byte, so fault-health tracking costs
	// the hot path no cache footprint.
	linkDown uint8
	// rings are the per-port input FIFOs over the network's shared slot
	// slice; linkBusy is the tick until which each output link is
	// serialising a transfer; blockedAt is when each port's head packet
	// first blocked (0 = not blocked).
	rings     [NumPorts]ring
	linkBusy  [NumPorts]sim.Tick
	blockedAt [NumPorts]sim.Tick
}

// Network is the fabric: topology, routers, links and routing state.
//
// Since the data-oriented core (DESIGN.md §11) the per-tick state of every
// router lives here — flat routerState records indexed by router ID plus
// one shared ring-slot slice — and Tick is a fused kernel sweeping the
// active set over those arrays. The *Router values remain as identity +
// cold state (stats, monitor taps, sinks, recovery settings); they carry no
// buffered traffic of their own.
type Network struct {
	Topo  Topology
	cfg   Params
	nodes int
	// routers maps every NodeID to the router serving it. On concentrated
	// topologies cluster members share one *Router, so the slice holds
	// duplicates; uniq lists each router exactly once (ascending IDs) for
	// whole-fabric iteration.
	routers []*Router
	uniq    []*Router

	// active tracks routers with queued packets. A router enrolls on any
	// ring push and retires once drained, so Tick sweeps only the part of
	// the fabric actually carrying traffic instead of every router.
	active *sim.ActiveSet

	// pool is the packet arena every handle in the rings resolves against.
	// The platform shares it (Env.NewPacket draws from it), so fabric and
	// processing elements recycle through one set of books.
	pool PacketPool

	// state holds the per-router hot records (indexed by router NodeID;
	// entries whose node is served by another router stay unused), and
	// slots is the shared ring backing: ring r*NumPorts+p owns slots
	// [(r*NumPorts+p)*spp, +spp).
	state    []routerState
	slots    []ringSlot
	spp      int
	sppMask  uint32
	capFlits uint32

	tables *routeTables
	// healthy caches the fault-free route tables so Reset can restore them
	// without recomputation (they are immutable once built).
	healthy *routeTables
	// xy[from][dst] is the topology's dimension-order next hop, precomputed
	// once so the healthy-fabric forwarding path is a single indexed load
	// instead of two coordinate decompositions per packet per tick.
	xy         [][]Port
	haveFaults bool
	faultyCnt  int

	// huge marks a fabric beyond hugeNodes: the O(nodes²) routing
	// structures (per-router hop rows, xy rows, BFS tables) are not built —
	// forwarding computes the dimension-order hop on the fly and routes
	// stay XY even under faults (blocked heads take the deadlock-recovery
	// path, like the FPGA's router). See liveHop.
	huge bool

	// width caches Topo.Width() for the row→tile map; tiles/tileRowIdx/
	// scratch/crew are the parallel tiled kernel (tile.go; nil tiles = the
	// legacy single-tile kernel). stagedOps/drainedOps count staged
	// boundary services and their merge drains for the property tests.
	width      int
	tiles      []netTile
	tileRowIdx []int32
	scratch    []tileScratch
	crew       *tickCrew
	stagedOps  uint64
	drainedOps uint64

	// DropHandler observes every dropped packet (may be nil). The handler is
	// the packet's last reader: the fabric recycles it into the pool right
	// after.
	DropHandler func(at NodeID, p *Packet, reason DropReason)
	// RecoveryHandler may rescue a packet ejected by deadlock recovery or
	// unreachable-destination handling, e.g. by retargeting and re-injecting
	// it. Return true when the packet was taken over. May be nil.
	RecoveryHandler func(at NodeID, p *Packet, now sim.Tick) bool

	// drainBuf is reusable scratch for draining a failed router's rings.
	drainBuf []*Packet

	// byz holds per-router byzantine arming (allocated on first use, so a
	// fabric that never sees a byzantine profile carries one nil slice);
	// byzAny gates the whole byzantine path with a single bool load so the
	// fault-free forward path is unchanged.
	byz    []byzState
	byzCnt int
	byzAny bool

	stats NetworkStats
}

// Byzantine behaviour bits for SetByzantine / fault schedules.
const (
	// ByzMisroute forwards the packet to a wrong (but locally valid)
	// neighbour instead of the routed next hop.
	ByzMisroute uint8 = 1 << iota
	// ByzDrop silently discards the packet.
	ByzDrop
	// ByzDup forwards the packet but retains a copy for replay.
	ByzDup
)

// byzState is one router's byzantine arming: a per-forward interference
// threshold out of 2^32, the armed behaviour bits, and a private seeded RNG
// so interference draws are deterministic and independent of every other
// random stream in the system.
type byzState struct {
	rate  uint32
	modes uint8
	rng   sim.RNG
}

// NewNetwork builds the fabric the topology describes with the given
// configuration.
func NewNetwork(topo Topology, cfg Params) *Network {
	if cfg.BufferFlits <= 0 {
		cfg.BufferFlits = DefaultConfig().BufferFlits
	}
	nodes := topo.Nodes()
	if nodes > 1<<20 {
		// Ring slots and neighbour links store node IDs in 32 bits; the cap
		// bounds the slot backing (~1.3 GiB at 2^20 nodes) rather than the
		// encoding. 1<<20 admits exactly the 1024×1024 mega fabric.
		panic("noc: topology exceeds the 1,048,576-node limit of the fabric layout")
	}
	n := &Network{Topo: topo, cfg: cfg, nodes: nodes, active: sim.NewActiveSet(nodes)}
	n.width = topo.Width()
	n.huge = nodes > hugeNodes
	n.routers = make([]*Router, nodes)
	for id := 0; id < nodes; id++ {
		rid := topo.RouterOf(NodeID(id))
		if n.routers[rid] == nil {
			r := newRouter(rid, n, cfg.DeadlockLimit, cfg.RequeueLimit)
			n.routers[rid] = r
			n.uniq = append(n.uniq, r)
		}
		n.routers[id] = n.routers[rid]
	}

	n.spp = slotsPerPort(cfg.BufferFlits)
	n.sppMask = uint32(n.spp - 1)
	n.capFlits = uint32(cfg.BufferFlits)
	n.state = make([]routerState, nodes)
	n.slots = make([]ringSlot, nodes*int(NumPorts)*n.spp)
	for id := range n.state {
		st := &n.state[id]
		for p := range st.nbr {
			st.nbr[p] = -1
		}
		for p := 0; p < int(NumPorts); p++ {
			st.rings[p].head = uint32((id*int(NumPorts) + p) * n.spp)
		}
	}
	// Wire the fabric links between routers; below the huge threshold, carve
	// each physical router's byte-narrow next-hop row out of one contiguous
	// backing (the rows are O(routers × nodes) — a mega fabric skips them
	// and computes hops on the fly, see liveHop).
	var hopBacking []int8
	if !n.huge {
		hopBacking = make([]int8, len(n.uniq)*nodes)
	}
	for i, r := range n.uniq {
		if !n.huge {
			n.state[r.ID].hop = hopBacking[i*nodes : (i+1)*nodes : (i+1)*nodes]
		}
		for p := North; p <= West; p++ {
			if nb, ok := topo.Neighbor(r.ID, p); ok {
				n.state[r.ID].nbr[p] = int32(topo.RouterOf(nb))
			}
		}
	}
	if !n.huge {
		// Like the route tables, xy rows depend only on the serving router,
		// so cluster members alias their hub's row.
		n.xy = make([][]Port, nodes)
		for from := range n.xy {
			if topo.RouterOf(NodeID(from)) != NodeID(from) {
				continue
			}
			row := make([]Port, nodes)
			for dst := range row {
				row[dst] = xyNextHop(topo, NodeID(from), NodeID(dst))
			}
			n.xy[from] = row
		}
		for from := range n.xy {
			if n.xy[from] == nil {
				n.xy[from] = n.xy[topo.RouterOf(NodeID(from))]
			}
		}
	}
	k := cfg.Tiles
	if k == 0 {
		k = autoTiles(topo.Width(), topo.Height())
	}
	if k > 1 {
		n.buildTiles(k)
	}
	if cfg.Mode == RouteTables && !n.huge {
		n.RecomputeRoutes()
	} else {
		n.applyRoutingRows()
	}
	return n
}

// hugeNodes is the node count beyond which the quadratic routing structures
// (hop rows, xy rows, BFS tables) are skipped: a 65536-node fabric's hop
// rows alone would be 4 GiB. 64×64 (4096 nodes) keeps the precomputed fast
// path and full fault-aware routing.
const hugeNodes = 8192

// liveHop is the mega-fabric forwarding path: the topology's dimension-order
// next hop computed on the fly (coordinates are memoized, so this is integer
// compares, not divisions). Faults do not reroute a huge fabric — heads
// steering into a dead router block and take deadlock recovery, mirroring
// the paper's FPGA router, which never had global route recomputation
// either.
func (n *Network) liveHop(from NodeID, dst int32) Port {
	if uint32(dst) >= uint32(n.nodes) {
		return PortInvalid
	}
	return xyNextHop(n.Topo, from, NodeID(dst))
}

// Pool returns the fabric's packet arena. Every packet that enters the
// fabric is (or becomes) registered here; platforms draw their packets from
// it so the whole system shares one recycler.
func (n *Network) Pool() *PacketPool { return &n.pool }

// applyRoutingRows rebinds every router's next-hop row to the table the
// current routing state selects (dimension-order on a healthy fabric,
// shortest-path tables otherwise). Called whenever mode-relevant state
// changes.
func (n *Network) applyRoutingRows() {
	if n.huge {
		// No precomputed rows to rebind; forwarding goes through liveHop.
		// Parked heads still re-evaluate (a fault changes what they observe).
		n.stirAll()
		return
	}
	useXY := n.cfg.Mode == RouteXY || (n.cfg.Mode == RouteAuto && !n.haveFaults)
	for _, r := range n.uniq {
		var row []Port
		if useXY {
			row = n.xy[r.ID]
		} else {
			row = n.tables.next[r.ID]
		}
		dst := n.state[r.ID].hop
		for i, p := range row {
			dst[i] = int8(p)
		}
	}
	// New rows can change any parked head's fate (fresh detour, newly
	// unreachable destination): wake everything holding traffic.
	n.stirAll()
}

// Router returns the router serving the given node (shared by the whole
// cluster on concentrated topologies).
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// Routers returns the router slice indexed by NodeID. On concentrated
// topologies cluster members alias one router. Callers must not mutate it.
func (n *Network) Routers() []*Router { return n.routers }

// UniqueRouters returns each physical router exactly once, in ascending ID
// order. Callers must not mutate the slice.
func (n *Network) UniqueRouters() []*Router { return n.uniq }

// Stats returns the fabric-wide counters.
func (n *Network) Stats() NetworkStats { return n.stats }

// Tick advances the fabric by one cycle. It is the fused network kernel:
// one pass over the active set, servicing each enrolled router's occupied
// ports directly against the flat state records, in ascending node-ID order
// — the same order as the dense full scan — so results are bit-identical to
// TickDense (a router with no queued packets is a no-op tick either way;
// its round-robin pointer only advances while traffic is buffered).
func (n *Network) Tick(now sim.Tick) {
	if n.tiles != nil {
		n.tickTiled(now, false)
		return
	}
	n.active.Sweep(func(id int) bool {
		st := &n.state[id]
		n.tickRouter(id, st, now)
		return st.queued > 0 && !st.faulty
	})
}

// TickDense advances every router by one cycle, active or not — the
// pre-active-set reference scan kept for the stepping-equivalence tests.
// On a tiled fabric the dense scan runs tile by tile with the same staged
// merge, so dense and active stepping stay bit-identical at every tile
// count.
func (n *Network) TickDense(now sim.Tick) {
	if n.tiles != nil {
		n.tickTiled(now, true)
		return
	}
	for _, r := range n.uniq {
		n.tickRouter(int(r.ID), &n.state[r.ID], now)
	}
}

// tickRouter advances one router by one cycle.
//
// Service discipline: each tick the router scans its input ports starting
// from a rotating offset (round-robin fairness) and tries to advance each
// head packet one hop. An output link stays busy for the packet's flit count
// once a transfer starts, which serialises long packets exactly like a
// wormhole channel. A head packet blocked for longer than the deadlock limit
// is ejected through the recovery path — the paper's "basic deadlock
// recovery mechanism".
func (n *Network) tickRouter(id int, st *routerState, now sim.Tick) {
	// Fast path: idle routers do nothing, which keeps 100-run sweeps cheap.
	// (The active-set sweep normally skips them before this check; direct
	// callers get the same answer from the O(1) counter.)
	if st.faulty || st.queued == 0 {
		return
	}

	start := int(st.rr)
	if start+1 >= int(NumPorts) {
		st.rr = 0
	} else {
		st.rr = uint8(start + 1)
	}
	// All heads in transit and nothing to service: the full scan would be a
	// no-op (the pointer advance above is all the dense scan would mutate).
	if now < st.quiet {
		return
	}
	// quiet collects the earliest tick any occupied port could observably
	// act — an in-transit head's arrival, a busy link freeing, a deadlock
	// recovery or deadline lapse falling due. It survives to st.quiet only
	// when no port was serviced (a serviced port's state may unblock a
	// neighbour this very tick, so any activity forces a rescan next tick).
	// Unblock causes that are not time-predictable (a neighbour ring or
	// local sink freeing space, a task switch changing absorption, routes
	// or ports reconfigured) wake the router through stirs instead — see
	// Stir and its call sites.
	quiet := tickNever
	allQuiet := true
	// Visit occupied ports in round-robin order by iterating set bits of the
	// occupancy mask rotated so bit order equals rotation order from start.
	// The mask is re-derived from the live occ after every service — a port
	// can become occupied mid-scan (a rescued packet re-injected locally),
	// and the cursor makes it serviced this tick exactly when its rotation
	// position is still ahead, just as testing each port in turn would.
	for cursor := 0; cursor < int(NumPorts); {
		rot := uint(occRot[start][st.occ])
		rot &= ^uint(0) << cursor
		if rot == 0 {
			break
		}
		b := bits.TrailingZeros(rot)
		cursor = b + 1
		port := Port(b + start)
		if port >= NumPorts {
			port -= NumPorts
		}
		if at, ok := n.servicePort(id, st, port, now); ok {
			if at < quiet {
				quiet = at
			}
		} else {
			allQuiet = false
		}
	}
	if allQuiet {
		st.quiet = quiet
	}
}

// tickNever parks a port (and its router) until a stir: no time-driven
// event will change what its scan observes.
const tickNever = sim.Tick(1) << 62

// occRot[start][occ] is the 5-bit occupancy mask occ rotated right by start,
// so bit order equals round-robin rotation order — a table lookup instead of
// a double shift per scan step.
var occRot = func() (t [NumPorts][1 << NumPorts]uint8) {
	for start := 0; start < int(NumPorts); start++ {
		for occ := 0; occ < 1<<NumPorts; occ++ {
			t[start][occ] = uint8((occ>>start | occ<<(int(NumPorts)-start)) & (1<<NumPorts - 1))
		}
	}
	return
}()

// headSlot returns the slot of the oldest entry of one port's ring.
func (n *Network) headSlot(st *routerState, port Port) *ringSlot {
	return &n.slots[st.rings[port].head]
}

// servicePort advances one input port. It reports (arrival, true) when the
// port provably cannot act before arrival — its head packet's tail flit is
// still in transit — and (0, false) whenever it did or might have done
// observable work this tick.
func (n *Network) servicePort(id int, st *routerState, port Port, now sim.Tick) (sim.Tick, bool) {
	rm := &st.rings[port]
	if rm.n == 0 {
		return 0, false
	}
	s := &n.slots[rm.head]
	if s.ready > now {
		return s.ready, true
	}
	r := n.routers[id]
	if s.kind == Data && s.deadline != 0 && s.flags&slotLapsed == 0 && now > s.deadline {
		// The lapse latch fires at most once per packet lifetime; write it
		// through to the packet so the mirror survives delivery and rescue.
		s.flags |= slotLapsed
		n.pool.Deref(s.id).lapsedSeen = true
		r.Stats.LapsesSeen++
		if r.Monitors.DeadlineLapse != nil {
			r.Monitors.DeadlineLapse(taskID(s.task), now)
		}
	}

	// The next-hop row decides the packet's fate: Local means "this router
	// serves the destination" — the destination node itself, or a cluster
	// member on concentrated topologies — and delivers through the sink.
	out := PortInvalid
	if hop := st.hop; uint(int(s.dst)) < uint(len(hop)) {
		out = Port(hop[s.dst])
	} else if st.hop == nil {
		out = n.liveHop(NodeID(id), s.dst)
	}
	if out == Local {
		return n.deliverLocal(id, st, port, s, now)
	}

	// Task-addressed absorption: an en-route owner of the packet's task may
	// sink it locally instead of forwarding. The absorber sees the handle
	// and task (enough to turn down a mismatched packet without touching
	// it); Absorb transfers ownership on true. The packet's exit state is
	// written back before the call — an absorber that derefs (or even
	// recycles) the packet synchronously must observe it current, exactly
	// like a sink in deliverLocal; a false return leaves the slot
	// authoritative as before.
	if s.kind == Data && r.Absorb != nil {
		task := taskID(s.task)
		n.pool.Deref(s.id).Hops = int(s.hops)
		if r.Absorb(s.id, task, now) {
			n.popIn(id, st, port)
			r.Stats.Delivered++
			if r.Monitors.InternalDelivery != nil {
				r.Monitors.InternalDelivery(task, now)
			}
			n.stats.Delivered++
			return 0, false
		}
	}

	if out == PortInvalid {
		// Unreachable destination (e.g. partitioned by faults): hand the
		// packet to the recovery path so the platform can retarget it.
		pkt := n.pool.Deref(s.id)
		pkt.Hops = int(s.hops)
		n.popIn(id, st, port)
		n.recoverAt(id, pkt, now)
		return 0, false
	}
	// Byzantine interference sits behind a single bool load so the healthy
	// forward path is untouched; armed routers may misroute, drop or
	// duplicate the head instead of forwarding it honestly.
	if n.byzAny && s.kind == Data {
		if n.byzMeddle(id, st, port, out, s, now) {
			return 0, false
		}
	}
	if n.tryForward(id, st, port, out, s, now) {
		return 0, false
	}
	// Head is blocked: track for deadlock recovery. BlockedTicks counts
	// blocked service visits; parked ticks are provably identical no-ops
	// and are not revisited, so the counter is a lower bound under the
	// activity-tracked core. (This bookkeeping stays inline — mirrored in
	// deliverLocal's sink-blocked tail — because the blocked path is hot
	// under congestion; only the wake computation is shared.)
	r.Stats.BlockedTicks++
	if st.blockedAt[port] == 0 {
		st.blockedAt[port] = now
	} else if r.deadlockLimit > 0 && now-st.blockedAt[port] >= r.deadlockLimit {
		n.recoverBlocked(id, st, port, s, now)
		return 0, false
	}
	return blockedWake(st.blockedAt[port], r.deadlockLimit, s, st.linkBusy[out], now), true
}

// blockedWake is the earliest tick a blocked head could act on its own: its
// output link freeing (linkBusy, 0 for sink-blocked heads), deadlock
// recovery falling due, or a pending deadline lapse — the park bound of the
// forward-blocked and sink-blocked paths. Everything else that could
// unblock the head (neighbour ring or sink space, absorption eligibility,
// routing or port reconfiguration) stirs the router explicitly.
func blockedWake(blockedAt, limit sim.Tick, s *ringSlot, linkBusy, now sim.Tick) sim.Tick {
	wake := tickNever
	if linkBusy > now {
		wake = linkBusy
	}
	if limit > 0 {
		if w := blockedAt + limit; w < wake {
			wake = w
		}
	}
	if s.kind == Data && s.deadline != 0 && s.flags&slotLapsed == 0 {
		if w := s.deadline + 1; w < wake {
			wake = w
		}
	}
	return wake
}

// pushPacket enqueues a packet whose authoritative state lives in the
// arena (injection and recovery-rotation entry points — tryForward is the
// other ring-push site, copying slot to slot in place), building its ring
// slot from the packet fields. Capacity is checked before anything else: a
// back-pressured injection (the common case for a stalled outbox retrying
// every tick) costs one compare, not a slot construction.
func (n *Network) pushPacket(id int, port Port, p *Packet, readyAt sim.Tick) bool {
	st := &n.state[id]
	rm := &st.rings[port]
	flits := p.Flits
	if flits > 1<<15-1 {
		flits = 1<<15 - 1
	}
	f := ringFlits(int16(flits))
	if rm.used+f > n.capFlits {
		st.refused |= 1 << port
		return false
	}
	if int(int16(p.Task)) != int(p.Task) {
		// Tasks narrow to 16 bits in the ring slot: fail loudly rather
		// than alias.
		panic("noc: task ID exceeds the 16-bit ring layout")
	}
	dst := p.Dst
	if int(int32(dst)) != int(dst) {
		// A destination outside the 32-bit range cannot be a real node;
		// map it to Invalid so it takes the unreachable/recovery path
		// instead of aliasing a valid node.
		dst = Invalid
	}
	var flags uint8
	if p.lapsedSeen {
		flags = slotLapsed
	}
	if p.requeues != 0 {
		flags |= slotRequeued
	}
	base := uint32((id*int(NumPorts) + int(port)) * n.spp)
	n.slots[base+((rm.head-base+rm.n)&n.sppMask)] = ringSlot{
		ready:    readyAt,
		deadline: p.Deadline,
		id:       n.pool.handleFor(p),
		dst:      int32(dst),
		task:     int16(p.Task),
		flits:    int16(flits),
		hops:     uint16(p.Hops),
		kind:     p.Kind,
		flags:    flags,
	}
	rm.n++
	rm.used += f
	st.queued++
	st.occ |= 1 << port
	st.quiet = 0
	n.actAdd(id)
	return true
}

// popIn dequeues the head of an input ring, maintaining the counters. All
// ring pops go through here. Removing a head always clears the port's
// blocked-since timestamp: whatever happens to the packet next (forward,
// deliver, recover, drop), the successor head starts a fresh deadlock
// countdown.
func (n *Network) popIn(id int, st *routerState, port Port) {
	rm := &st.rings[port]
	s := &n.slots[rm.head]
	rm.used -= ringFlits(s.flits)
	s.id = 0 // a stale read past this point must fail loudly
	base := uint32((id*int(NumPorts) + int(port)) * n.spp)
	rm.head = base + ((rm.head - base + 1) & n.sppMask)
	rm.n--
	st.queued--
	st.blockedAt[port] = 0
	if rm.n == 0 {
		st.occ &^= 1 << port
	}
	// The freed capacity may unblock the router feeding this ring — but
	// only if a push was actually refused since the last pop (links are
	// symmetric, so the upstream router is this port's neighbour); wake it
	// from a blocked park. Stirring mid-sweep follows the active set's
	// cursor rule, which reproduces the dense scan's same-tick ordering
	// exactly.
	if st.refused&(1<<port) != 0 {
		st.refused &^= 1 << port
		if up := st.nbr[port]; up >= 0 {
			n.stirRouter(int(up))
		}
	}
}

// stirRouter wakes a router whose parked state may have been invalidated by
// an event outside its own time-predictable horizon.
func (n *Network) stirRouter(id int) {
	st := &n.state[id]
	if st.queued > 0 && !st.faulty {
		st.quiet = 0
		n.actAdd(id)
	}
}

// stirAll wakes every router holding traffic. Called on events that can
// change what any parked scan would observe: route-table rebinds, port
// enable/disable, faults.
func (n *Network) stirAll() {
	for _, r := range n.uniq {
		n.stirRouter(int(r.ID))
	}
}

// Stir notifies the fabric that node-side state affecting packet admission
// at the given node changed — its sink gained queue space, or its task
// changed what it absorbs. The platform wires PE dequeues and task switches
// here so the serving router's parked ports re-evaluate on the same tick
// the dense scan would have reacted. Spurious stirs are harmless (an extra
// scan of a parked router is the no-op the dense scan executes every tick).
func (n *Network) Stir(id NodeID) {
	n.stirRouter(int(n.routers[id].ID))
}

// tryForward moves a head packet one hop out of port out. The ring slot is
// copied to the neighbour's ring — the packet itself is not touched (its
// hop counter travels in the slot; a pending requeue count is the rare
// exception) — the output link goes busy for the packet's flit count, and
// the transfer is reported to the routing monitor.
func (n *Network) tryForward(id int, st *routerState, inPort, out Port, s *ringSlot, now sim.Tick) bool {
	return n.forward(id, st, inPort, out, s, now, false)
}

// forward is tryForward's body. keep=true transfers a copy but retains the
// local head (the byzantine duplication path); the fault-free path always
// passes false.
func (n *Network) forward(id int, st *routerState, inPort, out Port, s *ringSlot, now sim.Tick, keep bool) bool {
	if (st.disabled|st.linkDown)&(1<<out) != 0 {
		return false
	}
	if st.linkBusy[out] > now {
		return false
	}
	next := st.nbr[out]
	if next < 0 {
		return false
	}
	nst := &n.state[next]
	if nst.faulty {
		return false
	}
	inSide := out.Opposite()
	if (nst.disabled|nst.linkDown)&(1<<inSide) != 0 {
		return false
	}
	dur := sim.Tick(s.flits)
	if dur < 1 {
		dur = 1
	}
	// Push into the neighbour's ring in place (one slot copy, not a
	// stack round trip through pushSlot), applying the transfer edits on
	// the destination slot.
	rm := &nst.rings[inSide]
	f := ringFlits(s.flits)
	if rm.used+f > n.capFlits {
		nst.refused |= 1 << inSide
		return false
	}
	base := uint32((int(next)*int(NumPorts) + int(inSide)) * n.spp)
	dst := &n.slots[base+((rm.head-base+rm.n)&n.sppMask)]
	*dst = *s
	dst.ready = now + dur
	dst.hops++
	requeued := dst.flags&slotRequeued != 0
	dst.flags &^= slotRequeued
	rm.n++
	rm.used += f
	nst.queued++
	nst.occ |= 1 << inSide
	nst.quiet = 0
	n.actAdd(int(next))

	if !keep {
		n.popIn(id, st, inPort)
	}
	st.linkBusy[out] = now + dur
	if requeued {
		// A successful forward ends the consecutive-requeue streak.
		n.pool.Deref(dst.id).requeues = 0
	}
	r := n.routers[id]
	r.Stats.Forwarded++
	if dst.kind == Data && r.Monitors.RoutedTask != nil {
		r.Monitors.RoutedTask(taskID(dst.task), now)
	}
	return true
}

// recoverBlocked applies the deadlock-recovery action to the blocked head of
// an input port. The first recoveries rotate the packet to the ring tail,
// releasing head-of-line blocking without losing traffic; after requeueLimit
// consecutive rotations without a successful forward, the packet is ejected
// through the recovery path (retarget or drop) — the "release deadlocked
// packets" behaviour of the paper's router, which is explicitly not
// guaranteed to resolve every deadlock.
func (n *Network) recoverBlocked(id int, st *routerState, port Port, s *ringSlot, now sim.Tick) {
	pkt := n.pool.Deref(s.id)
	pkt.Hops = int(s.hops)
	n.popIn(id, st, port)
	r := n.routers[id]
	r.Stats.Recovered++
	if r.Monitors.Recovery != nil {
		r.Monitors.Recovery(pkt, now)
	}
	pkt.requeues++
	if pkt.requeues <= r.requeueLimit {
		// Rotate to the tail: capacity freed by the pop guarantees the push.
		n.pushPacket(id, port, pkt, now)
		return
	}
	pkt.requeues = 0
	n.recoverAt(id, pkt, now)
}

// byzMeddle gives an armed byzantine router its chance to interfere with a
// data head about to be forwarded toward out. It reports true when the
// interference consumed the service (packet dropped, or forwarded by the
// byzantine action itself); false hands the head back to the honest path.
// Every draw comes from the router's private seeded RNG and happens only
// inside service visits, which are identical under dense and active
// stepping — so byzantine runs stay bit-reproducible.
func (n *Network) byzMeddle(id int, st *routerState, port, out Port, s *ringSlot, now sim.Tick) bool {
	bz := &n.byz[id]
	if bz.rate == 0 || uint32(bz.rng.Uint64()>>32) >= bz.rate {
		return false
	}
	mode := bz.modes
	if mode&(mode-1) != 0 {
		// Several behaviours armed: a second draw picks one.
		var set [3]uint8
		k := 0
		for b := uint8(1); b <= ByzDup; b <<= 1 {
			if mode&b != 0 {
				set[k] = b
				k++
			}
		}
		mode = set[bz.rng.Intn(k)]
	}
	switch mode {
	case ByzDrop:
		pkt := n.pool.Deref(s.id)
		pkt.Hops = int(s.hops)
		n.popIn(id, st, port)
		n.routers[id].Stats.Dropped++
		n.stats.ByzDropped++
		n.handleDrop(NodeID(id), pkt, DropByzantine)
		return true
	case ByzMisroute:
		if alt, ok := n.byzAltPort(st, out, bz); ok && n.forward(id, st, port, alt, s, now, false) {
			n.stats.ByzMisrouted++
			return true
		}
	case ByzDup:
		// The forwarded copy must own its own packet: ownership is linear
		// (one handle, one owner), so the duplicate is a real arena clone and
		// the local head keeps the original. Swap the clone's handle into the
		// slot for the copy-out, then restore it.
		orig := s.id
		src := n.pool.Deref(orig)
		dup := n.pool.Get()
		h := dup.h
		*dup = *src
		dup.h = h
		s.id = h
		ok := n.forward(id, st, port, out, s, now, true)
		s.id = orig
		if ok {
			n.stats.ByzDuplicated++
			return true
		}
		n.pool.Put(dup)
	}
	return false
}

// byzAltPort picks a wrong-but-locally-plausible output: a cardinal port
// other than the routed one with a wired, non-disabled, link-healthy exit.
// One RNG draw selects among the candidates; ok=false when the router has no
// alternative exit at all.
func (n *Network) byzAltPort(st *routerState, out Port, bz *byzState) (Port, bool) {
	var cand [NumPorts]Port
	k := 0
	for p := North; p <= West; p++ {
		if p == out || st.nbr[p] < 0 || (st.disabled|st.linkDown)&(1<<p) != 0 {
			continue
		}
		cand[k] = p
		k++
	}
	if k == 0 {
		return PortInvalid, false
	}
	return cand[bz.rng.Intn(k)], true
}

// SetByzantine arms (rate > 0) or disarms (rate == 0) byzantine behaviour on
// the router serving id. rate is the per-forward interference probability as
// a threshold out of 2^32; modes is a ByzMisroute|ByzDrop|ByzDup bitmask;
// seed initialises the router's private interference RNG so runs replay
// exactly. Arming with no modes is a disarm.
func (n *Network) SetByzantine(id NodeID, rate uint32, modes uint8, seed uint64) {
	rid := int(n.routers[id].ID)
	if modes == 0 {
		rate = 0
	}
	if n.byz == nil {
		if rate == 0 {
			return
		}
		n.byz = make([]byzState, n.nodes)
	}
	bz := &n.byz[rid]
	wasArmed := bz.rate != 0
	bz.rate = rate
	bz.modes = modes
	bz.rng.Reseed(seed)
	if armed := rate != 0; armed != wasArmed {
		if armed {
			n.byzCnt++
		} else {
			n.byzCnt--
		}
		n.byzAny = n.byzCnt > 0
	}
	n.stirRouter(rid)
}

// SetLinkHealth marks the link out of port p at the router serving id as
// down (healthy=false) or up. While down the endpoint refuses transfers out
// of p and admissions into p, exactly like an administratively disabled
// port; routes are NOT recomputed — a flaky link blocks traffic, it does not
// announce itself — so heads steering into it wait (and eventually take the
// deadlock-recovery path). Fault schedules emit both endpoints of a
// physical link together so the cut is symmetric.
func (n *Network) SetLinkHealth(id NodeID, p Port, healthy bool, now sim.Tick) {
	rid := int(n.routers[id].ID)
	st := &n.state[rid]
	if p < North || p > West {
		return
	}
	bit := uint8(1) << uint(p)
	if healthy {
		st.linkDown &^= bit
	} else {
		st.linkDown |= bit
	}
	// Either edge changes what a parked scan would observe — at this router
	// (a blocked head may now pass, or must stop) and at the neighbour
	// steering into this endpoint.
	n.stirRouter(rid)
	if nb := st.nbr[p]; nb >= 0 {
		n.stirRouter(int(nb))
	}
	_ = now
}

// Revive returns a failed router to service: rings were already drained at
// Fail time, so the router restarts empty, routes recompute around the
// restored fabric (or collapse back to the cached healthy tables when the
// last fault heals), and parked neighbours re-evaluate. On concentrated
// topologies this re-attaches the node's whole cluster. Reviving a healthy
// router is a no-op.
func (n *Network) Revive(id NodeID, now sim.Tick) {
	r := n.routers[id]
	rid := int(r.ID)
	st := &n.state[rid]
	if !st.faulty {
		return
	}
	st.faulty = false
	st.quiet = 0
	n.faultyCnt--
	n.haveFaults = n.faultyCnt > 0
	if n.faultyCnt == 0 {
		// All healed: restore the cached fault-free tables (nil under modes
		// that never computed them — the XY rows take over either way).
		n.tables = n.healthy
		n.applyRoutingRows()
	} else if n.cfg.Mode != RouteXY {
		n.RecomputeRoutes() // stirs every parked router via applyRoutingRows
	} else {
		n.stirAll()
	}
	_ = now
}

// deliverLocal hands a head packet whose next hop is Local to its consumer:
// the RCAP machinery for config packets, the local sink for data and debug.
// Like servicePort, it reports (wake, true) when the port provably cannot
// act before wake (the sink is full and only a stir or a due recovery/lapse
// can change that) and (0, false) on any activity.
func (n *Network) deliverLocal(id int, st *routerState, port Port, s *ringSlot, now sim.Tick) (sim.Tick, bool) {
	r := n.routers[id]
	switch s.kind {
	case Config:
		pkt := n.pool.Deref(s.id)
		n.popIn(id, st, port)
		r.applyConfig(pkt, now)
		n.stats.ConfigOps++
		// The payload has been applied; the packet's lifecycle ends here.
		n.pool.Put(pkt)
	case Debug, Data:
		pkt := n.pool.Deref(s.id)
		pkt.Hops = int(s.hops)
		if r.sink == nil {
			n.popIn(id, st, port)
			r.Stats.Dropped++
			n.handleDrop(NodeID(id), pkt, DropNoSink)
			return 0, false
		}
		// A successful Accept transfers ownership to the sink (which may
		// consume and recycle the packet immediately): read what the monitor
		// needs before handing it over.
		isData, task := s.kind == Data, taskID(s.task)
		if r.sink.Accept(pkt, now) {
			n.popIn(id, st, port)
			r.Stats.Delivered++
			if isData && r.Monitors.InternalDelivery != nil {
				r.Monitors.InternalDelivery(task, now)
			}
			n.stats.Delivered++
			return 0, false
		}
		// Local sink full: same blocking rules as a busy link (the blocked
		// bookkeeping mirrors servicePort's forward-blocked tail). The sink
		// freeing space stirs the router (the platform wires PE dequeues to
		// Stir), so between now and the wake every scan of this port is a
		// provable no-op.
		r.Stats.BlockedTicks++
		if st.blockedAt[port] == 0 {
			st.blockedAt[port] = now
		} else if r.deadlockLimit > 0 && now-st.blockedAt[port] >= r.deadlockLimit {
			n.recoverBlocked(id, st, port, s, now)
			return 0, false
		}
		return blockedWake(st.blockedAt[port], r.deadlockLimit, s, 0, now), true
	}
	return 0, false
}

// recoverAt hands a packet that cannot make progress to the network's
// recovery handler; unrescued packets are dropped.
func (n *Network) recoverAt(id int, pkt *Packet, now sim.Tick) {
	if n.RecoveryHandler != nil && n.RecoveryHandler(NodeID(id), pkt, now) {
		n.stats.Rescued++
		return
	}
	n.routers[id].Stats.Dropped++
	n.handleDrop(NodeID(id), pkt, DropRecoveryFailed)
}

// ActiveRouters returns the number of routers currently holding traffic
// (summed over the per-tile sets on a tiled fabric).
func (n *Network) ActiveRouters() int { return n.actLen() }

// Inject enqueues a packet at the source node's Local input channel.
// It returns false (without consuming the packet) under back-pressure.
func (n *Network) Inject(at NodeID, p *Packet, now sim.Tick) bool {
	if n.routers[at].Inject(p, now) {
		n.stats.Injected++
		return true
	}
	return false
}

// NextHop returns the output port at from toward dst under the current
// routing mode.
func (n *Network) NextHop(from, dst NodeID) Port {
	if dst < 0 || int(dst) >= n.nodes {
		return PortInvalid
	}
	if n.huge {
		return n.liveHop(n.routers[from].ID, int32(dst))
	}
	switch n.cfg.Mode {
	case RouteXY:
		return n.xy[from][dst]
	case RouteTables:
		return n.tables.NextHop(from, dst)
	default: // RouteAuto
		if !n.haveFaults {
			return n.xy[from][dst]
		}
		return n.tables.NextHop(from, dst)
	}
}

// Alive reports whether the node's router is functioning.
func (n *Network) Alive(id NodeID) bool { return !n.state[n.routers[id].ID].faulty }

// FaultyCount returns the number of failed routers.
func (n *Network) FaultyCount() int { return n.faultyCnt }

// Fail marks the router serving a node as failed, drains and accounts its
// buffered packets, and recomputes fault-aware routes. On concentrated
// topologies this takes the node's whole cluster off the fabric (the shared
// router is the cluster's only attachment point). Failing an already-failed
// router is a no-op.
func (n *Network) Fail(id NodeID, now sim.Tick) {
	r := n.routers[id]
	rid := int(r.ID)
	st := &n.state[rid]
	if st.faulty {
		return
	}
	// Drain the rings first (collecting the lost packets in FIFO port
	// order), then account the drops, exactly like the pre-SoA router did.
	// The scratch buffer is detached while the user-visible DropHandler
	// runs: a handler that re-enters Fail gets a fresh buffer instead of
	// aliasing this loop's backing array.
	st.faulty = true
	lost := n.drainBuf[:0]
	n.drainBuf = nil
	for p := Port(0); p < NumPorts; p++ {
		for st.rings[p].n > 0 {
			s := n.headSlot(st, p)
			pkt := n.pool.Deref(s.id)
			pkt.Hops = int(s.hops)
			lost = append(lost, pkt)
			n.popIn(rid, st, p)
		}
		st.blockedAt[p] = 0
	}
	st.refused = 0
	r.Stats.Dropped += uint64(len(lost))
	n.actRemove(rid)
	n.faultyCnt++
	for i, p := range lost {
		n.handleDrop(r.ID, p, DropRouterFailed)
		lost[i] = nil
	}
	n.drainBuf = lost[:0]
	n.haveFaults = true
	if n.cfg.Mode != RouteXY {
		n.RecomputeRoutes() // stirs every parked router via applyRoutingRows
	} else {
		// No route recomputation under pure XY, but parked neighbours must
		// still re-evaluate heads steering into the dead router.
		n.stirAll()
	}
	_ = now
}

// RecomputeRoutes rebuilds the fault-aware shortest-path tables. A huge
// fabric never builds tables (they are O(nodes²)); it stays on live XY and
// only re-evaluates parked heads.
func (n *Network) RecomputeRoutes() {
	if n.huge {
		n.stirAll()
		return
	}
	n.tables = computeTables(n.Topo, func(id NodeID) bool { return !n.state[n.routers[id].ID].faulty })
	if !n.haveFaults && n.healthy == nil {
		n.healthy = n.tables
	}
	n.applyRoutingRows()
}

// Reset restores the fabric to its as-constructed state in place: routers
// revive with empty rings and default settings, counters clear, and the
// fault-free route tables are restored. Buffered packets are recycled into
// the pool without drop accounting — a reset ends the run they belonged to.
func (n *Network) Reset() {
	for _, r := range n.uniq {
		rid := int(r.ID)
		st := &n.state[rid]
		for p := Port(0); p < NumPorts; p++ {
			for st.rings[p].n > 0 {
				pkt := n.pool.Deref(n.headSlot(st, p).id)
				n.popIn(rid, st, p)
				n.pool.Put(pkt)
			}
			st.linkBusy[p] = 0
			st.blockedAt[p] = 0
		}
		st.occ = 0
		st.rr = 0
		st.disabled = 0
		st.refused = 0
		st.linkDown = 0
		st.faulty = false
		st.queued = 0
		st.quiet = 0
		r.reset(n.cfg)
	}
	n.actClear()
	n.stagedOps = 0
	n.drainedOps = 0
	n.haveFaults = false
	n.faultyCnt = 0
	for i := range n.byz {
		n.byz[i] = byzState{}
	}
	n.byzCnt = 0
	n.byzAny = false
	n.stats = NetworkStats{}
	n.tables = n.healthy
	n.applyRoutingRows()
}

// Reachable reports whether dst can be reached from src under the current
// routing state.
func (n *Network) Reachable(src, dst NodeID) bool {
	if !n.Alive(src) || !n.Alive(dst) {
		return false
	}
	if src == dst {
		return true
	}
	if !n.haveFaults || n.cfg.Mode == RouteXY {
		return true // healthy mesh is fully connected
	}
	if n.huge {
		// No tables to consult: optimistic under faults. A wrong answer
		// costs a rescue retry through deadlock recovery, not correctness.
		return true
	}
	return n.tables.NextHop(src, dst) != PortInvalid
}

// InFlight counts packets currently buffered anywhere in the fabric.
func (n *Network) InFlight() int {
	total := 0
	for _, r := range n.uniq {
		total += int(n.state[r.ID].queued)
	}
	return total
}

func (n *Network) handleDrop(at NodeID, p *Packet, reason DropReason) {
	n.stats.Dropped++
	if n.DropHandler != nil {
		n.DropHandler(at, p, reason)
	}
	// The handler was the last reader: the packet's lifecycle ends here.
	n.pool.Put(p)
}

// String summarises the fabric state.
func (n *Network) String() string {
	return fmt.Sprintf("noc %s, %d faulty, %d in flight", n.Topo, n.faultyCnt, n.InFlight())
}
