package noc

import "fmt"

// CMeshConcentration is the cluster size of the concentrated mesh: a 2×2
// block of processing elements shares one router.
const CMeshConcentration = 4

// CMesh is a concentrated mesh: processing elements stay on the full W×H
// die grid, but each 2×2 cluster shares the router of its top-left member
// (the hub). Hubs form a (W/2)×(H/2) express mesh, so the fabric has a
// quarter of the routers and every cluster funnels its injections and
// deliveries through one Local port — the concentration contention the
// topology exists to exercise.
//
// Only hub nodes appear in the link graph (Neighbor); cluster members reach
// the fabric through RouterOf. Physical adjacency (Lateral — thermal
// conduction, neighbour signals) remains plain grid adjacency: cluster
// members sit next to each other on the die even though they share a router.
type CMesh struct{ grid }

// NewCMesh returns a concentrated mesh over a w×h node grid. It panics
// unless both dimensions are even and at least 2 (clusters are 2×2).
func NewCMesh(w, h int) CMesh {
	if w < 2 || h < 2 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("noc: cmesh needs even dimensions >= 2, got %dx%d", w, h))
	}
	return CMesh{newGrid(w, h)}
}

// Kind implements Topology.
func (CMesh) Kind() string { return KindCMesh }

// RouterOf implements Topology: the cluster hub at (x&^1, y&^1).
func (c CMesh) RouterOf(id NodeID) NodeID {
	co := c.Coord(id)
	return NodeID((co.Y&^1)*c.w + (co.X &^ 1))
}

// Neighbor implements Topology: express links between adjacent hubs. Nodes
// that are not hubs own no router and therefore have no fabric links.
func (c CMesh) Neighbor(id NodeID, p Port) (NodeID, bool) {
	co := c.Coord(id)
	if co.X%2 != 0 || co.Y%2 != 0 {
		return Invalid, false
	}
	switch p {
	case North:
		co.Y -= 2
	case South:
		co.Y += 2
	case East:
		co.X += 2
	case West:
		co.X -= 2
	default:
		return Invalid, false
	}
	if !c.InBounds(co) {
		return Invalid, false
	}
	return c.ID(co), true
}

// Lateral implements Topology: plain die-grid adjacency.
func (c CMesh) Lateral(id NodeID, p Port) (NodeID, bool) { return c.gridNeighbor(id, p) }

// Distance implements Topology: Manhattan distance between the two nodes'
// hubs on the express grid (0 within a cluster).
func (c CMesh) Distance(a, b NodeID) int {
	ac, bc := c.Coord(a), c.Coord(b)
	dx := ac.X/2 - bc.X/2
	dy := ac.Y/2 - bc.Y/2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// BaseNextHop implements Topology: XY dimension-order routing over the hub
// express grid; Local when both nodes share a router.
func (c CMesh) BaseNextHop(from, dst NodeID) Port {
	fc, dc := c.Coord(from), c.Coord(dst)
	fx, fy := fc.X/2, fc.Y/2
	dx, dy := dc.X/2, dc.Y/2
	switch {
	case dx > fx:
		return East
	case dx < fx:
		return West
	case dy > fy:
		return South
	case dy < fy:
		return North
	default:
		return Local
	}
}

// String renders the topology dimensions and concentration.
func (c CMesh) String() string { return fmt.Sprintf("%dx%d cmesh%d", c.w, c.h, CMeshConcentration) }
