package noc

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"centurion/internal/sim"
)

// The parallel tiled tick kernel (DESIGN.md §14).
//
// The router ID space is partitioned into row bands ("tiles"), each with its
// own active set, and Network.Tick sweeps the tiles on a pool of worker
// goroutines. Within a tile the fused kernel runs unchanged: intra-tile
// forwards copy slots straight into the destination ring exactly like the
// serial kernel. A service whose effect would escape the tile — a forward to
// a neighbour in another tile, a Config/Debug delivery with fabric-global
// side effects — is *staged*: the port is recorded untouched in the tile's
// scratch, and after the worker barrier a single-threaded merge phase
// re-runs the staged services with the plain serial kernel, tile by tile in
// FIFO order. The staged head is provably unchanged between the sweep and
// the merge (each port is serviced at most once per tick and only its owner
// tile touches its rings), so the merge phase services it exactly as the
// serial sweep would have — which makes the parallel kernel bit-identical to
// the one-worker serial-tiled reference by construction, independent of the
// worker count and of goroutine scheduling.
//
// Tiling is a *semantic* parameter (it fixes the service order across tile
// boundaries) derived deterministically from the grid, never from the host:
// Params.Tiles=0 auto-sizes from the node count. The worker count is purely
// a runtime throttle (Params.Workers=0 uses GOMAXPROCS) and can never affect
// results. A single-tile fabric (every grid below 2048 nodes, including the
// paper's 16×8) takes the exact legacy kernel path: no staging code runs.
//
// Byzantine arming forces the worker count to 1 for the armed interval: the
// duplication path acquires packets from the shared arena mid-sweep and the
// misroute path pushes out of arbitrary ports, neither of which is tile-safe.
// Byzantine runs therefore execute serial-tiled — still deterministic, just
// not parallel.

// netTile is one row band of the fabric: routers with IDs in [lo, hi).
// Boundaries fall on even rows so cmesh 2×2 clusters are never split across
// tiles (a hub router and all its members share a tile).
type netTile struct {
	lo, hi int // router/node ID range [lo, hi)
	// uniqLo/uniqHi is the tile's slice of Network.uniq (for dense sweeps).
	uniqLo, uniqHi int
	// set is the tile's active-router set with *offset-local* indices (bit i
	// = router lo+i). Tiles own disjoint sets so workers never share a mask
	// word, which a global set could not guarantee (tile boundaries are not
	// 64-aligned).
	set *sim.ActiveSet
}

// svcRec is one staged port service: the head of ring (id, port) was left
// untouched by the tile sweep for the merge phase to service serially.
type svcRec struct {
	id   int32
	port Port
}

// recRec is a packet popped by a tile sweep that needs the recovery path
// (unreachable destination, requeue budget exhausted): the handler may
// re-inject anywhere in the fabric, so it runs at merge time.
type recRec struct {
	at  int32
	pkt *Packet
}

// dropRec is a packet popped by a tile sweep whose drop accounting
// (DropHandler + arena recycle) must run at merge time.
type dropRec struct {
	at     int32
	pkt    *Packet
	reason DropReason
}

// tileScratch is one tile's staging state, reset every tick by the merge.
// All preallocated and reused: the steady-state tick path stays 0 allocs/op
// once the slices have grown to the tile's working set.
type tileScratch struct {
	tile  int32 // own tile index, threaded through the T-kernel
	svc   []svcRec
	stirs []int32 // cross-tile refused-bit stirs (upstream router IDs)
	recs  []recRec
	drops []dropRec
	// stats is the tile's delta of the fabric-wide counters, added to
	// Network.stats by the merge.
	stats NetworkStats
	// staged counts staged services for the drains-exactly-once property
	// test; drained is accounted on the Network at merge.
	staged uint64
	// padding to a multiple of 64 bytes so adjacent tiles' scratch headers
	// do not false-share a cache line while workers append.
	_ [40]byte
}

func (sc *tileScratch) stageSvc(id int, port Port) {
	sc.svc = append(sc.svc, svcRec{id: int32(id), port: port})
	sc.staged++
}

// autoTiles picks the tile count for a grid: one tile below 2048 nodes (the
// tiled kernel only pays off when a tile spans several cache-resident row
// bands), then roughly one tile per 1024 nodes, capped at 64 tiles and at
// one tile per two rows. Deterministic in the grid alone.
func autoTiles(w, h int) int {
	nodes := w * h
	if nodes < 2048 || h < 4 {
		return 1
	}
	k := nodes / 1024
	if k > 64 {
		k = 64
	}
	if k > h/2 {
		k = h / 2
	}
	if k < 1 {
		k = 1
	}
	return k
}

// buildTiles partitions the fabric into k row bands (clamped to the number
// of row pairs) and allocates the per-tile active sets and scratch. k <= 1
// leaves the network on the legacy single-tile kernel.
func (n *Network) buildTiles(k int) {
	w, h := n.Topo.Width(), n.Topo.Height()
	units := (h + 1) / 2 // row pairs; cmesh clusters span two rows
	if k > units {
		k = units
	}
	if k <= 1 {
		return
	}
	n.tiles = make([]netTile, k)
	n.tileRowIdx = make([]int32, h)
	n.scratch = make([]tileScratch, k)
	per, extra := units/k, units%k
	startPair := 0
	for i := 0; i < k; i++ {
		pairs := per
		if i < extra {
			pairs++
		}
		loRow := startPair * 2
		startPair += pairs
		hiRow := startPair * 2
		if hiRow > h || i == k-1 {
			hiRow = h
		}
		t := &n.tiles[i]
		t.lo = loRow * w
		t.hi = hiRow * w
		t.set = sim.NewActiveSet(t.hi - t.lo)
		for row := loRow; row < hiRow; row++ {
			n.tileRowIdx[row] = int32(i)
		}
		n.scratch[i].tile = int32(i)
	}
	// Carve uniq (ascending router IDs) into per-tile ranges.
	ui := 0
	for i := range n.tiles {
		t := &n.tiles[i]
		t.uniqLo = ui
		for ui < len(n.uniq) && int(n.uniq[ui].ID) < t.hi {
			ui++
		}
		t.uniqHi = ui
	}
	n.crew = &tickCrew{stop: make(chan struct{}), kick: make(chan struct{})}
	// The crew's workers are lazily started and park on the kick channel
	// between ticks; if the network is dropped (pooled platforms are
	// GC-collected, not closed), the cleanup releases them.
	runtime.AddCleanup(n, func(stop chan struct{}) { close(stop) }, n.crew.stop)
}

// tileOf returns the tile index owning a router ID.
func (n *Network) tileOf(id int) int32 { return n.tileRowIdx[id/n.width] }

// TileCount reports how many tiles the tick kernel sweeps (1 = the legacy
// serial kernel).
func (n *Network) TileCount() int {
	if n.tiles == nil {
		return 1
	}
	return len(n.tiles)
}

// TileStaging returns the lifetime counts of staged and drained boundary
// services — equal after every Tick (each staged record drains exactly once
// in the merge phase). Exposed for the tile-boundary property tests.
func (n *Network) TileStaging() (staged, drained uint64) {
	return n.stagedOps, n.drainedOps
}

// effWorkers resolves the worker count for this tick: the configured count
// (GOMAXPROCS when 0), clamped to the tile count, and forced to 1 while any
// router is byzantine-armed (see the package comment above).
func (n *Network) effWorkers() int {
	if n.tiles == nil {
		return 1
	}
	if n.byzAny {
		return 1
	}
	w := n.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(n.tiles) {
		w = len(n.tiles)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelTick reports whether the next Tick will sweep tiles on more than
// one goroutine. The platform checks it to route component stirs through
// the atomic active-set path for the duration of the tick.
func (n *Network) ParallelTick() bool { return n.tiles != nil && n.effWorkers() > 1 }

// tickTiled is the tiled Tick body: sweep every tile (in parallel when the
// crew has more than one worker), then merge the staged boundary work
// single-threaded in tile order.
func (n *Network) tickTiled(now sim.Tick, dense bool) {
	if w := n.effWorkers(); w <= 1 {
		for t := range n.tiles {
			n.sweepTile(t, now, dense)
		}
	} else {
		n.crew.run(n, now, dense, w)
	}
	n.mergeTiles(now)
}

// sweepTile runs the fused kernel over one tile. Workers claim tiles
// dynamically, so an empty tile (an idle region of a mega-fabric) costs one
// set-length check and nothing else.
func (n *Network) sweepTile(t int, now sim.Tick, dense bool) {
	tl := &n.tiles[t]
	ctx := &n.scratch[t]
	if dense {
		for ui := tl.uniqLo; ui < tl.uniqHi; ui++ {
			r := n.uniq[ui]
			n.tickRouterT(ctx, int(r.ID), &n.state[r.ID], now)
		}
		return
	}
	if tl.set.Empty() {
		return
	}
	tl.set.Sweep(func(local int) bool {
		id := tl.lo + local
		st := &n.state[id]
		n.tickRouterT(ctx, id, st, now)
		return st.queued > 0 && !st.faulty
	})
}

// mergeTiles drains every tile's staged work with the serial kernel, in
// ascending tile order, each list in FIFO order — the deterministic merge
// phase. Staged heads are still at their ring heads (only the owner tile
// touches a ring during the sweep, and a port is serviced at most once per
// tick), so the legacy servicePort sees exactly the state the serial-tiled
// reference would.
func (n *Network) mergeTiles(now sim.Tick) {
	for t := range n.scratch {
		sc := &n.scratch[t]
		for _, rec := range sc.svc {
			n.servicePort(int(rec.id), &n.state[rec.id], rec.port, now)
			n.drainedOps++
		}
		for _, id := range sc.stirs {
			n.stirRouter(int(id))
		}
		for i := range sc.recs {
			n.recoverAt(int(sc.recs[i].at), sc.recs[i].pkt, now)
			sc.recs[i].pkt = nil
		}
		for i := range sc.drops {
			n.handleDrop(NodeID(sc.drops[i].at), sc.drops[i].pkt, sc.drops[i].reason)
			sc.drops[i].pkt = nil
		}
		n.stats.add(&sc.stats)
		n.stagedOps += sc.staged
		sc.staged = 0
		sc.svc = sc.svc[:0]
		sc.stirs = sc.stirs[:0]
		sc.recs = sc.recs[:0]
		sc.drops = sc.drops[:0]
		sc.stats = NetworkStats{}
	}
}

// add accumulates a tile's stats delta into the fabric-wide counters.
func (a *NetworkStats) add(b *NetworkStats) {
	a.Injected += b.Injected
	a.Delivered += b.Delivered
	a.ConfigOps += b.ConfigOps
	a.Dropped += b.Dropped
	a.Rescued += b.Rescued
	a.ByzMisrouted += b.ByzMisrouted
	a.ByzDropped += b.ByzDropped
	a.ByzDuplicated += b.ByzDuplicated
}

// tickCrew is the persistent worker pool behind the parallel sweep. Workers
// are started lazily on the first multi-worker tick and park on the kick
// channel between ticks; the calling goroutine participates as a worker, so
// w workers means w-1 goroutines. Tiles are claimed dynamically through an
// atomic cursor — safe because the sweep result is scheduling-independent
// (tiles are self-contained until the merge).
type tickCrew struct {
	stop    chan struct{}
	kick    chan struct{}
	wg      sync.WaitGroup
	started int
	cursor  atomic.Int32
	// per-tick job state, published to workers by the kick send
	// (happens-before) and cleared after the barrier so parked workers
	// never pin the network.
	net   *Network
	now   sim.Tick
	dense bool
}

// run executes one parallel sweep: publish the job, kick w-1 workers, work
// the cursor alongside them, and wait for the barrier.
func (c *tickCrew) run(n *Network, now sim.Tick, dense bool, w int) {
	c.net, c.now, c.dense = n, now, dense
	c.cursor.Store(0)
	need := w - 1
	for c.started < need {
		c.started++
		go c.worker()
	}
	c.wg.Add(need)
	for i := 0; i < need; i++ {
		c.kick <- struct{}{}
	}
	c.work(n, now, dense)
	c.wg.Wait()
	c.net = nil
}

func (c *tickCrew) worker() {
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
			c.work(c.net, c.now, c.dense)
			c.wg.Done()
		}
	}
}

func (c *tickCrew) work(n *Network, now sim.Tick, dense bool) {
	for {
		t := int(c.cursor.Add(1)) - 1
		if t >= len(n.tiles) {
			return
		}
		n.sweepTile(t, now, dense)
	}
}

// ---- active-set indirection -------------------------------------------
//
// With tiles, router activity lives in per-tile offset-local sets; without,
// in the legacy global set. Every enrolment site in the serial kernel goes
// through these helpers, so the merge phase (which runs the serial kernel)
// maintains the per-tile sets transparently.

func (n *Network) actAdd(id int) {
	if n.tiles == nil {
		n.active.Add(id)
		return
	}
	t := &n.tiles[n.tileOf(id)]
	t.set.Add(id - t.lo)
}

func (n *Network) actRemove(id int) {
	if n.tiles == nil {
		n.active.Remove(id)
		return
	}
	t := &n.tiles[n.tileOf(id)]
	t.set.Remove(id - t.lo)
}

func (n *Network) actClear() {
	if n.tiles == nil {
		n.active.Clear()
		return
	}
	for i := range n.tiles {
		n.tiles[i].set.Clear()
	}
}

func (n *Network) actLen() int {
	if n.tiles == nil {
		return n.active.Len()
	}
	total := 0
	for i := range n.tiles {
		total += n.tiles[i].set.Len()
	}
	return total
}

// ---- the T-kernel ------------------------------------------------------
//
// Duplicates of the fused kernel's hot functions threading a tileScratch:
// identical to the serial kernel except that boundary-crossing effects are
// staged instead of applied. Keep the bodies in lockstep with their serial
// twins in network.go — the bit-identity suites will catch a drift, but read
// both when changing either.

// tickRouterT is tickRouter for a tile sweep.
func (n *Network) tickRouterT(ctx *tileScratch, id int, st *routerState, now sim.Tick) {
	if st.faulty || st.queued == 0 {
		return
	}
	start := int(st.rr)
	if start+1 >= int(NumPorts) {
		st.rr = 0
	} else {
		st.rr = uint8(start + 1)
	}
	if now < st.quiet {
		return
	}
	quiet := tickNever
	allQuiet := true
	for cursor := 0; cursor < int(NumPorts); {
		rot := uint(occRot[start][st.occ])
		rot &= ^uint(0) << cursor
		if rot == 0 {
			break
		}
		b := bits.TrailingZeros(rot)
		cursor = b + 1
		port := Port(b + start)
		if port >= NumPorts {
			port -= NumPorts
		}
		if at, ok := n.servicePortT(ctx, id, st, port, now); ok {
			if at < quiet {
				quiet = at
			}
		} else {
			allQuiet = false
		}
	}
	if allQuiet {
		st.quiet = quiet
	}
}

// servicePortT is servicePort for a tile sweep. Cross-tile forwards and
// Config/Debug local deliveries stage the untouched port; everything else
// (intra-tile forwards, data delivery and absorption, lapse latching,
// blocked bookkeeping) runs live, exactly like the serial kernel.
func (n *Network) servicePortT(ctx *tileScratch, id int, st *routerState, port Port, now sim.Tick) (sim.Tick, bool) {
	rm := &st.rings[port]
	if rm.n == 0 {
		return 0, false
	}
	s := &n.slots[rm.head]
	if s.ready > now {
		return s.ready, true
	}
	r := n.routers[id]
	if s.kind == Data && s.deadline != 0 && s.flags&slotLapsed == 0 && now > s.deadline {
		s.flags |= slotLapsed
		n.pool.Deref(s.id).lapsedSeen = true
		r.Stats.LapsesSeen++
		if r.Monitors.DeadlineLapse != nil {
			r.Monitors.DeadlineLapse(taskID(s.task), now)
		}
	}

	out := PortInvalid
	if hop := st.hop; uint(int(s.dst)) < uint(len(hop)) {
		out = Port(hop[s.dst])
	} else if st.hop == nil {
		out = n.liveHop(NodeID(id), s.dst)
	}
	if out == Local {
		if s.kind == Data {
			return n.deliverLocalDataT(ctx, id, st, port, s, now)
		}
		// Config application can flip fabric-wide knobs (stirAll) and Debug
		// consumption recycles into the shared arena: both merge-only.
		ctx.stageSvc(id, port)
		return 0, false
	}

	if s.kind == Data && r.Absorb != nil {
		task := taskID(s.task)
		n.pool.Deref(s.id).Hops = int(s.hops)
		if r.Absorb(s.id, task, now) {
			n.popInT(ctx, id, st, port)
			r.Stats.Delivered++
			if r.Monitors.InternalDelivery != nil {
				r.Monitors.InternalDelivery(task, now)
			}
			ctx.stats.Delivered++
			return 0, false
		}
	}

	if out == PortInvalid {
		pkt := n.pool.Deref(s.id)
		pkt.Hops = int(s.hops)
		n.popInT(ctx, id, st, port)
		ctx.recs = append(ctx.recs, recRec{at: int32(id), pkt: pkt})
		return 0, false
	}
	if next := st.nbr[out]; next >= 0 && n.tileOf(int(next)) != ctx.tile {
		// Boundary crossing: the neighbour's rings belong to another tile.
		// Leave the head in place; the merge re-runs this exact service.
		ctx.stageSvc(id, port)
		return 0, false
	}
	if n.byzAny && s.kind == Data {
		// Only reachable serial-tiled (byzantine arming forces one worker),
		// so the legacy meddle path — arena clones, alternate-port pushes,
		// direct drops — is safe to reuse as-is.
		if n.byzMeddle(id, st, port, out, s, now) {
			return 0, false
		}
	}
	if n.forwardT(ctx, id, st, port, out, s, now) {
		return 0, false
	}
	r.Stats.BlockedTicks++
	if st.blockedAt[port] == 0 {
		st.blockedAt[port] = now
	} else if r.deadlockLimit > 0 && now-st.blockedAt[port] >= r.deadlockLimit {
		n.recoverBlockedT(ctx, id, st, port, s, now)
		return 0, false
	}
	return blockedWake(st.blockedAt[port], r.deadlockLimit, s, st.linkBusy[out], now), true
}

// deliverLocalDataT is deliverLocal's Data branch for a tile sweep: the
// sink is the tile-local PE (or cluster demux), so delivery runs live; only
// the drop accounting of a sinkless node is staged (DropHandler + recycle
// are fabric-global).
func (n *Network) deliverLocalDataT(ctx *tileScratch, id int, st *routerState, port Port, s *ringSlot, now sim.Tick) (sim.Tick, bool) {
	r := n.routers[id]
	pkt := n.pool.Deref(s.id)
	pkt.Hops = int(s.hops)
	if r.sink == nil {
		n.popInT(ctx, id, st, port)
		r.Stats.Dropped++
		ctx.drops = append(ctx.drops, dropRec{at: int32(id), pkt: pkt, reason: DropNoSink})
		return 0, false
	}
	task := taskID(s.task)
	if r.sink.Accept(pkt, now) {
		n.popInT(ctx, id, st, port)
		r.Stats.Delivered++
		if r.Monitors.InternalDelivery != nil {
			r.Monitors.InternalDelivery(task, now)
		}
		ctx.stats.Delivered++
		return 0, false
	}
	r.Stats.BlockedTicks++
	if st.blockedAt[port] == 0 {
		st.blockedAt[port] = now
	} else if r.deadlockLimit > 0 && now-st.blockedAt[port] >= r.deadlockLimit {
		n.recoverBlockedT(ctx, id, st, port, s, now)
		return 0, false
	}
	return blockedWake(st.blockedAt[port], r.deadlockLimit, s, 0, now), true
}

// forwardT is forward for an intra-tile hop (the caller has already
// established that the destination router is in this tile). No keep
// parameter: byzantine duplication never runs on this path.
func (n *Network) forwardT(ctx *tileScratch, id int, st *routerState, inPort, out Port, s *ringSlot, now sim.Tick) bool {
	if (st.disabled|st.linkDown)&(1<<out) != 0 {
		return false
	}
	if st.linkBusy[out] > now {
		return false
	}
	next := st.nbr[out]
	if next < 0 {
		return false
	}
	nst := &n.state[next]
	if nst.faulty {
		return false
	}
	inSide := out.Opposite()
	if (nst.disabled|nst.linkDown)&(1<<inSide) != 0 {
		return false
	}
	dur := sim.Tick(s.flits)
	if dur < 1 {
		dur = 1
	}
	rm := &nst.rings[inSide]
	f := ringFlits(s.flits)
	if rm.used+f > n.capFlits {
		nst.refused |= 1 << inSide
		return false
	}
	base := uint32((int(next)*int(NumPorts) + int(inSide)) * n.spp)
	dst := &n.slots[base+((rm.head-base+rm.n)&n.sppMask)]
	*dst = *s
	dst.ready = now + dur
	dst.hops++
	requeued := dst.flags&slotRequeued != 0
	dst.flags &^= slotRequeued
	rm.n++
	rm.used += f
	nst.queued++
	nst.occ |= 1 << inSide
	nst.quiet = 0
	n.actAdd(int(next))

	n.popInT(ctx, id, st, inPort)
	st.linkBusy[out] = now + dur
	if requeued {
		n.pool.Deref(dst.id).requeues = 0
	}
	r := n.routers[id]
	r.Stats.Forwarded++
	if dst.kind == Data && r.Monitors.RoutedTask != nil {
		r.Monitors.RoutedTask(taskID(dst.task), now)
	}
	return true
}

// popInT is popIn for a tile sweep: a refused-bit stir whose upstream
// router lives in another tile is staged (the merge stirs it after the
// barrier, deterministically); an intra-tile stir runs live under the
// tile's own sweep-cursor rule.
func (n *Network) popInT(ctx *tileScratch, id int, st *routerState, port Port) {
	rm := &st.rings[port]
	s := &n.slots[rm.head]
	rm.used -= ringFlits(s.flits)
	s.id = 0
	base := uint32((id*int(NumPorts) + int(port)) * n.spp)
	rm.head = base + ((rm.head - base + 1) & n.sppMask)
	rm.n--
	st.queued--
	st.blockedAt[port] = 0
	if rm.n == 0 {
		st.occ &^= 1 << port
	}
	if st.refused&(1<<port) != 0 {
		st.refused &^= 1 << port
		if up := st.nbr[port]; up >= 0 {
			if n.tileOf(int(up)) != ctx.tile {
				ctx.stirs = append(ctx.stirs, int32(up))
			} else {
				n.stirRouter(int(up))
			}
		}
	}
}

// recoverBlockedT is recoverBlocked for a tile sweep: the rotation re-push
// targets this router (tile-local, live); an ejection is staged for the
// merge, where the recovery handler may re-inject anywhere.
func (n *Network) recoverBlockedT(ctx *tileScratch, id int, st *routerState, port Port, s *ringSlot, now sim.Tick) {
	pkt := n.pool.Deref(s.id)
	pkt.Hops = int(s.hops)
	n.popInT(ctx, id, st, port)
	r := n.routers[id]
	r.Stats.Recovered++
	if r.Monitors.Recovery != nil {
		r.Monitors.Recovery(pkt, now)
	}
	pkt.requeues++
	if pkt.requeues <= r.requeueLimit {
		n.pushPacket(id, port, pkt, now)
		return
	}
	pkt.requeues = 0
	ctx.recs = append(ctx.recs, recRec{at: int32(id), pkt: pkt})
}
