package noc

// Fabric-level contracts of the parallel tiled tick kernel (ISSUE 8):
// partition geometry (even-row bands, cmesh clusters never split), W=1 vs
// W=4 full-state bit-identity tick for tick (router records, ring contents,
// stats, in-flight accounting), the staged-boundary-work property (every
// staged edge service drains exactly once per tick, in deterministic order),
// and the huge-fabric live-routing mode that lifts the scale ceiling to
// 1024×1024.

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"centurion/internal/sim"
)

func TestAutoTiles(t *testing.T) {
	cases := []struct {
		w, h, want int
	}{
		{16, 8, 1},     // default grid: below the tiling threshold
		{64, 32, 2},    // 2048 nodes: the smallest tiled fabric
		{64, 64, 4},    // ISSUE 8's first scale point
		{256, 256, 64}, // Table-I mega run: capped at 64 tiles
		{1024, 1024, 64},
		{2048, 2, 1}, // too flat to band: h < 4
		{4, 1024, 4}, // narrow column: one tile per 1024 nodes
		{2048, 4, 2}, // clamped to one tile per two rows
	}
	for _, c := range cases {
		if got := autoTiles(c.w, c.h); got != c.want {
			t.Errorf("autoTiles(%d, %d) = %d, want %d", c.w, c.h, got, c.want)
		}
	}
}

// tiledNet builds a fabric with an explicit tile and worker count.
func tiledNet(t *testing.T, kind string, w, h, tiles, workers int) *Network {
	t.Helper()
	topo, err := MakeTopology(kind, w, h)
	if err != nil {
		t.Fatalf("MakeTopology(%s, %d, %d): %v", kind, w, h, err)
	}
	cfg := DefaultConfig()
	cfg.Tiles = tiles
	cfg.Workers = workers
	return NewNetwork(topo, cfg)
}

func TestTilePartition(t *testing.T) {
	shapes := []struct {
		kind          string
		w, h, k, want int
	}{
		{"mesh", 16, 8, 4, 4},
		{"mesh", 16, 7, 3, 3}, // odd height: last tile absorbs the odd row
		{"mesh", 10, 5, 2, 2},
		{"mesh", 16, 8, 100, 4}, // clamped to (h+1)/2 row pairs
		{"cmesh", 16, 8, 4, 4},
		{"torus", 16, 8, 4, 4},
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%s-%dx%d-k%d", s.kind, s.w, s.h, s.k), func(t *testing.T) {
			n := tiledNet(t, s.kind, s.w, s.h, s.k, 1)
			if got := n.TileCount(); got != s.want {
				t.Fatalf("TileCount = %d, want %d", got, s.want)
			}
			// Tiles must be contiguous, cover every router exactly once, and
			// start on even rows (cmesh 2×2 clusters must never split).
			next := 0
			for i, tile := range n.tiles {
				if tile.lo != next {
					t.Errorf("tile %d starts at %d, want %d (contiguity)", i, tile.lo, next)
				}
				if tile.hi <= tile.lo {
					t.Errorf("tile %d is empty: [%d, %d)", i, tile.lo, tile.hi)
				}
				if row := tile.lo / s.w; row%2 != 0 {
					t.Errorf("tile %d starts mid-pair at row %d", i, row)
				}
				next = tile.hi
				// The row→tile map and tileOf must agree with the range.
				for id := tile.lo; id < tile.hi; id++ {
					if got := n.tileOf(id); got != int32(i) {
						t.Fatalf("tileOf(%d) = %d, want %d", id, got, i)
					}
				}
			}
			if next != s.w*s.h {
				t.Errorf("tiles cover [0, %d), want [0, %d)", next, s.w*s.h)
			}
			// The uniq carve must cover every router exactly once, in order.
			ui := 0
			for i, tile := range n.tiles {
				if tile.uniqLo != ui {
					t.Errorf("tile %d uniq range starts at %d, want %d", i, tile.uniqLo, ui)
				}
				for u := tile.uniqLo; u < tile.uniqHi; u++ {
					if id := int(n.uniq[u].ID); id < tile.lo || id >= tile.hi {
						t.Errorf("tile %d owns uniq router %d outside [%d, %d)", i, id, tile.lo, tile.hi)
					}
				}
				ui = tile.uniqHi
			}
			if ui != len(n.uniq) {
				t.Errorf("uniq carve covers %d routers, want %d", ui, len(n.uniq))
			}
		})
	}
}

// routerSnap is the full observable state of one router: every scalar of the
// hot record, the FIFO contents of every input ring in order, and the
// cumulative counters. The hop row is deliberately excluded — it is a pure
// function of the shared routing state, not per-run state.
type routerSnap struct {
	quiet                              sim.Tick
	queued                             int32
	occ, rr, disabled, refused, linkDn uint8
	faulty                             bool
	linkBusy                           [NumPorts]sim.Tick
	blockedAt                          [NumPorts]sim.Tick
	stats                              RouterStats
	rings                              [NumPorts][]ringSlot
}

func snapshotFabric(n *Network) []routerSnap {
	snaps := make([]routerSnap, len(n.uniq))
	for i, r := range n.uniq {
		id := int(r.ID)
		st := &n.state[id]
		s := &snaps[i]
		s.quiet, s.queued = st.quiet, st.queued
		s.occ, s.rr, s.disabled, s.refused, s.linkDn = st.occ, st.rr, st.disabled, st.refused, st.linkDown
		s.faulty = st.faulty
		s.linkBusy, s.blockedAt = st.linkBusy, st.blockedAt
		s.stats = r.Stats
		for p := 0; p < int(NumPorts); p++ {
			rm := &st.rings[p]
			base := uint32((id*int(NumPorts) + p) * n.spp)
			for j := uint32(0); j < rm.n; j++ {
				s.rings[p] = append(s.rings[p], n.slots[base+((rm.head-base+j)&n.sppMask)])
			}
		}
	}
	return snaps
}

// runTileLockstep drives a serial-swept (W=1) and a parallel-swept (W=4)
// four-tile fabric through the same injection stream and perturbation
// schedule, comparing the complete fabric state after every tick.
func runTileLockstep(t *testing.T, kind string, ticks int, perturb func(n *Network, tick int, now sim.Tick)) {
	t.Helper()
	build := func(workers int) (*Network, []*collectSink) {
		n := tiledNet(t, kind, 16, 8, 4, workers)
		sinks := make([]*collectSink, len(n.uniq))
		for i, r := range n.uniq {
			sinks[i] = &collectSink{}
			r.SetSink(sinks[i])
		}
		return n, sinks
	}
	serial, serialSinks := build(1)
	parallel, parallelSinks := build(4)
	if !parallel.ParallelTick() {
		t.Fatal("W=4 fabric did not arm the parallel tick")
	}

	nodes := serial.Topo.Nodes()
	inject := func(n *Network, rng *sim.RNG, now sim.Tick, pid *uint64) {
		// Two packets every other tick, sources and destinations drawn across
		// the whole fabric so plenty of forwards cross tile boundaries.
		for k := 0; k < 2; k++ {
			src := NodeID(rng.Intn(nodes))
			dst := NodeID(rng.Intn(nodes))
			*pid++
			n.Inject(src, dataPacket(*pid, src, dst, 1, 1+rng.Intn(3)), now)
		}
	}

	rngS, rngP := sim.NewRNG(0x711e), sim.NewRNG(0x711e)
	var pidS, pidP uint64
	var clkS, clkP sim.Clock
	for tick := 0; tick < ticks; tick++ {
		if tick%2 == 0 {
			inject(serial, rngS, clkS.Now(), &pidS)
			inject(parallel, rngP, clkP.Now(), &pidP)
		}
		if perturb != nil {
			perturb(serial, tick, clkS.Now())
			perturb(parallel, tick, clkP.Now())
		}
		serial.Tick(clkS.Now())
		parallel.Tick(clkP.Now())
		clkS.Step()
		clkP.Step()

		if ss, ps := serial.Stats(), parallel.Stats(); ss != ps {
			t.Fatalf("tick %d: network stats diverged:\n serial:   %+v\n parallel: %+v", tick, ss, ps)
		}
		if si, pi := serial.InFlight(), parallel.InFlight(); si != pi {
			t.Fatalf("tick %d: InFlight diverged: serial %d, parallel %d", tick, si, pi)
		}
		sf, pf := snapshotFabric(serial), snapshotFabric(parallel)
		for i := range sf {
			if !reflect.DeepEqual(sf[i], pf[i]) {
				t.Fatalf("tick %d: router %d state diverged:\n serial:   %+v\n parallel: %+v",
					tick, serial.uniq[i].ID, sf[i], pf[i])
			}
		}
		if staged, drained := parallel.TileStaging(); staged != drained {
			t.Fatalf("tick %d: staged %d != drained %d", tick, staged, drained)
		}
	}

	for i := range serialSinks {
		sIDs := make([]uint64, len(serialSinks[i].got))
		pIDs := make([]uint64, len(parallelSinks[i].got))
		for j, p := range serialSinks[i].got {
			sIDs[j] = p.ID
		}
		for j, p := range parallelSinks[i].got {
			pIDs[j] = p.ID
		}
		if !reflect.DeepEqual(sIDs, pIDs) {
			t.Fatalf("router %d delivery order diverged:\n serial:   %v\n parallel: %v",
				serial.uniq[i].ID, sIDs, pIDs)
		}
	}
	if staged, _ := parallel.TileStaging(); staged == 0 {
		t.Error("no boundary services were staged — the scenario never exercised the merge phase")
	}
}

func TestTileParallelBitIdentity(t *testing.T) {
	scenarios := []struct {
		name    string
		perturb func(n *Network, tick int, now sim.Tick)
	}{
		{"clean", nil},
		{"fail-revive", func(n *Network, tick int, now sim.Tick) {
			// Kill two routers in different tiles mid-run, revive one later.
			switch tick {
			case 60:
				n.Fail(n.Topo.ID(Coord{5, 1}), now)
				n.Fail(n.Topo.ID(Coord{9, 6}), now)
			case 200:
				n.Revive(n.Topo.ID(Coord{5, 1}), now)
			}
		}},
		{"flaky-link", func(n *Network, tick int, now sim.Tick) {
			// A link on the tile-1/tile-2 boundary flaps down and back up.
			id := n.Topo.ID(Coord{7, 3})
			switch tick {
			case 50:
				n.SetLinkHealth(id, South, false, now)
			case 180:
				n.SetLinkHealth(id, South, true, now)
			}
		}},
		{"byzantine", func(n *Network, tick int, now sim.Tick) {
			// Arming byzantine interference drops the kernel to its serial
			// sweep (the meddler's RNG draws are order-sensitive); disarming
			// restores the parallel path. Both transitions must be seamless.
			id := n.Topo.ID(Coord{8, 4})
			switch tick {
			case 40:
				n.SetByzantine(id, 1<<31, ByzMisroute|ByzDrop|ByzDup, 0xb12a)
			case 220:
				n.SetByzantine(id, 0, 0, 0)
			}
		}},
	}
	for _, kind := range []string{"mesh", "torus", "cmesh"} {
		for _, sc := range scenarios {
			t.Run(kind+"/"+sc.name, func(t *testing.T) {
				runTileLockstep(t, kind, 320, sc.perturb)
			})
		}
	}
}

// TestTileStagingDrainsOnce is the boundary property test: after every Tick
// the cumulative staged and drained counts match (each staged edge service
// ran exactly once in the merge) and every tile's scratch is empty — no
// record survives into the next tick.
func TestTileStagingDrainsOnce(t *testing.T) {
	n := tiledNet(t, "mesh", 16, 8, 4, 4)
	for _, r := range n.uniq {
		r.SetSink(&collectSink{})
	}
	rng := sim.NewRNG(0xd2a1)
	nodes := n.Topo.Nodes()
	var clk sim.Clock
	var pid uint64
	for tick := 0; tick < 300; tick++ {
		// Saturating cross-fabric load: every tick, four random flows.
		for k := 0; k < 4; k++ {
			src := NodeID(rng.Intn(nodes))
			dst := NodeID(rng.Intn(nodes))
			pid++
			n.Inject(src, dataPacket(pid, src, dst, 1, 1+rng.Intn(3)), clk.Now())
		}
		n.Tick(clk.Now())
		clk.Step()
		staged, drained := n.TileStaging()
		if staged != drained {
			t.Fatalf("tick %d: staged %d != drained %d", tick, staged, drained)
		}
		for i := range n.scratch {
			sc := &n.scratch[i]
			if len(sc.svc) != 0 || len(sc.stirs) != 0 || len(sc.recs) != 0 || len(sc.drops) != 0 {
				t.Fatalf("tick %d: tile %d scratch not drained: svc=%d stirs=%d recs=%d drops=%d",
					tick, i, len(sc.svc), len(sc.stirs), len(sc.recs), len(sc.drops))
			}
			if sc.stats != (NetworkStats{}) {
				t.Fatalf("tick %d: tile %d stats delta not folded: %+v", tick, i, sc.stats)
			}
		}
	}
	if staged, _ := n.TileStaging(); staged == 0 {
		t.Fatal("no boundary work staged under saturating cross-fabric load")
	}
	// Reset must zero the lifetime staging counters with the rest.
	n.Reset()
	if staged, drained := n.TileStaging(); staged != 0 || drained != 0 {
		t.Errorf("TileStaging after Reset = (%d, %d), want (0, 0)", staged, drained)
	}
}

// TestHugeFabricLiveRouting covers the mega-fabric mode: beyond hugeNodes
// the O(nodes²) routing structures are skipped and every hop is computed on
// the fly, so a 128×128 fabric must deliver along exact dimension-order
// paths, treat faults without rerouting (blocked heads take the
// deadlock-recovery path), and answer Reachable optimistically.
func TestHugeFabricLiveRouting(t *testing.T) {
	n := tiledNet(t, "mesh", 128, 128, 0, 1)
	if !n.huge {
		t.Fatal("16384-node fabric did not enter huge mode")
	}
	if n.state[0].hop != nil || n.xy != nil {
		t.Fatal("huge fabric built per-router hop rows")
	}
	if got := n.TileCount(); got != 16 {
		t.Errorf("TileCount = %d, want 16 (one per 1024 nodes)", got)
	}

	topo := n.Topo
	src, dst := topo.ID(Coord{0, 0}), topo.ID(Coord{127, 127})
	sink := &collectSink{}
	n.Router(dst).SetSink(sink)

	p := dataPacket(1, src, dst, 1, 2)
	var clk sim.Clock
	if !n.Inject(src, p, clk.Now()) {
		t.Fatal("Inject failed on empty fabric")
	}
	run(n, &clk, 600)
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(sink.got))
	}
	if want := topo.Distance(src, dst); p.Hops != want {
		t.Errorf("hops = %d, want Manhattan %d (live XY routing)", p.Hops, want)
	}

	// Fail a router on the XY path. Routes are never recomputed in huge
	// mode: the next packet heads straight into the dead router, blocks, and
	// the deadlock-recovery path ejects it.
	mid := topo.ID(Coord{64, 0})
	n.Fail(mid, clk.Now())
	if !n.Reachable(src, dst) {
		t.Error("huge-mode Reachable must stay optimistic under faults")
	}
	before := n.Stats().Dropped
	n.Inject(src, dataPacket(2, src, dst, 1, 2), clk.Now())
	run(n, &clk, 2000)
	if got := n.Stats().Dropped; got != before+1 {
		t.Errorf("dropped = %d, want %d (deadlock recovery must eject the blocked packet)", got, before+1)
	}
	if n.InFlight() != 0 {
		t.Errorf("InFlight = %d after ejection, want 0", n.InFlight())
	}
}

// TestMegaFabric256Smoke proves the 65k-node Table-I scale point assembles
// and carries traffic end to end through the tiled kernel.
func TestMegaFabric256Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("65k-node fabric build is slow under -short")
	}
	n := tiledNet(t, "mesh", 256, 256, 0, 2)
	if !n.huge {
		t.Fatal("65536-node fabric did not enter huge mode")
	}
	if got := n.TileCount(); got != 64 {
		t.Errorf("TileCount = %d, want 64", got)
	}
	topo := n.Topo
	src, dst := topo.ID(Coord{0, 0}), topo.ID(Coord{255, 255})
	sink := &collectSink{}
	n.Router(dst).SetSink(sink)
	var clk sim.Clock
	n.Inject(src, dataPacket(1, src, dst, 1, 2), clk.Now())
	run(n, &clk, 1200)
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets across the 256×256 fabric, want 1", len(sink.got))
	}
	if staged, drained := n.TileStaging(); staged == 0 || staged != drained {
		t.Errorf("TileStaging = (%d, %d): cross-tile path must stage and drain", staged, drained)
	}
}

// TestMegaFabric1024 exercises the full 2^20-node ceiling. The fabric's ring
// backing alone is >1 GiB, so the test only runs when explicitly requested.
func TestMegaFabric1024(t *testing.T) {
	if os.Getenv("CENTURION_MEGA") == "" {
		t.Skip("set CENTURION_MEGA=1 to build the 1,048,576-node fabric")
	}
	n := tiledNet(t, "mesh", 1024, 1024, 0, 4)
	if !n.huge {
		t.Fatal("1M-node fabric did not enter huge mode")
	}
	topo := n.Topo
	src, dst := topo.ID(Coord{0, 0}), topo.ID(Coord{1023, 0})
	sink := &collectSink{}
	n.Router(dst).SetSink(sink)
	var clk sim.Clock
	n.Inject(src, dataPacket(1, src, dst, 1, 1), clk.Now())
	run(n, &clk, 3000)
	if len(sink.got) != 1 {
		t.Fatalf("delivered %d packets across the 1024×1024 fabric, want 1", len(sink.got))
	}
}
