package noc

import (
	"fmt"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
	"centurion/internal/wire"
)

// Checkpoint support for the fabric (DESIGN.md §15). A NetworkState is a
// deep, self-contained copy of everything a Network mutates while running:
// the packet arena (per-slot packet values, generation tags, free list and
// accounting), the shared ring-slot slice, the per-router hot records and
// next-hop row contents, the active sets, byzantine arming (including each
// router's private RNG stream), fault flags and fabric counters. Everything
// immutable — topology, xy rows, neighbour wiring, tile layout, the healthy
// route tables — stays with the platform and is never copied.
//
// The fault-aware route tables sit in between: their *contents* are
// immutable once computed (faults swap the pointer, never edit in place), so
// an in-memory snapshot shares them by reference across every fork. Only a
// checkpoint decoded from a file lacks the pointer; LoadState then recomputes
// the tables from the restored fault flags, which is deterministic and yields
// identical contents.

// ArenaIndex resolves the arena slot a packet is bound to in this pool —
// how higher layers record packet references in a checkpoint (the slot
// index is stable across snapshot and restore; pointers are not).
func (pp *PacketPool) ArenaIndex(p *Packet) (int32, bool) { return pp.slotOf(p) }

// ArenaPacket returns the packet bound to an arena slot.
func (pp *PacketPool) ArenaPacket(idx int32) *Packet { return pp.slots[idx] }

// sliceFor returns s resized to n elements, reallocating only when the
// capacity is short — the restore hot path reuses checkpoint backing.
func sliceFor[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// poolState captures a PacketPool: every bound slot's packet value, the
// generation tags, the free list and the exact accounting counters, so a
// restored pool's Stats and future Get/Put sequence are bit-identical.
type poolState struct {
	packets          []Packet
	gen              []uint32
	free             []int32
	news, gets, puts uint64
}

func (pp *PacketPool) saveState(st *poolState) {
	st.packets = sliceFor(st.packets, len(pp.slots))
	for i, p := range pp.slots {
		st.packets[i] = *p
	}
	st.gen = append(st.gen[:0], pp.gen...)
	st.free = append(st.free[:0], pp.free...)
	st.news, st.gets, st.puts = pp.news, pp.gets, pp.puts
}

// loadState restores the arena. The target pool grows by carving fresh slab
// packets (bulk, not per-packet) when the checkpoint bound more slots than
// it has; extra target slots are truncated away (their packets are
// unreferenced after restore and simply return to the garbage collector).
func (pp *PacketPool) loadState(st *poolState) {
	want := len(st.packets)
	for len(pp.slots) < want {
		if len(pp.slab) == 0 {
			pp.slab = make([]Packet, slabSize)
		}
		p := &pp.slab[0]
		pp.slab = pp.slab[1:]
		pp.bind(p)
	}
	pp.slots = pp.slots[:want]
	pp.gen = sliceFor(pp.gen, want)
	copy(pp.gen, st.gen)
	for i := range st.packets {
		*pp.slots[i] = st.packets[i]
	}
	pp.free = append(pp.free[:0], st.free...)
	pp.news, pp.gets, pp.puts = st.news, st.gets, st.puts
}

// routerCold is the snapshot of one router's cold state (the mutable part
// of the *Router value itself; sinks and monitor taps stay with the target).
type routerCold struct {
	deadlockLimit sim.Tick
	requeueLimit  int
	stats         RouterStats
}

// NetworkState is an opaque deep copy of a Network's mutable state. Obtain
// one with Network.SaveState, restore it into any same-shape fabric with
// Network.LoadState, and serialize it with AppendBinary/DecodeBinary. A
// single NetworkState may be restored into many platforms (forking): it is
// read-only during LoadState.
type NetworkState struct {
	pool       poolState
	slots      []ringSlot
	recs       []routerState // per-uniq hot records, hop row detached
	hop        []int8        // flat hop-row contents, uniq-major (empty on huge)
	cold       []routerCold
	active     sim.ActiveSetState
	tileActive []sim.ActiveSetState
	hasByz     bool
	byz        []byzState
	byzCnt     int
	byzAny     bool
	haveFaults bool
	faultyCnt  int
	stats      NetworkStats
	stagedOps  uint64
	drainedOps uint64

	// tables is the in-memory shared reference (nil after DecodeBinary and
	// on fabrics that are healthy under XY routing).
	tables *routeTables

	// Shape guard: a state only restores into the fabric geometry it came
	// from.
	nodes, spp, uniqN, tileN int
	huge                     bool
}

// SaveState deep-copies the fabric's mutable state into st, reusing st's
// backing storage so a warm snapshot allocates nothing.
func (n *Network) SaveState(st *NetworkState) {
	n.pool.saveState(&st.pool)
	st.slots = append(st.slots[:0], n.slots...)

	st.recs = sliceFor(st.recs, len(n.uniq))
	st.cold = sliceFor(st.cold, len(n.uniq))
	if n.huge {
		st.hop = st.hop[:0]
	} else {
		st.hop = sliceFor(st.hop, len(n.uniq)*n.nodes)
	}
	for i, r := range n.uniq {
		rec := &n.state[r.ID]
		st.recs[i] = *rec
		// The row contents travel in the flat hop copy below; detaching the
		// slice keeps the checkpoint from pinning the source fabric's backing.
		st.recs[i].hop = nil
		if !n.huge {
			copy(st.hop[i*n.nodes:(i+1)*n.nodes], rec.hop)
		}
		st.cold[i] = routerCold{deadlockLimit: r.deadlockLimit, requeueLimit: r.requeueLimit, stats: r.Stats}
	}

	n.active.SaveState(&st.active)
	st.tileActive = sliceFor(st.tileActive, len(n.tiles))
	for i := range n.tiles {
		n.tiles[i].set.SaveState(&st.tileActive[i])
	}

	st.hasByz = n.byz != nil
	st.byz = append(st.byz[:0], n.byz...)
	st.byzCnt, st.byzAny = n.byzCnt, n.byzAny

	st.haveFaults, st.faultyCnt = n.haveFaults, n.faultyCnt
	st.stats = n.stats
	st.stagedOps, st.drainedOps = n.stagedOps, n.drainedOps
	st.tables = n.tables

	st.nodes, st.spp, st.uniqN, st.tileN = n.nodes, n.spp, len(n.uniq), len(n.tiles)
	st.huge = n.huge
}

// LoadState restores a previously saved state into the fabric. The target
// must have the same geometry (node count, ring capacity, router set, tile
// layout) as the fabric the state was saved from; construction-derived
// wiring is reused, so the restore is a handful of bulk copies.
func (n *Network) LoadState(st *NetworkState) {
	if st.nodes != n.nodes || st.spp != n.spp || st.uniqN != len(n.uniq) ||
		st.tileN != len(n.tiles) || st.huge != n.huge {
		panic(fmt.Sprintf("noc: checkpoint shape mismatch: state is %d nodes/%d spp/%d routers/%d tiles, fabric is %d/%d/%d/%d",
			st.nodes, st.spp, st.uniqN, st.tileN, n.nodes, n.spp, len(n.uniq), len(n.tiles)))
	}
	n.pool.loadState(&st.pool)
	copy(n.slots, st.slots)

	for i, r := range n.uniq {
		dst := &n.state[r.ID]
		hop := dst.hop
		*dst = st.recs[i]
		dst.hop = hop
		if hop != nil {
			copy(hop, st.hop[i*n.nodes:(i+1)*n.nodes])
		}
		cold := &st.cold[i]
		r.deadlockLimit, r.requeueLimit, r.Stats = cold.deadlockLimit, cold.requeueLimit, cold.stats
	}

	n.active.LoadState(&st.active)
	for i := range n.tiles {
		n.tiles[i].set.LoadState(&st.tileActive[i])
	}

	if st.hasByz {
		if n.byz == nil {
			n.byz = make([]byzState, n.nodes)
		}
		copy(n.byz, st.byz)
	} else {
		// The source never armed byzantine state; byzAny=false keeps the
		// slice unread, but zero it so a stale arming cannot leak into a
		// later SetByzantine epoch.
		clear(n.byz)
	}
	n.byzCnt, n.byzAny = st.byzCnt, st.byzAny

	n.haveFaults, n.faultyCnt = st.haveFaults, st.faultyCnt
	n.stats = st.stats
	n.stagedOps, n.drainedOps = st.stagedOps, st.drainedOps

	// Route tables: share the in-memory reference when the state carries
	// one. A file-decoded state does not; recompute from the restored fault
	// flags (deterministic — identical contents to the source's tables).
	// Note applyRoutingRows is NOT called anywhere here: the hop rows were
	// restored verbatim above, and rebinding them would stir parked routers,
	// perturbing the quiet fast-forwards the snapshot captured.
	switch {
	case st.tables != nil:
		n.tables = st.tables
	case !n.huge && n.haveFaults && n.cfg.Mode != RouteXY:
		n.tables = computeTables(n.Topo, func(id NodeID) bool { return !n.state[n.routers[id].ID].faulty })
	default:
		n.tables = n.healthy
	}
}

// --- binary encoding (the network section of a checkpoint file) ---

func appendPacket(b []byte, p *Packet) []byte {
	b = wire.AppendU64(b, p.ID)
	b = wire.AppendU8(b, uint8(p.Kind))
	b = wire.AppendI64(b, int64(p.Src))
	b = wire.AppendI64(b, int64(p.Dst))
	b = wire.AppendI64(b, int64(p.Task))
	b = wire.AppendU64(b, p.Instance)
	b = wire.AppendI64(b, int64(p.Branch))
	b = wire.AppendI64(b, int64(p.Origin))
	b = wire.AppendI64(b, int64(p.JoinDst))
	b = wire.AppendI64(b, int64(p.Flits))
	b = wire.AppendI64(b, int64(p.Created))
	b = wire.AppendI64(b, int64(p.Deadline))
	b = wire.AppendI64(b, int64(p.Hops))
	b = wire.AppendI64(b, int64(p.Retargets))
	b = wire.AppendU8(b, uint8(p.Op))
	b = wire.AppendI64(b, int64(p.Arg))
	b = wire.AppendI64(b, int64(p.Arg2))
	b = wire.AppendBool(b, p.lapsedSeen)
	b = wire.AppendI64(b, int64(p.requeues))
	b = wire.AppendBool(b, p.pooled)
	b = wire.AppendU32(b, uint32(p.h))
	return b
}

func readPacket(r *wire.Reader, p *Packet) {
	p.ID = r.U64()
	p.Kind = Kind(r.U8())
	p.Src = NodeID(r.I64())
	p.Dst = NodeID(r.I64())
	p.Task = taskgraph.TaskID(r.I64())
	p.Instance = r.U64()
	p.Branch = int(r.I64())
	p.Origin = NodeID(r.I64())
	p.JoinDst = NodeID(r.I64())
	p.Flits = int(r.I64())
	p.Created = sim.Tick(r.I64())
	p.Deadline = sim.Tick(r.I64())
	p.Hops = int(r.I64())
	p.Retargets = int(r.I64())
	p.Op = ConfigOp(r.U8())
	p.Arg = int(r.I64())
	p.Arg2 = int(r.I64())
	p.lapsedSeen = r.Bool()
	p.requeues = int(r.I64())
	p.pooled = r.Bool()
	p.h = PacketID(r.U32())
}

func appendRouterRec(b []byte, rec *routerState) []byte {
	b = wire.AppendI64(b, int64(rec.quiet))
	b = wire.AppendU32(b, uint32(rec.queued))
	b = wire.AppendU8(b, rec.occ)
	b = wire.AppendU8(b, rec.rr)
	b = wire.AppendU8(b, rec.disabled)
	b = wire.AppendBool(b, rec.faulty)
	b = wire.AppendU8(b, rec.refused)
	b = wire.AppendU8(b, rec.linkDown)
	for p := 0; p < int(NumPorts); p++ {
		b = wire.AppendU32(b, uint32(rec.nbr[p]))
		b = wire.AppendU32(b, rec.rings[p].head)
		b = wire.AppendU32(b, rec.rings[p].n)
		b = wire.AppendU32(b, rec.rings[p].used)
		b = wire.AppendI64(b, int64(rec.linkBusy[p]))
		b = wire.AppendI64(b, int64(rec.blockedAt[p]))
	}
	return b
}

func readRouterRec(r *wire.Reader, rec *routerState) {
	rec.quiet = sim.Tick(r.I64())
	rec.queued = int32(r.U32())
	rec.occ = r.U8()
	rec.rr = r.U8()
	rec.disabled = r.U8()
	rec.faulty = r.Bool()
	rec.refused = r.U8()
	rec.linkDown = r.U8()
	for p := 0; p < int(NumPorts); p++ {
		rec.nbr[p] = int32(r.U32())
		rec.rings[p].head = r.U32()
		rec.rings[p].n = r.U32()
		rec.rings[p].used = r.U32()
		rec.linkBusy[p] = sim.Tick(r.I64())
		rec.blockedAt[p] = sim.Tick(r.I64())
	}
	rec.hop = nil
}

func appendActiveSet(b []byte, st *sim.ActiveSetState) []byte {
	b = wire.AppendU32(b, uint32(len(st.Words)))
	for _, w := range st.Words {
		b = wire.AppendU64(b, w)
	}
	b = wire.AppendI64(b, st.N)
	return b
}

func readActiveSet(r *wire.Reader, st *sim.ActiveSetState) {
	n := r.Count(8)
	st.Words = sliceFor(st.Words, n)
	for i := range st.Words {
		st.Words[i] = r.U64()
	}
	st.N = r.I64()
}

func appendRouterStats(b []byte, s *RouterStats) []byte {
	b = wire.AppendU64(b, s.Forwarded)
	b = wire.AppendU64(b, s.Delivered)
	b = wire.AppendU64(b, s.ConfigOps)
	b = wire.AppendU64(b, s.Recovered)
	b = wire.AppendU64(b, s.Dropped)
	b = wire.AppendU64(b, s.BlockedTicks)
	b = wire.AppendU64(b, s.LapsesSeen)
	return b
}

func readRouterStats(r *wire.Reader, s *RouterStats) {
	s.Forwarded = r.U64()
	s.Delivered = r.U64()
	s.ConfigOps = r.U64()
	s.Recovered = r.U64()
	s.Dropped = r.U64()
	s.BlockedTicks = r.U64()
	s.LapsesSeen = r.U64()
}

// AppendBinary serializes the state (excluding the shared route-table
// reference, which LoadState recomputes after a file restore).
func (st *NetworkState) AppendBinary(b []byte) []byte {
	b = wire.AppendU32(b, uint32(st.nodes))
	b = wire.AppendU32(b, uint32(st.spp))
	b = wire.AppendU32(b, uint32(st.uniqN))
	b = wire.AppendU32(b, uint32(st.tileN))
	b = wire.AppendBool(b, st.huge)

	b = wire.AppendU32(b, uint32(len(st.pool.packets)))
	for i := range st.pool.packets {
		b = appendPacket(b, &st.pool.packets[i])
	}
	b = wire.AppendU32(b, uint32(len(st.pool.gen)))
	for _, g := range st.pool.gen {
		b = wire.AppendU32(b, g)
	}
	b = wire.AppendU32(b, uint32(len(st.pool.free)))
	for _, f := range st.pool.free {
		b = wire.AppendU32(b, uint32(f))
	}
	b = wire.AppendU64(b, st.pool.news)
	b = wire.AppendU64(b, st.pool.gets)
	b = wire.AppendU64(b, st.pool.puts)

	b = wire.AppendU32(b, uint32(len(st.slots)))
	for i := range st.slots {
		s := &st.slots[i]
		b = wire.AppendI64(b, int64(s.ready))
		b = wire.AppendI64(b, int64(s.deadline))
		b = wire.AppendU32(b, uint32(s.id))
		b = wire.AppendU32(b, uint32(s.dst))
		b = wire.AppendU16(b, uint16(s.task))
		b = wire.AppendU16(b, uint16(s.flits))
		b = wire.AppendU16(b, s.hops)
		b = wire.AppendU8(b, uint8(s.kind))
		b = wire.AppendU8(b, s.flags)
	}

	b = wire.AppendU32(b, uint32(len(st.recs)))
	for i := range st.recs {
		b = appendRouterRec(b, &st.recs[i])
	}
	b = wire.AppendU32(b, uint32(len(st.hop)))
	for _, h := range st.hop {
		b = wire.AppendU8(b, uint8(h))
	}
	b = wire.AppendU32(b, uint32(len(st.cold)))
	for i := range st.cold {
		c := &st.cold[i]
		b = wire.AppendI64(b, int64(c.deadlockLimit))
		b = wire.AppendI64(b, int64(c.requeueLimit))
		b = appendRouterStats(b, &c.stats)
	}

	b = appendActiveSet(b, &st.active)
	b = wire.AppendU32(b, uint32(len(st.tileActive)))
	for i := range st.tileActive {
		b = appendActiveSet(b, &st.tileActive[i])
	}

	b = wire.AppendBool(b, st.hasByz)
	b = wire.AppendU32(b, uint32(len(st.byz)))
	for i := range st.byz {
		bz := &st.byz[i]
		b = wire.AppendU32(b, bz.rate)
		b = wire.AppendU8(b, bz.modes)
		b = wire.AppendU64(b, bz.rng.State())
	}
	b = wire.AppendI64(b, int64(st.byzCnt))
	b = wire.AppendBool(b, st.byzAny)

	b = wire.AppendBool(b, st.haveFaults)
	b = wire.AppendI64(b, int64(st.faultyCnt))

	b = wire.AppendU64(b, st.stats.Injected)
	b = wire.AppendU64(b, st.stats.Delivered)
	b = wire.AppendU64(b, st.stats.ConfigOps)
	b = wire.AppendU64(b, st.stats.Dropped)
	b = wire.AppendU64(b, st.stats.Rescued)
	b = wire.AppendU64(b, st.stats.ByzMisrouted)
	b = wire.AppendU64(b, st.stats.ByzDropped)
	b = wire.AppendU64(b, st.stats.ByzDuplicated)
	b = wire.AppendU64(b, st.stagedOps)
	b = wire.AppendU64(b, st.drainedOps)
	return b
}

// DecodeBinary reads a state serialized by AppendBinary. The decoded state
// carries no route-table reference; LoadState recomputes the tables from
// the fault flags.
func (st *NetworkState) DecodeBinary(r *wire.Reader) error {
	st.nodes = int(r.U32())
	st.spp = int(r.U32())
	st.uniqN = int(r.U32())
	st.tileN = int(r.U32())
	st.huge = r.Bool()

	n := r.Count(123) // serialized packet size
	st.pool.packets = sliceFor(st.pool.packets, n)
	for i := range st.pool.packets {
		readPacket(r, &st.pool.packets[i])
	}
	n = r.Count(4)
	st.pool.gen = sliceFor(st.pool.gen, n)
	for i := range st.pool.gen {
		st.pool.gen[i] = r.U32()
	}
	n = r.Count(4)
	st.pool.free = sliceFor(st.pool.free, n)
	for i := range st.pool.free {
		st.pool.free[i] = int32(r.U32())
	}
	st.pool.news = r.U64()
	st.pool.gets = r.U64()
	st.pool.puts = r.U64()

	n = r.Count(27) // serialized ring-slot size
	st.slots = sliceFor(st.slots, n)
	for i := range st.slots {
		s := &st.slots[i]
		s.ready = sim.Tick(r.I64())
		s.deadline = sim.Tick(r.I64())
		s.id = PacketID(r.U32())
		s.dst = int32(r.U32())
		s.task = int16(r.U16())
		s.flits = int16(r.U16())
		s.hops = r.U16()
		s.kind = Kind(r.U8())
		s.flags = r.U8()
	}

	n = r.Count(14) // router record, lower bound
	st.recs = sliceFor(st.recs, n)
	for i := range st.recs {
		readRouterRec(r, &st.recs[i])
	}
	n = r.Count(1)
	st.hop = sliceFor(st.hop, n)
	for i := range st.hop {
		st.hop[i] = int8(r.U8())
	}
	n = r.Count(8)
	st.cold = sliceFor(st.cold, n)
	for i := range st.cold {
		c := &st.cold[i]
		c.deadlockLimit = sim.Tick(r.I64())
		c.requeueLimit = int(r.I64())
		readRouterStats(r, &c.stats)
	}

	readActiveSet(r, &st.active)
	n = r.Count(12)
	st.tileActive = sliceFor(st.tileActive, n)
	for i := range st.tileActive {
		readActiveSet(r, &st.tileActive[i])
	}

	st.hasByz = r.Bool()
	n = r.Count(13)
	st.byz = sliceFor(st.byz, n)
	for i := range st.byz {
		bz := &st.byz[i]
		bz.rate = r.U32()
		bz.modes = r.U8()
		bz.rng.SetState(r.U64())
	}
	st.byzCnt = int(r.I64())
	st.byzAny = r.Bool()

	st.haveFaults = r.Bool()
	st.faultyCnt = int(r.I64())

	st.stats.Injected = r.U64()
	st.stats.Delivered = r.U64()
	st.stats.ConfigOps = r.U64()
	st.stats.Dropped = r.U64()
	st.stats.Rescued = r.U64()
	st.stats.ByzMisrouted = r.U64()
	st.stats.ByzDropped = r.U64()
	st.stats.ByzDuplicated = r.U64()
	st.stagedOps = r.U64()
	st.drainedOps = r.U64()

	st.tables = nil
	return r.Err()
}
