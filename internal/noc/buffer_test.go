package noc

import (
	"testing"

	"centurion/internal/sim"
)

// ringNet builds a small fabric whose shared ring backing the tests poke
// directly (the rings are internal to the network since DESIGN.md §11).
func ringNet(bufFlits int) *Network {
	cfg := DefaultConfig()
	cfg.BufferFlits = bufFlits
	return NewNetwork(NewTopology(2, 1), cfg)
}

func ringPacket(net *Network, id uint64, flits int) *Packet {
	p := net.Pool().Get()
	p.ID = id
	p.Kind = Data
	p.Flits = flits
	return p
}

func TestRingFIFO(t *testing.T) {
	net := ringNet(16)
	for i := uint64(1); i <= 4; i++ {
		if !net.pushPacket(0, North, ringPacket(net, i, 4), 0) {
			t.Fatalf("push %d failed", i)
		}
	}
	if net.pushPacket(0, North, ringPacket(net, 5, 1), 0) {
		t.Fatal("push past flit capacity succeeded")
	}
	st := &net.state[0]
	if got := st.rings[North].n; got != 4 {
		t.Fatalf("ring holds %d packets, want 4", got)
	}
	if got := st.rings[North].used; got != 16 {
		t.Fatalf("ring uses %d flits, want 16", got)
	}
	for i := uint64(1); i <= 4; i++ {
		s := net.headSlot(st, North)
		p := net.Pool().Deref(s.id)
		if p.ID != i {
			t.Fatalf("head %d returned packet #%d", i, p.ID)
		}
		net.popIn(0, st, North)
	}
	if st.rings[North].n != 0 || st.rings[North].used != 0 {
		t.Fatalf("drained ring not empty: %+v", st.rings[North])
	}
	if st.queued != 0 || st.occ != 0 {
		t.Fatalf("router counters not cleared: queued=%d occ=%b", st.queued, st.occ)
	}
}

func TestRingReadyAt(t *testing.T) {
	net := ringNet(8)
	if !net.pushPacket(0, East, ringPacket(net, 1, 4), 10) {
		t.Fatal("push failed")
	}
	s := net.headSlot(&net.state[0], East)
	if net.Pool().Deref(s.id).ID != 1 || s.ready != sim.Tick(10) {
		t.Fatalf("head slot = %+v, want packet #1 ready at 10", s)
	}
}

func TestRingWrapAround(t *testing.T) {
	// Interleave pushes and pops far past the ring length and make sure
	// ordering and flit accounting survive the wrap.
	net := ringNet(8)
	st := &net.state[0]
	next := uint64(0)
	want := uint64(0)
	for ; next < 4; next++ {
		if !net.pushPacket(0, West, ringPacket(net, next, 1), 0) {
			t.Fatalf("prefill push %d failed", next)
		}
	}
	for round := 0; round < 300; round++ {
		if !net.pushPacket(0, West, ringPacket(net, next, 1), 0) {
			t.Fatalf("round %d: push failed with %d queued", round, st.rings[West].n)
		}
		next++
		p := net.Pool().Deref(net.headSlot(st, West).id)
		if p.ID != want {
			t.Fatalf("round %d: popped %d, want %d", round, p.ID, want)
		}
		net.popIn(0, st, West)
		net.Pool().Put(p)
		want++
	}
	for st.rings[West].n > 0 {
		p := net.Pool().Deref(net.headSlot(st, West).id)
		if p.ID != want {
			t.Fatalf("drain: popped %d, want %d", p.ID, want)
		}
		net.popIn(0, st, West)
		net.Pool().Put(p)
		want++
	}
	if want != next {
		t.Fatalf("popped %d packets, pushed %d", want, next)
	}
}

func TestRingSubFlitPacketsStillOccupy(t *testing.T) {
	// A zero-flit packet costs one flit of accounting (the same clamp the
	// link serialiser applies), so the ring can never overflow on count.
	net := ringNet(4)
	for i := 0; i < 4; i++ {
		if !net.pushPacket(0, South, ringPacket(net, uint64(i), 0), 0) {
			t.Fatalf("push %d failed", i)
		}
	}
	if net.pushPacket(0, South, ringPacket(net, 9, 0), 0) {
		t.Fatal("zero-flit push past capacity succeeded")
	}
}
