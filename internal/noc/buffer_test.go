package noc

import "testing"

func TestBufferFIFO(t *testing.T) {
	b := newBuffer(16)
	for i := uint64(1); i <= 4; i++ {
		if !b.Push(&Packet{ID: i, Flits: 4}, 0) {
			t.Fatalf("push %d failed", i)
		}
	}
	if b.Push(&Packet{ID: 5, Flits: 1}, 0) {
		t.Fatal("push past capacity succeeded")
	}
	if b.Len() != 4 || b.FreeFlits() != 0 {
		t.Fatalf("Len=%d FreeFlits=%d", b.Len(), b.FreeFlits())
	}
	for i := uint64(1); i <= 4; i++ {
		p := b.Pop()
		if p == nil || p.ID != i {
			t.Fatalf("pop %d returned %v", i, p)
		}
	}
	if b.Pop() != nil {
		t.Fatal("pop from empty buffer returned a packet")
	}
}

func TestBufferReadyAt(t *testing.T) {
	b := newBuffer(8)
	b.Push(&Packet{ID: 1, Flits: 4}, 10)
	p, ready := b.Head()
	if p.ID != 1 || ready != 10 {
		t.Fatalf("Head = %v ready=%d", p, ready)
	}
}

func TestBufferDrain(t *testing.T) {
	b := newBuffer(32)
	for i := uint64(0); i < 5; i++ {
		b.Push(&Packet{ID: i, Flits: 2}, 0)
	}
	out := b.Drain()
	if len(out) != 5 || b.Len() != 0 || b.FreeFlits() != 32 {
		t.Fatalf("Drain -> %d packets, Len=%d Free=%d", len(out), b.Len(), b.FreeFlits())
	}
}

func TestBufferCompaction(t *testing.T) {
	b := newBuffer(1 << 20)
	// Interleave pushes and pops far past the compaction threshold and make
	// sure ordering and accounting survive.
	next := uint64(0)
	want := uint64(0)
	for round := 0; round < 300; round++ {
		b.Push(&Packet{ID: next, Flits: 1}, 0)
		next++
		if round%2 == 1 {
			p := b.Pop()
			if p.ID != want {
				t.Fatalf("round %d: popped %d, want %d", round, p.ID, want)
			}
			want++
		}
	}
	for b.Len() > 0 {
		p := b.Pop()
		if p.ID != want {
			t.Fatalf("drain: popped %d, want %d", p.ID, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d packets, pushed %d", want, next)
	}
}
