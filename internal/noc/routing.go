package noc

// RoutingMode selects how routers compute next hops.
type RoutingMode int

const (
	// RouteAuto uses the topology's dimension-order routing while the fabric
	// is healthy and switches to fault-aware shortest-path tables once a
	// router fails (a stand-in for the platform's route-discovery around dead
	// nodes; see DESIGN.md §2).
	RouteAuto RoutingMode = iota
	// RouteXY always uses dimension-order routing, even across faults
	// (packets heading into a dead router are recovered/dropped) — the
	// ablation case.
	RouteXY
	// RouteTables always uses the shortest-path tables.
	RouteTables
)

// String names the routing mode.
func (m RoutingMode) String() string {
	switch m {
	case RouteAuto:
		return "auto"
	case RouteXY:
		return "xy"
	case RouteTables:
		return "tables"
	}
	return "unknown"
}

// xyNextHop is the topology's healthy-fabric dimension-order hop (XY on the
// mesh). Kept as a free function because half the routing tests and the
// network's precomputed rows speak in these terms.
func xyNextHop(topo Topology, from, dst NodeID) Port {
	return topo.BaseNextHop(from, dst)
}

// routeTables holds per-destination next-hop ports for every router,
// computed by breadth-first search over the alive subgraph.
type routeTables struct {
	// next[from][dst] is the output port at from's router toward dst
	// (PortInvalid when unreachable, Local when both share a router).
	next [][]Port
}

// computeTables builds shortest-path next hops avoiding faulty routers, for
// any topology: the BFS runs over the topology's router link graph, and
// nodes sharing a router (concentrated fabrics) share rows. Port preference
// follows XY habit (horizontal first) so that table routes coincide with
// dimension-order routing on the healthy fabric, keeping the ablation
// comparison clean.
func computeTables(topo Topology, alive func(NodeID) bool) *routeTables {
	n := topo.Nodes()
	rt := &routeTables{next: make([][]Port, n)}
	// Nodes sharing a router have byte-identical rows (the Local condition
	// and every hop depend only on the serving router), so only hub rows are
	// materialised and filled; members alias them. Rows are read-only after
	// build and routers only ever bind their own hub row, so the aliasing is
	// safe — and it cuts cmesh rebuild work and table memory to a quarter.
	for i := range rt.next {
		if topo.RouterOf(NodeID(i)) != NodeID(i) {
			continue
		}
		row := make([]Port, n)
		for j := range row {
			row[j] = PortInvalid
		}
		rt.next[i] = row
	}
	for i := range rt.next {
		if rt.next[i] == nil {
			rt.next[i] = rt.next[topo.RouterOf(NodeID(i))]
		}
	}

	// Preference order for tie-breaking among equal-distance neighbours.
	pref := []Port{East, West, South, North}

	dist := make([]int, n)
	queue := make([]NodeID, 0, n)
	// Consecutive destinations often share a router (cluster members along a
	// grid row); reuse the previous BFS for them.
	lastRouter := Invalid
	for dst := NodeID(0); int(dst) < n; dst++ {
		rdst := topo.RouterOf(dst)
		if !alive(rdst) {
			continue
		}
		if rdst != lastRouter {
			// BFS from the destination's router over alive routers.
			for i := range dist {
				dist[i] = -1
			}
			dist[rdst] = 0
			queue = queue[:0]
			queue = append(queue, rdst)
			for qi := 0; qi < len(queue); qi++ {
				cur := queue[qi]
				for _, p := range pref {
					nb, ok := topo.Neighbor(cur, p)
					if !ok || !alive(nb) || dist[nb] >= 0 {
						continue
					}
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
			lastRouter = rdst
		}
		for from := NodeID(0); int(from) < n; from++ {
			if topo.RouterOf(from) != from {
				continue // row aliased to the hub's
			}
			if from == rdst {
				rt.next[from][dst] = Local
				continue
			}
			if dist[from] < 0 || !alive(from) {
				continue
			}
			for _, p := range pref {
				nb, ok := topo.Neighbor(from, p)
				if ok && alive(nb) && dist[nb] == dist[from]-1 {
					rt.next[from][dst] = p
					break
				}
			}
		}
	}
	return rt
}

// NextHop returns the table's next hop, or PortInvalid when unreachable.
func (rt *routeTables) NextHop(from, dst NodeID) Port {
	return rt.next[from][dst]
}
