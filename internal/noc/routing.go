package noc

// RoutingMode selects how routers compute next hops.
type RoutingMode int

const (
	// RouteAuto uses XY dimension-order routing while the mesh is healthy
	// and switches to fault-aware shortest-path tables once a router fails
	// (a stand-in for the platform's route-discovery around dead nodes;
	// see DESIGN.md §2).
	RouteAuto RoutingMode = iota
	// RouteXY always uses XY routing, even across faults (packets heading
	// into a dead router are recovered/dropped) — the ablation case.
	RouteXY
	// RouteTables always uses the shortest-path tables.
	RouteTables
)

// String names the routing mode.
func (m RoutingMode) String() string {
	switch m {
	case RouteAuto:
		return "auto"
	case RouteXY:
		return "xy"
	case RouteTables:
		return "tables"
	}
	return "unknown"
}

// xyNextHop is classic dimension-order routing: correct X first, then Y.
// It is deadlock-free on a fault-free mesh.
func xyNextHop(topo Topology, from, dst NodeID) Port {
	fc, dc := topo.Coord(from), topo.Coord(dst)
	switch {
	case dc.X > fc.X:
		return East
	case dc.X < fc.X:
		return West
	case dc.Y > fc.Y:
		return South
	case dc.Y < fc.Y:
		return North
	default:
		return Local
	}
}

// routeTables holds per-destination next-hop ports for every router,
// computed by breadth-first search over the alive subgraph.
type routeTables struct {
	topo Topology
	// next[from][dst] is the output port at from toward dst
	// (PortInvalid when unreachable, Local when from == dst).
	next [][]Port
}

// computeTables builds shortest-path next hops avoiding faulty routers.
// Port preference follows XY habit (horizontal first) so that table routes
// coincide with XY on the fault-free mesh, keeping the ablation comparison
// clean.
func computeTables(topo Topology, alive func(NodeID) bool) *routeTables {
	n := topo.Nodes()
	rt := &routeTables{topo: topo, next: make([][]Port, n)}
	for i := range rt.next {
		row := make([]Port, n)
		for j := range row {
			row[j] = PortInvalid
		}
		rt.next[i] = row
	}

	// Preference order for tie-breaking among equal-distance neighbours.
	pref := []Port{East, West, South, North}

	dist := make([]int, n)
	queue := make([]NodeID, 0, n)
	for dst := NodeID(0); int(dst) < n; dst++ {
		if !alive(dst) {
			continue
		}
		// BFS from the destination over alive nodes.
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue = queue[:0]
		queue = append(queue, dst)
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, p := range pref {
				nb, ok := topo.Neighbor(cur, p)
				if !ok || !alive(nb) || dist[nb] >= 0 {
					continue
				}
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
		for from := NodeID(0); int(from) < n; from++ {
			if from == dst {
				rt.next[from][dst] = Local
				continue
			}
			if dist[from] < 0 || !alive(from) {
				continue
			}
			for _, p := range pref {
				nb, ok := topo.Neighbor(from, p)
				if ok && alive(nb) && dist[nb] == dist[from]-1 {
					rt.next[from][dst] = p
					break
				}
			}
		}
	}
	return rt
}

// NextHop returns the table's next hop, or PortInvalid when unreachable.
func (rt *routeTables) NextHop(from, dst NodeID) Port {
	return rt.next[from][dst]
}
