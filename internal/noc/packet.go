package noc

import (
	"fmt"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

// PacketID is a dense generation-tagged handle into a PacketPool's arena —
// what the router rings carry instead of *Packet pointers (DESIGN.md §11).
// The low bits index the arena slot, the middle bits tag the packet's
// lifetime generation (PacketPool.Put advances it), and a marker bit
// distinguishes real handles from the zero value. Dereferencing a handle
// whose generation no longer matches the slot panics: the packet it named
// was recycled.
type PacketID int32

const (
	// 18 index bits address 262k simultaneously-bound packets (two orders
	// of magnitude above any platform's peak live set — slots track peak,
	// not cumulative traffic), leaving 12 generation bits: a retained stale
	// handle is detected unless its slot cycles through exactly a multiple
	// of 4096 lifetimes while it is held, ample for the
	// use-after-recycle bugs the tag exists to catch.
	pidIndexBits = 18
	pidIndexMask = 1<<pidIndexBits - 1
	pidGenShift  = pidIndexBits
	pidGenMask   = 1<<12 - 1
	// pidValid marks a real handle; the PacketID zero value is never valid.
	pidValid PacketID = 1 << 30
)

// makePacketID packs an arena index and generation into a handle.
func makePacketID(idx int32, gen uint32) PacketID {
	return pidValid | PacketID(gen&pidGenMask)<<pidGenShift | PacketID(idx&pidIndexMask)
}

// Valid reports whether the handle names a slot at all (it may still be
// stale; Deref checks the generation).
func (h PacketID) Valid() bool { return h&pidValid != 0 }

// Kind discriminates packet classes on the fabric.
type Kind uint8

const (
	// Data packets carry application payloads between tasks.
	Data Kind = iota
	// Config packets are RCAP traffic: they reconfigure the destination
	// router or its attached intelligence module instead of being delivered
	// to the processing element.
	Config
	// Debug packets are experiment-controller traffic (runtime data readout);
	// they are delivered out-of-band and never influence the AIMs.
	Debug
)

// String names the packet kind.
func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Config:
		return "config"
	case Debug:
		return "debug"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ConfigOp selects the register an RCAP Config packet writes.
type ConfigOp uint8

// RCAP register map. The real router exposes its settings and the AIM
// program/parameter memory through the Router Configuration Access Port;
// these operations model the subset the experiments exercise.
const (
	OpNone             ConfigOp = iota
	OpSetDeadlockLimit          // router deadlock-recovery timeout (ticks)
	OpEnablePort                // arg = port number: re-enable a channel
	OpDisablePort               // arg = port number: disable a channel
	OpAIMParam                  // forwarded to the attached AIM (param, value)
	OpNodeReset                 // knob: reset the processing element
	OpNodeClockEnable           // knob: gate the processing element clock
	OpNodeFrequency             // knob: node frequency divider (1 = full speed)
)

// Packet is the unit of NoC traffic. Packets are routed whole but occupy
// their output link for Flits ticks (wormhole-style serialisation), so long
// packets create exactly the back-pressure the intelligence models feed on.
type Packet struct {
	// ID is unique within a run; the experiment harness uses it for
	// conservation checks (every created packet is delivered, dropped, or
	// still in flight).
	ID uint64
	// Kind discriminates data / RCAP config / debug traffic.
	Kind Kind

	// Src and Dst are the endpoints. Dst is the *current* concrete
	// destination; it can be rewritten by retargeting when the destination
	// node switched task or failed.
	Src, Dst NodeID
	// Task is the destination task class of a data packet — the stimulus the
	// Network Interaction model counts.
	Task taskgraph.TaskID

	// Instance identifies the application work item (fork–join instance)
	// this packet belongs to; Branch distinguishes parallel branches.
	// Origin is the source node that generated the instance (carried along
	// the whole task chain so completion acknowledgements can close the
	// source's flow-control window).
	Instance uint64
	Branch   int
	Origin   NodeID
	// JoinDst is the node chosen at fork time where the instance's branches
	// join (stamped by the fork so all branches converge; see DESIGN.md §5).
	JoinDst NodeID

	// Flits is the serialised length of the packet on a link (ticks of link
	// occupancy).
	Flits int
	// Created is the injection tick; Deadline, when non-zero, is the tick
	// after which the packet counts as late (a Foraging-for-Work stimulus).
	Created  sim.Tick
	Deadline sim.Tick

	// Hops counts router-to-router transfers, for latency statistics.
	Hops int
	// Retargets counts how many times the packet's Dst was rewritten.
	Retargets int

	// Op and Arg carry the RCAP payload of Config packets. Arg2 is the value
	// operand for two-operand ops (e.g. AIM parameter writes).
	Op         ConfigOp
	Arg, Arg2  int
	lapsedSeen bool
	// requeues counts consecutive deadlock-recovery rotations at the current
	// router; it resets on every successful forward.
	requeues int
	// pooled marks a packet currently resting in a PacketPool free list; the
	// pool uses it to catch double-recycles.
	pooled bool
	// h is the packet's arena handle, stamped by PacketPool.Get (or on first
	// fabric contact for packets created outside the pool). It is only
	// meaningful against the pool that issued it.
	h PacketID
}

// Handle returns the packet's generation-tagged arena handle (zero when the
// packet has never touched a pool).
func (p *Packet) Handle() PacketID { return p.h }

// Lapsed reports whether the packet is past its deadline at tick now, firing
// at most once per packet (the monitor impulse a router raises when it
// notices a late packet in one of its queues).
func (p *Packet) Lapsed(now sim.Tick) bool {
	if p.Deadline == 0 || p.lapsedSeen || now <= p.Deadline {
		return false
	}
	p.lapsedSeen = true
	return true
}

// Age returns the packet's age at tick now.
func (p *Packet) Age(now sim.Tick) sim.Tick { return now - p.Created }

// String renders a compact trace form.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d %s task=%d %d->%d inst=%d.%d flits=%d",
		p.ID, p.Kind, p.Task, p.Src, p.Dst, p.Instance, p.Branch, p.Flits)
}
