package noc

import (
	"testing"

	"centurion/internal/sim"
	"centurion/internal/taskgraph"
)

func TestAbsorptionConsumesEnRoute(t *testing.T) {
	net := testNet(8, 1, RouteAuto)
	final := &collectSink{}
	net.Router(7).SetSink(final)

	// Node 3 runs task 2 and absorbs passing task-2 packets.
	absorbed := &collectSink{}
	net.Router(3).SetSink(absorbed)
	net.Router(3).Absorb = func(id PacketID, task taskgraph.TaskID, now sim.Tick) bool {
		if task != 2 {
			return false
		}
		return absorbed.Accept(net.Pool().Deref(id), now)
	}
	var internals int
	net.Router(3).Monitors.InternalDelivery = func(task taskgraph.TaskID, now sim.Tick) {
		internals++
	}

	var clk sim.Clock
	net.Inject(0, dataPacket(1, 0, 7, 2, 2), clk.Now()) // task 2: absorbable
	net.Inject(0, dataPacket(2, 0, 7, 3, 2), clk.Now()) // task 3: passes through
	run(net, &clk, 100)

	if len(absorbed.got) != 1 || absorbed.got[0].ID != 1 {
		t.Fatalf("absorbed %d packets (%v), want packet #1", len(absorbed.got), absorbed.got)
	}
	if len(final.got) != 1 || final.got[0].ID != 2 {
		t.Fatalf("final sink got %d packets, want only packet #2", len(final.got))
	}
	if internals != 1 {
		t.Errorf("InternalDelivery fired %d times at the absorber, want 1", internals)
	}
	st := net.Stats()
	if st.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2", st.Delivered)
	}
}

func TestAbsorptionRespectsRejection(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	final := &collectSink{}
	net.Router(3).SetSink(final)
	// Absorber with a full queue must not strand the packet.
	net.Router(1).Absorb = func(PacketID, taskgraph.TaskID, sim.Tick) bool { return false }
	var clk sim.Clock
	net.Inject(0, dataPacket(1, 0, 3, 2, 2), clk.Now())
	run(net, &clk, 60)
	if len(final.got) != 1 {
		t.Fatal("packet lost after absorber rejected it")
	}
}

func TestAbsorptionSkipsConfigPackets(t *testing.T) {
	net := testNet(4, 1, RouteAuto)
	net.Router(1).Absorb = func(id PacketID, task taskgraph.TaskID, now sim.Tick) bool {
		t.Errorf("absorb consulted for a %v packet", net.Pool().Deref(id).Kind)
		return true
	}
	var clk sim.Clock
	net.Inject(0, &Packet{ID: 1, Kind: Config, Src: 0, Dst: 3, Flits: 1, Op: OpSetDeadlockLimit, Arg: 9}, clk.Now())
	run(net, &clk, 40)
	if got := net.Router(3).deadlockLimit; got != 9 {
		t.Errorf("config packet not applied at destination (limit=%d)", got)
	}
}
