// Package noc implements the Centurion network-on-chip fabric: a grid of
// five-port wormhole routers with per-link flit serialisation, a Router
// Configuration Access Port (RCAP) for remote reconfiguration, a basic
// deadlock-recovery mechanism, and the monitor/knob taps that the embedded
// intelligence modules (package aim) observe and actuate.
//
// The fabric is a deterministic tick-level model: Network.Tick advances every
// router by one cycle. It reproduces the observable behaviour the paper's
// runtime-management models depend on — which task IDs flow through each
// router, which packets are accepted locally, and how congestion and faults
// reshape that traffic — without modelling FPGA electrical detail.
//
// The fabric shape is pluggable through the Topology interface: Mesh is the
// paper's Centurion-V6 reference, Torus adds wrap-around links, and CMesh is
// a concentrated mesh where a 2×2 cluster of processing elements shares one
// router. Everything above this file (routing tables, thermal conduction,
// task-directory distances, fault regions) works in terms of Topology.
package noc

import "fmt"

// NodeID identifies a node (processing element plus its — possibly shared —
// router) in the fabric, computed as y*W + x over the node grid.
type NodeID int

// Invalid is the NodeID of "no node".
const Invalid NodeID = -1

// Coord is a node-grid coordinate. X grows eastward, Y grows southward.
type Coord struct{ X, Y int }

// Manhattan returns the Manhattan distance to another coordinate.
func (c Coord) Manhattan(o Coord) int {
	dx, dy := c.X-o.X, c.Y-o.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Port is one of a router's five channels. The four cardinal ports connect
// to fabric neighbours; Local connects to the node's processing element.
// (The RCAP configuration channel is modelled as config-kind packets
// delivered through the regular ports, as on the real router where RCAP
// traffic shares the NoC.)
type Port int

// Router ports in round-robin service order.
const (
	North Port = iota
	East
	South
	West
	Local
	NumPorts // number of ports; not a valid port value

	// PortInvalid marks "no route".
	PortInvalid Port = -1
)

// String names the port for traces.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	case PortInvalid:
		return "-"
	}
	return fmt.Sprintf("Port(%d)", int(p))
}

// Opposite returns the port a packet leaving via p arrives on at the
// neighbouring router.
func (p Port) Opposite() Port {
	// The cardinal ports are laid out N,E,S,W, so the opposite direction is
	// two steps around the compass — a branch-free xor on the hot forward
	// path. Local (and any invalid port) maps to itself, as before.
	if p >= North && p <= West {
		return p ^ 2
	}
	return p
}

// Topology describes a fabric shape: which nodes exist, how their routers
// are linked, how far apart they are, and how the healthy fabric routes.
// Implementations are immutable once built and therefore race-safe to share
// across platforms.
//
// Every topology here lays its nodes out on a Width()×Height() grid (the
// physical die floorplan), so ID/Coord/InBounds always operate on that grid
// even when the link structure is not a plain mesh.
type Topology interface {
	// Kind is the canonical shape name ("mesh", "torus", "cmesh") used as
	// the pool/cache identity axis.
	Kind() string
	// Width and Height are the node-grid dimensions.
	Width() int
	Height() int
	// Nodes returns the node count Width()*Height().
	Nodes() int
	// ID maps a grid coordinate to its NodeID. It panics when out of bounds.
	ID(c Coord) NodeID
	// Coord maps a NodeID back to its grid coordinate. It panics when out of
	// range.
	Coord(id NodeID) Coord
	// InBounds reports whether the coordinate lies inside the node grid.
	InBounds(c Coord) bool
	// Neighbor returns the router adjacent to id's router through the given
	// cardinal port — the fabric's link graph. ok is false at fabric edges,
	// for the Local port, and for nodes that do not own a router (CMesh
	// cluster members other than the hub).
	Neighbor(id NodeID, p Port) (NodeID, bool)
	// Lateral returns the physically adjacent node in the given direction —
	// the die-floorplan adjacency used for thermal conduction and
	// neighbour-signal broadcast. For Mesh and Torus it equals Neighbor; for
	// CMesh it is plain grid adjacency (cluster members are physically next
	// to each other even though they share a router).
	Lateral(id NodeID, p Port) (NodeID, bool)
	// Distance returns the hop distance between the two nodes' routers on
	// the healthy fabric (0 for nodes sharing a router).
	Distance(a, b NodeID) int
	// RouterOf returns the node whose router serves id: id itself except in
	// concentrated fabrics, where cluster members map to their hub.
	RouterOf(id NodeID) NodeID
	// BaseNextHop returns the healthy-fabric dimension-ordered next hop from
	// id's router toward dst (Local when both share a router). It must be
	// deadlock-free in the routing sense: per destination, following hops
	// strictly decreases Distance, so the next-hop graph is cycle-free.
	BaseNextHop(from, dst NodeID) Port
	// String renders the canonical shape, e.g. "16x8 mesh".
	String() string
}

// Topology kind names accepted by MakeTopology (and the spec/CLI layers).
const (
	KindMesh  = "mesh"
	KindTorus = "torus"
	KindCMesh = "cmesh"
)

// MakeTopology builds a topology by kind name ("" defaults to mesh) over a
// w×h node grid.
func MakeTopology(kind string, w, h int) (Topology, error) {
	switch kind {
	case "", KindMesh:
		if w <= 0 || h <= 0 {
			return nil, fmt.Errorf("noc: invalid mesh %dx%d", w, h)
		}
		return NewMesh(w, h), nil
	case KindTorus:
		if w < 2 || h < 2 {
			return nil, fmt.Errorf("noc: torus needs both dimensions >= 2, got %dx%d", w, h)
		}
		return NewTorus(w, h), nil
	case KindCMesh:
		if w < 2 || h < 2 || w%2 != 0 || h%2 != 0 {
			return nil, fmt.Errorf("noc: cmesh needs even dimensions >= 2, got %dx%d", w, h)
		}
		return NewCMesh(w, h), nil
	}
	return nil, fmt.Errorf("noc: unknown topology %q (want mesh, torus or cmesh)", kind)
}

// grid is the shared node-grid layout embedded by every topology: the
// ID/Coord mapping over a w×h floorplan with memoized coordinates so the
// routing and directory hot paths avoid a div/mod pair per lookup.
type grid struct {
	w, h int
	// coords memoizes NodeID→Coord; built once by newGrid, shared read-only.
	coords []Coord
}

func newGrid(w, h int) grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: invalid topology %dx%d", w, h))
	}
	g := grid{w: w, h: h, coords: make([]Coord, w*h)}
	for id := range g.coords {
		g.coords[id] = Coord{X: id % w, Y: id / w}
	}
	return g
}

// Width returns the node-grid width.
func (g grid) Width() int { return g.w }

// Height returns the node-grid height.
func (g grid) Height() int { return g.h }

// Nodes returns the node count w*h.
func (g grid) Nodes() int { return g.w * g.h }

// ID maps a coordinate to its NodeID. It panics when out of bounds.
func (g grid) ID(c Coord) NodeID {
	if !g.InBounds(c) {
		panic(fmt.Sprintf("noc: coordinate %v outside %dx%d grid", c, g.w, g.h))
	}
	return NodeID(c.Y*g.w + c.X)
}

// Coord maps a NodeID back to its coordinate.
func (g grid) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= g.Nodes() {
		panic(fmt.Sprintf("noc: node %d outside %dx%d grid", id, g.w, g.h))
	}
	return g.coords[id]
}

// InBounds reports whether the coordinate lies inside the grid.
func (g grid) InBounds(c Coord) bool {
	return c.X >= 0 && c.X < g.w && c.Y >= 0 && c.Y < g.h
}

// gridNeighbor is plain (non-wrapping) grid adjacency.
func (g grid) gridNeighbor(id NodeID, p Port) (NodeID, bool) {
	c := g.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return Invalid, false
	}
	if !g.InBounds(c) {
		return Invalid, false
	}
	return g.ID(c), true
}

// Mesh is the paper's fabric: a W×H rectangular mesh with one router per
// node and XY dimension-order routing. It is the bit-for-bit reference
// topology every equivalence test anchors on.
type Mesh struct{ grid }

// NewMesh returns a w×h mesh. It panics on non-positive dimensions.
func NewMesh(w, h int) Mesh { return Mesh{newGrid(w, h)} }

// NewTopology returns a w×h mesh as a Topology — the historical constructor,
// kept because the mesh is the default shape throughout the platform.
func NewTopology(w, h int) Topology { return NewMesh(w, h) }

// Kind implements Topology.
func (Mesh) Kind() string { return KindMesh }

// Neighbor implements Topology: plain grid adjacency with hard edges.
func (m Mesh) Neighbor(id NodeID, p Port) (NodeID, bool) { return m.gridNeighbor(id, p) }

// Lateral implements Topology: physical adjacency equals the link graph.
func (m Mesh) Lateral(id NodeID, p Port) (NodeID, bool) { return m.gridNeighbor(id, p) }

// Distance implements Topology: the Manhattan metric.
func (m Mesh) Distance(a, b NodeID) int {
	return m.Coord(a).Manhattan(m.Coord(b))
}

// RouterOf implements Topology: every node owns its router.
func (Mesh) RouterOf(id NodeID) NodeID { return id }

// BaseNextHop implements Topology: classic XY dimension-order routing —
// correct X first, then Y. Deadlock-free on a fault-free mesh.
func (m Mesh) BaseNextHop(from, dst NodeID) Port {
	fc, dc := m.Coord(from), m.Coord(dst)
	switch {
	case dc.X > fc.X:
		return East
	case dc.X < fc.X:
		return West
	case dc.Y > fc.Y:
		return South
	case dc.Y < fc.Y:
		return North
	default:
		return Local
	}
}

// String renders the topology dimensions.
func (m Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.w, m.h) }
